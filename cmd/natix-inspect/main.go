// Command natix-inspect dumps the physical structure of a NATIX store:
// the segment layout, per-page occupancy, and the record tree of each
// stored document, annotated with the paper's terminology (standalone/
// embedded, facade/scaffolding, aggregates/literals/proxies).
//
// Usage:
//
//	natix-inspect -db plays.natix                 # segment summary
//	natix-inspect -db plays.natix -pages          # per-page occupancy
//	natix-inspect -db plays.natix -doc othello    # record tree of a doc
//	natix-inspect -db plays.natix -check          # verify invariants
//	natix-inspect -db plays.natix -checksum       # CRC-sweep every page
//	natix-inspect -db plays.natix -pathindex      # path summaries + postings
//	natix-inspect -db plays.natix -wal            # dump the write-ahead log
//	natix-inspect -db plays.natix -check -metrics # + I/O profile of the check
//	natix-inspect -db plays.natix -check -traces  # + per-phase timings
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"natix/internal/buffer"
	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/docstore"
	"natix/internal/noderep"
	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/telemetry"
	"natix/internal/wal"
)

func main() {
	var (
		dbPath   = flag.String("db", "natix.db", "database file")
		pageSize = flag.Int("pagesize", 8192, "page size of the store")
		pages    = flag.Bool("pages", false, "list per-page occupancy")
		doc      = flag.String("doc", "", "dump the record tree of this document")
		check    = flag.Bool("check", false, "verify invariants of every document")
		checksum = flag.Bool("checksum", false, "verify the CRC of every allocated page, straight from the device")
		pathIdx  = flag.Bool("pathindex", false, "dump path summaries and postings sizes")
		walDump  = flag.Bool("wal", false, "dump the write-ahead log (<db>-wal) and exit")
		metrics  = flag.Bool("metrics", false, "print the engine metrics the inspection generated")
		traces   = flag.Bool("traces", false, "print per-phase timings of the inspection")
	)
	flag.Parse()

	if *walDump {
		dumpWAL(*dbPath + "-wal")
		return
	}

	dev, err := pagedev.OpenFile(*dbPath, *pageSize)
	if err != nil {
		fatalf("open: %v", err)
	}
	defer dev.Close()
	pool, err := buffer.NewSized(dev, 4<<20)
	if err != nil {
		fatalf("%v", err)
	}
	seg, err := segment.Open(pool)
	if err != nil {
		fatalf("open segment: %v", err)
	}
	rm := records.New(seg)
	d, err := dict.Open(rm)
	if err != nil {
		fatalf("open dictionary: %v", err)
	}
	trees := core.New(rm, core.Config{})
	store, err := docstore.Open(trees, d)
	if err != nil {
		fatalf("open docstore: %v", err)
	}

	// The inspection session is itself instrumented: -metrics reports
	// the I/O its walks generated (every page access goes through the
	// same counters the engine uses), -traces times each phase.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Enabled: *traces})
	pool.AttachTelemetry(reg)
	trees.AttachTelemetry(reg)
	store.AttachTelemetry(reg, nil)

	phase := func(op string, fn func()) {
		sp := tracer.Start("inspect:" + op)
		fn()
		sp.End()
	}

	fmt.Printf("segment: %d pages × %d bytes = %d bytes\n",
		seg.NumPages(), seg.PageSize(), seg.TotalBytes())
	fmt.Printf("labels:  %d in dictionary\n", d.Len())
	fmt.Printf("documents:\n")
	for _, info := range store.Documents() {
		mode := "tree"
		if info.Mode == docstore.ModeFlat {
			mode = "flat"
		}
		fmt.Printf("  %-8s %-20s root %s\n", mode, info.Name, info.Root)
	}

	if *pages {
		phase("pages", func() { dumpPages(seg, pool) })
	}
	if *doc != "" {
		phase("doc", func() { dumpDoc(store, trees, d, *doc) })
	}
	if *check {
		phase("check", func() { checkAll(store) })
	}
	if *checksum {
		phase("checksum", func() { sweepChecksums(dev, seg) })
	}
	if *pathIdx {
		phase("pathindex", func() { dumpPathIndex(rm, d) })
	}
	if *metrics {
		dumpMetrics(reg)
	}
	if *traces {
		dumpTraces(tracer)
	}
}

// alwaysShow are counters printed even at zero: the memory-hierarchy
// group, where "0" is itself diagnostic (tier-2 not configured or
// never hit, no read-ahead issued, no write-back runs coalesced).
var alwaysShow = map[string]bool{
	"buffer.tier2_hits":           true,
	"buffer.tier2_misses":         true,
	"buffer.tier2_admitted":       true,
	"buffer.tier2_evictions":      true,
	"buffer.tier2_corrupt":        true,
	"buffer.tier2_bytes":          true,
	"buffer.tier2_pages":          true,
	"buffer.prefetch_issued":      true,
	"buffer.prefetch_used":        true,
	"buffer.prefetch_wasted":      true,
	"buffer.coalesced_write_runs": true,
}

// dumpMetrics prints every non-zero counter and histogram the
// inspection session accumulated (plus the memory-hierarchy group,
// zero or not), sorted by name.
func dumpMetrics(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	fmt.Printf("\nengine metrics of this inspection:\n")
	names := make([]string, 0, len(snap.Counters))
	for name, v := range snap.Counters {
		if v != 0 || alwaysShow[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-32s %12d\n", name, snap.Counters[name])
	}
	hists := make([]string, 0, len(snap.Histograms))
	for name, h := range snap.Histograms {
		if h.Count != 0 {
			hists = append(hists, name)
		}
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := snap.Histograms[name]
		fmt.Printf("  %-32s %12d obs, mean %v, p99 %v\n", name, h.Count,
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
	}
}

// dumpTraces prints the recorded inspection phases, oldest first.
func dumpTraces(tracer *telemetry.Tracer) {
	traces := tracer.RecentTraces()
	fmt.Printf("\ninspection phases:\n")
	for i := len(traces) - 1; i >= 0; i-- {
		tr := traces[i]
		fmt.Printf("  %-20s %v\n", tr.Op, tr.Duration.Round(time.Microsecond))
		for _, ph := range tr.Phases {
			fmt.Printf("    %-18s %v\n", ph.Op, ph.Duration.Round(time.Microsecond))
		}
	}
}

// dumpPathIndex prints each indexed document's path summary (every
// distinct label path with its occurrence count) and the size of each
// posting list.
func dumpPathIndex(rm *records.Manager, d *dict.Dict) {
	px, err := pathindex.Open(rm)
	if err != nil {
		fatalf("open path index: %v", err)
	}
	names := px.Names()
	if len(names) == 0 {
		fmt.Printf("\npath index: no indexed documents\n")
		return
	}
	for _, name := range names {
		idx, err := px.Get(name)
		if err != nil {
			fatalf("%v", err)
		}
		size, err := px.BlobSize(name)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\npath index of %q: %d nodes, %d paths, %d bytes\n",
			name, idx.NumNodes(), idx.NumPaths(), size)
		fmt.Printf("  summary:\n")
		for id := pathindex.PathID(1); int(id) <= idx.NumPaths(); id++ {
			fmt.Printf("    %-50s %7d\n", pathString(idx, d, id), idx.Path(id).Count)
		}
		fmt.Printf("  postings:\n")
		for _, label := range idx.PostingLabels() {
			lname, err := d.Name(label)
			if err != nil {
				lname = fmt.Sprintf("label#%d", label)
			}
			bytes, err := idx.PostingSize(label)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("    %-20s %7d postings %9d bytes\n", lname, idx.PostingCount(label), bytes)
		}
	}
}

// pathString renders a summary path like /PLAY/ACT/SCENE.
func pathString(idx *pathindex.Handle, d *dict.Dict, id pathindex.PathID) string {
	var labels []string
	for id != pathindex.NilPath {
		pn := idx.Path(id)
		name, err := d.Name(pn.Label)
		if err != nil {
			name = fmt.Sprintf("label#%d", pn.Label)
		}
		labels = append(labels, name)
		id = pn.Parent
	}
	out := ""
	for i := len(labels) - 1; i >= 0; i-- {
		out += "/" + labels[i]
	}
	return out
}

// sweepChecksums reads every allocated page straight from the device —
// not through the buffer pool — and verifies its CRC, so the bytes on
// the platter are what gets judged. Pages whose magic is unreadable are
// reported as such (their checksum field cannot be trusted to be one).
// Exit status 1 if anything fails; this is the read-only cousin of
// natix-check, which also repairs.
func sweepChecksums(dev pagedev.Device, seg *segment.Segment) {
	fmt.Printf("\nchecksum sweep:\n")
	buf := make([]byte, seg.PageSize())
	var bad int
	for p := pagedev.PageNo(0); p < pagedev.PageNo(seg.NumPages()); p++ {
		if err := dev.Read(p, buf); err != nil {
			fmt.Printf("  page %-8d READ ERROR: %v\n", p, err)
			bad++
			continue
		}
		role := "data"
		switch {
		case p == 0:
			role = "header"
		case seg.IsFSIPage(p):
			role = "fsi"
		}
		if pageformat.TypeOf(buf) == pageformat.TypeInvalid {
			fmt.Printf("  page %-8d (%s) no page magic — unformatted or corrupt header\n", p, role)
			continue
		}
		if err := pageformat.VerifyChecksum(buf); err != nil {
			fmt.Printf("  page %-8d (%s) FAIL: %v\n", p, role, err)
			bad++
		}
	}
	if bad == 0 {
		fmt.Printf("  all %d pages verified\n", seg.NumPages())
		return
	}
	fmt.Printf("  %d of %d pages failed\n", bad, seg.NumPages())
	os.Exit(1)
}

func dumpPages(seg *segment.Segment, pool *buffer.Pool) {
	fmt.Printf("\npage occupancy:\n")
	err := seg.ForEachDataPage(func(p pagedev.PageNo) error {
		f, err := pool.Get(p)
		if err != nil {
			return err
		}
		defer f.Release()
		sl, err := pageformat.AsSlotted(f.Data())
		if err != nil {
			fmt.Printf("  page %-8d (unformatted)\n", p)
			return nil
		}
		fmt.Printf("  page %-8d %3d records, %5d bytes used, %5d free\n",
			p, sl.LiveCells(), sl.UsedBytes(), sl.FreeBytes())
		return nil
	})
	if err != nil {
		fatalf("pages: %v", err)
	}
}

func dumpDoc(store *docstore.Store, trees *core.Store, d *dict.Dict, name string) {
	info, err := store.Lookup(name)
	if err != nil {
		fatalf("%v", err)
	}
	if info.Mode != docstore.ModeTree {
		fatalf("%q is flat; nothing to dump", name)
	}
	fmt.Printf("\nrecord tree of %q:\n", name)
	dumpRecord(trees, d, info.Root, 0)
}

func dumpRecord(trees *core.Store, d *dict.Dict, rid records.RID, depth int) {
	rec, err := trees.LoadRecordForInspection(rid)
	if err != nil {
		fatalf("record %s: %v", rid, err)
	}
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	fmt.Printf("%srecord %s (%d bytes, parent %s)\n",
		indent, rid, noderep.EncodedSize(rec), rec.ParentRID)
	var dump func(n *noderep.Node, nd int)
	dump = func(n *noderep.Node, nd int) {
		pad := indent
		for i := 0; i < nd+1; i++ {
			pad += "  "
		}
		switch n.Kind {
		case noderep.KindAggregate:
			label, _ := d.Name(n.Label)
			role := "facade"
			if n.Scaffold {
				role = "scaffolding"
			}
			fmt.Printf("%saggregate %s (%s, %d children)\n", pad, label, role, len(n.Children))
			for _, c := range n.Children {
				dump(c, nd+1)
			}
		case noderep.KindLiteral:
			v, _ := n.StringValue()
			if len(v) > 32 {
				v = v[:32] + "..."
			}
			fmt.Printf("%sliteral %q (%d bytes)\n", pad, v, len(n.Payload))
		case noderep.KindProxy:
			fmt.Printf("%sproxy -> %s\n", pad, n.Target)
			dumpRecord(trees, d, n.Target, depth+1)
		}
	}
	dump(rec.Root, 0)
}

func checkAll(store *docstore.Store) {
	fmt.Printf("\ninvariant check:\n")
	failed := false
	for _, info := range store.Documents() {
		if info.Mode != docstore.ModeTree {
			continue
		}
		tree, err := store.Tree(info.Name)
		if err != nil {
			fatalf("%v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			fmt.Printf("  %-20s FAIL: %v\n", info.Name, err)
			failed = true
			continue
		}
		n, err := tree.RecordCount()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  %-20s ok (%d records)\n", info.Name, n)
	}
	if failed {
		os.Exit(1)
	}
}

// dumpWAL prints every record in the write-ahead log: LSN, type, and
// the type-specific payload (operation kind, page, changed ranges),
// plus the checkpoint chain. Torn tails are reported, not fatal — this
// is the debugging view of a crashed store.
func dumpWAL(path string) {
	st, err := os.Stat(path)
	if err != nil {
		fatalf("no write-ahead log at %s: %v", path, err)
	}
	storage, err := wal.OpenFileStorage(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer storage.Close()

	var (
		records     int
		checkpoints []wal.LSN
		ops         int
		openKind    string
		openLSN     wal.LSN
	)
	pageSize, end, err := wal.Scan(storage, func(r wal.Record) error {
		records++
		fmt.Printf("%10d  %-12s", r.LSN, wal.TypeName(r.Type))
		switch r.Type {
		case wal.RecBegin:
			fmt.Printf(" op=%d pre-pages=%d kind=%q", r.OpID, r.PreNumPages, r.Kind)
			ops++
			openKind, openLSN = r.Kind, r.LSN
		case wal.RecCommit, wal.RecAbort:
			fmt.Printf(" op=%d", r.OpID)
			openKind = ""
		case wal.RecUpdate:
			fmt.Printf(" page=%d ranges=%d bytes=%d", r.Page, len(r.Ranges), rangeBytes(r.Ranges))
		case wal.RecFirstUpdate:
			fmt.Printf(" page=%d before-image=%dB ranges=%d bytes=%d",
				r.Page, len(r.BeforeImage), len(r.Ranges), rangeBytes(r.Ranges))
		case wal.RecImage:
			fmt.Printf(" page=%d image=%dB", r.Page, len(r.Image))
		case wal.RecCheckpoint:
			fmt.Printf(" pages=%d", r.NumPages)
			checkpoints = append(checkpoints, r.LSN)
		case wal.RecShrink:
			fmt.Printf(" pages=%d", r.NumPages)
		}
		fmt.Println()
		return nil
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\nlog: %d bytes on disk, %d records, %d operations, end LSN %d (page size %d)\n",
		st.Size(), records, ops, end, pageSize)
	switch len(checkpoints) {
	case 0:
		fmt.Println("checkpoint chain: none (log truncates at each checkpoint; records above await the next one)")
	default:
		fmt.Printf("checkpoint chain: %d in log, last at LSN %d\n", len(checkpoints), checkpoints[len(checkpoints)-1])
	}
	if openKind != "" {
		fmt.Printf("UNFINISHED operation %q (begin LSN %d): recovery will undo it on next open\n", openKind, openLSN)
	}
}

func rangeBytes(ranges []wal.Range) int {
	n := 0
	for _, r := range ranges {
		n += len(r.Before)
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "natix-inspect: "+format+"\n", args...)
	os.Exit(1)
}
