// Natix-vet runs the engine's invariant analyzers (internal/analysis)
// over the module, multichecker-style.
//
// Quickstart:
//
//	go run ./cmd/natix-vet ./...                 # whole module
//	go run ./cmd/natix-vet ./internal/records    # one package
//	go run ./cmd/natix-vet -analyzers walbracket,lockorder ./...
//	go run ./cmd/natix-vet -json ./...           # machine-readable
//	go run ./cmd/natix-vet -list                 # describe the suite
//
// Findings print as file:line:col: analyzer: message. A clean run
// exits 0 and still reports how many findings were suppressed by
// //natix:vet-ignore annotations, so suppressions never disappear
// silently. Exit codes: 0 clean, 1 findings, 2 usage or load error.
//
// The suite (see DESIGN.md "Static analysis"): walbracket (WAL
// BeginUpdate/EndUpdate bracket), lockorder (lock hierarchy),
// telemetryclock (no direct time.Now in engine packages), noalloc
// (//natix:noalloc warm paths), sentinelerr (facade errors wrap root
// sentinels).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"natix/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("natix-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (file/line/col/analyzer/message)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: natix-vet [-json] [-analyzers a,b] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "natix-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "natix-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		return emitJSON(stdout, res)
	}
	for _, d := range res.Findings {
		fmt.Fprintln(stdout, d.String())
	}
	supp := suppressionSummary(res)
	if len(res.Findings) == 0 {
		fmt.Fprintf(stderr, "natix-vet: ok%s\n", supp)
		return 0
	}
	fmt.Fprintf(stderr, "natix-vet: %d finding(s)%s\n", len(res.Findings), supp)
	return 1
}

func suppressionSummary(res *analysis.Result) string {
	if len(res.Suppressed) == 0 {
		return ""
	}
	counts := res.SuppressedByAnalyzer()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%d %s", counts[name], name))
	}
	return fmt.Sprintf(", %d suppressed by //natix:vet-ignore (%s)",
		len(res.Suppressed), strings.Join(parts, ", "))
}

// jsonFinding is the stable machine-readable schema; future tooling
// diffs these across commits.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func emitJSON(stdout *os.File, res *analysis.Result) int {
	out := struct {
		Findings   []jsonFinding `json:"findings"`
		Suppressed []jsonFinding `json:"suppressed"`
	}{Findings: []jsonFinding{}, Suppressed: []jsonFinding{}}
	for _, d := range res.Findings {
		out.Findings = append(out.Findings, toJSON(d))
	}
	for _, d := range res.Suppressed {
		out.Suppressed = append(out.Suppressed, toJSON(d))
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return 2
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func toJSON(d analysis.Diagnostic) jsonFinding {
	return jsonFinding{
		File:       d.Pos.Filename,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: d.Suppressed,
		Reason:     d.SuppressReason,
	}
}
