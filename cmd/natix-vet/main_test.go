package main

import (
	"testing"

	"natix/internal/analysis"
)

// TestRepoIsClean is the self-hosting smoke test: the full suite over
// the whole module must come back with zero active findings. Anything
// deliberately exceptional in the tree must carry a
// //natix:vet-ignore reason, which lands in the suppressed list
// instead.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	res, err := analysis.Run(".", []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatalf("natix-vet failed to run: %v", err)
	}
	for _, d := range res.Findings {
		t.Errorf("finding: %s", d)
	}
	for _, d := range res.Suppressed {
		if d.SuppressReason == "" {
			t.Errorf("suppressed finding without reason: %s", d)
		}
	}
}
