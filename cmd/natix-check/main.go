// Command natix-check is the offline integrity verifier: it opens a
// store, runs one full scrub pass (checksum sweep, cross-structure
// invariants, WAL-based repair, document quarantine), prints the
// verdict, and encodes it in the exit status so scripts and CI can
// gate on storage health:
//
//	0  clean      — every page verified, every reference resolves
//	1  repaired   — damage was found and fully healed from the log
//	2  quarantined — damage beyond the log's reach; the named
//	                 documents are unsafe until restored
//	3  error      — the store could not be opened or scrubbed at all
//
// Usage:
//
//	natix-check -db plays.natix            # human-readable verdict
//	natix-check -db plays.natix -json      # machine-readable report
//	natix-check -db plays.natix -rate 1000 # throttle to 1000 pages/s
//
// The check opens the store read-write: restart recovery runs first
// (healing any crash-torn state exactly as a normal open would), and
// repairs are written back in place. Run it against a store no other
// process has open.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"natix"
)

func main() {
	var (
		dbPath   = flag.String("db", "natix.db", "database file")
		pageSize = flag.Int("pagesize", 8192, "page size of the store")
		rate     = flag.Int("rate", 0, "scrub rate limit in pages per second (0 = unthrottled)")
		asJSON   = flag.Bool("json", false, "emit the scrub report as JSON")
	)
	flag.Parse()

	db, err := natix.Open(natix.Options{
		Path:           *dbPath,
		PageSize:       *pageSize,
		WAL:            true,
		ScrubRateLimit: *rate,
	})
	if err != nil {
		fatalf("open: %v", err)
	}
	defer db.Close()

	rep, err := db.ScrubNow()
	if err != nil {
		fatalf("scrub: %v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		printReport(rep)
	}
	os.Exit(verdict(rep))
}

// verdict maps a scrub report to the documented exit status.
func verdict(rep *natix.ScrubReport) int {
	switch {
	case len(rep.Quarantined) > 0:
		return 2
	case !rep.Clean() || len(rep.Repaired) > 0 || rep.FSIFixed > 0:
		return 1
	default:
		return 0
	}
}

func printReport(rep *natix.ScrubReport) {
	fmt.Printf("pages verified:  %d (%d from the device, %d resident in the pool)\n",
		rep.PagesChecked+rep.PagesResident, rep.PagesChecked, rep.PagesResident)
	fmt.Printf("corrupt found:   %d\n", rep.CorruptFound)
	if rep.FSIFixed > 0 {
		fmt.Printf("fsi rebuilt:     %d\n", rep.FSIFixed)
	}
	if rep.BadRIDs > 0 {
		fmt.Printf("bad references:  %d\n", rep.BadRIDs)
	}
	if len(rep.Repaired) > 0 {
		fmt.Printf("repaired:        %v (rebuilt from the log, byte-identical)\n", rep.Repaired)
	}
	if len(rep.Unrepaired) > 0 {
		fmt.Printf("unrepaired:      %v (no log image)\n", rep.Unrepaired)
	}
	if len(rep.Fenced) > 0 {
		fmt.Printf("fenced:          %v (unowned; removed from allocation)\n", rep.Fenced)
	}
	if len(rep.Quarantined) > 0 {
		names := make([]string, 0, len(rep.Quarantined))
		for name := range rep.Quarantined {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("quarantined documents:\n")
		for _, name := range names {
			fmt.Printf("  %-20s %s\n", name, rep.Quarantined[name])
		}
	}
	fmt.Printf("duration:        %v\n", rep.Duration)
	switch verdict(rep) {
	case 0:
		fmt.Println("verdict: CLEAN")
	case 1:
		fmt.Println("verdict: REPAIRED — damage found and fully healed")
	case 2:
		fmt.Println("verdict: QUARANTINED — some documents are unsafe until restored")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "natix-check: "+format+"\n", args...)
	os.Exit(3)
}
