// Command natix-bench regenerates the evaluation section of "Efficient
// Storage of XML Data" (Kanne & Moerkotte): Figures 9–14, plus ablation
// sweeps of the configuration parameters.
//
// Usage:
//
//	natix-bench                           # all figures, paper scale
//	natix-bench -plays 8 -buffer 442368   # reduced scale, scaled buffer
//	natix-bench -experiment fig11         # print one figure
//	natix-bench -experiment ablations     # parameter sweeps
//	natix-bench -experiment import        # bulk vs incremental import
//	natix-bench -experiment wal           # durability cost: WAL off/on/NoSync
//	natix-bench -flat                     # add the flat-stream series
//	natix-bench -csv results.csv          # raw cells for plotting
//	natix-bench -json BENCH_import.json   # machine-readable import cells
//
// The paper loads ≈8 MB of documents against a 2 MB buffer. When
// scaling the corpus down with -plays, scale -buffer proportionally to
// preserve the data:buffer ratio that drives the figures' shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"natix/internal/benchkit"
	"natix/internal/corpus"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig9..fig14, all, or ablations")
		plays      = flag.Int("plays", 37, "number of plays in the corpus (paper: 37)")
		pages      = flag.String("pages", "", "comma-separated page sizes (default 2048..32768)")
		buffer     = flag.Int("buffer", 2<<20, "buffer pool bytes (paper: 2MB)")
		flat       = flag.Bool("flat", false, "include the flat-stream extension series")
		csvPath    = flag.String("csv", "", "write raw cells to this CSV file")
		jsonPath   = flag.String("json", "", "write import-experiment cells to this JSON file")
		workers    = flag.String("workers", "", "comma-separated worker counts for the import scaling sweep (e.g. 1,2,4,8)")
		baselineMS = flag.Float64("baseline-ms", 0, "reference serial bulk wall-ms the scaling curve is computed against (0: this run's serial cell)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.Plays = *plays

	if *experiment == "import" {
		var workerList []int
		if *workers != "" {
			for _, w := range strings.Split(*workers, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(w))
				if err != nil || n < 1 {
					fatalf("bad -workers entry %q", w)
				}
				workerList = append(workerList, n)
			}
		}
		runImport(spec, *buffer, *jsonPath, workerList, *baselineMS, *quiet)
		return
	}
	if *experiment == "wal" {
		runWAL(spec, *buffer, *jsonPath, *quiet)
		return
	}
	if *experiment == "readpath" {
		runReadpath(*plays, *jsonPath, *quiet)
		return
	}

	var pageSizes []int
	if *pages != "" {
		for _, p := range strings.Split(*pages, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fatalf("bad -pages entry %q: %v", p, err)
			}
			pageSizes = append(pageSizes, n)
		}
	}

	if *experiment == "ablations" {
		runAblations(spec, *buffer)
		return
	}

	opts := benchkit.SuiteOptions{
		Spec:        spec,
		PageSizes:   pageSizes,
		BufferBytes: *buffer,
		IncludeFlat: *flat,
	}
	if !*quiet {
		opts.Progress = os.Stderr
		st := corpus.Measure(corpus.Generate(spec))
		fmt.Fprintf(os.Stderr, "corpus: %d plays, %d nodes, %.2f MB XML; buffer %d KB\n",
			st.Documents, st.Nodes, float64(st.TextBytes)/(1<<20), *buffer>>10)
	}
	suite, err := benchkit.RunSuite(opts)
	if err != nil {
		fatalf("suite: %v", err)
	}
	switch *experiment {
	case "all":
		suite.PrintAll(os.Stdout)
	default:
		found := false
		for _, fig := range benchkit.Figures {
			if fig.ID == *experiment {
				suite.PrintFigure(os.Stdout, fig)
				found = true
			}
		}
		if !found {
			fatalf("unknown experiment %q (want fig9..fig14, all, ablations)", *experiment)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("create %s: %v", *csvPath, err)
		}
		defer f.Close()
		if err := suite.WriteCSV(f); err != nil {
			fatalf("write csv: %v", err)
		}
		fmt.Fprintf(os.Stderr, "raw cells written to %s\n", *csvPath)
	}
}

// runImport measures document loading through the streaming bulk path
// and the incremental per-node path on the same generated plays,
// printing a table and optionally writing the cells as JSON — the
// BENCH_import.json baseline of the perf trajectory.
func runImport(spec corpus.Spec, buffer int, jsonPath string, workers []int, baselineMS float64, quiet bool) {
	cells, err := benchkit.RunImportExperiment(spec, buffer, 8192, workers)
	if err != nil {
		fatalf("import experiment: %v", err)
	}
	benchkit.PrintImportCells(os.Stdout, cells)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatalf("create %s: %v", jsonPath, err)
		}
		defer f.Close()
		if err := benchkit.WriteImportJSON(f, cells, baselineMS); err != nil {
			fatalf("write json: %v", err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "import cells written to %s\n", jsonPath)
		}
	}
}

// runWAL measures the durability cost: the same file-backed import +
// query workload with the write-ahead log off, on, and on with NoSync
// — the BENCH_wal.json baseline.
func runWAL(spec corpus.Spec, buffer int, jsonPath string, quiet bool) {
	dir, err := os.MkdirTemp("", "natix-wal-bench")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)
	cells, err := benchkit.RunWALExperiment(spec, buffer, 8192, dir)
	if err != nil {
		fatalf("wal experiment: %v", err)
	}
	benchkit.PrintWALCells(os.Stdout, cells)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatalf("create %s: %v", jsonPath, err)
		}
		defer f.Close()
		if err := benchkit.WriteWALJSON(f, cells); err != nil {
			fatalf("write json: %v", err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wal cells written to %s\n", jsonPath)
		}
	}
}

// runReadpath measures the buffer-pool memory hierarchy: pool size ×
// tier-2 compression × cold/warm over text-heavy and structure-heavy
// corpora — the BENCH_readpath.json baseline.
func runReadpath(plays int, jsonPath string, quiet bool) {
	var progress io.Writer
	if !quiet {
		progress = os.Stderr
	}
	cells, err := benchkit.RunReadpathExperiment(plays, 8192, progress)
	if err != nil {
		fatalf("readpath experiment: %v", err)
	}
	benchkit.PrintReadpathCells(os.Stdout, cells)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatalf("create %s: %v", jsonPath, err)
		}
		defer f.Close()
		if err := benchkit.WriteReadpathJSON(f, cells); err != nil {
			fatalf("write json: %v", err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "readpath cells written to %s\n", jsonPath)
		}
	}
}

func runAblations(spec corpus.Spec, buffer int) {
	const page = 8192
	if _, err := benchkit.SplitTargetAblation(spec, page, buffer, os.Stdout); err != nil {
		fatalf("split-target ablation: %v", err)
	}
	if _, err := benchkit.SplitToleranceAblation(spec, page, buffer, os.Stdout); err != nil {
		fatalf("split-tolerance ablation: %v", err)
	}
	if _, err := benchkit.BufferAblation(spec, page, os.Stdout); err != nil {
		fatalf("buffer ablation: %v", err)
	}
	if _, err := benchkit.CacheAblation(spec, page, buffer, os.Stdout); err != nil {
		fatalf("cache ablation: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "natix-bench: "+format+"\n", args...)
	os.Exit(1)
}
