// Command natix-cli manages a NATIX store from the shell.
//
// Usage:
//
//	natix-cli -db plays.natix import othello othello.xml
//	natix-cli -db plays.natix import -flat raw raw.xml
//	natix-cli -db plays.natix ls
//	natix-cli -db plays.natix query othello '/PLAY/ACT[3]/SCENE[2]//SPEAKER'
//	natix-cli -db plays.natix export othello > othello-out.xml
//	natix-cli -db plays.natix rm othello
//	natix-cli -db plays.natix stats
package main

import (
	"flag"
	"fmt"
	"os"

	"natix"
)

func main() {
	var (
		dbPath   = flag.String("db", "natix.db", "database file")
		pageSize = flag.Int("pagesize", 8192, "page size for new stores")
		buffer   = flag.Int("buffer", 2<<20, "buffer pool bytes")
		pathIdx  = flag.Bool("pathindex", false, "maintain and use the path index")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	db, err := natix.Open(natix.Options{Path: *dbPath, PageSize: *pageSize, BufferBytes: *buffer, PathIndex: *pathIdx})
	if err != nil {
		fatalf("open %s: %v", *dbPath, err)
	}
	defer db.Close()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "import":
		flat := false
		if len(rest) > 0 && rest[0] == "-flat" {
			flat = true
			rest = rest[1:]
		}
		if len(rest) != 2 {
			fatalf("usage: import [-flat] <name> <file.xml>")
		}
		f, err := os.Open(rest[1])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if flat {
			err = db.ImportXMLFlat(rest[0], f)
		} else {
			err = db.ImportXML(rest[0], f)
		}
		if err != nil {
			fatalf("import: %v", err)
		}
		fmt.Printf("imported %q\n", rest[0])
	case "export":
		if len(rest) != 1 {
			fatalf("usage: export <name>")
		}
		if err := db.ExportXML(rest[0], os.Stdout); err != nil {
			fatalf("export: %v", err)
		}
		fmt.Println()
	case "query":
		if len(rest) != 2 {
			fatalf("usage: query <name> <path>")
		}
		matches, err := db.Query(rest[0], rest[1])
		if err != nil {
			fatalf("query: %v", err)
		}
		for i, m := range matches {
			markup, err := m.Markup()
			if err != nil {
				fatalf("match %d: %v", i, err)
			}
			fmt.Println(markup)
		}
		fmt.Fprintf(os.Stderr, "%d match(es)\n", len(matches))
	case "ls":
		docs, err := db.Documents()
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range docs {
			mode := "tree"
			if d.Flat {
				mode = "flat"
			}
			fmt.Printf("%-8s %s\n", mode, d.Name)
		}
	case "validate":
		if len(rest) != 1 {
			fatalf("usage: validate <file.xml>")
		}
		f, err := os.Open(rest[0])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		msgs, err := natix.ValidateXML(f)
		if err != nil {
			fatalf("validate: %v", err)
		}
		if len(msgs) == 0 {
			fmt.Println("valid")
			break
		}
		for _, m := range msgs {
			fmt.Println(m)
		}
		os.Exit(1)
	case "rm":
		if len(rest) != 1 {
			fatalf("usage: rm <name>")
		}
		if err := db.Delete(rest[0]); err != nil {
			fatalf("rm: %v", err)
		}
		fmt.Printf("removed %q\n", rest[0])
	case "reindex":
		if len(rest) != 1 {
			fatalf("usage: reindex <name>")
		}
		if err := db.ReindexDocument(rest[0]); err != nil {
			fatalf("reindex: %v", err)
		}
		fmt.Printf("reindexed %q\n", rest[0])
	case "stats":
		st, err := db.Stats()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("page size:        %d\n", st.PageSize)
		fmt.Printf("space on disk:    %d bytes\n", st.SpaceBytes)
		fmt.Printf("physical reads:   %d\n", st.PhysReads)
		fmt.Printf("physical writes:  %d\n", st.PhysWrites)
		fmt.Printf("buffer hits:      %d / %d logical reads\n", st.BufferHits, st.LogicalReads)
		fmt.Printf("record splits:    %d\n", st.Splits)
		fmt.Printf("records created:  %d\n", st.RecordsCreated)
		fmt.Printf("records deleted:  %d\n", st.RecordsDeleted)
		fmt.Printf("parent patches:   %d\n", st.ParentPatches)
		fmt.Printf("index builds:     %d\n", st.PathIndexBuilds)
		fmt.Printf("indexed queries:  %d / %d tree-mode\n", st.IndexedQueries, st.IndexedQueries+st.ScanQueries)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `natix-cli — manage a NATIX XML store

usage: natix-cli [-db file] [-pagesize n] [-buffer n] [-pathindex] <command> [args]

commands:
  import [-flat] <name> <file.xml>   store a document (tree or flat mode)
  export <name>                      write a document's XML to stdout
  query <name> <path>                evaluate a path query
  validate <file.xml>                check a document against its own DTD
  ls                                 list documents
  rm <name>                          remove a document
  reindex <name>                     rebuild a document's path index
  stats                              storage statistics
`)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "natix-cli: "+format+"\n", args...)
	os.Exit(1)
}
