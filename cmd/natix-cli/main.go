// Command natix-cli manages a NATIX store from the shell.
//
// Usage:
//
//	natix-cli -db plays.natix import othello othello.xml
//	natix-cli -db plays.natix import -flat raw raw.xml
//	natix-cli -db plays.natix ls
//	natix-cli -db plays.natix query othello '/PLAY/ACT[3]/SCENE[2]//SPEAKER'
//	natix-cli -db plays.natix -limit 10 -timeout 500ms query othello '//SPEAKER'
//	natix-cli -db plays.natix -pathindex -explain query othello '//SPEECH/LINE'
//	natix-cli -db plays.natix -workers 8 -limit 1 batch queries.txt
//	natix-cli -db plays.natix export othello > othello-out.xml
//	natix-cli -db plays.natix rm othello
//	natix-cli -db plays.natix stats
//
// batch evaluates a file of queries (one "<document> <path>" pair per
// line; blank lines and # comments skipped) fanned across -workers
// goroutines — a live demo of the concurrent read path.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natix"
)

func main() {
	var (
		dbPath   = flag.String("db", "natix.db", "database file")
		pageSize = flag.Int("pagesize", 8192, "page size for new stores")
		buffer   = flag.Int("buffer", 2<<20, "buffer pool bytes")
		pathIdx  = flag.Bool("pathindex", false, "maintain and use the path index")
		workers  = flag.Int("workers", 4, "goroutines for the batch command")
		limit    = flag.Int("limit", 0, "stop each query after N matches (0 = all)")
		timeout  = flag.Duration("timeout", 0, "per-query timeout, e.g. 500ms (0 = none)")
		useWAL   = flag.Bool("wal", false, "write-ahead logging: atomic, crash-durable mutations")
		noSync   = flag.Bool("nosync", false, "with -wal: skip the per-commit fsync")
		explain  = flag.Bool("explain", false, "with query: print the plan and measured execution instead of matches")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	db, err := natix.Open(natix.Options{Path: *dbPath, PageSize: *pageSize, BufferBytes: *buffer, PathIndex: *pathIdx, WAL: *useWAL, NoSync: *noSync})
	if err != nil {
		fatalf("open %s: %v", *dbPath, err)
	}
	defer db.Close()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "import":
		flat := false
		if len(rest) > 0 && rest[0] == "-flat" {
			flat = true
			rest = rest[1:]
		}
		if len(rest) != 2 {
			fatalf("usage: import [-flat] <name> <file.xml>")
		}
		f, err := os.Open(rest[1])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if flat {
			err = db.ImportXMLFlat(rest[0], f)
		} else {
			err = db.ImportXML(rest[0], f)
		}
		if err != nil {
			fatalf("import: %v", err)
		}
		fmt.Printf("imported %q\n", rest[0])
	case "export":
		if len(rest) != 1 {
			fatalf("usage: export <name>")
		}
		if err := db.ExportXML(rest[0], os.Stdout); err != nil {
			fatalf("export: %v", err)
		}
		fmt.Println()
	case "query":
		if len(rest) != 2 {
			fatalf("usage: query <name> <path>")
		}
		if *explain {
			// EXPLAIN mode: plan first (evaluator choice, per-step
			// cardinality estimates), then run the query counting-only and
			// print estimate and reality side by side.
			ctx, cancel := queryContext(*timeout)
			defer cancel()
			ex, err := db.ExplainRun(ctx, rest[0], rest[1])
			if err != nil {
				fatalf("explain: %v", err)
			}
			fmt.Println(ex)
			break
		}
		// A cursor, not db.Query: matches stream to stdout as they are
		// found, -limit stops the evaluator (and its page reads) at the
		// N-th match, and -timeout cancels a runaway scan mid-walk.
		ctx, cancel := queryContext(*timeout)
		defer cancel()
		cur, err := db.QueryIter(ctx, rest[0], rest[1], natix.WithLimit(*limit))
		if err != nil {
			fatalf("query: %v", err)
		}
		n := 0
		for cur.Next() {
			markup, err := cur.Match().Markup()
			if err != nil {
				fatalf("match %d: %v", n, err)
			}
			fmt.Println(markup)
			n++
		}
		if err := cur.Close(); err != nil {
			fatalf("query: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%d match(es)\n", n)
	case "batch":
		if len(rest) != 1 {
			fatalf("usage: batch <queries.txt>  (lines: <document> <path>)")
		}
		if err := runBatch(db, rest[0], *workers, *limit, *timeout); err != nil {
			fatalf("batch: %v", err)
		}
	case "ls":
		docs, err := db.Documents()
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range docs {
			mode := "tree"
			if d.Flat {
				mode = "flat"
			}
			fmt.Printf("%-8s %s\n", mode, d.Name)
		}
	case "validate":
		if len(rest) != 1 {
			fatalf("usage: validate <file.xml>")
		}
		f, err := os.Open(rest[0])
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		msgs, err := natix.ValidateXML(f)
		if err != nil {
			fatalf("validate: %v", err)
		}
		if len(msgs) == 0 {
			fmt.Println("valid")
			break
		}
		for _, m := range msgs {
			fmt.Println(m)
		}
		os.Exit(1)
	case "rm":
		if len(rest) != 1 {
			fatalf("usage: rm <name>")
		}
		if err := db.Delete(rest[0]); err != nil {
			fatalf("rm: %v", err)
		}
		fmt.Printf("removed %q\n", rest[0])
	case "reindex":
		if len(rest) != 1 {
			fatalf("usage: reindex <name>")
		}
		if err := db.ReindexDocument(rest[0]); err != nil {
			fatalf("reindex: %v", err)
		}
		fmt.Printf("reindexed %q\n", rest[0])
	case "stats":
		st, err := db.Stats()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("page size:        %d\n", st.PageSize)
		fmt.Printf("space on disk:    %d bytes\n", st.SpaceBytes)
		fmt.Printf("physical reads:   %d\n", st.PhysReads)
		fmt.Printf("physical writes:  %d\n", st.PhysWrites)
		fmt.Printf("buffer hits:      %d / %d logical reads\n", st.BufferHits, st.LogicalReads)
		fmt.Printf("record splits:    %d\n", st.Splits)
		fmt.Printf("records created:  %d\n", st.RecordsCreated)
		fmt.Printf("records deleted:  %d\n", st.RecordsDeleted)
		fmt.Printf("parent patches:   %d\n", st.ParentPatches)
		fmt.Printf("index builds:     %d\n", st.PathIndexBuilds)
		fmt.Printf("indexed queries:  %d / %d tree-mode\n", st.IndexedQueries, st.IndexedQueries+st.ScanQueries)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `natix-cli — manage a NATIX XML store

usage: natix-cli [-db file] [-pagesize n] [-buffer n] [-pathindex]
                 [-limit n] [-timeout d] <command> [args]

commands:
  import [-flat] <name> <file.xml>   store a document (tree or flat mode)
  export <name>                      write a document's XML to stdout
  query <name> <path>                stream a path query's matches to stdout
                                     (-explain: print plan + measured run instead)
  batch <queries.txt>                run a query file across -workers goroutines
                                     (lines: <document> <path>; # comments ok)
  validate <file.xml>                check a document against its own DTD
  ls                                 list documents
  rm <name>                          remove a document
  reindex <name>                     rebuild a document's path index
  stats                              storage statistics

-limit stops each query at its N-th match — the cursor stops reading
postings and records the moment the limit is hit — and -timeout cancels
each query that exceeds the given duration.
`)
}

// batchJob is one line of the query file.
type batchJob struct {
	line  int
	doc   string
	query string
}

// queryContext derives the per-query context from -timeout.
func queryContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

// countMatches counts one query's matches. Without a limit it defers to
// QueryCount (which on an indexed document never loads the matched
// records); with one it drains a bounded cursor, so evaluation stops
// reading postings and records as soon as the limit is hit.
func countMatches(db *natix.DB, doc, query string, limit int, timeout time.Duration) (int, error) {
	ctx, cancel := queryContext(timeout)
	defer cancel()
	if limit <= 0 {
		return db.QueryCountContext(ctx, doc, query)
	}
	cur, err := db.QueryIter(ctx, doc, query, natix.WithLimit(limit))
	if err != nil {
		return 0, err
	}
	n := 0
	for cur.Next() {
		n++
	}
	if err := cur.Close(); err != nil {
		return 0, err
	}
	return n, nil
}

// runBatch fans the query file's lines across workerCount goroutines
// over the shared DB and prints per-line match counts in input order.
func runBatch(db *natix.DB, path string, workerCount, limit int, timeout time.Duration) error {
	if workerCount < 1 {
		workerCount = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var jobs []batchJob
	sc := bufio.NewScanner(f)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		doc, query, ok := strings.Cut(line, " ")
		if !ok {
			return fmt.Errorf("%s:%d: want \"<document> <path>\", got %q", path, n, line)
		}
		jobs = append(jobs, batchJob{line: n, doc: doc, query: strings.TrimSpace(query)})
	}
	if err := sc.Err(); err != nil {
		return err
	}

	counts := make([]int, len(jobs))
	errs := make([]error, len(jobs))
	var next, total, failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workerCount; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				n, err := countMatches(db, jobs[i].doc, jobs[i].query, limit, timeout)
				if err != nil {
					errs[i] = err
					failed.Add(1)
					continue
				}
				counts[i] = n
				total.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, j := range jobs {
		if errs[i] != nil {
			fmt.Printf("%-20s %-40s ERROR %v\n", j.doc, j.query, errs[i])
			continue
		}
		fmt.Printf("%-20s %-40s %d\n", j.doc, j.query, counts[i])
	}
	fmt.Fprintf(os.Stderr, "%d queries, %d matches, %d errors, %d workers, %v (%.0f queries/s)\n",
		len(jobs), total.Load(), failed.Load(), workerCount, elapsed.Round(time.Microsecond),
		float64(len(jobs))/elapsed.Seconds())
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("%d of %d queries failed", n, len(jobs))
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "natix-cli: "+format+"\n", args...)
	os.Exit(1)
}
