module natix

go 1.24
