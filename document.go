package natix

import (
	"fmt"

	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/noderep"
)

// Document is an editable handle to a tree-mode document. Node positions
// are addressed by logical paths: a sequence of child indexes from the
// document root (attributes count as leading children, in declaration
// order).
//
// A Document is safe for concurrent use: edits take the same writer and
// per-document locks the DB mutators do, reads take the document's read
// lock. Edits therefore serialize with imports and deletes, and readers
// of other documents are never blocked by them.
type Document struct {
	db   *DB
	name string
	tree *core.Tree
}

// Document returns an editable handle to the named tree-mode document.
func (db *DB) Document(name string) (*Document, error) {
	return viewE(db, func() (*Document, error) {
		tree, err := db.store.Tree(name)
		if err != nil {
			return nil, err
		}
		return &Document{db: db, name: name, tree: tree}, nil
	})
}

// Name returns the document's catalog name.
func (d *Document) Name() string { return d.name }

// mutate runs fn under the lifecycle lock and the store's writer +
// per-document locks, bracketed by the index drop (PrepareMutation)
// and root-RID persistence (FinishBulk) every edit needs.
func (d *Document) mutate(fn func() error) error {
	return d.db.view(func() error {
		return d.db.store.Mutate(d.name, func() error {
			if err := d.db.store.PrepareMutation(d.name); err != nil {
				return err
			}
			if err := fn(); err != nil {
				return err
			}
			return d.db.store.FinishBulk(d.name, d.tree)
		})
	})
}

// view runs fn under the lifecycle lock and the document's read lock.
func (d *Document) view(fn func() error) error {
	return d.db.view(func() error {
		return d.db.store.View(d.name, fn)
	})
}

// InsertElement inserts a new element named name as child idx of the
// node at parentPath (idx == -1 appends).
func (d *Document) InsertElement(parentPath []int, idx int, name string) error {
	// Intern before taking the document lock; InternLabel serializes a
	// dictionary-growing intern against other mutators.
	label, err := viewE(d.db, func() (dict.LabelID, error) {
		return d.db.store.InternLabel(name)
	})
	if err != nil {
		return err
	}
	return d.mutate(func() error {
		return d.tree.InsertChild(core.Path(parentPath), idx, noderep.NewAggregate(label))
	})
}

// InsertText inserts a text node as child idx of the node at parentPath
// (idx == -1 appends).
func (d *Document) InsertText(parentPath []int, idx int, text string) error {
	return d.mutate(func() error {
		return d.tree.InsertChild(core.Path(parentPath), idx, noderep.NewTextLiteral(text))
	})
}

// DeleteNode removes the node at path together with its subtree.
func (d *Document) DeleteNode(path []int) error {
	return d.mutate(func() error {
		return d.tree.Delete(core.Path(path))
	})
}

// NodeCount returns the number of logical nodes in the document.
func (d *Document) NodeCount() (int, error) {
	count := 0
	err := d.view(func() error {
		c, err := d.tree.Cursor()
		if err != nil {
			return err
		}
		return c.WalkPreOrder(func(*core.Cursor) bool {
			count++
			return true
		})
	})
	return count, err
}

// RecordCount returns the number of physical records the document
// occupies — the visible effect of clustering decisions.
func (d *Document) RecordCount() (int, error) {
	count := 0
	err := d.view(func() error {
		var err error
		count, err = d.tree.RecordCount()
		return err
	})
	return count, err
}

// Check verifies the document's physical invariants (record sizes,
// proxy/parent consistency, scaffolding rules). Intended for tests and
// diagnostics.
func (d *Document) Check() error {
	return d.view(func() error {
		return d.tree.CheckInvariants()
	})
}

// Walk visits every logical node of the document in pre-order. For
// elements, name is the tag; for text nodes, name is "" and text holds
// the data. Returning false from fn prunes that node's subtree.
func (d *Document) Walk(fn func(path []int, name, text string) bool) error {
	return d.view(func() error {
		c, err := d.tree.Cursor()
		if err != nil {
			return err
		}
		dictionary := d.db.store.Dict()
		return c.WalkPreOrder(func(c *core.Cursor) bool {
			if c.IsLiteral() {
				text, err := c.Ref().Literal().StringValue()
				if err != nil {
					text = fmt.Sprintf("<binary literal: %v>", err)
				}
				return fn(c.Path(), "", text)
			}
			name, err := dictionary.Name(c.Label())
			if err != nil {
				name = fmt.Sprintf("<label %d>", c.Label())
			}
			return fn(c.Path(), name, "")
		})
	})
}
