package natix

import (
	"fmt"

	"natix/internal/core"
	"natix/internal/noderep"
)

// Document is an editable handle to a tree-mode document. Node positions
// are addressed by logical paths: a sequence of child indexes from the
// document root (attributes count as leading children, in declaration
// order).
type Document struct {
	db   *DB
	name string
	tree *core.Tree
}

// Document returns an editable handle to the named tree-mode document.
func (db *DB) Document(name string) (*Document, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	tree, err := db.store.Tree(name)
	if err != nil {
		return nil, err
	}
	return &Document{db: db, name: name, tree: tree}, nil
}

// Name returns the document's catalog name.
func (d *Document) Name() string { return d.name }

// save persists root-RID movement after mutations. Callers hold db.mu.
func (d *Document) save() error {
	return d.db.store.FinishBulk(d.name, d.tree)
}

// InsertElement inserts a new element named name as child idx of the
// node at parentPath (idx == -1 appends).
func (d *Document) InsertElement(parentPath []int, idx int, name string) error {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return ErrClosed
	}
	label, err := d.db.store.Dict().Intern(name)
	if err != nil {
		return err
	}
	if err := d.db.store.PrepareMutation(d.name); err != nil {
		return err
	}
	if err := d.tree.InsertChild(core.Path(parentPath), idx, noderep.NewAggregate(label)); err != nil {
		return err
	}
	return d.save()
}

// InsertText inserts a text node as child idx of the node at parentPath
// (idx == -1 appends).
func (d *Document) InsertText(parentPath []int, idx int, text string) error {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return ErrClosed
	}
	if err := d.db.store.PrepareMutation(d.name); err != nil {
		return err
	}
	if err := d.tree.InsertChild(core.Path(parentPath), idx, noderep.NewTextLiteral(text)); err != nil {
		return err
	}
	return d.save()
}

// DeleteNode removes the node at path together with its subtree.
func (d *Document) DeleteNode(path []int) error {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return ErrClosed
	}
	if err := d.db.store.PrepareMutation(d.name); err != nil {
		return err
	}
	if err := d.tree.Delete(core.Path(path)); err != nil {
		return err
	}
	return d.save()
}

// NodeCount returns the number of logical nodes in the document.
func (d *Document) NodeCount() (int, error) {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return 0, ErrClosed
	}
	c, err := d.tree.Cursor()
	if err != nil {
		return 0, err
	}
	count := 0
	err = c.WalkPreOrder(func(*core.Cursor) bool {
		count++
		return true
	})
	return count, err
}

// RecordCount returns the number of physical records the document
// occupies — the visible effect of clustering decisions.
func (d *Document) RecordCount() (int, error) {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return 0, ErrClosed
	}
	return d.tree.RecordCount()
}

// Check verifies the document's physical invariants (record sizes,
// proxy/parent consistency, scaffolding rules). Intended for tests and
// diagnostics.
func (d *Document) Check() error {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return ErrClosed
	}
	return d.tree.CheckInvariants()
}

// Walk visits every logical node of the document in pre-order. For
// elements, name is the tag; for text nodes, name is "" and text holds
// the data. Returning false from fn prunes that node's subtree.
func (d *Document) Walk(fn func(path []int, name, text string) bool) error {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if d.db.closed {
		return ErrClosed
	}
	c, err := d.tree.Cursor()
	if err != nil {
		return err
	}
	dictionary := d.db.store.Dict()
	return c.WalkPreOrder(func(c *core.Cursor) bool {
		if c.IsLiteral() {
			text, err := c.Ref().Literal().StringValue()
			if err != nil {
				text = fmt.Sprintf("<binary literal: %v>", err)
			}
			return fn(c.Path(), "", text)
		}
		name, err := dictionary.Name(c.Label())
		if err != nil {
			name = fmt.Sprintf("<label %d>", c.Label())
		}
		return fn(c.Path(), name, "")
	})
}
