// Durability benchmarks: what the write-ahead log costs on the import
// path, file-backed. BenchmarkImportWAL/off is the baseline;
// /on pays one group-commit sync per import plus the log writes;
// /nosync pays only the log writes. b.SetBytes reports MB/s over the
// XML text. The benchkit counterpart (natix-bench -experiment wal)
// measures the same matrix at paper scale and emits BENCH_wal.json.
package natix

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"natix/internal/corpus"
	"natix/internal/xmlkit"
)

func BenchmarkImportWAL(b *testing.B) {
	xml := xmlkit.SerializeString(corpus.GeneratePlay(corpus.DefaultSpec(), 0))
	configs := []struct {
		name        string
		wal, noSync bool
	}{
		{"off", false, false},
		{"on", true, false},
		{"nosync", true, true},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(Options{
				Path:   filepath.Join(dir, "bench.natix"),
				WAL:    cfg.wal,
				NoSync: cfg.noSync,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.SetBytes(int64(len(xml)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("doc-%d", i)
				if err := db.ImportXML(name, strings.NewReader(xml)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st, err := db.Stats(); err == nil && cfg.wal {
				b.ReportMetric(float64(st.WALBytes)/float64(b.N), "logB/op")
				b.ReportMetric(float64(st.WALSyncs)/float64(b.N), "syncs/op")
			}
		})
	}
}

// BenchmarkQueryWAL shows the read path is untouched by logging: the
// same indexed query against WAL-on and WAL-off stores.
func BenchmarkQueryWAL(b *testing.B) {
	xml := xmlkit.SerializeString(corpus.GeneratePlay(corpus.DefaultSpec(), 0))
	for _, useWAL := range []bool{false, true} {
		name := "off"
		if useWAL {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			db, err := Open(Options{
				Path:      filepath.Join(b.TempDir(), "bench.natix"),
				WAL:       useWAL,
				PathIndex: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.ImportXML("play", strings.NewReader(xml)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryCount("play", "//SPEAKER"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
