package natix

import (
	"context"
	"runtime/pprof"

	"natix/internal/docstore"
)

// PreparedQuery is a parsed and validated path expression. Preparing
// once moves parse errors (ErrBadQuery) to prepare time and amortizes
// parsing across evaluations: the same prepared query is reusable
// against any number of documents, from any number of goroutines
// concurrently. Query, QueryCount and QueryIter on DB are thin wrappers
// that prepare and evaluate in one call.
type PreparedQuery struct {
	db    *DB
	expr  string
	steps []docstore.Step
}

// Prepare parses and validates a path expression. A malformed
// expression fails here with ErrBadQuery (wrapped with the offending
// input). Parsing touches no database state, so Prepare takes no lock
// and works even on a closed DB — evaluating the prepared query is
// what fails with ErrClosed then.
func (db *DB) Prepare(expr string) (*PreparedQuery, error) {
	steps, err := docstore.ParseQuery(expr)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{db: db, expr: expr, steps: steps}, nil
}

// Expr returns the source expression the query was prepared from.
func (p *PreparedQuery) Expr() string { return p.expr }

// withLabels runs fn, tagging the goroutine with pprof labels for the
// duration when Options.PprofLabels is set — CPU profiles of a mixed
// workload then break down by operation and document.
func (p *PreparedQuery) withLabels(ctx context.Context, op, name string, fn func(context.Context) error) error {
	if !p.db.opts.PprofLabels {
		return fn(ctx)
	}
	var err error
	pprof.Do(ctx, pprof.Labels("natix_op", op, "natix_doc", name), func(cx context.Context) {
		err = fn(cx)
	})
	return err
}

// Query evaluates the prepared expression against the named document,
// materializing every match in document order.
func (p *PreparedQuery) Query(ctx context.Context, name string) ([]Match, error) {
	return viewE(p.db, func() ([]Match, error) {
		var out []Match
		err := p.withLabels(ctx, "query", name, func(cx context.Context) error {
			res, err := p.db.store.QuerySteps(cx, name, p.steps)
			if err != nil {
				return err
			}
			out = make([]Match, len(res))
			for i, r := range res {
				out[i] = Match{res: r}
			}
			return nil
		})
		return out, err
	})
}

// Count returns the number of matches of the prepared expression
// against the named document without materializing them.
func (p *PreparedQuery) Count(ctx context.Context, name string) (int, error) {
	return viewE(p.db, func() (int, error) {
		var n int
		err := p.withLabels(ctx, "count", name, func(cx context.Context) error {
			var err error
			n, err = p.db.store.QueryCountSteps(cx, name, p.steps)
			return err
		})
		return n, err
	})
}

// Iter opens a lazy cursor over the matches of the prepared expression
// against the named document. See Cursor for the iteration contract.
func (p *PreparedQuery) Iter(ctx context.Context, name string, opts ...QueryOption) (*Cursor, error) {
	var qo queryOptions
	for _, o := range opts {
		o(&qo)
	}
	return viewE(p.db, func() (*Cursor, error) {
		it, err := p.db.store.QueryIter(ctx, name, p.steps, docstore.IterOptions{Limit: qo.limit})
		if err != nil {
			return nil, err
		}
		return &Cursor{db: p.db, it: it}, nil
	})
}
