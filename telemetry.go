package natix

// The observability surface: engine metrics, operation traces, the
// slow-op log, and an expvar-compatible export. Metrics are always on
// (atomic counters and fixed-bucket histograms; no allocation on any
// hot path). Traces and the slow-op log are opt-in via
// Options.Tracing / Options.SlowOpThreshold.
//
// # Quick start: slow-op logging
//
//	db, _ := natix.Open(natix.Options{
//		Path:            "plays.natix",
//		SlowOpThreshold: 50 * time.Millisecond,
//		SlowOpSink: func(op natix.SlowOp) {
//			log.Printf("slow %s on %q: %v", op.Op, op.Doc, op.Duration)
//		},
//	})
//
// Operations slower than the threshold land in DB.SlowOps() (a bounded
// ring; newest first) and are handed to the sink as they finish. Each
// SlowOp carries the full trace: phase durations (parse vs finish vs
// index for an import; postings vs resolve for an indexed query) and
// attributes like rows and matches.
//
// # Quick start: metrics
//
//	m, _ := db.Metrics()
//	fmt.Println(m.Counters["buffer.hits"], m.Counters["wal.syncs"])
//	fmt.Println(time.Duration(m.Histograms["wal.fsync_ns"].Quantile(0.99)))
//
// To serve everything over HTTP with the standard library:
//
//	v, _ := db.MetricsVar()
//	expvar.Publish("natix", v)

import (
	"expvar"

	"natix/internal/telemetry"
)

// Metrics is a point-in-time snapshot of every engine metric: counter
// and gauge values by name, histograms by name. Marshals to JSON.
type Metrics = telemetry.Snapshot

// HistogramSnapshot is one histogram in a Metrics snapshot. Buckets
// are powers of two (bucket b counts observations in [2^(b-1), 2^b)
// nanoseconds); Mean and Quantile summarize without the caller knowing
// the bucket layout.
type HistogramSnapshot = telemetry.HistogramSnapshot

// Trace is one recorded operation: op name, document, start time,
// duration, phase breakdown, and attributes.
type Trace = telemetry.Trace

// SlowOp is a Trace that exceeded Options.SlowOpThreshold.
type SlowOp = telemetry.SlowOp

// Metrics returns a stabilized snapshot of every engine metric. The
// registry re-reads until two sweeps agree, so the snapshot is
// consistent across subsystems even under concurrent load.
func (db *DB) Metrics() (Metrics, error) {
	return viewE(db, func() (Metrics, error) { return db.reg.Snapshot(), nil })
}

// MetricsDelta returns the difference between the current counters and
// a previous snapshot — the per-interval view a poller wants.
func (db *DB) MetricsDelta(prev Metrics) (map[string]int64, error) {
	return viewE(db, func() (map[string]int64, error) {
		return db.reg.Snapshot().DeltaCounters(prev), nil
	})
}

// MetricsVar returns the metrics registry as an expvar.Var whose
// String() is the JSON snapshot, ready for expvar.Publish("natix", v)
// — published metrics then appear on /debug/vars with everything else.
// Publication is left to the caller so two DBs never fight over one
// expvar name.
func (db *DB) MetricsVar() (expvar.Var, error) {
	return viewE(db, func() (expvar.Var, error) { return db.reg, nil })
}

// RecentTraces returns the most recent operation traces, newest first.
// Empty unless the store was opened with Options.Tracing.
func (db *DB) RecentTraces() ([]Trace, error) {
	return viewE(db, func() ([]Trace, error) { return db.tracer.RecentTraces(), nil })
}

// SlowOps returns the most recent slow operations, newest first. Empty
// unless the store was opened with a positive Options.SlowOpThreshold.
func (db *DB) SlowOps() ([]SlowOp, error) {
	return viewE(db, func() ([]SlowOp, error) { return db.tracer.SlowOps(), nil })
}
