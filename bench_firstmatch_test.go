package natix

import (
	"testing"

	"natix/internal/benchkit"
	"natix/internal/corpus"
)

// BenchmarkQueryFirstMatch measures the cursor API's early-termination
// win: pulling the first match of a query through a lazy cursor versus
// materializing the whole result set, on the navigating scan and on the
// path index, over the Shakespeare-shaped corpus. The custom metric
// logical-reads/op is the load-bearing number — the cursor variant must
// touch far fewer pages, since it stops walking (scan) or stops
// resolving postings to records (indexed) after the first match. Each
// iteration clears the buffer pool and decoded caches, so every
// operation pays its full I/O.
//
//	go test -bench BenchmarkQueryFirstMatch .
func BenchmarkQueryFirstMatch(b *testing.B) {
	const query = "//SPEAKER"
	for _, tc := range []struct {
		evaluator string
		indexed   bool
	}{
		{"scan", false},
		{"indexed", true},
	} {
		env, err := benchkit.BuildEnv(corpus.SmallSpec(2), benchkit.Config{
			PageSize:    8192,
			BufferBytes: 8 << 20,
			Mode:        benchkit.ModeNative,
			Order:       benchkit.OrderAppend,
			PathIndex:   tc.indexed,
		})
		if err != nil {
			b.Fatal(err)
		}

		b.Run(tc.evaluator+"/cursor_first", func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				m, err := env.RunQueryFirstMatch("first", query, 1)
				if err != nil {
					b.Fatal(err)
				}
				if m.Work == 0 {
					b.Fatal("cursor consumed no match")
				}
				reads += m.LogicalReads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "logical-reads/op")
		})
		b.Run(tc.evaluator+"/materialize_all", func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				m, err := env.RunQuery("full", query, false)
				if err != nil {
					b.Fatal(err)
				}
				reads += m.LogicalReads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "logical-reads/op")
		})
	}
}
