package integrity

// Unit tests of the scrubber's page-verification judgment, against a
// fake segment. End-to-end scrub/repair/quarantine behavior is covered
// by the fault-injection tests in the root package (integrity_test.go);
// these pin the per-page rules in isolation.

import (
	"testing"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

const testPageSize = 2048

// fakeSeg implements segmentIface with an explicit layout: page 0 is
// the header, page 1 the inventory covering everything after it.
type fakeSeg struct {
	free map[pagedev.PageNo]int
}

func (f *fakeSeg) IsFSIPage(p pagedev.PageNo) bool  { return p == 1 }
func (f *fakeSeg) IsDataPage(p pagedev.PageNo) bool { return p > 1 }
func (f *fakeSeg) FreeHint(p pagedev.PageNo) (int, error) {
	return f.free[p], nil
}
func (f *fakeSeg) MaxRecordSize() int                       { return testPageSize - 64 }
func (f *fakeSeg) RebuildFSIPage(p pagedev.PageNo) error    { return nil }
func (f *fakeSeg) NotifyFree(p pagedev.PageNo, n int) error { return nil }

// page builds a checksummed page of the given type.
func page(t pageformat.PageType) []byte {
	b := make([]byte, testPageSize)
	pageformat.InitCommon(b, t)
	pageformat.UpdateChecksum(b)
	return b
}

func TestVerifyPage(t *testing.T) {
	s := New(Config{})
	maxFree := (&fakeSeg{}).MaxRecordSize() + pageformat.SlotOverhead
	seg := &fakeSeg{free: map[pagedev.PageNo]int{2: maxFree, 3: 16}}

	corrupt := func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[testPageSize/2] ^= 0x40
		return c
	}
	blank := make([]byte, testPageSize) // no magic: reads as TypeInvalid

	cases := []struct {
		name string
		p    pagedev.PageNo
		buf  []byte
		ok   bool
	}{
		{"header ok", 0, page(pageformat.TypeHeader), true},
		{"header crc", 0, corrupt(page(pageformat.TypeHeader)), false},
		{"header wrong type", 0, page(pageformat.TypeSlotted), false},
		{"fsi ok", 1, page(pageformat.TypeFSI), true},
		{"fsi crc", 1, corrupt(page(pageformat.TypeFSI)), false},
		{"fsi wrong type", 1, page(pageformat.TypePlain), false},
		{"data slotted ok", 2, page(pageformat.TypeSlotted), true},
		{"data plain ok", 2, page(pageformat.TypePlain), true},
		{"data crc", 2, corrupt(page(pageformat.TypeSlotted)), false},
		// A data page with no magic is benign only while the inventory
		// says it was never used: a corrupted magic on a live page makes
		// every header field unverifiable, so the free hint is the
		// deciding signal.
		{"data unformatted free", 2, blank, true},
		{"data unformatted live", 3, blank, false},
		// A data page wearing a header/FSI type is misplaced whatever
		// its checksum says.
		{"data wrong type", 2, page(pageformat.TypeHeader), false},
	}
	for _, tc := range cases {
		if got := s.verifyPage(seg, tc.p, tc.buf); got != tc.ok {
			t.Errorf("%s: verifyPage = %v, want %v", tc.name, got, tc.ok)
		}
	}
}

func TestReportClean(t *testing.T) {
	r := &Report{}
	if !r.Clean() {
		t.Error("empty report not clean")
	}
	if (&Report{CorruptFound: 1}).Clean() {
		t.Error("corruption reported clean")
	}
	if (&Report{BadRIDs: 1}).Clean() {
		t.Error("broken references reported clean")
	}
	if (&Report{Quarantined: map[string]string{"d": "x"}}).Clean() {
		t.Error("active quarantine reported clean")
	}
}

func TestPacerDisabled(t *testing.T) {
	if newPacer(0) != nil {
		t.Error("rate 0 must disable pacing")
	}
	p := newPacer(1000)
	for i := 0; i < 3*pacerChunk; i++ {
		p.tick() // must not panic or hang; sleeps are sub-millisecond
	}
}
