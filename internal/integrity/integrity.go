// Package integrity implements the storage scrubber: proactive
// detection of silent page corruption, in-place repair from the
// write-ahead log, and document-granularity quarantine of whatever
// cannot be healed.
//
// # What a scrub does
//
// A scrub sweeps every allocated page of the segment and verifies the
// device copy: CRC, page type against the page's role (header,
// free-space inventory, data), and the cross-structure invariants —
// the inventory never overstates a page's free space, every catalog
// root resolves to a live record, every path-index posting blob is
// readable. Pages resident in the buffer pool are skipped: their frame
// is the authoritative copy (the device bytes may be legitimately
// stale), and skipping them is also what keeps the scrubber from ever
// contending on a frame latch with foreground work.
//
// # The repair ladder
//
// A page that fails verification is repaired from the best available
// source, in order:
//
//  1. the write-ahead log — any page with an image-bearing record in
//     the current checkpoint epoch is rebuilt byte-for-byte
//     (wal.ReconstructPage) and re-stamped in place;
//  2. the header snapshot — the docstore re-captures page 0 at every
//     checkpoint, and the absence of a page-0 log image proves the
//     header unchanged since, so the snapshot restores it exactly;
//  3. recomputation — free-space-inventory pages are fully derivable
//     from the slot directories of the pages they cover
//     (segment.RebuildFSIPage), so they never quarantine anything;
//  4. quarantine — a data page with no image source damages exactly
//     the documents whose record graphs touch it: those are
//     quarantined in the docstore (operations fail fast with
//     ErrQuarantined) while every other document keeps serving. Every
//     unrepaired page is also fenced out of the allocator, so a
//     healthy document's next insert never lands on known-bad bytes.
//
// The scrub runs under the docstore's writer mutex, so no examined
// page has an update in flight; readers proceed untouched. The
// pages-per-second rate limit bounds scrub I/O on an idle store.
package integrity

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"natix/internal/buffer"
	"natix/internal/docstore"
	"natix/internal/ioretry"
	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/telemetry"
	"natix/internal/wal"
)

// Config assembles the subsystems a scrubber operates on.
type Config struct {
	Pool  *buffer.Pool
	Store *docstore.Store
	WAL   *wal.Writer // nil when logging is off: repair source 1 unavailable

	// RateLimit bounds the sweep at pages per second (0 = unlimited).
	RateLimit int
}

// Report describes one scrub pass.
type Report struct {
	PagesChecked  int64 // pages verified against the device
	PagesResident int64 // pages skipped because their frame is authoritative
	CorruptFound  int64 // pages that failed verification
	FSIFixed      int64 // inventory entries corrected (overstated free space)
	BadRIDs       int64 // catalog/index references that no longer resolve

	Repaired    []pagedev.PageNo  // rebuilt in place (WAL image or FSI recompute)
	Unrepaired  []pagedev.PageNo  // no repair source; owners quarantined
	Fenced      []pagedev.PageNo  // unrepaired pages owned by no document
	Quarantined map[string]string // document -> reason

	Duration time.Duration
}

// Clean reports a store with nothing wrong: no corruption found and
// nothing previously quarantined still is.
func (r *Report) Clean() bool {
	return r.CorruptFound == 0 && r.BadRIDs == 0 && len(r.Quarantined) == 0
}

// Stats are the scrubber's cumulative counters (across all passes).
type Stats struct {
	Scrubs        int64
	PagesVerified int64
	Repairs       int64
	Quarantines   int64
	IORetries     int64
}

// Scrubber verifies and repairs a store's pages. Safe for concurrent
// use; passes serialize on the docstore writer mutex.
type Scrubber struct {
	cfg Config
	mu  sync.Mutex // serializes Scrub bookkeeping

	scrubs        atomic.Int64
	pagesVerified atomic.Int64
	repairs       atomic.Int64
	quarantines   atomic.Int64

	// retry absorbs transient device errors on the scrubber's own
	// direct reads (foreground I/O goes through the pool's retryer).
	retry ioretry.Retryer
}

// New creates a scrubber over cfg.
func New(cfg Config) *Scrubber {
	return &Scrubber{cfg: cfg}
}

// Stats returns the cumulative counters. IORetries aggregates every
// retry site in the engine: the buffer pool, the log writer, and the
// scrubber's own device reads.
func (s *Scrubber) Stats() Stats {
	st := Stats{
		Scrubs:        s.scrubs.Load(),
		PagesVerified: s.pagesVerified.Load(),
		Repairs:       s.repairs.Load(),
		Quarantines:   s.quarantines.Load(),
		IORetries:     s.cfg.Pool.IORetries() + s.retry.Retries(),
	}
	if s.cfg.WAL != nil {
		st.IORetries += s.cfg.WAL.IORetries()
	}
	return st
}

// AttachTelemetry registers the scrubber's counters with a metrics
// registry.
func (s *Scrubber) AttachTelemetry(reg *telemetry.Registry) {
	reg.Func("integrity.scrubs", s.scrubs.Load)
	reg.Func("integrity.pages_verified", s.pagesVerified.Load)
	reg.Func("integrity.repairs", s.repairs.Load)
	reg.Func("integrity.quarantines", s.quarantines.Load)
	reg.Func("integrity.io_retries", func() int64 { return s.Stats().IORetries })
}

// Scrub runs one full pass: sweep, repair, attribute, quarantine. It
// returns a Report even when err is non-nil (err reflects an I/O or
// walk failure that ended the pass early, not corruption — corruption
// is the report's job). The pass holds the docstore writer mutex, so
// mutators wait; size the rate limit accordingly.
func (s *Scrubber) Scrub(ctx context.Context) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &Report{Quarantined: make(map[string]string)}
	start := telemetry.Now()
	err := s.cfg.Store.ExclusiveMaintenance(func() error {
		return s.scrubLocked(ctx, rep)
	})
	rep.Duration = telemetry.Since(start)
	s.scrubs.Add(1)
	return rep, err
}

// pacer bounds the sweep rate: after every chunk of pages it sleeps
// long enough to hold the configured pages-per-second average.
type pacer struct {
	interval time.Duration // per-page budget
	pending  int
}

const pacerChunk = 32

func newPacer(rate int) *pacer {
	if rate <= 0 {
		return nil
	}
	return &pacer{interval: time.Second / time.Duration(rate)}
}

func (p *pacer) tick() {
	if p == nil {
		return
	}
	p.pending++
	if p.pending >= pacerChunk {
		telemetry.Sleep(time.Duration(p.pending) * p.interval)
		p.pending = 0
	}
}

// sweepWindow serves a sweep's page reads from a sliding read-ahead
// window: when the sweep asks for a page outside the window, the
// window advances and fetches every contiguous run of wanted,
// non-resident pages inside it with one vectored pagedev.ReadRange
// (through the scrubber's ioretry policy). The scrubber deliberately
// does NOT use the pool's Prefetch for this: prefetched pages become
// resident, and the sweep skips resident pages — pool-level read-ahead
// would collapse the scrub's own coverage. Device-level batching gives
// the same sequential I/O without touching the frame table.
//
// A failed vectored read is not an error: the affected pages fall back
// to individual reads at consumption time, so a single unreadable page
// surfaces exactly the per-page error the unbatched sweep produced.
type sweepWindow struct {
	s        *Scrubber
	dev      pagedev.Device
	pageSize int
	want     func(pagedev.PageNo) bool // pages this sweep pass verifies

	base pagedev.PageNo // first page covered by the window
	n    int            // pages covered (0 until the first fill)
	have []bool         // per-slot: filled by a successful batch read
	buf  []byte
}

// sweepWindowPages matches the pacer chunk, so one window fill is one
// rate-limited burst of device work.
const sweepWindowPages = pacerChunk

func newSweepWindow(s *Scrubber, dev pagedev.Device, pageSize int, want func(pagedev.PageNo) bool) *sweepWindow {
	return &sweepWindow{
		s:        s,
		dev:      dev,
		pageSize: pageSize,
		want:     want,
		have:     make([]bool, sweepWindowPages),
		buf:      make([]byte, sweepWindowPages*pageSize),
	}
}

// page returns the device image of p, valid until the next page call
// that advances the window.
func (w *sweepWindow) page(ctx context.Context, p pagedev.PageNo) ([]byte, error) {
	if w.n == 0 || p < w.base || p >= w.base+pagedev.PageNo(w.n) {
		w.fill(ctx, p)
	}
	idx := int(p - w.base)
	b := w.buf[idx*w.pageSize : (idx+1)*w.pageSize]
	if !w.have[idx] {
		// Not covered by a batch read (resident at fill time, filtered
		// out, or the vectored read failed): read it individually.
		if err := w.s.retry.DoCtx(ctx, func() error { return w.dev.Read(p, b) }); err != nil {
			return nil, err
		}
		w.have[idx] = true
	}
	return b, nil
}

// fill advances the window to start at p and batch-reads the contiguous
// runs of wanted, non-resident pages it covers. Read failures are left
// for page to retry individually.
func (w *sweepWindow) fill(ctx context.Context, p pagedev.PageNo) {
	n := sweepWindowPages
	if rest := w.dev.NumPages() - p; pagedev.PageNo(n) > rest {
		n = int(rest)
	}
	w.base, w.n = p, n
	for i := range w.have {
		w.have[i] = false
	}
	for i := 0; i < n; {
		pn := p + pagedev.PageNo(i)
		if !w.want(pn) || w.s.cfg.Pool.Resident(pn) {
			i++
			continue
		}
		j := i + 1
		for j < n {
			pj := p + pagedev.PageNo(j)
			if !w.want(pj) || w.s.cfg.Pool.Resident(pj) {
				break
			}
			j++
		}
		b := w.buf[i*w.pageSize : j*w.pageSize]
		start := pn
		if err := w.s.retry.DoCtx(ctx, func() error { return pagedev.ReadRange(w.dev, start, b) }); err == nil {
			for k := i; k < j; k++ {
				w.have[k] = true
			}
		}
		i = j
	}
}

func (s *Scrubber) scrubLocked(ctx context.Context, rep *Report) error {
	dev := s.cfg.Pool.Device()
	seg := s.cfg.Store.Trees().Records().Segment()
	pageSize := dev.PageSize()
	numPages := dev.NumPages()
	pace := newPacer(s.cfg.RateLimit)

	var corrupt []pagedev.PageNo

	// Pass 1: the segment header and every FSI page, so that pass 2 can
	// trust free-space hints when judging data pages. Then the data
	// pages themselves. Each pass pulls its device reads through a
	// sliding read-ahead window (sweepWindow): contiguous runs of
	// pages the pass will verify are fetched with single vectored
	// reads, so sweeping a large store is a few sequential transfers
	// per pacer chunk instead of one random read per page.
	sweep := func(wantFSI bool) error {
		win := newSweepWindow(s, dev, pageSize, func(p pagedev.PageNo) bool {
			return (p == 0 || seg.IsFSIPage(p)) == wantFSI
		})
		for p := pagedev.PageNo(0); p < numPages; p++ {
			isFSI := p == 0 || seg.IsFSIPage(p)
			if isFSI != wantFSI {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			pace.tick()
			if s.cfg.Pool.Resident(p) {
				rep.PagesResident++
				s.pagesVerified.Add(1)
				continue
			}
			rep.PagesChecked++
			s.pagesVerified.Add(1)
			buf, err := win.page(ctx, p)
			if err != nil {
				return fmt.Errorf("integrity: read page %d: %w", p, err)
			}
			if s.verifyPage(seg, p, buf) {
				continue
			}
			rep.CorruptFound++
			repaired, err := s.repair(seg, p, pageSize)
			if err != nil {
				return err
			}
			if repaired {
				s.repairs.Add(1)
				rep.Repaired = append(rep.Repaired, p)
			} else {
				rep.Unrepaired = append(rep.Unrepaired, p)
				corrupt = append(corrupt, p)
			}
		}
		return nil
	}
	if err := sweep(true); err != nil {
		return err
	}
	if err := sweep(false); err != nil {
		return err
	}

	// Cross-structure pass: every catalog root and path-index blob must
	// resolve to live records. A document whose references are broken
	// is as damaged as one sitting on a corrupt page.
	broken := s.checkReferences(rep)

	// Attribution: map unrepaired pages to the documents whose graphs
	// touch them, quarantine those, fence orphan pages out of the
	// allocator. Documents clean this pass leave quarantine.
	if err := s.attribute(seg, rep, corrupt, broken); err != nil {
		return err
	}
	return nil
}

// verifyPage checks one non-resident device page image: CRC plus the
// page type its location demands. A data page reading as TypeInvalid
// (bad magic) passes only when the inventory records it completely
// empty — a formatted-but-never-flushed page — because a corrupted
// magic makes every other header field, CRC included, unverifiable.
func (s *Scrubber) verifyPage(seg segmentIface, p pagedev.PageNo, buf []byte) bool {
	if err := pageformat.VerifyChecksum(buf); err != nil {
		return false
	}
	t := pageformat.TypeOf(buf)
	switch {
	case p == 0:
		return t == pageformat.TypeHeader
	case seg.IsFSIPage(p):
		return t == pageformat.TypeFSI
	default:
		if t == pageformat.TypeSlotted || t == pageformat.TypePlain {
			return true
		}
		if t != pageformat.TypeInvalid {
			return false
		}
		free, err := seg.FreeHint(p)
		return err == nil && free >= seg.MaxRecordSize()+pageformat.SlotOverhead
	}
}

// segmentIface is the slice of *segment.Segment the scrubber uses —
// narrow so tests can fake it.
type segmentIface interface {
	IsFSIPage(p pagedev.PageNo) bool
	IsDataPage(p pagedev.PageNo) bool
	FreeHint(p pagedev.PageNo) (int, error)
	MaxRecordSize() int
	RebuildFSIPage(p pagedev.PageNo) error
	NotifyFree(p pagedev.PageNo, freeBytes int) error
}

// repair tries the repair ladder on page p, reporting whether the page
// was rebuilt. An error means the repair machinery itself failed (a
// device write error), not that the page is unrepairable.
func (s *Scrubber) repair(seg segmentIface, p pagedev.PageNo, pageSize int) (bool, error) {
	// 1. The log: byte-exact reconstruction when an image exists.
	if s.cfg.WAL != nil {
		img, ok, err := s.cfg.WAL.ReconstructPage(p, pageSize)
		if err == nil && ok {
			if err := s.cfg.Pool.Restore(p, img); err != nil {
				return false, fmt.Errorf("integrity: restore page %d: %w", p, err)
			}
			return true, nil
		}
	}
	// 2. The header snapshot: the docstore keeps a copy of page 0 from
	// the last checkpoint. No page-0 image in the log (step 1 missed)
	// means the header has not changed since then — any change would
	// have logged a first-update image — so the snapshot is current.
	if p == 0 && s.cfg.WAL != nil {
		if hc := s.cfg.Store.HeaderSnapshot(); len(hc) == pageSize {
			if err := s.cfg.Pool.Restore(0, hc); err != nil {
				return false, fmt.Errorf("integrity: restore header page: %w", err)
			}
			return true, nil
		}
	}
	// 3. Recomputation: inventory pages are derivable from the pages
	// they cover.
	if p != 0 && seg.IsFSIPage(p) {
		if err := seg.RebuildFSIPage(p); err != nil {
			return false, fmt.Errorf("integrity: rebuild FSI page %d: %w", p, err)
		}
		return true, nil
	}
	return false, nil
}

// checkReferences verifies that every catalog root and every
// path-index blob resolves, returning the set of documents with broken
// references.
func (s *Scrubber) checkReferences(rep *Report) map[string]string {
	broken := make(map[string]string)
	st := s.cfg.Store
	rm := st.Trees().Records()
	for _, info := range st.Documents() {
		if err := rm.VerifyRID(info.Root); err != nil {
			rep.BadRIDs++
			broken[info.Name] = fmt.Sprintf("catalog root %s: %v", info.Root, err)
			continue
		}
		if px := st.PathIndex(); px != nil {
			rids, err := px.BlobRIDs(info.Name)
			if err != nil {
				rep.BadRIDs++
				broken[info.Name] = fmt.Sprintf("path index: %v", err)
				continue
			}
			for _, rid := range rids {
				if err := rm.VerifyRID(rid); err != nil {
					rep.BadRIDs++
					broken[info.Name] = fmt.Sprintf("path index blob %s: %v", rid, err)
					break
				}
			}
		}
	}
	return broken
}

// attribute maps unrepaired corrupt pages to their owning documents,
// quarantines those (and documents with broken references), fences
// orphan corrupt pages, and lifts quarantine from documents that came
// through this pass clean.
func (s *Scrubber) attribute(seg segmentIface, rep *Report, corrupt []pagedev.PageNo, broken map[string]string) error {
	st := s.cfg.Store
	implicated := broken // name -> reason

	if len(corrupt) > 0 {
		corruptSet := make(map[pagedev.PageNo]bool, len(corrupt))
		for _, p := range corrupt {
			corruptSet[p] = true
		}
		owned := make(map[pagedev.PageNo]bool, len(corrupt))
		for _, info := range st.Documents() {
			// Documents already implicated by a broken reference are
			// still walked: the pages their intact prefix reaches must
			// count as owned, not as fenceable dead space.
			_, done := implicated[info.Name]
			pages, err := st.PageOwners(info.Name)
			hit := false
			for _, p := range pages {
				if corruptSet[p] {
					owned[p] = true
					if !hit {
						hit = true
						if !done {
							implicated[info.Name] = fmt.Sprintf("corrupt page %d (no log image)", p)
						}
					}
				}
			}
			if err != nil && !hit && !done {
				// The walk broke before completing: the document
				// touches damage we could not enumerate past.
				implicated[info.Name] = fmt.Sprintf("record walk failed: %v", err)
			}
		}
		// Fence every unrepaired data page from the allocator — a healthy
		// document's next insert must not land on known-bad bytes. The
		// zeroed hint is an unbracketed log write; recovery replays it as
		// finished, and losing it merely re-fences on the next scrub.
		// Pages no document owns are additionally reported as dead space.
		for _, p := range corrupt {
			if p == 0 || !seg.IsDataPage(p) {
				continue
			}
			if err := seg.NotifyFree(p, 0); err == nil && !owned[p] {
				rep.Fenced = append(rep.Fenced, p)
			}
		}
		// A corrupt segment header (page 0) with no log image poisons
		// everything: every root pointer is suspect.
		for _, p := range corrupt {
			if p == 0 {
				for _, info := range st.Documents() {
					if _, done := implicated[info.Name]; !done {
						implicated[info.Name] = "segment header corrupt"
					}
				}
			}
		}
	}

	for name, reason := range implicated {
		if _, already := st.Quarantined(name); !already {
			s.quarantines.Add(1)
		}
		st.Quarantine(name, reason)
		rep.Quarantined[name] = reason
	}
	// Documents that came through clean leave quarantine: the repair
	// path (or a reopen that preceded this scrub) healed them.
	for name := range st.QuarantinedDocs() {
		if _, still := implicated[name]; !still {
			st.Unquarantine(name)
		}
	}
	sort.Slice(rep.Repaired, func(i, j int) bool { return rep.Repaired[i] < rep.Repaired[j] })
	sort.Slice(rep.Unrepaired, func(i, j int) bool { return rep.Unrepaired[i] < rep.Unrepaired[j] })
	return nil
}
