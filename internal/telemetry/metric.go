package telemetry

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe on a nil receiver (they no-op or return
// zero), so registry-owned handles can be updated before attachment.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Store sets the counter (ResetStats-style rebaselining only; counters
// are otherwise monotonic).
func (c *Counter) Store(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Gauge is a metric that can move in both directions (resident frames,
// open cursors).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// counterShards spreads a contended counter over cache lines. Eight
// covers the core counts the engine targets without bloating Load.
const counterShards = 8

// paddedCounter occupies a full cache line so two shards never share
// one (the whole point of sharding).
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a Counter for write-hot, multi-core call sites
// (buffer-pool hit accounting): adds land on one of several
// cache-line-padded cells chosen by a per-goroutine hint, and Load sums
// the cells. Load is O(shards) and momentarily inconsistent across
// cells — exactly the counter trade-off.
type ShardedCounter struct {
	shards [counterShards]paddedCounter
}

// shardHint derives a cheap per-goroutine shard index from the address
// of a stack variable: distinct goroutines run on distinct stacks, so
// concurrent writers spread across cells. It is a hint, not an
// identity — correctness never depends on it.
func shardHint() int {
	var x byte
	return int((uintptr(unsafe.Pointer(&x)) >> 11) % counterShards)
}

// Add increments the counter by n.
func (c *ShardedCounter) Add(n int64) {
	if c != nil {
		c.shards[shardHint()].v.Add(n)
	}
}

// Load returns the summed value.
func (c *ShardedCounter) Load() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Store resets every cell, leaving the sum at v (cell 0 carries it).
func (c *ShardedCounter) Store(v int64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
	c.shards[0].v.Store(v)
}

// histBuckets is the fixed bucket count: power-of-two-nanosecond
// buckets, bucket b covering [2^(b-1), 2^b). Forty buckets reach ~9
// minutes — far beyond any single engine operation.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram. Observations are
// bucketed by bit length — no floats, no allocation, no locks. The zero
// value is ready; methods are nil-safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (typically nanoseconds). Negative values
// clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [histBuckets]int64 `json:"buckets,omitempty"`
}

// snapshot copies the histogram's cells.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// top of the bucket the quantile falls in. Bucket resolution is a
// factor of two, which is all a fixed-bucket histogram promises.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for b, n := range s.Buckets {
		seen += n
		if seen > rank {
			if b == 0 {
				return 0
			}
			return (int64(1) << uint(b)) - 1
		}
	}
	return (int64(1) << (histBuckets - 1)) - 1
}
