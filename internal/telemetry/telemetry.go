// Package telemetry is the engine's zero-dependency instrumentation
// layer: a metrics registry of atomic counters, gauges and fixed-bucket
// latency histograms; a lightweight span API for operation tracing with
// a bounded in-memory trace ring; and a slow-operation log with a
// pluggable sink.
//
// The package is built for hot paths. Metric updates are single atomic
// adds (sharded where a counter is contended across cores), histogram
// observations are two atomic adds and one atomic bucket increment, and
// none of them allocate. Disabled tracing costs one atomic load per
// operation: Tracer.Start returns a nil *Span when neither tracing nor
// the slow-op log is on, and every Span method is a no-op on a nil
// receiver, so instrumentation sites need no conditionals.
//
// # Adding a counter
//
// Subsystems either keep their own atomic counters and expose them to
// the registry as read-only views (Registry.Func), or ask the registry
// for an owned metric (Registry.Counter, Registry.Histogram) during
// their AttachTelemetry hook. Registry-owned metric handles are nil-safe,
// so a subsystem that was never attached can update its handles
// unconditionally.
//
// # The span clock
//
// Now and Since are the only sanctioned time sources in instrumented
// hot paths (internal/buffer, internal/wal, internal/docstore,
// internal/core, internal/records, internal/pathindex, internal/segment):
// the telemetryclock analyzer (cmd/natix-vet, in the lint job) fails
// the build on a direct time.Now there, which keeps every clock read
// auditable when reasoning about instrumentation overhead.
package telemetry

import "time"

// Now is the span clock: the one sanctioned wall/monotonic time source
// for telemetry-instrumented hot paths. time.Time carries a monotonic
// reading, so durations derived via Since are immune to wall-clock
// steps.
func Now() time.Time { return time.Now() }

// Since returns the time elapsed since t, using the monotonic clock.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep pauses the calling goroutine for d. It is the sanctioned delay
// primitive for engine packages that must pace themselves (the
// integrity scrubber's rate limiter, the I/O retry backoff): routing
// the pause through here keeps every sleep auditable alongside every
// clock read. Non-positive durations return immediately.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}
