package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one integer annotation on a span ("matches": 42,
// "logical_reads": 7).
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Phase is one completed child span inside a trace: a named segment of
// its parent operation with its own duration and annotations.
type Phase struct {
	Op       string        `json:"op"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace is one completed root span: an operation's breakdown as
// recorded into the trace ring.
type Trace struct {
	Op       string        `json:"op"`
	Doc      string        `json:"doc,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Phases   []Phase       `json:"phases,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// SlowOp is one slow-operation record: the trace of an operation whose
// duration met or exceeded the configured threshold.
type SlowOp struct {
	Trace
	Threshold time.Duration `json:"threshold"`
}

// TracerOptions configure a Tracer.
type TracerOptions struct {
	// Enabled records every completed root span into the trace ring.
	Enabled bool
	// BufferSize bounds the trace ring (0 = 256).
	BufferSize int
	// SlowOpThreshold, when positive, emits a SlowOp for every root
	// span at least this long — with or without Enabled.
	SlowOpThreshold time.Duration
	// SlowOpSink receives slow-op records. Nil keeps them in an
	// internal ring readable via SlowOps. The sink is called
	// synchronously from the operation's goroutine; keep it fast.
	SlowOpSink func(SlowOp)
}

// defaultRingSize bounds the trace and slow-op rings.
const defaultRingSize = 256

// Tracer hands out spans and collects finished traces. A nil *Tracer is
// valid and hands out nil spans, so instrumented subsystems hold a
// possibly-nil tracer and call it unconditionally.
type Tracer struct {
	active atomic.Bool // any recording at all: gates Start's fast path
	record bool        // completed root spans go to the trace ring
	slowNS int64       // slow-op threshold (0 = off)
	sink   func(SlowOp)

	mu      sync.Mutex
	traces  ring[Trace]
	slowOps ring[SlowOp]
}

// NewTracer creates a tracer. With neither tracing nor a slow-op
// threshold enabled, Start returns nil spans and operations pay one
// atomic load.
func NewTracer(o TracerOptions) *Tracer {
	size := o.BufferSize
	if size <= 0 {
		size = defaultRingSize
	}
	t := &Tracer{
		record: o.Enabled,
		slowNS: int64(o.SlowOpThreshold),
		sink:   o.SlowOpSink,
		traces: ring[Trace]{buf: make([]Trace, size)},
	}
	if o.SlowOpThreshold > 0 && o.SlowOpSink == nil {
		t.slowOps = ring[SlowOp]{buf: make([]SlowOp, size)}
	}
	t.active.Store(o.Enabled || o.SlowOpThreshold > 0)
	return t
}

// Start opens a root span for one operation. It returns nil — and every
// downstream Span call no-ops — when the tracer is nil or records
// nothing.
func (t *Tracer) Start(op string) *Span {
	if t == nil || !t.active.Load() {
		return nil
	}
	return &Span{tracer: t, op: op, start: Now()}
}

// Enabled reports whether Start returns live spans.
func (t *Tracer) Enabled() bool { return t != nil && t.active.Load() }

// RecentTraces returns the completed root spans still in the ring,
// newest first.
func (t *Tracer) RecentTraces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces.newestFirst()
}

// SlowOps returns the slow-op records still in the internal ring,
// newest first. Always empty when a sink was configured — the sink owns
// the records then.
func (t *Tracer) SlowOps() []SlowOp {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slowOps.newestFirst()
}

// finish records one completed root span.
func (t *Tracer) finish(tr Trace) {
	slow := t.slowNS > 0 && int64(tr.Duration) >= t.slowNS
	if slow && t.sink != nil {
		t.sink(SlowOp{Trace: tr, Threshold: time.Duration(t.slowNS)})
	}
	if !t.record && !(slow && t.sink == nil) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.record {
		t.traces.push(tr)
	}
	if slow && t.sink == nil {
		t.slowOps.push(SlowOp{Trace: tr, Threshold: time.Duration(t.slowNS)})
	}
}

// Span is one timed segment of an operation. A span is owned by the
// goroutine running the operation: its methods must not be called
// concurrently. All methods are no-ops on a nil receiver.
type Span struct {
	tracer *Tracer
	parent *Span
	op     string
	doc    string
	start  time.Time
	attrs  []Attr
	phases []Phase
	ended  bool
}

// Child opens a sub-span; its duration and attributes become one Phase
// of this span when the child Ends.
func (s *Span) Child(op string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tracer: s.tracer, parent: s, op: op, start: Now()}
}

// SetDoc annotates the span with the document it operates on.
func (s *Span) SetDoc(doc string) {
	if s != nil {
		s.doc = doc
	}
}

// Add attaches (or accumulates onto) an integer annotation.
func (s *Span) Add(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val += v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// End closes the span: a child folds into its parent as a Phase, a root
// span becomes a Trace handed to the tracer (and, past the threshold, a
// SlowOp). End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := Since(s.start)
	if s.parent != nil {
		s.parent.phases = append(s.parent.phases, Phase{Op: s.op, Duration: d, Attrs: s.attrs})
		return
	}
	s.tracer.finish(Trace{
		Op:       s.op,
		Doc:      s.doc,
		Start:    s.start,
		Duration: d,
		Phases:   s.phases,
		Attrs:    s.attrs,
	})
}

// ring is a bounded circular buffer under its owner's lock.
type ring[T any] struct {
	buf  []T
	next int
	n    int // elements stored, ≤ len(buf)
}

func (r *ring[T]) push(v T) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newestFirst copies the contents, most recent element first.
func (r *ring[T]) newestFirst() []T {
	if r.n == 0 {
		return nil
	}
	out := make([]T, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
