package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d", got)
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 0 {
		t.Fatalf("nil gauge Load = %d", got)
	}
	var h *Histogram
	h.Observe(9)
	var sc *ShardedCounter
	sc.Add(5)
	if got := sc.Load(); got != 0 {
		t.Fatalf("nil sharded Load = %d", got)
	}
}

func TestShardedCounterSumAndReset(t *testing.T) {
	var c ShardedCounter
	for i := 0; i < 1000; i++ {
		c.Add(1)
	}
	if got := c.Load(); got != 1000 {
		t.Fatalf("Load = %d, want 1000", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after Store(0) = %d", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 20, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+3+1000+(1<<20)+0 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %d, want 0", q)
	}
	// The max observation (2^20) lands in bucket 21, upper bound 2^21-1.
	if q := s.Quantile(1); q != (1<<21)-1 {
		t.Fatalf("Quantile(1) = %d, want %d", q, (1<<21)-1)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("Mean = %v", m)
	}
	// Overflow value clamps into the last bucket.
	h.Observe(1 << 62)
	if got := h.snapshot().Buckets[histBuckets-1]; got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
}

func TestRegistrySnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	g := r.Gauge("a.gauge")
	h := r.Histogram("a.hist")
	var ext int64 = 40
	r.Func("a.view", func() int64 { return ext })

	c.Add(3)
	g.Set(-2)
	h.Observe(100)

	s := r.Snapshot()
	if s.Counters["a.count"] != 3 || s.Counters["a.gauge"] != -2 || s.Counters["a.view"] != 40 {
		t.Fatalf("snapshot = %+v", s.Counters)
	}
	if hs := s.Histograms["a.hist"]; hs.Count != 1 || hs.Sum != 100 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	c.Add(7)
	ext = 50
	d := r.Snapshot().DeltaCounters(s)
	if d["a.count"] != 7 || d["a.view"] != 10 || d["a.gauge"] != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if names := s.Names(); len(names) != 3 || names[0] != "a.count" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup")
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1) // nil handle from nil registry must not crash
	r.Func("y", func() int64 { return 1 })
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

func TestRegistryExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.count").Add(5)
	var decoded Snapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if decoded.Counters["x.count"] != 5 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if !strings.Contains(r.String(), "x.count") {
		t.Fatal("String() missing metric name")
	}
}

func TestTracerDisabledHandsOutNilSpans(t *testing.T) {
	var nilT *Tracer
	if sp := nilT.Start("op"); sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	off := NewTracer(TracerOptions{})
	if sp := off.Start("op"); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	// The full nil-span surface must be inert.
	var sp *Span
	sp.SetDoc("d")
	sp.Add("k", 1)
	c := sp.Child("c")
	c.End()
	sp.End()
}

func TestTracerRecordsTraces(t *testing.T) {
	tr := NewTracer(TracerOptions{Enabled: true, BufferSize: 4})
	for i := 0; i < 6; i++ {
		sp := tr.Start("op")
		sp.SetDoc("doc")
		sp.Add("n", int64(i))
		ch := sp.Child("phase")
		ch.Add("k", 1)
		ch.End()
		sp.End()
	}
	got := tr.RecentTraces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Newest first: attr n counts down from 5.
	if got[0].Attrs[0].Val != 5 || got[3].Attrs[0].Val != 2 {
		t.Fatalf("order wrong: %+v", got)
	}
	if got[0].Doc != "doc" || len(got[0].Phases) != 1 || got[0].Phases[0].Op != "phase" {
		t.Fatalf("trace = %+v", got[0])
	}
}

func TestSlowOpLogRingAndSink(t *testing.T) {
	// Internal ring: threshold 0ns-exceeded by everything.
	tr := NewTracer(TracerOptions{SlowOpThreshold: time.Nanosecond})
	sp := tr.Start("slow")
	sp.SetDoc("d")
	time.Sleep(time.Millisecond)
	sp.End()
	ops := tr.SlowOps()
	if len(ops) != 1 || ops[0].Op != "slow" || ops[0].Threshold != time.Nanosecond {
		t.Fatalf("slow ops = %+v", ops)
	}
	if len(tr.RecentTraces()) != 0 {
		t.Fatal("tracing off but trace recorded")
	}

	// Pluggable sink: records go to the sink, not the ring.
	var mu sync.Mutex
	var sunk []SlowOp
	ts := NewTracer(TracerOptions{SlowOpThreshold: time.Nanosecond, SlowOpSink: func(o SlowOp) {
		mu.Lock()
		sunk = append(sunk, o)
		mu.Unlock()
	}})
	sp2 := ts.Start("slow2")
	time.Sleep(time.Millisecond)
	sp2.End()
	if len(sunk) != 1 || sunk[0].Op != "slow2" {
		t.Fatalf("sink got %+v", sunk)
	}
	if len(ts.SlowOps()) != 0 {
		t.Fatal("sink configured but internal ring populated")
	}

	// Fast ops below the threshold leave no record.
	tf := NewTracer(TracerOptions{SlowOpThreshold: time.Hour})
	spf := tf.Start("fast")
	spf.End()
	if len(tf.SlowOps()) != 0 {
		t.Fatal("fast op logged as slow")
	}
}

// TestMetricsStressConcurrent hammers every metric type from many
// goroutines while others take snapshots — the race-detector workout
// for the registry's lock-free read paths.
func TestMetricsStressConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s.count")
	sc := new(ShardedCounter)
	r.Func("s.sharded", sc.Load)
	g := r.Gauge("s.gauge")
	h := r.Histogram("s.hist")

	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				sc.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := r.Snapshot()
		if s.Counters["s.count"] < 0 || s.Counters["s.sharded"] < 0 {
			t.Fatal("negative counter observed")
		}
		select {
		case <-done:
			s = r.Snapshot()
			if s.Counters["s.count"] != writers*perWriter {
				t.Fatalf("count = %d, want %d", s.Counters["s.count"], writers*perWriter)
			}
			if s.Counters["s.sharded"] != 2*writers*perWriter {
				t.Fatalf("sharded = %d", s.Counters["s.sharded"])
			}
			if s.Counters["s.gauge"] != 0 {
				t.Fatalf("gauge = %d, want 0", s.Counters["s.gauge"])
			}
			if s.Histograms["s.hist"].Count != writers*perWriter {
				t.Fatalf("hist count = %d", s.Histograms["s.hist"].Count)
			}
			return
		default:
		}
	}
}

// TestTracerStressConcurrent runs spans on many goroutines while
// readers drain the rings.
func TestTracerStressConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{Enabled: true, BufferSize: 64, SlowOpThreshold: time.Nanosecond})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("op")
				sp.SetDoc("doc")
				ch := sp.Child("phase")
				ch.Add("i", int64(i))
				ch.End()
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, trc := range tr.RecentTraces() {
			if trc.Op != "op" {
				t.Fatalf("trace op = %q", trc.Op)
			}
		}
		_ = tr.SlowOps()
		select {
		case <-done:
			if got := len(tr.RecentTraces()); got != 64 {
				t.Fatalf("ring holds %d, want 64", got)
			}
			return
		default:
		}
	}
}
