package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Registry maps canonical metric names ("buffer.logical_reads",
// "wal.fsync_ns") to metrics. Registration takes a lock; metric updates
// never touch the registry again — subsystems hold the returned handles
// directly. All methods are safe for concurrent use, and every accessor
// is nil-safe so unattached subsystems need no guards.
type Registry struct {
	mu    sync.Mutex
	ints  map[string]func() int64 // counters, gauges and read-only views
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ints:  make(map[string]func() int64),
		hists: make(map[string]*Histogram),
	}
}

// registerInt installs an integer reader, panicking on a duplicate name:
// two subsystems claiming one metric is a wiring bug, not a runtime
// condition.
func (r *Registry) registerInt(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ints[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.ints[name] = fn
}

// Counter creates and registers a registry-owned counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := new(Counter)
	r.registerInt(name, c.Load)
	return c
}

// Gauge creates and registers a registry-owned gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := new(Gauge)
	r.registerInt(name, g.Load)
	return g
}

// Histogram creates and registers a registry-owned histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := new(Histogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.hists[name] = h
	return h
}

// Func registers a read-only integer view — the adoption path for
// counters a subsystem already maintains as its own atomics.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.registerInt(name, fn)
}

// Snapshot is a quasi-consistent point-in-time copy of every registered
// metric.
type Snapshot struct {
	// Counters holds every integer metric (counters, gauges, views) by
	// name.
	Counters map[string]int64 `json:"counters"`
	// Histograms holds every histogram by name.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every metric. Integer metrics are read in a
// double-read stabilization loop: the pass is retried (bounded) until
// two consecutive sweeps agree, so under a quiescent or slowly moving
// store the snapshot is exactly consistent, and under heavy concurrency
// it is at worst one sweep wide — never the four-subsystem-calls-apart
// tear the old Stats path had.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.ints))
	readers := make([]func() int64, 0, len(r.ints))
	for n, fn := range r.ints {
		names = append(names, n)
		readers = append(readers, fn)
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	cur := make([]int64, len(readers))
	nxt := make([]int64, len(readers))
	sweep := func(dst []int64) {
		for i, fn := range readers {
			dst[i] = fn()
		}
	}
	sweep(cur)
	for try := 0; try < 3; try++ {
		sweep(nxt)
		stable := true
		for i := range cur {
			if cur[i] != nxt[i] {
				stable = false
				break
			}
		}
		cur, nxt = nxt, cur
		if stable {
			break
		}
	}

	s := Snapshot{Counters: make(map[string]int64, len(names))}
	for i, n := range names {
		s.Counters[n] = cur[i]
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// DeltaCounters returns this snapshot's integer metrics minus prev's —
// the activity between two snapshots. Metrics absent from prev count
// from zero; metrics that did not move are omitted, so the delta reads
// as "what happened", not a dump of every registered name.
func (s Snapshot) DeltaCounters(prev Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for n, v := range s.Counters {
		if d := v - prev.Counters[n]; d != 0 {
			out[n] = d
		}
	}
	return out
}

// Names returns the snapshot's integer metric names, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the current snapshot as JSON, which makes the registry
// an expvar.Var: expvar.Publish("natix", db.MetricsVar()) exports every
// engine metric over /debug/vars without any further glue.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
