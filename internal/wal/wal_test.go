package wal

import (
	"bytes"
	"errors"
	"testing"

	"natix/internal/pagedev"
)

func TestWriterAppendScanRoundTrip(t *testing.T) {
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	begin, err := w.Begin("import:doc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if begin == 0 {
		t.Fatal("begin LSN must be nonzero")
	}
	img := bytes.Repeat([]byte{0xCD}, 4096)
	if _, err := w.AppendImage(7, img); err != nil {
		t.Fatal(err)
	}
	ranges := []Range{
		{Off: 10, Before: []byte{1, 2}, After: []byte{3, 4}},
		{Off: 100, Before: []byte{5}, After: []byte{6}},
	}
	if _, err := w.AppendUpdate(2, ranges); err != nil {
		t.Fatal(err)
	}
	snap := bytes.Repeat([]byte{0x11}, 4096)
	if _, err := w.AppendFirstUpdate(1, snap, ranges[:1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	_, end, err := Scan(st, func(r Record) error {
		// Copy: decode aliases the scan buffer per record.
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != w.End() {
		t.Fatalf("scan end %d != writer end %d", end, w.End())
	}
	types := []uint8{RecBegin, RecImage, RecUpdate, RecFirstUpdate, RecCommit}
	if len(got) != len(types) {
		t.Fatalf("scanned %d records, want %d", len(got), len(types))
	}
	for i, r := range got {
		if r.Type != types[i] {
			t.Fatalf("record %d type %s, want %s", i, TypeName(r.Type), TypeName(types[i]))
		}
	}
	if got[0].Kind != "import:doc" || got[0].PreNumPages != 3 {
		t.Fatalf("begin decoded as %+v", got[0])
	}
	if got[1].Page != 7 || !bytes.Equal(got[1].Image, img) {
		t.Fatal("image record mismatch")
	}
	if got[2].Page != 2 || len(got[2].Ranges) != 2 ||
		got[2].Ranges[0].Off != 10 ||
		!bytes.Equal(got[2].Ranges[0].After, []byte{3, 4}) ||
		!bytes.Equal(got[2].Ranges[1].Before, []byte{5}) {
		t.Fatalf("update record mismatch: %+v", got[2].Ranges)
	}
	if !bytes.Equal(got[3].BeforeImage, snap) {
		t.Fatal("first-update before-image mismatch")
	}
}

func TestWriterReadBack(t *testing.T) {
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	begin, _ := w.Begin("op", 1)
	var lsns []LSN
	for i := 0; i < 50; i++ {
		lsn, err := w.AppendUpdate(pagedev.PageNo(i), []Range{{Off: i, Before: []byte{byte(i)}, After: []byte{byte(i + 1)}}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// Half buffered, half flushed: force a partial flush boundary.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 60; i++ {
		lsn, err := w.AppendUpdate(pagedev.PageNo(i), []Range{{Off: i, Before: []byte{byte(i)}, After: []byte{byte(i + 1)}}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	all, err := w.RecordLSNsSince(begin)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 61 { // begin + 60 updates
		t.Fatalf("RecordLSNsSince returned %d records, want 61", len(all))
	}
	for i, lsn := range lsns {
		rec, err := w.ReadRecord(lsn)
		if err != nil {
			t.Fatalf("ReadRecord(%d): %v", lsn, err)
		}
		if rec.Type != RecUpdate || rec.Page != pagedev.PageNo(i) || rec.Ranges[0].Off != i {
			t.Fatalf("record %d decoded as %+v", i, rec)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterSingleOperationRule(t *testing.T) {
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: 4096})
	if err := w.Commit(); !errors.Is(err, ErrNoOp) {
		t.Fatalf("commit without begin: %v", err)
	}
	if _, err := w.Begin("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin("b", 0); !errors.Is(err, ErrInOp) {
		t.Fatalf("nested begin: %v", err)
	}
	if err := w.Checkpoint(1); err == nil {
		t.Fatal("checkpoint inside an operation must fail")
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesAndKeepsLSNsMonotonic(t *testing.T) {
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: 4096})
	w.Begin("op", 0)
	w.AppendUpdate(1, []Range{{Off: 0, Before: []byte{0}, After: []byte{1}}})
	w.Commit()
	before := w.End()
	if err := w.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	if w.Size() != headerSize {
		t.Fatalf("log size %d after checkpoint, want %d", w.Size(), headerSize)
	}
	after := w.End()
	if after < before {
		t.Fatalf("LSN went backwards across checkpoint: %d -> %d", before, after)
	}
	// A fresh record lands above every pre-checkpoint LSN.
	w.Begin("op2", 0)
	lsn, _ := w.AppendUpdate(2, []Range{{Off: 0, Before: []byte{1}, After: []byte{2}}})
	if lsn < before {
		t.Fatalf("post-checkpoint LSN %d below pre-checkpoint end %d", lsn, before)
	}
	w.Commit()
}

func TestScanStopsAtTornTail(t *testing.T) {
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: 4096})
	w.Begin("op", 0)
	w.AppendUpdate(1, []Range{{Off: 0, Before: []byte{0}, After: []byte{1}}})
	w.Commit()
	w.Begin("op2", 0)
	w.AppendUpdate(2, []Range{{Off: 0, Before: []byte{1}, After: []byte{2}}})
	w.Sync()

	full := st.Snapshot()
	// Count full records.
	n := 0
	if _, _, err := Scan(st, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("full log has %d records, want 5", n)
	}
	// Tear the tail at every byte boundary: the scan must never error,
	// and must never return more records than the tear allows.
	for cut := headerSize; cut < len(full); cut++ {
		torn := NewMemStorageFrom(full[:cut])
		got := 0
		if _, _, err := Scan(torn, func(Record) error { got++; return nil }); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got > n {
			t.Fatalf("cut %d: %d records from a shorter log", cut, got)
		}
	}
	// Corrupt one payload byte mid-log: scan stops before that record.
	bad := append([]byte(nil), full...)
	bad[headerSize+frameSize+2] ^= 0xFF
	got := 0
	if _, _, err := Scan(NewMemStorageFrom(bad), func(Record) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("corrupt first record: scanned %d records, want 0", got)
	}
}

func TestNoSyncSkipsBarriers(t *testing.T) {
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: 4096, NoSync: true})
	w.Begin("op", 0)
	w.AppendUpdate(1, []Range{{Off: 0, Before: []byte{0}, After: []byte{1}}})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if s := w.Stats(); s.Syncs != 0 {
		t.Fatalf("NoSync writer issued %d syncs", s.Syncs)
	}
	// Records still reach storage.
	n := 0
	Scan(st, func(Record) error { n++; return nil })
	if n != 3 {
		t.Fatalf("NoSync log has %d records, want 3", n)
	}
}
