package wal

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Storage is the byte store a log lives in. The write-ahead log needs
// positional reads and writes, truncation (checkpoints discard the
// log), and a durability barrier. File-backed stores use FileStorage;
// in-memory stores and tests use MemStorage.
type Storage interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Truncate resizes the storage to exactly n bytes.
	Truncate(n int64) error
	// Sync forces written bytes to stable storage.
	Sync() error
	// Close releases the storage.
	Close() error
}

// FileStorage is a Storage backed by an operating-system file.
type FileStorage struct {
	f *os.File
}

// OpenFileStorage opens (or creates) the log file at path.
func OpenFileStorage(path string) (*FileStorage, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileStorage{f: f}, nil
}

// ReadAt implements Storage.
func (s *FileStorage) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

// WriteAt implements Storage.
func (s *FileStorage) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// Size implements Storage.
func (s *FileStorage) Size() (int64, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate implements Storage.
func (s *FileStorage) Truncate(n int64) error { return s.f.Truncate(n) }

// Sync implements Storage.
func (s *FileStorage) Sync() error { return s.f.Sync() }

// Close implements Storage.
func (s *FileStorage) Close() error { return s.f.Close() }

// MemStorage is an in-memory Storage. It is safe for concurrent use
// and supports snapshotting, which crash tests use to capture the
// bytes that "survived" a simulated crash.
type MemStorage struct {
	mu sync.RWMutex
	b  []byte
}

// NewMemStorage returns an empty in-memory log storage.
func NewMemStorage() *MemStorage { return &MemStorage{} }

// NewMemStorageFrom returns an in-memory storage holding a copy of b.
func NewMemStorageFrom(b []byte) *MemStorage {
	return &MemStorage{b: append([]byte(nil), b...)}
}

// Snapshot returns a copy of the current contents.
func (s *MemStorage) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]byte(nil), s.b...)
}

// ReadAt implements Storage.
func (s *MemStorage) ReadAt(p []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off >= int64(len(s.b)) {
		return 0, io.EOF
	}
	n := copy(p, s.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Storage.
func (s *MemStorage) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := off + int64(len(p))
	if grow := end - int64(len(s.b)); grow > 0 {
		s.b = append(s.b, make([]byte, grow)...)
	}
	copy(s.b[off:end], p)
	return len(p), nil
}

// Size implements Storage.
func (s *MemStorage) Size() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.b)), nil
}

// Truncate implements Storage.
func (s *MemStorage) Truncate(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if grow := n - int64(len(s.b)); grow > 0 {
		s.b = append(s.b, make([]byte, grow)...)
	}
	s.b = s.b[:n]
	return nil
}

// Sync implements Storage. In-memory storage is "stable" by fiat.
func (s *MemStorage) Sync() error { return nil }

// Close implements Storage.
func (s *MemStorage) Close() error { return nil }
