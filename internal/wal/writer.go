package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"natix/internal/ioretry"
	"natix/internal/pagedev"
	"natix/internal/telemetry"
)

// Options configure a log writer.
type Options struct {
	// PageSize is the database page size, recorded in the log header.
	PageSize int
	// NoSync skips the durability barrier on commit: records are still
	// written to the log file, but the operating system decides when
	// they reach the platter. Trades crash durability of the last few
	// operations for speed; the file can never become corrupt.
	NoSync bool
	// BufferLimit overrides the append-buffer size (0 = 256 KB).
	// Crash tests shrink it so every record append becomes a separate
	// file write — a separate crash point.
	BufferLimit int
}

// Stats counts log activity since the writer was opened.
type Stats struct {
	Appends     int64 // records appended
	Bytes       int64 // payload bytes appended
	Syncs       int64 // durability barriers issued
	Checkpoints int64 // checkpoints taken
}

// Writer is the append side of the log. Appends are buffered in memory
// and reach the file on Flush/Sync — commit is the group-commit point:
// an operation's records travel to the file together and cost one sync.
// All methods are safe for concurrent use (the single mutator appends
// while buffer-pool evictions on reader goroutines call FlushTo).
type Writer struct {
	mu       sync.Mutex
	st       Storage
	opts     Options
	base     LSN   // LSN of the byte at file offset headerSize
	fileEnd  int64 // bytes currently in the file
	buf      []byte
	synced   LSN // log is durable through here (exclusive)
	activeOp uint64
	beginLSN LSN
	opSeq    uint64

	appends     int64
	bytes       int64
	syncs       int64
	checkpoints int64

	// retry absorbs transient storage errors on the append path: a
	// momentary EIO while flushing the buffer retries with backoff
	// instead of aborting the operation.
	retry ioretry.Retryer

	// Telemetry histograms (nil until AttachTelemetry; Observe on nil
	// no-ops). opAppends counts the records of the active operation so
	// endOp can observe the group-commit batch size.
	fsyncNS   *telemetry.Histogram
	batchRecs *telemetry.Histogram
	opAppends int64

	// images maps each page to the LSN of the latest image-bearing
	// record (RecImage or RecFirstUpdate) appended for it this
	// checkpoint epoch — the repair path's index: any page listed here
	// can be reconstructed from the log alone. Cleared at checkpoint,
	// when the log resets and the device becomes the authority.
	images map[pagedev.PageNo]LSN
}

// bufFlushLimit bounds the in-memory append buffer; a bigger buffer is
// written out (without sync) to keep operation memory flat.
const bufFlushLimit = 256 << 10

// OpenWriter attaches a writer to st, creating the log header if the
// storage is empty. Recovery, when needed, must run before the writer
// is opened: the writer appends at the current end of storage.
func OpenWriter(st Storage, opts Options) (*Writer, error) {
	if !pagedev.ValidPageSize(opts.PageSize) {
		return nil, fmt.Errorf("wal: invalid page size %d", opts.PageSize)
	}
	size, err := st.Size()
	if err != nil {
		return nil, err
	}
	w := &Writer{st: st, opts: opts}
	if w.opts.BufferLimit == 0 {
		w.opts.BufferLimit = bufFlushLimit
	}
	if size == 0 {
		w.base = 1
		w.fileEnd = headerSize
		if _, err := st.WriteAt(encodeHeader(header{base: w.base, pageSize: opts.PageSize}), 0); err != nil {
			return nil, err
		}
		// The header must be durable before any record is appended:
		// recovery treats an unreadable header as an empty log.
		if err := st.Sync(); err != nil {
			return nil, err
		}
	} else {
		hb := make([]byte, headerSize)
		if _, err := st.ReadAt(hb, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
		}
		h, err := decodeHeader(hb)
		if err != nil {
			return nil, err
		}
		if h.pageSize != opts.PageSize {
			return nil, fmt.Errorf("%w: log page size %d, store %d", ErrBadHeader, h.pageSize, opts.PageSize)
		}
		w.base = h.base
		w.fileEnd = size
	}
	w.synced = w.endLocked()
	w.images = make(map[pagedev.PageNo]LSN)
	w.rebuildImageIndex()
	return w, nil
}

// endLocked returns the LSN one past the last appended record.
func (w *Writer) endLocked() LSN {
	return w.base + LSN(w.fileEnd-headerSize) + LSN(len(w.buf))
}

// End returns the LSN the next record will be assigned.
func (w *Writer) End() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.endLocked()
}

// SyncedLSN returns the LSN through which the log is durable.
func (w *Writer) SyncedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// Size returns the log size in bytes, buffered appends included.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fileEnd + int64(len(w.buf))
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{Appends: w.appends, Bytes: w.bytes, Syncs: w.syncs, Checkpoints: w.checkpoints}
}

// AttachTelemetry registers the writer's counters with a metrics
// registry and enables the fsync-duration and group-commit batch-size
// histograms. Call before mutation traffic starts.
func (w *Writer) AttachTelemetry(reg *telemetry.Registry) {
	read := func(p *int64) func() int64 {
		return func() int64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return *p
		}
	}
	reg.Func("wal.appends", read(&w.appends))
	reg.Func("wal.bytes", read(&w.bytes))
	reg.Func("wal.syncs", read(&w.syncs))
	reg.Func("wal.checkpoints", read(&w.checkpoints))
	reg.Func("wal.size_bytes", w.Size)
	reg.Func("wal.io_retries", w.retry.Retries)
	w.fsyncNS = reg.Histogram("wal.fsync_ns")
	w.batchRecs = reg.Histogram("wal.commit_batch_records")
}

// IORetries returns the number of transient storage errors the writer
// has absorbed by retrying.
func (w *Writer) IORetries() int64 { return w.retry.Retries() }

// appendLocked frames rec into the buffer and returns its LSN.
func (w *Writer) appendLocked(rec *Record) (LSN, error) {
	lsn := w.endLocked()
	payload := encodePayload(rec)
	w.buf = appendRecord(w.buf, payload)
	w.appends++
	w.bytes += int64(len(payload))
	if rec.Type == RecImage || rec.Type == RecFirstUpdate {
		w.images[rec.Page] = lsn
	}
	if len(w.buf) >= w.opts.BufferLimit {
		if err := w.flushLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// flushLocked writes the buffer to storage without a sync barrier.
func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.retry.Do(func() error {
		_, err := w.st.WriteAt(w.buf, w.fileEnd)
		return err
	}); err != nil {
		return err
	}
	w.fileEnd += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// syncLocked makes every appended record durable.
func (w *Writer) syncLocked() error {
	end := w.endLocked()
	if err := w.flushLocked(); err != nil {
		return err
	}
	if !w.opts.NoSync {
		start := telemetry.Now()
		if err := w.st.Sync(); err != nil {
			return err
		}
		w.fsyncNS.Observe(int64(telemetry.Since(start)))
		w.syncs++
	}
	w.synced = end
	return nil
}

// Sync flushes the buffer and issues a durability barrier.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// FlushTo ensures the log is durable through lsn. The buffer manager
// calls it before writing back a dirty page (the WAL rule).
func (w *Writer) FlushTo(lsn LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.synced >= lsn {
		return nil
	}
	return w.syncLocked()
}

// Begin opens an operation: all subsequent updates belong to it until
// Commit or Abort. preNumPages is the device size before the operation;
// undo truncates back to it. Returns the begin record's LSN.
func (w *Writer) Begin(kind string, preNumPages uint64) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.activeOp != 0 {
		return 0, fmt.Errorf("%w: %q", ErrInOp, kind)
	}
	w.opSeq++
	w.opAppends = w.appends
	rec := Record{Type: RecBegin, OpID: w.opSeq, PreNumPages: preNumPages, Kind: kind}
	lsn, err := w.appendLocked(&rec)
	if err != nil {
		return 0, err
	}
	w.activeOp = w.opSeq
	w.beginLSN = lsn
	return lsn, nil
}

// ActiveOp returns the begin LSN of the operation in progress, if any.
func (w *Writer) ActiveOp() (LSN, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.beginLSN, w.activeOp != 0
}

// Commit closes the active operation and makes it durable: the group
// commit point — one sync covers every record the operation appended.
func (w *Writer) Commit() error {
	return w.endOp(RecCommit)
}

// Abort closes the active operation after its effects were rolled back
// (the compensating updates are ordinary logged updates preceding the
// abort record).
func (w *Writer) Abort() error {
	return w.endOp(RecAbort)
}

func (w *Writer) endOp(t uint8) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.activeOp == 0 {
		return ErrNoOp
	}
	rec := Record{Type: t, OpID: w.activeOp}
	if _, err := w.appendLocked(&rec); err != nil {
		return err
	}
	// Group-commit batch size: every record the operation appended
	// (begin + updates + commit/abort) travels under this one sync.
	w.batchRecs.Observe(w.appends - w.opAppends)
	w.activeOp = 0
	w.beginLSN = 0
	return w.syncLocked()
}

// AppendUpdate logs a byte-range change to a page.
func (w *Writer) AppendUpdate(page pagedev.PageNo, ranges []Range) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(&Record{Type: RecUpdate, Page: page, Ranges: ranges})
}

// AppendFirstUpdate logs the first post-checkpoint change to an
// existing page: the full before-image plus the changed ranges.
func (w *Writer) AppendFirstUpdate(page pagedev.PageNo, beforeImage []byte, ranges []Range) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(&Record{Type: RecFirstUpdate, Page: page, BeforeImage: beforeImage, Ranges: ranges})
}

// AppendImage logs the full after-image of a freshly allocated page.
func (w *Writer) AppendImage(page pagedev.PageNo, image []byte) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(&Record{Type: RecImage, Page: page, Image: image})
}

// AppendShrink logs a device truncation (runtime rollback deallocating
// the pages an aborted operation grew the device by).
func (w *Writer) AppendShrink(numPages uint64) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(&Record{Type: RecShrink, NumPages: numPages})
}

// Checkpoint marks all pages durable and resets the log. The caller
// must have synced the log, flushed every dirty page and synced the
// device, in that order, before calling; no operation may be active.
// The sequence is: checkpoint record (so a crash between here and the
// truncation recovers from the checkpoint, a no-op), then truncation
// with the header's base LSN advanced so LSNs stay monotonic.
func (w *Writer) Checkpoint(numPages uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.activeOp != 0 {
		return fmt.Errorf("wal: checkpoint with operation in progress")
	}
	if _, err := w.appendLocked(&Record{Type: RecCheckpoint, NumPages: numPages}); err != nil {
		return err
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	newBase := w.endLocked()
	if err := w.st.Truncate(headerSize); err != nil {
		return err
	}
	if _, err := w.st.WriteAt(encodeHeader(header{base: newBase, pageSize: w.opts.PageSize}), 0); err != nil {
		return err
	}
	if !w.opts.NoSync {
		start := telemetry.Now()
		if err := w.st.Sync(); err != nil {
			return err
		}
		w.fsyncNS.Observe(int64(telemetry.Since(start)))
		w.syncs++
	}
	w.base = newBase
	w.fileEnd = headerSize
	w.buf = w.buf[:0]
	w.synced = newBase
	w.checkpoints++
	// The truncated log holds no images: every page is now durable on
	// the device, which becomes the sole authority until the next
	// first-update re-images it.
	clear(w.images)
	return nil
}

// RecordLSNsSince returns the LSNs of every record appended at or after
// from, in log order. Runtime rollback collects these and then reads
// each record back in reverse.
func (w *Writer) RecordLSNsSince(from LSN) ([]LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []LSN
	lsn := from
	end := w.endLocked()
	for lsn < end {
		_, n, err := w.readFrameLocked(lsn)
		if err != nil {
			return nil, err
		}
		out = append(out, lsn)
		lsn += LSN(n)
	}
	return out, nil
}

// ReadRecord reads one record back by LSN, from the file or the append
// buffer. The returned record owns its memory.
func (w *Writer) ReadRecord(lsn LSN) (Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload, _, err := w.readFrameLocked(lsn)
	if err != nil {
		return Record{}, err
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, err
	}
	rec.LSN = lsn
	return rec, nil
}

// readFrameLocked returns the payload (a private copy) and total frame
// length of the record at lsn.
func (w *Writer) readFrameLocked(lsn LSN) (payload []byte, frameLen int, err error) {
	if lsn < w.base {
		return nil, 0, fmt.Errorf("%w: LSN %d before log base %d", ErrBadRecord, lsn, w.base)
	}
	read := func(p []byte, off int64) error {
		fileBytes := w.fileEnd - headerSize
		for len(p) > 0 {
			if off < fileBytes {
				n := int64(len(p))
				if off+n > fileBytes {
					n = fileBytes - off
				}
				if _, err := w.st.ReadAt(p[:n], headerSize+off); err != nil {
					return err
				}
				p = p[n:]
				off += n
			} else {
				boff := off - fileBytes
				if boff >= int64(len(w.buf)) {
					return fmt.Errorf("%w: LSN beyond log end", ErrBadRecord)
				}
				n := copy(p, w.buf[boff:])
				p = p[n:]
				off += int64(n)
			}
		}
		return nil
	}
	off := int64(lsn - w.base)
	var fr [frameSize]byte
	if err := read(fr[:], off); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(fr[0:]))
	crc := binary.LittleEndian.Uint32(fr[4:])
	if n == 0 || n > maxPayload {
		return nil, 0, ErrBadRecord
	}
	payload = make([]byte, n)
	if err := read(payload, off+frameSize); err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, ErrBadRecord
	}
	return payload, frameSize + n, nil
}
