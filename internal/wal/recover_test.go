package wal

import (
	"bytes"
	"testing"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

const testPage = 512

// fill returns a checksummed plain page whose body repeats b.
func fill(b byte) []byte {
	p := make([]byte, testPage)
	pageformat.InitCommon(p, pageformat.TypePlain)
	for i := pageformat.CommonHeaderSize; i < testPage; i++ {
		p[i] = b
	}
	pageformat.UpdateChecksum(p)
	return p
}

func newDev(t *testing.T, pages ...[]byte) *pagedev.Mem {
	t.Helper()
	dev, err := pagedev.NewMem(testPage)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Grow(pagedev.PageNo(len(pages))); err != nil {
		t.Fatal(err)
	}
	for i, p := range pages {
		if err := dev.Write(pagedev.PageNo(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

func readPage(t *testing.T, dev pagedev.Device, p pagedev.PageNo) []byte {
	t.Helper()
	buf := make([]byte, testPage)
	if err := dev.Read(p, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// body compares page contents ignoring the LSN and checksum header
// fields, which recovery restamps.
func sameBody(a, b []byte) bool {
	return bytes.Equal(a[:4], b[:4]) &&
		bytes.Equal(a[pageformat.CommonHeaderSize:], b[pageformat.CommonHeaderSize:])
}

func TestRecoverEmptyLog(t *testing.T) {
	dev := newDev(t, fill(1))
	res, err := Recover(dev, NewMemStorage())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatal("empty log should not trigger recovery")
	}
}

func TestRecoverRedoCommitted(t *testing.T) {
	// The device never saw the committed operation's writes: pages are
	// stale. Redo must reconstruct them from the log.
	p0 := fill(1)
	dev := newDev(t, p0)
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})

	w.Begin("op", 1)
	// First update of existing page 0: before-image + range.
	after := append([]byte(nil), p0...)
	after[100] = 0xEE
	w.AppendFirstUpdate(0, p0, []Range{{Off: 100, Before: []byte{1}, After: []byte{0xEE}}})
	// Fresh page 1 via image.
	img := fill(7)
	w.AppendImage(1, img)
	w.Commit()

	res, err := Recover(dev, st)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered || res.RedoneOps != 1 || res.UndoneOps != 0 {
		t.Fatalf("result %+v", res)
	}
	if dev.NumPages() != 2 {
		t.Fatalf("device has %d pages, want 2 (grown by redo)", dev.NumPages())
	}
	if got := readPage(t, dev, 0); !sameBody(got, after) {
		t.Fatal("page 0 not redone")
	}
	if got := readPage(t, dev, 1); !sameBody(got, img) {
		t.Fatal("page 1 image not redone")
	}
	// Pages recovery writes carry fresh checksums.
	if err := pageformat.VerifyChecksum(readPage(t, dev, 0)); err != nil {
		t.Fatal(err)
	}
	// The log is reset afterwards.
	if n, _ := st.Size(); n != headerSize {
		t.Fatalf("log not reset: %d bytes", n)
	}
	// Recovery of the reset log is a no-op.
	res2, err := Recover(dev, st)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Recovered {
		t.Fatal("second recovery should be a no-op")
	}
}

func TestRecoverUndoUnfinished(t *testing.T) {
	// The unfinished operation's writes DID reach the device (the WAL
	// rule allows write-back once records are durable). Undo must
	// restore the before state and truncate the fresh page away.
	p0 := fill(1)
	mutated := append([]byte(nil), p0...)
	mutated[200] = 0xAA
	pageformat.UpdateChecksum(mutated)
	dev := newDev(t, mutated, fill(9)) // page 1 freshly allocated by the op

	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})
	w.Begin("import", 1) // device had 1 page before the op
	w.AppendFirstUpdate(0, p0, []Range{{Off: 200, Before: []byte{1}, After: []byte{0xAA}}})
	w.AppendImage(1, readPage(t, dev, 1))
	w.Sync() // durable, but no commit: crash here

	res, err := Recover(dev, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.UndoneOps != 1 {
		t.Fatalf("result %+v", res)
	}
	if got := readPage(t, dev, 0); !sameBody(got, p0) {
		t.Fatal("page 0 not restored to before-image")
	}
	if dev.NumPages() != 1 {
		t.Fatalf("device has %d pages, want 1 (fresh page deallocated)", dev.NumPages())
	}
}

func TestRecoverTornPageRebuiltFromImage(t *testing.T) {
	// A committed op first-updated page 0, and the page write itself
	// tore (garbage on disk, bad checksum). The first-update's
	// before-image is the redo base.
	p0 := fill(3)
	torn := append([]byte(nil), p0...)
	copy(torn[testPage/2:], bytes.Repeat([]byte{0xFF}, testPage/2)) // tear: stale checksum
	dev := newDev(t, torn)

	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})
	w.Begin("op", 1)
	w.AppendFirstUpdate(0, p0, []Range{{Off: 50, Before: []byte{3}, After: []byte{0x77}}})
	w.Commit()

	if _, err := Recover(dev, st); err != nil {
		t.Fatal(err)
	}
	got := readPage(t, dev, 0)
	if err := pageformat.VerifyChecksum(got); err != nil {
		t.Fatalf("recovered page fails checksum: %v", err)
	}
	want := append([]byte(nil), p0...)
	want[50] = 0x77
	if !sameBody(got, want) {
		t.Fatal("torn page not rebuilt from before-image + ranges")
	}
}

func TestRecoverTornTailDiscarded(t *testing.T) {
	// Crash mid-append: the commit record is torn off. The operation
	// must be undone even though some of its records are readable.
	p0 := fill(5)
	dev := newDev(t, p0)
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})
	w.Begin("op", 1)
	w.AppendFirstUpdate(0, p0, []Range{{Off: 60, Before: []byte{5}, After: []byte{0x42}}})
	w.Commit()
	full := st.Snapshot()

	// Remove the last 4 bytes: the commit frame is now invalid.
	tornSt := NewMemStorageFrom(full[:len(full)-4])
	res, err := Recover(dev, tornSt)
	if err != nil {
		t.Fatal(err)
	}
	if res.UndoneOps != 1 || res.RedoneOps != 0 {
		t.Fatalf("result %+v", res)
	}
	if got := readPage(t, dev, 0); !sameBody(got, p0) {
		t.Fatal("op with torn commit must be undone")
	}
}

func TestRecoverStartsAtLastCheckpointRecord(t *testing.T) {
	// A checkpoint record without truncation (crash between the two):
	// records before it must be ignored.
	dev := newDev(t, fill(1))
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})
	w.Begin("old", 1)
	w.AppendUpdate(0, []Range{{Off: 70, Before: []byte{1}, After: []byte{0x99}}})
	w.Commit()
	// Append a checkpoint record manually (Checkpoint would truncate).
	w.mu.Lock()
	w.appendLocked(&Record{Type: RecCheckpoint, NumPages: 1})
	w.syncLocked()
	w.mu.Unlock()

	res, err := Recover(dev, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedoneOps != 0 {
		t.Fatalf("ops before the checkpoint were replayed: %+v", res)
	}
	if got := readPage(t, dev, 0); !sameBody(got, fill(1)) {
		t.Fatal("pre-checkpoint records must not be replayed")
	}
}

func TestRecoverAbortedOpReplaysToNetZero(t *testing.T) {
	// A runtime-rolled-back op: original update, compensating update,
	// abort. Redo replays both; the page ends at its original state.
	p0 := fill(2)
	dev := newDev(t, p0)
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})
	w.Begin("op", 1)
	w.AppendFirstUpdate(0, p0, []Range{{Off: 80, Before: []byte{2}, After: []byte{0x55}}})
	w.AppendUpdate(0, []Range{{Off: 80, Before: []byte{0x55}, After: []byte{2}}}) // compensation
	w.Abort()

	if _, err := Recover(dev, st); err != nil {
		t.Fatal(err)
	}
	if got := readPage(t, dev, 0); !sameBody(got, p0) {
		t.Fatal("aborted op must net to zero")
	}
}

func TestRecoverShrinkRecord(t *testing.T) {
	// Aborted op grew the device, rolled back with a shrink record,
	// then a later committed op reused the page number. Redo must end
	// with the committed op's page, not the aborted op's.
	p0 := fill(1)
	dev := newDev(t, p0)
	st := NewMemStorage()
	w, _ := OpenWriter(st, Options{PageSize: testPage})

	w.Begin("aborted", 1)
	w.AppendImage(1, fill(0xAB))
	w.AppendShrink(1)
	w.Abort()

	w.Begin("committed", 1)
	img := fill(0xCD)
	w.AppendImage(1, img)
	w.Commit()

	if _, err := Recover(dev, st); err != nil {
		t.Fatal(err)
	}
	if dev.NumPages() != 2 {
		t.Fatalf("device has %d pages, want 2", dev.NumPages())
	}
	if got := readPage(t, dev, 1); !sameBody(got, img) {
		t.Fatal("page 1 must hold the committed image")
	}
}

func TestRecoverInvalidHeaderResets(t *testing.T) {
	dev := newDev(t, fill(1))
	st := NewMemStorageFrom([]byte("garbage that is long enough to look at"))
	res, err := Recover(dev, st)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reset {
		t.Fatalf("result %+v, want Reset", res)
	}
	if n, _ := st.Size(); n != 0 {
		t.Fatalf("log not discarded: %d bytes", n)
	}
}
