package wal

import (
	"fmt"

	"natix/internal/pagedev"
)

// Page-image index: the repair half of the log's contract.
//
// The physiological protocol guarantees that the first record touching
// a page after a checkpoint carries a full image — RecFirstUpdate's
// before-image for an existing page, RecImage's after-image for a
// freshly allocated one. Every later change to the page is a RecUpdate
// whose ranges carry both before and after bytes. So for any page with
// an image-bearing record in the current checkpoint epoch, the log
// alone determines the page's current content: start from the image,
// replay the after-bytes of everything that follows. That is exactly
// what the integrity scrubber needs when the device copy fails its
// checksum — the log reaches further than undo/redo recovery: it can
// rebuild a page the device has silently destroyed.

// LatestImage returns the LSN of the most recent image-bearing record
// (RecImage or RecFirstUpdate) for page p in the current checkpoint
// epoch, or false if the log holds no image of p — in which case the
// page cannot be reconstructed and damage to it is permanent.
func (w *Writer) LatestImage(p pagedev.PageNo) (LSN, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn, ok := w.images[p]
	return lsn, ok
}

// ImagedPages returns every page the current checkpoint epoch holds a
// full image for — the set ReconstructPage can repair.
func (w *Writer) ImagedPages() []pagedev.PageNo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]pagedev.PageNo, 0, len(w.images))
	for p := range w.images {
		out = append(out, p)
	}
	return out
}

// ReconstructPage rebuilds the current content of page p from the log:
// the latest full image, plus the after-bytes of every subsequent
// record touching p, applied in log order. Compensating updates from
// aborted operations are ordinary records and replay like any other,
// so the result reflects all committed state and no aborted state —
// byte-identical to what the buffer pool would write back.
//
// Returns (nil, false, nil) when the log holds no image of p.
func (w *Writer) ReconstructPage(p pagedev.PageNo, pageSize int) ([]byte, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start, ok := w.images[p]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, pageSize)
	lsn := start
	end := w.endLocked()
	first := true
	for lsn < end {
		payload, n, err := w.readFrameLocked(lsn)
		if err != nil {
			return nil, false, fmt.Errorf("wal: reconstruct page %d: %w", p, err)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, false, fmt.Errorf("wal: reconstruct page %d: %w", p, err)
		}
		if first {
			// The index points at an image-bearing record for p.
			first = false
			switch rec.Type {
			case RecImage:
				if len(rec.Image) != pageSize {
					return nil, false, fmt.Errorf("wal: reconstruct page %d: image size %d, want %d", p, len(rec.Image), pageSize)
				}
				copy(buf, rec.Image)
			case RecFirstUpdate:
				if len(rec.BeforeImage) != pageSize {
					return nil, false, fmt.Errorf("wal: reconstruct page %d: before-image size %d, want %d", p, len(rec.BeforeImage), pageSize)
				}
				copy(buf, rec.BeforeImage)
				applyAfter(buf, rec.Ranges)
			default:
				return nil, false, fmt.Errorf("wal: reconstruct page %d: index points at %s record", p, TypeName(rec.Type))
			}
		} else if rec.Page == p {
			switch rec.Type {
			case RecUpdate, RecFirstUpdate:
				applyAfter(buf, rec.Ranges)
			case RecImage:
				if len(rec.Image) != pageSize {
					return nil, false, fmt.Errorf("wal: reconstruct page %d: image size %d, want %d", p, len(rec.Image), pageSize)
				}
				copy(buf, rec.Image)
			}
		}
		lsn += LSN(n)
	}
	return buf, true, nil
}

// applyAfter overlays the after-bytes of ranges onto page content.
func applyAfter(buf []byte, ranges []Range) {
	for _, r := range ranges {
		if int(r.Off)+len(r.After) <= len(buf) {
			copy(buf[r.Off:], r.After)
		}
	}
}

// rebuildImageIndex scans the log and repopulates the image index, for
// a writer opened over a non-empty log (after recovery replayed it but
// before the next checkpoint resets it). A torn or bad tail frame ends
// the scan, mirroring Scan's tolerance: records past the tear were
// never durable.
func (w *Writer) rebuildImageIndex() {
	lsn := w.base
	end := w.endLocked()
	for lsn < end {
		payload, n, err := w.readFrameLocked(lsn)
		if err != nil {
			return
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return
		}
		if rec.Type == RecImage || rec.Type == RecFirstUpdate {
			w.images[rec.Page] = lsn
		}
		lsn += LSN(n)
	}
}
