package wal

import (
	"errors"
	"fmt"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

// Result describes what restart recovery did.
type Result struct {
	// Recovered is true when the log held records — the store was not
	// cleanly closed and redo/undo ran.
	Recovered bool
	// RedoneOps counts finished operations replayed.
	RedoneOps int
	// UndoneOps counts unfinished tail operations rolled back.
	UndoneOps int
	// PagesWritten counts device pages recovery rewrote.
	PagesWritten int
	// Reset is true when the log header was unreadable and the log was
	// discarded (only possible before any record was durable).
	Reset bool
}

// ErrUnrecoverable reports a log/device state recovery cannot repair —
// a torn page with no full image in the log to rebuild it from. It
// cannot arise from crashes under the WAL rule (first post-checkpoint
// updates log full before-images); it means the store file was damaged
// by something other than a crash.
var ErrUnrecoverable = errors.New("wal: unrecoverable: torn page without logged image")

// recPage is one page being reconstructed during recovery.
type recPage struct {
	buf    []byte
	dirty  bool
	torn   bool // device copy failed its checksum
	imaged bool // a full image/before-image has been applied
	dead   bool // freshly allocated by an undone operation
	lsn    LSN  // last record applied
}

// Recover replays the log in st against dev: redo for every finished
// operation since the last checkpoint, undo for the unfinished tail
// operation if the crash interrupted one. On return the device contains
// exactly the committed operations, durably, and the log is reset. An
// empty log returns a zero Result. Recovery is idempotent: if it is
// itself interrupted, the next run starts from the same log and
// reaches the same state.
func Recover(dev pagedev.Device, st Storage) (Result, error) {
	size, err := st.Size()
	if err != nil {
		return Result{}, err
	}
	if size == 0 {
		return Result{}, nil
	}

	var recs []Record
	pageSize, _, err := Scan(st, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if errors.Is(err, ErrBadHeader) {
		// The header is synced before the first record is appended, so
		// an unreadable header means no durable record ever depended on
		// this log. Discard it.
		if terr := st.Truncate(0); terr != nil {
			return Result{}, terr
		}
		return Result{Reset: true}, nil
	}
	if err != nil {
		return Result{}, err
	}
	if pageSize != dev.PageSize() {
		return Result{}, fmt.Errorf("%w: log page size %d, device %d", ErrBadHeader, pageSize, dev.PageSize())
	}

	if len(recs) == 0 {
		// Header-only log: the store was cleanly closed.
		return Result{}, nil
	}

	// Start after the last checkpoint: everything before it is durable
	// in the device already.
	start := 0
	for i, r := range recs {
		if r.Type == RecCheckpoint {
			start = i + 1
		}
	}
	recs = recs[start:]

	res := Result{Recovered: true}
	if len(recs) == 0 {
		return res, resetLog(st, pageSize)
	}

	// Analysis: which operations finished?
	closed := make(map[uint64]bool)
	for _, r := range recs {
		switch r.Type {
		case RecCommit, RecAbort:
			closed[r.OpID] = true
		}
	}

	pages := make(map[pagedev.PageNo]*recPage)
	virtual := uint64(dev.NumPages()) // device size being reconstructed
	load := func(p pagedev.PageNo) *recPage {
		if pg, ok := pages[p]; ok {
			return pg
		}
		pg := &recPage{buf: make([]byte, pageSize)}
		if uint64(p) < uint64(dev.NumPages()) {
			if err := dev.Read(p, pg.buf); err != nil {
				pg.torn = true
			} else if err := pageformat.VerifyChecksum(pg.buf); err != nil {
				pg.torn = true
			}
		}
		pages[p] = pg
		return pg
	}
	grow := func(p pagedev.PageNo) {
		if uint64(p)+1 > virtual {
			virtual = uint64(p) + 1
		}
	}
	applyRanges := func(pg *recPage, r Record, redo bool) error {
		// A record's ranges are disjoint, so application order within
		// the record is irrelevant.
		for _, rg := range r.Ranges {
			if rg.Off < 0 || rg.Off+len(rg.After) > pageSize {
				return fmt.Errorf("%w: range [%d,%d) on %d-byte page", ErrBadRecord, rg.Off, rg.Off+len(rg.After), pageSize)
			}
			if redo {
				copy(pg.buf[rg.Off:], rg.After)
			} else {
				copy(pg.buf[rg.Off:], rg.Before)
			}
		}
		pg.dirty = true
		pg.lsn = r.LSN
		return nil
	}

	// Op membership per record: page records carry no op id; the
	// nearest preceding begin owns them.
	owner := make([]uint64, len(recs))
	currentOwner := uint64(0)
	for i, r := range recs {
		if r.Type == RecBegin {
			currentOwner = r.OpID
		}
		owner[i] = currentOwner
		if r.Type == RecCommit || r.Type == RecAbort {
			currentOwner = 0
		}
	}
	// Records before any begin were subject to the WAL rule like all
	// others; replay them as finished.
	finished := func(i int) bool { return owner[i] == 0 || closed[owner[i]] }

	// Redo: replay records of finished operations in log order.
	// (Records of aborted operations replay too: their compensating
	// updates follow their originals in the log, so the net effect is
	// the rollback the mutator performed before appending the abort.)
	for i, r := range recs {
		switch r.Type {
		case RecBegin:
			if closed[r.OpID] {
				res.RedoneOps++
			}
			continue
		case RecCommit, RecAbort, RecCheckpoint:
			continue
		}
		if !finished(i) {
			continue // unfinished: handled by undo below
		}
		switch r.Type {
		case RecImage:
			grow(r.Page)
			pg := load(r.Page)
			copy(pg.buf, r.Image)
			pg.dirty, pg.imaged, pg.torn, pg.dead, pg.lsn = true, true, false, false, r.LSN
		case RecFirstUpdate:
			grow(r.Page)
			pg := load(r.Page)
			copy(pg.buf, r.BeforeImage)
			pg.imaged, pg.torn = true, false
			if err := applyRanges(pg, r, true); err != nil {
				return res, err
			}
		case RecUpdate:
			grow(r.Page)
			pg := load(r.Page)
			if err := applyRanges(pg, r, true); err != nil {
				return res, err
			}
		case RecShrink:
			if r.NumPages < virtual {
				virtual = r.NumPages
			}
			for p, pg := range pages {
				if uint64(p) >= r.NumPages {
					pg.dead, pg.dirty = true, false
				}
			}
		}
	}

	// Undo: walk the unfinished tail operation's records backwards,
	// restoring before-images; pages it freshly allocated die with the
	// device truncation back to the operation's pre-image size.
	undone := make(map[uint64]bool)
	undoShrink := virtual
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		op := r.OpID
		switch r.Type {
		case RecBegin:
			if !closed[op] {
				undone[op] = true
				if r.PreNumPages < undoShrink {
					undoShrink = r.PreNumPages
				}
			}
			continue
		case RecCommit, RecAbort, RecCheckpoint, RecShrink:
			continue
		}
		if finished(i) {
			continue // already redone
		}
		switch r.Type {
		case RecImage:
			pg := load(r.Page)
			pg.dead, pg.dirty = true, false
		case RecFirstUpdate:
			pg := load(r.Page)
			copy(pg.buf, r.BeforeImage)
			pg.dirty, pg.imaged, pg.torn, pg.lsn = true, true, false, r.LSN
		case RecUpdate:
			pg := load(r.Page)
			if err := applyRanges(pg, r, false); err != nil {
				return res, err
			}
		}
	}
	res.UndoneOps = len(undone)
	if undoShrink < virtual {
		virtual = undoShrink
	}

	// Write the reconstructed pages, checksummed and LSN-stamped.
	if pagedev.PageNo(virtual) > dev.NumPages() {
		if err := dev.Grow(pagedev.PageNo(virtual)); err != nil {
			return res, err
		}
	}
	for p, pg := range pages {
		if pg.dead || !pg.dirty || uint64(p) >= virtual {
			continue
		}
		if pg.torn && !pg.imaged {
			return res, fmt.Errorf("%w: page %d", ErrUnrecoverable, p)
		}
		if pageformat.TypeOf(pg.buf) != pageformat.TypeInvalid {
			pageformat.SetPageLSN(pg.buf, uint64(pg.lsn))
			pageformat.UpdateChecksum(pg.buf)
		}
		if err := dev.Write(p, pg.buf); err != nil {
			return res, err
		}
		res.PagesWritten++
	}
	if dev.NumPages() > pagedev.PageNo(virtual) {
		if err := dev.Shrink(pagedev.PageNo(virtual)); err != nil {
			return res, err
		}
	}
	if err := dev.Sync(); err != nil {
		return res, err
	}
	return res, resetLog(st, pageSize)
}

// resetLog truncates the log to an empty state whose base LSN continues
// after everything scanned, keeping LSNs monotonic for the store's life.
func resetLog(st Storage, pageSize int) error {
	_, end, err := Scan(st, func(Record) error { return nil })
	if err != nil {
		return err
	}
	if end == 0 {
		end = 1
	}
	if err := st.Truncate(headerSize); err != nil {
		return err
	}
	if _, err := st.WriteAt(encodeHeader(header{base: end, pageSize: pageSize}), 0); err != nil {
		return err
	}
	return st.Sync()
}
