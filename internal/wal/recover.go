package wal

import (
	"errors"
	"fmt"
	"sort"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

// Result describes what restart recovery did.
type Result struct {
	// Recovered is true when the log held records — the store was not
	// cleanly closed and redo/undo ran.
	Recovered bool
	// RedoneOps counts finished operations replayed.
	RedoneOps int
	// UndoneOps counts unfinished tail operations rolled back.
	UndoneOps int
	// PagesWritten counts device pages recovery rewrote.
	PagesWritten int
	// Reset is true when the log header was unreadable and the log was
	// discarded (only possible before any record was durable).
	Reset bool
}

// ErrUnrecoverable reports a log/device state recovery cannot repair —
// a torn page with no full image in the log to rebuild it from. It
// cannot arise from crashes under the WAL rule (first post-checkpoint
// updates log full before-images); it means the store file was damaged
// by something other than a crash.
var ErrUnrecoverable = errors.New("wal: unrecoverable: torn page without logged image")

// recPage is one page being reconstructed during recovery.
type recPage struct {
	buf    []byte
	dirty  bool
	torn   bool // device copy failed its checksum
	imaged bool // a full image/before-image has been applied
	dead   bool // freshly allocated by an undone operation
	lsn    LSN  // last record applied
}

// Recover replays the log in st against dev: redo for every finished
// operation since the last checkpoint, undo for the unfinished tail
// operation if the crash interrupted one. On return the device contains
// exactly the committed operations, durably, and the log is reset. An
// empty log returns a zero Result. Recovery is idempotent: if it is
// itself interrupted, the next run starts from the same log and
// reaches the same state.
func Recover(dev pagedev.Device, st Storage) (Result, error) {
	size, err := st.Size()
	if err != nil {
		return Result{}, err
	}
	if size == 0 {
		return Result{}, nil
	}

	var recs []Record
	pageSize, _, err := Scan(st, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if errors.Is(err, ErrBadHeader) {
		// The header is synced before the first record is appended, so
		// an unreadable header means no durable record ever depended on
		// this log. Discard it.
		if terr := st.Truncate(0); terr != nil {
			return Result{}, terr
		}
		return Result{Reset: true}, nil
	}
	if err != nil {
		return Result{}, err
	}
	if pageSize != dev.PageSize() {
		return Result{}, fmt.Errorf("%w: log page size %d, device %d", ErrBadHeader, pageSize, dev.PageSize())
	}

	if len(recs) == 0 {
		// Header-only log: the store was cleanly closed.
		return Result{}, nil
	}

	// Start after the last checkpoint: everything before it is durable
	// in the device already.
	start := 0
	for i, r := range recs {
		if r.Type == RecCheckpoint {
			start = i + 1
		}
	}
	recs = recs[start:]

	res := Result{Recovered: true}
	if len(recs) == 0 {
		return res, resetLog(st, pageSize)
	}

	// Analysis: which operations finished?
	closed := make(map[uint64]bool)
	for _, r := range recs {
		switch r.Type {
		case RecCommit, RecAbort:
			closed[r.OpID] = true
		}
	}

	pages := make(map[pagedev.PageNo]*recPage)
	virtual := uint64(dev.NumPages()) // device size being reconstructed
	load := func(p pagedev.PageNo) *recPage {
		if pg, ok := pages[p]; ok {
			return pg
		}
		pg := &recPage{buf: make([]byte, pageSize)}
		if uint64(p) < uint64(dev.NumPages()) {
			if err := dev.Read(p, pg.buf); err != nil {
				pg.torn = true
			} else if err := pageformat.VerifyChecksum(pg.buf); err != nil {
				pg.torn = true
			}
		}
		pages[p] = pg
		return pg
	}
	grow := func(p pagedev.PageNo) {
		if uint64(p)+1 > virtual {
			virtual = uint64(p) + 1
		}
	}
	applyRanges := func(pg *recPage, r Record, redo bool) error {
		// A record's ranges are disjoint, so application order within
		// the record is irrelevant.
		for _, rg := range r.Ranges {
			if rg.Off < 0 || rg.Off+len(rg.After) > pageSize {
				return fmt.Errorf("%w: range [%d,%d) on %d-byte page", ErrBadRecord, rg.Off, rg.Off+len(rg.After), pageSize)
			}
			if redo {
				copy(pg.buf[rg.Off:], rg.After)
			} else {
				copy(pg.buf[rg.Off:], rg.Before)
			}
		}
		pg.dirty = true
		pg.lsn = r.LSN
		return nil
	}

	// Op membership per record: page records carry no op id; the
	// nearest preceding begin owns them.
	owner := make([]uint64, len(recs))
	currentOwner := uint64(0)
	for i, r := range recs {
		if r.Type == RecBegin {
			currentOwner = r.OpID
		}
		owner[i] = currentOwner
		if r.Type == RecCommit || r.Type == RecAbort {
			currentOwner = 0
		}
	}
	// Records before any begin were subject to the WAL rule like all
	// others; replay them as finished.
	finished := func(i int) bool { return owner[i] == 0 || closed[owner[i]] }

	// Read-ahead: the replay below touches pages in record order, which
	// is effectively random on the device. Walk the records in replay
	// order first (redo forward, undo backward) to learn, per page,
	// whether its first touch needs the device copy at all — RecImage
	// and RecFirstUpdate overwrite the whole page, only RecUpdate
	// patches on top of device bytes — then load the needed pages in
	// ascending page order, adjacent runs batched into single vectored
	// reads. On the simulated disk that is one seek plus sequential
	// transfers instead of one seek per page; load() then always hits
	// the pages map.
	seen := make(map[pagedev.PageNo]bool)
	needDevice := make(map[pagedev.PageNo]bool)
	note := func(p pagedev.PageNo, wantsDevice bool) {
		if seen[p] {
			return
		}
		seen[p] = true
		if wantsDevice {
			needDevice[p] = true
		}
	}
	for i, r := range recs {
		if !finished(i) {
			continue
		}
		switch r.Type {
		case RecImage, RecFirstUpdate:
			note(r.Page, false)
		case RecUpdate:
			note(r.Page, true)
		}
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if finished(i) {
			continue
		}
		switch r.Type {
		case RecImage, RecFirstUpdate:
			note(r.Page, false)
		case RecUpdate:
			note(r.Page, true)
		}
	}
	preload(dev, pages, seen, needDevice, pageSize)

	// Redo: replay records of finished operations in log order.
	// (Records of aborted operations replay too: their compensating
	// updates follow their originals in the log, so the net effect is
	// the rollback the mutator performed before appending the abort.)
	for i, r := range recs {
		switch r.Type {
		case RecBegin:
			if closed[r.OpID] {
				res.RedoneOps++
			}
			continue
		case RecCommit, RecAbort, RecCheckpoint:
			continue
		}
		if !finished(i) {
			continue // unfinished: handled by undo below
		}
		switch r.Type {
		case RecImage:
			grow(r.Page)
			pg := load(r.Page)
			copy(pg.buf, r.Image)
			pg.dirty, pg.imaged, pg.torn, pg.dead, pg.lsn = true, true, false, false, r.LSN
		case RecFirstUpdate:
			grow(r.Page)
			pg := load(r.Page)
			copy(pg.buf, r.BeforeImage)
			pg.imaged, pg.torn = true, false
			if err := applyRanges(pg, r, true); err != nil {
				return res, err
			}
		case RecUpdate:
			grow(r.Page)
			pg := load(r.Page)
			if err := applyRanges(pg, r, true); err != nil {
				return res, err
			}
		case RecShrink:
			if r.NumPages < virtual {
				virtual = r.NumPages
			}
			for p, pg := range pages {
				if uint64(p) >= r.NumPages {
					pg.dead, pg.dirty = true, false
				}
			}
		}
	}

	// Undo: walk the unfinished tail operation's records backwards,
	// restoring before-images; pages it freshly allocated die with the
	// device truncation back to the operation's pre-image size.
	undone := make(map[uint64]bool)
	undoShrink := virtual
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		op := r.OpID
		switch r.Type {
		case RecBegin:
			if !closed[op] {
				undone[op] = true
				if r.PreNumPages < undoShrink {
					undoShrink = r.PreNumPages
				}
			}
			continue
		case RecCommit, RecAbort, RecCheckpoint, RecShrink:
			continue
		}
		if finished(i) {
			continue // already redone
		}
		switch r.Type {
		case RecImage:
			pg := load(r.Page)
			pg.dead, pg.dirty = true, false
		case RecFirstUpdate:
			pg := load(r.Page)
			copy(pg.buf, r.BeforeImage)
			pg.dirty, pg.imaged, pg.torn, pg.lsn = true, true, false, r.LSN
		case RecUpdate:
			pg := load(r.Page)
			if err := applyRanges(pg, r, false); err != nil {
				return res, err
			}
		}
	}
	res.UndoneOps = len(undone)
	if undoShrink < virtual {
		virtual = undoShrink
	}

	// Write the reconstructed pages, checksummed and LSN-stamped, in
	// ascending page order with adjacent runs coalesced into vectored
	// writes — recovery after a crashed bulk load rewrites long
	// contiguous stretches, and elevator order plus pagedev.WriteRange
	// turns those into sequential transfers.
	if pagedev.PageNo(virtual) > dev.NumPages() {
		if err := dev.Grow(pagedev.PageNo(virtual)); err != nil {
			return res, err
		}
	}
	order := make([]pagedev.PageNo, 0, len(pages))
	for p, pg := range pages {
		if pg.dead || !pg.dirty || uint64(p) >= virtual {
			continue
		}
		if pg.torn && !pg.imaged {
			return res, fmt.Errorf("%w: page %d", ErrUnrecoverable, p)
		}
		if pageformat.TypeOf(pg.buf) != pageformat.TypeInvalid {
			pageformat.SetPageLSN(pg.buf, uint64(pg.lsn))
			pageformat.UpdateChecksum(pg.buf)
		}
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var runBuf []byte
	for i := 0; i < len(order); {
		j := i + 1
		for j < len(order) && j-i < maxRecoveryRun && order[j] == order[j-1]+1 {
			j++
		}
		run := order[i:j]
		i = j
		if len(run) == 1 {
			if err := dev.Write(run[0], pages[run[0]].buf); err != nil {
				return res, err
			}
			res.PagesWritten++
			continue
		}
		if runBuf == nil {
			runBuf = make([]byte, maxRecoveryRun*pageSize)
		}
		for k, p := range run {
			copy(runBuf[k*pageSize:], pages[p].buf)
		}
		if err := pagedev.WriteRange(dev, run[0], runBuf[:len(run)*pageSize]); err != nil {
			return res, err
		}
		res.PagesWritten += len(run)
	}
	if dev.NumPages() > pagedev.PageNo(virtual) {
		if err := dev.Shrink(pagedev.PageNo(virtual)); err != nil {
			return res, err
		}
	}
	if err := dev.Sync(); err != nil {
		return res, err
	}
	return res, resetLog(st, pageSize)
}

// maxRecoveryRun caps the pages moved per vectored recovery I/O.
const maxRecoveryRun = 64

// preload populates pages for every page the replay will touch: pages
// whose first touch overwrites them fully get a blank entry (no device
// read at all), pages whose first touch patches byte ranges get their
// device copy, fetched in ascending order with adjacent runs batched
// through pagedev.ReadRange. A failed vectored read falls back to
// per-page loads so a single unreadable page only marks itself torn,
// exactly as the unbatched path would.
func preload(dev pagedev.Device, pages map[pagedev.PageNo]*recPage, seen, needDevice map[pagedev.PageNo]bool, pageSize int) {
	blank := func(p pagedev.PageNo) {
		pages[p] = &recPage{buf: make([]byte, pageSize)}
	}
	loadOne := func(p pagedev.PageNo) {
		pg := &recPage{buf: make([]byte, pageSize)}
		if err := dev.Read(p, pg.buf); err != nil {
			pg.torn = true
		} else if err := pageformat.VerifyChecksum(pg.buf); err != nil {
			pg.torn = true
		}
		pages[p] = pg
	}
	numPages := uint64(dev.NumPages())
	need := make([]pagedev.PageNo, 0, len(needDevice))
	for p := range seen {
		if !needDevice[p] || uint64(p) >= numPages {
			blank(p)
			continue
		}
		need = append(need, p)
	}
	sort.Slice(need, func(i, j int) bool { return need[i] < need[j] })
	var runBuf []byte
	for i := 0; i < len(need); {
		j := i + 1
		for j < len(need) && j-i < maxRecoveryRun && need[j] == need[j-1]+1 {
			j++
		}
		run := need[i:j]
		i = j
		if len(run) == 1 {
			loadOne(run[0])
			continue
		}
		if runBuf == nil {
			runBuf = make([]byte, maxRecoveryRun*pageSize)
		}
		b := runBuf[:len(run)*pageSize]
		if err := pagedev.ReadRange(dev, run[0], b); err != nil {
			for _, p := range run {
				loadOne(p)
			}
			continue
		}
		for k, p := range run {
			pg := &recPage{buf: make([]byte, pageSize)}
			copy(pg.buf, b[k*pageSize:])
			if err := pageformat.VerifyChecksum(pg.buf); err != nil {
				pg.torn = true
			}
			pages[p] = pg
		}
	}
}

// resetLog truncates the log to an empty state whose base LSN continues
// after everything scanned, keeping LSNs monotonic for the store's life.
func resetLog(st Storage, pageSize int) error {
	_, end, err := Scan(st, func(Record) error { return nil })
	if err != nil {
		return err
	}
	if end == 0 {
		end = 1
	}
	if err := st.Truncate(headerSize); err != nil {
		return err
	}
	if _, err := st.WriteAt(encodeHeader(header{base: end, pageSize: pageSize}), 0); err != nil {
		return err
	}
	return st.Sync()
}
