// Package wal implements the NATIX write-ahead log: an append-only,
// LSN-addressed record stream that makes the write path durable and
// every document-store operation atomic across crashes.
//
// # Logging scheme
//
// The log is page-addressed and physical. Three record shapes describe
// page changes:
//
//   - page-image records hold the full after-image of a freshly
//     allocated page (bulk-loaded pages, newly formatted FSI pages).
//     Undoing one deallocates the page.
//   - first-update records are logged the first time an existing page
//     is modified after a checkpoint. They carry the full before-image
//     plus the changed byte ranges — the before-image doubles as the
//     redo base when the on-disk page is later found torn (the same
//     role full-page writes play in PostgreSQL).
//   - update records carry only the changed byte ranges, each with its
//     before and after bytes, so they redo and undo by plain byte
//     copies — both idempotent, which keeps restart recovery safe to
//     re-run if it is itself interrupted.
//
// Operation boundaries (begin/commit/abort) bracket each document-store
// mutation; a checkpoint record marks a point where all pages are known
// durable. Because the store runs one mutator at a time, records of
// different operations never interleave, and at most the final
// operation in the log can be unfinished.
//
// # Recovery
//
// Recover scans the valid prefix of the log (a CRC per record stops the
// scan at a torn tail), replays every record of finished operations
// since the last checkpoint onto the database device (redo), then walks
// the records of an unfinished tail operation backwards restoring
// before-images and deallocating fresh pages (undo). The recovered
// state is flushed, the device is truncated to its pre-operation size,
// and the log is reset. A database file is thus always restored to a
// state containing exactly the committed operations.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"natix/internal/pagedev"
)

// LSN is a log sequence number: the logical byte address of a record in
// the append-only log stream. LSNs increase monotonically for the life
// of a store, across log truncations (the log header records the LSN
// its first record corresponds to). 0 means "no record".
type LSN uint64

// Record types.
const (
	RecInvalid     uint8 = iota
	RecBegin             // operation start: opID, pre-op device size, kind
	RecCommit            // operation end, all effects durable-intent
	RecAbort             // operation end after a runtime rollback
	RecUpdate            // byte-range change: page, ranges(before, after)
	RecFirstUpdate       // first post-checkpoint change: page, before-image, ranges
	RecImage             // full after-image of a freshly allocated page
	RecCheckpoint        // all pages durable; device size at checkpoint
	RecShrink            // device truncated (runtime rollback deallocation)
)

// typeNames maps record types to display names (natix-inspect -wal).
var typeNames = [...]string{
	"invalid", "begin", "commit", "abort", "update", "first-update",
	"image", "checkpoint", "shrink",
}

// TypeName returns the display name of a record type.
func TypeName(t uint8) string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type-%d", t)
}

// Range is one changed byte span of a page. Before and After have the
// same length; redo copies After at Off, undo copies Before.
type Range struct {
	Off    int
	Before []byte
	After  []byte
}

// Record is one decoded log record.
type Record struct {
	LSN  LSN
	Type uint8

	OpID        uint64 // begin/commit/abort
	PreNumPages uint64 // begin: device size before the operation
	Kind        string // begin: operation label ("import:name", ...)

	Page        pagedev.PageNo // update/first-update/image
	BeforeImage []byte         // first-update
	Image       []byte         // image
	Ranges      []Range        // update/first-update

	NumPages uint64 // checkpoint and shrink: device size
}

// Log-file layout constants.
const (
	headerSize = 32
	frameSize  = 8 // u32 payload length + u32 CRC-32C

	// maxPayload bounds a record payload; a frame announcing more is
	// treated as a torn tail. The largest legitimate record is a
	// first-update at the maximum page size: a full before-image plus
	// disjoint ranges whose before+after bytes can together reach two
	// more page sizes, plus framing slack.
	maxPayload = 3*pagedev.MaxPageSize + 4096
)

var logMagic = [8]byte{'N', 'X', 'W', 'A', 'L', '0', '0', '1'}

// Errors.
var (
	ErrBadHeader = errors.New("wal: invalid log header")
	ErrBadRecord = errors.New("wal: invalid log record")
	ErrNoOp      = errors.New("wal: no active operation")
	ErrInOp      = errors.New("wal: operation already active")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded log-file header.
type header struct {
	base     LSN // LSN of the first record byte after the header
	pageSize int
}

func encodeHeader(h header) []byte {
	b := make([]byte, headerSize)
	copy(b, logMagic[:])
	binary.LittleEndian.PutUint64(b[8:], uint64(h.base))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.pageSize))
	return b
}

func decodeHeader(b []byte) (header, error) {
	if len(b) < headerSize || [8]byte(b[:8]) != logMagic {
		return header{}, ErrBadHeader
	}
	h := header{
		base:     LSN(binary.LittleEndian.Uint64(b[8:])),
		pageSize: int(binary.LittleEndian.Uint32(b[16:])),
	}
	if h.base == 0 || !pagedev.ValidPageSize(h.pageSize) {
		return header{}, ErrBadHeader
	}
	return h, nil
}

// appendRecord frames and appends the encoded record payload to dst.
func appendRecord(dst []byte, payload []byte) []byte {
	var fr [frameSize]byte
	binary.LittleEndian.PutUint32(fr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fr[4:], crc32.Checksum(payload, crcTable))
	dst = append(dst, fr[:]...)
	return append(dst, payload...)
}

// encodePayload serializes a record body (everything but the frame).
func encodePayload(r *Record) []byte {
	var b []byte
	b = append(b, r.Type)
	switch r.Type {
	case RecBegin:
		b = binary.LittleEndian.AppendUint64(b, r.OpID)
		b = binary.LittleEndian.AppendUint64(b, r.PreNumPages)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Kind)))
		b = append(b, r.Kind...)
	case RecCommit, RecAbort:
		b = binary.LittleEndian.AppendUint64(b, r.OpID)
	case RecUpdate:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = appendRanges(b, r.Ranges)
	case RecFirstUpdate:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.BeforeImage)))
		b = append(b, r.BeforeImage...)
		b = appendRanges(b, r.Ranges)
	case RecImage:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Image)))
		b = append(b, r.Image...)
	case RecCheckpoint, RecShrink:
		b = binary.LittleEndian.AppendUint64(b, r.NumPages)
	}
	return b
}

func appendRanges(b []byte, ranges []Range) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ranges)))
	for _, r := range ranges {
		b = binary.LittleEndian.AppendUint16(b, uint16(r.Off))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Before)))
	}
	for _, r := range ranges {
		b = append(b, r.Before...)
	}
	for _, r := range ranges {
		b = append(b, r.After...)
	}
	return b
}

// decodePayload parses a record body. The returned record aliases b;
// callers that retain it must copy.
func decodePayload(b []byte) (Record, error) {
	if len(b) < 1 {
		return Record{}, ErrBadRecord
	}
	r := Record{Type: b[0]}
	b = b[1:]
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(b) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, true
	}
	u16 := func() (uint16, bool) {
		if len(b) < 2 {
			return 0, false
		}
		v := binary.LittleEndian.Uint16(b)
		b = b[2:]
		return v, true
	}
	bad := func() (Record, error) { return Record{}, ErrBadRecord }
	switch r.Type {
	case RecBegin:
		op, ok1 := u64()
		pre, ok2 := u64()
		n, ok3 := u16()
		if !ok1 || !ok2 || !ok3 || len(b) < int(n) {
			return bad()
		}
		r.OpID, r.PreNumPages, r.Kind = op, pre, string(b[:n])
	case RecCommit, RecAbort:
		op, ok := u64()
		if !ok {
			return bad()
		}
		r.OpID = op
	case RecUpdate:
		p, ok := u64()
		if !ok {
			return bad()
		}
		r.Page = pagedev.PageNo(p)
		ranges, rest, err := decodeRanges(b)
		if err != nil {
			return bad()
		}
		r.Ranges, b = ranges, rest
	case RecFirstUpdate:
		p, ok1 := u64()
		n, ok2 := u32()
		if !ok1 || !ok2 || len(b) < int(n) {
			return bad()
		}
		r.Page = pagedev.PageNo(p)
		r.BeforeImage = b[:n]
		b = b[n:]
		ranges, rest, err := decodeRanges(b)
		if err != nil {
			return bad()
		}
		r.Ranges, b = ranges, rest
	case RecImage:
		p, ok1 := u64()
		n, ok2 := u32()
		if !ok1 || !ok2 || len(b) < int(n) {
			return bad()
		}
		r.Page = pagedev.PageNo(p)
		r.Image = b[:n]
	case RecCheckpoint, RecShrink:
		n, ok := u64()
		if !ok {
			return bad()
		}
		r.NumPages = n
	default:
		return bad()
	}
	return r, nil
}

func decodeRanges(b []byte) ([]Range, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrBadRecord
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < 4*n {
		return nil, nil, ErrBadRecord
	}
	ranges := make([]Range, n)
	lengths := make([]int, n)
	total := 0
	for i := range ranges {
		ranges[i].Off = int(binary.LittleEndian.Uint16(b[4*i:]))
		lengths[i] = int(binary.LittleEndian.Uint16(b[4*i+2:]))
		total += lengths[i]
	}
	b = b[4*n:]
	if len(b) < 2*total {
		return nil, nil, ErrBadRecord
	}
	pos := 0
	for i := range ranges {
		ranges[i].Before = b[pos : pos+lengths[i]]
		pos += lengths[i]
	}
	for i := range ranges {
		ranges[i].After = b[pos : pos+lengths[i]]
		pos += lengths[i]
	}
	return ranges, b[pos:], nil
}

// Scan iterates the records in st, calling fn for each. It stops
// without error at the first torn or corrupt frame (the log's valid
// prefix ends there) and returns the header and the LSN one past the
// last valid record. An empty storage returns a zero header and LSN 0.
func Scan(st Storage, fn func(Record) error) (pageSize int, end LSN, err error) {
	size, err := st.Size()
	if err != nil {
		return 0, 0, err
	}
	if size == 0 {
		return 0, 0, nil
	}
	hb := make([]byte, headerSize)
	if _, err := st.ReadAt(hb, 0); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return 0, 0, err
	}
	off := int64(headerSize)
	lsn := h.base
	var fr [frameSize]byte
	for off+frameSize <= size {
		if _, err := st.ReadAt(fr[:], off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(fr[0:]))
		crc := binary.LittleEndian.Uint32(fr[4:])
		if n == 0 || n > maxPayload || off+frameSize+n > size {
			break
		}
		payload := make([]byte, n)
		if _, err := st.ReadAt(payload, off+frameSize); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break
		}
		rec.LSN = lsn
		if err := fn(rec); err != nil {
			return h.pageSize, lsn, err
		}
		off += frameSize + n
		lsn += LSN(frameSize + n)
	}
	return h.pageSize, lsn, nil
}
