package wal

import (
	"bytes"
	"testing"
)

// mutate applies ranges to a page buffer the way the buffer pool does,
// returning the matching Range slice with before and after bytes.
func mutate(page []byte, off int, after []byte) Range {
	before := make([]byte, len(after))
	copy(before, page[off:])
	copy(page[off:], after)
	return Range{Off: off, Before: before, After: after}
}

func TestReconstructFreshPage(t *testing.T) {
	const ps = 512
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin("test", 0); err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0xAA}, ps)
	if _, err := w.AppendImage(5, page); err != nil {
		t.Fatal(err)
	}
	r1 := mutate(page, 16, []byte{1, 2, 3})
	if _, err := w.AppendUpdate(5, []Range{r1}); err != nil {
		t.Fatal(err)
	}
	r2 := mutate(page, 100, []byte{9, 9})
	if _, err := w.AppendUpdate(5, []Range{r2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, ok := w.LatestImage(5); !ok {
		t.Fatal("page 5 should be imaged")
	}
	got, ok, err := w.ReconstructPage(5, ps)
	if err != nil || !ok {
		t.Fatalf("reconstruct: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("reconstructed page differs from live content")
	}
}

func TestReconstructFirstUpdatePage(t *testing.T) {
	const ps = 512
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x42}, ps)
	pre := make([]byte, ps)
	copy(pre, page)

	if _, err := w.Begin("test", 1); err != nil {
		t.Fatal(err)
	}
	r1 := mutate(page, 0, []byte{7, 7, 7, 7})
	if _, err := w.AppendFirstUpdate(3, pre, []Range{r1}); err != nil {
		t.Fatal(err)
	}
	r2 := mutate(page, 200, []byte{0xFF})
	if _, err := w.AppendUpdate(3, []Range{r2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := w.ReconstructPage(3, ps)
	if err != nil || !ok {
		t.Fatalf("reconstruct: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("reconstructed page differs from live content")
	}

	// A page never imaged is not reconstructible.
	if _, ok, _ := w.ReconstructPage(99, ps); ok {
		t.Fatal("page 99 was never imaged")
	}
}

func TestImageIndexClearedAtCheckpoint(t *testing.T) {
	const ps = 512
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin("test", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendImage(2, make([]byte, ps)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := w.ImagedPages(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ImagedPages = %v, want [2]", got)
	}
	if err := w.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.LatestImage(2); ok {
		t.Fatal("image index must clear at checkpoint")
	}
	if got := w.ImagedPages(); len(got) != 0 {
		t.Fatalf("ImagedPages = %v after checkpoint, want empty", got)
	}
}

func TestImageIndexRebuiltOnReopen(t *testing.T) {
	const ps = 512
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin("test", 0); err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x33}, ps)
	if _, err := w.AppendImage(8, page); err != nil {
		t.Fatal(err)
	}
	r := mutate(page, 50, []byte{1})
	if _, err := w.AppendUpdate(8, []Range{r}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same storage: the index must come back.
	w2, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := w2.ReconstructPage(8, ps)
	if err != nil || !ok {
		t.Fatalf("reconstruct after reopen: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("reconstructed page differs after reopen")
	}
}

func TestReconstructReflectsAbortCompensation(t *testing.T) {
	const ps = 512
	st := NewMemStorage()
	w, err := OpenWriter(st, Options{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x10}, ps)
	pre := make([]byte, ps)
	copy(pre, page)

	if _, err := w.Begin("test", 1); err != nil {
		t.Fatal(err)
	}
	r := mutate(page, 30, []byte{0xEE, 0xEE})
	if _, err := w.AppendFirstUpdate(6, pre, []Range{r}); err != nil {
		t.Fatal(err)
	}
	// Runtime rollback: the compensating update restores the before
	// bytes and is logged as an ordinary update.
	comp := mutate(page, 30, []byte{0x10, 0x10})
	if _, err := w.AppendUpdate(6, []Range{comp}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := w.ReconstructPage(6, ps)
	if err != nil || !ok {
		t.Fatalf("reconstruct: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, pre) {
		t.Fatal("reconstruction after abort should match pre-op content")
	}
}
