package pageformat

import (
	"bytes"
	"testing"
)

func BenchmarkInsertDelete(b *testing.B) {
	page := make([]byte, 8192)
	s := FormatSlotted(page)
	data := bytes.Repeat([]byte{7}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, ok := s.Insert(data)
		if !ok {
			b.Fatal("insert failed")
		}
		if err := s.Delete(slot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellAccess(b *testing.B) {
	s := FormatSlotted(make([]byte, 8192))
	var slots []int
	for i := 0; i < 50; i++ {
		slot, _ := s.Insert(bytes.Repeat([]byte{byte(i)}, 100))
		slots = append(slots, slot)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Cell(slots[i%len(slots)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompaction(b *testing.B) {
	data := bytes.Repeat([]byte{1}, 60)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := FormatSlotted(make([]byte, 8192))
		var slots []int
		for {
			slot, ok := s.Insert(data)
			if !ok {
				break
			}
			slots = append(slots, slot)
		}
		for j := 0; j < len(slots); j += 2 {
			s.Delete(slots[j])
		}
		b.StartTimer()
		// This insert needs compaction.
		if _, ok := s.Insert(bytes.Repeat([]byte{2}, 100)); !ok {
			b.Fatal("post-compaction insert failed")
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	page := make([]byte, 8192)
	s := FormatSlotted(page)
	s.Insert(bytes.Repeat([]byte{3}, 4000))
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpdateChecksum(page)
		if err := VerifyChecksum(page); err != nil {
			b.Fatal(err)
		}
	}
}
