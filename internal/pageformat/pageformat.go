// Package pageformat defines the on-disk layout of NATIX pages.
//
// Every page starts with a common 16-byte header (magic, page type,
// flags, CRC-32 checksum, and the page LSN — the log sequence number of
// the last write-ahead-log record applied to the page, which the buffer
// manager uses to enforce the WAL rule and restart recovery uses to
// recognize already-applied records). Three page types exist:
//
//   - Header: page 0 of a segment, holding segment metadata.
//   - FSI: free-space-inventory pages, maintained by package segment.
//   - Slotted: pages holding records, "organized as slotted pages,
//     records are identified by a pair (pageid, slot)" (paper §2.1).
//
// The slotted layout places cells bottom-up after the page header and the
// slot directory top-down from the end of the page. Each 4-byte slot holds
// the cell offset and its length; a deleted slot has offset 0 and may be
// reused. The high bit of the length word is a per-cell flag used by the
// record manager to mark forwarding stubs.
package pageformat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageType distinguishes the interpretations of a page.
type PageType uint8

// Page types.
const (
	TypeInvalid PageType = iota
	TypeHeader           // segment header (page 0)
	TypeFSI              // free-space inventory
	TypeSlotted          // record page
	TypePlain            // uninterpreted page ("plain page" for indexes etc.)
)

// Layout constants for the common header.
const (
	Magic = 0x4E58 // "NX"

	offMagic    = 0
	offType     = 2
	offFlags    = 3
	offChecksum = 4
	offLSN      = 8

	// CommonHeaderSize is the size of the header shared by all page types.
	CommonHeaderSize = 16
)

// Layout constants for the slotted page header (follows the common header).
const (
	offSlotCount = 16
	offCellEnd   = 18
	offFrag      = 20
	offReserved  = 22

	slottedHeaderSize = 24
	slotSize          = 4

	// SlotOverhead is the directory cost of one cell, exported so callers
	// can size free-space requests that may need a fresh slot.
	SlotOverhead = slotSize

	lenMask     = 0x7FFF
	flagBitMask = 0x8000
)

// CellFlag is a single per-cell flag bit, exposed to the record manager.
type CellFlag bool

// Errors returned by this package.
var (
	ErrNotSlotted  = errors.New("pageformat: page is not a slotted page")
	ErrBadMagic    = errors.New("pageformat: bad page magic")
	ErrBadChecksum = errors.New("pageformat: page checksum mismatch")
	ErrNoSuchSlot  = errors.New("pageformat: no such slot")
	ErrDeadSlot    = errors.New("pageformat: slot is deleted")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// InitCommon writes the common header into b, typing the page.
func InitCommon(b []byte, t PageType) {
	binary.LittleEndian.PutUint16(b[offMagic:], Magic)
	b[offType] = byte(t)
	b[offFlags] = 0
	binary.LittleEndian.PutUint32(b[offChecksum:], 0)
	binary.LittleEndian.PutUint64(b[offLSN:], 0)
}

// PageLSN returns the LSN of the last log record applied to the page,
// or 0 for pages written before logging (or never written).
func PageLSN(b []byte) uint64 {
	if len(b) < CommonHeaderSize {
		return 0
	}
	return binary.LittleEndian.Uint64(b[offLSN:])
}

// SetPageLSN stamps the page LSN. Called by the buffer manager when a
// logged update completes and by recovery when it applies log records.
func SetPageLSN(b []byte, lsn uint64) {
	binary.LittleEndian.PutUint64(b[offLSN:], lsn)
}

// TypeOf returns the page type recorded in b's common header, or
// TypeInvalid if the magic does not match (e.g. a never-written page).
func TypeOf(b []byte) PageType {
	if len(b) < CommonHeaderSize || binary.LittleEndian.Uint16(b[offMagic:]) != Magic {
		return TypeInvalid
	}
	return PageType(b[offType])
}

// UpdateChecksum computes and stores the CRC-32C of the page (with the
// checksum field itself zeroed). Called by the buffer manager on flush.
func UpdateChecksum(b []byte) {
	binary.LittleEndian.PutUint32(b[offChecksum:], 0)
	sum := crc32.Checksum(b, crcTable)
	binary.LittleEndian.PutUint32(b[offChecksum:], sum)
}

// VerifyChecksum checks the stored CRC-32C. Pages that were never written
// (invalid magic) are accepted; the caller decides how to interpret them.
func VerifyChecksum(b []byte) error {
	if TypeOf(b) == TypeInvalid {
		return nil
	}
	stored := binary.LittleEndian.Uint32(b[offChecksum:])
	binary.LittleEndian.PutUint32(b[offChecksum:], 0)
	sum := crc32.Checksum(b, crcTable)
	binary.LittleEndian.PutUint32(b[offChecksum:], stored)
	if sum != stored {
		return fmt.Errorf("%w: stored %#x computed %#x", ErrBadChecksum, stored, sum)
	}
	return nil
}

// Slotted is a view over a slotted page image. It holds no state of its
// own; all mutations write through to the underlying byte slice.
type Slotted struct {
	b []byte
}

// FormatSlotted initializes b as an empty slotted page and returns a view.
func FormatSlotted(b []byte) Slotted {
	InitCommon(b, TypeSlotted)
	binary.LittleEndian.PutUint16(b[offSlotCount:], 0)
	binary.LittleEndian.PutUint16(b[offCellEnd:], slottedHeaderSize)
	binary.LittleEndian.PutUint16(b[offFrag:], 0)
	binary.LittleEndian.PutUint16(b[offReserved:], 0)
	return Slotted{b: b}
}

// AsSlotted returns a slotted view of b, validating the page type.
func AsSlotted(b []byte) (Slotted, error) {
	switch TypeOf(b) {
	case TypeSlotted:
		return Slotted{b: b}, nil
	case TypeInvalid:
		return Slotted{}, ErrBadMagic
	default:
		return Slotted{}, ErrNotSlotted
	}
}

// MaxCellSize returns the largest cell storable in a freshly formatted
// slotted page of the given size. This is the record manager's "net page
// capacity" (paper §3.2.2).
func MaxCellSize(pageSize int) int {
	return pageSize - slottedHeaderSize - slotSize
}

func (s Slotted) slotCount() int {
	return int(binary.LittleEndian.Uint16(s.b[offSlotCount:]))
}

func (s Slotted) cellEnd() int {
	return int(binary.LittleEndian.Uint16(s.b[offCellEnd:]))
}

func (s Slotted) frag() int {
	return int(binary.LittleEndian.Uint16(s.b[offFrag:]))
}

func (s Slotted) setSlotCount(n int) {
	binary.LittleEndian.PutUint16(s.b[offSlotCount:], uint16(n))
}

func (s Slotted) setCellEnd(n int) {
	binary.LittleEndian.PutUint16(s.b[offCellEnd:], uint16(n))
}

func (s Slotted) setFrag(n int) {
	binary.LittleEndian.PutUint16(s.b[offFrag:], uint16(n))
}

// slotPos returns the byte position of slot i's directory entry.
func (s Slotted) slotPos(i int) int {
	return len(s.b) - slotSize*(i+1)
}

func (s Slotted) slot(i int) (off, length int, flag bool) {
	p := s.slotPos(i)
	off = int(binary.LittleEndian.Uint16(s.b[p:]))
	lw := binary.LittleEndian.Uint16(s.b[p+2:])
	return off, int(lw & lenMask), lw&flagBitMask != 0
}

func (s Slotted) setSlot(i, off, length int, flag bool) {
	p := s.slotPos(i)
	binary.LittleEndian.PutUint16(s.b[p:], uint16(off))
	lw := uint16(length) & lenMask
	if flag {
		lw |= flagBitMask
	}
	binary.LittleEndian.PutUint16(s.b[p+2:], lw)
}

// SlotCount returns the number of directory entries, including dead slots.
func (s Slotted) SlotCount() int { return s.slotCount() }

// LiveCells returns the number of non-deleted cells.
func (s Slotted) LiveCells() int {
	n := 0
	for i := 0; i < s.slotCount(); i++ {
		if off, _, _ := s.slot(i); off != 0 {
			n++
		}
	}
	return n
}

// contiguous returns the bytes available between the cell area and the
// slot directory.
func (s Slotted) contiguous() int {
	return len(s.b) - slotSize*s.slotCount() - s.cellEnd()
}

// FreeBytes returns the total reusable bytes on the page: the contiguous
// gap plus fragmented space reclaimable by compaction. It does not include
// slot-directory overhead for future inserts.
func (s Slotted) FreeBytes() int {
	return s.contiguous() + s.frag()
}

// freeSlot returns the index of a reusable dead slot, or -1.
func (s Slotted) freeSlot() int {
	for i := 0; i < s.slotCount(); i++ {
		if off, _, _ := s.slot(i); off == 0 {
			return i
		}
	}
	return -1
}

// CanInsert reports whether a cell of n bytes fits, accounting for a new
// directory entry if no dead slot is available.
func (s Slotted) CanInsert(n int) bool {
	if n <= 0 || n > lenMask {
		return false
	}
	need := n
	if s.freeSlot() < 0 {
		need += slotSize
	}
	return s.FreeBytes() >= need
}

// Insert stores data in a new cell and returns its slot number. It fails
// (ok=false) if the page cannot hold the cell.
func (s Slotted) Insert(data []byte) (slot int, ok bool) {
	if !s.CanInsert(len(data)) {
		return 0, false
	}
	slot = s.freeSlot()
	if slot < 0 {
		// Extending the directory steals 4 bytes from the top of the cell
		// area; compact first if a live cell currently occupies them.
		if s.contiguous() < slotSize {
			s.compact()
		}
		slot = s.slotCount()
		s.setSlotCount(slot + 1)
		// The new directory entry may overlap former (dead) cell bytes;
		// mark it dead before anything else walks the directory.
		s.setSlot(slot, 0, 0, false)
	}
	if s.contiguous() < len(data) {
		s.compact()
	}
	off := s.cellEnd()
	copy(s.b[off:], data)
	s.setCellEnd(off + len(data))
	s.setSlot(slot, off, len(data), false)
	return slot, true
}

// Cell returns a read-only view of the cell in the given slot. The slice
// aliases the page image; callers must copy before retaining it.
func (s Slotted) Cell(slot int) ([]byte, error) {
	if slot < 0 || slot >= s.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchSlot, slot, s.slotCount())
	}
	off, length, _ := s.slot(slot)
	if off == 0 {
		return nil, fmt.Errorf("%w: %d", ErrDeadSlot, slot)
	}
	return s.b[off : off+length : off+length], nil
}

// Flag returns the per-cell flag bit of the given slot.
func (s Slotted) Flag(slot int) (bool, error) {
	if slot < 0 || slot >= s.slotCount() {
		return false, fmt.Errorf("%w: %d of %d", ErrNoSuchSlot, slot, s.slotCount())
	}
	off, _, fl := s.slot(slot)
	if off == 0 {
		return false, fmt.Errorf("%w: %d", ErrDeadSlot, slot)
	}
	return fl, nil
}

// SetFlag sets the per-cell flag bit of the given slot.
func (s Slotted) SetFlag(slot int, flag bool) error {
	if slot < 0 || slot >= s.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrNoSuchSlot, slot, s.slotCount())
	}
	off, length, _ := s.slot(slot)
	if off == 0 {
		return fmt.Errorf("%w: %d", ErrDeadSlot, slot)
	}
	s.setSlot(slot, off, length, flag)
	return nil
}

// CanUpdate reports whether the cell in slot can be resized to n bytes
// without moving to another page.
func (s Slotted) CanUpdate(slot int, n int) bool {
	if slot < 0 || slot >= s.slotCount() || n <= 0 || n > lenMask {
		return false
	}
	off, length, _ := s.slot(slot)
	if off == 0 {
		return false
	}
	if n <= length {
		return true
	}
	// The old cell's bytes become reclaimable.
	return s.FreeBytes()+length >= n
}

// Update replaces the contents of an existing cell, growing or shrinking
// it. The flag bit is preserved. It fails (ok=false) if the new size does
// not fit on the page.
func (s Slotted) Update(slot int, data []byte) bool {
	if !s.CanUpdate(slot, len(data)) {
		return false
	}
	off, length, flag := s.slot(slot)
	if len(data) <= length {
		copy(s.b[off:], data)
		s.setFrag(s.frag() + length - len(data))
		s.setSlot(slot, off, len(data), flag)
		return true
	}
	// Grow: retire the old cell, then place the new bytes.
	s.setFrag(s.frag() + length)
	s.setSlot(slot, 0, 0, false)
	if s.contiguous() < len(data) {
		s.compact()
	}
	noff := s.cellEnd()
	copy(s.b[noff:], data)
	s.setCellEnd(noff + len(data))
	s.setSlot(slot, noff, len(data), flag)
	return true
}

// Delete removes the cell in the given slot. The slot becomes reusable;
// trailing dead slots are trimmed from the directory.
func (s Slotted) Delete(slot int) error {
	if slot < 0 || slot >= s.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrNoSuchSlot, slot, s.slotCount())
	}
	off, length, _ := s.slot(slot)
	if off == 0 {
		return fmt.Errorf("%w: %d", ErrDeadSlot, slot)
	}
	s.setSlot(slot, 0, 0, false)
	s.setFrag(s.frag() + length)
	// Trim trailing dead slots so their directory space is reclaimed.
	n := s.slotCount()
	for n > 0 {
		if off, _, _ := s.slot(n - 1); off != 0 {
			break
		}
		n--
	}
	s.setSlotCount(n)
	return nil
}

// compact rewrites the cell area so all live cells are contiguous,
// eliminating fragmentation. Slot numbers are preserved.
func (s Slotted) compact() {
	type ent struct{ slot, off, length int }
	var live []ent
	for i := 0; i < s.slotCount(); i++ {
		if off, length, _ := s.slot(i); off != 0 {
			live = append(live, ent{i, off, length})
		}
	}
	// Move cells in ascending offset order so copies never overlap
	// destructively (destination is always <= source).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].off < live[j-1].off; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	pos := slottedHeaderSize
	for _, e := range live {
		if e.off != pos {
			copy(s.b[pos:pos+e.length], s.b[e.off:e.off+e.length])
			_, _, flag := s.slot(e.slot)
			s.setSlot(e.slot, pos, e.length, flag)
		}
		pos += e.length
	}
	s.setCellEnd(pos)
	s.setFrag(0)
}

// Slots returns the slot numbers of all live cells in ascending order.
func (s Slotted) Slots() []int {
	var out []int
	for i := 0; i < s.slotCount(); i++ {
		if off, _, _ := s.slot(i); off != 0 {
			out = append(out, i)
		}
	}
	return out
}

// UsedBytes returns the bytes consumed on the page: header, live cells and
// the slot directory. len(page) - UsedBytes() - frag == contiguous free.
func (s Slotted) UsedBytes() int {
	used := slottedHeaderSize + slotSize*s.slotCount()
	for i := 0; i < s.slotCount(); i++ {
		if off, length, _ := s.slot(i); off != 0 {
			used += length
		}
	}
	return used
}
