package pageformat

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newPage(t *testing.T, size int) Slotted {
	t.Helper()
	return FormatSlotted(make([]byte, size))
}

func TestFormatAndAttach(t *testing.T) {
	b := make([]byte, 2048)
	FormatSlotted(b)
	s, err := AsSlotted(b)
	if err != nil {
		t.Fatalf("AsSlotted: %v", err)
	}
	if s.SlotCount() != 0 || s.LiveCells() != 0 {
		t.Fatalf("fresh page has %d slots, %d live", s.SlotCount(), s.LiveCells())
	}
	if got, want := s.FreeBytes(), 2048-24; got != want {
		t.Fatalf("FreeBytes = %d, want %d", got, want)
	}
}

func TestAsSlottedRejectsOtherTypes(t *testing.T) {
	b := make([]byte, 1024)
	if _, err := AsSlotted(b); err == nil {
		t.Fatal("AsSlotted accepted a zero page")
	}
	InitCommon(b, TypeFSI)
	if _, err := AsSlotted(b); err == nil {
		t.Fatal("AsSlotted accepted an FSI page")
	}
}

func TestInsertReadRoundTrip(t *testing.T) {
	s := newPage(t, 2048)
	var slots []int
	var want [][]byte
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 10+i*7)
		slot, ok := s.Insert(data)
		if !ok {
			t.Fatalf("Insert %d failed", i)
		}
		slots = append(slots, slot)
		want = append(want, data)
	}
	for i, slot := range slots {
		got, err := s.Cell(slot)
		if err != nil {
			t.Fatalf("Cell(%d): %v", slot, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("cell %d corrupted", slot)
		}
	}
}

func TestInsertUntilFullThenDelete(t *testing.T) {
	s := newPage(t, 1024)
	data := bytes.Repeat([]byte{0xCD}, 100)
	var slots []int
	for {
		slot, ok := s.Insert(data)
		if !ok {
			break
		}
		slots = append(slots, slot)
	}
	if len(slots) == 0 {
		t.Fatal("no inserts succeeded")
	}
	// (100+4) bytes per cell on a 1024-16 byte arena → 9 cells.
	if len(slots) != 9 {
		t.Fatalf("inserted %d cells, want 9", len(slots))
	}
	// Delete everything; page should be fully reusable.
	for _, slot := range slots {
		if err := s.Delete(slot); err != nil {
			t.Fatalf("Delete(%d): %v", slot, err)
		}
	}
	if s.LiveCells() != 0 {
		t.Fatalf("LiveCells = %d after deleting all", s.LiveCells())
	}
	if s.SlotCount() != 0 {
		t.Fatalf("trailing dead slots not trimmed: SlotCount = %d", s.SlotCount())
	}
	if got, want := s.FreeBytes(), 1024-24; got != want {
		t.Fatalf("FreeBytes after full delete = %d, want %d", got, want)
	}
}

func TestDeleteReusesSlots(t *testing.T) {
	s := newPage(t, 1024)
	a, _ := s.Insert([]byte("aaaa"))
	b, _ := s.Insert([]byte("bbbb"))
	c, _ := s.Insert([]byte("cccc"))
	_ = c
	if err := s.Delete(b); err != nil {
		t.Fatal(err)
	}
	d, ok := s.Insert([]byte("dddd"))
	if !ok {
		t.Fatal("insert after delete failed")
	}
	if d != b {
		t.Fatalf("dead slot not reused: got slot %d, want %d", d, b)
	}
	// Slot a must be untouched.
	got, err := s.Cell(a)
	if err != nil || string(got) != "aaaa" {
		t.Fatalf("cell a corrupted: %q, %v", got, err)
	}
}

func TestCompactionReclaimsFragmentation(t *testing.T) {
	s := newPage(t, 1024)
	// Fill the page with two alternating cell sizes.
	var slots []int
	for {
		slot, ok := s.Insert(bytes.Repeat([]byte{1}, 60))
		if !ok {
			break
		}
		slots = append(slots, slot)
	}
	// Delete every other cell: frees space but fragments it.
	for i := 0; i < len(slots); i += 2 {
		if err := s.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A cell larger than any single hole must still fit via compaction.
	big := bytes.Repeat([]byte{7}, 100)
	if !s.CanInsert(len(big)) {
		t.Fatalf("CanInsert(100) = false with FreeBytes = %d", s.FreeBytes())
	}
	slot, ok := s.Insert(big)
	if !ok {
		t.Fatal("insert requiring compaction failed")
	}
	got, err := s.Cell(slot)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("cell after compaction corrupted: %v", err)
	}
	// Survivors must be intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := s.Cell(slots[i])
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{1}, 60)) {
			t.Fatalf("survivor slot %d corrupted after compaction: %v", slots[i], err)
		}
	}
}

func TestUpdateShrinkGrowInPlace(t *testing.T) {
	s := newPage(t, 1024)
	slot, _ := s.Insert(bytes.Repeat([]byte{9}, 200))
	// Shrink.
	if !s.Update(slot, []byte("tiny")) {
		t.Fatal("shrinking update failed")
	}
	got, _ := s.Cell(slot)
	if string(got) != "tiny" {
		t.Fatalf("after shrink: %q", got)
	}
	// Grow back, larger than before.
	big := bytes.Repeat([]byte{3}, 400)
	if !s.Update(slot, big) {
		t.Fatal("growing update failed")
	}
	got, _ = s.Cell(slot)
	if !bytes.Equal(got, big) {
		t.Fatal("after grow: corrupted")
	}
}

func TestUpdateTooBigFails(t *testing.T) {
	s := newPage(t, 1024)
	slot, _ := s.Insert([]byte("x"))
	if s.Update(slot, bytes.Repeat([]byte{1}, 2000)) {
		t.Fatal("update larger than page succeeded")
	}
	got, _ := s.Cell(slot)
	if string(got) != "x" {
		t.Fatalf("failed update clobbered cell: %q", got)
	}
}

func TestFlags(t *testing.T) {
	s := newPage(t, 1024)
	slot, _ := s.Insert([]byte("fwd"))
	if fl, err := s.Flag(slot); err != nil || fl {
		t.Fatalf("fresh cell flag = %v, %v", fl, err)
	}
	if err := s.SetFlag(slot, true); err != nil {
		t.Fatal(err)
	}
	if fl, _ := s.Flag(slot); !fl {
		t.Fatal("flag did not stick")
	}
	// Flag survives an in-place update.
	if !s.Update(slot, []byte("fw")) {
		t.Fatal("update failed")
	}
	if fl, _ := s.Flag(slot); !fl {
		t.Fatal("flag lost on update")
	}
	// Flag survives a growing (relocating) update.
	if !s.Update(slot, bytes.Repeat([]byte{2}, 300)) {
		t.Fatal("growing update failed")
	}
	if fl, _ := s.Flag(slot); !fl {
		t.Fatal("flag lost on growing update")
	}
}

func TestCellErrors(t *testing.T) {
	s := newPage(t, 1024)
	if _, err := s.Cell(0); err == nil {
		t.Fatal("Cell on empty page succeeded")
	}
	slot, _ := s.Insert([]byte("a"))
	if _, err := s.Cell(slot + 5); err == nil {
		t.Fatal("Cell past directory succeeded")
	}
	if _, err := s.Cell(-1); err == nil {
		t.Fatal("Cell(-1) succeeded")
	}
	if err := s.Delete(slot + 5); err == nil {
		t.Fatal("Delete past directory succeeded")
	}
	if err := s.Delete(slot); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(slot); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestMaxCellSize(t *testing.T) {
	for _, ps := range []int{2048, 4096, 32768} {
		s := newPage(t, ps)
		max := MaxCellSize(ps)
		slot, ok := s.Insert(bytes.Repeat([]byte{5}, max))
		if !ok {
			t.Fatalf("page %d: max-size cell did not fit", ps)
		}
		if _, err := s.Cell(slot); err != nil {
			t.Fatal(err)
		}
		s2 := newPage(t, ps)
		if _, ok := s2.Insert(bytes.Repeat([]byte{5}, max+1)); ok {
			t.Fatalf("page %d: cell one over max fit", ps)
		}
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	b := make([]byte, 2048)
	s := FormatSlotted(b)
	s.Insert([]byte("payload"))
	UpdateChecksum(b)
	if err := VerifyChecksum(b); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
	b[100] ^= 0xFF
	if err := VerifyChecksum(b); err == nil {
		t.Fatal("corruption not detected")
	}
	b[100] ^= 0xFF
	if err := VerifyChecksum(b); err != nil {
		t.Fatalf("restored page fails verify: %v", err)
	}
	// Never-written pages pass (they carry no checksum).
	if err := VerifyChecksum(make([]byte, 2048)); err != nil {
		t.Fatalf("zero page fails verify: %v", err)
	}
}

// TestSlottedPageModel drives a random operation sequence against a
// map-based model and checks full equivalence after every step.
func TestSlottedPageModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		pageSize := []int{512, 1024, 2048, 8192}[rng.Intn(4)]
		s := newPage(t, pageSize)
		model := map[int][]byte{}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // insert
				n := 1 + rng.Intn(pageSize/4)
				data := make([]byte, n)
				rng.Read(data)
				slot, ok := s.Insert(data)
				if ok {
					if _, exists := model[slot]; exists {
						t.Fatalf("round %d step %d: Insert returned live slot %d", round, step, slot)
					}
					model[slot] = append([]byte(nil), data...)
				} else if s.freeSlot() >= 0 && s.FreeBytes() >= n || s.freeSlot() < 0 && s.FreeBytes() >= n+slotSize {
					t.Fatalf("round %d step %d: Insert(%d) failed with FreeBytes=%d", round, step, n, s.FreeBytes())
				}
			case op < 7: // delete
				slot := anyKey(model, rng)
				if slot < 0 {
					continue
				}
				if err := s.Delete(slot); err != nil {
					t.Fatalf("round %d step %d: Delete(%d): %v", round, step, slot, err)
				}
				delete(model, slot)
			default: // update
				slot := anyKey(model, rng)
				if slot < 0 {
					continue
				}
				n := 1 + rng.Intn(pageSize/4)
				data := make([]byte, n)
				rng.Read(data)
				if s.Update(slot, data) {
					model[slot] = append([]byte(nil), data...)
				}
			}
			// Full equivalence check.
			if s.LiveCells() != len(model) {
				t.Fatalf("round %d step %d: LiveCells=%d, model=%d", round, step, s.LiveCells(), len(model))
			}
			for slot, want := range model {
				got, err := s.Cell(slot)
				if err != nil {
					t.Fatalf("round %d step %d: Cell(%d): %v", round, step, slot, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d step %d: slot %d corrupted", round, step, slot)
				}
			}
		}
	}
}

func anyKey(m map[int][]byte, rng *rand.Rand) int {
	if len(m) == 0 {
		return -1
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic replay
	return keys[rng.Intn(len(keys))]
}

// Property: free bytes + used bytes == page size at all times (after any
// single insert).
func TestSpaceAccountingProperty(t *testing.T) {
	if err := quick.Check(func(sizes []uint8) bool {
		s := newPage(t, 2048)
		for _, raw := range sizes {
			n := int(raw)%200 + 1
			s.Insert(bytes.Repeat([]byte{1}, n))
		}
		return s.UsedBytes()+s.frag()+s.contiguous() == 2048
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
