package benchkit

import (
	"bytes"
	"strings"
	"testing"

	"natix/internal/corpus"
)

// tinySpec keeps unit tests fast.
func tinySpec() corpus.Spec {
	return corpus.SmallSpec(2)
}

func TestBuildEnvAllModes(t *testing.T) {
	for _, cfg := range []Config{
		{PageSize: 2048, Mode: ModeNative, Order: OrderAppend},
		{PageSize: 2048, Mode: ModeNative, Order: OrderIncremental},
		{PageSize: 2048, Mode: ModeOneToOne, Order: OrderAppend},
		{PageSize: 2048, Mode: ModeOneToOne, Order: OrderIncremental},
		{PageSize: 2048, Mode: ModeFlat},
	} {
		t.Run(cfg.Series(), func(t *testing.T) {
			env, err := BuildEnv(tinySpec(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ins := env.Insertion()
			if ins.SimMS <= 0 || ins.PhysWrites == 0 {
				t.Fatalf("insertion metrics empty: %+v", ins)
			}
			if len(env.Docs()) != 2 {
				t.Fatalf("docs = %v", env.Docs())
			}
			// Storage invariants hold for tree modes.
			if cfg.Mode != ModeFlat {
				for _, name := range env.Docs() {
					tree, err := env.Store().Tree(name)
					if err != nil {
						t.Fatal(err)
					}
					if err := tree.CheckInvariants(); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
		})
	}
}

// TestInsertionOrdersProduceSameDocuments: append and incremental loads
// must yield identical logical documents.
func TestInsertionOrdersProduceSameDocuments(t *testing.T) {
	a, err := BuildEnv(tinySpec(), Config{PageSize: 1024, Mode: ModeNative, Order: OrderAppend})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEnv(tinySpec(), Config{PageSize: 1024, Mode: ModeNative, Order: OrderIncremental})
	if err != nil {
		t.Fatal(err)
	}
	var xa, xb bytes.Buffer
	if err := a.Store().ExportXML("play-00", &xa); err != nil {
		t.Fatal(err)
	}
	if err := b.Store().ExportXML("play-00", &xb); err != nil {
		t.Fatal(err)
	}
	if xa.String() != xb.String() {
		t.Fatal("insertion orders produced different documents")
	}
}

func TestOperationsProduceWork(t *testing.T) {
	env, err := BuildEnv(tinySpec(), Config{PageSize: 2048, Mode: ModeNative, Order: OrderAppend})
	if err != nil {
		t.Fatal(err)
	}
	trav, err := env.Traverse()
	if err != nil {
		t.Fatal(err)
	}
	st := corpus.Measure(corpus.Generate(tinySpec()))
	if trav.Work != int64(st.Nodes) {
		t.Fatalf("traversal visited %d nodes, corpus has %d", trav.Work, st.Nodes)
	}
	q1, err := env.RunQuery("fig11", Query1, false)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Work == 0 {
		t.Fatal("query 1 found nothing")
	}
	q2, err := env.RunQuery("fig12", Query2, true)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Work == 0 {
		t.Fatal("query 2 produced no markup")
	}
	sp := env.Space()
	if sp.SpaceBytes == 0 {
		t.Fatal("space metric empty")
	}
}

// TestFlatVsTreeSameQueryAnswers: both representations must agree on
// query results.
func TestFlatVsTreeSameQueryAnswers(t *testing.T) {
	tree, err := BuildEnv(tinySpec(), Config{PageSize: 2048, Mode: ModeNative, Order: OrderAppend})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := BuildEnv(tinySpec(), Config{PageSize: 2048, Mode: ModeFlat})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{Query1, Query2, Query3} {
		rt, err := tree.Store().Query("play-00", q)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := flat.Store().Query("play-00", q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rt) != len(rf) {
			t.Fatalf("%s: tree %d matches, flat %d", q, len(rt), len(rf))
		}
		for i := range rt {
			mt, err := rt[i].Markup()
			if err != nil {
				t.Fatal(err)
			}
			mf, err := rf[i].Markup()
			if err != nil {
				t.Fatal(err)
			}
			if mt != mf {
				t.Fatalf("%s match %d differs:\n%s\n%s", q, i, mt, mf)
			}
		}
	}
}

func TestRunSuiteSmall(t *testing.T) {
	suite, err := RunSuite(SuiteOptions{
		Spec:        corpus.SmallSpec(1),
		PageSizes:   []int{1024, 2048},
		BufferBytes: 64 << 10,
		IncludeFlat: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5 series × 2 page sizes × 6 figures.
	if len(suite.Results) != 5*2*6 {
		t.Fatalf("results = %d, want 60", len(suite.Results))
	}
	var out bytes.Buffer
	suite.PrintAll(&out)
	text := out.String()
	for _, fig := range Figures {
		if !strings.Contains(text, fig.ID) {
			t.Fatalf("output missing %s:\n%s", fig.ID, text)
		}
	}
	var csv bytes.Buffer
	if err := suite.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 61 {
		t.Fatalf("csv lines = %d, want 61", lines)
	}
}

// TestSeriesLabels pins the paper's legend names.
func TestSeriesLabels(t *testing.T) {
	if got := (Config{Mode: ModeOneToOne, Order: OrderIncremental}).Series(); got != "1:1 incr" {
		t.Fatalf("series = %q", got)
	}
	if got := (Config{Mode: ModeNative, Order: OrderAppend}).Series(); got != "1:n append" {
		t.Fatalf("series = %q", got)
	}
	if got := (Config{Mode: ModeFlat}).Series(); got != "flat" {
		t.Fatalf("series = %q", got)
	}
}

// TestRunQueryParallelMatchesSerial: fanning the documents across
// workers must do exactly the work of the serial run.
func TestRunQueryParallelMatchesSerial(t *testing.T) {
	env, err := BuildEnv(corpus.SmallSpec(4), Config{PageSize: 2048, Mode: ModeNative, Order: OrderAppend, PathIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := env.RunQuery("q1", Query1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 9} {
		par, err := env.RunQueryParallel("q1-par", Query1, false, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Work != serial.Work {
			t.Fatalf("workers=%d: work = %d, serial = %d", workers, par.Work, serial.Work)
		}
	}
}
