package benchkit

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunImportBothPaths(t *testing.T) {
	env, err := BuildEnv(tinySpec(), Config{
		PageSize: 2048, Mode: ModeNative, Order: OrderAppend,
	})
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := env.RunImport("import-bulk", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := env.RunImport("import-incremental", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Docs != 2 || inc.Docs != 2 {
		t.Fatalf("docs: bulk %d, incremental %d", bulk.Docs, inc.Docs)
	}
	if bulk.XMLBytes != inc.XMLBytes {
		t.Fatalf("paths measured different inputs: %d vs %d bytes", bulk.XMLBytes, inc.XMLBytes)
	}
	if bulk.RecordsRewritten != 0 {
		t.Fatalf("bulk path rewrote %d records", bulk.RecordsRewritten)
	}
	if inc.RecordsRewritten == 0 {
		t.Fatal("incremental path reported zero rewrites — counter broken?")
	}
	if bulk.PagesWritten == 0 || bulk.RecordsCreated == 0 || bulk.MBPerSec <= 0 {
		t.Fatalf("bulk metrics not populated: %+v", bulk)
	}
	// Cleanup happened: only the env's standing corpus remains.
	if got := len(env.Store().Documents()); got != len(env.Docs()) {
		t.Fatalf("RunImport left %d documents, want %d", got, len(env.Docs()))
	}
}

func TestImportExperimentJSON(t *testing.T) {
	spec := tinySpec()
	cells, err := RunImportExperiment(spec, 1<<20, 2048, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 || cells[0].Path != "bulk" || cells[3].Path != "incremental" {
		t.Fatalf("unexpected cells: %+v", cells)
	}
	if cells[1].Workers != 1 || cells[2].Workers != 2 {
		t.Fatalf("worker cells not recorded: %+v", cells)
	}
	for _, c := range cells[:3] {
		if c.ParseMS <= 0 || c.PackMS <= 0 {
			t.Fatalf("bulk cell missing stage breakdown: %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := WriteImportJSON(&buf, cells, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"benchmark": "import"`, `"records_rewritten"`,
		`"speedup_x"`, `"scaling"`, `"parse_ms"`, `"workers": 2`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	var tbl bytes.Buffer
	PrintImportCells(&tbl, cells)
	if !strings.Contains(tbl.String(), "speedup") {
		t.Fatalf("table missing speedup line:\n%s", tbl.String())
	}
}
