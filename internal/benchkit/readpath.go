package benchkit

// Readpath experiment: the buffer-pool memory hierarchy under a read
// workload. Cells sweep pool size (constrained vs fully resident) ×
// tier-2 compression (off vs on) × temperature (cold vs warm) over two
// corpora — text-heavy (long lines, compresses well) and
// structure-heavy (many tiny elements, markup-dominated) — and report
// simulated disk time as the paper-comparable metric. The headline is
// the cold, pool-constrained, text-heavy cell: the working set exceeds
// tier-1, so the scan + markup passes thrash the clock, and with the
// tier on the re-reads decompress from the victim cache in microseconds
// instead of paying a simulated random read each.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"natix/internal/corpus"
)

// readpathRounds is how many times the cold measurement sweeps the
// whole corpus: round 1 populates tier-2 through evictions, round 2
// re-reads through it.
const readpathRounds = 2

// warmPasses is how many times the warm measurement repeats; the
// quietest pass (minimum wall time) is reported. warmRepeat is how
// many workload sweeps one warm pass times as a single region. Both
// exist so the sub-5% overhead comparison is not at the mercy of
// millisecond-scale scheduler noise: repetition amortizes jitter
// inside a region, min-of-passes discards regions that caught a
// descheduling.
const (
	warmPasses = 5
	warmRepeat = 10
)

// TextHeavySpec generates a corpus dominated by character data: long
// speeches, wide lines. Its pages deflate hard, which is where a
// compressed victim cache holds the largest fraction of the working
// set.
func TextHeavySpec(plays int) corpus.Spec {
	s := corpus.DefaultSpec()
	s.Plays = plays
	s.ActsPerPlay = 4
	s.ScenesMin, s.ScenesMax = 2, 3
	s.SpeechesMin, s.SpeechesMax = 10, 16
	s.LinesMin, s.LinesMax = 6, 12
	s.WordsMin, s.WordsMax = 10, 16
	return s
}

// StructureHeavySpec generates a corpus dominated by markup: many tiny
// elements with one-or-two-word text nodes. Per byte it carries far
// more tree structure than TextHeavySpec, and compresses less.
func StructureHeavySpec(plays int) corpus.Spec {
	s := corpus.DefaultSpec()
	s.Plays = plays
	s.ActsPerPlay = 6
	s.ScenesMin, s.ScenesMax = 4, 5
	s.SpeechesMin, s.SpeechesMax = 48, 72
	s.LinesMin, s.LinesMax = 1, 2
	s.WordsMin, s.WordsMax = 1, 2
	return s
}

// resetCounters zeroes the measurement counters without clearing the
// pool or the decoded caches — the warm-measurement prologue, where
// resident state is exactly what is being measured.
func (e *Env) resetCounters() {
	e.pool.ResetStats()
	e.sim.ResetStats()
	e.base = e.reg.Snapshot()
}

// readpathPass runs the readpath workload once: for every document, the
// navigating-scan query //SCENE/SPEECH[1] followed by serializing each
// match (query 2's access pattern — the scan sweeps every page of the
// document, the markup pass re-reads the match pages). It returns bytes
// of markup produced and queries evaluated.
func (e *Env) readpathPass() (int64, int, error) {
	var work int64
	queries := 0
	for _, name := range e.docs {
		res, err := e.store.Query(name, Query2)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range res {
			m, err := r.Markup()
			if err != nil {
				return 0, 0, err
			}
			work += int64(len(m))
		}
		queries++
	}
	return work, queries, nil
}

// ReadpathCell is one row of the readpath experiment, JSON-ready.
type ReadpathCell struct {
	Corpus     string `json:"corpus"` // "text" | "structure"
	Pool       string `json:"pool"`   // "constrained" | "resident"
	PoolBytes  int    `json:"pool_bytes"`
	TierBytes  int64  `json:"tier_bytes"` // configured tier-2 budget (0 = off)
	Compressed bool   `json:"compressed"`
	Temp       string `json:"temp"` // "cold" | "warm"

	Queries       int     `json:"queries"`
	WorkBytes     int64   `json:"work_bytes"`
	WallMS        float64 `json:"wall_ms"`
	SimMS         float64 `json:"sim_ms"`
	QueriesPerSec float64 `json:"queries_per_sim_sec,omitempty"` // 0 when SimMS is 0

	LogicalReads   int64 `json:"logical_reads"`
	PhysReads      int64 `json:"phys_reads"`
	Tier2Hits      int64 `json:"tier2_hits"`
	Tier2Misses    int64 `json:"tier2_misses"`
	PrefetchIssued int64 `json:"prefetch_issued"`
	PrefetchUsed   int64 `json:"prefetch_used"`

	// Engine is the engine-metrics delta of the measured region,
	// including the config.* keys every cell carries.
	Engine map[string]int64 `json:"engine,omitempty"`
}

func readpathCell(corpusName, poolName string, cfg Config, temp string, queries int, work int64, m Metrics) ReadpathCell {
	c := ReadpathCell{
		Corpus:         corpusName,
		Pool:           poolName,
		PoolBytes:      cfg.BufferBytes,
		TierBytes:      cfg.CompressedCacheBytes,
		Compressed:     cfg.CompressedCacheBytes > 0,
		Temp:           temp,
		Queries:        queries,
		WorkBytes:      work,
		WallMS:         m.WallMS,
		SimMS:          m.SimMS,
		LogicalReads:   m.LogicalReads,
		PhysReads:      m.PhysReads,
		Tier2Hits:      m.Engine["buffer.tier2_hits"],
		Tier2Misses:    m.Engine["buffer.tier2_misses"],
		PrefetchIssued: m.Engine["buffer.prefetch_issued"],
		PrefetchUsed:   m.Engine["buffer.prefetch_used"],
		Engine:         m.Engine,
	}
	if m.SimMS > 0 {
		c.QueriesPerSec = float64(queries) / (m.SimMS / 1000)
	}
	return c
}

// RunReadpathExperiment builds every (corpus × pool × compression) env
// and measures the workload cold and warm in each, returning the full
// cell grid.
func RunReadpathExperiment(plays, pageSize int, progress io.Writer) ([]ReadpathCell, error) {
	corpora := []struct {
		name string
		spec corpus.Spec
	}{
		{"text", TextHeavySpec(plays)},
		{"structure", StructureHeavySpec(plays)},
	}
	pools := []struct {
		name  string
		bytes int
	}{
		// Constrained: the corpus working set is a multiple of tier-1,
		// the regime the victim cache exists for. Resident: everything
		// fits, measuring the tier's overhead when it never helps.
		{"constrained", 32 * pageSize},
		{"resident", 1024 * pageSize},
	}
	var cells []ReadpathCell
	for _, co := range corpora {
		for _, po := range pools {
			for _, compressed := range []bool{false, true} {
				cfg := Config{
					PageSize:    pageSize,
					BufferBytes: po.bytes,
					Mode:        ModeNative,
					Order:       OrderAppend,
				}
				if compressed {
					// Budget ~4× the pool: enough to hold the compressed
					// spillover of a working set several times tier-1.
					cfg.CompressedCacheBytes = int64(4 * po.bytes)
				}
				if progress != nil {
					fmt.Fprintf(progress, "readpath: %s/%s compressed=%v\n", co.name, po.name, compressed)
				}
				env, err := BuildEnv(co.spec, cfg)
				if err != nil {
					return nil, fmt.Errorf("readpath %s/%s: %w", co.name, po.name, err)
				}

				// Cold: cleared pool and tier, then readpathRounds full
				// sweeps — evictions during round 1 feed tier-2, round 2
				// re-reads through it.
				env.resetMeasurement()
				start := time.Now()
				var work int64
				queries := 0
				for r := 0; r < readpathRounds; r++ {
					w, q, err := env.readpathPass()
					if err != nil {
						return nil, err
					}
					work += w
					queries += q
				}
				env.pool.DrainPrefetch()
				m := env.capture("readpath-cold", start, work)
				cells = append(cells, readpathCell(co.name, po.name, cfg, "cold", queries, work, m))

				// Warm: steady state — counters reset, pool and caches
				// left as the cold rounds warmed them. Best of warmPasses.
				var best ReadpathCell
				for i := 0; i < warmPasses; i++ {
					env.resetCounters()
					start = time.Now()
					var w int64
					q := 0
					for r := 0; r < warmRepeat; r++ {
						pw, pq, err := env.readpathPass()
						if err != nil {
							return nil, err
						}
						w += pw
						q += pq
					}
					env.pool.DrainPrefetch()
					m = env.capture("readpath-warm", start, w)
					c := readpathCell(co.name, po.name, cfg, "warm", q, w, m)
					if i == 0 || c.WallMS < best.WallMS {
						best = c
					}
				}
				cells = append(cells, best)
			}
		}
	}
	return cells, nil
}

// findReadpathCell returns the first cell matching the axes, or nil.
func findReadpathCell(cells []ReadpathCell, corpusName, pool, temp string, compressed bool) *ReadpathCell {
	for i := range cells {
		c := &cells[i]
		if c.Corpus == corpusName && c.Pool == pool && c.Temp == temp && c.Compressed == compressed {
			return c
		}
	}
	return nil
}

// PrintReadpathCells renders the experiment as a table.
func PrintReadpathCells(w io.Writer, cells []ReadpathCell) {
	fmt.Fprintf(w, "Read path (tier-2 victim cache + read-ahead); sim-ms is the paper-comparable metric\n")
	fmt.Fprintf(w, "%-10s %-12s %5s %5s %9s %9s %9s %10s %10s %9s\n",
		"corpus", "pool", "tier", "temp", "sim-ms", "wall-ms", "phys-rd", "t2-hits", "prefetch", "q/sim-s")
	for _, c := range cells {
		tier := "off"
		if c.Compressed {
			tier = "on"
		}
		fmt.Fprintf(w, "%-10s %-12s %5s %5s %9.1f %9.1f %9d %10d %10d %9.1f\n",
			c.Corpus, c.Pool, tier, c.Temp, c.SimMS, c.WallMS, c.PhysReads,
			c.Tier2Hits, c.PrefetchUsed, c.QueriesPerSec)
	}
	off := findReadpathCell(cells, "text", "constrained", "cold", false)
	on := findReadpathCell(cells, "text", "constrained", "cold", true)
	if off != nil && on != nil && on.SimMS > 0 {
		fmt.Fprintf(w, "cold constrained text speedup: %.1fx\n", off.SimMS/on.SimMS)
	}
}

// readpathReport is the BENCH_readpath.json schema.
type readpathReport struct {
	Benchmark string         `json:"benchmark"`
	Unit      string         `json:"unit"`
	Cells     []ReadpathCell `json:"cells"`
	// SpeedupColdX is sim-ms off/on for the cold, pool-constrained,
	// text-heavy cell — the experiment's headline.
	SpeedupColdX float64 `json:"speedup_cold_x,omitempty"`
	// WarmResidentDeltaPct is the wall-time delta of the tier being on
	// when it cannot help (everything resident): (on-off)/off × 100.
	// Wall time is noisy; the acceptance band is ±5%.
	WarmResidentDeltaPct float64 `json:"warm_resident_delta_pct"`
}

// WriteReadpathJSON writes the experiment cells as the perf-trajectory
// readpath baseline.
func WriteReadpathJSON(w io.Writer, cells []ReadpathCell) error {
	rep := readpathReport{Benchmark: "readpath", Unit: "sim_ms", Cells: cells}
	off := findReadpathCell(cells, "text", "constrained", "cold", false)
	on := findReadpathCell(cells, "text", "constrained", "cold", true)
	if off != nil && on != nil && on.SimMS > 0 {
		rep.SpeedupColdX = off.SimMS / on.SimMS
	}
	woff := findReadpathCell(cells, "text", "resident", "warm", false)
	won := findReadpathCell(cells, "text", "resident", "warm", true)
	if woff != nil && won != nil && woff.WallMS > 0 {
		rep.WarmResidentDeltaPct = (won.WallMS - woff.WallMS) / woff.WallMS * 100
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
