package benchkit

import (
	"fmt"
	"io"

	"natix/internal/corpus"
)

// Ablations probe the design choices DESIGN.md calls out, beyond the
// paper's own figures: the split target, the split tolerance, the buffer
// size, and the parsed-record cache.

// AblationRow is one measured cell of an ablation sweep.
type AblationRow struct {
	Param     string
	Value     string
	Insert    Metrics
	Traverse  Metrics
	Query2    Metrics
	SpaceByte int64
}

// SplitTargetAblation sweeps the split target (§3.2.2: "the desired
// ratio between the sizes of L and R is a configuration parameter"),
// measuring its effect on append loads, traversal and fragment queries.
func SplitTargetAblation(spec corpus.Spec, pageSize int, buffer int, out io.Writer) ([]AblationRow, error) {
	var rows []AblationRow
	for _, target := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cfg := Config{
			PageSize: pageSize, BufferBytes: buffer,
			Mode: ModeNative, Order: OrderAppend, SplitTarget: target,
		}
		row, err := ablationCell(spec, cfg, "split-target", fmt.Sprintf("%.2f", target))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printAblation(out, "Split target (fraction of bytes left of the separator)", rows)
	return rows, nil
}

// SplitToleranceAblation sweeps the split tolerance (§3.2.2: minimum
// subtree size; "subtrees smaller than this value are not split ... to
// prevent fragmentation").
func SplitToleranceAblation(spec corpus.Spec, pageSize int, buffer int, out io.Writer) ([]AblationRow, error) {
	var rows []AblationRow
	for _, frac := range []int{50, 20, 10, 5, 2} {
		tol := pageSize / frac
		cfg := Config{
			PageSize: pageSize, BufferBytes: buffer,
			Mode: ModeNative, Order: OrderIncremental, SplitTolerance: tol,
		}
		row, err := ablationCell(spec, cfg, "split-tolerance", fmt.Sprintf("1/%d page (%dB)", frac, tol))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printAblation(out, "Split tolerance (minimum splittable subtree)", rows)
	return rows, nil
}

// BufferAblation sweeps the buffer pool size around the paper's 2 MB.
func BufferAblation(spec corpus.Spec, pageSize int, out io.Writer) ([]AblationRow, error) {
	var rows []AblationRow
	for _, buf := range []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20} {
		cfg := Config{
			PageSize: pageSize, BufferBytes: buf,
			Mode: ModeNative, Order: OrderIncremental,
		}
		row, err := ablationCell(spec, cfg, "buffer", fmt.Sprintf("%dKB", buf>>10))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printAblation(out, "Buffer pool size (paper: 2048KB)", rows)
	return rows, nil
}

// CacheAblation compares the parsed-record cache on and off. The cache
// is CPU-side only, so simulated times must match while wall times
// differ — this ablation doubles as a check that the cache cannot
// distort the I/O metrics.
func CacheAblation(spec corpus.Spec, pageSize int, buffer int, out io.Writer) ([]AblationRow, error) {
	var rows []AblationRow
	for _, cache := range []int{-1, 4096} {
		cfg := Config{
			PageSize: pageSize, BufferBytes: buffer,
			Mode: ModeNative, Order: OrderAppend, CacheRecords: cache,
		}
		label := "on"
		if cache < 0 {
			label = "off"
		}
		row, err := ablationCell(spec, cfg, "record-cache", label)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	printAblation(out, "Parsed-record cache (wall time only; sim ms must match)", rows)
	return rows, nil
}

func ablationCell(spec corpus.Spec, cfg Config, param, value string) (AblationRow, error) {
	env, err := BuildEnv(spec, cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("%s=%s: %w", param, value, err)
	}
	trav, err := env.Traverse()
	if err != nil {
		return AblationRow{}, err
	}
	q2, err := env.RunQuery("query2", Query2, true)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Param:     param,
		Value:     value,
		Insert:    env.Insertion(),
		Traverse:  trav,
		Query2:    q2,
		SpaceByte: env.Space().SpaceBytes,
	}, nil
}

func printAblation(w io.Writer, title string, rows []AblationRow) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "Ablation — %s\n", title)
	fmt.Fprintf(w, "%-18s %14s %14s %14s %14s %12s\n",
		"value", "insert sim-ms", "insert wall", "traverse ms", "query2 ms", "space")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %14.1f %14.1f %14.1f %14.1f %12d\n",
			r.Value, r.Insert.SimMS, r.Insert.WallMS, r.Traverse.SimMS, r.Query2.SimMS, r.SpaceByte)
	}
	fmt.Fprintln(w)
}
