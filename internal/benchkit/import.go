package benchkit

// Import benchmarks (the perf trajectory's first entry): the streaming
// bulk path against the paper's per-node incremental procedure, on the
// same generated documents.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"natix/internal/corpus"
	"natix/internal/xmlkit"
)

// ImportMetrics extends Metrics with import-rate figures.
type ImportMetrics struct {
	Metrics
	Docs             int
	XMLBytes         int64
	DocsPerSec       float64
	MBPerSec         float64
	RecordsCreated   int64
	RecordsRewritten int64 // ≈0 on the bulk path, O(n) incrementally
	PagesWritten     int64 // physical page writes, flush included
}

// RunImport imports n freshly generated plays — through the streaming
// bulk path when bulk is true, through per-node incremental insertion
// otherwise — and reports throughput. The imported documents are
// deleted afterwards, so the env's standing corpus is untouched and the
// measurement is repeatable.
func (e *Env) RunImport(op string, n int, bulk bool) (ImportMetrics, error) {
	// Generate and serialize outside the measured region.
	type doc struct {
		name string
		xml  string
		tree *xmlkit.Node
	}
	docs := make([]doc, n)
	var bytes int64
	for i := range docs {
		play := corpus.GeneratePlay(e.spec, e.spec.Plays+i)
		xml := xmlkit.SerializeString(play)
		docs[i] = doc{name: fmt.Sprintf("import-%03d", i), xml: xml}
		bytes += int64(len(xml))
		if !bulk {
			parsed, err := xmlkit.ParseString(xml, xmlkit.ParseOptions{})
			if err != nil {
				return ImportMetrics{}, err
			}
			docs[i].tree = parsed.Root
		}
	}

	e.resetMeasurement()
	statsBefore := e.store.Trees().Stats()
	start := time.Now()
	for _, d := range docs {
		var err error
		if bulk {
			_, err = e.store.ImportXML(d.name, strings.NewReader(d.xml))
		} else {
			_, err = e.store.ImportTreeIncremental(d.name, d.tree)
		}
		if err != nil {
			return ImportMetrics{}, fmt.Errorf("importing %s: %w", d.name, err)
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		return ImportMetrics{}, err
	}
	m := e.capture(op, start, bytes)
	statsAfter := e.store.Trees().Stats()

	out := ImportMetrics{
		Metrics:          m,
		Docs:             n,
		XMLBytes:         bytes,
		RecordsCreated:   statsAfter.RecordsCreated - statsBefore.RecordsCreated,
		RecordsRewritten: statsAfter.RecordsRewritten - statsBefore.RecordsRewritten,
		PagesWritten:     m.PhysWrites,
	}
	if secs := m.WallMS / 1000; secs > 0 {
		out.DocsPerSec = float64(n) / secs
		out.MBPerSec = float64(bytes) / (1 << 20) / secs
	}

	// Leave the env as found.
	for _, d := range docs {
		if err := e.store.Delete(d.name); err != nil {
			return ImportMetrics{}, fmt.Errorf("cleaning up %s: %w", d.name, err)
		}
	}
	return out, nil
}

// ImportCell is one row of the import experiment, JSON-ready.
type ImportCell struct {
	Path             string  `json:"path"` // "bulk" or "incremental"
	Docs             int     `json:"docs"`
	XMLBytes         int64   `json:"xml_bytes"`
	WallMS           float64 `json:"wall_ms"`
	SimMS            float64 `json:"sim_ms"`
	DocsPerSec       float64 `json:"docs_per_sec"`
	MBPerSec         float64 `json:"mb_per_sec"`
	PagesWritten     int64   `json:"pages_written"`
	RecordsCreated   int64   `json:"records_created"`
	RecordsRewritten int64   `json:"records_rewritten"`

	// Engine is the engine-metrics delta of the measured region (every
	// counter that moved, by name).
	Engine map[string]int64 `json:"engine,omitempty"`
}

// RunImportExperiment measures both import paths over freshly generated
// plays in a native-mode store.
func RunImportExperiment(spec corpus.Spec, buffer, pageSize int) ([]ImportCell, error) {
	// A small standing corpus keeps env construction fast; the imports
	// under measurement are generated on top of it.
	base := spec
	base.Plays = 1
	env, err := BuildEnv(base, Config{
		PageSize: pageSize, BufferBytes: buffer,
		Mode: ModeNative, Order: OrderAppend,
	})
	if err != nil {
		return nil, err
	}
	n := spec.Plays
	if n < 1 {
		n = 1
	}
	var cells []ImportCell
	for _, bulk := range []bool{true, false} {
		path := "incremental"
		if bulk {
			path = "bulk"
		}
		m, err := env.RunImport("import-"+path, n, bulk)
		if err != nil {
			return nil, err
		}
		cells = append(cells, ImportCell{
			Path:             path,
			Docs:             m.Docs,
			XMLBytes:         m.XMLBytes,
			WallMS:           m.WallMS,
			SimMS:            m.SimMS,
			DocsPerSec:       m.DocsPerSec,
			MBPerSec:         m.MBPerSec,
			PagesWritten:     m.PagesWritten,
			RecordsCreated:   m.RecordsCreated,
			RecordsRewritten: m.RecordsRewritten,
			Engine:           m.Engine,
		})
	}
	return cells, nil
}

// PrintImportCells renders the experiment as a table.
func PrintImportCells(w io.Writer, cells []ImportCell) {
	fmt.Fprintf(w, "Import throughput (bulk streaming load vs per-node incremental)\n")
	fmt.Fprintf(w, "%-12s %6s %10s %10s %10s %10s %8s %10s %10s\n",
		"path", "docs", "MB", "wall-ms", "docs/s", "MB/s", "pages", "records", "rewrites")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %6d %10.2f %10.1f %10.1f %10.2f %8d %10d %10d\n",
			c.Path, c.Docs, float64(c.XMLBytes)/(1<<20), c.WallMS,
			c.DocsPerSec, c.MBPerSec, c.PagesWritten, c.RecordsCreated, c.RecordsRewritten)
	}
	if len(cells) == 2 && cells[1].WallMS > 0 && cells[0].WallMS > 0 {
		fmt.Fprintf(w, "speedup: %.1fx\n", cells[1].WallMS/cells[0].WallMS)
	}
}

// importReport is the BENCH_import.json schema.
type importReport struct {
	Benchmark string       `json:"benchmark"`
	Unit      string       `json:"unit"`
	Cells     []ImportCell `json:"cells"`
	SpeedupX  float64      `json:"speedup_x,omitempty"`
}

// WriteImportJSON writes the experiment cells as the perf-trajectory
// baseline file.
func WriteImportJSON(w io.Writer, cells []ImportCell) error {
	rep := importReport{Benchmark: "import", Unit: "wall_ms", Cells: cells}
	if len(cells) == 2 && cells[0].WallMS > 0 {
		rep.SpeedupX = cells[1].WallMS / cells[0].WallMS
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
