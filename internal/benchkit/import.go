package benchkit

// Import benchmarks (the perf trajectory's first entry): the streaming
// bulk path against the paper's per-node incremental procedure, on the
// same generated documents.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"natix/internal/corpus"
	"natix/internal/docstore"
	"natix/internal/xmlkit"
)

// ImportMetrics extends Metrics with import-rate figures.
type ImportMetrics struct {
	Metrics
	Docs             int
	XMLBytes         int64
	DocsPerSec       float64
	MBPerSec         float64
	RecordsCreated   int64
	RecordsRewritten int64 // ≈0 on the bulk path, O(n) incrementally
	PagesWritten     int64 // physical page writes, flush included
}

// genDocs generates and serializes n fresh plays outside any measured
// region.
type genDoc struct {
	name string
	xml  string
	tree *xmlkit.Node
}

func (e *Env) genDocs(n int, parse bool) ([]genDoc, int64, error) {
	docs := make([]genDoc, n)
	var bytes int64
	for i := range docs {
		play := corpus.GeneratePlay(e.spec, e.spec.Plays+i)
		xml := xmlkit.SerializeString(play)
		docs[i] = genDoc{name: fmt.Sprintf("import-%03d", i), xml: xml}
		bytes += int64(len(xml))
		if parse {
			parsed, err := xmlkit.ParseString(xml, xmlkit.ParseOptions{})
			if err != nil {
				return nil, 0, err
			}
			docs[i].tree = parsed.Root
		}
	}
	return docs, bytes, nil
}


// RunImport imports n freshly generated plays — through the streaming
// bulk path when bulk is true, through per-node incremental insertion
// otherwise — and reports throughput. The imported documents are
// deleted afterwards, so the env's standing corpus is untouched and the
// measurement is repeatable.
func (e *Env) RunImport(op string, n int, bulk bool) (ImportMetrics, error) {
	return e.runImport(op, n, bulk, 0)
}

// RunImportBatch imports n freshly generated plays through
// ImportXMLBatch, sharded over the given number of concurrent import
// pipelines, and reports throughput. As with RunImport, the documents
// are deleted afterwards.
func (e *Env) RunImportBatch(op string, n, workers int) (ImportMetrics, error) {
	return e.runImport(op, n, true, workers)
}

// runImport is the shared measurement loop: workers == 0 imports the
// documents one ImportXML call at a time (the serial per-document
// path); workers > 0 hands the whole corpus to ImportXMLBatch.
func (e *Env) runImport(op string, n int, bulk bool, workers int) (ImportMetrics, error) {
	// Generate and serialize outside the measured region.
	docs, bytes, err := e.genDocs(n, !bulk)
	if err != nil {
		return ImportMetrics{}, err
	}

	e.resetMeasurement()
	statsBefore := e.store.Trees().Stats()
	start := time.Now()
	if workers > 0 {
		batch := make([]docstore.ImportDoc, n)
		for i, d := range docs {
			batch[i] = docstore.ImportDoc{Name: d.name, R: strings.NewReader(d.xml)}
		}
		if _, err := e.store.ImportXMLBatch(context.Background(), batch, workers); err != nil {
			return ImportMetrics{}, fmt.Errorf("batch import: %w", err)
		}
	} else {
		for _, d := range docs {
			var err error
			if bulk {
				_, err = e.store.ImportXML(d.name, strings.NewReader(d.xml))
			} else {
				_, err = e.store.ImportTreeIncremental(d.name, d.tree)
			}
			if err != nil {
				return ImportMetrics{}, fmt.Errorf("importing %s: %w", d.name, err)
			}
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		return ImportMetrics{}, err
	}
	m := e.capture(op, start, bytes)
	statsAfter := e.store.Trees().Stats()

	out := ImportMetrics{
		Metrics:          m,
		Docs:             n,
		XMLBytes:         bytes,
		RecordsCreated:   statsAfter.RecordsCreated - statsBefore.RecordsCreated,
		RecordsRewritten: statsAfter.RecordsRewritten - statsBefore.RecordsRewritten,
		PagesWritten:     m.PhysWrites,
	}
	if secs := m.WallMS / 1000; secs > 0 {
		out.DocsPerSec = float64(n) / secs
		out.MBPerSec = float64(bytes) / (1 << 20) / secs
	}

	// Leave the env as found.
	for _, d := range docs {
		if err := e.store.Delete(d.name); err != nil {
			return ImportMetrics{}, fmt.Errorf("cleaning up %s: %w", d.name, err)
		}
	}
	return out, nil
}

// ImportCell is one row of the import experiment, JSON-ready.
type ImportCell struct {
	Path             string  `json:"path"`              // "bulk" or "incremental"
	Workers          int     `json:"workers,omitempty"` // 0: serial per-document; >0: ImportXMLBatch shards
	Docs             int     `json:"docs"`
	XMLBytes         int64   `json:"xml_bytes"`
	WallMS           float64 `json:"wall_ms"`
	SimMS            float64 `json:"sim_ms"`
	DocsPerSec       float64 `json:"docs_per_sec"`
	MBPerSec         float64 `json:"mb_per_sec"`
	PagesWritten     int64   `json:"pages_written"`
	RecordsCreated   int64   `json:"records_created"`
	RecordsRewritten int64   `json:"records_rewritten"`

	// Pipeline stage times (bulk path only): CPU in the tokenizer,
	// packer and page-flush stages, summed across shards — so on a
	// multi-core run their sum exceeds wall time.
	ParseMS float64 `json:"parse_ms,omitempty"`
	PackMS  float64 `json:"pack_ms,omitempty"`
	WriteMS float64 `json:"write_ms,omitempty"`

	// Engine is the engine-metrics delta of the measured region (every
	// counter that moved, by name).
	Engine map[string]int64 `json:"engine,omitempty"`
}

// cellOf shapes one measurement into a report row.
func cellOf(path string, workers int, m ImportMetrics) ImportCell {
	return ImportCell{
		Path:             path,
		Workers:          workers,
		Docs:             m.Docs,
		XMLBytes:         m.XMLBytes,
		WallMS:           m.WallMS,
		SimMS:            m.SimMS,
		DocsPerSec:       m.DocsPerSec,
		MBPerSec:         m.MBPerSec,
		PagesWritten:     m.PagesWritten,
		RecordsCreated:   m.RecordsCreated,
		RecordsRewritten: m.RecordsRewritten,
		ParseMS:          float64(m.Engine["docstore.import_parse_ns"]) / 1e6,
		PackMS:           float64(m.Engine["docstore.import_pack_ns"]) / 1e6,
		WriteMS:          float64(m.Engine["docstore.import_write_ns"]) / 1e6,
		Engine:           m.Engine,
	}
}

// RunImportExperiment measures both import paths over freshly generated
// plays in a native-mode store: the bulk pipeline (one serial
// per-document cell, plus one ImportXMLBatch cell per entry of workers)
// and the per-node incremental baseline.
func RunImportExperiment(spec corpus.Spec, buffer, pageSize int, workers []int) ([]ImportCell, error) {
	// A small standing corpus keeps env construction fast; the imports
	// under measurement are generated on top of it.
	base := spec
	base.Plays = 1
	env, err := BuildEnv(base, Config{
		PageSize: pageSize, BufferBytes: buffer,
		Mode: ModeNative, Order: OrderAppend,
	})
	if err != nil {
		return nil, err
	}
	n := spec.Plays
	if n < 1 {
		n = 1
	}
	var cells []ImportCell
	m, err := env.RunImport("import-bulk", n, true)
	if err != nil {
		return nil, err
	}
	cells = append(cells, cellOf("bulk", 0, m))
	for _, w := range workers {
		m, err := env.RunImportBatch(fmt.Sprintf("import-bulk-w%d", w), n, w)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cellOf("bulk", w, m))
	}
	m, err = env.RunImport("import-incremental", n, false)
	if err != nil {
		return nil, err
	}
	cells = append(cells, cellOf("incremental", 0, m))
	return cells, nil
}

// PrintImportCells renders the experiment as a table.
func PrintImportCells(w io.Writer, cells []ImportCell) {
	fmt.Fprintf(w, "Import throughput (bulk streaming load vs per-node incremental)\n")
	fmt.Fprintf(w, "%-12s %7s %6s %10s %10s %10s %10s %8s %10s %10s\n",
		"path", "workers", "docs", "MB", "wall-ms", "docs/s", "MB/s", "pages", "records", "rewrites")
	for _, c := range cells {
		workers := "-"
		if c.Workers > 0 {
			workers = fmt.Sprint(c.Workers)
		}
		fmt.Fprintf(w, "%-12s %7s %6d %10.2f %10.1f %10.1f %10.2f %8d %10d %10d\n",
			c.Path, workers, c.Docs, float64(c.XMLBytes)/(1<<20), c.WallMS,
			c.DocsPerSec, c.MBPerSec, c.PagesWritten, c.RecordsCreated, c.RecordsRewritten)
	}
	bulk, incr := bulkSerialCell(cells), incrementalCell(cells)
	if bulk != nil && incr != nil && bulk.WallMS > 0 {
		fmt.Fprintf(w, "speedup: %.1fx\n", incr.WallMS/bulk.WallMS)
	}
}

func bulkSerialCell(cells []ImportCell) *ImportCell {
	for i := range cells {
		if cells[i].Path == "bulk" && cells[i].Workers == 0 {
			return &cells[i]
		}
	}
	return nil
}

func incrementalCell(cells []ImportCell) *ImportCell {
	for i := range cells {
		if cells[i].Path == "incremental" {
			return &cells[i]
		}
	}
	return nil
}

// ScalePoint is one point of the worker-scaling curve.
type ScalePoint struct {
	Workers  int     `json:"workers"`
	WallMS   float64 `json:"wall_ms"`
	SpeedupX float64 `json:"speedup_x"` // vs. the scaling baseline
}

// importReport is the BENCH_import.json schema.
type importReport struct {
	Benchmark string       `json:"benchmark"`
	Unit      string       `json:"unit"`
	Cells     []ImportCell `json:"cells"`
	// SpeedupX is incremental / serial bulk — the original experiment's
	// headline.
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// BaselineWallMS, when supplied, is a reference serial bulk time to
	// scale against (a prior revision's measurement on the same host);
	// otherwise this run's serial bulk cell is the scaling baseline.
	BaselineWallMS float64      `json:"baseline_wall_ms,omitempty"`
	Scaling        []ScalePoint `json:"scaling,omitempty"`
}

// WriteImportJSON writes the experiment cells as the perf-trajectory
// baseline file. baselineMS, when positive, is an externally measured
// serial bulk wall time (an earlier revision on the same host) that the
// scaling curve is computed against; 0 scales against this run's own
// serial bulk cell.
func WriteImportJSON(w io.Writer, cells []ImportCell, baselineMS float64) error {
	rep := importReport{Benchmark: "import", Unit: "wall_ms", Cells: cells, BaselineWallMS: baselineMS}
	bulk, incr := bulkSerialCell(cells), incrementalCell(cells)
	if bulk != nil && incr != nil && bulk.WallMS > 0 {
		rep.SpeedupX = incr.WallMS / bulk.WallMS
	}
	ref := baselineMS
	if ref <= 0 && bulk != nil {
		ref = bulk.WallMS
	}
	for _, c := range cells {
		if c.Path != "bulk" || c.Workers == 0 || c.WallMS <= 0 {
			continue
		}
		rep.Scaling = append(rep.Scaling, ScalePoint{
			Workers: c.Workers, WallMS: c.WallMS, SpeedupX: ref / c.WallMS,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
