// Package benchkit is the experiment harness for the paper's evaluation
// (§4): it builds stores in the configurations of §4.2, replays the
// workloads of §4.3, and produces the series behind Figures 9–14.
//
// Metrics: the paper reports wall-clock milliseconds on 1999 hardware
// with a dedicated disk and no OS buffering. Here every buffer-manager
// page access is replayed through a simulated IBM DCAS-34330W
// (pagedev.SimDisk), and experiments report simulated milliseconds as
// the primary, shape-comparable metric, alongside physical I/O counts
// and Go wall time.
package benchkit

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natix/internal/buffer"
	"natix/internal/compress"
	"natix/internal/core"
	"natix/internal/corpus"
	"natix/internal/dict"
	"natix/internal/docstore"
	"natix/internal/noderep"
	"natix/internal/pagedev"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

// Mode selects the storage configuration of §4.2.
type Mode int

// Storage configurations.
const (
	// ModeNative is the 1:n "native XML" configuration: split matrix all
	// other, the algorithm controls clustering.
	ModeNative Mode = iota
	// ModeOneToOne is the 1:1 configuration: split matrix all zero, one
	// record per node (emulating POET/Excelon/LORE).
	ModeOneToOne
	// ModeFlat stores documents as byte streams in the BLOB manager (the
	// flat-files category of §1; not one of the paper's measured series,
	// included as an extension baseline).
	ModeFlat
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "1:n"
	case ModeOneToOne:
		return "1:1"
	case ModeFlat:
		return "flat"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Order selects the insertion order of §4.3.
type Order int

// Insertion orders.
const (
	// OrderAppend inserts in pre-order: "a 'bulkload' of or consecutive
	// appends to a textual representation".
	OrderAppend Order = iota
	// OrderIncremental inserts in BFS order over the binary-tree
	// representation: "an incremental update pattern where inserts occur
	// distributed over the whole document".
	OrderIncremental
)

// String returns the paper's name for the order.
func (o Order) String() string {
	if o == OrderIncremental {
		return "incr"
	}
	return "append"
}

// Config describes one experimental cell.
type Config struct {
	PageSize    int
	BufferBytes int // paper: 2 MB
	Mode        Mode
	Order       Order
	Disk        pagedev.DiskModel // zero value: DCAS34330W

	// CompressedCacheBytes, when positive, attaches a tier-2 compressed
	// victim cache of this many bytes to the buffer pool (the readpath
	// experiment's on/off axis).
	CompressedCacheBytes int64

	// SplitTarget and SplitTolerance default to the paper's settings
	// (1/2 and a tenth of a page) when zero.
	SplitTarget    float64
	SplitTolerance int

	// CacheRecords sizes the parsed-record cache (CPU-side only; I/O
	// accounting is unaffected). 0 means a sensible default; negative
	// disables the cache.
	CacheRecords int

	// PathIndex builds a path index for every loaded document (after
	// the measured insertion), so queries run through the indexed
	// evaluator instead of the navigating scan.
	PathIndex bool
}

func (c Config) withDefaults() Config {
	if c.BufferBytes == 0 {
		c.BufferBytes = 2 << 20
	}
	if c.Disk == (pagedev.DiskModel{}) {
		c.Disk = pagedev.DCAS34330W
	}
	if c.CacheRecords == 0 {
		c.CacheRecords = 4096
	}
	return c
}

// Metrics captures one measured operation.
type Metrics struct {
	Op       string
	Series   string
	PageSize int

	SimMS        float64 // simulated disk time, the paper-comparable metric
	WallMS       float64 // Go wall time (informational)
	LogicalReads int64   // buffer-manager page accesses (hits included)
	PhysReads    int64
	PhysWrites   int64
	SpaceBytes   int64 // segment size on disk (space figure)
	Work         int64 // op-dependent checksum: nodes visited, matches, …

	// Engine is the engine-metrics delta of the measured region: every
	// counter that moved, by name (buffer.*, core.*, docstore.*) —
	// splits, cache hits, evictions and the like, next to the headline
	// I/O numbers above.
	Engine map[string]int64
}

// Series returns the paper's series label for a config.
func (c Config) Series() string {
	if c.Mode == ModeFlat {
		return "flat"
	}
	return fmt.Sprintf("%s %s", c.Mode, c.Order)
}

// Env is a built store holding the corpus in one configuration.
type Env struct {
	cfg   Config
	sim   *pagedev.SimDisk
	pool  *buffer.Pool
	store *docstore.Store
	docs  []string
	spec  corpus.Spec

	reg  *telemetry.Registry
	base telemetry.Snapshot // registry state at the last resetMeasurement

	insertion Metrics
}

// BuildEnv creates a store, loads the corpus in the configured mode and
// order, and records the insertion metrics (Figure 9).
func BuildEnv(spec corpus.Spec, cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	mem, err := pagedev.NewMem(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	sim := pagedev.NewSimDisk(mem, cfg.Disk)
	pool, err := buffer.NewSized(sim, cfg.BufferBytes)
	if err != nil {
		return nil, err
	}
	if cfg.CompressedCacheBytes > 0 {
		pool.EnableCompressedCache(cfg.CompressedCacheBytes, compress.NewFlate(compress.DefaultLevel))
	}
	seg, err := segment.Create(pool)
	if err != nil {
		return nil, err
	}
	rm := records.New(seg)
	d, err := dict.Create(rm)
	if err != nil {
		return nil, err
	}
	var matrix *core.SplitMatrix
	if cfg.Mode == ModeOneToOne {
		matrix = core.AllStandalone()
	} else {
		matrix = core.AllOther()
	}
	cache := cfg.CacheRecords
	if cache < 0 {
		cache = 0 // disabled
	}
	trees := core.New(rm, core.Config{
		SplitTarget:    cfg.SplitTarget,
		SplitTolerance: cfg.SplitTolerance,
		Matrix:         matrix,
		CacheRecords:   cache,
	})
	store, err := docstore.Create(trees, d)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	pool.AttachTelemetry(reg)
	trees.AttachTelemetry(reg)
	store.AttachTelemetry(reg, nil)
	env := &Env{cfg: cfg, sim: sim, pool: pool, store: store, spec: spec, reg: reg}

	// Measured insertion: clear buffer, load everything, flush.
	env.resetMeasurement()
	start := time.Now()
	var inserted int64
	for i := 0; i < spec.Plays; i++ {
		play := corpus.GeneratePlay(spec, i)
		name := fmt.Sprintf("play-%02d", i)
		n, err := env.loadDocument(name, play)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", name, err)
		}
		inserted += n
		env.docs = append(env.docs, name)
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	env.insertion = env.capture("insert", start, inserted)

	// Index after the measured insertion so Figure 9 stays comparable;
	// loadDocument builds trees through the storage manager directly, so
	// the import-time auto-build never fires and an explicit reindex is
	// needed.
	if cfg.PathIndex && cfg.Mode != ModeFlat {
		px, err := pathindex.Open(rm)
		if err != nil {
			return nil, err
		}
		store.EnablePathIndex(px)
		for _, name := range env.docs {
			if err := store.ReindexDocument(name); err != nil {
				return nil, fmt.Errorf("indexing %s: %w", name, err)
			}
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// loadDocument stores one play per the env's mode and order, returning
// the number of logical nodes inserted.
func (e *Env) loadDocument(name string, play *xmlkit.Node) (int64, error) {
	if e.cfg.Mode == ModeFlat {
		text := xmlkit.SerializeString(play)
		_, err := e.store.ImportFlat(name, strings.NewReader(text))
		return int64(play.CountNodes()), err
	}
	label, err := e.store.Dict().Intern(play.Name)
	if err != nil {
		return 0, err
	}
	tree, err := e.store.Trees().CreateTree(label)
	if err != nil {
		return 0, err
	}
	var ops []corpus.InsertOp
	if e.cfg.Order == OrderIncremental {
		ops = corpus.BinaryBFSOps(play)
	} else {
		ops = corpus.PreOrderOps(play)
	}
	for i, op := range ops {
		var n *noderep.Node
		if op.IsText {
			n = noderep.NewTextLiteral(op.Text)
		} else {
			l, err := e.store.Dict().Intern(op.Name)
			if err != nil {
				return 0, err
			}
			n = noderep.NewAggregate(l)
		}
		if err := tree.InsertChild(core.Path(op.ParentPath), op.Index, n); err != nil {
			return 0, fmt.Errorf("op %d (%+v): %w", i, op, err)
		}
	}
	if _, err := e.store.RegisterTree(name, tree); err != nil {
		return 0, err
	}
	return int64(len(ops) + 1), nil
}

// resetMeasurement clears the buffer and all counters: "The buffer was
// cleared at the start of each operation" (§4.2). The decoded caches
// (parsed records, path indexes) are dropped too, so every measured
// operation pays its full I/O, index loads included.
func (e *Env) resetMeasurement() {
	if err := e.pool.Clear(); err != nil {
		// Clearing only fails when frames are pinned, which would be a
		// harness bug: surface loudly.
		panic(fmt.Sprintf("benchkit: buffer clear: %v", err))
	}
	e.store.Trees().InvalidateCache()
	if px := e.store.PathIndex(); px != nil {
		px.InvalidateCache()
	}
	e.pool.ResetStats()
	e.sim.ResetStats()
	e.base = e.reg.Snapshot()
}

// capture snapshots the metrics of the operation started at start.
func (e *Env) capture(op string, start time.Time, work int64) Metrics {
	sim := e.sim.Stats()
	pool := e.pool.Stats()
	engine := e.reg.Snapshot().DeltaCounters(e.base)
	// Every cell records the pool configuration it ran under, so a
	// BENCH_*.json row is interpretable without the invocation that
	// produced it.
	engine["config.page_size"] = int64(e.cfg.PageSize)
	engine["config.buffer_bytes"] = int64(e.cfg.BufferBytes)
	engine["config.compressed_cache_bytes"] = e.cfg.CompressedCacheBytes
	return Metrics{
		Op:           op,
		Series:       e.cfg.Series(),
		PageSize:     e.cfg.PageSize,
		SimMS:        float64(sim.Elapsed) / float64(time.Millisecond),
		WallMS:       float64(time.Since(start)) / float64(time.Millisecond),
		LogicalReads: pool.LogicalReads,
		PhysReads:    pool.PhysReads,
		PhysWrites:   pool.PhysWrites,
		SpaceBytes:   e.store.Trees().Records().Segment().TotalBytes(),
		Work:         work,
		Engine:       engine,
	}
}

// Insertion returns the metrics recorded while building the env
// (Figure 9).
func (e *Env) Insertion() Metrics { return e.insertion }

// Traverse performs a full pre-order traversal of every document
// (Figure 10), returning the metrics and visiting every logical node.
func (e *Env) Traverse() (Metrics, error) {
	e.resetMeasurement()
	start := time.Now()
	var visited int64
	for _, name := range e.docs {
		if e.cfg.Mode == ModeFlat {
			// Structure access on flat storage requires parsing (§1).
			res, err := e.store.Query(name, "/"+corpus.ElemPlay)
			if err != nil {
				return Metrics{}, err
			}
			for _, r := range res {
				visited += int64(r.XML.CountNodes())
			}
			continue
		}
		tree, err := e.store.Tree(name)
		if err != nil {
			return Metrics{}, err
		}
		c, err := tree.Cursor()
		if err != nil {
			return Metrics{}, err
		}
		err = c.WalkPreOrder(func(c *core.Cursor) bool {
			visited++
			return true
		})
		if err != nil {
			return Metrics{}, err
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		return Metrics{}, err
	}
	return e.capture("traverse", start, visited), nil
}

// Paper queries (§4.3).
const (
	// Query1 accesses all leaf nodes of a certain type in one selected
	// subtree: "all speakers in the third act and second scene of every
	// play".
	Query1 = "/PLAY/ACT[3]/SCENE[2]//SPEAKER"
	// Query2 recreates the textual representation of small contiguous
	// fragments: "the complete first speech in every scene".
	Query2 = "//SCENE/SPEECH[1]"
	// Query3 follows a single path per document: "the opening speech of
	// each play".
	Query3 = "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]"
)

// RunQuery evaluates a path query over every document, consuming each
// match (serializing it when markup is true, as query 2 requires).
func (e *Env) RunQuery(op, query string, markup bool) (Metrics, error) {
	e.resetMeasurement()
	start := time.Now()
	var work int64
	for _, name := range e.docs {
		res, err := e.store.Query(name, query)
		if err != nil {
			return Metrics{}, err
		}
		for _, r := range res {
			if markup {
				m, err := r.Markup()
				if err != nil {
					return Metrics{}, err
				}
				work += int64(len(m))
			} else {
				txt, err := r.Text()
				if err != nil {
					return Metrics{}, err
				}
				work += int64(len(txt))
			}
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		return Metrics{}, err
	}
	return e.capture(op, start, work), nil
}

// RunQueryFirstMatch evaluates a path query over every document
// through a lazy cursor, consuming at most limit matches per document
// (limit <= 0 consumes all) — the first-match / top-k access pattern
// the cursor API exists for. Early termination shows as fewer logical
// page reads (Metrics.LogicalReads) than RunQuery spends materializing
// the same query, on the scan path (the tree walk stops) and on the
// indexed path (unconsumed postings are never resolved to records).
func (e *Env) RunQueryFirstMatch(op, query string, limit int) (Metrics, error) {
	steps, err := docstore.ParseQuery(query)
	if err != nil {
		return Metrics{}, err
	}
	e.resetMeasurement()
	start := time.Now()
	var work int64
	for _, name := range e.docs {
		it, err := e.store.QueryIter(context.Background(), name, steps, docstore.IterOptions{Limit: limit})
		if err != nil {
			return Metrics{}, err
		}
		for it.Next() {
			txt, err := it.Result().Text()
			if err != nil {
				it.Close()
				return Metrics{}, err
			}
			work += int64(len(txt))
		}
		if err := it.Close(); err != nil {
			return Metrics{}, err
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		return Metrics{}, err
	}
	return e.capture(op, start, work), nil
}

// RunQueryParallel evaluates a path query over every document like
// RunQuery, but fans the documents across workers goroutines — the
// multi-user read workload the concurrent read path exists for. Work
// and I/O counters aggregate across workers; WallMS is where the
// parallel speedup shows (SimMS still charges every device access to
// one simulated disk, so it is unaffected by concurrency). With
// workers == 1 the measurement degenerates to RunQuery's.
func (e *Env) RunQueryParallel(op, query string, markup bool, workers int) (Metrics, error) {
	if workers < 1 {
		workers = 1
	}
	e.resetMeasurement()
	start := time.Now()
	var work atomic.Int64
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(e.docs); i += workers {
				res, err := e.store.Query(e.docs[i], query)
				if err != nil {
					errc <- err
					return
				}
				for _, r := range res {
					if markup {
						m, err := r.Markup()
						if err != nil {
							errc <- err
							return
						}
						work.Add(int64(len(m)))
					} else {
						txt, err := r.Text()
						if err != nil {
							errc <- err
							return
						}
						work.Add(int64(len(txt)))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return Metrics{}, err
	}
	if err := e.pool.FlushAll(); err != nil {
		return Metrics{}, err
	}
	return e.capture(op, start, work.Load()), nil
}

// Space reports the on-disk size of the store (Figure 14).
func (e *Env) Space() Metrics {
	return Metrics{
		Op:         "space",
		Series:     e.cfg.Series(),
		PageSize:   e.cfg.PageSize,
		SpaceBytes: e.store.Trees().Records().Segment().TotalBytes(),
	}
}

// Store exposes the underlying document store (for extensions/tests).
func (e *Env) Store() *docstore.Store { return e.store }

// Docs lists the loaded document names.
func (e *Env) Docs() []string { return e.docs }
