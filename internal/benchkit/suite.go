package benchkit

import (
	"fmt"
	"io"
	"sort"

	"natix/internal/corpus"
)

// PaperPageSizes are the x-axis of every figure: the paper varies page
// size between 2K and 32K (§4.2).
var PaperPageSizes = []int{2048, 4096, 8192, 16384, 32768}

// PaperSeries are the four measured series of §4.4, in the figures'
// legend order.
var PaperSeries = []Config{
	{Mode: ModeOneToOne, Order: OrderIncremental},
	{Mode: ModeNative, Order: OrderIncremental},
	{Mode: ModeOneToOne, Order: OrderAppend},
	{Mode: ModeNative, Order: OrderAppend},
}

// Figure identifies one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	// Metric selects the reported column ("sim_ms" or "space_bytes").
	Metric string
}

// Figures lists every figure of the paper's evaluation section.
var Figures = []Figure{
	{"fig9", "Insertion", "sim_ms"},
	{"fig10", "Full tree traversal", "sim_ms"},
	{"fig11", "Selection on leaf nodes of document subtree (Query 1)", "sim_ms"},
	{"fig12", "Small contiguous fragments (Query 2)", "sim_ms"},
	{"fig13", "Single path for each document (Query 3)", "sim_ms"},
	{"fig14", "Space requirements", "space_bytes"},
}

// SuiteOptions configure a full run.
type SuiteOptions struct {
	Spec        corpus.Spec
	PageSizes   []int // default PaperPageSizes
	BufferBytes int   // default 2 MB
	IncludeFlat bool  // add the flat-stream extension series
	Progress    io.Writer
}

// Suite holds the results of all figures over all cells.
type Suite struct {
	Options SuiteOptions
	Results []Metrics // every measured cell of every figure
}

// RunSuite builds each (series × page size) store once and measures all
// six figures on it.
func RunSuite(opts SuiteOptions) (*Suite, error) {
	if opts.PageSizes == nil {
		opts.PageSizes = PaperPageSizes
	}
	if opts.Spec.Plays == 0 {
		opts.Spec = corpus.DefaultSpec()
	}
	suite := &Suite{Options: opts}
	series := append([]Config(nil), PaperSeries...)
	if opts.IncludeFlat {
		series = append(series, Config{Mode: ModeFlat})
	}
	for _, base := range series {
		for _, ps := range opts.PageSizes {
			cfg := base
			cfg.PageSize = ps
			cfg.BufferBytes = opts.BufferBytes
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "building %-12s page %-6d ... ", cfg.Series(), ps)
			}
			env, err := BuildEnv(opts.Spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%d: %w", cfg.Series(), ps, err)
			}
			ins := env.Insertion()
			ins.Op = "fig9"
			suite.Results = append(suite.Results, ins)

			trav, err := env.Traverse()
			if err != nil {
				return nil, fmt.Errorf("%s/%d traverse: %w", cfg.Series(), ps, err)
			}
			trav.Op = "fig10"
			suite.Results = append(suite.Results, trav)

			for _, q := range []struct {
				op     string
				query  string
				markup bool
			}{
				{"fig11", Query1, false},
				{"fig12", Query2, true},
				{"fig13", Query3, true},
			} {
				m, err := env.RunQuery(q.op, q.query, q.markup)
				if err != nil {
					return nil, fmt.Errorf("%s/%d %s: %w", cfg.Series(), ps, q.op, err)
				}
				suite.Results = append(suite.Results, m)
			}

			sp := env.Space()
			sp.Op = "fig14"
			suite.Results = append(suite.Results, sp)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "done (insert %.0f sim-ms, %.0f wall-ms)\n",
					ins.SimMS, ins.WallMS)
			}
		}
	}
	return suite, nil
}

// Cells returns the metrics of one figure keyed by (series, page size).
func (s *Suite) Cells(figID string) map[string]map[int]Metrics {
	out := map[string]map[int]Metrics{}
	for _, m := range s.Results {
		if m.Op != figID {
			continue
		}
		if out[m.Series] == nil {
			out[m.Series] = map[int]Metrics{}
		}
		out[m.Series][m.PageSize] = m
	}
	return out
}

// seriesOrder returns the series labels present, legend order first.
func (s *Suite) seriesOrder(cells map[string]map[int]Metrics) []string {
	want := []string{"1:1 incr", "1:n incr", "1:1 append", "1:n append", "flat"}
	var out []string
	for _, w := range want {
		if _, ok := cells[w]; ok {
			out = append(out, w)
		}
	}
	var extra []string
	for k := range cells {
		found := false
		for _, o := range out {
			if o == k {
				found = true
			}
		}
		if !found {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// PrintFigure renders one figure as an aligned table. Time figures print
// simulated milliseconds; the space figure prints bytes.
func (s *Suite) PrintFigure(w io.Writer, fig Figure) {
	cells := s.Cells(fig.ID)
	series := s.seriesOrder(cells)
	fmt.Fprintf(w, "%s — %s", fig.ID, fig.Title)
	if fig.Metric == "space_bytes" {
		fmt.Fprintf(w, " (bytes on disk)\n")
	} else {
		fmt.Fprintf(w, " (simulated ms on DCAS-34330W)\n")
	}
	fmt.Fprintf(w, "%-10s", "page")
	for _, ser := range series {
		fmt.Fprintf(w, "%14s", ser)
	}
	fmt.Fprintln(w)
	for _, ps := range s.Options.PageSizes {
		fmt.Fprintf(w, "%-10d", ps)
		for _, ser := range series {
			m, ok := cells[ser][ps]
			if !ok {
				fmt.Fprintf(w, "%14s", "-")
				continue
			}
			if fig.Metric == "space_bytes" {
				fmt.Fprintf(w, "%14d", m.SpaceBytes)
			} else {
				fmt.Fprintf(w, "%14.1f", m.SimMS)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintAll renders every figure.
func (s *Suite) PrintAll(w io.Writer) {
	for _, fig := range Figures {
		s.PrintFigure(w, fig)
	}
}

// WriteCSV emits all cells in long form for downstream plotting.
func (s *Suite) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,page_size,sim_ms,wall_ms,logical_reads,phys_reads,phys_writes,space_bytes,work"); err != nil {
		return err
	}
	for _, m := range s.Results {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%.3f,%d,%d,%d,%d,%d\n",
			m.Op, m.Series, m.PageSize, m.SimMS, m.WallMS, m.LogicalReads,
			m.PhysReads, m.PhysWrites, m.SpaceBytes, m.Work); err != nil {
			return err
		}
	}
	return nil
}
