package benchkit

// The WAL-overhead experiment: the same import + query workload run
// against file-backed stores with the write-ahead log off, on, and on
// with NoSync, measuring what durability costs. Group commit (one log
// sync per operation, records batched into large sequential writes)
// is what keeps the logged import within the acceptance envelope of
// 2× the unlogged one.
//
// Unlike the paper-figure experiments, which drive internal packages
// over simulated disks, this one exercises the public natix API over
// real files: durability claims are only meaningful against a real
// file system.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"natix/internal/buffer"
	"natix/internal/core"
	"natix/internal/corpus"
	"natix/internal/dict"
	"natix/internal/docstore"
	"natix/internal/pagedev"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/telemetry"
	"natix/internal/wal"
	"natix/internal/xmlkit"
)

// WALCell is one row of the WAL experiment, JSON-ready.
type WALCell struct {
	Config         string  `json:"config"` // "off", "wal", "wal-nosync"
	Docs           int     `json:"docs"`
	XMLBytes       int64   `json:"xml_bytes"`
	ImportWallMS   float64 `json:"import_wall_ms"`
	ImportMBPerSec float64 `json:"import_mb_per_sec"`
	QueryWallMS    float64 `json:"query_wall_ms"`
	Matches        int     `json:"matches"`
	PagesWritten   int64   `json:"pages_written"`
	LogRecords     int64   `json:"log_records"`
	LogBytes       int64   `json:"log_bytes"`
	LogSyncs       int64   `json:"log_syncs"`

	// Engine is the engine-metrics delta of the whole run (every
	// counter that moved, by name — wal.* included when logging is on).
	Engine map[string]int64 `json:"engine,omitempty"`
}

// walConfig describes one store configuration under test.
type walConfig struct {
	name        string
	wal, noSync bool
}

// walStore is a file-backed store stack assembled from the internal
// packages, mirroring what natix.Open wires up (benchkit cannot import
// the root package: the root package's benchmarks import benchkit).
type walStore struct {
	dev   pagedev.Device
	walSt wal.Storage
	w     *wal.Writer
	pool  *buffer.Pool
	store *docstore.Store
	reg   *telemetry.Registry
}

func openWALStore(path string, pageSize, bufBytes int, cfg walConfig) (*walStore, error) {
	dev, err := pagedev.OpenFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	s := &walStore{dev: dev}
	fail := func(err error) (*walStore, error) {
		s.release()
		return nil, err
	}
	if cfg.wal {
		st, err := wal.OpenFileStorage(path + "-wal")
		if err != nil {
			return fail(err)
		}
		s.walSt = st
		s.w, err = wal.OpenWriter(st, wal.Options{PageSize: pageSize, NoSync: cfg.noSync})
		if err != nil {
			return fail(err)
		}
	}
	s.pool, err = buffer.NewSized(dev, bufBytes)
	if err != nil {
		return fail(err)
	}
	if s.w != nil {
		s.pool.AttachWAL(s.w)
		if _, err := s.w.Begin("create", uint64(dev.NumPages())); err != nil {
			return fail(err)
		}
	}
	seg, err := segment.Create(s.pool)
	if err != nil {
		return fail(err)
	}
	rm := records.New(seg)
	d, err := dict.Create(rm)
	if err != nil {
		return fail(err)
	}
	trees := core.New(rm, core.Config{Matrix: core.NewSplitMatrix(core.PolicyOther)})
	s.store, err = docstore.Create(trees, d)
	if err != nil {
		return fail(err)
	}
	px, err := pathindex.Open(rm)
	if err != nil {
		return fail(err)
	}
	s.store.EnablePathIndex(px)
	if s.w != nil {
		if err := s.w.Commit(); err != nil {
			return fail(err)
		}
		s.store.AttachWAL(s.w)
	}
	s.reg = telemetry.NewRegistry()
	s.pool.AttachTelemetry(s.reg)
	if s.w != nil {
		s.w.AttachTelemetry(s.reg)
	}
	trees.AttachTelemetry(s.reg)
	s.store.AttachTelemetry(s.reg, nil)
	return s, nil
}

func (s *walStore) close() error {
	err := s.store.Checkpoint()
	s.release()
	return err
}

func (s *walStore) release() {
	if s.walSt != nil {
		s.walSt.Close()
	}
	s.dev.Close()
}

func walConfigs() []walConfig {
	return []walConfig{
		{"off", false, false},
		{"wal", true, false},
		{"wal-nosync", true, true},
	}
}

// RunWALExperiment imports spec.Plays generated plays into a fresh
// file-backed store under dir for each configuration, then sweeps a
// query over every document, and reports wall times plus log traffic.
func RunWALExperiment(spec corpus.Spec, buffer, pageSize int, dir string) ([]WALCell, error) {
	n := spec.Plays
	if n < 1 {
		n = 1
	}
	type doc struct {
		name string
		xml  string
	}
	docs := make([]doc, n)
	var xmlBytes int64
	for i := range docs {
		play := corpus.GeneratePlay(spec, i)
		xml := xmlkit.SerializeString(play)
		docs[i] = doc{name: fmt.Sprintf("play-%03d", i), xml: xml}
		xmlBytes += int64(len(xml))
	}

	var cells []WALCell
	for _, cfg := range walConfigs() {
		path := filepath.Join(dir, "wal-exp-"+cfg.name+".natix")
		os.Remove(path)
		os.Remove(path + "-wal")
		s, err := openWALStore(path, pageSize, buffer, cfg)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", cfg.name, err)
		}
		base := s.reg.Snapshot()

		start := time.Now()
		for _, d := range docs {
			if _, err := s.store.ImportXML(d.name, strings.NewReader(d.xml)); err != nil {
				s.release()
				return nil, fmt.Errorf("%s: import %s: %w", cfg.name, d.name, err)
			}
		}
		importMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		matches := 0
		for _, d := range docs {
			c, err := s.store.QueryCount(d.name, "//SPEAKER")
			if err != nil {
				s.release()
				return nil, fmt.Errorf("%s: query %s: %w", cfg.name, d.name, err)
			}
			matches += c
		}
		queryMS := float64(time.Since(start).Microseconds()) / 1000

		pages := s.pool.Stats().PhysWrites
		engine := s.reg.Snapshot().DeltaCounters(base)
		var ws wal.Stats
		if s.w != nil {
			ws = s.w.Stats()
		}
		if err := s.close(); err != nil {
			return nil, fmt.Errorf("close %s: %w", cfg.name, err)
		}
		cell := WALCell{
			Config:       cfg.name,
			Docs:         n,
			XMLBytes:     xmlBytes,
			ImportWallMS: importMS,
			QueryWallMS:  queryMS,
			Matches:      matches,
			PagesWritten: pages,
			LogRecords:   ws.Appends,
			LogBytes:     ws.Bytes,
			LogSyncs:     ws.Syncs,
			Engine:       engine,
		}
		if importMS > 0 {
			cell.ImportMBPerSec = float64(xmlBytes) / (1 << 20) / (importMS / 1000)
		}
		cells = append(cells, cell)
		os.Remove(path)
		os.Remove(path + "-wal")
	}
	return cells, nil
}

// walOverhead returns wall(config)/wall(off), or 0.
func walOverhead(cells []WALCell, config string) float64 {
	var off, c float64
	for _, cell := range cells {
		switch cell.Config {
		case "off":
			off = cell.ImportWallMS
		case config:
			c = cell.ImportWallMS
		}
	}
	if off <= 0 {
		return 0
	}
	return c / off
}

// PrintWALCells renders the experiment as a table.
func PrintWALCells(w io.Writer, cells []WALCell) {
	fmt.Fprintf(w, "Durability cost (file-backed import + query sweep; WAL off vs on vs NoSync)\n")
	fmt.Fprintf(w, "%-11s %5s %9s %11s %9s %11s %8s %10s %10s %6s\n",
		"config", "docs", "MB", "import-ms", "MB/s", "query-ms", "pages", "log-recs", "log-MB", "syncs")
	for _, c := range cells {
		fmt.Fprintf(w, "%-11s %5d %9.2f %11.1f %9.2f %11.1f %8d %10d %10.2f %6d\n",
			c.Config, c.Docs, float64(c.XMLBytes)/(1<<20), c.ImportWallMS,
			c.ImportMBPerSec, c.QueryWallMS, c.PagesWritten, c.LogRecords,
			float64(c.LogBytes)/(1<<20), c.LogSyncs)
	}
	if x := walOverhead(cells, "wal"); x > 0 {
		fmt.Fprintf(w, "WAL import overhead: %.2fx (NoSync: %.2fx)\n", x, walOverhead(cells, "wal-nosync"))
	}
}

// walReport is the BENCH_wal.json schema.
type walReport struct {
	Benchmark       string    `json:"benchmark"`
	Unit            string    `json:"unit"`
	Cells           []WALCell `json:"cells"`
	WALOverheadX    float64   `json:"wal_overhead_x,omitempty"`
	NoSyncOverheadX float64   `json:"nosync_overhead_x,omitempty"`
}

// WriteWALJSON writes the experiment cells as the durability baseline
// file (BENCH_wal.json).
func WriteWALJSON(w io.Writer, cells []WALCell) error {
	rep := walReport{
		Benchmark:       "wal",
		Unit:            "import_wall_ms",
		Cells:           cells,
		WALOverheadX:    walOverhead(cells, "wal"),
		NoSyncOverheadX: walOverhead(cells, "wal-nosync"),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
