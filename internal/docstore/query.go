package docstore

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"natix/internal/core"
	"natix/internal/xmlkit"
)

// The path-query engine implements the fragment of XPath the paper's
// evaluation needs (§4.3): absolute paths of child steps (/A/B),
// descendant steps (//A), name tests, and 1-based positional predicates
// (A[3]). Query 1 is /PLAY/ACT[3]/SCENE[2]//SPEAKER, query 2 is
// //SCENE/SPEECH[1], query 3 is /PLAY/ACT[1]/SCENE[1]/SPEECH[1].

// Step is one location step.
type Step struct {
	Descendant bool   // true for a // step
	Name       string // element name test; "*" matches any element
	Pos        int    // 1-based positional predicate; 0 selects all
}

// ErrBadQuery reports an unparsable path expression.
var ErrBadQuery = errors.New("docstore: malformed path query")

// ParseQuery parses a path expression into steps.
func ParseQuery(q string) ([]Step, error) {
	if q == "" || q[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must start with /)", ErrBadQuery, q)
	}
	var steps []Step
	i := 0
	for i < len(q) {
		if q[i] != '/' {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrBadQuery, q, i)
		}
		i++
		desc := false
		if i < len(q) && q[i] == '/' {
			desc = true
			i++
		}
		start := i
		for i < len(q) && q[i] != '/' && q[i] != '[' {
			i++
		}
		name := q[start:i]
		if name == "" {
			return nil, fmt.Errorf("%w: %q (empty step)", ErrBadQuery, q)
		}
		step := Step{Descendant: desc, Name: name}
		if i < len(q) && q[i] == '[' {
			end := strings.IndexByte(q[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("%w: %q (unclosed predicate)", ErrBadQuery, q)
			}
			n, err := strconv.Atoi(q[i+1 : i+end])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%w: %q (bad position %q)", ErrBadQuery, q, q[i+1:i+end])
			}
			step.Pos = n
			i += end + 1
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// Result is one query match. Exactly one of Ref (tree mode) or XML
// (flat mode) is meaningful; Store.ResultText and Store.ResultXML work
// on both. Results are consumed after Query returns (and releases the
// document lock), so Text and Markup re-take the document's read lock
// for the duration of each access — consuming matches stays safe while
// other goroutines query or mutate. A mutation of the matched document
// between Query and consumption still invalidates the refs themselves
// (they address parsed records); hold off concurrent edits of a
// document whose matches are still being read.
type Result struct {
	Mode Mode
	Doc  string // catalog name of the queried document
	Ref  core.NodeRef
	XML  *xmlkit.Node

	store *Store
}

// Text returns the concatenated text content of the match.
func (r Result) Text() (string, error) {
	if r.Mode == ModeFlat {
		return r.XML.TextContent(), nil
	}
	var out string
	err := r.store.View(r.Doc, func() error {
		var err error
		out, err = r.store.trees.TextContent(r.Ref)
		return err
	})
	return out, err
}

// Markup returns the XML serialization of the match ("recreates the
// textual representation", query 2).
func (r Result) Markup() (string, error) {
	if r.Mode == ModeFlat {
		return xmlkit.SerializeString(r.XML), nil
	}
	var out string
	err := r.store.View(r.Doc, func() error {
		xn, err := r.store.xmlFromRef(r.Ref)
		if err != nil {
			return err
		}
		out = xmlkit.SerializeString(xn)
		return nil
	})
	return out, err
}

// Query evaluates a path expression against a document. For flat-mode
// documents the whole stream is read and parsed first — exactly the
// access cost the paper ascribes to flat storage ("Accessing the
// documents' structure is only possible through parsing", §1). For
// tree-mode documents the path index answers the query when one is
// stored and every step is a plain name test; otherwise the evaluator
// navigates the stored tree.
func (s *Store) Query(name, query string) ([]Result, error) {
	steps, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode == ModeFlat {
		matches, err := s.evalFlat(info, steps)
		if err != nil {
			return nil, err
		}
		out := make([]Result, len(matches))
		for i, m := range matches {
			out[i] = Result{Mode: ModeFlat, Doc: name, XML: m, store: s}
		}
		return out, nil
	}
	ctx, err := s.evalTree(info, steps)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ctx))
	for i, ref := range ctx {
		out[i] = Result{Mode: ModeTree, Doc: name, Ref: ref, store: s}
	}
	return out, nil
}

// QueryCount returns the number of matches without materializing
// results. On the indexed path the matches are counted directly from
// the posting lists, never touching the matched records.
func (s *Store) QueryCount(name, query string) (int, error) {
	steps, err := ParseQuery(query)
	if err != nil {
		return 0, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode == ModeFlat {
		matches, err := s.evalFlat(info, steps)
		return len(matches), err
	}
	idx, err := s.indexFor(info, steps)
	if err != nil {
		return 0, err
	}
	if idx != nil {
		s.indexedQueries.Add(1)
		posts, err := s.evalIndexed(idx, steps)
		return len(posts), err
	}
	s.scanQueries.Add(1)
	refs, err := s.evalScan(info, steps)
	return len(refs), err
}

// evalFlat reads, parses and evaluates a flat-mode document.
func (s *Store) evalFlat(info DocInfo, steps []Step) ([]*xmlkit.Node, error) {
	body, err := s.blobs.Read(info.Root)
	if err != nil {
		return nil, err
	}
	doc, err := xmlkit.ParseString(string(body), xmlkit.ParseOptions{})
	if err != nil {
		return nil, err
	}
	return evalXML(doc.Root, steps), nil
}

// evalTree evaluates steps over a tree-mode document, through the path
// index when possible.
func (s *Store) evalTree(info DocInfo, steps []Step) ([]core.NodeRef, error) {
	idx, err := s.indexFor(info, steps)
	if err != nil {
		return nil, err
	}
	if idx != nil {
		s.indexedQueries.Add(1)
		posts, err := s.evalIndexed(idx, steps)
		if err != nil {
			return nil, err
		}
		return s.resolvePostings(posts)
	}
	s.scanQueries.Add(1)
	return s.evalScan(info, steps)
}

// evalScan evaluates steps by navigating the stored tree (the fallback
// when no index applies).
func (s *Store) evalScan(info DocInfo, steps []Step) ([]core.NodeRef, error) {
	tree := s.trees.OpenTree(info.Root)
	root, err := tree.Root()
	if err != nil {
		return nil, err
	}
	// The first step must match the document root.
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	first, rest := steps[0], steps[1:]
	var ctx []core.NodeRef
	if first.Descendant {
		if err := s.collectDescendants(root, first.Name, &ctx); err != nil {
			return nil, err
		}
		if ok, err := s.refMatches(root, first.Name); err != nil {
			return nil, err
		} else if ok {
			ctx = append([]core.NodeRef{root}, ctx...)
		}
	} else {
		if ok, err := s.refMatches(root, first.Name); err != nil {
			return nil, err
		} else if ok {
			ctx = []core.NodeRef{root}
		}
	}
	ctx = applyPos(ctx, first.Pos)
	for _, st := range rest {
		var next []core.NodeRef
		for _, ref := range ctx {
			var matches []core.NodeRef
			if st.Descendant {
				if err := s.collectDescendants(ref, st.Name, &matches); err != nil {
					return nil, err
				}
			} else {
				kids, err := s.trees.Children(ref)
				if err != nil {
					return nil, err
				}
				for _, k := range kids {
					if ok, err := s.refMatches(k, st.Name); err != nil {
						return nil, err
					} else if ok {
						matches = append(matches, k)
					}
				}
			}
			next = append(next, applyPos(matches, st.Pos)...)
		}
		ctx = next
		if len(ctx) == 0 {
			break
		}
	}
	return ctx, nil
}

// refMatches tests a name step against a node.
func (s *Store) refMatches(ref core.NodeRef, name string) (bool, error) {
	if ref.IsLiteral() {
		return name == "#text", nil
	}
	if name == "*" {
		n, err := s.dict.Name(ref.Label())
		if err != nil {
			return false, err
		}
		return !strings.HasPrefix(n, AttrPrefix), nil
	}
	id, ok := s.dict.Lookup(name)
	if !ok {
		return false, nil
	}
	return ref.Label() == id, nil
}

// collectDescendants appends all strict descendants of ref matching name
// in document order.
func (s *Store) collectDescendants(ref core.NodeRef, name string, out *[]core.NodeRef) error {
	kids, err := s.trees.Children(ref)
	if err != nil {
		return err
	}
	for _, k := range kids {
		ok, err := s.refMatches(k, name)
		if err != nil {
			return err
		}
		if ok {
			*out = append(*out, k)
		}
		if !k.IsLiteral() {
			if err := s.collectDescendants(k, name, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyPos applies a 1-based positional predicate to a match list
// (pos == 0 selects all).
func applyPos[T any](matches []T, pos int) []T {
	if pos == 0 {
		return matches
	}
	if pos <= len(matches) {
		return matches[pos-1 : pos]
	}
	return nil
}

// evalXML evaluates steps against a parsed XML tree (flat mode).
func evalXML(root *xmlkit.Node, steps []Step) []*xmlkit.Node {
	if len(steps) == 0 {
		return nil
	}
	first, rest := steps[0], steps[1:]
	var ctx []*xmlkit.Node
	if first.Descendant {
		if xmlMatches(root, first.Name) {
			ctx = append(ctx, root)
		}
		collectXMLDescendants(root, first.Name, &ctx)
	} else if xmlMatches(root, first.Name) {
		ctx = []*xmlkit.Node{root}
	}
	ctx = applyPos(ctx, first.Pos)
	for _, st := range rest {
		var next []*xmlkit.Node
		for _, n := range ctx {
			var matches []*xmlkit.Node
			if st.Descendant {
				collectXMLDescendants(n, st.Name, &matches)
			} else {
				for _, c := range n.Children {
					if xmlMatches(c, st.Name) {
						matches = append(matches, c)
					}
				}
			}
			next = append(next, applyPos(matches, st.Pos)...)
		}
		ctx = next
		if len(ctx) == 0 {
			break
		}
	}
	return ctx
}

func xmlMatches(n *xmlkit.Node, name string) bool {
	if n.IsText() {
		return name == "#text"
	}
	return name == "*" || n.Name == name
}

func collectXMLDescendants(n *xmlkit.Node, name string, out *[]*xmlkit.Node) {
	for _, c := range n.Children {
		if xmlMatches(c, name) {
			*out = append(*out, c)
		}
		collectXMLDescendants(c, name, out)
	}
}
