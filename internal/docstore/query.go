package docstore

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"natix/internal/core"
	"natix/internal/pagedev"
	"natix/internal/pathindex"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

// The path-query engine implements the fragment of XPath the paper's
// evaluation needs (§4.3): absolute paths of child steps (/A/B),
// descendant steps (//A), name tests, and 1-based positional predicates
// (A[3]). Query 1 is /PLAY/ACT[3]/SCENE[2]//SPEAKER, query 2 is
// //SCENE/SPEECH[1], query 3 is /PLAY/ACT[1]/SCENE[1]/SPEECH[1].
//
// All three evaluators (navigating scan, posting-list index, flat-mode
// parse) are written as streaming producers: matches are pushed to an
// emit callback in document order, and the producer unwinds as soon as
// the callback asks it to stop. Positional predicates terminate their
// step's enumeration once the selected match is found, so a query like
// //SPEECH[1] stops walking (or stops probing postings) at the first
// speech rather than collecting every one. Materialized Query, counting
// QueryCount and the lazy Iter cursor are all thin consumers of the
// same producers, which is what makes their results identical.

// Step is one location step.
type Step struct {
	Descendant bool   // true for a // step
	Name       string // element name test; "*" matches any element
	Pos        int    // 1-based positional predicate; 0 selects all
}

// ErrBadQuery reports an unparsable path expression.
var ErrBadQuery = errors.New("docstore: malformed path query")

// ParseQuery parses a path expression into steps.
func ParseQuery(q string) ([]Step, error) {
	if q == "" || q[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must start with /)", ErrBadQuery, q)
	}
	var steps []Step
	i := 0
	for i < len(q) {
		if q[i] != '/' {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrBadQuery, q, i)
		}
		i++
		desc := false
		if i < len(q) && q[i] == '/' {
			desc = true
			i++
		}
		start := i
		for i < len(q) && q[i] != '/' && q[i] != '[' {
			i++
		}
		name := q[start:i]
		if name == "" {
			return nil, fmt.Errorf("%w: %q (empty step)", ErrBadQuery, q)
		}
		step := Step{Descendant: desc, Name: name}
		if i < len(q) && q[i] == '[' {
			end := strings.IndexByte(q[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("%w: %q (unclosed predicate)", ErrBadQuery, q)
			}
			n, err := strconv.Atoi(q[i+1 : i+end])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%w: %q (bad position %q)", ErrBadQuery, q, q[i+1:i+end])
			}
			step.Pos = n
			i += end + 1
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// errStopIteration is returned by an emit callback to make the producer
// unwind cleanly: the consumer wants no more matches. It never escapes
// the package.
var errStopIteration = errors.New("docstore: stop iteration")

// errStepDone signals that a positional predicate selected its match
// and the step should stop enumerating the current context node. It is
// converted to a normal return inside the step evaluators.
var errStepDone = errors.New("docstore: step done")

// ctxErr reports a context's cancellation. The nil-Done fast path keeps
// queries under context.Background free of any per-page overhead.
func ctxErr(cx context.Context) error {
	if cx == nil || cx.Done() == nil {
		return nil
	}
	return cx.Err()
}

// Result is one query match. Exactly one of Ref (tree mode) or XML
// (flat mode) is meaningful. Results are usually consumed after the
// query returns (and releases the document lock), so Text and Markup
// re-take the document's read lock for the duration of each access —
// consuming matches stays safe while other goroutines query or mutate.
// Results produced by a live Iter skip the re-lock while the cursor
// still holds the document lock (re-locking there could deadlock behind
// a queued writer). A mutation of the matched document between query
// and consumption still invalidates the refs themselves (they address
// parsed records); hold off concurrent edits of a document whose
// matches are still being read.
type Result struct {
	Mode Mode
	Doc  string // catalog name of the queried document
	Ref  core.NodeRef
	XML  *xmlkit.Node

	store *Store
	iter  *Iter // set on cursor-produced results, for lock elision
}

// view runs fn with the document readable: under the cursor's lock when
// one is still held (pinned for fn's duration, so a concurrent
// exhaustion cannot release it mid-access), otherwise under a freshly
// taken read lock.
func (r Result) view(fn func() error) error {
	if r.iter != nil {
		if done, err := r.iter.withLock(fn); done {
			return err
		}
	}
	return r.store.View(r.Doc, fn)
}

// Text returns the concatenated text content of the match.
func (r Result) Text() (string, error) {
	if r.Mode == ModeFlat {
		return r.XML.TextContent(), nil
	}
	var out string
	err := r.view(func() error {
		var err error
		out, err = r.store.trees.TextContent(r.Ref)
		return err
	})
	return out, err
}

// Markup returns the XML serialization of the match ("recreates the
// textual representation", query 2).
func (r Result) Markup() (string, error) {
	if r.Mode == ModeFlat {
		return xmlkit.SerializeString(r.XML), nil
	}
	var out string
	err := r.view(func() error {
		xn, err := r.store.xmlFromRef(context.Background(), r.Ref)
		if err != nil {
			return err
		}
		out = xmlkit.SerializeString(xn)
		return nil
	})
	return out, err
}

// Query evaluates a path expression against a document, materializing
// every match. It is QueryContext under context.Background.
func (s *Store) Query(name, query string) ([]Result, error) {
	return s.QueryContext(context.Background(), name, query)
}

// QueryContext evaluates a path expression against a document. For
// flat-mode documents the whole stream is read and parsed first —
// exactly the access cost the paper ascribes to flat storage
// ("Accessing the documents' structure is only possible through
// parsing", §1). For tree-mode documents the path index answers the
// query when one is stored and every step is a plain name test;
// otherwise the evaluator navigates the stored tree. The context is
// checked at page-fetch granularity, so a cancelled query stops loading
// records promptly.
func (s *Store) QueryContext(cx context.Context, name, query string) ([]Result, error) {
	steps, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return s.QuerySteps(cx, name, steps)
}

// QuerySteps is QueryContext over a pre-parsed expression (the prepared
// query path: parse once, evaluate many times).
func (s *Store) QuerySteps(cx context.Context, name string, steps []Step) ([]Result, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if err := s.checkQuarantine(name); err != nil {
		return nil, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	start := telemetry.Now()
	if info.Mode == ModeFlat {
		s.flatQueries.Add(1)
		sp := s.startOp("query:flat", name)
		defer sp.End()
		var out []Result
		err := s.streamFlat(cx, info, steps, func(n *xmlkit.Node) error {
			out = append(out, Result{Mode: ModeFlat, Doc: name, XML: n, store: s})
			return nil
		})
		sp.Add("matches", int64(len(out)))
		s.mQueryFlatNS.Observe(int64(telemetry.Since(start)))
		return out, err
	}
	idx, err := s.indexFor(info, steps)
	if err != nil {
		return nil, err
	}
	if idx != nil {
		s.indexedQueries.Add(1)
		sp := s.startOp("query:indexed", name)
		defer sp.End()
		ch := sp.Child("postings")
		posts, err := s.collectIndexed(cx, idx, steps)
		ch.Add("postings", int64(len(posts)))
		ch.End()
		if err != nil {
			return nil, err
		}
		ch = sp.Child("resolve")
		refs, err := s.resolvePostings(posts)
		ch.End()
		if err != nil {
			return nil, err
		}
		out := make([]Result, len(refs))
		for i, ref := range refs {
			out[i] = Result{Mode: ModeTree, Doc: name, Ref: ref, store: s}
		}
		sp.Add("matches", int64(len(out)))
		s.mQueryIndexedNS.Observe(int64(telemetry.Since(start)))
		return out, nil
	}
	s.scanQueries.Add(1)
	sp := s.startOp("query:scan", name)
	defer sp.End()
	var out []Result
	err = s.streamScan(cx, info, steps, func(ref core.NodeRef) error {
		out = append(out, Result{Mode: ModeTree, Doc: name, Ref: ref, store: s})
		return nil
	})
	sp.Add("matches", int64(len(out)))
	s.mQueryScanNS.Observe(int64(telemetry.Since(start)))
	return out, err
}

// QueryCount returns the number of matches without materializing them.
// It is QueryCountContext under context.Background.
func (s *Store) QueryCount(name, query string) (int, error) {
	return s.QueryCountContext(context.Background(), name, query)
}

// QueryCountContext counts matches without materializing results. On
// the indexed path the matches are counted directly from the posting
// lists, never touching the matched records.
func (s *Store) QueryCountContext(cx context.Context, name, query string) (int, error) {
	steps, err := ParseQuery(query)
	if err != nil {
		return 0, err
	}
	return s.QueryCountSteps(cx, name, steps)
}

// QueryCountSteps is QueryCountContext over a pre-parsed expression.
func (s *Store) QueryCountSteps(cx context.Context, name string, steps []Step) (int, error) {
	if len(steps) == 0 {
		return 0, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if err := s.checkQuarantine(name); err != nil {
		return 0, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	start := telemetry.Now()
	count := 0
	if info.Mode == ModeFlat {
		s.flatQueries.Add(1)
		sp := s.startOp("count:flat", name)
		defer sp.End()
		err := s.streamFlat(cx, info, steps, func(*xmlkit.Node) error {
			count++
			return nil
		})
		sp.Add("matches", int64(count))
		s.mQueryFlatNS.Observe(int64(telemetry.Since(start)))
		return count, err
	}
	idx, err := s.indexFor(info, steps)
	if err != nil {
		return 0, err
	}
	if idx != nil {
		s.indexedQueries.Add(1)
		sp := s.startOp("count:indexed", name)
		defer sp.End()
		err := s.streamIndexed(cx, idx, steps, func(pathindex.Posting) error {
			count++
			return nil
		})
		sp.Add("matches", int64(count))
		s.mQueryIndexedNS.Observe(int64(telemetry.Since(start)))
		return count, err
	}
	s.scanQueries.Add(1)
	sp := s.startOp("count:scan", name)
	defer sp.End()
	err = s.streamScan(cx, info, steps, func(core.NodeRef) error {
		count++
		return nil
	})
	sp.Add("matches", int64(count))
	s.mQueryScanNS.Observe(int64(telemetry.Since(start)))
	return count, err
}

// streamFlat reads and parses a flat-mode document, then streams the
// matches of the parsed tree.
func (s *Store) streamFlat(cx context.Context, info DocInfo, steps []Step, emit func(*xmlkit.Node) error) error {
	body, err := s.blobs.Read(info.Root)
	if err != nil {
		return err
	}
	doc, err := xmlkit.ParseString(string(body), xmlkit.ParseOptions{})
	if err != nil {
		return err
	}
	err = xmlStep(cx, doc.Root, true, steps, emit)
	if errors.Is(err, errStopIteration) {
		return errStopIteration
	}
	return err
}

// scanReadAhead is how many pages a sequential record walk (navigating
// scan, export) announces to the buffer pool each time it crosses onto
// a page it has not announced from. Bulk-loaded trees lay records out
// in document order, so the walk's next pages are overwhelmingly the
// next page numbers.
const scanReadAhead = 16

// pageCursor tracks the last page a sequential walk touched, so the
// walk announces read-ahead once per page crossed rather than once per
// record.
type pageCursor struct {
	page   pagedev.PageNo
	primed bool
}

// notePage announces read-ahead for the pages following ref's when the
// walk crosses onto a page it has not announced from. On the warm path
// (page unchanged, or the announced range fully resident) this is a
// field compare and returns without allocating.
//
//natix:noalloc
func (s *Store) notePage(cx context.Context, c *pageCursor, ref core.NodeRef) {
	if ref.IsLiteral() {
		return
	}
	pg := ref.RID().Page
	if c.primed && pg == c.page {
		return
	}
	c.primed = true
	c.page = pg
	s.seg.Pool().PrefetchRange(cx, pg+1, scanReadAhead)
}

// scanScratch recycles the per-frame child buffers of one navigating
// traversal: frame d of the recursion expands children into bufs[d],
// so a steady-state scan allocates nothing once every level's buffer
// has grown to its widest node. Scratches are pooled on the Store.
type scanScratch struct {
	bufs  [][]core.NodeRef
	depth int
	cur   pageCursor
}

// push hands out the current frame's buffer (empty, capacity kept).
func (sc *scanScratch) push() []core.NodeRef {
	if sc.depth == len(sc.bufs) {
		sc.bufs = append(sc.bufs, nil)
	}
	buf := sc.bufs[sc.depth][:0]
	sc.depth++
	return buf
}

// pop returns a frame's buffer, keeping whatever capacity it grew.
func (sc *scanScratch) pop(buf []core.NodeRef) {
	sc.depth--
	sc.bufs[sc.depth] = buf
}

// streamScan evaluates steps by navigating the stored tree (the
// fallback when no index applies), pushing matches to emit in document
// order. emit may return errStopIteration to stop the walk early; the
// context is checked before every record load.
func (s *Store) streamScan(cx context.Context, info DocInfo, steps []Step, emit func(core.NodeRef) error) error {
	tree := s.trees.OpenTree(info.Root)
	root, err := tree.Root()
	if err != nil {
		return err
	}
	sc, _ := s.scanPool.Get().(*scanScratch)
	if sc == nil {
		sc = new(scanScratch)
	}
	sc.cur = pageCursor{}
	err = s.scanStep(cx, sc, root, true, steps, emit)
	// An error unwind skips pops; reset so the scratch pools clean.
	sc.depth = 0
	s.scanPool.Put(sc)
	return err
}

// scanStep evaluates the remaining steps against one context node. The
// first step of a query is evaluated with isRoot set: its context is
// the document root itself, which a name test (and a descendant step)
// may match directly. A positional predicate counts matches as they
// stream by, recurses into the selected one, and then abandons the rest
// of the context's enumeration — the early-termination win over the old
// collect-then-index evaluator.
func (s *Store) scanStep(cx context.Context, sc *scanScratch, ref core.NodeRef, isRoot bool, steps []Step, emit func(core.NodeRef) error) error {
	if len(steps) == 0 {
		return emit(ref)
	}
	st := steps[0]
	count := 0
	sink := func(m core.NodeRef) error {
		count++
		if st.Pos == 0 {
			return s.scanStep(cx, sc, m, false, steps[1:], emit)
		}
		if count < st.Pos {
			return nil
		}
		if err := s.scanStep(cx, sc, m, false, steps[1:], emit); err != nil {
			return err
		}
		return errStepDone
	}
	var err error
	switch {
	case st.Descendant:
		if isRoot {
			// The root itself is eligible: collectDescendants semantics
			// put a matching root before its matching descendants.
			var ok bool
			if ok, err = s.refMatches(ref, st.Name); err == nil && ok {
				err = sink(ref)
			}
		}
		if err == nil {
			err = s.walkDescendants(cx, sc, ref, st.Name, sink)
		}
	case isRoot:
		var ok bool
		if ok, err = s.refMatches(ref, st.Name); err == nil && ok {
			err = sink(ref)
		}
	default:
		if err = ctxErr(cx); err != nil {
			break
		}
		s.notePage(cx, &sc.cur, ref)
		kids := sc.push()
		if kids, err = s.trees.ChildrenAppend(ref, kids); err != nil {
			sc.pop(kids)
			break
		}
		for i := range kids {
			var ok bool
			if ok, err = s.refMatches(kids[i], st.Name); err != nil {
				break
			}
			if ok {
				if err = sink(kids[i]); err != nil {
					break
				}
			}
		}
		sc.pop(kids)
	}
	if errors.Is(err, errStepDone) {
		return nil
	}
	return err
}

// walkDescendants streams all strict descendants of ref matching name,
// in document order, into sink. The context is checked before every
// ChildrenAppend call — i.e. before every record (and therefore page)
// fetch.
func (s *Store) walkDescendants(cx context.Context, sc *scanScratch, ref core.NodeRef, name string, sink func(core.NodeRef) error) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	s.notePage(cx, &sc.cur, ref)
	kids := sc.push()
	kids, err := s.trees.ChildrenAppend(ref, kids)
	if err != nil {
		sc.pop(kids)
		return err
	}
	for i := range kids {
		ok, err := s.refMatches(kids[i], name)
		if err != nil {
			sc.pop(kids)
			return err
		}
		if ok {
			if err := sink(kids[i]); err != nil {
				sc.pop(kids)
				return err
			}
		}
		if !kids[i].IsLiteral() {
			if err := s.walkDescendants(cx, sc, kids[i], name, sink); err != nil {
				sc.pop(kids)
				return err
			}
		}
	}
	sc.pop(kids)
	return nil
}

// refMatches tests a name step against a node.
func (s *Store) refMatches(ref core.NodeRef, name string) (bool, error) {
	if ref.IsLiteral() {
		return name == "#text", nil
	}
	if name == "*" {
		n, err := s.dict.Name(ref.Label())
		if err != nil {
			return false, err
		}
		return !strings.HasPrefix(n, AttrPrefix), nil
	}
	id, ok := s.dict.Lookup(name)
	if !ok {
		return false, nil
	}
	return ref.Label() == id, nil
}

// xmlStep is scanStep over a parsed XML tree (flat mode): same step
// semantics, same order, no storage I/O. The context is still honored
// so a cancelled flat query stops mid-tree.
func xmlStep(cx context.Context, n *xmlkit.Node, isRoot bool, steps []Step, emit func(*xmlkit.Node) error) error {
	if len(steps) == 0 {
		return emit(n)
	}
	st := steps[0]
	count := 0
	sink := func(m *xmlkit.Node) error {
		count++
		if st.Pos == 0 {
			return xmlStep(cx, m, false, steps[1:], emit)
		}
		if count < st.Pos {
			return nil
		}
		if err := xmlStep(cx, m, false, steps[1:], emit); err != nil {
			return err
		}
		return errStepDone
	}
	var err error
	switch {
	case st.Descendant:
		if isRoot && xmlMatches(n, st.Name) {
			err = sink(n)
		}
		if err == nil {
			err = walkXMLDescendants(cx, n, st.Name, sink)
		}
	case isRoot:
		if xmlMatches(n, st.Name) {
			err = sink(n)
		}
	default:
		if err = ctxErr(cx); err != nil {
			break
		}
		for _, c := range n.Children {
			if xmlMatches(c, st.Name) {
				if err = sink(c); err != nil {
					break
				}
			}
		}
	}
	if errors.Is(err, errStepDone) {
		return nil
	}
	return err
}

func walkXMLDescendants(cx context.Context, n *xmlkit.Node, name string, sink func(*xmlkit.Node) error) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	for _, c := range n.Children {
		if xmlMatches(c, name) {
			if err := sink(c); err != nil {
				return err
			}
		}
		if err := walkXMLDescendants(cx, c, name, sink); err != nil {
			return err
		}
	}
	return nil
}

func xmlMatches(n *xmlkit.Node, name string) bool {
	if n.IsText() {
		return name == "#text"
	}
	return name == "*" || n.Name == name
}
