package docstore

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"natix/internal/core"
	"natix/internal/pathindex"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

// IterOptions configure a lazy cursor.
type IterOptions struct {
	// Limit stops iteration after this many matches (0 = unlimited).
	// Reaching the limit stops the producer and releases the document
	// lock, exactly like exhausting the cursor.
	Limit int
}

// Iter is a lazy cursor over query matches. It holds the queried
// document's read lock from QueryIter until Close, exhaustion, or a
// terminal error, so the matches it yields stay valid while it is open:
// writers of the document block until the cursor is released. The
// producer behind it is the same streaming evaluator the eager Query
// uses, suspended between Next calls, so matches (and the record loads
// backing them) are produced only as the consumer pulls them —
// first-match latency is independent of result-set size.
//
// An Iter is owned by one goroutine: Next, Result, Err and Close must
// not be called concurrently. Results obtained from it may be consumed
// concurrently with iteration, but not concurrently with Close.
// Always Close a cursor that is not iterated to exhaustion; an open
// cursor blocks every writer of its document.
type Iter struct {
	store *Store
	doc   string
	cx    context.Context

	lock   *sync.RWMutex
	locked atomic.Bool // read by Result.view, possibly cross-goroutine

	// relmu pins the document-lock release against concurrent match
	// access: finish releases the document lock under relmu.Lock, and
	// Result.view runs lock-elided accessors under relmu.RLock, so the
	// lock can never be dropped mid-access by the iterating goroutine
	// exhausting (or cancelling) the cursor on another one.
	relmu sync.RWMutex

	next func() (Result, error, bool)
	stop func()

	cur     Result
	err     error
	seen    int
	limit   int
	done    bool
	indexed bool

	// Telemetry: the evaluation route, open timestamp and operation span
	// feed the cursor-lifecycle metrics when finish runs. exhausted
	// distinguishes a cursor its consumer drained (or limited) from one
	// abandoned by Close, cancellation, or an error.
	kind      EvaluatorKind
	start     time.Time
	span      *telemetry.Span
	exhausted bool
}

// QueryIter opens a lazy cursor over the matches of steps against the
// named document. The evaluation route (posting-list index, navigating
// scan, or flat-mode parse) is fixed here; production starts on the
// first Next. The context is re-checked on every Next and at page-fetch
// granularity inside the producer, so cancelling it aborts the cursor
// promptly with the context's error.
func (s *Store) QueryIter(cx context.Context, name string, steps []Step, opts IterOptions) (*Iter, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if err := s.checkQuarantine(name); err != nil {
		return nil, err
	}
	if err := ctxErr(cx); err != nil {
		return nil, err
	}
	l := s.lockFor(name)
	l.RLock()
	info, ok := s.lookup(name)
	if !ok {
		l.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	it := &Iter{store: s, doc: name, cx: cx, lock: l, limit: opts.Limit, start: telemetry.Now()}

	var seq iter.Seq2[Result, error]
	if info.Mode == ModeFlat {
		s.flatQueries.Add(1)
		it.kind = EvalFlat
		seq = s.flatSeq(cx, it, info, steps)
	} else {
		idx, err := s.indexFor(info, steps)
		if err != nil {
			l.RUnlock()
			return nil, err
		}
		if idx != nil {
			s.indexedQueries.Add(1)
			it.indexed = true
			it.kind = EvalIndexed
			seq = s.indexedSeq(cx, it, idx, steps)
		} else {
			s.scanQueries.Add(1)
			it.kind = EvalScan
			seq = s.scanSeq(cx, it, info, steps)
		}
	}
	it.next, it.stop = iter.Pull2(seq)
	it.locked.Store(true)
	it.span = s.startOp("cursor:"+string(it.kind), name)
	s.mCursorsOpened.Inc()
	return it, nil
}

// Next advances to the next match, returning false when the cursor is
// exhausted, the limit is reached, the context is cancelled, or an
// error occurs (check Err). Once Next returns false the document lock
// has been released; Close is then a no-op.
func (it *Iter) Next() bool {
	if it.done {
		return false
	}
	if err := ctxErr(it.cx); err != nil {
		it.finish(err)
		return false
	}
	if it.limit > 0 && it.seen >= it.limit {
		it.exhausted = true // the consumer got everything it asked for
		it.finish(nil)
		return false
	}
	r, err, ok := it.next()
	if !ok {
		it.exhausted = true
		it.finish(nil)
		return false
	}
	if err != nil {
		it.finish(err)
		return false
	}
	it.cur = r
	it.seen++
	return true
}

// Result returns the current match. Valid after a true Next.
func (it *Iter) Result() Result { return it.cur }

// Err returns the error that terminated iteration, if any. A cursor
// stopped by Close, a limit, or exhaustion has a nil Err.
func (it *Iter) Err() error { return it.err }

// Indexed reports whether the cursor runs on the posting-list
// evaluator (as opposed to the navigating scan or a flat-mode parse).
func (it *Iter) Indexed() bool { return it.indexed }

// Close stops the producer and releases the document lock. It is
// idempotent, safe after exhaustion, and returns Err.
func (it *Iter) Close() error {
	it.finish(nil)
	return it.err
}

// Abort terminates iteration with err — the API layer uses it when the
// database is closed under an open cursor.
func (it *Iter) Abort(err error) { it.finish(err) }

// finish tears the cursor down exactly once: remember a terminal
// error, stop the suspended producer, release the document lock. The
// release waits out in-flight lock-elided match accesses (relmu).
// Cursor-lifecycle accounting happens here — a cursor counts as
// exhausted only when its consumer drained it (or hit its limit);
// everything else (Close, cancellation, errors) is an abandonment.
func (it *Iter) finish(err error) {
	if it.done {
		return
	}
	it.done = true
	if err != nil {
		it.err = err
	}
	it.stop()
	it.relmu.Lock()
	if it.locked.CompareAndSwap(true, false) {
		it.lock.RUnlock()
	}
	it.relmu.Unlock()
	s := it.store
	if it.exhausted {
		s.mCursorsExhausted.Inc()
	} else {
		s.mCursorsAbandoned.Inc()
	}
	s.mCursorRows.Add(int64(it.seen))
	s.queryHist(it.kind).Observe(int64(telemetry.Since(it.start)))
	it.span.Add("rows", int64(it.seen))
	it.span.End()
}

// holdsLock reports whether the cursor still holds the document read
// lock (Result.view elides re-locking while it does: a second RLock on
// the goroutine that already holds one can deadlock behind a queued
// writer).
func (it *Iter) holdsLock() bool { return it.locked.Load() }

// withLock runs fn under the cursor's document lock if it is still
// held, returning false otherwise. relmu keeps the lock pinned for
// fn's duration.
func (it *Iter) withLock(fn func() error) (bool, error) {
	it.relmu.RLock()
	defer it.relmu.RUnlock()
	if !it.locked.Load() {
		return false, nil
	}
	return true, fn()
}

// scanSeq adapts the navigating evaluator to a pull sequence.
func (s *Store) scanSeq(cx context.Context, it *Iter, info DocInfo, steps []Step) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		err := s.streamScan(cx, info, steps, func(ref core.NodeRef) error {
			if !yield(Result{Mode: ModeTree, Doc: info.Name, Ref: ref, store: s, iter: it}, nil) {
				return errStopIteration
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopIteration) {
			yield(Result{}, err)
		}
	}
}

// indexedSeq adapts the posting-list evaluator to a pull sequence,
// resolving each posting to a node ref only when the consumer reaches
// it.
func (s *Store) indexedSeq(cx context.Context, it *Iter, idx *pathindex.Handle, steps []Step) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		err := s.streamIndexed(cx, idx, steps, func(p pathindex.Posting) error {
			ref, err := s.resolvePosting(p)
			if err != nil {
				return err
			}
			if !yield(Result{Mode: ModeTree, Doc: it.doc, Ref: ref, store: s, iter: it}, nil) {
				return errStopIteration
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopIteration) {
			yield(Result{}, err)
		}
	}
}

// flatSeq adapts the flat-mode evaluator to a pull sequence. The blob
// read and parse happen lazily, on the first Next.
func (s *Store) flatSeq(cx context.Context, it *Iter, info DocInfo, steps []Step) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		err := s.streamFlat(cx, info, steps, func(n *xmlkit.Node) error {
			if !yield(Result{Mode: ModeFlat, Doc: info.Name, XML: n, store: s, iter: it}, nil) {
				return errStopIteration
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopIteration) {
			yield(Result{}, err)
		}
	}
}
