package docstore

import (
	"strings"
	"testing"

	"natix/internal/core"
	"natix/internal/pathindex"
)

// nested exercises the corners of step semantics: repeated labels on a
// path (nested DIVs, so descendant steps see duplicate contexts),
// attributes, an empty element, and multiple siblings of one label.
const nested = `<DOC a="1"><DIV id="d1"><DIV id="d2"><A>x</A></DIV><A>y</A><B></B></DIV><A>z</A></DOC>`

// equivalenceQueries covers leading/interior descendant steps, child
// steps, predicates, misses, and the fallback name tests.
var equivalenceQueries = []string{
	"/PLAY//SPEAKER",
	"/PLAY/ACT[1]/SCENE[2]//SPEAKER",
	"//SCENE/SPEECH[1]",
	"/PLAY/ACT[1]/SCENE[1]/SPEECH[1]",
	"//SPEECH//LINE",
	"//LINE[2]",
	"//TITLE",
	"//ACT/TITLE",
	"/PLAY//NOSUCH",
	"/WRONG//SPEAKER",
	"//SPEECH[2]",
	"/PLAY/ACT/SCENE//SPEAKER",
	"/DOC//A",
	"//DIV//A",
	"//DIV/A",
	"//DIV/DIV",
	"//DIV[1]",
	"//DIV[1]//A",
	"//A[2]",
	"/DOC/DIV/A[1]",
	"//@id",
	"/DOC/@a",
	"//DIV/@id[1]",
	// Fallback shapes: "*" and "#text" are not index-answerable.
	"//DIV/*",
	"//SPEECH/*",
	"//SPEAKER/#text",
	"/PLAY/*//SPEAKER",
}

func enableIndex(t *testing.T, s *Store) *pathindex.Store {
	t.Helper()
	px, err := pathindex.Open(s.Trees().Records())
	if err != nil {
		t.Fatal(err)
	}
	s.EnablePathIndex(px)
	return px
}

// markups renders every match so result sets can be compared
// byte-for-byte.
func markups(t *testing.T, s *Store, doc, query string) []string {
	t.Helper()
	res, err := s.Query(doc, query)
	if err != nil {
		t.Fatalf("%s on %s: %v", query, doc, err)
	}
	out := make([]string, len(res))
	for i, r := range res {
		m, err := r.Markup()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func importBoth(t *testing.T, s *Store) {
	t.Helper()
	for name, text := range map[string]string{"p": play, "n": nested} {
		if _, err := s.ImportXML(name, strings.NewReader(text)); err != nil {
			t.Fatal(err)
		}
	}
}

func docFor(q string) string {
	if strings.Contains(q, "DIV") || strings.Contains(q, "DOC") || strings.Contains(q, "@") {
		return "n"
	}
	return "p"
}

// TestIndexedScanEquivalence runs every query on an indexed store and a
// plain one and requires byte-identical result sets. The small page
// size forces record splits, so postings cross proxies and scaffolds.
func TestIndexedScanEquivalence(t *testing.T) {
	indexed, _ := newDocStore(t, 512, core.Config{})
	enableIndex(t, indexed)
	plain, _ := newDocStore(t, 512, core.Config{})
	importBoth(t, indexed)
	importBoth(t, plain)

	for _, q := range equivalenceQueries {
		doc := docFor(q)
		got := markups(t, indexed, doc, q)
		want := markups(t, plain, doc, q)
		if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
			t.Errorf("%s on %s:\nindexed: %q\nscan:    %q", q, doc, got, want)
		}
	}

	// The indexed store actually used its index: every query without a
	// "*"/"#text" test is indexed, the rest fall back.
	st := indexed.IndexStats()
	var wantIndexed, wantScan int64
	for _, q := range equivalenceQueries {
		if strings.Contains(q, "*") || strings.Contains(q, "#text") {
			wantScan++
		} else {
			wantIndexed++
		}
	}
	if st.IndexedQueries != wantIndexed || st.ScanQueries != wantScan {
		t.Errorf("IndexStats = %+v, want %d indexed / %d scan", st, wantIndexed, wantScan)
	}
	if st.Builds != 2 {
		t.Errorf("Builds = %d, want 2", st.Builds)
	}
}

// TestQueryCountMatchesQuery checks the counting evaluator against
// materialized queries on indexed, plain and flat stores.
func TestQueryCountMatchesQuery(t *testing.T) {
	indexed, _ := newDocStore(t, 512, core.Config{})
	enableIndex(t, indexed)
	plain, _ := newDocStore(t, 512, core.Config{})
	flat, _ := newDocStore(t, 512, core.Config{})
	importBoth(t, indexed)
	importBoth(t, plain)
	for name, text := range map[string]string{"p": play, "n": nested} {
		if _, err := flat.ImportFlat(name, strings.NewReader(text)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range equivalenceQueries {
		doc := docFor(q)
		for _, s := range []*Store{indexed, plain, flat} {
			res, err := s.Query(doc, q)
			if err != nil {
				t.Fatal(err)
			}
			n, err := s.QueryCount(doc, q)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(res) {
				t.Errorf("QueryCount(%s on %s) = %d, want %d", q, doc, n, len(res))
			}
		}
	}
}

// TestIndexMaintenance checks the index follows the document through
// delete, convert, and reindex.
func TestIndexMaintenance(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	px := enableIndex(t, s)

	if _, err := s.ImportXML("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if !px.Has("p") {
		t.Fatal("import did not build an index")
	}

	// Convert to flat drops the index; converting back rebuilds it.
	if err := s.Convert("p", ModeFlat); err != nil {
		t.Fatal(err)
	}
	if px.Has("p") {
		t.Fatal("index survived conversion to flat")
	}
	if err := s.Convert("p", ModeTree); err != nil {
		t.Fatal(err)
	}
	if !px.Has("p") {
		t.Fatal("conversion back to tree did not rebuild the index")
	}
	if got := markups(t, s, "p", "/PLAY//SPEAKER"); len(got) != 5 {
		t.Fatalf("speakers after convert = %d", len(got))
	}

	if err := s.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if px.Has("p") {
		t.Fatal("index survived delete")
	}

	// ReindexDocument: error cases and the mutate-then-reindex flow.
	if err := s.ReindexDocument("p"); err == nil {
		t.Fatal("reindex of a missing document succeeded")
	}
	if _, err := s.ImportFlat("f", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if err := s.ReindexDocument("f"); err == nil {
		t.Fatal("reindex of a flat document succeeded")
	}
	plain, _ := newDocStore(t, 512, core.Config{})
	if _, err := plain.ImportXML("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if err := plain.ReindexDocument("p"); err == nil {
		t.Fatal("reindex without an index store succeeded")
	}
}

// TestParseQueryEdgeCases pins the parser's error behavior on the
// malformed shapes users actually type.
func TestParseQueryEdgeCases(t *testing.T) {
	bad := []string{
		"",        // empty query
		"PLAY",    // no leading slash
		"/",       // trailing slash only
		"/PLAY/",  // trailing slash
		"/PLAY//", // trailing descendant slash
		"//",      // empty descendant step
		"/A//B/",  // interior ok, trailing empty
		"/A[1",    // unclosed predicate
		"/A[",     // unclosed predicate, empty
		"/A[]",    // empty predicate
		"/A[x]",   // non-numeric predicate
		"/A[0]",   // position below 1
		"/A[-3]",  // negative position
		"/A[1]B",  // trailing garbage after predicate
		"/A/[1]",  // predicate without a name
		"//[2]",   // descendant predicate without a name
	}
	for _, q := range bad {
		if steps, err := ParseQuery(q); err == nil {
			t.Errorf("ParseQuery(%q) = %+v, want error", q, steps)
		}
	}

	good := []struct {
		q    string
		want []Step
	}{
		{"/*", []Step{{Name: "*"}}},
		{"//*", []Step{{Name: "*", Descendant: true}}},
		{"/A/*[2]", []Step{{Name: "A"}, {Name: "*", Pos: 2}}},
		{"//#text", []Step{{Name: "#text", Descendant: true}}},
		{"/A//#text[1]", []Step{{Name: "A"}, {Name: "#text", Descendant: true, Pos: 1}}},
		{"/A[12]//B", []Step{{Name: "A", Pos: 12}, {Name: "B", Descendant: true}}},
	}
	for _, g := range good {
		steps, err := ParseQuery(g.q)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", g.q, err)
			continue
		}
		if len(steps) != len(g.want) {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", g.q, steps, g.want)
			continue
		}
		for i := range g.want {
			if steps[i] != g.want[i] {
				t.Errorf("ParseQuery(%q)[%d] = %+v, want %+v", g.q, i, steps[i], g.want[i])
			}
		}
	}
}
