// Package docstore is the NATIX document manager (paper §2.1): it
// maintains a catalog of named documents, converts between XML text and
// the stored tree form, and evaluates the simple path queries used in
// the paper's evaluation.
//
// Documents can be stored in two modes:
//
//   - ModeTree: through the tree storage manager (package core) — the
//     native representation whose clustering the split matrix governs;
//   - ModeFlat: as a serialized byte stream in the BLOB manager — the
//     "flat stream" baseline of §1, where structure is only accessible
//     by re-parsing.
//
// # Concurrency
//
// The store is safe for concurrent use under a two-level scheme. Read
// operations on a document (Query, QueryCount, ExportXML, Stats) take
// that document's read lock, so any number of them run in parallel —
// including against a document another goroutine is mutating a sibling
// of. A QueryIter cursor takes the same read lock and keeps it until
// the cursor is closed or exhausted, so writers of that document wait
// out open cursors (only). Catalog-only reads (Documents, Lookup, Tree) take just the
// catalog lock: they serialize with catalog updates, not with document
// content mutation. Mutations (ImportXML, ImportTree, ImportFlat,
// Delete, Convert, ReindexDocument, RegisterTree) take the target
// document's write lock and then a store-wide writer mutex — one
// mutator at a time, because they share the segment allocator and the
// catalog — so they exclude only readers of the same document, and a
// mutator still waiting for its document (blocked behind an open
// cursor) holds nothing and stalls no one. Readers of other documents
// never wait on a mutator; page-level integrity between a mutator and
// concurrent readers of unrelated records on shared pages is the
// buffer manager's frame latches' job.
//
// Lock order: per-document lock → writer mutex → catalog lock →
// package-internal locks (dict, caches, pool shards, frame latches).
// The document lock outranks the writer mutex so that a mutator
// waiting out a long-lived reader of one document (an open cursor)
// never blocks mutators of other documents.
// Code that mutates a tree directly through Tree's handle (the
// Document edit API, the benchmark harness) must wrap the mutation in
// Mutate, which takes the same locks the built-in mutators do.
package docstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"natix/internal/blobstore"
	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/noderep"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/telemetry"
	"natix/internal/wal"
	"natix/internal/xmlkit"
)

// Mode selects a document's storage representation.
type Mode uint8

// Document storage modes.
const (
	ModeTree Mode = iota // native XML storage (the paper's contribution)
	ModeFlat             // flat stream baseline
)

// AttrPrefix marks attribute labels in the dictionary: attribute a of an
// element is stored as a child aggregate labelled "@a" holding a string
// literal.
const AttrPrefix = "@"

// Errors.
var (
	ErrNotFound  = errors.New("docstore: no such document")
	ErrDuplicate = errors.New("docstore: document already exists")
	ErrCorrupt   = errors.New("docstore: corrupt catalog")
	ErrNotTree   = errors.New("docstore: not a tree-mode document")
)

// DocInfo describes one catalog entry.
type DocInfo struct {
	Name string
	Mode Mode
	Root records.RID // tree root record (ModeTree) or blob head (ModeFlat)
}

// Store is the document manager.
type Store struct {
	trees *core.Store
	blobs *blobstore.Store
	dict  *dict.Dict
	seg   *segment.Segment

	// wmu serializes all mutating operations: they share the segment
	// allocator, the catalog blob and the path-index catalog, none of
	// which support two concurrent writers.
	wmu sync.Mutex

	// locks is the per-document lock table: name -> *sync.RWMutex.
	// Entries are created on demand and kept for the store's lifetime
	// (names recur; the table is bounded by the number of distinct
	// names ever used). A sync.Map so the lookup on every query and
	// match access is lock-free once the entry exists.
	locks sync.Map

	cmu       sync.RWMutex        // guards catalog
	catalog   map[string]*DocInfo // entries are mutated only under cmu
	catalogID records.RID         // catalog blob RID; touched only under wmu

	// qmu guards quarantined: documents the integrity scrubber found
	// damaged beyond repair. Operations against them fail fast with
	// ErrQuarantined; every other document keeps serving (see
	// quarantine.go). The set is in-memory only — a reopen rescans.
	qmu         sync.RWMutex
	quarantined map[string]string // name -> reason

	// headerCopy is the last-known-good image of the segment header
	// (page 0), captured at AttachWAL and refreshed at every checkpoint
	// while everything is flushed and wmu is held. It is the scrubber's
	// repair source for a corrupt header when the log holds no page-0
	// image — and the absence of such an image is exactly what proves
	// the header unchanged since the capture (any later change would
	// have logged a first-update image, which repair prefers).
	hmu        sync.RWMutex
	headerCopy []byte

	// bulkFill is the bulk-load fill factor (0 = DefaultBulkFill).
	bulkFill float64

	// walW, when attached, is the write-ahead log: Mutate and
	// InternLabel bracket their work with begin/commit records and roll
	// failures back from the log (see wal.go).
	walW *wal.Writer

	// pindex, when attached, is the persistent path-index store. It is
	// attached even in sessions that do not use the index so that
	// Delete always drops a document's index — otherwise a session
	// without indexing could delete and re-import a document and leave
	// a stale index for later sessions to answer queries from. indexOn
	// additionally enables building on import and answering queries.
	pindex  *pathindex.Store
	indexOn bool

	builds         atomic.Int64
	indexedQueries atomic.Int64
	scanQueries    atomic.Int64
	flatQueries    atomic.Int64

	// scanPool recycles scanScratch traversal buffers across queries
	// (see query.go); a warm navigating scan allocates nothing.
	scanPool sync.Pool

	// tracer and the m* handles are set by AttachTelemetry (see
	// telemetry.go); all remain nil — and every use is nil-safe — on an
	// unattached store.
	tracer            *telemetry.Tracer
	mImports          *telemetry.Counter
	mMutations        *telemetry.Counter
	mCursorsOpened    *telemetry.Counter
	mCursorsExhausted *telemetry.Counter
	mCursorsAbandoned *telemetry.Counter
	mCursorRows       *telemetry.Counter
	mQueryIndexedNS   *telemetry.Histogram
	mQueryScanNS      *telemetry.Histogram
	mQueryFlatNS      *telemetry.Histogram
	mCheckpointNS     *telemetry.Histogram
	mImportParseNS    *telemetry.Counter
	mImportPackNS     *telemetry.Counter
	mImportWriteNS    *telemetry.Counter
}

// IndexStats counts path-index activity.
type IndexStats struct {
	Builds         int64 // index builds (imports and reindexes)
	IndexedQueries int64 // tree-mode queries answered from the index
	ScanQueries    int64 // tree-mode queries evaluated by navigation
}

// lockFor returns the named document's lock, creating it on first use.
// Locks are addressed by name independent of catalog membership, so a
// reader and an importer of the same not-yet-existing document still
// serialize correctly.
func (s *Store) lockFor(name string) *sync.RWMutex {
	if l, ok := s.locks.Load(name); ok {
		return l.(*sync.RWMutex)
	}
	l, _ := s.locks.LoadOrStore(name, new(sync.RWMutex))
	return l.(*sync.RWMutex)
}

// View runs fn holding the named document's read lock. Use it to wrap
// read-only access that goes through a Tree handle directly.
func (s *Store) View(name string, fn func() error) error {
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	return fn()
}

// Mutate runs fn holding the named document's write lock and the
// writer mutex — the locks every built-in mutator takes. Use it to wrap
// direct tree mutations (Document edits, harness-driven inserts),
// including their PrepareMutation/FinishBulk bracketing.
//
// The document lock comes first: a mutator stuck waiting for a busy
// document (readers — above all open cursors — hold document read
// locks for extended windows) must not sit on the store-wide mutex,
// or one slow cursor would stall mutations of every other document.
// The order is safe because no code path acquires a document lock
// while holding wmu, and each mutator locks exactly one document.
//
// With a write-ahead log attached, fn runs as one logged operation:
// its page effects become durable atomically at commit, and an error
// (or a crash) rolls every one of them back — see wal.go.
func (s *Store) Mutate(name string, fn func() error) error {
	if err := s.checkQuarantine(name); err != nil {
		return err
	}
	s.mMutations.Inc()
	l := s.lockFor(name)
	l.Lock()
	defer l.Unlock()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.runOp("mutate:"+name, fn)
}

// Create initializes a document manager over a fresh segment: the label
// dictionary and an empty catalog are created and registered.
func Create(trees *core.Store, d *dict.Dict) (*Store, error) {
	s := &Store{
		trees:   trees,
		blobs:   blobstore.New(trees.Records()),
		dict:    d,
		seg:     trees.Records().Segment(),
		catalog: make(map[string]*DocInfo),
	}
	if err := s.saveCatalog(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open attaches to an existing document manager.
func Open(trees *core.Store, d *dict.Dict) (*Store, error) {
	s := &Store{
		trees:   trees,
		blobs:   blobstore.New(trees.Records()),
		dict:    d,
		seg:     trees.Records().Segment(),
		catalog: make(map[string]*DocInfo),
	}
	raw, err := s.seg.RootRID(segment.RootCatalog)
	if err != nil {
		return nil, err
	}
	if raw == 0 {
		return nil, errors.New("docstore: no catalog in segment")
	}
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	s.catalogID = records.DecodeRID(enc[:])
	body, err := s.blobs.Read(s.catalogID)
	if err != nil {
		return nil, fmt.Errorf("docstore: load catalog: %w", err)
	}
	if err := s.decodeCatalog(body); err != nil {
		return nil, err
	}
	return s, nil
}

// Trees exposes the tree storage manager (for stats and tuning).
func (s *Store) Trees() *core.Store { return s.trees }

// Dict exposes the label dictionary.
func (s *Store) Dict() *dict.Dict { return s.dict }

// EnablePathIndex attaches a path-index store and turns indexing on:
// ImportXML / ImportTree build an index for each new tree-mode
// document, Delete drops it, mutations through FinishBulk drop it,
// and Query answers descendant steps from it when it can.
func (s *Store) EnablePathIndex(px *pathindex.Store) {
	s.pindex = px
	s.indexOn = true
}

// AttachPathIndex attaches a path-index store for maintenance only:
// Delete and FinishBulk drop stale indexes, but no indexes are built
// and queries never consult them. Sessions opened without indexing use
// this so they cannot strand stale indexes for later sessions.
func (s *Store) AttachPathIndex(px *pathindex.Store) { s.pindex = px }

// PathIndex returns the attached path-index store (nil when disabled).
func (s *Store) PathIndex() *pathindex.Store { return s.pindex }

// IndexStats returns the path-index activity counters.
func (s *Store) IndexStats() IndexStats {
	return IndexStats{
		Builds:         s.builds.Load(),
		IndexedQueries: s.indexedQueries.Load(),
		ScanQueries:    s.scanQueries.Load(),
	}
}

// buildIndex builds and persists the path index of a tree-mode document.
func (s *Store) buildIndex(name string, root records.RID) error {
	idx, err := pathindex.Build(s.trees, root)
	if err != nil {
		return fmt.Errorf("docstore: index %q: %w", name, err)
	}
	if err := s.pindex.Put(name, idx); err != nil {
		return err
	}
	s.builds.Add(1)
	return nil
}

// ReindexDocument rebuilds the path index of a tree-mode document. It is
// the maintenance hook for documents mutated through the tree storage
// manager directly, mutated via FinishBulk (which drops the index), or
// imported before indexing was enabled.
func (s *Store) ReindexDocument(name string) error {
	return s.ReindexDocumentContext(context.Background(), name)
}

// ReindexDocumentContext is ReindexDocument with a cancellation point
// before the (uninterruptible) rebuild starts: once the index build is
// underway it runs to completion, so a cancelled context can never
// leave a half-written index.
func (s *Store) ReindexDocumentContext(cx context.Context, name string) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	sp := s.startOp("reindex", name)
	defer sp.End()
	return s.Mutate(name, func() error { return s.reindexLocked(name) })
}

func (s *Store) reindexLocked(name string) error {
	if s.pindex == nil || !s.indexOn {
		return errors.New("docstore: path index not enabled")
	}
	info, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode != ModeTree {
		return fmt.Errorf("%w: %q", ErrNotTree, name)
	}
	return s.buildIndex(name, info.Root)
}

// lookup returns a copy of the catalog entry for name. Copies, not the
// shared pointer: updateRoot mutates entries in place under cmu, and a
// reader must not observe that mid-operation.
func (s *Store) lookup(name string) (DocInfo, bool) {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	info, ok := s.catalog[name]
	if !ok {
		return DocInfo{}, false
	}
	return *info, true
}

// encodeCatalog serializes the catalog: count, then entries.
func (s *Store) encodeCatalog() []byte {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, uint32(len(names)))
	var tmp [records.RIDSize]byte
	for _, n := range names {
		info := s.catalog[n]
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(n)))
		out = append(out, l[:]...)
		out = append(out, n...)
		out = append(out, byte(info.Mode))
		info.Root.Put(tmp[:])
		out = append(out, tmp[:]...)
	}
	return out
}

func (s *Store) decodeCatalog(b []byte) error {
	if len(b) < 4 {
		return ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(b))
	pos := 4
	for i := 0; i < count; i++ {
		if pos+2 > len(b) {
			return fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+n+1+records.RIDSize > len(b) {
			return fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		name := string(b[pos : pos+n])
		pos += n
		mode := Mode(b[pos])
		pos++
		root := records.DecodeRID(b[pos : pos+records.RIDSize])
		pos += records.RIDSize
		s.catalog[name] = &DocInfo{Name: name, Mode: mode, Root: root}
	}
	return nil
}

// saveCatalog persists the catalog blob and re-registers it in the
// segment header. Called only from mutator context (under wmu, or
// during single-threaded construction).
func (s *Store) saveCatalog() error {
	body := s.encodeCatalog()
	var (
		id  records.RID
		err error
	)
	if s.catalogID.IsNil() {
		id, err = s.blobs.Write(body, 0)
	} else {
		id, err = s.blobs.Overwrite(s.catalogID, body)
	}
	if err != nil {
		return err
	}
	s.catalogID = id
	var enc [records.RIDSize]byte
	id.Put(enc[:])
	return s.seg.SetRootRID(segment.RootCatalog, binary.LittleEndian.Uint64(enc[:]))
}

// Documents lists the catalog in name order.
func (s *Store) Documents() []DocInfo {
	s.cmu.RLock()
	out := make([]DocInfo, 0, len(s.catalog))
	for _, info := range s.catalog {
		out = append(out, *info)
	}
	s.cmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the catalog entry for name.
func (s *Store) Lookup(name string) (DocInfo, error) {
	info, ok := s.lookup(name)
	if !ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return info, nil
}

// Tree returns a handle to a tree-mode document. Reads through the
// handle must be wrapped in View, mutations in Mutate, unless the
// caller is single-threaded.
func (s *Store) Tree(name string) (*core.Tree, error) {
	info, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode != ModeTree {
		return nil, fmt.Errorf("%w: %q", ErrNotTree, name)
	}
	return s.trees.OpenTree(info.Root), nil
}

// Delete removes a document and its storage, dropping its path index.
func (s *Store) Delete(name string) error {
	return s.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete with a cancellation point before the locks
// are taken. A delete that has started runs to completion: stopping a
// half-freed document midway would be strictly worse than finishing.
func (s *Store) DeleteContext(cx context.Context, name string) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	sp := s.startOp("delete", name)
	defer sp.End()
	return s.Mutate(name, func() error { return s.deleteLocked(name) })
}

func (s *Store) deleteLocked(name string) error {
	info, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if s.pindex != nil {
		if err := s.pindex.Drop(name); err != nil {
			return err
		}
	}
	switch info.Mode {
	case ModeTree:
		if err := s.trees.OpenTree(info.Root).DeleteTree(); err != nil {
			return err
		}
	case ModeFlat:
		if err := s.blobs.Delete(info.Root); err != nil {
			return err
		}
	}
	s.cmu.Lock()
	delete(s.catalog, name)
	s.cmu.Unlock()
	return s.saveCatalog()
}

// register adds a catalog entry. Mutator context.
func (s *Store) register(info *DocInfo) error {
	s.cmu.Lock()
	if _, ok := s.catalog[info.Name]; ok {
		s.cmu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, info.Name)
	}
	s.catalog[info.Name] = info
	s.cmu.Unlock()
	return s.saveCatalog()
}

// updateRoot persists a changed root RID (tree roots move when the root
// record splits). Mutator context.
func (s *Store) updateRoot(name string, root records.RID) error {
	s.cmu.Lock()
	info, ok := s.catalog[name]
	if !ok {
		s.cmu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Root == root {
		s.cmu.Unlock()
		return nil
	}
	info.Root = root
	s.cmu.Unlock()
	return s.saveCatalog()
}

// labelFor interns an element name. Mutator context (the import paths
// that call it already hold the writer mutex).
func (s *Store) labelFor(name string) (dict.LabelID, error) {
	return s.dict.Intern(name)
}

// InternLabel interns a label under the store's writer mutex. Callers
// outside the docstore mutators (SetPolicy, Document edits) must use
// this instead of Dict().Intern: interning an unseen label persists
// the grown dictionary blob, which allocates pages — and the segment
// allocator requires a single mutator at a time. Interning an existing
// label short-circuits on the dictionary's lock-free fast path before
// the mutex is taken.
func (s *Store) InternLabel(name string) (dict.LabelID, error) {
	if id, ok := s.dict.Lookup(name); ok {
		return id, nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	var id dict.LabelID
	err := s.runOp("intern:"+name, func() error {
		var err error
		id, err = s.dict.Intern(name)
		return err
	})
	return id, err
}

// nodeFromXML converts one parsed XML node into a facade subtree:
// elements become aggregates, attributes become "@name" aggregates with
// a string-literal child, text becomes text literals.
func (s *Store) nodeFromXML(n *xmlkit.Node) (*noderep.Node, error) {
	if n.IsText() {
		return noderep.NewTextLiteral(n.Text), nil
	}
	label, err := s.labelFor(n.Name)
	if err != nil {
		return nil, err
	}
	agg := noderep.NewAggregate(label)
	for _, a := range n.Attrs {
		alabel, err := s.labelFor(AttrPrefix + a.Name)
		if err != nil {
			return nil, err
		}
		attr := noderep.NewAggregate(alabel)
		attr.AppendChild(noderep.NewTextLiteral(a.Value))
		agg.AppendChild(attr)
	}
	for _, c := range n.Children {
		child, err := s.nodeFromXML(c)
		if err != nil {
			return nil, err
		}
		agg.AppendChild(child)
	}
	return agg, nil
}

// ImportXML stores an XML document in tree mode through the streaming
// bulk path: the reader is tokenized incrementally and subtrees are
// packed bottom-up into maximal records, each written exactly once,
// with the path index (when enabled) built in the same pass. It returns
// the document info.
func (s *Store) ImportXML(name string, r io.Reader) (DocInfo, error) {
	return s.ImportXMLContext(context.Background(), name, r)
}

// ImportXMLContext is ImportXML honoring a context: cancellation is
// checked per parse event, and a cancelled (or failed) import rolls
// every stored record back before returning, leaving no trace in the
// store.
//
// Parsing is interleaved with storage — the single pass is the point —
// so the document lock AND the store-wide writer mutex are held while
// the reader drains, and a read blocked inside the reader is not
// interruptible by the context (cancellation takes effect at the next
// parse event). A reader that stalls indefinitely therefore stalls all
// other mutations for its duration. Feed imports from sources that
// make progress (files, buffers); wrap network streams with read
// deadlines or spool them to disk first.
func (s *Store) ImportXMLContext(cx context.Context, name string, r io.Reader) (DocInfo, error) {
	sp := s.startOp("import", name)
	defer sp.End()
	s.mImports.Inc()
	var info DocInfo
	err := s.Mutate(name, func() error {
		var err error
		p := xmlkit.NewStreamParser(r, xmlkit.ParseOptions{})
		info, err = s.importStreamLocked(cx, name, p, sp)
		return err
	})
	return info, err
}

// ImportTree stores a parsed XML tree in tree mode through the bulk
// path (see ImportXML; the tree is replayed as events).
func (s *Store) ImportTree(name string, root *xmlkit.Node) (DocInfo, error) {
	return s.ImportTreeContext(context.Background(), name, root)
}

// ImportTreeContext is ImportTree honoring a context (see
// ImportXMLContext).
func (s *Store) ImportTreeContext(cx context.Context, name string, root *xmlkit.Node) (DocInfo, error) {
	sp := s.startOp("import_tree", name)
	defer sp.End()
	s.mImports.Inc()
	var info DocInfo
	err := s.Mutate(name, func() error {
		var err error
		info, err = s.importTreeLocked(cx, name, root, sp)
		return err
	})
	return info, err
}

// ImportTreeIncremental stores a parsed XML tree by per-node pre-order
// insertion through the paper's tree growth procedure (figure 5) — one
// storage-manager insert per logical node, exactly what post-load
// mutations do. The bulk path replaced it for imports; it remains the
// reference implementation the equivalence tests and import benchmarks
// compare against.
func (s *Store) ImportTreeIncremental(name string, root *xmlkit.Node) (DocInfo, error) {
	sp := s.startOp("import_incremental", name)
	defer sp.End()
	s.mImports.Inc()
	var info DocInfo
	err := s.Mutate(name, func() error {
		var err error
		info, err = s.importTreeIncrementalLocked(context.Background(), name, root)
		return err
	})
	return info, err
}

func (s *Store) importTreeIncrementalLocked(cx context.Context, name string, root *xmlkit.Node) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if root.IsText() {
		return DocInfo{}, errors.New("docstore: document root must be an element")
	}
	label, err := s.labelFor(root.Name)
	if err != nil {
		return DocInfo{}, err
	}
	tree, err := s.trees.CreateTree(label)
	if err != nil {
		return DocInfo{}, err
	}
	// On any failure past this point — a cancelled context included —
	// the partially built tree is torn down (best effort) so a failed
	// import does not strand unreferenced records in the segment. With
	// a write-ahead log the teardown is unnecessary: Mutate rolls the
	// whole operation back from the log.
	fail := func(err error) (DocInfo, error) {
		if s.walW == nil {
			_ = tree.DeleteTree()
		}
		return DocInfo{}, err
	}
	// Root attributes first, then children, all in pre-order.
	if err := s.insertXMLChildren(cx, tree, core.Path{}, root); err != nil {
		return fail(err)
	}
	info := &DocInfo{Name: name, Mode: ModeTree, Root: tree.RootRID()}
	// Index before registering: a failed build must not leave a
	// registered-but-unindexed document behind a returned error.
	if s.pindex != nil && s.indexOn {
		if err := s.buildIndex(name, info.Root); err != nil {
			return fail(err)
		}
	}
	if err := s.register(info); err != nil {
		if s.pindex != nil && s.indexOn && s.walW == nil {
			_ = s.pindex.Drop(name) // best-effort rollback (log-driven otherwise)
		}
		return fail(err)
	}
	return *info, nil
}

// insertXMLChildren appends attributes and children of src under the
// node at path, recursing in pre-order. The context is checked before
// every inserted node — each insert touches pages.
func (s *Store) insertXMLChildren(cx context.Context, tree *core.Tree, path core.Path, src *xmlkit.Node) error {
	pos := 0
	for _, a := range src.Attrs {
		if err := ctxErr(cx); err != nil {
			return err
		}
		alabel, err := s.labelFor(AttrPrefix + a.Name)
		if err != nil {
			return err
		}
		attr := noderep.NewAggregate(alabel)
		if err := tree.InsertChild(path, pos, attr); err != nil {
			return err
		}
		if err := tree.InsertChild(append(path.Clone(), pos), 0, noderep.NewTextLiteral(a.Value)); err != nil {
			return err
		}
		pos++
	}
	for _, c := range src.Children {
		if err := ctxErr(cx); err != nil {
			return err
		}
		if c.IsText() {
			n, err := s.insertText(tree, path, pos, c.Text)
			if err != nil {
				return err
			}
			pos += n
			continue
		}
		label, err := s.labelFor(c.Name)
		if err != nil {
			return err
		}
		if err := tree.InsertChild(path, pos, noderep.NewAggregate(label)); err != nil {
			return err
		}
		if err := s.insertXMLChildren(cx, tree, append(path.Clone(), pos), c); err != nil {
			return err
		}
		pos++
	}
	return nil
}

// insertText inserts one text node, chunking very long runs so no single
// literal exceeds the storage manager's per-node limit. It returns the
// number of sibling literals inserted, which the caller must advance its
// position by — a chunked run occupies several child slots.
func (s *Store) insertText(tree *core.Tree, path core.Path, pos int, text string) (int, error) {
	limit := s.trees.Records().MaxRecordSize() / 2
	if len(text) <= limit {
		return 1, tree.InsertChild(path, pos, noderep.NewTextLiteral(text))
	}
	// Chunk the run into sibling literals; TextContent concatenates them
	// back on export.
	inserted := 0
	for i := 0; i < len(text); i += limit {
		end := i + limit
		if end > len(text) {
			end = len(text)
		}
		if err := tree.InsertChild(path, pos, noderep.NewTextLiteral(text[i:end])); err != nil {
			return inserted, err
		}
		pos++
		inserted++
	}
	return inserted, nil
}

// PrepareMutation drops the document's path index ahead of a tree
// mutation. Mutations invalidate the postings (they address nodes by
// record and position), and dropping first fails closed: if the drop
// cannot be persisted the mutation is refused, so a live index can
// never address post-mutation positions. Queries fall back to the
// scan until ReindexDocument rebuilds the index. Call within Mutate.
func (s *Store) PrepareMutation(name string) error {
	if s.pindex == nil {
		return nil
	}
	return s.pindex.Drop(name)
}

// FinishBulk persists any root-RID change after bulk mutations. The
// index was dropped by PrepareMutation; dropping again here covers
// callers that mutate without announcing. Call within Mutate.
func (s *Store) FinishBulk(name string, tree *core.Tree) error {
	if s.pindex != nil {
		if err := s.pindex.Drop(name); err != nil {
			return err
		}
	}
	return s.updateRoot(name, tree.RootRID())
}

// ImportFlat stores the XML text verbatim as a BLOB (the flat-stream
// baseline). The text is validated by parsing first, before any lock
// is taken.
func (s *Store) ImportFlat(name string, r io.Reader) (DocInfo, error) {
	return s.ImportFlatContext(context.Background(), name, r)
}

// ImportFlatContext is ImportFlat with cancellation points before the
// reader is drained and before the blob is written; the write itself
// is atomic from the catalog's point of view.
func (s *Store) ImportFlatContext(cx context.Context, name string, r io.Reader) (DocInfo, error) {
	// Racy duplicate pre-check so an existing name is rejected before
	// the reader is drained; importFlatLocked re-checks authoritatively.
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if err := ctxErr(cx); err != nil {
		return DocInfo{}, err
	}
	sp := s.startOp("import_flat", name)
	defer sp.End()
	s.mImports.Inc()
	ch := sp.Child("parse")
	text, err := io.ReadAll(r)
	if err != nil {
		ch.End()
		return DocInfo{}, err
	}
	if err := ctxErr(cx); err != nil {
		ch.End()
		return DocInfo{}, err
	}
	if _, err := xmlkit.ParseString(string(text), xmlkit.ParseOptions{}); err != nil {
		ch.End()
		return DocInfo{}, fmt.Errorf("docstore: flat import: %w", err)
	}
	ch.Add("bytes", int64(len(text)))
	ch.End()
	ch = sp.Child("write")
	defer ch.End()
	var info DocInfo
	err = s.Mutate(name, func() error {
		var err error
		info, err = s.importFlatLocked(name, text)
		return err
	})
	return info, err
}

func (s *Store) importFlatLocked(name string, text []byte) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	id, err := s.blobs.Write(text, 0)
	if err != nil {
		return DocInfo{}, err
	}
	info := &DocInfo{Name: name, Mode: ModeFlat, Root: id}
	if err := s.register(info); err != nil {
		return DocInfo{}, err
	}
	return *info, nil
}

// ExportXML serializes a document back to XML markup.
func (s *Store) ExportXML(name string, w io.Writer) error {
	return s.ExportXMLContext(context.Background(), name, w)
}

// ExportXMLContext is ExportXML honoring a context, checked per record
// while the stored tree is materialized.
func (s *Store) ExportXMLContext(cx context.Context, name string, w io.Writer) error {
	if err := s.checkQuarantine(name); err != nil {
		return err
	}
	sp := s.startOp("export", name)
	defer sp.End()
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	return s.exportXMLLocked(cx, name, w)
}

func (s *Store) exportXMLLocked(cx context.Context, name string, w io.Writer) error {
	info, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	switch info.Mode {
	case ModeFlat:
		body, err := s.blobs.Read(info.Root)
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	default:
		tree := s.trees.OpenTree(info.Root)
		root, err := tree.Root()
		if err != nil {
			return err
		}
		xn, err := s.xmlFromRef(cx, root)
		if err != nil {
			return err
		}
		return xmlkit.Serialize(w, xn)
	}
}

// xmlFromRef materializes the logical subtree at ref as an XML tree,
// folding "@name" aggregates back into attributes. The context is
// checked before each record access. The walk visits records in
// document order, so it announces page read-ahead to the buffer pool
// as it crosses pages (a fresh cursor per call; Markup on a single
// match and a whole-document export both stream sequentially).
func (s *Store) xmlFromRef(cx context.Context, ref core.NodeRef) (*xmlkit.Node, error) {
	var cur pageCursor
	return s.xmlFromRefCur(cx, ref, &cur)
}

func (s *Store) xmlFromRefCur(cx context.Context, ref core.NodeRef, cur *pageCursor) (*xmlkit.Node, error) {
	if ref.IsLiteral() {
		v, err := ref.Literal().StringValue()
		if err != nil {
			return nil, err
		}
		return xmlkit.NewText(v), nil
	}
	name, err := s.dict.Name(ref.Label())
	if err != nil {
		return nil, err
	}
	out := xmlkit.NewElement(name)
	if err := ctxErr(cx); err != nil {
		return nil, err
	}
	s.notePage(cx, cur, ref)
	kids, err := s.trees.Children(ref)
	if err != nil {
		return nil, err
	}
	for _, k := range kids {
		if !k.IsLiteral() {
			kname, err := s.dict.Name(k.Label())
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(kname, AttrPrefix) {
				val, err := s.trees.TextContent(k)
				if err != nil {
					return nil, err
				}
				out.SetAttr(strings.TrimPrefix(kname, AttrPrefix), val)
				continue
			}
		}
		child, err := s.xmlFromRefCur(cx, k, cur)
		if err != nil {
			return nil, err
		}
		out.Append(child)
	}
	return out, nil
}

// RegisterTree adds a catalog entry for a tree that was built directly
// through the tree storage manager (the benchmark harness drives
// insertion orders itself).
func (s *Store) RegisterTree(name string, tree *core.Tree) (DocInfo, error) {
	var info DocInfo
	err := s.Mutate(name, func() error {
		entry := &DocInfo{Name: name, Mode: ModeTree, Root: tree.RootRID()}
		if err := s.register(entry); err != nil {
			return err
		}
		info = *entry
		return nil
	})
	return info, err
}

// Convert re-stores a document in the other representation (tree ↔
// flat) under the same name, preserving content. Converting to flat
// serializes the tree; converting to tree parses the stream. This is
// the migration path between the paper's storage categories (§1). The
// whole conversion holds the document's write lock, so readers see
// either the old representation or the new one, never the gap between
// delete and re-import.
func (s *Store) Convert(name string, to Mode) error {
	return s.ConvertContext(context.Background(), name, to)
}

// ConvertContext is Convert honoring a context during the reversible
// phase only: serializing the old representation checks cancellation
// per record, and a final check runs before the old form is dropped.
// Once replacement begins the conversion ignores the context — a
// cancelled half-replaced document would be lost, not preserved.
func (s *Store) ConvertContext(cx context.Context, name string, to Mode) error {
	sp := s.startOp("convert", name)
	defer sp.End()
	return s.Mutate(name, func() error { return s.convertLocked(cx, name, to, sp) })
}

func (s *Store) convertLocked(cx context.Context, name string, to Mode, sp *telemetry.Span) error {
	info, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode == to {
		return nil
	}
	var buf strings.Builder
	if err := s.exportXMLLocked(cx, name, &buf); err != nil {
		return err
	}
	// Last chance to back out: nothing has been modified yet. From here
	// on the operation runs to completion on context.Background.
	if err := ctxErr(cx); err != nil {
		return err
	}
	if err := s.deleteLocked(name); err != nil {
		return err
	}
	if to == ModeFlat {
		_, err := s.importFlatLocked(name, []byte(buf.String()))
		return err
	}
	doc, err := xmlkit.ParseString(buf.String(), xmlkit.ParseOptions{})
	if err != nil {
		return err
	}
	_, err = s.importTreeLocked(context.Background(), name, doc.Root, sp)
	return err
}

// TreeStats describes the physical organization of one tree-mode
// document — the "physical schema information and statistics" the
// paper's schema manager keeps (§2.1).
type TreeStats struct {
	Nodes        int            // logical nodes
	Records      int            // physical records
	Proxies      int            // scaffolding proxies
	Scaffolds    int            // scaffolding aggregates
	Depth        int            // logical tree depth
	Bytes        int            // sum of encoded record sizes
	LabelCounts  map[string]int // facade nodes per element name
	MaxRecordLen int            // largest record in bytes
}

// Stats computes physical statistics for a tree-mode document by
// walking its record tree.
func (s *Store) Stats(name string) (TreeStats, error) {
	if err := s.checkQuarantine(name); err != nil {
		return TreeStats{}, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return TreeStats{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info.Mode != ModeTree {
		return TreeStats{}, fmt.Errorf("%w: %q", ErrNotTree, name)
	}
	st := TreeStats{LabelCounts: make(map[string]int)}
	tree := s.trees.OpenTree(info.Root)
	var walkRecords func(rid records.RID) error
	walkRecords = func(rid records.RID) error {
		rec, err := s.trees.LoadRecordForInspection(rid)
		if err != nil {
			return err
		}
		st.Records++
		size := noderep.EncodedSize(rec)
		st.Bytes += size
		if size > st.MaxRecordLen {
			st.MaxRecordLen = size
		}
		var firstErr error
		rec.Root.Walk(func(n *noderep.Node) bool {
			switch n.Kind {
			case noderep.KindProxy:
				st.Proxies++
				if err := walkRecords(n.Target); err != nil && firstErr == nil {
					firstErr = err
					return false
				}
			case noderep.KindAggregate:
				if n.Scaffold {
					st.Scaffolds++
				} else {
					lbl, err := s.dict.Name(n.Label)
					if err == nil {
						st.LabelCounts[lbl]++
					}
					st.Nodes++
				}
			case noderep.KindLiteral:
				st.Nodes++
			}
			return true
		})
		return firstErr
	}
	if err := walkRecords(info.Root); err != nil {
		return TreeStats{}, err
	}
	// Depth via logical cursor.
	c, err := tree.Cursor()
	if err != nil {
		return TreeStats{}, err
	}
	if err := c.WalkPreOrder(func(c *core.Cursor) bool {
		if c.Depth()+1 > st.Depth {
			st.Depth = c.Depth() + 1
		}
		return true
	}); err != nil {
		return TreeStats{}, err
	}
	return st, nil
}
