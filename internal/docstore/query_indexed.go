package docstore

import (
	"errors"

	"natix/internal/core"
	"natix/internal/pathindex"
	"natix/internal/records"
)

// The indexed evaluator answers a whole query from the path index when
// every step is a plain element name test: context sets are posting
// lists instead of node refs, descendant steps become binary-searched
// containment ranges over the step label's postings, and child steps
// additionally require the summary path of the candidate to extend the
// context node's path by exactly one label. Only the final matches are
// resolved to records; non-matching subtrees are never visited.
//
// The semantics mirror evalScan exactly — per-context match lists,
// positional predicates applied per context node (globally for the
// first step), duplicates preserved for nested descendant contexts —
// so the two paths return identical results.

// indexFor returns a handle on the document's index when the query can
// use it: indexing is enabled, the document has a stored index, and
// every step is a plain name test (the "*" and "#text" tests match
// nodes the postings do not cover, so those queries fall back to the
// scan path). Only the index summary is loaded here; posting lists are
// read lazily, per step label.
func (s *Store) indexFor(info DocInfo, steps []Step) (*pathindex.Handle, error) {
	if s.pindex == nil || !s.indexOn || info.Mode != ModeTree {
		return nil, nil
	}
	for _, st := range steps {
		if st.Name == "*" || st.Name == "#text" {
			return nil, nil
		}
	}
	h, err := s.pindex.Get(info.Name)
	if errors.Is(err, pathindex.ErrCorrupt) {
		// A damaged index must not take queries down with it: the scan
		// path needs nothing from the index and is always correct.
		// ReindexDocument repairs the index.
		return nil, nil
	}
	return h, err
}

// evalIndexed evaluates steps over the posting lists, returning the
// matches in the same order (with the same duplicates) as evalScan.
// Step names are resolved through the label dictionary; a name that was
// never interned cannot occur in any document and matches nothing.
func (s *Store) evalIndexed(idx *pathindex.Handle, steps []Step) ([]pathindex.Posting, error) {
	if len(steps) == 0 {
		return nil, nil
	}
	first, rest := steps[0], steps[1:]
	label, ok := s.dict.Lookup(first.Name)
	var ctx []pathindex.Posting
	if ok {
		if first.Descendant {
			// Every posting of the label, root included: postings are in
			// document order, which is what collectDescendants produces
			// (with the root, if it matches, first).
			list, err := idx.Postings(label)
			if err != nil {
				return nil, err
			}
			ctx = list
		} else if idx.RootLabel() == label {
			if root, found, err := idx.Root(); err != nil {
				return nil, err
			} else if found {
				ctx = []pathindex.Posting{root}
			}
		}
	}
	ctx = applyPos(ctx, first.Pos)
	for _, st := range rest {
		if len(ctx) == 0 {
			break
		}
		label, ok := s.dict.Lookup(st.Name)
		if !ok {
			return nil, nil
		}
		list, err := idx.Postings(label)
		if err != nil {
			return nil, err
		}
		var next []pathindex.Posting
		for _, c := range ctx {
			within := pathindex.Within(list, c)
			var matches []pathindex.Posting
			if st.Descendant {
				matches = within
			} else {
				cDepth := idx.Path(c.Path).Depth
				for _, p := range within {
					pn := idx.Path(p.Path)
					if pn.Depth == cDepth+1 && pn.Parent == c.Path {
						matches = append(matches, p)
					}
				}
			}
			next = append(next, applyPos(matches, st.Pos)...)
		}
		ctx = next
	}
	return ctx, nil
}

// resolvePostings materializes postings as node refs. Matches are
// grouped by record so each matching record is loaded exactly once,
// regardless of how many matches it holds.
func (s *Store) resolvePostings(posts []pathindex.Posting) ([]core.NodeRef, error) {
	if len(posts) == 0 {
		return nil, nil
	}
	type group struct {
		locals    []int
		positions []int
	}
	order := make([]records.RID, 0, 8)
	groups := make(map[records.RID]*group)
	for i, p := range posts {
		g, ok := groups[p.RID]
		if !ok {
			g = &group{}
			groups[p.RID] = g
			order = append(order, p.RID)
		}
		g.locals = append(g.locals, int(p.Local))
		g.positions = append(g.positions, i)
	}
	out := make([]core.NodeRef, len(posts))
	for _, rid := range order {
		g := groups[rid]
		refs, err := s.trees.RefsByFacadeIndex(rid, g.locals)
		if err != nil {
			return nil, err
		}
		for j, pos := range g.positions {
			out[pos] = refs[j]
		}
	}
	return out, nil
}
