package docstore

import (
	"context"
	"errors"

	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/pathindex"
)

// The indexed evaluator answers a whole query from the path index when
// every step is a plain element name test: context sets are posting
// lists instead of node refs, descendant steps become binary-searched
// containment ranges over the step label's postings, and child steps
// additionally require the summary path of the candidate to extend the
// context node's path by exactly one label. Only the final matches are
// resolved to records; non-matching subtrees are never visited.
//
// Like the scan, the evaluator is a streaming producer: postings are
// pushed to an emit callback in document order and the recursion
// unwinds as soon as the callback asks it to stop, so a cursor that is
// closed (or a positional predicate that has been satisfied) stops
// probing posting lists. Posting blobs load lazily, one label at a
// time, on first probe.
//
// The semantics mirror the scan path exactly — per-context match lists,
// positional predicates applied per context node (globally for the
// first step), duplicates preserved for nested descendant contexts —
// so the two paths return identical results.

// indexFor returns a handle on the document's index when the query can
// use it: indexing is enabled, the document has a stored index, and
// every step is a plain name test (the "*" and "#text" tests match
// nodes the postings do not cover, so those queries fall back to the
// scan path). Only the index summary is loaded here; posting lists are
// read lazily, per step label.
func (s *Store) indexFor(info DocInfo, steps []Step) (*pathindex.Handle, error) {
	if s.pindex == nil || !s.indexOn || info.Mode != ModeTree {
		return nil, nil
	}
	for _, st := range steps {
		if st.Name == "*" || st.Name == "#text" {
			return nil, nil
		}
	}
	h, err := s.pindex.Get(info.Name)
	if errors.Is(err, pathindex.ErrCorrupt) {
		// A damaged index must not take queries down with it: the scan
		// path needs nothing from the index and is always correct.
		// ReindexDocument repairs the index.
		return nil, nil
	}
	return h, err
}

// streamIndexed streams the query's matching postings, in the same
// order (with the same duplicates) as the scan produces node refs. Step
// names are resolved through the label dictionary up front; a name that
// was never interned cannot occur in any document and matches nothing.
// emit may return errStopIteration to stop the evaluation early; the
// context is checked before every posting-blob load.
func (s *Store) streamIndexed(cx context.Context, idx *pathindex.Handle, steps []Step, emit func(pathindex.Posting) error) error {
	labels := make([]dict.LabelID, len(steps))
	for i, st := range steps {
		l, ok := s.dict.Lookup(st.Name)
		if !ok {
			return nil
		}
		labels[i] = l
	}
	err := s.indexedStep(cx, idx, pathindex.Posting{}, true, steps, labels, emit)
	if errors.Is(err, errStopIteration) {
		return errStopIteration
	}
	return err
}

// collectIndexed materializes the streamed postings (the eager Query
// and batch-resolution path).
func (s *Store) collectIndexed(cx context.Context, idx *pathindex.Handle, steps []Step) ([]pathindex.Posting, error) {
	var posts []pathindex.Posting
	err := s.streamIndexed(cx, idx, steps, func(p pathindex.Posting) error {
		posts = append(posts, p)
		return nil
	})
	return posts, err
}

// indexedStep evaluates the remaining steps against one context
// posting, mirroring scanStep: the first step's context is the whole
// document (descendant steps feed every posting of the label, a child
// step can only match the root), later steps range over the context's
// containment interval. A positional predicate recurses into the
// selected posting and then abandons the context's enumeration.
func (s *Store) indexedStep(cx context.Context, idx *pathindex.Handle, c pathindex.Posting, isRoot bool, steps []Step, labels []dict.LabelID, emit func(pathindex.Posting) error) error {
	if len(steps) == 0 {
		return emit(c)
	}
	st, label := steps[0], labels[0]
	count := 0
	sink := func(p pathindex.Posting) error {
		count++
		if st.Pos == 0 {
			return s.indexedStep(cx, idx, p, false, steps[1:], labels[1:], emit)
		}
		if count < st.Pos {
			return nil
		}
		if err := s.indexedStep(cx, idx, p, false, steps[1:], labels[1:], emit); err != nil {
			return err
		}
		return errStepDone
	}
	// Postings load a blob on first probe of the label — page fetches,
	// so honor cancellation first.
	if err := ctxErr(cx); err != nil {
		return err
	}
	var err error
	if isRoot {
		if st.Descendant {
			// Every posting of the label, root included: postings are in
			// document order, which is what the scan produces (with the
			// root, if it matches, first).
			var list []pathindex.Posting
			if list, err = idx.Postings(label); err == nil {
				err = feedPostings(list, sink)
			}
		} else if idx.RootLabel() == label {
			var root pathindex.Posting
			var found bool
			if root, found, err = idx.Root(); err == nil && found {
				err = sink(root)
			}
		}
	} else {
		var list []pathindex.Posting
		if list, err = idx.Postings(label); err == nil {
			within := pathindex.Within(list, c)
			if st.Descendant {
				err = feedPostings(within, sink)
			} else {
				cDepth := idx.Path(c.Path).Depth
				for _, p := range within {
					pn := idx.Path(p.Path)
					if pn.Depth == cDepth+1 && pn.Parent == c.Path {
						if err = sink(p); err != nil {
							break
						}
					}
				}
			}
		}
	}
	if errors.Is(err, errStepDone) {
		return nil
	}
	return err
}

// feedPostings pushes a posting slice through sink, stopping on error.
func feedPostings(list []pathindex.Posting, sink func(pathindex.Posting) error) error {
	for _, p := range list {
		if err := sink(p); err != nil {
			return err
		}
	}
	return nil
}

// resolvePosting materializes one posting as a node ref — the cursor
// path, where matches resolve one at a time as the consumer pulls them,
// so the records of unconsumed matches are never loaded. Consecutive
// matches in one record cost one record load each; the parsed-record
// cache makes the repeats decode-free.
//
//natix:noalloc
func (s *Store) resolvePosting(p pathindex.Posting) (core.NodeRef, error) {
	return s.trees.RefByFacadeIndex(p.RID, int(p.Local))
}

// resolvePostings materializes postings as node refs (the eager Query
// path). Postings arrive in document order and a record covers a
// contiguous pre-order range, so same-record matches come in runs:
// grouping by run loads each matching record once without building a
// RID map, and one scratch buffer carries every run's facade indices.
// A duplicate posting from a nested descendant context can split a
// run; the repeat load hits the parsed-record cache.
//
//natix:noalloc
func (s *Store) resolvePostings(posts []pathindex.Posting) ([]core.NodeRef, error) {
	if len(posts) == 0 {
		return nil, nil
	}
	out := make([]core.NodeRef, len(posts)) //natix:vet-ignore result buffer, one allocation per query
	var locals []int // reused across runs
	for i := 0; i < len(posts); {
		rid := posts[i].RID
		j := i
		locals = locals[:0]
		for j < len(posts) && posts[j].RID == rid {
			locals = append(locals, int(posts[j].Local)) //natix:vet-ignore run scratch, grows to longest run then reused
			j++
		}
		refs, err := s.trees.RefsByFacadeIndex(rid, locals)
		if err != nil {
			return nil, err
		}
		copy(out[i:j], refs)
		i = j
	}
	return out, nil
}
