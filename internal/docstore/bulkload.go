package docstore

// The bulk import fast path. ImportXML used to materialize the whole
// document as a DOM and replay it node by node through the paper's tree
// growth procedure — O(n·depth) record navigations, every record
// rewritten once per child placed in it, then a second full traversal
// to build the path index. The bulk path does the whole import in one
// pass: a streaming parse feeds the bottom-up record packer
// (core.BulkBuilder), labels are interned through a dictionary batch
// (one save per import instead of one per new label), and the path
// summary and postings are accumulated while records are emitted
// (pathindex.StreamBuilder), so the stored tree is never read back.
// Each physical record is written exactly once.
//
// The incremental insertion path survives as ImportTreeIncremental: it
// is what post-load mutations use (Document edits, InsertChild), the
// paper's measured insertion workload, and the baseline the import
// benchmarks compare against.

import (
	"context"
	"errors"
	"fmt"

	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/noderep"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

// DefaultBulkFill is the default bulk-load fill factor: records and
// pages are packed to 90% of capacity, leaving slack for later
// incremental updates to grow records in place.
const DefaultBulkFill = 0.9

// SetBulkFill configures the bulk-load fill factor (see
// core.BulkOptions.FillFactor). Zero restores the default.
func (s *Store) SetBulkFill(fill float64) { s.bulkFill = fill }

// bulkLoader drives one bulk import: parse events go to the record
// packer, labels to a dictionary batch, and (when indexing is on) every
// node and emitted record to the path-index stream builder.
type bulkLoader struct {
	s         *Store
	bb        *core.BulkBuilder
	sb        *pathindex.StreamBuilder // nil when indexing is off
	batch     labelBatch
	open      []*noderep.Node // open-element stack
	textLimit int
	nodes     int64 // logical nodes loaded

	// Text-token state: chunks of one character-data token (Cont events
	// from the stream parser) are re-joined so literal boundaries come
	// out exactly as the incremental path's insertText produces them —
	// full textLimit chunks plus a remainder — regardless of how the
	// parser split the token for memory. pend stays under textLimit and
	// is reused across tokens.
	pend    []byte
	runOpen bool

	// Slab arenas: loader-built nodes and literal payloads are carved
	// out of chunked block allocations instead of being allocated one by
	// one — the import's dominant allocation sites. A chunk is dropped
	// (left to the GC) the moment it fills; nothing outlives the import,
	// since emitted records only retain the builder's own proxy nodes.
	nodeSlab []noderep.Node
	textSlab []byte
}

// newNode carves one zeroed node from the node slab.
func (l *bulkLoader) newNode() *noderep.Node {
	if len(l.nodeSlab) == cap(l.nodeSlab) {
		l.nodeSlab = make([]noderep.Node, 0, 1024)
	}
	l.nodeSlab = l.nodeSlab[:len(l.nodeSlab)+1]
	return &l.nodeSlab[len(l.nodeSlab)-1]
}

// slabBytes copies b into the payload slab, capacity-clamped so later
// growth of the returned slice reallocates instead of clobbering a
// neighbor.
func (l *bulkLoader) slabBytes(b []byte) []byte {
	if len(l.textSlab)+len(b) > cap(l.textSlab) {
		c := 64 << 10
		if len(b) > c {
			c = len(b)
		}
		l.textSlab = make([]byte, 0, c)
	}
	base := len(l.textSlab)
	l.textSlab = append(l.textSlab, b...)
	return l.textSlab[base : base+len(b) : base+len(b)]
}

// labelBatch is the slice of the dictionary-batch surface the loader
// uses. Single-document imports hand the loader a *dict.Batch directly;
// the multi-document batch import substitutes a mutex-wrapped batch
// shared by all shards (see pipeline.go).
type labelBatch interface {
	Intern(name string) (dict.LabelID, error)
	Commit() error
}

func (s *Store) newBulkLoader() *bulkLoader {
	return s.newBulkLoaderWith(s.dict.NewBatch())
}

// newBulkLoaderWith builds a loader around an externally owned
// dictionary batch.
func (s *Store) newBulkLoaderWith(batch labelBatch) *bulkLoader {
	l := &bulkLoader{
		s:         s,
		batch:     batch,
		textLimit: s.trees.Records().MaxRecordSize() / 2,
	}
	fill := s.bulkFill
	if fill == 0 {
		fill = DefaultBulkFill
	}
	var onRecord func(records.RID, *noderep.Node) error
	if s.pindex != nil && s.indexOn {
		l.sb = pathindex.NewStreamBuilder()
		onRecord = l.sb.OnRecord
	}
	l.bb = s.trees.NewBulkBuilder(core.BulkOptions{FillFactor: fill, OnRecord: onRecord})
	return l
}

// openElement starts an element, materializing its attributes as
// "@name" aggregates first — the same shape the incremental path
// builds.
func (l *bulkLoader) openElement(name string, attrs []xmlkit.Attr) error {
	if err := l.flushTextRun(); err != nil {
		return err
	}
	if err := l.enterAggregate(name); err != nil {
		return err
	}
	for _, a := range attrs {
		if err := l.enterAggregate(AttrPrefix + a.Name); err != nil {
			return err
		}
		if err := l.literal(a.Value); err != nil {
			return err
		}
		if err := l.closeElement(); err != nil {
			return err
		}
	}
	return nil
}

// enterAggregate opens one facade aggregate (element or attribute).
func (l *bulkLoader) enterAggregate(name string) error {
	label, err := l.batch.Intern(name)
	if err != nil {
		return err
	}
	n := l.newNode()
	n.Kind = noderep.KindAggregate
	n.Label = label
	if l.sb != nil {
		l.sb.Enter(n)
	}
	if err := l.bb.Open(n); err != nil {
		return err
	}
	l.open = append(l.open, n)
	l.nodes++
	return nil
}

// closeElement ends the innermost element. The index exit must precede
// the builder close: closing may emit the element's record, and the
// index needs the element registered by then.
func (l *bulkLoader) closeElement() error {
	if err := l.flushTextRun(); err != nil {
		return err
	}
	if len(l.open) == 0 {
		return errors.New("docstore: bulk close without open element")
	}
	n := l.open[len(l.open)-1]
	l.open = l.open[:len(l.open)-1]
	if l.sb != nil {
		if err := l.sb.Exit(n); err != nil {
			return err
		}
	}
	_, err := l.bb.Close()
	return err
}

// literal adds one text literal (no chunking — attribute values). Only
// called between text runs (openElement flushes first), so borrowing the
// empty pend buffer as scratch is safe; it is left empty again.
func (l *bulkLoader) literal(text string) error {
	l.pend = append(l.pend[:0], text...)
	err := l.literalBytes(l.pend)
	l.pend = l.pend[:0]
	return err
}

// literalBytes adds one text literal from a transient byte slice; the
// payload is copied into the loader's slab.
func (l *bulkLoader) literalBytes(b []byte) error {
	if l.sb != nil {
		l.sb.Literal()
	}
	l.nodes++
	n := l.newNode()
	n.Kind = noderep.KindLiteral
	n.Label = dict.Text
	n.LitType = noderep.LitString
	n.Payload = l.slabBytes(b)
	return l.bb.Leaf(n)
}

// text adds one chunk of character data. cont marks a continuation of
// the token the previous chunk belonged to; a fresh token first seals
// the pending one. Full textLimit chunks are emitted eagerly (memory
// stays bounded), the tail at token end — so a token becomes exactly
// the sibling literals insertText would produce, however the parser
// split it (TextContent and export concatenate them back).
func (l *bulkLoader) text(text string, cont bool) error {
	if !cont {
		if err := l.flushTextRun(); err != nil {
			return err
		}
	}
	l.runOpen = true
	l.pend = append(l.pend, text...)
	for len(l.pend) > l.textLimit {
		if err := l.literalBytes(l.pend[:l.textLimit]); err != nil {
			return err
		}
		l.pend = l.pend[:copy(l.pend, l.pend[l.textLimit:])]
	}
	return nil
}

// flushTextRun seals the pending character-data token, emitting its
// final literal.
func (l *bulkLoader) flushTextRun() error {
	if !l.runOpen {
		return nil
	}
	l.runOpen = false
	err := l.literalBytes(l.pend)
	l.pend = l.pend[:0]
	return err
}

// apply feeds one parse event into the loader — the packer half of the
// import pipeline (see pipeline.go).
func (l *bulkLoader) apply(ev *xmlkit.Event) error {
	switch ev.Kind {
	case xmlkit.EventStart:
		return l.openElement(ev.Name, ev.Attrs)
	case xmlkit.EventEnd:
		return l.closeElement()
	case xmlkit.EventText:
		return l.text(ev.Text, ev.Cont)
	}
	return nil
}

// loadDOM replays an already parsed tree through the loader (ImportTree
// and Convert hold a DOM; ImportXML streams and never builds one).
func (l *bulkLoader) loadDOM(cx context.Context, n *xmlkit.Node) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	if n.IsText() {
		return l.text(n.Text, false) // each DOM text node is one token
	}
	if err := l.openElement(n.Name, n.Attrs); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := l.loadDOM(cx, c); err != nil {
			return err
		}
	}
	return l.closeElement()
}

// releaseScratch drops the loader's import-time ballast (slab tails,
// builder pools, recycled record bodies) once its document is sealed.
// The batch import keeps every shard's loader reachable until the whole
// batch commits; without this, dozens of finished loaders' scratch
// stays live and taxes the GC for the remaining shards. Abort (and so
// rollback) still works on a released loader.
func (l *bulkLoader) releaseScratch() {
	l.bb.ReleaseScratch()
	l.nodeSlab, l.textSlab, l.pend, l.open = nil, nil, nil, nil
}

// abort rolls back everything the loader stored — the pre-WAL
// best-effort path: it deletes the records the builder materialized.
// With a log attached it is a no-op; Mutate's log-driven rollback
// restores every touched page wholesale instead (see wal.go).
func (s *Store) abortBulk(l *bulkLoader) {
	if s.walW != nil {
		return
	}
	_ = l.bb.Abort()
}

// importStreamLocked runs a bulk import off a streaming parser —
// pipelined: the parser produces event batches on its own goroutine
// while this goroutine packs them (see pipeline.go). Mutator context.
// sp is the operation's root span (nil when tracing is off); the
// parse-and-pack pipeline and the finish work become phases on it.
func (s *Store) importStreamLocked(cx context.Context, name string, p *xmlkit.StreamParser, sp *telemetry.Span) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	l := s.newBulkLoader()
	if err := s.runImportPipeline(cx, l, p, sp); err != nil {
		s.abortBulk(l)
		return DocInfo{}, err
	}
	return s.finishBulkImport(name, l, sp)
}

// importTreeLocked runs a bulk import over a parsed tree. Mutator
// context. sp as in importStreamLocked.
func (s *Store) importTreeLocked(cx context.Context, name string, root *xmlkit.Node, sp *telemetry.Span) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if root.IsText() {
		return DocInfo{}, errors.New("docstore: document root must be an element")
	}
	l := s.newBulkLoader()
	ch := sp.Child("load")
	if err := l.loadDOM(cx, root); err != nil {
		ch.End()
		s.abortBulk(l)
		return DocInfo{}, err
	}
	ch.Add("nodes", l.nodes)
	ch.End()
	return s.finishBulkImport(name, l, sp)
}

// finishBulkImport seals the build — flush the last page, persist the
// dictionary batch, store the stream-built index — and registers the
// document. Any failure rolls the whole import back.
func (s *Store) finishBulkImport(name string, l *bulkLoader, sp *telemetry.Span) (DocInfo, error) {
	fail := func(err error) (DocInfo, error) {
		s.abortBulk(l)
		return DocInfo{}, err
	}
	ch := sp.Child("finish")
	root, err := l.bb.Finish()
	if err != nil {
		ch.End()
		return fail(err)
	}
	s.mImportWriteNS.Add(l.bb.BatchStats().WriteNS)
	if err := l.batch.Commit(); err != nil {
		ch.End()
		return fail(err)
	}
	ch.End()
	info := &DocInfo{Name: name, Mode: ModeTree, Root: root}
	// Index before registering: a failed build must not leave a
	// registered-but-unindexed document behind a returned error.
	if l.sb != nil {
		ch = sp.Child("index")
		idx, err := l.sb.Finish()
		if err != nil {
			ch.End()
			return fail(err)
		}
		if err := s.pindex.Put(name, idx); err != nil {
			ch.End()
			return fail(err)
		}
		s.builds.Add(1)
		ch.End()
	}
	if err := s.register(info); err != nil {
		if l.sb != nil && s.walW == nil {
			_ = s.pindex.Drop(name) // best-effort rollback (log-driven otherwise)
		}
		return fail(err)
	}
	return *info, nil
}
