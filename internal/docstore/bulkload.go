package docstore

// The bulk import fast path. ImportXML used to materialize the whole
// document as a DOM and replay it node by node through the paper's tree
// growth procedure — O(n·depth) record navigations, every record
// rewritten once per child placed in it, then a second full traversal
// to build the path index. The bulk path does the whole import in one
// pass: a streaming parse feeds the bottom-up record packer
// (core.BulkBuilder), labels are interned through a dictionary batch
// (one save per import instead of one per new label), and the path
// summary and postings are accumulated while records are emitted
// (pathindex.StreamBuilder), so the stored tree is never read back.
// Each physical record is written exactly once.
//
// The incremental insertion path survives as ImportTreeIncremental: it
// is what post-load mutations use (Document edits, InsertChild), the
// paper's measured insertion workload, and the baseline the import
// benchmarks compare against.

import (
	"context"
	"errors"
	"fmt"
	"io"

	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/noderep"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

// DefaultBulkFill is the default bulk-load fill factor: records and
// pages are packed to 90% of capacity, leaving slack for later
// incremental updates to grow records in place.
const DefaultBulkFill = 0.9

// SetBulkFill configures the bulk-load fill factor (see
// core.BulkOptions.FillFactor). Zero restores the default.
func (s *Store) SetBulkFill(fill float64) { s.bulkFill = fill }

// bulkLoader drives one bulk import: parse events go to the record
// packer, labels to a dictionary batch, and (when indexing is on) every
// node and emitted record to the path-index stream builder.
type bulkLoader struct {
	s         *Store
	bb        *core.BulkBuilder
	sb        *pathindex.StreamBuilder // nil when indexing is off
	batch     *dict.Batch
	open      []*noderep.Node // open-element stack
	textLimit int
	nodes     int64 // logical nodes loaded

	// Text-token state: chunks of one character-data token (Cont events
	// from the stream parser) are re-joined so literal boundaries come
	// out exactly as the incremental path's insertText produces them —
	// full textLimit chunks plus a remainder — regardless of how the
	// parser split the token for memory. pendText stays under textLimit.
	pendText string
	runOpen  bool
}

func (s *Store) newBulkLoader() *bulkLoader {
	l := &bulkLoader{
		s:         s,
		batch:     s.dict.NewBatch(),
		textLimit: s.trees.Records().MaxRecordSize() / 2,
	}
	fill := s.bulkFill
	if fill == 0 {
		fill = DefaultBulkFill
	}
	var onRecord func(records.RID, *noderep.Node) error
	if s.pindex != nil && s.indexOn {
		l.sb = pathindex.NewStreamBuilder()
		onRecord = l.sb.OnRecord
	}
	l.bb = s.trees.NewBulkBuilder(core.BulkOptions{FillFactor: fill, OnRecord: onRecord})
	return l
}

// openElement starts an element, materializing its attributes as
// "@name" aggregates first — the same shape the incremental path
// builds.
func (l *bulkLoader) openElement(name string, attrs []xmlkit.Attr) error {
	if err := l.flushTextRun(); err != nil {
		return err
	}
	if err := l.enterAggregate(name); err != nil {
		return err
	}
	for _, a := range attrs {
		if err := l.enterAggregate(AttrPrefix + a.Name); err != nil {
			return err
		}
		if err := l.literal(a.Value); err != nil {
			return err
		}
		if err := l.closeElement(); err != nil {
			return err
		}
	}
	return nil
}

// enterAggregate opens one facade aggregate (element or attribute).
func (l *bulkLoader) enterAggregate(name string) error {
	label, err := l.batch.Intern(name)
	if err != nil {
		return err
	}
	n := noderep.NewAggregate(label)
	if l.sb != nil {
		l.sb.Enter(n)
	}
	if err := l.bb.Open(n); err != nil {
		return err
	}
	l.open = append(l.open, n)
	l.nodes++
	return nil
}

// closeElement ends the innermost element. The index exit must precede
// the builder close: closing may emit the element's record, and the
// index needs the element registered by then.
func (l *bulkLoader) closeElement() error {
	if err := l.flushTextRun(); err != nil {
		return err
	}
	if len(l.open) == 0 {
		return errors.New("docstore: bulk close without open element")
	}
	n := l.open[len(l.open)-1]
	l.open = l.open[:len(l.open)-1]
	if l.sb != nil {
		if err := l.sb.Exit(n); err != nil {
			return err
		}
	}
	_, err := l.bb.Close()
	return err
}

// literal adds one text literal (no chunking — attribute values).
func (l *bulkLoader) literal(text string) error {
	if l.sb != nil {
		l.sb.Literal()
	}
	l.nodes++
	return l.bb.Leaf(noderep.NewTextLiteral(text))
}

// text adds one chunk of character data. cont marks a continuation of
// the token the previous chunk belonged to; a fresh token first seals
// the pending one. Full textLimit chunks are emitted eagerly (memory
// stays bounded), the tail at token end — so a token becomes exactly
// the sibling literals insertText would produce, however the parser
// split it (TextContent and export concatenate them back).
func (l *bulkLoader) text(text string, cont bool) error {
	if !cont {
		if err := l.flushTextRun(); err != nil {
			return err
		}
	}
	l.runOpen = true
	l.pendText += text
	for len(l.pendText) > l.textLimit {
		if err := l.literal(l.pendText[:l.textLimit]); err != nil {
			return err
		}
		l.pendText = l.pendText[l.textLimit:]
	}
	return nil
}

// flushTextRun seals the pending character-data token, emitting its
// final literal.
func (l *bulkLoader) flushTextRun() error {
	if !l.runOpen {
		return nil
	}
	l.runOpen = false
	tail := l.pendText
	l.pendText = ""
	return l.literal(tail)
}

// loadDOM replays an already parsed tree through the loader (ImportTree
// and Convert hold a DOM; ImportXML streams and never builds one).
func (l *bulkLoader) loadDOM(cx context.Context, n *xmlkit.Node) error {
	if err := ctxErr(cx); err != nil {
		return err
	}
	if n.IsText() {
		return l.text(n.Text, false) // each DOM text node is one token
	}
	if err := l.openElement(n.Name, n.Attrs); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := l.loadDOM(cx, c); err != nil {
			return err
		}
	}
	return l.closeElement()
}

// abort rolls back everything the loader stored — the pre-WAL
// best-effort path: it deletes the records the builder materialized.
// With a log attached it is a no-op; Mutate's log-driven rollback
// restores every touched page wholesale instead (see wal.go).
func (s *Store) abortBulk(l *bulkLoader) {
	if s.walW != nil {
		return
	}
	_ = l.bb.Abort()
}

// importStreamLocked runs a bulk import off a streaming parser.
// Mutator context. sp is the operation's root span (nil when tracing
// is off); the parse-and-pack loop and the finish work become phases
// on it.
func (s *Store) importStreamLocked(cx context.Context, name string, p *xmlkit.StreamParser, sp *telemetry.Span) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	l := s.newBulkLoader()
	ch := sp.Child("stream")
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = ctxErr(cx)
		}
		if err == nil {
			switch ev.Kind {
			case xmlkit.EventStart:
				err = l.openElement(ev.Name, ev.Attrs)
			case xmlkit.EventEnd:
				err = l.closeElement()
			case xmlkit.EventText:
				err = l.text(ev.Text, ev.Cont)
			}
		}
		if err != nil {
			ch.End()
			s.abortBulk(l)
			return DocInfo{}, err
		}
	}
	ch.Add("nodes", l.nodes)
	ch.End()
	return s.finishBulkImport(name, l, sp)
}

// importTreeLocked runs a bulk import over a parsed tree. Mutator
// context. sp as in importStreamLocked.
func (s *Store) importTreeLocked(cx context.Context, name string, root *xmlkit.Node, sp *telemetry.Span) (DocInfo, error) {
	if _, ok := s.lookup(name); ok {
		return DocInfo{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if root.IsText() {
		return DocInfo{}, errors.New("docstore: document root must be an element")
	}
	l := s.newBulkLoader()
	ch := sp.Child("load")
	if err := l.loadDOM(cx, root); err != nil {
		ch.End()
		s.abortBulk(l)
		return DocInfo{}, err
	}
	ch.Add("nodes", l.nodes)
	ch.End()
	return s.finishBulkImport(name, l, sp)
}

// finishBulkImport seals the build — flush the last page, persist the
// dictionary batch, store the stream-built index — and registers the
// document. Any failure rolls the whole import back.
func (s *Store) finishBulkImport(name string, l *bulkLoader, sp *telemetry.Span) (DocInfo, error) {
	fail := func(err error) (DocInfo, error) {
		s.abortBulk(l)
		return DocInfo{}, err
	}
	ch := sp.Child("finish")
	root, err := l.bb.Finish()
	if err != nil {
		ch.End()
		return fail(err)
	}
	if err := l.batch.Commit(); err != nil {
		ch.End()
		return fail(err)
	}
	ch.End()
	info := &DocInfo{Name: name, Mode: ModeTree, Root: root}
	// Index before registering: a failed build must not leave a
	// registered-but-unindexed document behind a returned error.
	if l.sb != nil {
		ch = sp.Child("index")
		idx, err := l.sb.Finish()
		if err != nil {
			ch.End()
			return fail(err)
		}
		if err := s.pindex.Put(name, idx); err != nil {
			ch.End()
			return fail(err)
		}
		s.builds.Add(1)
		ch.End()
	}
	if err := s.register(info); err != nil {
		if l.sb != nil && s.walW == nil {
			_ = s.pindex.Drop(name) // best-effort rollback (log-driven otherwise)
		}
		return fail(err)
	}
	return *info, nil
}
