package docstore

// The pipelined import path. A bulk import has three stages with very
// different cost profiles: tokenizing the input (pure CPU over the read
// window), packing events into records (pure CPU over the builder
// frames), and flushing full pages (buffer-pool and log traffic, done
// by records.BatchWriter's flusher goroutine). importStreamLocked used
// to run the first two in one loop on one goroutine; here the parser
// runs as a producer goroutine handing event batches across a bounded
// channel to the packing loop, so parse and pack overlap — and, through
// the BatchWriter, page flushing overlaps with both.
//
// ImportXMLBatch extends the same idea across documents: a multi-
// document corpus is sharded one-document-per-worker over N concurrent
// import pipelines inside a single logged operation. Each shard owns a
// full loader (builder, batch writer, index stream builder), so shards
// share only the allocator (serialized by segment.allocMu), the buffer
// pool and the log (both internally synchronized), and one dictionary
// batch behind a mutex. Every record is still written exactly once;
// the result is byte-identical to importing the documents serially.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"natix/internal/dict"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/telemetry"
	"natix/internal/xmlkit"
)

const (
	// eventBatchLen is how many parse events travel together across the
	// stage boundary; batching amortizes the channel handoff and the
	// goroutine switches it implies (a batch is ~100KB of document).
	eventBatchLen = 1024
	// eventQueueLen bounds the batches in flight between parser and
	// packer: enough to ride out stage jitter, small enough that a slow
	// packer backpressures the parser instead of buffering the document.
	eventQueueLen = 4
)

// importInline folds the parse and pack stages into one goroutine when
// there is only one CPU to run them on: the stages cannot overlap, so
// the channel handoff would be pure scheduler overhead. Tests override
// it to pin down one path or the other.
var importInline = runtime.GOMAXPROCS(0) == 1

// eventBatch is one producer→packer handoff: n valid events, or a
// terminal parser error.
type eventBatch struct {
	evs []xmlkit.Event
	n   int
	err error
}

// runImportPipeline drives one document through the two-goroutine
// parse/pack pipeline, feeding l with every event p produces. The
// context is checked per batch. On error the loader is left unaborted
// (callers own rollback).
func (s *Store) runImportPipeline(cx context.Context, l *bulkLoader, p *xmlkit.StreamParser, sp *telemetry.Span) error {
	ch := sp.Child("stream")
	defer ch.End()

	if importInline {
		return s.runImportInline(cx, l, p, ch)
	}

	out := make(chan eventBatch, eventQueueLen)
	free := make(chan []xmlkit.Event, eventQueueLen+1)
	quit := make(chan struct{})
	var parseNS atomic.Int64

	go func() {
		defer close(out)
		for {
			var buf []xmlkit.Event
			select {
			case buf = <-free:
			default:
				buf = make([]xmlkit.Event, eventBatchLen)
			}
			t0 := telemetry.Now()
			n, err := p.ReadBatch(buf)
			parseNS.Add(int64(telemetry.Since(t0)))
			if n > 0 {
				select {
				case out <- eventBatch{evs: buf, n: n}:
					continue
				case <-quit:
					return
				}
			}
			if err != nil && err != io.EOF {
				select {
				case out <- eventBatch{err: err}:
				case <-quit:
				}
			}
			return
		}
	}()

	var err error
	var packNS int64
recv:
	for b := range out {
		if b.err != nil {
			err = b.err
			break
		}
		t0 := telemetry.Now()
		for i := 0; i < b.n; i++ {
			if err = l.apply(&b.evs[i]); err != nil {
				break
			}
		}
		packNS += int64(telemetry.Since(t0))
		if err == nil {
			err = ctxErr(cx)
		}
		if err != nil {
			break recv
		}
		select {
		case free <- b.evs:
		default:
		}
	}
	close(quit)
	for range out { // unblock and drain the producer
	}
	s.mImportParseNS.Add(parseNS.Load())
	s.mImportPackNS.Add(packNS)
	ch.Add("nodes", l.nodes)
	return err
}

// runImportInline is the single-goroutine degradation of the pipeline:
// the same batched parse/apply loop with the same cancellation points
// and stage accounting, minus the channel handoff.
func (s *Store) runImportInline(cx context.Context, l *bulkLoader, p *xmlkit.StreamParser, ch *telemetry.Span) error {
	buf := make([]xmlkit.Event, eventBatchLen)
	var parseNS, packNS int64
	var err error
	for err == nil {
		t0 := telemetry.Now()
		n, rerr := p.ReadBatch(buf)
		parseNS += int64(telemetry.Since(t0))
		if n > 0 {
			t0 = telemetry.Now()
			for i := 0; i < n; i++ {
				if err = l.apply(&buf[i]); err != nil {
					break
				}
			}
			packNS += int64(telemetry.Since(t0))
			if err == nil {
				err = ctxErr(cx)
			}
			continue
		}
		if rerr != io.EOF {
			err = rerr
		}
		break
	}
	s.mImportParseNS.Add(parseNS)
	s.mImportPackNS.Add(packNS)
	ch.Add("nodes", l.nodes)
	return err
}

// lockedBatch shares one dictionary batch between concurrent import
// shards. The underlying dict.Batch requires external serialization;
// the shards' only other shared mutable state is already synchronized
// below this layer.
type lockedBatch struct {
	mu sync.Mutex
	b  *dict.Batch
}

func (lb *lockedBatch) Intern(name string) (dict.LabelID, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Intern(name)
}

func (lb *lockedBatch) Commit() error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Commit()
}

// ImportDoc names one input of a multi-document import.
type ImportDoc struct {
	Name string
	R    io.Reader
}

// ImportXMLBatch imports several documents in one logged operation,
// sharded one-document-per-worker over up to workers concurrent import
// pipelines (workers <= 0 means GOMAXPROCS). The whole batch commits or
// rolls back atomically: any failure — parse error, cancellation,
// duplicate name — leaves the store exactly as it was. The stored bytes
// are identical to importing the documents one by one in input order.
func (s *Store) ImportXMLBatch(cx context.Context, docs []ImportDoc, workers int) ([]DocInfo, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	names := make([]string, len(docs))
	for i, d := range docs {
		names[i] = d.Name
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("%w: %q appears twice in batch", ErrDuplicate, sorted[i])
		}
	}

	sp := s.startOp("import_batch", fmt.Sprintf("%d documents", len(docs)))
	defer sp.End()
	sp.Add("docs", int64(len(docs)))
	sp.Add("workers", int64(workers))
	s.mImports.Add(int64(len(docs)))
	s.mMutations.Inc()

	// Same lock order as Mutate — document locks (in sorted order, so
	// two concurrent batches cannot deadlock against each other), then
	// the writer mutex.
	for _, name := range sorted {
		s.lockFor(name).Lock()
	}
	defer func() {
		for i := len(sorted) - 1; i >= 0; i-- {
			s.lockFor(sorted[i]).Unlock()
		}
	}()
	s.wmu.Lock()
	defer s.wmu.Unlock()

	var infos []DocInfo
	err := s.runOp("import_batch", func() error {
		var err error
		infos, err = s.importBatchLocked(cx, docs, workers, sp)
		return err
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// importBatchLocked runs the sharded import. Mutator context, inside
// the batch's logged operation.
func (s *Store) importBatchLocked(cx context.Context, docs []ImportDoc, workers int, sp *telemetry.Span) ([]DocInfo, error) {
	for _, d := range docs {
		if _, ok := s.lookup(d.Name); ok {
			return nil, fmt.Errorf("%w: %q", ErrDuplicate, d.Name)
		}
	}
	cctx, cancel := context.WithCancel(orBackground(cx))
	defer cancel()

	shared := &lockedBatch{b: s.dict.NewBatch()}
	loaders := make([]*bulkLoader, len(docs))
	roots := make([]records.RID, len(docs))
	idxs := make([]*pathindex.Index, len(docs))
	writeNS := make([]int64, len(docs))
	errs := make([]error, len(docs))

	// One shard per document, at most workers in flight. Each worker
	// runs the full per-document pipeline and seals its own builder
	// (bb.Finish flushes the shard's last page; sb.Finish sorts the
	// shard's postings) so only catalog-order work remains serialized.
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range docs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cctx.Err() != nil {
				errs[i] = cctx.Err()
				return
			}
			l := s.newBulkLoaderWith(shared)
			loaders[i] = l
			p := xmlkit.NewStreamParser(docs[i].R, xmlkit.ParseOptions{})
			// Spans are single-goroutine (a child End appends to its
			// parent); concurrent shards report through the stage-time
			// counters instead.
			err := s.runImportPipeline(cctx, l, p, nil)
			if err == nil {
				roots[i], err = l.bb.Finish()
			}
			if err == nil && l.sb != nil {
				idxs[i], err = l.sb.Finish()
			}
			if err != nil {
				errs[i] = err
				cancel() // fail fast: unblock sibling shards
				return
			}
			writeNS[i] = l.bb.BatchStats().WriteNS
			l.releaseScratch()
		}(i)
	}
	wg.Wait()

	fail := func(err error) ([]DocInfo, error) {
		for _, l := range loaders {
			if l != nil {
				s.abortBulk(l)
			}
		}
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}

	// Serialized epilogue, in input order: one dictionary save for the
	// whole batch, then each document's index and catalog entry.
	if err := shared.Commit(); err != nil {
		return fail(err)
	}
	infos := make([]DocInfo, 0, len(docs))
	var indexed, registered []string
	undo := func(err error) ([]DocInfo, error) {
		if s.walW != nil {
			return fail(err) // log-driven rollback undoes pages and catalog
		}
		for _, name := range indexed { // best-effort, like abortBulk
			_ = s.pindex.Drop(name)
		}
		if len(registered) > 0 {
			s.cmu.Lock()
			for _, name := range registered {
				delete(s.catalog, name)
			}
			s.cmu.Unlock()
			_ = s.saveCatalog()
		}
		return fail(err)
	}
	for i := range loaders {
		s.mImportWriteNS.Add(writeNS[i])
		info := &DocInfo{Name: docs[i].Name, Mode: ModeTree, Root: roots[i]}
		if idxs[i] != nil {
			if err := s.pindex.Put(info.Name, idxs[i]); err != nil {
				return undo(err)
			}
			indexed = append(indexed, info.Name)
			s.builds.Add(1)
		}
		if err := s.register(info); err != nil {
			return undo(err)
		}
		registered = append(registered, info.Name)
		infos = append(infos, *info)
	}
	return infos, nil
}

// orBackground lets nil contexts (the non-Context entry points) flow
// through context.WithCancel.
func orBackground(cx context.Context) context.Context {
	if cx == nil {
		return context.Background()
	}
	return cx
}
