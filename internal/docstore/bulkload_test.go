package docstore

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"natix/internal/core"
	"natix/internal/pathindex"
	"natix/internal/xmlkit"
)

// genXML builds deterministic documents of controlled shape.
func genXML(shape string) string {
	rng := rand.New(rand.NewSource(2024))
	var b strings.Builder
	word := func() string {
		words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
		return words[rng.Intn(len(words))]
	}
	switch shape {
	case "deep":
		depth := 100
		b.WriteString("<root>")
		for i := 0; i < depth; i++ {
			fmt.Fprintf(&b, "<nest level=\"%d\">", i)
		}
		b.WriteString("bottom")
		for i := 0; i < depth; i++ {
			b.WriteString("</nest>")
		}
		b.WriteString("</root>")
	case "wide":
		b.WriteString("<root>")
		for i := 0; i < 1500; i++ {
			fmt.Fprintf(&b, "<item n=\"%d\">%s</item>", i, word())
		}
		b.WriteString("</root>")
	case "mixedText":
		b.WriteString("<doc>")
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "<sec>intro %s<p>%s</p>", word(), strings.Repeat(word()+" ", 400))
			b.WriteString(strings.Repeat("tail text ", 300)) // > chunk limit at small pages
			b.WriteString("<note>done</note></sec>")
		}
		b.WriteString("</doc>")
	case "attrHeavy":
		b.WriteString("<cfg>")
		for i := 0; i < 200; i++ {
			fmt.Fprintf(&b, `<entry a="%d" b="%s" c="x&amp;y" dddd="%s" e="">v</entry>`,
				i, word(), strings.Repeat("attr ", 20))
		}
		b.WriteString("</cfg>")
	}
	return b.String()
}

var shapeQueries = map[string][]string{
	"deep":      {"//nest", "/root/nest/nest", "//nest[1]", "//@level"},
	"wide":      {"//item", "/root/item[700]", "//item[2]", "//*"},
	"mixedText": {"//sec", "//p", "//note", "/doc/sec[7]/p", "//sec[3]//#text"},
	"attrHeavy": {"//entry", "//@b", "//entry[150]", "//@e"},
}

// TestBulkVsIncrementalEquivalence: a document loaded through the bulk
// path must export byte-identically to one grown incrementally, and
// all three evaluators (navigating scan, posting-list index, flat
// parse) must agree on every query, across shapes.
func TestBulkVsIncrementalEquivalence(t *testing.T) {
	for shape := range shapeQueries {
		t.Run(shape, func(t *testing.T) {
			src := genXML(shape)
			doc, err := xmlkit.ParseString(src, xmlkit.ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Incremental reference store (scan evaluator).
			sInc, _ := newDocStore(t, 2048, core.Config{})
			if _, err := sInc.ImportTreeIncremental("d", doc.Root); err != nil {
				t.Fatal(err)
			}
			// Bulk store with path index (indexed evaluator) + flat copy.
			sBulk, _ := newDocStore(t, 2048, core.Config{})
			px, err := pathindex.Open(sBulk.Trees().Records())
			if err != nil {
				t.Fatal(err)
			}
			sBulk.EnablePathIndex(px)
			if _, err := sBulk.ImportXML("d", strings.NewReader(src)); err != nil {
				t.Fatal(err)
			}
			if _, err := sBulk.ImportFlat("flat", strings.NewReader(src)); err != nil {
				t.Fatal(err)
			}

			// Physical invariants on the bulk tree.
			tree, err := sBulk.Tree("d")
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("bulk invariants: %v", err)
			}

			// Byte-identical export.
			var incOut, bulkOut strings.Builder
			if err := sInc.ExportXML("d", &incOut); err != nil {
				t.Fatal(err)
			}
			if err := sBulk.ExportXML("d", &bulkOut); err != nil {
				t.Fatal(err)
			}
			if incOut.String() != bulkOut.String() {
				t.Fatalf("bulk export differs from incremental export (%d vs %d bytes)",
					bulkOut.Len(), incOut.Len())
			}

			// Evaluator agreement. Scan and indexed run over the same
			// stored form and must agree on text content exactly; the
			// flat evaluator re-parses the markup, so it is compared on
			// serialized matches (tree-mode Text includes "@attr"
			// literals and chunk boundaries by design).
			for _, q := range shapeQueries[shape] {
				scan := runQueryTexts(t, sInc, "d", q)
				indexed := runQueryTexts(t, sBulk, "d", q)
				if strings.Join(scan, "\x00") != strings.Join(indexed, "\x00") {
					t.Fatalf("query %q: indexed (%d) != scan (%d)", q, len(indexed), len(scan))
				}
				if len(scan) == 0 && !strings.Contains(q, "[") {
					t.Fatalf("query %q matched nothing — vacuous case", q)
				}
				if strings.Contains(q, "#text") || strings.Contains(q, "@") {
					// Flat text nodes are unchunked and flat attributes are
					// not nodes; both diverge from tree mode by design.
					continue
				}
				scanM := runQueryMarkup(t, sBulk, "d", q)
				flatM := runQueryMarkup(t, sBulk, "flat", q)
				if strings.Join(scanM, "\x00") != strings.Join(flatM, "\x00") {
					t.Fatalf("query %q: flat (%d) != tree (%d) serialized matches", q, len(flatM), len(scanM))
				}
			}
		})
	}
}

func runQueryTexts(t *testing.T, s *Store, doc, q string) []string {
	t.Helper()
	res, err := s.Query(doc, q)
	if err != nil {
		t.Fatalf("query %q on %s: %v", q, doc, err)
	}
	out := make([]string, len(res))
	for i, r := range res {
		txt, err := r.Text()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = txt
	}
	return out
}

func runQueryMarkup(t *testing.T, s *Store, doc, q string) []string {
	t.Helper()
	res, err := s.Query(doc, q)
	if err != nil {
		t.Fatalf("query %q on %s: %v", q, doc, err)
	}
	out := make([]string, len(res))
	for i, r := range res {
		m, err := r.Markup()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// TestBulkStreamIndexMatchesRebuild: the index built during the load
// must equal what a post-hoc traversal (pathindex.Build) computes from
// the stored tree — postings, paths and counts.
func TestBulkStreamIndexMatchesRebuild(t *testing.T) {
	for shape := range shapeQueries {
		t.Run(shape, func(t *testing.T) {
			s, _ := newDocStore(t, 2048, core.Config{})
			px, err := pathindex.Open(s.Trees().Records())
			if err != nil {
				t.Fatal(err)
			}
			s.EnablePathIndex(px)
			info, err := s.ImportXML("d", strings.NewReader(genXML(shape)))
			if err != nil {
				t.Fatal(err)
			}
			h, err := px.Get("d")
			if err != nil {
				t.Fatal(err)
			}
			if h == nil {
				t.Fatal("no stream-built index stored")
			}
			want, err := pathindex.Build(s.Trees(), info.Root)
			if err != nil {
				t.Fatal(err)
			}
			if h.NumNodes() != want.NumNodes() {
				t.Fatalf("NumNodes: stream %d, rebuild %d", h.NumNodes(), want.NumNodes())
			}
			if h.NumPaths() != want.NumPaths() {
				t.Fatalf("NumPaths: stream %d, rebuild %d", h.NumPaths(), want.NumPaths())
			}
			if h.RootLabel() != want.RootLabel() {
				t.Fatalf("RootLabel: stream %d, rebuild %d", h.RootLabel(), want.RootLabel())
			}
			wantLabels := want.PostingLabels()
			gotLabels := h.PostingLabels()
			if len(gotLabels) != len(wantLabels) {
				t.Fatalf("labels: stream %d, rebuild %d", len(gotLabels), len(wantLabels))
			}
			for _, label := range wantLabels {
				got, err := h.Postings(label)
				if err != nil {
					t.Fatal(err)
				}
				exp := want.Postings(label)
				if len(got) != len(exp) {
					t.Fatalf("label %d: %d postings, want %d", label, len(got), len(exp))
				}
				for i := range exp {
					if got[i] != exp[i] {
						t.Fatalf("label %d posting %d: stream %+v, rebuild %+v", label, i, got[i], exp[i])
					}
				}
			}
			for id := pathindex.PathID(1); int(id) <= want.NumPaths(); id++ {
				if h.Path(id) != want.Path(id) {
					t.Fatalf("path %d: stream %+v, rebuild %+v", id, h.Path(id), want.Path(id))
				}
			}
		})
	}
}

// TestInsertTextSiblingOrder is the regression test for the chunked-text
// position bug: a long text run inserts several literals, and siblings
// that follow must land after all of them, not interleaved. (The old
// code advanced the insertion position by one regardless of chunk
// count.)
func TestInsertTextSiblingOrder(t *testing.T) {
	s, _ := newDocStore(t, 1024, core.Config{})
	limit := s.Trees().Records().MaxRecordSize() / 2
	long := strings.Repeat("A", limit*3+7) // 4 chunks
	src := "<doc><pre>before</pre>" + long + "<post>after</post>tail</doc>"
	doc, err := xmlkit.ParseString(src, xmlkit.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportTreeIncremental("d", doc.Root); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := s.ExportXML("d", &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != src {
		t.Fatalf("incremental chunked import misordered siblings:\ngot  %.120s...\nwant %.120s...", out.String(), src)
	}
	// And the bulk path agrees.
	s2, _ := newDocStore(t, 1024, core.Config{})
	if _, err := s2.ImportXML("d", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	if err := s2.ExportXML("d", &out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != src {
		t.Fatal("bulk chunked import misordered siblings")
	}
}

// TestBulkCDATAWhitespaceParity: whitespace-only or empty CDATA
// sections adjacent to text must be dropped by the bulk path exactly
// as the DOM-based incremental path drops them (each character-data
// token decides its fate independently).
func TestBulkCDATAWhitespaceParity(t *testing.T) {
	cases := []string{
		`<a>foo<![CDATA[  ]]>bar</a>`,
		`<a>foo<![CDATA[]]>bar</a>`,
		`<a>  <![CDATA[x]]>  </a>`,
		`<a><![CDATA[ keep <raw> & this ]]>tail</a>`,
		`<a>one<![CDATA[two]]>three</a>`,
	}
	for _, src := range cases {
		doc, err := xmlkit.ParseString(src, xmlkit.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sInc, _ := newDocStore(t, 2048, core.Config{})
		if _, err := sInc.ImportTreeIncremental("d", doc.Root); err != nil {
			t.Fatal(err)
		}
		sBulk, _ := newDocStore(t, 2048, core.Config{})
		if _, err := sBulk.ImportXML("d", strings.NewReader(src)); err != nil {
			t.Fatal(err)
		}
		var inc, bulk strings.Builder
		if err := sInc.ExportXML("d", &inc); err != nil {
			t.Fatal(err)
		}
		if err := sBulk.ExportXML("d", &bulk); err != nil {
			t.Fatal(err)
		}
		if inc.String() != bulk.String() {
			t.Fatalf("CDATA divergence for %q:\nincremental %q\nbulk        %q", src, inc.String(), bulk.String())
		}
		incN, err := sInc.QueryCount("d", "//a/#text")
		if err != nil {
			t.Fatal(err)
		}
		bulkN, err := sBulk.QueryCount("d", "//a/#text")
		if err != nil {
			t.Fatal(err)
		}
		if incN != bulkN {
			t.Fatalf("CDATA literal-count divergence for %q: incremental %d, bulk %d", src, incN, bulkN)
		}
	}
}

// TestBulkLongRunChunkParity: a text run longer than the parser's
// split window must produce the same literal boundaries (and so the
// same #text counts) as the incremental path, which chunks the whole
// token at once.
func TestBulkLongRunChunkParity(t *testing.T) {
	long := strings.Repeat("y", 200_000) // > several parser split windows
	src := "<a><b>" + long + "</b></a>"
	doc, err := xmlkit.ParseString(src, xmlkit.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sInc, _ := newDocStore(t, 8192, core.Config{})
	if _, err := sInc.ImportTreeIncremental("d", doc.Root); err != nil {
		t.Fatal(err)
	}
	sBulk, _ := newDocStore(t, 8192, core.Config{})
	if _, err := sBulk.ImportXML("d", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	incN, err := sInc.QueryCount("d", "//b/#text")
	if err != nil {
		t.Fatal(err)
	}
	bulkN, err := sBulk.QueryCount("d", "//b/#text")
	if err != nil {
		t.Fatal(err)
	}
	if incN != bulkN {
		t.Fatalf("chunk-count divergence: incremental %d literals, bulk %d", incN, bulkN)
	}
	var inc, bulk strings.Builder
	if err := sInc.ExportXML("d", &inc); err != nil {
		t.Fatal(err)
	}
	if err := sBulk.ExportXML("d", &bulk); err != nil {
		t.Fatal(err)
	}
	if inc.String() != bulk.String() {
		t.Fatal("long-run export divergence")
	}
}

// TestBulkImportCancelRollsBack: a context cancelled mid-import leaves
// no catalog entry and no stranded records.
func TestBulkImportCancelRollsBack(t *testing.T) {
	s, _ := newDocStore(t, 2048, core.Config{})
	cx, cancel := context.WithCancel(context.Background())
	n := 0
	reader := &cancellingReader{src: genXML("wide"), after: 3, onChunk: func() {
		n++
		if n == 3 {
			cancel()
		}
	}}
	_, err := s.ImportXMLContext(cx, "d", reader)
	if err == nil {
		t.Fatal("cancelled import succeeded")
	}
	if _, lookupErr := s.Lookup("d"); lookupErr == nil {
		t.Fatal("cancelled import registered a document")
	}
	st := s.Trees().Stats()
	if st.RecordsCreated != st.RecordsDeleted {
		t.Fatalf("cancelled import leaked records: created %d, deleted %d",
			st.RecordsCreated, st.RecordsDeleted)
	}
	// The store remains usable.
	if _, err := s.ImportXML("d", strings.NewReader(genXML("deep"))); err != nil {
		t.Fatal(err)
	}
}

// cancellingReader hands out small chunks, calling onChunk per read.
type cancellingReader struct {
	src     string
	after   int
	onChunk func()
}

func (r *cancellingReader) Read(p []byte) (int, error) {
	if r.onChunk != nil {
		r.onChunk()
	}
	if len(r.src) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := 512
	if n > len(r.src) {
		n = len(r.src)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.src[:n])
	r.src = r.src[n:]
	return n, nil
}

// TestBulkWrittenOnceEndToEnd pins the fast path's defining property at
// the docstore level: zero record rewrites during import, one record
// stored per record reachable.
func TestBulkWrittenOnceEndToEnd(t *testing.T) {
	s, _ := newDocStore(t, 2048, core.Config{})
	info, err := s.ImportXML("d", strings.NewReader(genXML("mixedText")))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Trees().Stats()
	if st.RecordsRewritten != 0 {
		t.Fatalf("bulk import rewrote %d records", st.RecordsRewritten)
	}
	n, err := s.Trees().OpenTree(info.Root).RecordCount()
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != st.RecordsCreated {
		t.Fatalf("reachable %d records, created %d", n, st.RecordsCreated)
	}
}
