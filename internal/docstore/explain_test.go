package docstore

import (
	"context"
	"strings"
	"testing"

	"natix/internal/core"
)

// hasPositional reports whether any step carries a positional
// predicate (summary estimates become upper bounds there).
func hasPositional(steps []Step) bool {
	for _, st := range steps {
		if st.Pos > 0 {
			return true
		}
	}
	return false
}

// TestExplainMatchesActualIndexedAndScan plans every equivalence query
// against an indexed store and checks the plan against reality: the
// chosen evaluator is the one the engine actually uses, and for plans
// the summary can price, the estimate agrees with (or bounds) the true
// match count.
func TestExplainMatchesActualIndexedAndScan(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	enableIndex(t, s)
	importBoth(t, s)

	for _, q := range equivalenceQueries {
		doc := docFor(q)
		steps, err := ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.ExplainSteps(context.Background(), doc, steps)
		if err != nil {
			t.Fatalf("explain %s on %s: %v", q, doc, err)
		}
		fallback := strings.Contains(q, "*") || strings.Contains(q, "#text")
		wantEval := EvalIndexed
		if fallback {
			wantEval = EvalScan
		}
		if plan.Evaluator != wantEval {
			t.Errorf("%s: evaluator %s, want %s (%s)", q, plan.Evaluator, wantEval, plan.Reason)
		}
		if plan.NumPaths <= 0 || plan.NumNodes <= 0 {
			t.Errorf("%s: plan carries no summary shape: %+v", q, plan)
		}
		if len(plan.Steps) != len(steps) {
			t.Fatalf("%s: %d step plans for %d steps", q, len(plan.Steps), len(steps))
		}
		actual, err := s.QueryCount(doc, q)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.Contains(q, "#text"):
			if plan.EstMatches != -1 || plan.Exact {
				t.Errorf("%s: #text step should be unpriceable, got est=%d exact=%v", q, plan.EstMatches, plan.Exact)
			}
		case hasPositional(steps):
			if plan.Exact {
				t.Errorf("%s: positional predicate cannot be exact", q)
			}
			if plan.EstMatches < int64(actual) {
				t.Errorf("%s: est %d below actual %d (must be an upper bound)", q, plan.EstMatches, actual)
			}
		default:
			if !plan.Exact {
				t.Errorf("%s: name-test-only plan should be exact", q)
			}
			if plan.EstMatches != int64(actual) {
				t.Errorf("%s: est %d, actual %d", q, plan.EstMatches, actual)
			}
		}
	}
}

// TestExplainScanWithoutIndex plans on a store with no index: the scan
// is chosen, the reason says why, and estimates are unknown.
func TestExplainScanWithoutIndex(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	importBoth(t, s)
	plan, err := s.Explain("p", "/PLAY//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Evaluator != EvalScan {
		t.Fatalf("evaluator %s, want scan", plan.Evaluator)
	}
	if !strings.Contains(plan.Reason, "not enabled") {
		t.Errorf("reason %q should name the missing index", plan.Reason)
	}
	if plan.EstMatches != -1 || plan.Exact {
		t.Errorf("no summary, yet est=%d exact=%v", plan.EstMatches, plan.Exact)
	}
	for _, sp := range plan.Steps {
		if sp.EstMatches != -1 {
			t.Errorf("step %+v priced without a summary", sp)
		}
	}
}

// TestExplainFlatExact plans queries against a flat-mode document:
// the flat evaluator is chosen and every step count is exact.
func TestExplainFlatExact(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportFlat("f", strings.NewReader(nested)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"/DOC//A", "//DIV/A", "//DIV[1]//A", "//NOSUCH"} {
		plan, err := s.Explain("f", q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Evaluator != EvalFlat {
			t.Fatalf("%s: evaluator %s, want flat", q, plan.Evaluator)
		}
		if !plan.Exact {
			t.Errorf("%s: flat plans are exact by construction", q)
		}
		actual, err := s.QueryCount("f", q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.EstMatches != int64(actual) {
			t.Errorf("%s: est %d, actual %d", q, plan.EstMatches, actual)
		}
	}
}

// TestExplainStringRendering smoke-tests the CLI rendering.
func TestExplainStringRendering(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	enableIndex(t, s)
	importBoth(t, s)
	plan, err := s.Explain("n", "/DOC//A")
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"evaluator=indexed", "summary:", "//A", "matches:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
