package docstore

// Write-ahead-log integration: operation boundaries and log-driven
// rollback.
//
// Every mutator funnels through Mutate (or InternLabel's slow path),
// so bracketing those two entry points with begin/commit log records
// makes each public operation — ImportXML, Delete, Convert,
// ReindexDocument, a Document edit inside Mutate — atomic across
// crashes: restart recovery replays finished operations and unwinds
// the unfinished one.
//
// A mutator that fails at runtime is rolled back from the log, too:
// the operation's records are walked backwards and their before-images
// re-applied through the buffer pool (each restoration is itself a
// logged update, so the log stays the complete history), the device is
// truncated back to its pre-operation size, and an abort record closes
// the operation. Because the rollback is physical, the in-memory
// mirrors of rolled-back pages — catalog map, dictionary snapshot,
// path-index catalog, parsed-record cache — are reloaded from the
// restored pages afterwards.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/telemetry"
	"natix/internal/wal"
)

// checkpointLogSize is the log size that triggers an automatic
// checkpoint after a commit, bounding both log growth and restart
// recovery work.
const checkpointLogSize = 8 << 20

// AttachWAL connects the write-ahead log. The caller must also attach
// the same writer to the buffer pool; from then on every Mutate runs
// as a logged operation.
func (s *Store) AttachWAL(w *wal.Writer) {
	s.walW = w
	s.captureHeader()
}

// captureHeader refreshes the last-known-good copy of the segment
// header page. Best effort: an unreadable header simply leaves the
// previous copy (or none), and the scrubber falls back to quarantine.
func (s *Store) captureHeader() {
	f, err := s.seg.Pool().Get(0)
	if err != nil {
		return
	}
	f.RLatch()
	hc := make([]byte, len(f.Data()))
	copy(hc, f.Data())
	f.RUnlatch()
	f.Release()
	s.hmu.Lock()
	s.headerCopy = hc
	s.hmu.Unlock()
}

// HeaderSnapshot returns the captured header image, nil if none. The
// caller must not mutate it.
func (s *Store) HeaderSnapshot() []byte {
	s.hmu.RLock()
	defer s.hmu.RUnlock()
	return s.headerCopy
}

// WALEnabled reports whether mutations run as logged operations.
func (s *Store) WALEnabled() bool { return s.walW != nil }

// Checkpoint makes every committed operation durable and resets the
// log: log first, then all dirty pages, then the checkpoint record and
// log truncation. It excludes mutators for its duration but not
// readers. Without a log it degrades to a plain flush.
func (s *Store) Checkpoint() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	sp := s.tracer.Start("checkpoint")
	defer sp.End()
	start := telemetry.Now()
	pool := s.seg.Pool()
	if s.walW == nil {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		s.mCheckpointNS.Observe(int64(telemetry.Since(start)))
		return nil
	}
	if err := s.walW.Sync(); err != nil {
		return err
	}
	if err := pool.FlushAll(); err != nil { // syncs the device too
		return err
	}
	if err := s.walW.Checkpoint(uint64(s.seg.NumPages())); err != nil {
		return err
	}
	pool.AdvanceWALEpoch()
	// The checkpoint cleared the log's page images; re-capture the
	// header so page 0 stays repairable in the fresh epoch.
	s.captureHeader()
	s.mCheckpointNS.Observe(int64(telemetry.Since(start)))
	return nil
}

// runOp executes fn as one logged operation. Caller holds the writer
// mutex. On error the operation's page effects are rolled back from
// the log before the error is returned.
func (s *Store) runOp(kind string, fn func() error) error {
	if s.walW == nil {
		return fn()
	}
	begin, err := s.walW.Begin(kind, uint64(s.seg.NumPages()))
	if err != nil {
		return err
	}
	opErr := fn()
	if opErr == nil {
		if err := s.walW.Commit(); err != nil {
			return fmt.Errorf("docstore: commit %q: %w", kind, err)
		}
		if s.walW.Size() > checkpointLogSize {
			// Best effort: the operation is already durably committed,
			// so its result must not report a checkpoint hiccup as
			// failure. A failed checkpoint only leaves the log longer;
			// the next commit, Flush or Close retries and surfaces it.
			_ = s.checkpointLocked()
		}
		return nil
	}
	if rbErr := s.rollbackOp(begin); rbErr != nil {
		return errors.Join(opErr, fmt.Errorf("docstore: rollback of %q failed: %w", kind, rbErr))
	}
	if aErr := s.walW.Abort(); aErr != nil {
		return errors.Join(opErr, aErr)
	}
	return opErr
}

// rollbackOp undoes the active operation's page effects: its log
// records are re-read in reverse and every before-image re-applied
// through the buffer pool, then the device is truncated back to the
// operation's pre-image size and the in-memory state reloaded from the
// restored pages.
func (s *Store) rollbackOp(begin wal.LSN) error {
	lsns, err := s.walW.RecordLSNsSince(begin)
	if err != nil {
		return err
	}
	pool := s.seg.Pool()
	preN := uint64(s.seg.NumPages())
	for i := len(lsns) - 1; i >= 0; i-- {
		rec, err := s.walW.ReadRecord(lsns[i])
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecBegin:
			preN = rec.PreNumPages
		case wal.RecUpdate, wal.RecFirstUpdate:
			if err := s.undoOne(rec); err != nil {
				return err
			}
			// RecImage pages are freshly allocated: the truncation below
			// deallocates them wholesale.
		}
	}
	if preN < uint64(s.seg.NumPages()) {
		if err := pool.ShrinkTo(pagedev.PageNo(preN)); err != nil {
			return err
		}
	}
	return s.reloadAfterRollback()
}

// undoOne re-applies one record's before-image through the pool.
func (s *Store) undoOne(rec wal.Record) error {
	f, err := s.seg.Pool().Get(rec.Page)
	if err != nil {
		return err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	u := f.BeginUpdate()
	b := f.Data()
	if rec.Type == wal.RecFirstUpdate {
		copy(b, rec.BeforeImage)
	} else {
		for _, rg := range rec.Ranges {
			copy(b[rg.Off:], rg.Before)
		}
	}
	return f.EndUpdate(u)
}

// reloadAfterRollback re-reads every in-memory mirror of persistent
// state from the rolled-back pages: the document catalog, the label
// dictionary, the path-index catalog and handle cache, and the parsed-
// record cache. Mutator context.
func (s *Store) reloadAfterRollback() error {
	raw, err := s.seg.RootRID(segment.RootCatalog)
	if err != nil {
		return err
	}
	if raw != 0 {
		var enc [records.RIDSize]byte
		binary.LittleEndian.PutUint64(enc[:], raw)
		id := records.DecodeRID(enc[:])
		body, err := s.blobs.Read(id)
		if err != nil {
			return fmt.Errorf("docstore: reload catalog: %w", err)
		}
		s.cmu.Lock()
		s.catalog = make(map[string]*DocInfo)
		err = s.decodeCatalog(body)
		s.cmu.Unlock()
		if err != nil {
			return err
		}
		s.catalogID = id
	}
	if err := s.dict.Reload(); err != nil {
		return err
	}
	if s.pindex != nil {
		if err := s.pindex.Reload(); err != nil {
			return err
		}
	}
	s.trees.InvalidateCache()
	return nil
}
