package docstore

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"natix/internal/buffer"
	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/pagedev"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/wal"
)

// forcePipelined pins the two-goroutine import pipeline on for the
// duration of a test: on a single-CPU machine importInline defaults to
// true, and the failure paths under test live in the concurrent code.
func forcePipelined(t *testing.T) {
	t.Helper()
	old := importInline
	importInline = false
	t.Cleanup(func() { importInline = old })
}

// walStore builds a WAL-backed store over an inspectable Mem device —
// the docstore-level equivalent of the facade's logged configuration.
func walStore(t *testing.T) (*Store, *buffer.Pool, *pagedev.Mem) {
	t.Helper()
	dev, err := pagedev.NewMem(2048)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.OpenWriter(wal.NewMemStorage(), wal.Options{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool.AttachWAL(w)
	if _, err := w.Begin("create", uint64(dev.NumPages())); err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rm := records.New(seg)
	d, err := dict.Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(core.New(rm, core.Config{}), d)
	if err != nil {
		t.Fatal(err)
	}
	px, err := pathindex.Open(rm)
	if err != nil {
		t.Fatal(err)
	}
	s.EnablePathIndex(px)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	s.AttachWAL(w)
	return s, pool, dev
}

// devImage flushes the pool and snapshots every device page.
func devImage(t *testing.T, pool *buffer.Pool, dev *pagedev.Mem) []byte {
	t.Helper()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	n := int(dev.NumPages())
	out := make([]byte, 0, n*dev.PageSize())
	page := make([]byte, dev.PageSize())
	for i := 0; i < n; i++ {
		if err := dev.Read(pagedev.PageNo(i), page); err != nil {
			t.Fatal(err)
		}
		out = append(out, page...)
	}
	return out
}

// requireUnchanged compares the store image against a pre-operation
// snapshot: every pre-existing page byte-identical, any pages the
// aborted operation grew the device by rolled back to zero. Bytes 4-16
// of each page header are masked: the checksum and page LSN are
// recovery bookkeeping that rollback legitimately re-stamps, not
// document content.
func requireUnchanged(t *testing.T, before, after []byte, pageSize int) {
	t.Helper()
	if len(after) < len(before) {
		t.Fatalf("device shrank: %d -> %d bytes", len(before), len(after))
	}
	for i := range before {
		if off := i % pageSize; off >= 4 && off < 16 {
			continue
		}
		if before[i] != after[i] {
			t.Fatalf("store changed at byte %d (page %d) after failed import", i, i/pageSize)
		}
	}
	for i := len(before); i < len(after); i++ {
		if off := i % pageSize; off >= 4 && off < 16 {
			continue
		}
		if after[i] != 0 {
			t.Fatalf("grown page area dirty at byte %d (page %d) after rollback", i, i/pageSize)
		}
	}
}

// bigDoc is large enough that the pipeline has packed (and the batch
// writer flushed) records before the failure point streams by.
func bigDoc(valid bool) string {
	var b strings.Builder
	b.WriteString("<doc>")
	for i := 0; i < 800; i++ {
		fmt.Fprintf(&b, "<item n=%q>payload %d %s</item>", fmt.Sprint(i), i, strings.Repeat("x", 40))
	}
	if !valid {
		b.WriteString("<unclosed>")
	}
	b.WriteString("</doc>")
	if !valid {
		return b.String()[:b.Len()-len("</doc>")]
	}
	return b.String()
}

func seedKeepDoc(t *testing.T, s *Store) string {
	t.Helper()
	src := bigDoc(true)
	if _, err := s.ImportXML("keep", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := s.ExportXML("keep", &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// verifyIntact re-checks the pre-existing document and that the store
// still accepts work after the failed import.
func verifyIntact(t *testing.T, s *Store, keepXML string, absent ...string) {
	t.Helper()
	for _, name := range absent {
		if _, ok := s.lookup(name); ok {
			t.Fatalf("failed import left %q in the catalog", name)
		}
	}
	var out strings.Builder
	if err := s.ExportXML("keep", &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != keepXML {
		t.Fatal("pre-existing document altered by failed import")
	}
	if _, err := s.ImportXML("after", strings.NewReader("<ok><x>1</x></ok>")); err != nil {
		t.Fatalf("store refuses imports after rollback: %v", err)
	}
}

// TestPipelineParserErrorRollsBack: a parse error in the producer stage
// must fail the import and leave the store byte-identical.
func TestPipelineParserErrorRollsBack(t *testing.T) {
	forcePipelined(t)
	s, pool, dev := walStore(t)
	keepXML := seedKeepDoc(t, s)
	before := devImage(t, pool, dev)

	if _, err := s.ImportXML("bad", strings.NewReader(bigDoc(false))); err == nil {
		t.Fatal("malformed document imported without error")
	}
	requireUnchanged(t, before, devImage(t, pool, dev), 2048)
	verifyIntact(t, s, keepXML, "bad")
}

// cancelReader cancels a context once n bytes have been read — a
// deterministic mid-pipeline cancellation while the parser is still
// producing.
type cancelReader struct {
	r      io.Reader
	n      int
	cancel context.CancelFunc
	once   sync.Once
	read   int
}

func (c *cancelReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	if c.read > c.n {
		c.once.Do(c.cancel)
	}
	return n, err
}

// TestPipelineCancellationRollsBack: cancelling the context mid-stream
// must abort the pipeline (producer and packer both unwind) and roll
// the store back byte-identically.
func TestPipelineCancellationRollsBack(t *testing.T) {
	forcePipelined(t)
	s, pool, dev := walStore(t)
	keepXML := seedKeepDoc(t, s)
	before := devImage(t, pool, dev)

	cx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := bigDoc(true)
	r := &cancelReader{r: strings.NewReader(src), n: len(src) / 2, cancel: cancel}
	if _, err := s.ImportXMLContext(cx, "cancelled", r); err == nil {
		t.Fatal("cancelled import reported success")
	} else if ctxErr(cx) == nil {
		t.Fatal("context not cancelled — test exercised nothing")
	}
	requireUnchanged(t, before, devImage(t, pool, dev), 2048)
	verifyIntact(t, s, keepXML, "cancelled")
}

// TestBatchPartialShardRollsBack: in a sharded batch where one document
// is malformed, the healthy shards have already packed and written
// records when the batch fails — the WAL rollback must erase all of it.
func TestBatchPartialShardRollsBack(t *testing.T) {
	forcePipelined(t)
	s, pool, dev := walStore(t)
	keepXML := seedKeepDoc(t, s)
	before := devImage(t, pool, dev)

	docs := []ImportDoc{
		{Name: "a", R: strings.NewReader(bigDoc(true))},
		{Name: "b", R: strings.NewReader(bigDoc(true))},
		{Name: "c", R: strings.NewReader(bigDoc(true))},
		{Name: "bad", R: strings.NewReader(bigDoc(false))},
	}
	if _, err := s.ImportXMLBatch(context.Background(), docs, 2); err == nil {
		t.Fatal("batch with malformed member imported without error")
	}
	requireUnchanged(t, before, devImage(t, pool, dev), 2048)
	verifyIntact(t, s, keepXML, "a", "b", "c", "bad")
}

// TestBatchMatchesSerial: the sharded batch import must produce exports
// byte-identical to one-by-one serial imports of the same corpus, for
// every document shape.
func TestBatchMatchesSerial(t *testing.T) {
	shapes := []string{"deep", "wide", "mixedText", "attrHeavy"}
	serial, _ := newDocStore(t, 2048, core.Config{})
	parallel, _ := newDocStore(t, 2048, core.Config{})

	var docs []ImportDoc
	for _, shape := range shapes {
		if _, err := serial.ImportXML(shape, strings.NewReader(genXML(shape))); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, ImportDoc{Name: shape, R: strings.NewReader(genXML(shape))})
	}
	if _, err := parallel.ImportXMLBatch(context.Background(), docs, len(docs)); err != nil {
		t.Fatal(err)
	}
	for _, shape := range shapes {
		var sOut, pOut strings.Builder
		if err := serial.ExportXML(shape, &sOut); err != nil {
			t.Fatal(err)
		}
		if err := parallel.ExportXML(shape, &pOut); err != nil {
			t.Fatal(err)
		}
		if sOut.String() != pOut.String() {
			t.Errorf("%s: batch import export differs from serial", shape)
		}
		tree, err := parallel.Tree(shape)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Errorf("%s: batch-imported tree invariants: %v", shape, err)
		}
	}
}
