package docstore

// Telemetry integration: the document manager owns the operation-level
// metrics (imports, mutations, queries by evaluator kind, cursor
// lifecycle, checkpoint durations) and the operation spans. Handles are
// nil until AttachTelemetry and every telemetry call is nil-safe, so an
// unattached store pays one nil check per site.

import "natix/internal/telemetry"

// EvaluatorKind names a query evaluation route.
type EvaluatorKind string

// The three evaluators.
const (
	EvalIndexed EvaluatorKind = "indexed" // posting-list index probe
	EvalScan    EvaluatorKind = "scan"    // navigating tree scan
	EvalFlat    EvaluatorKind = "flat"    // flat-mode parse
)

// AttachTelemetry connects the store to a metrics registry and an
// operation tracer (either may be nil). Call before traffic starts; the
// registered views read the store's own atomics, and the registry-owned
// counters and histograms it creates here are updated by the operation
// paths.
func (s *Store) AttachTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	s.tracer = tracer
	if reg == nil {
		return
	}
	reg.Func("docstore.index_builds", s.builds.Load)
	reg.Func("docstore.queries_indexed", s.indexedQueries.Load)
	reg.Func("docstore.queries_scan", s.scanQueries.Load)
	reg.Func("docstore.queries_flat", s.flatQueries.Load)
	s.mImports = reg.Counter("docstore.imports")
	s.mMutations = reg.Counter("docstore.mutations")
	s.mCursorsOpened = reg.Counter("docstore.cursors_opened")
	s.mCursorsExhausted = reg.Counter("docstore.cursors_exhausted")
	s.mCursorsAbandoned = reg.Counter("docstore.cursors_abandoned")
	s.mCursorRows = reg.Counter("docstore.cursor_rows")
	// Import pipeline stage times: CPU spent tokenizing (producer
	// goroutine), packing records (loader goroutine) and flushing pages
	// (batch-writer goroutine), summed across concurrent shards.
	s.mImportParseNS = reg.Counter("docstore.import_parse_ns")
	s.mImportPackNS = reg.Counter("docstore.import_pack_ns")
	s.mImportWriteNS = reg.Counter("docstore.import_write_ns")
	s.mQueryIndexedNS = reg.Histogram("docstore.query_ns_indexed")
	s.mQueryScanNS = reg.Histogram("docstore.query_ns_scan")
	s.mQueryFlatNS = reg.Histogram("docstore.query_ns_flat")
	s.mCheckpointNS = reg.Histogram("docstore.checkpoint_ns")
}

// queryHist returns the query-duration histogram for an evaluator.
func (s *Store) queryHist(kind EvaluatorKind) *telemetry.Histogram {
	switch kind {
	case EvalIndexed:
		return s.mQueryIndexedNS
	case EvalFlat:
		return s.mQueryFlatNS
	default:
		return s.mQueryScanNS
	}
}

// startOp opens a root span for one document operation. The returned
// span is nil (and free) when tracing and the slow-op log are both off.
func (s *Store) startOp(op, doc string) *telemetry.Span {
	sp := s.tracer.Start(op)
	sp.SetDoc(doc)
	return sp
}
