package docstore

// Query explanation: which evaluator a query would run on, why, and
// how many matches each step is expected to produce. The estimator
// runs entirely on resident metadata — the path summary for tree-mode
// documents — so explaining an indexed or scan query touches no
// posting blobs and no records. Flat-mode documents have no metadata
// besides the stream itself, so their explanation parses the document
// once and counts exactly; that is the same cost the paper ascribes to
// ANY structural access of flat storage, and precisely the point the
// comparison makes.

import (
	"context"
	"fmt"
	"strings"

	"natix/internal/dict"
	"natix/internal/pathindex"
	"natix/internal/xmlkit"
)

// StepPlan is the per-step slice of a Plan.
type StepPlan struct {
	Step       Step  `json:"step"`
	EstMatches int64 `json:"est_matches"` // matches this step produces; -1 unknown
}

// Plan describes how a query against one document would be evaluated.
type Plan struct {
	Doc       string        `json:"doc"`
	Evaluator EvaluatorKind `json:"evaluator"`
	Reason    string        `json:"reason"`

	// Path-summary shape (zero when no summary was available).
	NumPaths int `json:"num_paths,omitempty"`
	NumNodes int `json:"num_nodes,omitempty"`

	Steps      []StepPlan `json:"steps"`
	EstMatches int64      `json:"est_matches"` // final matches; -1 unknown
	// Exact reports that the estimates are exact counts. Summary-based
	// estimates are exact for name-test-only queries (each node has
	// exactly one ancestor on every prefix of its label path, so
	// per-path multiplicities are uniform); a positional predicate
	// makes everything downstream an upper bound, and a #text step
	// makes it unknown (text nodes have no summary path). Flat-mode
	// counts are exact by construction.
	Exact bool `json:"exact"`
}

// String renders the plan compactly for CLI output.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evaluator=%s (%s)", p.Evaluator, p.Reason)
	if p.NumPaths > 0 {
		fmt.Fprintf(&b, "\nsummary: %d paths, %d nodes", p.NumPaths, p.NumNodes)
	}
	for _, sp := range p.Steps {
		sep := "/"
		if sp.Step.Descendant {
			sep = "//"
		}
		pos := ""
		if sp.Step.Pos > 0 {
			pos = fmt.Sprintf("[%d]", sp.Step.Pos)
		}
		if sp.EstMatches < 0 {
			fmt.Fprintf(&b, "\n  %s%s%s -> est ?", sep, sp.Step.Name, pos)
		} else {
			fmt.Fprintf(&b, "\n  %s%s%s -> est %d", sep, sp.Step.Name, pos, sp.EstMatches)
		}
	}
	kind := "estimated"
	if p.Exact {
		kind = "exact"
	}
	if p.EstMatches < 0 {
		fmt.Fprintf(&b, "\nmatches: unknown")
	} else {
		fmt.Fprintf(&b, "\nmatches: %d (%s)", p.EstMatches, kind)
	}
	return b.String()
}

// Explain parses a path expression and plans it against a document
// without executing it.
func (s *Store) Explain(name, query string) (Plan, error) {
	steps, err := ParseQuery(query)
	if err != nil {
		return Plan{}, err
	}
	return s.ExplainSteps(context.Background(), name, steps)
}

// ExplainSteps plans a pre-parsed expression against a document: it
// fixes the evaluation route with exactly the test the query engine
// applies (indexFor), then estimates per-step cardinalities from the
// path summary (tree mode) or counts them by parsing (flat mode).
func (s *Store) ExplainSteps(cx context.Context, name string, steps []Step) (Plan, error) {
	if len(steps) == 0 {
		return Plan{}, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if err := ctxErr(cx); err != nil {
		return Plan{}, err
	}
	l := s.lockFor(name)
	l.RLock()
	defer l.RUnlock()
	info, ok := s.lookup(name)
	if !ok {
		return Plan{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	p := Plan{Doc: name, EstMatches: -1}
	if info.Mode == ModeFlat {
		p.Evaluator = EvalFlat
		p.Reason = "flat-mode document: structure is only accessible by parsing"
		err := s.estimateFlat(cx, info, steps, &p)
		return p, err
	}
	idx, err := s.indexFor(info, steps)
	if err != nil {
		return Plan{}, err
	}
	if idx != nil {
		p.Evaluator = EvalIndexed
		p.Reason = "stored path index covers the query (plain name tests only)"
	} else {
		p.Evaluator = EvalScan
		p.Reason = s.scanReason(info, steps)
		// A scan forced by a non-name step can still be estimated from
		// the summary of a stored index.
		if s.pindex != nil && s.pindex.Has(name) {
			idx, err = s.pindex.Get(name)
			if err != nil {
				idx = nil // unreadable index: plan without estimates
			}
		}
	}
	if idx != nil {
		p.NumPaths = idx.NumPaths()
		p.NumNodes = idx.NumNodes()
		s.estimateSummary(idx, steps, &p)
	} else {
		for _, st := range steps {
			p.Steps = append(p.Steps, StepPlan{Step: st, EstMatches: -1})
		}
	}
	return p, nil
}

// scanReason explains why a tree-mode query falls back to the
// navigating scan, mirroring indexFor's tests in order.
func (s *Store) scanReason(info DocInfo, steps []Step) string {
	if s.pindex == nil || !s.indexOn {
		return "navigating scan: path indexing is not enabled"
	}
	for _, st := range steps {
		if st.Name == "*" || st.Name == "#text" {
			return fmt.Sprintf("navigating scan: step %q is not a plain name test (postings cover elements only)", st.Name)
		}
	}
	if !s.pindex.Has(info.Name) {
		return "navigating scan: document has no stored path index (reindex to build one)"
	}
	return "navigating scan: stored path index unreadable (reindex to repair)"
}

// estimateSummary walks the path summary, carrying for each summary
// path the per-instance multiplicity of the context set (how many
// times each node with that path is in the context). Multiplicities
// stay uniform across the instances of one path because every node has
// exactly one ancestor on each proper prefix of its label path — which
// is what makes the counts exact until a positional predicate (upper
// bounds from there on) or a #text step (unknown from there on).
func (s *Store) estimateSummary(idx *pathindex.Handle, steps []Step, p *Plan) {
	n := idx.NumPaths()
	// mult[q] is the context multiplicity of summary path q; index 0 is
	// the virtual document node above the root (ancestor of every path,
	// parent of the depth-1 path), which seeds the first step.
	mult := make([]int64, n+1)
	mult[0] = 1
	p.Exact = true
	unknown := false
	for _, st := range steps {
		sp := StepPlan{Step: st, EstMatches: -1}
		if unknown || st.Name == "#text" {
			unknown = true
			p.Exact = false
			p.Steps = append(p.Steps, sp)
			continue
		}
		// Total context instances before this step — the bound a
		// positional predicate clamps to (at most one match per context
		// node survives... per context node there is at most one
		// selected match, so at most as many as there are instances).
		var ctxInstances int64 = mult[0]
		for q := 1; q <= n; q++ {
			if mult[q] > 0 {
				ctxInstances += mult[q] * int64(idx.Path(pathindex.PathID(q)).Count)
			}
		}
		next := make([]int64, n+1)
		var est int64
		for q := 1; q <= n; q++ {
			node := idx.Path(pathindex.PathID(q))
			if !s.labelMatches(node.Label, st.Name) {
				continue
			}
			var m int64
			if st.Descendant {
				// Sum the multiplicities of every proper ancestor path
				// (the virtual document node included).
				for a := node.Parent; ; {
					m += mult[a]
					if a == pathindex.NilPath {
						break
					}
					a = idx.Path(a).Parent
				}
			} else {
				m = mult[node.Parent]
			}
			if m > 0 {
				next[q] = m
				est += m * int64(node.Count)
			}
		}
		if st.Pos > 0 {
			// At most one match per context node; keep the unpredicated
			// context as an upper bound for later steps.
			if est > ctxInstances {
				est = ctxInstances
			}
			p.Exact = false
		}
		sp.EstMatches = est
		p.Steps = append(p.Steps, sp)
		mult = next
		if est == 0 {
			// Nothing survives; later steps are exactly empty (unless
			// already inexact).
			for q := range next {
				next[q] = 0
			}
		}
	}
	if !unknown {
		p.EstMatches = p.Steps[len(p.Steps)-1].EstMatches
	}
}

// labelMatches tests a name step against a summary label.
func (s *Store) labelMatches(label dict.LabelID, name string) bool {
	if name == "*" {
		n, err := s.dict.Name(label)
		return err == nil && !strings.HasPrefix(n, AttrPrefix)
	}
	id, ok := s.dict.Lookup(name)
	return ok && id == label
}

// estimateFlat counts each step prefix exactly by evaluating it over
// the parsed document — one parse, one tree walk per step.
func (s *Store) estimateFlat(cx context.Context, info DocInfo, steps []Step, p *Plan) error {
	body, err := s.blobs.Read(info.Root)
	if err != nil {
		return err
	}
	doc, err := xmlkit.ParseString(string(body), xmlkit.ParseOptions{})
	if err != nil {
		return err
	}
	for i := range steps {
		count := int64(0)
		err := xmlStep(cx, doc.Root, true, steps[:i+1], func(*xmlkit.Node) error {
			count++
			return nil
		})
		if err != nil {
			return err
		}
		p.Steps = append(p.Steps, StepPlan{Step: steps[i], EstMatches: count})
	}
	p.EstMatches = p.Steps[len(p.Steps)-1].EstMatches
	p.Exact = true
	return nil
}
