package docstore

// Document quarantine: the containment half of the integrity story.
// When the scrubber finds a corrupt page that the log cannot rebuild,
// losing the whole store to one bad platter region is the wrong
// granularity — the blast radius is the set of documents whose record
// graphs touch the page. Those documents are quarantined: every
// operation against them fails fast with ErrQuarantined, while every
// other document keeps serving reads and writes.
//
// Quarantine is deliberately in-memory only. Persisting it would mean
// writing to a store already known damaged; instead a reopen starts
// clean and the next scrub re-establishes the set (the corruption, if
// still there, is found again). Unquarantine exists for the repair
// path: a document whose pages were all reconstructed comes back
// without a restart.

import (
	"errors"
	"fmt"

	"natix/internal/noderep"
	"natix/internal/pagedev"
	"natix/internal/records"
)

// ErrQuarantined reports an operation against a quarantined document.
// The error string carries the document name and the reason recorded
// at quarantine time.
var ErrQuarantined = errors.New("docstore: document quarantined")

// Quarantine marks name as damaged: subsequent operations against it
// fail with ErrQuarantined until Unquarantine or reopen.
func (s *Store) Quarantine(name, reason string) {
	s.qmu.Lock()
	if s.quarantined == nil {
		s.quarantined = make(map[string]string)
	}
	s.quarantined[name] = reason
	s.qmu.Unlock()
}

// Unquarantine lifts the quarantine from name (a no-op if it was not
// quarantined). The repair path calls it after reconstructing every
// damaged page a document owns.
func (s *Store) Unquarantine(name string) {
	s.qmu.Lock()
	delete(s.quarantined, name)
	s.qmu.Unlock()
}

// Quarantined returns the reason name is quarantined, if it is.
func (s *Store) Quarantined(name string) (string, bool) {
	s.qmu.RLock()
	reason, ok := s.quarantined[name]
	s.qmu.RUnlock()
	return reason, ok
}

// QuarantinedDocs returns a copy of the quarantine set.
func (s *Store) QuarantinedDocs() map[string]string {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	out := make(map[string]string, len(s.quarantined))
	for k, v := range s.quarantined {
		out[k] = v
	}
	return out
}

// ExclusiveMaintenance runs fn holding the store-wide writer mutex,
// excluding every mutator (all of which take wmu) without blocking
// readers. The integrity scrubber runs inside it so no page it
// examines has an update in flight; unlike Mutate it brackets no WAL
// operation — maintenance must not write through the log.
func (s *Store) ExclusiveMaintenance(fn func() error) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return fn()
}

// checkQuarantine is the fail-fast gate every document operation passes
// through before touching storage.
func (s *Store) checkQuarantine(name string) error {
	s.qmu.RLock()
	reason, ok := s.quarantined[name]
	s.qmu.RUnlock()
	if !ok {
		return nil
	}
	return fmt.Errorf("%w: %q (%s)", ErrQuarantined, name, reason)
}

// PageOwners returns every data page the named document's on-disk
// representation touches: its record graph (tree mode) or blob chain
// (flat mode), overflow-literal blobs, and its path-index blobs. A page
// that cannot be walked past (a corrupt record mid-graph) ends the walk
// early: the pages collected so far are returned together with the
// error, so the scrubber can still attribute the intact prefix — and
// the error itself tells it the document is implicated in whatever page
// broke the walk.
//
// Callers must hold at least the document's read lock (the scrubber
// holds wmu, which excludes all mutators).
func (s *Store) PageOwners(name string) ([]pagedev.PageNo, error) {
	info, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	seen := make(map[pagedev.PageNo]bool)
	var pages []pagedev.PageNo
	add := func(ps ...pagedev.PageNo) {
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				pages = append(pages, p)
			}
		}
	}

	var firstErr error
	if info.Mode == ModeFlat {
		ps, err := s.blobs.Pages(info.Root)
		add(ps...)
		firstErr = err
	} else {
		visited := make(map[records.RID]bool)
		var walk func(rid records.RID) error
		walk = func(rid records.RID) error {
			if visited[rid] {
				return nil
			}
			visited[rid] = true
			add(rid.Page)
			if p, err := s.trees.Records().PageOf(rid); err == nil {
				add(p)
			}
			rec, err := s.trees.LoadRecordForInspection(rid)
			if err != nil {
				return err
			}
			var inner error
			rec.Root.Walk(func(n *noderep.Node) bool {
				switch n.Kind {
				case noderep.KindProxy:
					if err := walk(n.Target); err != nil && inner == nil {
						inner = err
						return false
					}
				case noderep.KindLiteral:
					if n.LitType == noderep.LitLongString {
						if id, err := n.BlobID(); err == nil {
							ps, err := s.blobs.Pages(id)
							add(ps...)
							if err != nil && inner == nil {
								inner = err
							}
						}
					}
				}
				return true
			})
			return inner
		}
		firstErr = walk(info.Root)
	}

	// Path-index blobs belong to the document too: a corrupt posting
	// page quarantines the document it indexes (a reindex could instead
	// rebuild it — that is the scrubber's call, not ours).
	if s.pindex != nil {
		if rids, err := s.pindex.BlobRIDs(name); err == nil {
			for _, rid := range rids {
				ps, err := s.blobs.Pages(rid)
				add(ps...)
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return pages, firstErr
}
