package docstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"natix/internal/buffer"
	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
	"natix/internal/xmlkit"
)

const play = `<PLAY>
<TITLE>The Tragedy of Testing</TITLE>
<ACT><TITLE>Act I</TITLE>
<SCENE><TITLE>Scene I.1</TITLE>
<SPEECH><SPEAKER>ALPHA</SPEAKER><LINE>first line of one one</LINE><LINE>second line</LINE></SPEECH>
<SPEECH><SPEAKER>BETA</SPEAKER><LINE>beta speaks</LINE></SPEECH>
</SCENE>
<SCENE><TITLE>Scene I.2</TITLE>
<SPEECH><SPEAKER>GAMMA</SPEAKER><LINE>gamma opens scene two</LINE></SPEECH>
</SCENE>
</ACT>
<ACT><TITLE>Act II</TITLE>
<SCENE><TITLE>Scene II.1</TITLE>
<SPEECH><SPEAKER>DELTA</SPEAKER><LINE>delta in act two</LINE></SPEECH>
<SPEECH><SPEAKER>EPSILON</SPEAKER><LINE>epsilon follows</LINE></SPEECH>
</SCENE>
</ACT>
</PLAY>`

func newDocStore(t *testing.T, pageSize int, cfg core.Config) (*Store, *buffer.Pool) {
	t.Helper()
	dev, err := pagedev.NewMem(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 512)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rm := records.New(seg)
	d, err := dict.Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(core.New(rm, cfg), d)
	if err != nil {
		t.Fatal(err)
	}
	return s, pool
}

func TestImportExportRoundTrip(t *testing.T) {
	for _, pageSize := range []int{512, 2048} {
		t.Run(fmt.Sprintf("page%d", pageSize), func(t *testing.T) {
			s, _ := newDocStore(t, pageSize, core.Config{})
			if _, err := s.ImportXML("hamlet", strings.NewReader(play)); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := s.ExportXML("hamlet", &out); err != nil {
				t.Fatal(err)
			}
			// Compare parsed trees (whitespace-only text was dropped).
			want, _ := xmlkit.ParseString(play, xmlkit.ParseOptions{})
			got, err := xmlkit.ParseString(out.String(), xmlkit.ParseOptions{})
			if err != nil {
				t.Fatalf("exported XML unparsable: %v\n%s", err, out.String())
			}
			if !xmlkit.Equal(want.Root, got.Root) {
				t.Fatalf("round trip changed document:\n%s", out.String())
			}
			// Storage invariants hold after import.
			tree, err := s.Tree("hamlet")
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	src := `<PLAY id="p1" year="1604"><ACT n="1"><SCENE n="2">text</SCENE></ACT></PLAY>`
	s, _ := newDocStore(t, 1024, core.Config{})
	if _, err := s.ImportXML("attrs", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.ExportXML("attrs", &out); err != nil {
		t.Fatal(err)
	}
	want, _ := xmlkit.ParseString(src, xmlkit.ParseOptions{})
	got, err := xmlkit.ParseString(out.String(), xmlkit.ParseOptions{})
	if err != nil || !xmlkit.Equal(want.Root, got.Root) {
		t.Fatalf("attribute round trip failed: %s (%v)", out.String(), err)
	}
}

func TestCatalogPersistence(t *testing.T) {
	dev, _ := pagedev.NewMem(1024)
	pool, _ := buffer.New(dev, 256)
	seg, _ := segment.Create(pool)
	rm := records.New(seg)
	d, _ := dict.Create(rm)
	s, err := Create(core.New(rm, core.Config{}), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportXML("doc1", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportFlat("doc2", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}

	// Reopen everything from disk.
	pool2, _ := buffer.New(dev, 256)
	seg2, err := segment.Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	rm2 := records.New(seg2)
	d2, err := dict.Open(rm2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(core.New(rm2, core.Config{}), d2)
	if err != nil {
		t.Fatal(err)
	}
	docs := s2.Documents()
	if len(docs) != 2 || docs[0].Name != "doc1" || docs[1].Name != "doc2" {
		t.Fatalf("catalog after reopen: %+v", docs)
	}
	if docs[0].Mode != ModeTree || docs[1].Mode != ModeFlat {
		t.Fatalf("modes after reopen: %+v", docs)
	}
	var out bytes.Buffer
	if err := s2.ExportXML("doc1", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GAMMA") {
		t.Fatal("reopened document lost content")
	}
}

func TestDuplicateAndMissing(t *testing.T) {
	s, _ := newDocStore(t, 1024, core.Config{})
	if _, err := s.ImportXML("x", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportXML("x", strings.NewReader(play)); err == nil {
		t.Fatal("duplicate import succeeded")
	}
	if err := s.ExportXML("nope", &bytes.Buffer{}); err == nil {
		t.Fatal("export of missing document succeeded")
	}
	if err := s.Delete("nope"); err == nil {
		t.Fatal("delete of missing document succeeded")
	}
	if _, err := s.Lookup("x"); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteDocumentFreesSpace(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportXML("x", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	stats := s.Trees().Stats()
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	after := s.Trees().Stats()
	if after.RecordsDeleted-stats.RecordsDeleted == 0 {
		t.Fatal("document delete freed no records")
	}
	if _, err := s.Lookup("x"); err == nil {
		t.Fatal("document still in catalog")
	}
}

func TestParseQuery(t *testing.T) {
	steps, err := ParseQuery("/PLAY/ACT[3]/SCENE[2]//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Name: "PLAY"},
		{Name: "ACT", Pos: 3},
		{Name: "SCENE", Pos: 2},
		{Name: "SPEAKER", Descendant: true},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
	for _, bad := range []string{"", "PLAY", "/", "//", "/PLAY[", "/PLAY[x]", "/PLAY[0]", "/PLAY//"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", bad)
		}
	}
}

func TestQueriesTreeMode(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportXML("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	queryTests(t, s, "p")
}

func TestQueriesFlatMode(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportFlat("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	queryTests(t, s, "p")
}

// queryTests runs identical assertions against either storage mode.
func queryTests(t *testing.T, s *Store, doc string) {
	t.Helper()
	// All speakers anywhere.
	res, err := s.Query(doc, "/PLAY//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range res {
		txt, err := r.Text()
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, txt)
	}
	if strings.Join(names, ",") != "ALPHA,BETA,GAMMA,DELTA,EPSILON" {
		t.Fatalf("speakers = %v", names)
	}

	// Positional: speakers of act 1, scene 1 only.
	res, err = s.Query(doc, "/PLAY/ACT[1]/SCENE[1]//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("act1 scene1 speakers: %d", len(res))
	}

	// Query 2 shape: first speech of every scene.
	res, err = s.Query(doc, "//SCENE/SPEECH[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("first speeches: %d, want 3", len(res))
	}
	m, err := res[0].Markup()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "<SPEAKER>ALPHA</SPEAKER>") || !strings.HasPrefix(m, "<SPEECH>") {
		t.Fatalf("markup = %s", m)
	}

	// Query 3 shape: the opening speech.
	res, err = s.Query(doc, "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("opening speech matches: %d", len(res))
	}
	txt, _ := res[0].Text()
	if !strings.Contains(txt, "first line of one one") {
		t.Fatalf("opening speech text = %q", txt)
	}

	// Wildcard and misses.
	res, err = s.Query(doc, "/PLAY/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 { // TITLE + 2 ACTs
		t.Fatalf("/PLAY/*: %d", len(res))
	}
	res, err = s.Query(doc, "/NOPE//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("query for absent root matched %d", len(res))
	}
	res, err = s.Query(doc, "/PLAY/ACT[9]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("out-of-range position matched %d", len(res))
	}
}

func TestLongTextChunking(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	long := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100)
	src := "<DOC><P>" + long + "</P></DOC>"
	if _, err := s.ImportXML("long", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("long", "/DOC/P")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("matches: %d", len(res))
	}
	txt, err := res[0].Text()
	if err != nil {
		t.Fatal(err)
	}
	if txt != long {
		t.Fatalf("long text mangled: %d vs %d bytes", len(txt), len(long))
	}
	tree, _ := s.Tree("long")
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlatModeRoundTrip(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportFlat("f", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.ExportXML("f", &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != play {
		t.Fatal("flat mode did not preserve the exact byte stream")
	}
	// Malformed XML is rejected at flat import.
	if _, err := s.ImportFlat("bad", strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("malformed flat import succeeded")
	}
}

func TestConvertBetweenModes(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportXML("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	before, err := s.Query("p", "//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	// Tree -> flat.
	if err := s.Convert("p", ModeFlat); err != nil {
		t.Fatal(err)
	}
	info, _ := s.Lookup("p")
	if info.Mode != ModeFlat {
		t.Fatalf("mode = %v", info.Mode)
	}
	mid, err := s.Query("p", "//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != len(before) {
		t.Fatalf("matches after to-flat: %d, want %d", len(mid), len(before))
	}
	// Flat -> tree.
	if err := s.Convert("p", ModeTree); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Lookup("p")
	if info.Mode != ModeTree {
		t.Fatalf("mode = %v", info.Mode)
	}
	tree, err := s.Tree("p")
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Query("p", "//SPEAKER")
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		a, _ := after[i].Markup()
		b, _ := before[i].Markup()
		if a != b {
			t.Fatalf("match %d changed across conversions", i)
		}
	}
	// Converting to the current mode is a no-op.
	if err := s.Convert("p", ModeTree); err != nil {
		t.Fatal(err)
	}
	if err := s.Convert("nope", ModeFlat); err == nil {
		t.Fatal("convert of missing doc succeeded")
	}
}

func TestTreeStats(t *testing.T) {
	s, _ := newDocStore(t, 512, core.Config{})
	if _, err := s.ImportXML("p", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats("p")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || st.Records == 0 || st.Bytes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.LabelCounts["SPEAKER"] != 5 || st.LabelCounts["SPEECH"] != 5 {
		t.Fatalf("label counts wrong: %v", st.LabelCounts)
	}
	// PLAY > ACT > SCENE > SPEECH > SPEAKER > text = depth 6.
	if st.Depth != 6 {
		t.Fatalf("depth = %d, want 6", st.Depth)
	}
	if st.MaxRecordLen > 512 {
		t.Fatalf("MaxRecordLen = %d exceeds page", st.MaxRecordLen)
	}
	// Every record beyond the root is referenced by exactly one proxy.
	if st.Proxies != st.Records-1 {
		t.Fatalf("proxies = %d, records = %d (want records-1)", st.Proxies, st.Records)
	}
	// Flat documents have no tree stats.
	if _, err := s.ImportFlat("f", strings.NewReader(play)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stats("f"); err == nil {
		t.Fatal("Stats on flat doc succeeded")
	}
	if _, err := s.Stats("missing"); err == nil {
		t.Fatal("Stats on missing doc succeeded")
	}
}
