// Package ioretry retries transient device I/O failures with bounded,
// jittered exponential backoff. A flaky read — a momentary EIO, a
// controller hiccup, an injected pagedev.ErrTransient — should cost one
// retry counter tick, not a failed import; a genuinely broken device
// should surface after a handful of attempts, not hang the caller.
//
// The helper is deliberately conservative about what it retries:
// only errors classified transient by IsTransient. Corruption
// (checksum failures), ENOSPC, out-of-range accesses and closed
// devices are permanent — retrying them wastes time and, worse, can
// mask real damage the integrity scrubber should be repairing instead.
package ioretry

import (
	"context"
	"errors"
	"sync/atomic"
	"syscall"
	"time"

	"natix/internal/pagedev"
	"natix/internal/telemetry"
)

// Default policy values, used when the corresponding Retryer field is
// zero.
const (
	DefaultAttempts = 4
	DefaultBase     = 500 * time.Microsecond
	DefaultMax      = 20 * time.Millisecond
)

// IsTransient reports whether err is worth retrying: the injected
// transient sentinel, or the errno family a flaky disk or interrupted
// syscall produces. Everything else — corruption, ENOSPC, closed or
// out-of-range devices — is permanent.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, pagedev.ErrTransient) {
		return true
	}
	return errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT)
}

// Retryer runs operations with bounded retry. The zero value is ready
// to use with the default policy. It is safe for concurrent use; the
// retry counter and jitter state are atomics.
type Retryer struct {
	// Attempts is the total number of tries (first call included).
	// 0 means DefaultAttempts; 1 disables retries.
	Attempts int
	// Base is the delay before the first retry; each subsequent retry
	// doubles it, capped at Max. 0 means DefaultBase / DefaultMax.
	Base time.Duration
	Max  time.Duration

	retries atomic.Int64
	jitter  atomic.Uint64 // xorshift state, lazily seeded
}

// Retries returns the number of retried attempts since construction —
// the integrity.io_retries telemetry counter reads it.
func (r *Retryer) Retries() int64 { return r.retries.Load() }

// Do runs op, retrying transient failures with jittered exponential
// backoff until it succeeds, fails permanently, or the attempt budget
// is exhausted (the last error is returned).
func (r *Retryer) Do(op func() error) error {
	return r.DoCtx(context.Background(), op)
}

// DoCtx is Do honoring a context: a cancelled context stops the retry
// loop at the next backoff and returns the context error joined with
// the last I/O error.
func (r *Retryer) DoCtx(ctx context.Context, op func() error) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			return errors.Join(cerr, err)
		}
		r.retries.Add(1)
		telemetry.Sleep(r.backoff(i))
	}
	return err
}

// backoff returns the delay before retry i (0-based): Base<<i capped
// at Max, with ±25% deterministic jitter so synchronized retriers
// don't hammer the device in lockstep.
func (r *Retryer) backoff(i int) time.Duration {
	base := r.Base
	if base <= 0 {
		base = DefaultBase
	}
	max := r.Max
	if max <= 0 {
		max = DefaultMax
	}
	d := base << uint(i)
	if d > max || d <= 0 {
		d = max
	}
	// Deterministic xorshift jitter (ioretry is an engine package:
	// telemetry owns the clock, so no time-based seeding). Identical
	// Retryers jitter identically, which keeps failing runs replayable.
	s := r.jitter.Load()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	r.jitter.Store(s)
	quarter := int64(d) / 4
	if quarter > 0 {
		d += time.Duration(int64(s%uint64(2*quarter)) - quarter)
	}
	return d
}
