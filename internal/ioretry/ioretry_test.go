package ioretry

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"natix/internal/pagedev"
)

func TestDoRetriesTransient(t *testing.T) {
	r := &Retryer{Attempts: 4, Base: time.Microsecond, Max: time.Microsecond}
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("%w: read page 7", pagedev.ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestDoPermanentErrorNotRetried(t *testing.T) {
	perm := errors.New("checksum mismatch")
	r := &Retryer{Base: time.Microsecond, Max: time.Microsecond}
	calls := 0
	err := r.Do(func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on permanent errors)", calls)
	}
	if got := r.Retries(); got != 0 {
		t.Fatalf("Retries = %d, want 0", got)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	r := &Retryer{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond}
	calls := 0
	err := r.Do(func() error {
		calls++
		return fmt.Errorf("%w: write page 1", pagedev.ErrTransient)
	})
	if !errors.Is(err, pagedev.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient after exhaustion", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestDoCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Retryer{Attempts: 5, Base: time.Microsecond, Max: time.Microsecond}
	calls := 0
	err := r.DoCtx(ctx, func() error {
		calls++
		return fmt.Errorf("%w: read page 2", pagedev.ErrTransient)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, pagedev.ErrTransient) {
		t.Fatalf("err = %v, should also carry the I/O error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before first retry)", calls)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{pagedev.ErrTransient, true},
		{fmt.Errorf("wrap: %w", pagedev.ErrTransient), true},
		{syscall.EIO, true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.ETIMEDOUT, true},
		{pagedev.ErrNoSpace, false},
		{syscall.ENOSPC, false},
		{errors.New("page 3: checksum mismatch"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffBoundedAndJittered(t *testing.T) {
	r := &Retryer{Base: time.Millisecond, Max: 8 * time.Millisecond}
	for i := 0; i < 20; i++ {
		d := r.backoff(i)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v, want > 0", i, d)
		}
		if d > 10*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, exceeds Max plus jitter", i, d)
		}
	}
}
