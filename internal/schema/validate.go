package schema

import (
	"fmt"
	"strings"

	"natix/internal/xmlkit"
)

// Violation is one validation failure, with the path of the offending
// element.
type Violation struct {
	Path    string
	Element string
	Msg     string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("%s <%s>: %s", v.Path, v.Element, v.Msg)
}

// Validate checks a document tree against the DTD ("document validation
// in the XML world", paper §2.1) and returns all violations found.
// Elements without a declaration are reported once per occurrence.
func (d *DTD) Validate(root *xmlkit.Node) []Violation {
	var out []Violation
	if root.Name != d.Name {
		out = append(out, Violation{
			Path: "/", Element: root.Name,
			Msg: fmt.Sprintf("root element is <%s>, DTD declares <%s>", root.Name, d.Name),
		})
	}
	d.validateElement(root, "/"+root.Name, &out)
	return out
}

func (d *DTD) validateElement(n *xmlkit.Node, path string, out *[]Violation) {
	decl, ok := d.Elements[n.Name]
	if !ok {
		*out = append(*out, Violation{Path: path, Element: n.Name, Msg: "element not declared"})
	} else {
		d.checkContent(decl, n, path, out)
	}
	d.validateAttrs(n, path, out)
	childCounts := map[string]int{}
	for _, c := range n.Children {
		if c.IsText() {
			continue
		}
		childCounts[c.Name]++
		d.validateElement(c, fmt.Sprintf("%s/%s[%d]", path, c.Name, childCounts[c.Name]), out)
	}
}

// checkContent verifies one element's children against its declaration.
func (d *DTD) checkContent(decl *ElementDecl, n *xmlkit.Node, path string, out *[]Violation) {
	switch decl.Content {
	case ContentAny:
		return
	case ContentEmpty:
		if len(n.Children) > 0 {
			*out = append(*out, Violation{Path: path, Element: n.Name,
				Msg: fmt.Sprintf("declared EMPTY but has %d children", len(n.Children))})
		}
	case ContentMixed:
		allowed := map[string]bool{}
		for _, m := range decl.Mixed {
			allowed[m] = true
		}
		for _, c := range n.Children {
			if c.IsText() {
				continue
			}
			if !allowed[c.Name] {
				*out = append(*out, Violation{Path: path, Element: n.Name,
					Msg: fmt.Sprintf("child <%s> not allowed in mixed content", c.Name)})
			}
		}
	case ContentChildren:
		var names []string
		for _, c := range n.Children {
			if c.IsText() {
				if strings.TrimSpace(c.Text) != "" {
					*out = append(*out, Violation{Path: path, Element: n.Name,
						Msg: "character data not allowed in element content"})
				}
				continue
			}
			names = append(names, c.Name)
		}
		if !matches(decl.Model, names) {
			*out = append(*out, Violation{Path: path, Element: n.Name,
				Msg: fmt.Sprintf("children (%s) do not match model %s",
					strings.Join(names, ", "), decl.Model)})
		}
	}
}

// matches reports whether the name sequence matches the content model.
// It uses a position-set simulation (Thompson-style), which handles
// non-deterministic models without exponential backtracking.
func matches(model *Particle, names []string) bool {
	set := matchPart(model, map[int]bool{0: true}, names)
	return set[len(names)]
}

// matchPart returns every index j such that names[i:j] matches p for
// some i in the input set.
func matchPart(p *Particle, set map[int]bool, names []string) map[int]bool {
	if len(set) == 0 {
		return set
	}
	one := func(in map[int]bool) map[int]bool {
		switch p.Kind {
		case PName:
			out := map[int]bool{}
			for i := range in {
				if i < len(names) && names[i] == p.Name {
					out[i+1] = true
				}
			}
			return out
		case PSeq:
			cur := in
			for _, c := range p.Children {
				cur = matchPart(c, cur, names)
				if len(cur) == 0 {
					break
				}
			}
			return cur
		case PChoice:
			out := map[int]bool{}
			for _, c := range p.Children {
				for j := range matchPart(c, in, names) {
					out[j] = true
				}
			}
			return out
		}
		return nil
	}

	switch p.Occurs {
	case One:
		return one(set)
	case Opt:
		out := map[int]bool{}
		for i := range set {
			out[i] = true
		}
		for j := range one(set) {
			out[j] = true
		}
		return out
	case Plus, Star:
		out := map[int]bool{}
		if p.Occurs == Star {
			for i := range set {
				out[i] = true
			}
		}
		cur := set
		for {
			cur = one(cur)
			grew := false
			for j := range cur {
				if !out[j] {
					out[j] = true
					grew = true
				}
			}
			if !grew || len(cur) == 0 {
				break
			}
		}
		return out
	}
	return nil
}
