// Package schema implements the NATIX schema manager's DTD handling
// (paper §2.1: the schema manager "maintains the system catalog data
// needed by the document manager, which includes the Document Type
// Definitions (logical XML schema information)"; the document manager
// "checks schema consistency, called document validation in the XML
// world").
//
// It parses the element declarations of a DOCTYPE internal subset into
// content models and validates documents against them. Content models
// cover the DTD language: EMPTY, ANY, (#PCDATA), mixed content
// (#PCDATA|a|b)*, and children models built from sequences, choices and
// the ?, *, + occurrence operators.
package schema

import (
	"errors"
	"fmt"
	"strings"
)

// ContentType classifies an element declaration.
type ContentType int

// Content types.
const (
	ContentEmpty    ContentType = iota // EMPTY
	ContentAny                         // ANY
	ContentMixed                       // (#PCDATA | a | b)* or (#PCDATA)
	ContentChildren                    // a children model
)

// Occurs is an occurrence indicator on a particle.
type Occurs int

// Occurrence indicators.
const (
	One  Occurs = iota // exactly once
	Opt                // ?
	Star               // *
	Plus               // +
)

func (o Occurs) String() string {
	switch o {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	default:
		return ""
	}
}

// ParticleKind discriminates content-model nodes.
type ParticleKind int

// Particle kinds.
const (
	PName   ParticleKind = iota // an element name
	PSeq                        // (a, b, c)
	PChoice                     // (a | b | c)
)

// Particle is one node of a children content model.
type Particle struct {
	Kind     ParticleKind
	Name     string      // PName only
	Children []*Particle // PSeq/PChoice
	Occurs   Occurs
}

// String renders the particle in DTD syntax.
func (p *Particle) String() string {
	var body string
	switch p.Kind {
	case PName:
		body = p.Name
	case PSeq, PChoice:
		sep := ", "
		if p.Kind == PChoice {
			sep = " | "
		}
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + p.Occurs.String()
}

// ElementDecl is one <!ELEMENT> declaration.
type ElementDecl struct {
	Name    string
	Content ContentType
	Model   *Particle // children models only
	Mixed   []string  // allowed child names in mixed content
}

// DTD is a parsed document type definition.
type DTD struct {
	Name       string // the doctype name (root element)
	Elements   map[string]*ElementDecl
	Order      []string // declaration order
	Attributes []AttDecl
}

// ErrSyntax reports a malformed declaration.
var ErrSyntax = errors.New("schema: DTD syntax error")

// ParseDTD parses the body of a DOCTYPE declaration (the text after
// "<!DOCTYPE": the root name followed by an optional internal subset).
// Element and attribute-list declarations are parsed; other markup
// declarations (entities, notations) are skipped.
func ParseDTD(body string) (*DTD, error) {
	body = strings.TrimSpace(body)
	name := body
	if i := strings.IndexAny(body, " \t\r\n["); i >= 0 {
		name = body[:i]
	}
	if name == "" {
		return nil, fmt.Errorf("%w: missing doctype name", ErrSyntax)
	}
	dtd := &DTD{Name: name, Elements: make(map[string]*ElementDecl)}
	if err := dtd.parseAttlists(body); err != nil {
		return nil, err
	}
	subset := body
	for {
		i := strings.Index(subset, "<!ELEMENT")
		if i < 0 {
			return dtd, nil
		}
		subset = subset[i+len("<!ELEMENT"):]
		end := strings.IndexByte(subset, '>')
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated <!ELEMENT", ErrSyntax)
		}
		decl, err := parseElementDecl(strings.TrimSpace(subset[:end]))
		if err != nil {
			return nil, err
		}
		if _, dup := dtd.Elements[decl.Name]; !dup {
			dtd.Elements[decl.Name] = decl
			dtd.Order = append(dtd.Order, decl.Name)
		}
		subset = subset[end+1:]
	}
}

// parseElementDecl parses "name contentspec".
func parseElementDecl(s string) (*ElementDecl, error) {
	i := 0
	for i < len(s) && !isSpace(s[i]) {
		i++
	}
	name := s[:i]
	if name == "" {
		return nil, fmt.Errorf("%w: element declaration without a name", ErrSyntax)
	}
	spec := strings.TrimSpace(s[i:])
	decl := &ElementDecl{Name: name}
	switch {
	case spec == "EMPTY":
		decl.Content = ContentEmpty
	case spec == "ANY":
		decl.Content = ContentAny
	case strings.HasPrefix(spec, "(") && strings.Contains(firstGroup(spec), "#PCDATA"):
		names, err := parseMixed(spec)
		if err != nil {
			return nil, fmt.Errorf("element %s: %w", name, err)
		}
		decl.Content = ContentMixed
		decl.Mixed = names
	case strings.HasPrefix(spec, "("):
		p := &particleParser{src: spec}
		model, err := p.parse()
		if err != nil {
			return nil, fmt.Errorf("element %s: %w", name, err)
		}
		decl.Content = ContentChildren
		decl.Model = model
	default:
		return nil, fmt.Errorf("%w: element %s: bad content spec %q", ErrSyntax, name, spec)
	}
	return decl, nil
}

// firstGroup returns the text of the first parenthesized group.
func firstGroup(s string) string {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[:i+1]
			}
		}
	}
	return s
}

// parseMixed parses (#PCDATA) or (#PCDATA | a | b)*.
func parseMixed(spec string) ([]string, error) {
	group := firstGroup(spec)
	rest := strings.TrimSpace(spec[len(group):])
	inner := strings.TrimSpace(group[1 : len(group)-1])
	parts := strings.Split(inner, "|")
	if strings.TrimSpace(parts[0]) != "#PCDATA" {
		return nil, fmt.Errorf("%w: mixed content must start with #PCDATA", ErrSyntax)
	}
	var names []string
	for _, p := range parts[1:] {
		n := strings.TrimSpace(p)
		if n == "" {
			return nil, fmt.Errorf("%w: empty name in mixed content", ErrSyntax)
		}
		names = append(names, n)
	}
	if len(names) > 0 && rest != "*" {
		return nil, fmt.Errorf("%w: mixed content with names requires trailing *", ErrSyntax)
	}
	if len(names) == 0 && rest != "" && rest != "*" {
		return nil, fmt.Errorf("%w: trailing %q after (#PCDATA)", ErrSyntax, rest)
	}
	return names, nil
}

// particleParser is a recursive-descent parser for children models.
type particleParser struct {
	src string
	pos int
}

func (p *particleParser) parse() (*Particle, error) {
	part, err := p.group()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: trailing %q", ErrSyntax, p.src[p.pos:])
	}
	return part, nil
}

func (p *particleParser) skipSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

// group parses "(" cp ( ("," cp)* | ("|" cp)* ) ")" occurs?
func (p *particleParser) group() (*Particle, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("%w: expected ( at offset %d", ErrSyntax, p.pos)
	}
	p.pos++
	first, err := p.cp()
	if err != nil {
		return nil, err
	}
	kids := []*Particle{first}
	kind := PSeq
	var sep byte
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("%w: unterminated group", ErrSyntax)
		}
		c := p.src[p.pos]
		if c == ')' {
			p.pos++
			break
		}
		if c != ',' && c != '|' {
			return nil, fmt.Errorf("%w: expected , | or ) at offset %d", ErrSyntax, p.pos)
		}
		if sep == 0 {
			sep = c
			if c == '|' {
				kind = PChoice
			}
		} else if c != sep {
			return nil, fmt.Errorf("%w: mixed , and | in one group", ErrSyntax)
		}
		p.pos++
		next, err := p.cp()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	part := &Particle{Kind: kind, Children: kids}
	if len(kids) == 1 {
		// A single-child group is just its child with merged occurrence.
		part = kids[0]
	}
	part.Occurs = p.occurs(part.Occurs)
	return part, nil
}

// cp parses a content particle: name or group, with occurrence.
func (p *particleParser) cp() (*Particle, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		return p.group()
	}
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return nil, fmt.Errorf("%w: expected name at offset %d", ErrSyntax, p.pos)
	}
	part := &Particle{Kind: PName, Name: name}
	part.Occurs = p.occurs(One)
	return part, nil
}

// occurs parses an optional ?, * or +. A nested occurrence combines
// conservatively (e.g. (a+)? behaves like a*).
func (p *particleParser) occurs(existing Occurs) Occurs {
	if p.pos >= len(p.src) {
		return existing
	}
	var parsed Occurs
	switch p.src[p.pos] {
	case '?':
		parsed = Opt
	case '*':
		parsed = Star
	case '+':
		parsed = Plus
	default:
		return existing
	}
	p.pos++
	return combineOccurs(existing, parsed)
}

func combineOccurs(a, b Occurs) Occurs {
	if a == One {
		return b
	}
	if b == One {
		return a
	}
	if a == b {
		return a
	}
	return Star // any disagreement widens to zero-or-more
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

func isNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '-', b == '_', b == '.', b == ':':
		return true
	case b >= 0x80:
		return true
	}
	return false
}
