package schema

import (
	"fmt"
	"strings"

	"natix/internal/xmlkit"
)

// Attribute declarations (<!ATTLIST>). The supported subset covers the
// common DTD attribute types: CDATA, ID/IDREF, NMTOKEN(S), and
// enumerations, with #REQUIRED/#IMPLIED/#FIXED/default defaults.

// AttType is a declared attribute's type.
type AttType int

// Attribute types.
const (
	AttCDATA AttType = iota
	AttID
	AttIDRef
	AttNMToken
	AttNMTokens
	AttEnum
)

// AttDefault is a declared attribute's default kind.
type AttDefault int

// Attribute default kinds.
const (
	DefImplied  AttDefault = iota // #IMPLIED: optional
	DefRequired                   // #REQUIRED: must be present
	DefFixed                      // #FIXED "v": must equal v if present
	DefValue                      // "v": optional with default
)

// AttDecl is one attribute declaration.
type AttDecl struct {
	Element string
	Name    string
	Type    AttType
	Enum    []string // AttEnum only
	Default AttDefault
	Value   string // DefFixed/DefValue
}

// parseAttlists extracts <!ATTLIST> declarations from a DOCTYPE body and
// attaches them to the DTD.
func (d *DTD) parseAttlists(body string) error {
	for {
		i := strings.Index(body, "<!ATTLIST")
		if i < 0 {
			return nil
		}
		body = body[i+len("<!ATTLIST"):]
		end := strings.IndexByte(body, '>')
		if end < 0 {
			return fmt.Errorf("%w: unterminated <!ATTLIST", ErrSyntax)
		}
		if err := d.parseAttlist(strings.TrimSpace(body[:end])); err != nil {
			return err
		}
		body = body[end+1:]
	}
}

// parseAttlist parses "element (name type default)*".
func (d *DTD) parseAttlist(s string) error {
	fields := tokenizeAttlist(s)
	if len(fields) == 0 {
		return fmt.Errorf("%w: empty <!ATTLIST", ErrSyntax)
	}
	element := fields[0]
	rest := fields[1:]
	for len(rest) > 0 {
		if len(rest) < 3 {
			return fmt.Errorf("%w: truncated attribute declaration for %s", ErrSyntax, element)
		}
		decl := AttDecl{Element: element, Name: rest[0]}
		typ := rest[1]
		rest = rest[2:]
		switch {
		case typ == "CDATA":
			decl.Type = AttCDATA
		case typ == "ID":
			decl.Type = AttID
		case typ == "IDREF" || typ == "IDREFS":
			decl.Type = AttIDRef
		case typ == "NMTOKEN":
			decl.Type = AttNMToken
		case typ == "NMTOKENS":
			decl.Type = AttNMTokens
		case strings.HasPrefix(typ, "("):
			decl.Type = AttEnum
			inner := strings.Trim(typ, "()")
			for _, v := range strings.Split(inner, "|") {
				v = strings.TrimSpace(v)
				if v == "" {
					return fmt.Errorf("%w: empty enumeration value for %s/%s", ErrSyntax, element, decl.Name)
				}
				decl.Enum = append(decl.Enum, v)
			}
		default:
			return fmt.Errorf("%w: attribute type %q for %s/%s", ErrSyntax, typ, element, decl.Name)
		}
		// Default.
		if len(rest) == 0 {
			return fmt.Errorf("%w: missing default for %s/%s", ErrSyntax, element, decl.Name)
		}
		switch def := rest[0]; {
		case def == "#REQUIRED":
			decl.Default = DefRequired
			rest = rest[1:]
		case def == "#IMPLIED":
			decl.Default = DefImplied
			rest = rest[1:]
		case def == "#FIXED":
			if len(rest) < 2 || !isQuoted(rest[1]) {
				return fmt.Errorf("%w: #FIXED without value for %s/%s", ErrSyntax, element, decl.Name)
			}
			decl.Default = DefFixed
			decl.Value = unquote(rest[1])
			rest = rest[2:]
		case isQuoted(def):
			decl.Default = DefValue
			decl.Value = unquote(def)
			rest = rest[1:]
		default:
			return fmt.Errorf("%w: bad default %q for %s/%s", ErrSyntax, def, element, decl.Name)
		}
		d.Attributes = append(d.Attributes, decl)
	}
	return nil
}

// tokenizeAttlist splits an ATTLIST body into fields, keeping quoted
// strings and parenthesized enumerations intact.
func tokenizeAttlist(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		switch s[i] {
		case '"', '\'':
			q := s[i]
			i++
			for i < len(s) && s[i] != q {
				i++
			}
			i++ // past closing quote
		case '(':
			for i < len(s) && s[i] != ')' {
				i++
			}
			i++ // past )
		default:
			for i < len(s) && !isSpace(s[i]) {
				i++
			}
		}
		if i > len(s) {
			i = len(s)
		}
		out = append(out, s[start:i])
	}
	return out
}

func isQuoted(s string) bool {
	return len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0]
}

func unquote(s string) string { return s[1 : len(s)-1] }

// validateAttrs checks one element's attributes against the declarations.
func (d *DTD) validateAttrs(n *xmlkit.Node, path string, out *[]Violation) {
	var decls []AttDecl
	for _, a := range d.Attributes {
		if a.Element == n.Name {
			decls = append(decls, a)
		}
	}
	if len(decls) == 0 {
		return
	}
	byName := make(map[string]AttDecl, len(decls))
	for _, a := range decls {
		byName[a.Name] = a
	}
	for _, got := range n.Attrs {
		decl, ok := byName[got.Name]
		if !ok {
			*out = append(*out, Violation{Path: path, Element: n.Name,
				Msg: fmt.Sprintf("attribute %q not declared", got.Name)})
			continue
		}
		switch decl.Type {
		case AttEnum:
			found := false
			for _, v := range decl.Enum {
				if got.Value == v {
					found = true
				}
			}
			if !found {
				*out = append(*out, Violation{Path: path, Element: n.Name,
					Msg: fmt.Sprintf("attribute %q value %q not in (%s)",
						got.Name, got.Value, strings.Join(decl.Enum, "|"))})
			}
		case AttNMToken:
			if strings.ContainsAny(got.Value, " \t\r\n") || got.Value == "" {
				*out = append(*out, Violation{Path: path, Element: n.Name,
					Msg: fmt.Sprintf("attribute %q is not a single NMTOKEN", got.Name)})
			}
		}
		if decl.Default == DefFixed && got.Value != decl.Value {
			*out = append(*out, Violation{Path: path, Element: n.Name,
				Msg: fmt.Sprintf("attribute %q is #FIXED %q but has %q", got.Name, decl.Value, got.Value)})
		}
	}
	for _, decl := range decls {
		if decl.Default != DefRequired {
			continue
		}
		if _, ok := n.Attr(decl.Name); !ok {
			*out = append(*out, Violation{Path: path, Element: n.Name,
				Msg: fmt.Sprintf("required attribute %q missing", decl.Name)})
		}
	}
}
