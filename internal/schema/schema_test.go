package schema

import (
	"strings"
	"testing"

	"natix/internal/xmlkit"
)

const playDTD = `PLAY [
  <!ELEMENT PLAY (TITLE, PERSONAE?, ACT+)>
  <!ELEMENT TITLE (#PCDATA)>
  <!ELEMENT PERSONAE (TITLE, PERSONA+)>
  <!ELEMENT PERSONA (#PCDATA)>
  <!ELEMENT ACT (TITLE, SCENE+)>
  <!ELEMENT SCENE (TITLE, (SPEECH | STAGEDIR)+)>
  <!ELEMENT SPEECH (SPEAKER, LINE+)>
  <!ELEMENT SPEAKER (#PCDATA)>
  <!ELEMENT LINE (#PCDATA | STAGEDIR)*>
  <!ELEMENT STAGEDIR (#PCDATA)>
  <!ELEMENT MARKER EMPTY>
  <!ELEMENT ANYBOX ANY>
]`

func parseDTD(t *testing.T) *DTD {
	t.Helper()
	d, err := ParseDTD(playDTD)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseDTDDeclarations(t *testing.T) {
	d := parseDTD(t)
	if d.Name != "PLAY" {
		t.Fatalf("name = %q", d.Name)
	}
	if len(d.Order) != 12 {
		t.Fatalf("declarations = %d (%v)", len(d.Order), d.Order)
	}
	if d.Elements["MARKER"].Content != ContentEmpty {
		t.Fatal("MARKER not EMPTY")
	}
	if d.Elements["ANYBOX"].Content != ContentAny {
		t.Fatal("ANYBOX not ANY")
	}
	if d.Elements["TITLE"].Content != ContentMixed || len(d.Elements["TITLE"].Mixed) != 0 {
		t.Fatal("TITLE not (#PCDATA)")
	}
	line := d.Elements["LINE"]
	if line.Content != ContentMixed || len(line.Mixed) != 1 || line.Mixed[0] != "STAGEDIR" {
		t.Fatalf("LINE mixed = %+v", line)
	}
	play := d.Elements["PLAY"]
	if play.Content != ContentChildren {
		t.Fatal("PLAY not children content")
	}
	if got := play.Model.String(); got != "(TITLE, PERSONAE?, ACT+)" {
		t.Fatalf("PLAY model = %s", got)
	}
	scene := d.Elements["SCENE"].Model
	if got := scene.String(); got != "(TITLE, (SPEECH | STAGEDIR)+)" {
		t.Fatalf("SCENE model = %s", got)
	}
}

func TestParseDTDErrors(t *testing.T) {
	bad := []string{
		`X [ <!ELEMENT A (B,|C)> ]`,
		`X [ <!ELEMENT A (B|C,D)> ]`,
		`X [ <!ELEMENT A (B C)> ]`,
		`X [ <!ELEMENT A WHAT> ]`,
		`X [ <!ELEMENT A (#PCDATA|B)> ]`, // needs trailing *
		`X [ <!ELEMENT A (B> ]`,
		`X [ <!ELEMENT A ()> ]`,
	}
	for _, src := range bad {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q) succeeded", src)
		}
	}
	if _, err := ParseDTD(""); err == nil {
		t.Error("empty DTD accepted")
	}
}

func TestContentModelMatching(t *testing.T) {
	cases := []struct {
		model string
		seq   []string
		want  bool
	}{
		{"(A)", []string{"A"}, true},
		{"(A)", []string{}, false},
		{"(A)", []string{"A", "A"}, false},
		{"(A?)", []string{}, true},
		{"(A*)", []string{"A", "A", "A"}, true},
		{"(A+)", []string{}, false},
		{"(A+)", []string{"A", "A"}, true},
		{"(A, B)", []string{"A", "B"}, true},
		{"(A, B)", []string{"B", "A"}, false},
		{"(A | B)", []string{"B"}, true},
		{"(A | B)", []string{"C"}, false},
		{"(A, (B | C)+, D?)", []string{"A", "B", "C", "B"}, true},
		{"(A, (B | C)+, D?)", []string{"A", "D"}, false},
		{"(A, (B | C)+, D?)", []string{"A", "C", "D"}, true},
		{"((A, B) | (A, C))", []string{"A", "C"}, true}, // non-deterministic
		{"((A, B) | (A, C))", []string{"A"}, false},
		{"((A?)*)", []string{"A", "A"}, true},
		{"(A, B*, A)", []string{"A", "A"}, true},
		{"(A, B*, A)", []string{"A", "B", "B", "A"}, true},
	}
	for _, c := range cases {
		p := &particleParser{src: c.model}
		model, err := p.parse()
		if err != nil {
			t.Fatalf("parse %q: %v", c.model, err)
		}
		if got := matches(model, c.seq); got != c.want {
			t.Errorf("matches(%s, %v) = %v, want %v", c.model, c.seq, got, c.want)
		}
	}
}

func validDoc() string {
	return `<PLAY><TITLE>T</TITLE>
<ACT><TITLE>A1</TITLE>
<SCENE><TITLE>S1</TITLE>
<STAGEDIR>Enter all</STAGEDIR>
<SPEECH><SPEAKER>X</SPEAKER><LINE>hello <STAGEDIR>aside</STAGEDIR> there</LINE></SPEECH>
</SCENE>
</ACT>
</PLAY>`
}

func TestValidateAccepts(t *testing.T) {
	d := parseDTD(t)
	doc, err := xmlkit.ParseString(validDoc(), xmlkit.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Validate(doc.Root); len(v) != 0 {
		t.Fatalf("valid document rejected: %v", v)
	}
}

func TestValidateRejections(t *testing.T) {
	d := parseDTD(t)
	cases := []struct {
		name string
		doc  string
		want string // substring of some violation
	}{
		{"wrong root", `<ACT><TITLE>x</TITLE><SCENE><TITLE>s</TITLE><STAGEDIR>d</STAGEDIR></SCENE></ACT>`, "root element"},
		{"missing title", `<PLAY><ACT><TITLE>a</TITLE><SCENE><TITLE>s</TITLE><STAGEDIR>d</STAGEDIR></SCENE></ACT></PLAY>`, "do not match model"},
		{"speech without line", `<PLAY><TITLE>t</TITLE><ACT><TITLE>a</TITLE><SCENE><TITLE>s</TITLE><SPEECH><SPEAKER>x</SPEAKER></SPEECH></SCENE></ACT></PLAY>`, "do not match model"},
		{"undeclared element", `<PLAY><TITLE>t</TITLE><ACT><TITLE>a</TITLE><SCENE><TITLE>s</TITLE><STAGEDIR>d</STAGEDIR><FOO/></SCENE></ACT></PLAY>`, "not declared"},
		{"text in element content", `<PLAY><TITLE>t</TITLE>stray text<ACT><TITLE>a</TITLE><SCENE><TITLE>s</TITLE><STAGEDIR>d</STAGEDIR></SCENE></ACT></PLAY>`, "character data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := xmlkit.ParseString(c.doc, xmlkit.ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			vs := d.Validate(doc.Root)
			if len(vs) == 0 {
				t.Fatal("invalid document accepted")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Error(), c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no violation mentions %q: %v", c.want, vs)
			}
		})
	}
}

func TestValidateEmptyAndMixed(t *testing.T) {
	d, err := ParseDTD(`R [
	  <!ELEMENT R (M?, X*)>
	  <!ELEMENT M EMPTY>
	  <!ELEMENT X (#PCDATA | M)*>
	]`)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := xmlkit.ParseString(`<R><M/><X>text <M/> more</X><X/></R>`, xmlkit.ParseOptions{})
	if v := d.Validate(ok.Root); len(v) != 0 {
		t.Fatalf("valid doc rejected: %v", v)
	}
	// EMPTY element with content.
	bad, _ := xmlkit.ParseString(`<R><M>oops</M></R>`, xmlkit.ParseOptions{})
	if v := d.Validate(bad.Root); len(v) == 0 {
		t.Fatal("EMPTY with content accepted")
	}
	// Mixed content with a disallowed child.
	bad2, _ := xmlkit.ParseString(`<R><X><R/></X></R>`, xmlkit.ParseOptions{})
	if v := d.Validate(bad2.Root); len(v) == 0 {
		t.Fatal("disallowed mixed child accepted")
	}
}

// TestValidateCorpusDTD: the corpus generator's documents validate
// against the Shakespeare-style DTD.
func TestValidateWholeFromDoctype(t *testing.T) {
	src := `<?xml version="1.0"?>
<!DOCTYPE PLAY [
  <!ELEMENT PLAY (TITLE, ACT+)>
  <!ELEMENT TITLE (#PCDATA)>
  <!ELEMENT ACT (TITLE, SCENE+)>
  <!ELEMENT SCENE (TITLE, SPEECH+)>
  <!ELEMENT SPEECH (SPEAKER, LINE+)>
  <!ELEMENT SPEAKER (#PCDATA)>
  <!ELEMENT LINE (#PCDATA)>
]>
<PLAY><TITLE>t</TITLE><ACT><TITLE>a</TITLE><SCENE><TITLE>s</TITLE>
<SPEECH><SPEAKER>HAMLET</SPEAKER><LINE>words</LINE></SPEECH></SCENE></ACT></PLAY>`
	doc, err := xmlkit.ParseString(src, xmlkit.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.DoctypeRaw == "" {
		t.Fatal("parser did not capture the doctype body")
	}
	d, err := ParseDTD(doc.DoctypeRaw)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Validate(doc.Root); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

const attDTD = `R [
  <!ELEMENT R (E*)>
  <!ELEMENT E (#PCDATA)>
  <!ATTLIST R version CDATA #FIXED "1.0"
              lang (en | de | fr) "en">
  <!ATTLIST E id ID #REQUIRED
              kind NMTOKEN #IMPLIED>
]`

func TestAttlistParsing(t *testing.T) {
	d, err := ParseDTD(attDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Attributes) != 4 {
		t.Fatalf("attributes = %d (%+v)", len(d.Attributes), d.Attributes)
	}
	version := d.Attributes[0]
	if version.Element != "R" || version.Name != "version" ||
		version.Default != DefFixed || version.Value != "1.0" {
		t.Fatalf("version decl = %+v", version)
	}
	lang := d.Attributes[1]
	if lang.Type != AttEnum || len(lang.Enum) != 3 || lang.Enum[1] != "de" ||
		lang.Default != DefValue || lang.Value != "en" {
		t.Fatalf("lang decl = %+v", lang)
	}
	id := d.Attributes[2]
	if id.Element != "E" || id.Type != AttID || id.Default != DefRequired {
		t.Fatalf("id decl = %+v", id)
	}
}

func TestAttlistValidation(t *testing.T) {
	d, err := ParseDTD(attDTD)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := xmlkit.ParseString(`<R version="1.0" lang="de"><E id="a" kind="x">t</E></R>`, xmlkit.ParseOptions{})
	if v := d.Validate(ok.Root); len(v) != 0 {
		t.Fatalf("valid attrs rejected: %v", v)
	}
	cases := []struct{ doc, want string }{
		{`<R version="2.0"><E id="a">t</E></R>`, "#FIXED"},
		{`<R lang="xx"><E id="a">t</E></R>`, "not in"},
		{`<R><E>t</E></R>`, "required attribute"},
		{`<R bogus="1"><E id="a">t</E></R>`, "not declared"},
		{`<R><E id="a" kind="two words">t</E></R>`, "NMTOKEN"},
	}
	for _, c := range cases {
		doc, err := xmlkit.ParseString(c.doc, xmlkit.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		vs := d.Validate(doc.Root)
		found := false
		for _, v := range vs {
			if strings.Contains(v.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no violation mentioning %q in %v", c.doc, c.want, vs)
		}
	}
}

func TestAttlistErrors(t *testing.T) {
	bad := []string{
		`X [ <!ATTLIST E a WEIRD #IMPLIED> ]`,
		`X [ <!ATTLIST E a CDATA> ]`,
		`X [ <!ATTLIST E a CDATA #FIXED> ]`,
		`X [ <!ATTLIST E a () #IMPLIED> ]`,
		`X [ <!ATTLIST E a CDATA nodefault> ]`,
	}
	for _, src := range bad {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q) succeeded", src)
		}
	}
}
