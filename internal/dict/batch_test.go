package dict

import (
	"fmt"
	"testing"
)

func TestInternBatch(t *testing.T) {
	rm, pool, _ := newEnv(t)
	d, err := Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Intern("pre-existing"); err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "pre-existing", "alpha", "gamma"}
	ids, err := d.InternBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != ids[3] {
		t.Fatalf("duplicate name got distinct ids %d / %d", ids[0], ids[3])
	}
	pre, _ := d.Lookup("pre-existing")
	if ids[2] != pre {
		t.Fatalf("existing name re-assigned: %d != %d", ids[2], pre)
	}
	// Dense, in order.
	if ids[1] != ids[0]+1 || ids[4] != ids[1]+1 {
		t.Fatalf("ids not dense: %v", ids)
	}
	for i, n := range names {
		got, err := d.Name(ids[i])
		if err != nil || got != n {
			t.Fatalf("Name(%d) = %q, %v; want %q", ids[i], got, err, n)
		}
	}
	// Persistence: reopen from the same segment.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(rm)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if id, ok := d2.Lookup(n); !ok || id != ids[i] {
			t.Fatalf("after reopen, Lookup(%q) = %d, %v; want %d", n, id, ok, ids[i])
		}
	}
}

func TestBatchUncommittedInvisible(t *testing.T) {
	rm, _, _ := newEnv(t)
	d, err := Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	b := d.NewBatch()
	id, err := b.Intern("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("ghost"); ok {
		t.Fatal("uncommitted batch label visible through Lookup")
	}
	if _, err := d.Name(id); err == nil {
		t.Fatal("uncommitted batch id resolvable through Name")
	}
	// Re-interning within the batch is stable.
	id2, err := b.Intern("ghost")
	if err != nil || id2 != id {
		t.Fatalf("batch re-intern: %d, %v; want %d", id2, err, id)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Lookup("ghost"); !ok || got != id {
		t.Fatalf("after commit, Lookup = %d, %v; want %d", got, ok, id)
	}
	// Committing twice is a no-op; the batch keeps working.
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	id3, err := b.Intern("ghost")
	if err != nil || id3 != id {
		t.Fatalf("post-commit intern of committed name: %d, %v", id3, err)
	}
}

func TestBatchConflictFailsClosed(t *testing.T) {
	rm, _, _ := newEnv(t)
	d, err := Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	b := d.NewBatch()
	if _, err := b.Intern("mine"); err != nil {
		t.Fatal(err)
	}
	// A rogue writer grabs the id the batch handed out.
	if _, err := d.Intern("thief"); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err == nil {
		t.Fatal("commit after conflicting intern succeeded")
	}
	if _, ok := d.Lookup("mine"); ok {
		t.Fatal("failed commit published its labels")
	}
}

func TestBatchCommitSingleSave(t *testing.T) {
	rm, _, _ := newEnv(t)
	d, err := Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	// Interning k labels one by one rewrites the dictionary k times; a
	// batch must do it once. Compare physical write traffic.
	pool := rm.Segment().Pool()
	many := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s-label-%04d", prefix, i)
		}
		return out
	}
	pool.ResetStats()
	for _, n := range many("slow", 300) {
		if _, err := d.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	slowReads := pool.Stats().LogicalReads

	pool.ResetStats()
	if _, err := d.InternBatch(many("fast", 300)); err != nil {
		t.Fatal(err)
	}
	fastReads := pool.Stats().LogicalReads
	if fastReads*10 > slowReads {
		t.Fatalf("batch intern not materially cheaper: %d vs %d logical page accesses", fastReads, slowReads)
	}
}
