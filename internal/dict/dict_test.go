package dict

import (
	"fmt"
	"testing"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
)

func newEnv(t *testing.T) (*records.Manager, *buffer.Pool, *pagedev.Mem) {
	t.Helper()
	dev, err := pagedev.NewMem(4096)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return records.New(seg), pool, dev
}

func TestReservedLabels(t *testing.T) {
	rm, _, _ := newEnv(t)
	d, err := Create(rm)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Name(Text); n != "#text" {
		t.Fatalf("Name(Text) = %q", n)
	}
	if n, _ := d.Name(Scaffold); n != "#scaffold" {
		t.Fatalf("Name(Scaffold) = %q", n)
	}
	if _, err := d.Name(Invalid); err == nil {
		t.Fatal("Name(Invalid) succeeded")
	}
	if id, ok := d.Lookup("#text"); !ok || id != Text {
		t.Fatalf("Lookup(#text) = %d, %v", id, ok)
	}
}

func TestInternStableAndIdempotent(t *testing.T) {
	rm, _, _ := newEnv(t)
	d, _ := Create(rm)
	a, err := d.Intern("SPEECH")
	if err != nil {
		t.Fatal(err)
	}
	if a < FirstUserID {
		t.Fatalf("user id %d below FirstUserID", a)
	}
	b, _ := d.Intern("LINE")
	if a == b {
		t.Fatal("two labels share an id")
	}
	a2, _ := d.Intern("SPEECH")
	if a2 != a {
		t.Fatalf("re-intern changed id: %d -> %d", a, a2)
	}
	n, err := d.Name(a)
	if err != nil || n != "SPEECH" {
		t.Fatalf("Name(%d) = %q, %v", a, n, err)
	}
	if _, err := d.Intern(""); err == nil {
		t.Fatal("Intern(\"\") succeeded")
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	rm, pool, _ := newEnv(t)
	d, _ := Create(rm)
	ids := map[string]LabelID{}
	for _, name := range []string{"PLAY", "ACT", "SCENE", "SPEECH", "SPEAKER", "LINE", "@id"} {
		id, err := d.Intern(name)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(rm)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len after open = %d, want %d", d2.Len(), d.Len())
	}
	for name, want := range ids {
		got, ok := d2.Lookup(name)
		if !ok || got != want {
			t.Fatalf("Lookup(%q) = %d, %v; want %d", name, got, ok, want)
		}
		n, err := d2.Name(want)
		if err != nil || n != name {
			t.Fatalf("Name(%d) = %q, %v", want, n, err)
		}
	}
	// New labels continue from the right id.
	id, err := d2.Intern("STAGEDIR")
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != d.Len() {
		t.Fatalf("next id = %d, want %d", id, d.Len())
	}
}

func TestOpenWithoutCreateFails(t *testing.T) {
	rm, _, _ := newEnv(t)
	if _, err := Open(rm); err == nil {
		t.Fatal("Open on segment without dictionary succeeded")
	}
}

func TestManyLabelsGrowRecord(t *testing.T) {
	rm, pool, _ := newEnv(t)
	d, _ := Create(rm)
	for i := 0; i < 300; i++ {
		if _, err := d.Intern(fmt.Sprintf("ELEMENT-%04d", i)); err != nil {
			t.Fatalf("intern %d: %v", i, err)
		}
	}
	pool.FlushAll()
	d2, err := Open(rm)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 300+len(reservedNames) {
		t.Fatalf("Len = %d", d2.Len())
	}
	id, ok := d2.Lookup("ELEMENT-0299")
	if !ok {
		t.Fatal("lost a label")
	}
	if n, _ := d2.Name(id); n != "ELEMENT-0299" {
		t.Fatalf("Name round trip = %q", n)
	}
}
