// Package dict maintains the label dictionary: a persistent, bidirectional
// mapping between node labels (element/attribute names, Σ_DTD in the
// paper's logical model, §2.2) and compact 16-bit ids used throughout the
// physical representation ("the tag or attribute name ... is stored in the
// object header as 2 byte offset into a node type table", App. A).
//
// A handful of ids are reserved for labels that are not element names:
// text literals, scaffolding objects and attribute containers.
package dict

import (
	"encoding/binary"
	"errors"
	"fmt"

	"natix/internal/blobstore"
	"natix/internal/records"
	"natix/internal/segment"
)

// LabelID is a compact label identifier.
type LabelID uint16

// Reserved label ids. User labels start at FirstUserID.
const (
	Invalid  LabelID = 0 // never a valid label
	Text     LabelID = 1 // literal text nodes (#text)
	Scaffold LabelID = 2 // scaffolding aggregates/proxies (#scaffold)

	FirstUserID LabelID = 3
)

// reservedNames maps the reserved ids to their display names.
var reservedNames = []string{"", "#text", "#scaffold"}

// Errors.
var (
	ErrUnknownID = errors.New("dict: unknown label id")
	ErrFull      = errors.New("dict: dictionary record full")
	ErrCorrupt   = errors.New("dict: corrupt dictionary record")
)

// Dict is the persistent label dictionary. It is serialized as a blob
// whose id is registered in the segment header's RootDict slot.
type Dict struct {
	blobs  *blobstore.Store
	seg    *segment.Segment
	blobID blobstore.ID
	byName map[string]LabelID
	names  []string
}

// Create initializes an empty dictionary, persists it, and registers it
// in the segment header.
func Create(rm *records.Manager) (*Dict, error) {
	d := &Dict{blobs: blobstore.New(rm), seg: rm.Segment(), byName: make(map[string]LabelID)}
	d.names = append(d.names, reservedNames...)
	for id, n := range d.names {
		if id > 0 {
			d.byName[n] = LabelID(id)
		}
	}
	id, err := d.blobs.Write(d.encode(), 0)
	if err != nil {
		return nil, fmt.Errorf("dict: persist: %w", err)
	}
	d.blobID = id
	if err := d.registerRoot(); err != nil {
		return nil, err
	}
	return d, nil
}

// Open loads the dictionary registered in the segment header.
func Open(rm *records.Manager) (*Dict, error) {
	seg := rm.Segment()
	raw, err := seg.RootRID(segment.RootDict)
	if err != nil {
		return nil, err
	}
	if raw == 0 {
		return nil, errors.New("dict: no dictionary in segment")
	}
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	d := &Dict{blobs: blobstore.New(rm), seg: seg, blobID: records.DecodeRID(enc[:]), byName: make(map[string]LabelID)}
	body, err := d.blobs.Read(d.blobID)
	if err != nil {
		return nil, fmt.Errorf("dict: load: %w", err)
	}
	if err := d.decode(body); err != nil {
		return nil, err
	}
	return d, nil
}

// registerRoot stores the current blob id in the segment header.
func (d *Dict) registerRoot() error {
	var enc [records.RIDSize]byte
	d.blobID.Put(enc[:])
	return d.seg.SetRootRID(segment.RootDict, binary.LittleEndian.Uint64(enc[:]))
}

// encode serializes the dictionary: count, then (len, bytes) per name.
func (d *Dict) encode() []byte {
	out := make([]byte, 2, 64)
	binary.LittleEndian.PutUint16(out, uint16(len(d.names)))
	var l [2]byte
	for _, n := range d.names {
		binary.LittleEndian.PutUint16(l[:], uint16(len(n)))
		out = append(out, l[:]...)
		out = append(out, n...)
	}
	// Records have a minimum size; the empty dictionary is padded by the
	// trailing count of zero-length entries naturally exceeding it.
	for len(out) < records.MinRecordSize {
		out = append(out, 0)
	}
	return out
}

func (d *Dict) decode(b []byte) error {
	if len(b) < 2 {
		return ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint16(b))
	pos := 2
	d.names = d.names[:0]
	for i := 0; i < count; i++ {
		if pos+2 > len(b) {
			return fmt.Errorf("%w: truncated at entry %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+n > len(b) {
			return fmt.Errorf("%w: truncated name at entry %d", ErrCorrupt, i)
		}
		name := string(b[pos : pos+n])
		pos += n
		d.names = append(d.names, name)
		if i > 0 {
			d.byName[name] = LabelID(i)
		}
	}
	if len(d.names) < len(reservedNames) {
		return fmt.Errorf("%w: missing reserved labels", ErrCorrupt)
	}
	for i, want := range reservedNames {
		if i > 0 && d.names[i] != want {
			return fmt.Errorf("%w: reserved id %d is %q, want %q", ErrCorrupt, i, d.names[i], want)
		}
	}
	return nil
}

// save persists the current state. Blob ids change when the chunk count
// changes, so the header root is re-registered after every save.
func (d *Dict) save() error {
	id, err := d.blobs.Overwrite(d.blobID, d.encode())
	if err != nil {
		return err
	}
	d.blobID = id
	return d.registerRoot()
}

// Intern returns the id for name, adding and persisting it if new.
func (d *Dict) Intern(name string) (LabelID, error) {
	if name == "" {
		return Invalid, errors.New("dict: empty label")
	}
	if id, ok := d.byName[name]; ok {
		return id, nil
	}
	if len(d.names) > 0xFFFF {
		return Invalid, fmt.Errorf("%w: 16-bit id space exhausted", ErrFull)
	}
	id := LabelID(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	if err := d.save(); err != nil {
		// Roll back the in-memory addition so state matches disk.
		d.names = d.names[:len(d.names)-1]
		delete(d.byName, name)
		return Invalid, err
	}
	return id, nil
}

// Lookup returns the id for name without adding it.
func (d *Dict) Lookup(name string) (LabelID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the label text for id.
func (d *Dict) Name(id LabelID) (string, error) {
	if int(id) >= len(d.names) || id == Invalid {
		return "", fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	return d.names[id], nil
}

// Len returns the number of labels including the reserved ones.
func (d *Dict) Len() int { return len(d.names) }
