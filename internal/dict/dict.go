// Package dict maintains the label dictionary: a persistent, bidirectional
// mapping between node labels (element/attribute names, Σ_DTD in the
// paper's logical model, §2.2) and compact 16-bit ids used throughout the
// physical representation ("the tag or attribute name ... is stored in the
// object header as 2 byte offset into a node type table", App. A).
//
// A handful of ids are reserved for labels that are not element names:
// text literals, scaffolding objects and attribute containers.
//
// The read path (Lookup, Name, Len) is lock-free: the mapping lives in an
// immutable snapshot behind an atomic pointer, so query evaluation never
// serializes on the dictionary. Intern copies the snapshot, persists the
// extended dictionary, and publishes the new snapshot atomically; writers
// are serialized by an internal mutex. Labels are few and interning a new
// one is rare (imports of documents with unseen element names), so the
// copy-on-write cost is negligible.
package dict

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"natix/internal/blobstore"
	"natix/internal/records"
	"natix/internal/segment"
)

// LabelID is a compact label identifier.
type LabelID uint16

// Reserved label ids. User labels start at FirstUserID.
const (
	Invalid  LabelID = 0 // never a valid label
	Text     LabelID = 1 // literal text nodes (#text)
	Scaffold LabelID = 2 // scaffolding aggregates/proxies (#scaffold)

	FirstUserID LabelID = 3
)

// reservedNames maps the reserved ids to their display names.
var reservedNames = []string{"", "#text", "#scaffold"}

// Errors.
var (
	ErrUnknownID = errors.New("dict: unknown label id")
	ErrFull      = errors.New("dict: dictionary record full")
	ErrCorrupt   = errors.New("dict: corrupt dictionary record")
)

// dictState is one immutable snapshot of the mapping. Never mutate a
// published snapshot: Intern builds a fresh byName map (the names slice
// is append-only, so older snapshots index safely into their prefix).
type dictState struct {
	byName map[string]LabelID
	names  []string
}

// Dict is the persistent label dictionary. It is serialized as a blob
// whose id is registered in the segment header's RootDict slot. Reads
// are lock-free; Intern serializes internally, so the whole type is
// safe for concurrent use.
type Dict struct {
	blobs *blobstore.Store
	seg   *segment.Segment

	mu     sync.Mutex // serializes Intern/save; guards blobID
	blobID blobstore.ID
	state  atomic.Pointer[dictState]
}

// Create initializes an empty dictionary, persists it, and registers it
// in the segment header.
func Create(rm *records.Manager) (*Dict, error) {
	d := &Dict{blobs: blobstore.New(rm), seg: rm.Segment()}
	st := &dictState{byName: make(map[string]LabelID)}
	st.names = append(st.names, reservedNames...)
	for id, n := range st.names {
		if id > 0 {
			st.byName[n] = LabelID(id)
		}
	}
	d.state.Store(st)
	id, err := d.blobs.Write(d.encode(st), 0)
	if err != nil {
		return nil, fmt.Errorf("dict: persist: %w", err)
	}
	d.blobID = id
	if err := d.registerRoot(); err != nil {
		return nil, err
	}
	return d, nil
}

// Open loads the dictionary registered in the segment header.
func Open(rm *records.Manager) (*Dict, error) {
	seg := rm.Segment()
	raw, err := seg.RootRID(segment.RootDict)
	if err != nil {
		return nil, err
	}
	if raw == 0 {
		return nil, errors.New("dict: no dictionary in segment")
	}
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	d := &Dict{blobs: blobstore.New(rm), seg: seg, blobID: records.DecodeRID(enc[:])}
	body, err := d.blobs.Read(d.blobID)
	if err != nil {
		return nil, fmt.Errorf("dict: load: %w", err)
	}
	st, err := decode(body)
	if err != nil {
		return nil, err
	}
	d.state.Store(st)
	return d, nil
}

// Reload discards the in-memory snapshot and re-reads the dictionary
// from the segment. The document store calls it after a log-driven
// rollback restored pages under the in-memory state. Mutator context.
func (d *Dict) Reload() error {
	raw, err := d.seg.RootRID(segment.RootDict)
	if err != nil {
		return err
	}
	if raw == 0 {
		return errors.New("dict: no dictionary in segment")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	d.blobID = records.DecodeRID(enc[:])
	body, err := d.blobs.Read(d.blobID)
	if err != nil {
		return fmt.Errorf("dict: reload: %w", err)
	}
	st, err := decode(body)
	if err != nil {
		return err
	}
	d.state.Store(st)
	return nil
}

// registerRoot stores the current blob id in the segment header.
func (d *Dict) registerRoot() error {
	var enc [records.RIDSize]byte
	d.blobID.Put(enc[:])
	return d.seg.SetRootRID(segment.RootDict, binary.LittleEndian.Uint64(enc[:]))
}

// encode serializes a snapshot: count, then (len, bytes) per name.
func (d *Dict) encode(st *dictState) []byte {
	out := make([]byte, 2, 64)
	binary.LittleEndian.PutUint16(out, uint16(len(st.names)))
	var l [2]byte
	for _, n := range st.names {
		binary.LittleEndian.PutUint16(l[:], uint16(len(n)))
		out = append(out, l[:]...)
		out = append(out, n...)
	}
	// Records have a minimum size; the empty dictionary is padded by the
	// trailing count of zero-length entries naturally exceeding it.
	for len(out) < records.MinRecordSize {
		out = append(out, 0)
	}
	return out
}

func decode(b []byte) (*dictState, error) {
	if len(b) < 2 {
		return nil, ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint16(b))
	pos := 2
	st := &dictState{byName: make(map[string]LabelID, count)}
	for i := 0; i < count; i++ {
		if pos+2 > len(b) {
			return nil, fmt.Errorf("%w: truncated at entry %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+n > len(b) {
			return nil, fmt.Errorf("%w: truncated name at entry %d", ErrCorrupt, i)
		}
		name := string(b[pos : pos+n])
		pos += n
		st.names = append(st.names, name)
		if i > 0 {
			st.byName[name] = LabelID(i)
		}
	}
	if len(st.names) < len(reservedNames) {
		return nil, fmt.Errorf("%w: missing reserved labels", ErrCorrupt)
	}
	for i, want := range reservedNames {
		if i > 0 && st.names[i] != want {
			return nil, fmt.Errorf("%w: reserved id %d is %q, want %q", ErrCorrupt, i, st.names[i], want)
		}
	}
	return st, nil
}

// save persists a snapshot. Blob ids change when the chunk count
// changes, so the header root is re-registered after every save.
// Caller holds d.mu.
func (d *Dict) save(st *dictState) error {
	id, err := d.blobs.Overwrite(d.blobID, d.encode(st))
	if err != nil {
		return err
	}
	d.blobID = id
	return d.registerRoot()
}

// Intern returns the id for name, adding and persisting it if new.
func (d *Dict) Intern(name string) (LabelID, error) {
	if name == "" {
		return Invalid, errors.New("dict: empty label")
	}
	if id, ok := d.state.Load().byName[name]; ok {
		return id, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.state.Load()
	if id, ok := cur.byName[name]; ok { // raced with another Intern
		return id, nil
	}
	if len(cur.names) > 0xFFFF {
		return Invalid, fmt.Errorf("%w: 16-bit id space exhausted", ErrFull)
	}
	id := LabelID(len(cur.names))
	next := &dictState{
		byName: make(map[string]LabelID, len(cur.byName)+1),
		names:  append(cur.names[:len(cur.names):len(cur.names)], name),
	}
	for n, i := range cur.byName {
		next.byName[n] = i
	}
	next.byName[name] = id
	// Persist before publishing, so in-memory state never runs ahead of
	// disk when the save fails.
	if err := d.save(next); err != nil {
		return Invalid, err
	}
	d.state.Store(next)
	return id, nil
}

// Batch collects label interns and persists them with a single save.
// Intern alone re-encodes and rewrites the whole dictionary blob for
// every new label — O(labels²) bytes over a load that discovers its
// vocabulary as it parses. A batch assigns final ids immediately (so
// callers can embed them in records they are writing) but defers the
// encode/save/publish to one Commit.
//
// Ids handed out by an uncommitted batch are provisional: nothing is
// persisted or published until Commit, so a failed load that used them
// leaves no trace. Writers must be externally serialized against all
// other Intern/Commit callers (the document store's writer mutex does
// this); Commit fails, changing nothing, if the dictionary moved
// underneath the batch in a way that invalidates a handed-out id.
type Batch struct {
	d     *Dict
	base  *dictState
	names []string // new labels, in id order
	ids   map[string]LabelID
}

// NewBatch opens a batch against the current dictionary state.
func (d *Dict) NewBatch() *Batch {
	return &Batch{d: d, base: d.state.Load(), ids: make(map[string]LabelID)}
}

// Intern returns the id for name, assigning the next free id if the
// label is new to both the dictionary and the batch.
func (b *Batch) Intern(name string) (LabelID, error) {
	if name == "" {
		return Invalid, errors.New("dict: empty label")
	}
	if id, ok := b.base.byName[name]; ok {
		return id, nil
	}
	if id, ok := b.ids[name]; ok {
		return id, nil
	}
	next := len(b.base.names) + len(b.names)
	if next > 0xFFFF {
		return Invalid, fmt.Errorf("%w: 16-bit id space exhausted", ErrFull)
	}
	id := LabelID(next)
	b.names = append(b.names, name)
	b.ids[name] = id
	return id, nil
}

// Len returns the number of labels the batch would add.
func (b *Batch) Len() int { return len(b.names) }

// Commit persists and publishes the batch's labels with one save. A
// batch that added nothing is a no-op. After Commit the batch continues
// to work against the updated state.
func (b *Batch) Commit() error {
	if len(b.names) == 0 {
		return nil
	}
	d := b.d
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.state.Load()
	// Re-derive every id under the current state: normally cur == base
	// and ids match trivially, but if another writer interned between
	// NewBatch and Commit (a serialization bug upstream) the handed-out
	// ids may be stale — fail closed rather than persist a lie.
	next := &dictState{
		byName: make(map[string]LabelID, len(cur.byName)+len(b.names)),
		names:  cur.names[:len(cur.names):len(cur.names)],
	}
	for n, i := range cur.byName {
		next.byName[n] = i
	}
	for _, name := range b.names {
		want := b.ids[name]
		if id, ok := next.byName[name]; ok {
			if id != want {
				return fmt.Errorf("dict: concurrent intern invalidated batch id for %q", name)
			}
			continue
		}
		if LabelID(len(next.names)) != want {
			return fmt.Errorf("dict: concurrent intern invalidated batch id for %q", name)
		}
		next.names = append(next.names, name)
		next.byName[name] = want
	}
	if err := d.save(next); err != nil {
		return err
	}
	d.state.Store(next)
	b.base = next
	b.names = nil
	b.ids = make(map[string]LabelID)
	return nil
}

// InternBatch interns several labels with a single dictionary save,
// returning ids parallel to names.
func (d *Dict) InternBatch(names []string) ([]LabelID, error) {
	b := d.NewBatch()
	out := make([]LabelID, len(names))
	for i, n := range names {
		id, err := b.Intern(n)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	if err := b.Commit(); err != nil {
		return nil, err
	}
	return out, nil
}

// Lookup returns the id for name without adding it.
func (d *Dict) Lookup(name string) (LabelID, bool) {
	id, ok := d.state.Load().byName[name]
	return id, ok
}

// Name returns the label text for id.
func (d *Dict) Name(id LabelID) (string, error) {
	st := d.state.Load()
	if int(id) >= len(st.names) || id == Invalid {
		return "", fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	return st.names[id], nil
}

// Len returns the number of labels including the reserved ones.
func (d *Dict) Len() int { return len(d.state.Load().names) }
