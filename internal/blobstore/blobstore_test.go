package blobstore

import (
	"bytes"
	"math/rand"
	"testing"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
)

func newStore(t *testing.T, pageSize int) (*Store, *records.Manager) {
	t.Helper()
	dev, err := pagedev.NewMem(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rm := records.New(seg)
	return New(rm), rm
}

func TestRoundTripSizes(t *testing.T) {
	s, _ := newStore(t, 1024)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 8, 100, 1000, 1016, 1017, 5000, 50000} {
		data := make([]byte, n)
		rng.Read(data)
		id, err := s.Write(data, 0)
		if err != nil {
			t.Fatalf("Write(%d bytes): %v", n, err)
		}
		got, err := s.Read(id)
		if err != nil {
			t.Fatalf("Read(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d-byte blob corrupted (got %d bytes)", n, len(got))
		}
		sz, err := s.Size(id)
		if err != nil || sz != int64(n) {
			t.Fatalf("Size = %d, %v; want %d", sz, err, n)
		}
	}
}

func TestDeleteFreesAllChunks(t *testing.T) {
	s, rm := newStore(t, 1024)
	data := bytes.Repeat([]byte{0xAA}, 10_000)
	before := rm.Segment().NumPages()
	id, err := s.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); err == nil {
		t.Fatal("Read after Delete succeeded")
	}
	// All freed space is reusable: a second identical write must not grow
	// the segment beyond one extra allocation round.
	grown := rm.Segment().NumPages()
	if _, err := s.Write(data, 0); err != nil {
		t.Fatal(err)
	}
	after := rm.Segment().NumPages()
	if after > grown {
		t.Fatalf("rewrite after delete grew segment %d -> %d (first write grew from %d)", grown, after, before)
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := newStore(t, 1024)
	id, err := s.Write(bytes.Repeat([]byte{1}, 3000), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{2}, 7000)
	id2, err := s.Overwrite(id, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id2)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("overwritten blob corrupted: %v", err)
	}
}

func TestChunksAreClustered(t *testing.T) {
	s, rm := newStore(t, 1024)
	data := make([]byte, 20_000)
	id, err := s.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the chain and check page monotonicity-ish: consecutive chunks
	// should live on nearby pages (within a few pages of each other).
	cur := id
	var prev pagedev.PageNo
	first := true
	for !cur.IsNil() {
		body, err := rm.Read(cur)
		if err != nil {
			t.Fatal(err)
		}
		if !first {
			d := int64(cur.Page) - int64(prev)
			if d < -4 || d > 4 {
				t.Fatalf("chunk jumped from page %d to %d", prev, cur.Page)
			}
		}
		prev = cur.Page
		first = false
		cur = records.DecodeRID(body[:8])
	}
}

func TestLargeBlobAcrossManyPages(t *testing.T) {
	s, _ := newStore(t, 512)
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 100_000)
	rng.Read(data)
	id, err := s.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large blob corrupted")
	}
}
