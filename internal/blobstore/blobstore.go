// Package blobstore is a traditional large-object (BLOB) manager: it
// stores uninterpreted byte strings of arbitrary length by splitting them
// at page-capacity boundaries into a chain of records.
//
// This is exactly the class of storage the paper contrasts NATIX against
// ("large objects are split at arbitrary byte positions", §1/§5, citing
// EXODUS and the Starburst long-field manager). It serves three roles
// here:
//
//  1. the flat-stream baseline for benchmarks (whole documents as BLOBs),
//  2. overflow storage for literal nodes larger than a page, and
//  3. backing storage for variable-size system data (the label
//     dictionary, the document catalog).
//
// Chunks are allocated with proximity hints chaining each chunk near its
// predecessor, so fresh BLOBs lay out nearly sequentially and whole-object
// scans enjoy sequential I/O — the strength the paper concedes to flat
// storage.
package blobstore

import (
	"errors"
	"fmt"

	"natix/internal/pagedev"
	"natix/internal/records"
)

// ID identifies a stored blob (the RID of its head chunk).
type ID = records.RID

// chunk layout: [next RID, 8 bytes][payload].
const chunkHeader = records.RIDSize

// ErrTooManyChunks guards against cyclic chains from corruption.
var ErrTooManyChunks = errors.New("blobstore: chain too long (corrupt?)")

const maxChunks = 1 << 24

// Store provides blob operations over a record manager.
type Store struct {
	rm *records.Manager
}

// New creates a blob store over rm.
func New(rm *records.Manager) *Store { return &Store{rm: rm} }

// chunkPayload returns the payload capacity of one chunk.
func (s *Store) chunkPayload() int {
	return s.rm.MaxRecordSize() - chunkHeader
}

// Write stores data as a new blob and returns its id. The near hint
// biases placement of the head chunk; subsequent chunks chain near their
// predecessor.
func (s *Store) Write(data []byte, near pagedev.PageNo) (ID, error) {
	cp := s.chunkPayload()
	// Build the chain back to front so each chunk can embed its
	// successor's RID.
	var parts [][]byte
	for pos := 0; ; pos += cp {
		end := pos + cp
		if end > len(data) {
			end = len(data)
		}
		parts = append(parts, data[pos:end])
		if end == len(data) {
			break
		}
	}
	next := records.NilRID
	rids := make([]records.RID, len(parts))
	for i := len(parts) - 1; i >= 0; i-- {
		body := make([]byte, 0, chunkHeader+len(parts[i]))
		body = next.Encode(body)
		body = append(body, parts[i]...)
		hint := near
		if !next.IsNil() {
			// Place this chunk near its successor so the chain stays
			// physically clustered.
			p, err := s.rm.PageOf(next)
			if err != nil {
				return records.NilRID, err
			}
			hint = p
		}
		rid, err := s.rm.Insert(body, hint)
		if err != nil {
			return records.NilRID, fmt.Errorf("blobstore: chunk %d: %w", i, err)
		}
		rids[i] = rid
		next = rid
	}
	return rids[0], nil
}

// Read returns the blob contents.
func (s *Store) Read(id ID) ([]byte, error) {
	var out []byte
	cur := id
	for n := 0; !cur.IsNil(); n++ {
		if n >= maxChunks {
			return nil, ErrTooManyChunks
		}
		body, err := s.rm.Read(cur)
		if err != nil {
			return nil, fmt.Errorf("blobstore: chunk %d at %s: %w", n, cur, err)
		}
		if len(body) < chunkHeader {
			return nil, fmt.Errorf("blobstore: chunk %d at %s is short", n, cur)
		}
		out = append(out, body[chunkHeader:]...)
		cur = records.DecodeRID(body[:chunkHeader])
	}
	return out, nil
}

// Size returns the blob length in bytes without materializing it.
func (s *Store) Size(id ID) (int64, error) {
	var total int64
	cur := id
	for n := 0; !cur.IsNil(); n++ {
		if n >= maxChunks {
			return 0, ErrTooManyChunks
		}
		body, err := s.rm.Read(cur)
		if err != nil {
			return 0, err
		}
		if len(body) < chunkHeader {
			return 0, fmt.Errorf("blobstore: chunk %d at %s is short", n, cur)
		}
		total += int64(len(body) - chunkHeader)
		cur = records.DecodeRID(body[:chunkHeader])
	}
	return total, nil
}

// Pages returns every page holding a chunk of the blob, in chain order
// (duplicates possible when chunks share a page). The integrity
// scrubber walks these to attribute corrupt pages to the documents that
// own them; a read error mid-chain returns the pages reached so far
// along with the error, so the caller still learns which pages the
// intact prefix occupies.
func (s *Store) Pages(id ID) ([]pagedev.PageNo, error) {
	var out []pagedev.PageNo
	cur := id
	for n := 0; !cur.IsNil(); n++ {
		if n >= maxChunks {
			return out, ErrTooManyChunks
		}
		out = append(out, cur.Page)
		p, err := s.rm.PageOf(cur)
		if err != nil {
			return out, err
		}
		if p != cur.Page { // forwarded: the body lives elsewhere
			out = append(out, p)
		}
		body, err := s.rm.Read(cur)
		if err != nil {
			return out, fmt.Errorf("blobstore: chunk %d at %s: %w", n, cur, err)
		}
		if len(body) < chunkHeader {
			return out, fmt.Errorf("blobstore: chunk %d at %s is short", n, cur)
		}
		cur = records.DecodeRID(body[:chunkHeader])
	}
	return out, nil
}

// Delete removes the blob and all its chunks.
func (s *Store) Delete(id ID) error {
	cur := id
	for n := 0; !cur.IsNil(); n++ {
		if n >= maxChunks {
			return ErrTooManyChunks
		}
		body, err := s.rm.Read(cur)
		if err != nil {
			return err
		}
		if len(body) < chunkHeader {
			return fmt.Errorf("blobstore: chunk %d at %s is short", n, cur)
		}
		next := records.DecodeRID(body[:chunkHeader])
		if err := s.rm.Delete(cur); err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// Overwrite replaces the blob's contents, returning its (possibly new)
// id. The old chain is freed. Because chunk counts change with size,
// blobs do not promise stable ids across overwrites; callers that need a
// stable handle store the id in a record of their own.
func (s *Store) Overwrite(id ID, data []byte) (ID, error) {
	near, err := s.rm.PageOf(id)
	if err != nil {
		return records.NilRID, err
	}
	if err := s.Delete(id); err != nil {
		return records.NilRID, err
	}
	return s.Write(data, near)
}
