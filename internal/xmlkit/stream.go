package xmlkit

// Streaming (pull) parsing mode. The DOM parser (Parse) materializes the
// whole document before anything can be stored; StreamParser instead
// yields structural events straight off the tokenizer, reading the input
// in small chunks. Memory is bounded by the open-element stack plus one
// buffered window (plus one held-back whitespace run), not by document
// size — which is what lets the bulk loader import documents larger than
// RAM in a single pass.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// EventKind classifies streaming parse events.
type EventKind uint8

// Streaming events. Comments, PIs and the DOCTYPE are consumed silently,
// exactly as the DOM parser drops them from the logical tree.
const (
	EventStart EventKind = iota // element open: Name, Attrs
	EventEnd                    // element close: Name
	EventText                   // character data run (or a chunk of one)
)

// String returns a readable name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "Start"
	case EventEnd:
		return "End"
	case EventText:
		return "Text"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one structural parse event.
type Event struct {
	Kind  EventKind
	Name  string // element name (Start/End)
	Text  string // character data (Text)
	Attrs []Attr // attributes (Start)
	// Cont marks a Text event that continues the same character-data
	// token as the previous Text event (a long run split for memory).
	// Consumers that must reproduce token boundaries exactly (the bulk
	// loader chunking text into literals) join Cont chunks; Cont=false
	// starts a new token — distinct tokens (text vs. an adjacent CDATA
	// section) stay distinct nodes, as the DOM parser stores them.
	Cont bool
}

const (
	// streamChunk is the read granularity.
	streamChunk = 32 << 10
	// textSplitLimit is the largest single Text event: longer character
	// runs are emitted as several consecutive Text events so the parser's
	// memory stays bounded by the window, not by the run. Consumers that
	// concatenate adjacent text (the bulk loader, TextContent) see no
	// difference.
	textSplitLimit = 64 << 10
	// maxEntityLen bounds an encoded entity reference ("&#x10FFFF;" and
	// the named entities all fit); a split never cuts closer than this to
	// a trailing '&' so no entity is torn across Text events.
	maxEntityLen = 12
)

// StreamParser yields the events of one XML document in document order.
// Next returns io.EOF after the root element has closed and only
// ignorable content remains.
type StreamParser struct {
	r    io.Reader
	opts ParseOptions

	buf  []byte // unconsumed window; buf[0] is absolute offset base
	pos  int    // consumed prefix of buf
	base int    // absolute offset of buf[0]
	line int    // line number at pos
	eof  bool   // reader exhausted

	stack    []string          // open elements
	names    map[string]string // interned element/attribute names
	rootSeen bool
	pending  []Event // queued events (empty-tag close, held text chunks)

	// Text-run state. A "run" is one character-data token — a stretch of
	// plain text up to the next markup, or one CDATA section — possibly
	// split into several chunks for memory. Whitespace-only chunks are
	// held back until the run proves non-whitespace, so a split run is
	// dropped or kept exactly as the DOM parser treats the whole token.
	inText   bool
	inCData  bool     // consuming a CDATA section across Next calls
	textHeld []string // decoded chunks, all whitespace so far
	textKeep bool     // run has contained non-whitespace
	runCont  bool     // run has emitted at least one event
}

// NewStreamParser returns a pull parser over r.
func NewStreamParser(r io.Reader, opts ParseOptions) *StreamParser {
	return &StreamParser{r: r, opts: opts, line: 1}
}

// errf builds a positioned syntax error.
func (p *StreamParser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.base + p.pos, Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// fill reads one more chunk, compacting the consumed prefix first.
// Returns false when the reader is exhausted.
func (p *StreamParser) fill() (bool, error) {
	if p.eof {
		return false, nil
	}
	if p.pos > 0 {
		n := copy(p.buf, p.buf[p.pos:])
		p.buf = p.buf[:n]
		p.base += p.pos
		p.pos = 0
	}
	off := len(p.buf)
	// Grow by reslicing into existing capacity: after the first chunk the
	// compacted buffer almost always has room, so the read lands straight
	// in place with no allocation, zeroing or copy.
	if cap(p.buf)-off < streamChunk {
		nb := make([]byte, off, off+streamChunk)
		copy(nb, p.buf)
		p.buf = nb
	}
	p.buf = p.buf[:off+streamChunk]
	n, err := io.ReadFull(p.r, p.buf[off:])
	p.buf = p.buf[:off+n]
	switch err {
	case nil:
	case io.EOF, io.ErrUnexpectedEOF:
		p.eof = true
	default:
		return false, fmt.Errorf("xmlkit: read input: %w", err)
	}
	return n > 0, nil
}

// rest returns the unconsumed window.
func (p *StreamParser) rest() []byte { return p.buf[p.pos:] }

// advance consumes n bytes, tracking lines.
func (p *StreamParser) advance(n int) {
	p.line += bytes.Count(p.buf[p.pos:p.pos+n], newlineByte)
	p.pos += n
}

var newlineByte = []byte{'\n'}

// intern returns b as a string, reusing the previously allocated copy
// for names seen before. Element and attribute names repeat massively in
// real documents, so tag parsing ends up allocation-free in the steady
// state (the map lookup on a []byte key does not allocate).
func (p *StreamParser) intern(b []byte) string {
	if s, ok := p.names[string(b)]; ok {
		return s
	}
	if p.names == nil {
		p.names = make(map[string]string, 32)
	}
	s := string(b)
	p.names[s] = s
	return s
}

// ensure makes at least n unconsumed bytes available, if the input has
// them.
func (p *StreamParser) ensure(n int) error {
	for len(p.rest()) < n && !p.eof {
		if _, err := p.fill(); err != nil {
			return err
		}
	}
	return nil
}

// indexFrom finds needle in the window at or after the current position,
// refilling until found or EOF. It returns the offset relative to pos,
// or -1 at EOF.
func (p *StreamParser) indexFrom(needle string) (int, error) {
	from := 0
	for {
		win := p.rest()
		start := from - (len(needle) - 1)
		if start < 0 {
			start = 0
		}
		if i := bytes.Index(win[start:], []byte(needle)); i >= 0 {
			return start + i, nil
		}
		from = len(win)
		more, err := p.fill()
		if err != nil {
			return 0, err
		}
		if !more {
			return -1, nil
		}
	}
}

// Next returns the next structural event, or io.EOF at the end of the
// document. After any non-nil error the parser must not be used again.
func (p *StreamParser) Next() (Event, error) {
	if len(p.pending) > 0 {
		ev := p.pending[0]
		p.pending = p.pending[1:]
		return ev, nil
	}
	for {
		if p.inCData {
			ev, ok, err := p.scanCDataChunk()
			if err != nil {
				return Event{}, err
			}
			if ok {
				return ev, nil
			}
			continue
		}
		if err := p.ensure(1); err != nil {
			return Event{}, err
		}
		if len(p.rest()) == 0 {
			// True end of input.
			if err := p.flushTextRun(); err != nil {
				return Event{}, err
			}
			if len(p.pending) > 0 {
				return p.Next()
			}
			if len(p.stack) > 0 {
				return Event{}, p.errf("unclosed element <%s>", p.stack[len(p.stack)-1])
			}
			if !p.rootSeen {
				return Event{}, p.errf("document has no root element")
			}
			return Event{}, io.EOF
		}
		if p.rest()[0] != '<' {
			ev, ok, err := p.scanTextChunk()
			if err != nil {
				return Event{}, err
			}
			if ok {
				return ev, nil
			}
			continue // chunk held back or dropped
		}
		// Markup: a text run (if any) ends here.
		if err := p.flushTextRun(); err != nil {
			return Event{}, err
		}
		if len(p.pending) > 0 {
			return p.Next()
		}
		ev, ok, err := p.scanMarkup()
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
	}
}

// ReadBatch fills dst with the next events of the document and returns
// how many it produced. It returns 0, io.EOF at the end of the document
// (never events alongside an error). Batching amortizes the per-call
// overhead when events are handed across a pipeline stage boundary.
func (p *StreamParser) ReadBatch(dst []Event) (int, error) {
	n := 0
	for n < len(dst) {
		ev, err := p.Next()
		if err == io.EOF {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if err != nil {
			return 0, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// scanMarkup consumes one markup construct starting at '<'. ok is false
// for constructs that produce no event (comments, PIs, DOCTYPE).
func (p *StreamParser) scanMarkup() (Event, bool, error) {
	if err := p.ensure(9); err != nil { // len("<![CDATA[")
		return Event{}, false, err
	}
	rest := p.rest()
	switch {
	case hasPrefix(rest, "<!--"):
		return Event{}, false, p.skipUntil("<!--", "-->", "unterminated comment")
	case hasPrefix(rest, "<![CDATA["):
		return p.scanCDataStream()
	case hasPrefix(rest, "<!DOCTYPE"):
		return Event{}, false, p.skipDoctype()
	case hasPrefix(rest, "<?"):
		return Event{}, false, p.skipUntil("<?", "?>", "unterminated processing instruction")
	case hasPrefix(rest, "</"):
		return p.scanEndTagStream()
	default:
		return p.scanStartTagStream()
	}
}

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

// skipUntil consumes an open..close construct producing no event.
func (p *StreamParser) skipUntil(open, close, msg string) error {
	p.advance(len(open))
	i, err := p.indexFrom(close)
	if err != nil {
		return err
	}
	if i < 0 {
		return p.errf("%s", msg)
	}
	p.advance(i + len(close))
	return nil
}

// skipDoctype consumes <!DOCTYPE ...> with a bracketed internal subset.
func (p *StreamParser) skipDoctype() error {
	p.advance(len("<!DOCTYPE"))
	depth := 0
	from := 0
	for {
		win := p.rest()
		for i := from; i < len(win); i++ {
			switch win[i] {
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth <= 0 {
					p.advance(i + 1)
					return nil
				}
			}
		}
		from = len(win)
		more, err := p.fill()
		if err != nil {
			return err
		}
		if !more {
			return p.errf("unterminated DOCTYPE")
		}
	}
}

// scanCDataStream enters a CDATA section. The section is its own
// character-data token: it was preceded by a run flush (all markup is),
// and scanCDataChunk closes the run at "]]>", so its whitespace-only
// fate is decided independently of adjacent text — as the DOM parser
// decides each token.
func (p *StreamParser) scanCDataStream() (Event, bool, error) {
	p.advance(len("<![CDATA["))
	p.inCData = true
	return Event{}, false, nil
}

// scanCDataChunk consumes CDATA content from the window: up to the
// terminator, or a split-limit-sized chunk of an oversized section (so
// memory stays bounded by the window, not the section).
func (p *StreamParser) scanCDataChunk() (Event, bool, error) {
	for {
		win := p.rest()
		if i := bytes.Index(win, []byte("]]>")); i >= 0 {
			body := string(win[:i])
			p.advance(i + len("]]>"))
			p.inCData = false
			ev, ok, err := p.acceptText(body)
			if err != nil {
				return Event{}, false, err
			}
			if ferr := p.flushTextRun(); ferr != nil {
				return Event{}, false, ferr
			}
			if ok {
				return ev, true, nil
			}
			return p.popPending()
		}
		if len(win) >= textSplitLimit {
			// Hold the last two bytes back: they may be the "]]" of a
			// terminator straddling the chunk edge.
			body := string(win[:len(win)-2])
			p.advance(len(win) - 2)
			return p.acceptText(body)
		}
		more, err := p.fill()
		if err != nil {
			return Event{}, false, err
		}
		if !more {
			return Event{}, false, p.errf("unterminated CDATA section")
		}
	}
}

// popPending dequeues one queued event, if any.
func (p *StreamParser) popPending() (Event, bool, error) {
	if len(p.pending) == 0 {
		return Event{}, false, nil
	}
	ev := p.pending[0]
	p.pending = p.pending[1:]
	return ev, true, nil
}

// scanTextChunk consumes character data up to the next '<' or the split
// limit. ok reports whether an event is ready (chunks may be held back
// while a run is still all-whitespace).
func (p *StreamParser) scanTextChunk() (Event, bool, error) {
	var raw []byte
	for {
		win := p.rest()
		if i := indexByte(win, '<'); i >= 0 {
			raw = win[:i]
			break
		}
		if len(win) >= textSplitLimit {
			cut := len(win)
			// Never cut inside an entity reference: back off to before a
			// trailing '&' that has not seen its ';'.
			for k := cut - 1; k >= cut-maxEntityLen && k >= 0; k-- {
				if win[k] == ';' {
					break
				}
				if win[k] == '&' {
					cut = k
					break
				}
			}
			if cut == 0 {
				cut = len(win) // lone '&' run: let DecodeEntities reject it
			}
			raw = win[:cut]
			break
		}
		more, err := p.fill()
		if err != nil {
			return Event{}, false, err
		}
		if !more {
			raw = p.rest()
			break
		}
	}
	text, err := DecodeEntities(string(raw))
	if err != nil {
		return Event{}, false, p.errf("%v", err)
	}
	p.advance(len(raw))
	return p.acceptText(text)
}

// emitTextEvent queues one chunk of the current run, stamping Cont.
func (p *StreamParser) emitTextEvent(text string) {
	p.pending = append(p.pending, Event{Kind: EventText, Text: text, Cont: p.runCont})
	p.runCont = true
}

// acceptText feeds one decoded chunk into the text-run state.
func (p *StreamParser) acceptText(text string) (Event, bool, error) {
	p.inText = true
	if !p.textKeep && strings.TrimSpace(text) == "" {
		p.textHeld = append(p.textHeld, text)
		return Event{}, false, nil
	}
	if len(p.stack) == 0 {
		return Event{}, false, p.errf("text %q outside the root element", truncate(strings.TrimSpace(text), 20))
	}
	if !p.textKeep {
		p.textKeep = true
		// Release the held whitespace prefix ahead of this chunk.
		for _, h := range p.textHeld {
			p.emitTextEvent(h)
		}
		p.textHeld = nil
	}
	if len(p.pending) == 0 {
		// Common case: nothing queued ahead — hand the chunk straight
		// back instead of round-tripping it through the pending queue.
		ev := Event{Kind: EventText, Text: text, Cont: p.runCont}
		p.runCont = true
		return ev, true, nil
	}
	p.emitTextEvent(text)
	return p.popPending()
}

// flushTextRun ends the current character-data token: a run that stayed
// whitespace-only is dropped (or emitted whole under KeepWhitespace,
// when inside the root).
func (p *StreamParser) flushTextRun() error {
	if !p.inText {
		return nil
	}
	p.inText = false
	held := p.textHeld
	p.textHeld = nil
	keep := p.textKeep
	p.textKeep = false
	if !keep && p.opts.KeepWhitespace && len(p.stack) > 0 {
		for _, h := range held {
			p.emitTextEvent(h)
		}
	}
	p.runCont = false
	return nil
}

// scanEndTagStream consumes </name>.
func (p *StreamParser) scanEndTagStream() (Event, bool, error) {
	p.advance(len("</"))
	i, err := p.indexFrom(">")
	if err != nil {
		return Event{}, false, err
	}
	if i < 0 {
		return Event{}, false, p.errf("unterminated end tag")
	}
	nameB := bytes.TrimSpace(p.rest()[:i])
	// Fast path: a well-formed document's end tag matches the innermost
	// open element, whose (already validated, interned) name is on the
	// stack — one byte comparison, no lookup, no allocation.
	if len(p.stack) > 0 && string(nameB) == p.stack[len(p.stack)-1] {
		p.advance(i + 1)
		name := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		return Event{Kind: EventEnd, Name: name}, true, nil
	}
	if !validName(nameB) {
		return Event{}, false, p.errf("invalid end tag name %q", nameB)
	}
	name := p.intern(nameB)
	p.advance(i + 1)
	if len(p.stack) == 0 {
		return Event{}, false, p.errf("unexpected </%s>", name)
	}
	return Event{}, false, p.errf("</%s> closes <%s>", name, p.stack[len(p.stack)-1])
}

// scanStartTagStream consumes <name attr="v"...> or <name/>, ensuring
// the whole tag is buffered first (tags are small; text is what gets
// big).
func (p *StreamParser) scanStartTagStream() (Event, bool, error) {
	// Quoted attribute values may contain '>': scan with quote awareness,
	// extending the window until the real tag end is inside it.
	var end int
	for {
		win := p.rest()
		real := tagEnd(win)
		if real >= 0 {
			end = real
			break
		}
		more, err := p.fill()
		if err != nil {
			return Event{}, false, err
		}
		if !more {
			return Event{}, false, p.errf("unterminated start tag")
		}
	}

	tag := p.rest()[:end] // without '>'
	empty := len(tag) > 0 && tag[len(tag)-1] == '/'
	body := tag[1:] // without '<'
	if empty {
		body = body[:len(body)-1]
	}
	name, attrs, perr := p.parseTagBody(body)
	if perr != nil {
		return Event{}, false, p.errf("%v", perr)
	}
	p.advance(end + 1)

	if len(p.stack) == 0 {
		if p.rootSeen {
			return Event{}, false, p.errf("multiple root elements")
		}
		p.rootSeen = true
	}
	if !empty {
		p.stack = append(p.stack, name)
	} else {
		p.pending = append(p.pending, Event{Kind: EventEnd, Name: name})
	}
	return Event{Kind: EventStart, Name: name, Attrs: attrs}, true, nil
}

// tagEnd returns the offset of the '>' closing the tag at win[0] == '<',
// skipping quoted attribute values; -1 if not in the window.
func tagEnd(win []byte) int {
	var quote byte
	for i := 0; i < len(win); i++ {
		c := win[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return i
		}
	}
	return -1
}

// parseTagBody parses `name attr="v" ...` (no angle brackets, no
// trailing slash) straight out of the read window; element and attribute
// names are interned, so in the steady state only attribute values (and
// the Attrs slice itself) allocate.
func (p *StreamParser) parseTagBody(body []byte) (string, []Attr, error) {
	i := 0
	for i < len(body) && isNameByte(body[i]) {
		i++
	}
	if !validName(body[:i]) {
		return "", nil, fmt.Errorf("invalid tag name %q", body[:i])
	}
	name := p.intern(body[:i])
	var attrs []Attr
	for {
		for i < len(body) && isSpace(body[i]) {
			i++
		}
		if i >= len(body) {
			return name, attrs, nil
		}
		astart := i
		for i < len(body) && isNameByte(body[i]) {
			i++
		}
		if !validName(body[astart:i]) {
			return "", nil, fmt.Errorf("invalid attribute name in <%s>", name)
		}
		aname := p.intern(body[astart:i])
		for i < len(body) && isSpace(body[i]) {
			i++
		}
		if i >= len(body) || body[i] != '=' {
			return "", nil, fmt.Errorf("attribute %q in <%s> missing '='", aname, name)
		}
		i++
		for i < len(body) && isSpace(body[i]) {
			i++
		}
		if i >= len(body) || (body[i] != '"' && body[i] != '\'') {
			return "", nil, fmt.Errorf("attribute %q in <%s> missing quoted value", aname, name)
		}
		q := body[i]
		i++
		vstart := i
		for i < len(body) && body[i] != q {
			i++
		}
		if i >= len(body) {
			return "", nil, fmt.Errorf("unterminated value for attribute %q in <%s>", aname, name)
		}
		val, err := DecodeEntities(string(body[vstart:i]))
		if err != nil {
			return "", nil, fmt.Errorf("attribute %q in <%s>: %v", aname, name, err)
		}
		attrs = append(attrs, Attr{Name: aname, Value: val})
		i++
	}
}

func indexByte(b []byte, c byte) int { return bytes.IndexByte(b, c) }
