package xmlkit

import (
	"bufio"
	"io"
	"strings"
)

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes an attribute value for double-quoted output.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<>&"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Serialize writes the subtree rooted at n as XML markup. No whitespace
// is invented, so Parse(Serialize(t)) reproduces t exactly.
func Serialize(w io.Writer, n *Node) error {
	bw := bufio.NewWriter(w)
	if err := writeNode(bw, n); err != nil {
		return err
	}
	return bw.Flush()
}

// SerializeString renders the subtree to a string.
func SerializeString(n *Node) string {
	var b strings.Builder
	_ = Serialize(&b, n)
	return b.String()
}

func writeNode(w *bufio.Writer, n *Node) error {
	if n.IsText() {
		_, err := w.WriteString(EscapeText(n.Text))
		return err
	}
	if err := w.WriteByte('<'); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Name); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
		if _, err := w.WriteString(a.Name); err != nil {
			return err
		}
		if _, err := w.WriteString(`="`); err != nil {
			return err
		}
		if _, err := w.WriteString(EscapeAttr(a.Value)); err != nil {
			return err
		}
		if err := w.WriteByte('"'); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		_, err := w.WriteString("/>")
		return err
	}
	if err := w.WriteByte('>'); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("</"); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Name); err != nil {
		return err
	}
	return w.WriteByte('>')
}
