package xmlkit

import (
	"strings"
	"testing"
)

// benchDoc is a small play fragment repeated to parser-meaningful size.
var benchDoc = "<PLAY><TITLE>Benchmark</TITLE>" + strings.Repeat(
	`<SPEECH><SPEAKER>IAGO</SPEAKER><LINE>I am not what I am &amp; never was;</LINE><LINE>demand me nothing</LINE></SPEECH>`, 200) + "</PLAY>"

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		tz := NewTokenizerString(benchDoc)
		for {
			tok, err := tz.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok.Kind == TokenEOF {
				break
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(benchDoc, ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	doc, err := ParseString(benchDoc, ParseOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchDoc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if SerializeString(doc.Root) == "" {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkDecodeEntities(b *testing.B) {
	s := strings.Repeat("fish &amp; chips &lt;&gt; &#65; ", 50)
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEntities(s); err != nil {
			b.Fatal(err)
		}
	}
}
