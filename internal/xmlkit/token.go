// Package xmlkit is a self-contained XML toolkit: a streaming tokenizer,
// a tree parser, a serializer and a DTD-lite reader.
//
// The paper's experiments drive NATIX through "an XML parser written in
// C" (§4.3); this package plays that role. It covers the XML subset
// needed for document storage — elements, attributes, character data,
// CDATA, comments, processing instructions, DOCTYPE with an internal
// subset, and the predefined/numeric entities. It does not implement
// namespaces or external DTD resolution, which the paper does not use.
package xmlkit

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TokenKind classifies tokens produced by the Tokenizer.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota
	TokenStartTag
	TokenEndTag
	TokenEmptyTag // <name/>: start and end in one token
	TokenText     // character data (entities decoded, CDATA unwrapped)
	TokenComment
	TokenPI      // processing instruction, including the XML declaration
	TokenDoctype // document type declaration; Text holds the raw body
)

// String returns a readable name for the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "EOF"
	case TokenStartTag:
		return "StartTag"
	case TokenEndTag:
		return "EndTag"
	case TokenEmptyTag:
		return "EmptyTag"
	case TokenText:
		return "Text"
	case TokenComment:
		return "Comment"
	case TokenPI:
		return "PI"
	case TokenDoctype:
		return "Doctype"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Attr is a name="value" attribute.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical unit of an XML document.
type Token struct {
	Kind  TokenKind
	Name  string // tag name, PI target or doctype name
	Text  string // character data, comment body, PI content, doctype body
	Attrs []Attr // start/empty tags only
}

// SyntaxError reports a malformed document with a byte offset and line.
type SyntaxError struct {
	Offset int
	Line   int
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlkit: line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}

// Tokenizer splits a document into tokens. It reads the entire input up
// front; NATIX documents are parsed whole before insertion anyway.
type Tokenizer struct {
	src  string
	pos  int
	line int
}

// NewTokenizer creates a tokenizer over r.
func NewTokenizer(r io.Reader) (*Tokenizer, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlkit: read input: %w", err)
	}
	return NewTokenizerString(string(b)), nil
}

// NewTokenizerString creates a tokenizer over a string.
func NewTokenizerString(src string) *Tokenizer {
	// Strip a UTF-8 byte-order mark if present.
	src = strings.TrimPrefix(src, "\xef\xbb\xbf")
	return &Tokenizer{src: src, line: 1}
}

func (t *Tokenizer) errf(format string, args ...any) error {
	return &SyntaxError{Offset: t.pos, Line: t.line, Msg: fmt.Sprintf(format, args...)}
}

// advance moves past n bytes, tracking line numbers.
func (t *Tokenizer) advance(n int) {
	for i := 0; i < n; i++ {
		if t.src[t.pos+i] == '\n' {
			t.line++
		}
	}
	t.pos += n
}

// rest returns the unconsumed input.
func (t *Tokenizer) rest() string { return t.src[t.pos:] }

// Next returns the next token, or a token of kind TokenEOF at the end.
func (t *Tokenizer) Next() (Token, error) {
	if t.pos >= len(t.src) {
		return Token{Kind: TokenEOF}, nil
	}
	if t.src[t.pos] != '<' {
		return t.scanText()
	}
	rest := t.rest()
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return t.scanComment()
	case strings.HasPrefix(rest, "<![CDATA["):
		return t.scanCData()
	case strings.HasPrefix(rest, "<!DOCTYPE"):
		return t.scanDoctype()
	case strings.HasPrefix(rest, "<?"):
		return t.scanPI()
	case strings.HasPrefix(rest, "</"):
		return t.scanEndTag()
	default:
		return t.scanStartTag()
	}
}

// scanText consumes character data up to the next '<'.
func (t *Tokenizer) scanText() (Token, error) {
	end := strings.IndexByte(t.rest(), '<')
	if end < 0 {
		end = len(t.rest())
	}
	raw := t.rest()[:end]
	t.advance(end)
	text, err := DecodeEntities(raw)
	if err != nil {
		return Token{}, t.errf("%v", err)
	}
	return Token{Kind: TokenText, Text: text}, nil
}

func (t *Tokenizer) scanComment() (Token, error) {
	body := t.rest()[len("<!--"):]
	end := strings.Index(body, "-->")
	if end < 0 {
		return Token{}, t.errf("unterminated comment")
	}
	t.advance(len("<!--") + end + len("-->"))
	return Token{Kind: TokenComment, Text: body[:end]}, nil
}

func (t *Tokenizer) scanCData() (Token, error) {
	body := t.rest()[len("<![CDATA["):]
	end := strings.Index(body, "]]>")
	if end < 0 {
		return Token{}, t.errf("unterminated CDATA section")
	}
	t.advance(len("<![CDATA[") + end + len("]]>"))
	return Token{Kind: TokenText, Text: body[:end]}, nil
}

// scanDoctype consumes <!DOCTYPE name [internal subset]> and returns the
// raw body (everything between the name and the closing '>').
func (t *Tokenizer) scanDoctype() (Token, error) {
	body := t.rest()[len("<!DOCTYPE"):]
	// Find the closing '>' at bracket depth zero (the internal subset may
	// contain markup declarations ending in '>').
	depth := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				content := strings.TrimSpace(body[:i])
				name := content
				if j := strings.IndexAny(content, " \t\r\n["); j >= 0 {
					name = content[:j]
				}
				t.advance(len("<!DOCTYPE") + i + 1)
				return Token{Kind: TokenDoctype, Name: name, Text: content}, nil
			}
		}
	}
	return Token{}, t.errf("unterminated DOCTYPE")
}

func (t *Tokenizer) scanPI() (Token, error) {
	body := t.rest()[len("<?"):]
	end := strings.Index(body, "?>")
	if end < 0 {
		return Token{}, t.errf("unterminated processing instruction")
	}
	content := body[:end]
	name := content
	var rest string
	if i := strings.IndexAny(content, " \t\r\n"); i >= 0 {
		name, rest = content[:i], strings.TrimSpace(content[i:])
	}
	t.advance(len("<?") + end + len("?>"))
	return Token{Kind: TokenPI, Name: name, Text: rest}, nil
}

func (t *Tokenizer) scanEndTag() (Token, error) {
	body := t.rest()[len("</"):]
	end := strings.IndexByte(body, '>')
	if end < 0 {
		return Token{}, t.errf("unterminated end tag")
	}
	name := strings.TrimSpace(body[:end])
	if !validName(name) {
		return Token{}, t.errf("invalid end tag name %q", name)
	}
	t.advance(len("</") + end + 1)
	return Token{Kind: TokenEndTag, Name: name}, nil
}

func (t *Tokenizer) scanStartTag() (Token, error) {
	// t.src[t.pos] == '<'
	i := t.pos + 1
	start := i
	for i < len(t.src) && isNameByte(t.src[i]) {
		i++
	}
	name := t.src[start:i]
	if !validName(name) {
		return Token{}, t.errf("invalid tag name %q", name)
	}
	var attrs []Attr
	for {
		// Skip whitespace.
		for i < len(t.src) && isSpace(t.src[i]) {
			i++
		}
		if i >= len(t.src) {
			return Token{}, t.errf("unterminated start tag <%s", name)
		}
		switch t.src[i] {
		case '>':
			t.advance(i + 1 - t.pos)
			return Token{Kind: TokenStartTag, Name: name, Attrs: attrs}, nil
		case '/':
			if i+1 >= len(t.src) || t.src[i+1] != '>' {
				return Token{}, t.errf("expected /> in tag <%s", name)
			}
			t.advance(i + 2 - t.pos)
			return Token{Kind: TokenEmptyTag, Name: name, Attrs: attrs}, nil
		}
		// Attribute.
		astart := i
		for i < len(t.src) && isNameByte(t.src[i]) {
			i++
		}
		aname := t.src[astart:i]
		if !validName(aname) {
			return Token{}, t.errf("invalid attribute name in <%s>", name)
		}
		for i < len(t.src) && isSpace(t.src[i]) {
			i++
		}
		if i >= len(t.src) || t.src[i] != '=' {
			return Token{}, t.errf("attribute %q in <%s> missing '='", aname, name)
		}
		i++
		for i < len(t.src) && isSpace(t.src[i]) {
			i++
		}
		if i >= len(t.src) || (t.src[i] != '"' && t.src[i] != '\'') {
			return Token{}, t.errf("attribute %q in <%s> missing quoted value", aname, name)
		}
		quote := t.src[i]
		i++
		vstart := i
		for i < len(t.src) && t.src[i] != quote {
			i++
		}
		if i >= len(t.src) {
			return Token{}, t.errf("unterminated value for attribute %q in <%s>", aname, name)
		}
		val, err := DecodeEntities(t.src[vstart:i])
		if err != nil {
			return Token{}, t.errf("attribute %q in <%s>: %v", aname, name, err)
		}
		attrs = append(attrs, Attr{Name: aname, Value: val})
		i++
	}
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

func isNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '-', b == '_', b == '.', b == ':':
		return true
	case b >= 0x80: // multi-byte UTF-8 names are accepted verbatim
		return true
	}
	return false
}

func validName[T string | []byte](s T) bool {
	if len(s) == 0 {
		return false
	}
	c := s[0]
	if c >= '0' && c <= '9' || c == '-' || c == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameByte(s[i]) {
			return false
		}
	}
	return true
}

// errBadEntity is wrapped into SyntaxErrors by the tokenizer.
var errBadEntity = errors.New("invalid entity reference")

// DecodeEntities replaces the predefined and numeric character entities
// in s. A bare '&' that does not form a valid entity is an error.
func DecodeEntities(s string) (string, error) {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 12 {
			return "", fmt.Errorf("%w near %q", errBadEntity, truncate(s, 12))
		}
		ent := s[1:semi]
		switch ent {
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "amp":
			b.WriteByte('&')
		case "apos":
			b.WriteByte('\'')
		case "quot":
			b.WriteByte('"')
		default:
			if len(ent) > 1 && ent[0] == '#' {
				digits, base := ent[1:], 10
				if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
					digits, base = digits[1:], 16
				}
				n, err := strconv.ParseUint(digits, base, 32)
				if err != nil {
					return "", fmt.Errorf("%w: &%s;", errBadEntity, ent)
				}
				b.WriteRune(rune(n))
			} else {
				return "", fmt.Errorf("%w: &%s;", errBadEntity, ent)
			}
		}
		s = s[semi+1:]
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String(), nil
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
