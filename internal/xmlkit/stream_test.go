package xmlkit

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// treeFromEvents rebuilds a DOM from streaming events, merging nothing.
func treeFromEvents(src string, opts ParseOptions) (*Node, error) {
	p := NewStreamParser(strings.NewReader(src), opts)
	var stack []*Node
	var root *Node
	for {
		ev, err := p.Next()
		if err == io.EOF {
			if root == nil {
				return nil, errors.New("no root")
			}
			return root, nil
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case EventStart:
			n := &Node{Name: ev.Name, Attrs: ev.Attrs}
			if len(stack) == 0 {
				root = n
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case EventEnd:
			stack = stack[:len(stack)-1]
		case EventText:
			top := stack[len(stack)-1]
			top.Children = append(top.Children, NewText(ev.Text))
		}
	}
}

// mergeText coalesces adjacent text children in place, recursively, so
// trees built from split text runs compare equal to DOM-parsed ones.
func mergeText(n *Node) {
	var out []*Node
	for _, c := range n.Children {
		if c.IsText() && len(out) > 0 && out[len(out)-1].IsText() {
			out[len(out)-1].Text += c.Text
			continue
		}
		mergeText(c)
		out = append(out, c)
	}
	n.Children = out
}

// checkStreamEquiv parses src both ways and requires identical logical
// trees (after text-run coalescing on both sides).
func checkStreamEquiv(t *testing.T, src string, opts ParseOptions) {
	t.Helper()
	doc, err := ParseString(src, opts)
	if err != nil {
		t.Fatalf("DOM parse: %v", err)
	}
	got, err := treeFromEvents(src, opts)
	if err != nil {
		t.Fatalf("stream parse: %v", err)
	}
	mergeText(doc.Root)
	mergeText(got)
	if !Equal(doc.Root, got) {
		t.Fatalf("stream tree differs from DOM tree\nDOM:    %s\nstream: %s",
			SerializeString(doc.Root), SerializeString(got))
	}
}

func TestStreamEquivalence(t *testing.T) {
	cases := map[string]string{
		"simple":     `<a><b>hi</b><c x="1" y="two"/></a>`,
		"attrs":      `<r id="1" name="n&amp;m"><e a='sq'/><e a="&#65;"/></r>`,
		"mixedText":  `<p>before<b>bold</b>after<i>it</i>tail</p>`,
		"cdata":      `<a>x<![CDATA[<raw> & stuff]]>y</a>`,
		"comments":   `<?xml version="1.0"?><!-- c --><a><!-- in -->t<?pi data?></a><!-- after -->`,
		"doctype":    `<!DOCTYPE a [<!ELEMENT a (b)*>]><a><b/></a>`,
		"entities":   `<a>&lt;&gt;&amp;&apos;&quot;&#x41;&#66;</a>`,
		"whitespace": "<a>\n  <b> x </b>\n  <c/>\n</a>",
		"deep":       strings.Repeat("<d>", 200) + "leaf" + strings.Repeat("</d>", 200),
		"gtInAttr":   `<a x="1>2"><b y='a>b'/></a>`,
		"emptyRoot":  `<a/>`,
		"utf8":       `<räksmörgås läge="åäö">grüße</räksmörgås>`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			checkStreamEquiv(t, src, ParseOptions{})
			checkStreamEquiv(t, src, ParseOptions{KeepWhitespace: true})
		})
	}
}

// TestStreamEquivalenceLarge drives the chunked refill paths: a document
// bigger than several read chunks with tags likely to straddle chunk
// boundaries.
func TestStreamEquivalenceLarge(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&b, `<item id="%d" cls="odd&amp;even">value %d with some padding text</item>`, i, i)
	}
	b.WriteString("</root>")
	checkStreamEquiv(t, b.String(), ParseOptions{})
}

// TestStreamLongTextSplit checks that a text run beyond the split limit
// arrives as several events that concatenate to the original, with no
// entity torn at a chunk edge.
func TestStreamLongTextSplit(t *testing.T) {
	long := strings.Repeat("abcdefgh ", 20<<10) // ~180 KB
	// Sprinkle entities so splits risk landing inside one.
	long = long[:textSplitLimit-3] + "&amp;" + long[textSplitLimit-3:] + "&#x41;"
	src := "<a>" + long + "</a>"
	p := NewStreamParser(strings.NewReader(src), ParseOptions{})
	var got strings.Builder
	events := 0
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventText {
			events++
			got.WriteString(ev.Text)
		}
	}
	if events < 2 {
		t.Fatalf("long run produced %d text events, want several", events)
	}
	want, err := DecodeEntities(long)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatalf("reassembled text differs: got %d bytes, want %d", got.Len(), len(want))
	}
}

// TestStreamWhitespaceRunSplit: a run whose first chunks are whitespace
// but which is non-whitespace overall must be kept whole; a run that is
// whitespace throughout must be dropped (default) even when it spans
// chunks.
func TestStreamWhitespaceRunSplit(t *testing.T) {
	ws := strings.Repeat(" \n\t", textSplitLimit/2)
	src := "<a>" + ws + "word</a>"
	root, err := treeFromEvents(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mergeText(root)
	if len(root.Children) != 1 || root.Children[0].Text != ws+"word" {
		t.Fatalf("leading-whitespace run not preserved whole")
	}
	src = "<a><b/>" + ws + "<c/></a>"
	root, err = treeFromEvents(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 2 {
		t.Fatalf("whitespace-only run not dropped: %d children", len(root.Children))
	}
}

// TestStreamCDATATokens: CDATA sections are their own character-data
// tokens — whitespace-only ones are dropped independently of adjacent
// text, and token boundaries are visible through Cont.
func TestStreamCDATATokens(t *testing.T) {
	collect := func(src string) []Event {
		p := NewStreamParser(strings.NewReader(src), ParseOptions{})
		var evs []Event
		for {
			ev, err := p.Next()
			if err == io.EOF {
				return evs
			}
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if ev.Kind == EventText {
				evs = append(evs, ev)
			}
		}
	}
	// Whitespace-only / empty CDATA between text: dropped, like the DOM
	// parser drops the token.
	for _, src := range []string{`<a>foo<![CDATA[  ]]>bar</a>`, `<a>foo<![CDATA[]]>bar</a>`} {
		evs := collect(src)
		if len(evs) != 2 || evs[0].Text != "foo" || evs[1].Text != "bar" {
			t.Fatalf("%q: events %+v", src, evs)
		}
		if evs[0].Cont || evs[1].Cont {
			t.Fatalf("%q: distinct tokens marked as continuations", src)
		}
	}
	// Whitespace around a kept CDATA stays dropped.
	evs := collect(`<a>  <![CDATA[x]]>  </a>`)
	if len(evs) != 1 || evs[0].Text != "x" {
		t.Fatalf("events %+v", evs)
	}
	// Adjacent text and CDATA are separate tokens (Cont=false each).
	evs = collect(`<a>one<![CDATA[two]]>three</a>`)
	if len(evs) != 3 || evs[0].Cont || evs[1].Cont || evs[2].Cont {
		t.Fatalf("events %+v", evs)
	}
}

// TestStreamGiantCDATASplit: an oversized CDATA section arrives as
// several continuation chunks that reassemble exactly.
func TestStreamGiantCDATASplit(t *testing.T) {
	body := strings.Repeat("cdata payload ] ]> almost ", 10_000) // ~260 KB, terminator look-alikes
	src := `<a><![CDATA[` + body + `]]></a>`
	p := NewStreamParser(strings.NewReader(src), ParseOptions{})
	var got strings.Builder
	var texts int
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventText {
			if texts > 0 && !ev.Cont {
				t.Fatal("split CDATA chunk not marked Cont")
			}
			texts++
			got.WriteString(ev.Text)
		}
	}
	if texts < 2 {
		t.Fatalf("giant CDATA produced %d text events, want several", texts)
	}
	if got.String() != body {
		t.Fatalf("reassembled CDATA differs: %d vs %d bytes", got.Len(), len(body))
	}
}

func TestStreamErrors(t *testing.T) {
	cases := map[string]string{
		"mismatch":      `<a><b></a></b>`,
		"unclosed":      `<a><b>`,
		"multipleRoots": `<a/><b/>`,
		"textOutside":   `junk<a/>`,
		"trailingText":  `<a/>junk`,
		"badEntity":     `<a>&nope;</a>`,
		"unterminated":  `<a`,
		"noRoot":        `<!-- only a comment -->`,
		"badAttr":       `<a x=1/>`,
		"strayEnd":      `</a>`,
		"unterComment":  `<a><!-- nope</a>`,
		"unterCDATA":    `<a><![CDATA[x</a>`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			p := NewStreamParser(strings.NewReader(src), ParseOptions{})
			for {
				_, err := p.Next()
				if err == io.EOF {
					t.Fatalf("stream accepted malformed %q", src)
				}
				if err != nil {
					return // got the expected error
				}
			}
		})
	}
}

// TestStreamSmallReads feeds the parser through a reader that returns a
// few bytes at a time, exercising refill at every token boundary.
func TestStreamSmallReads(t *testing.T) {
	src := `<a href="x>y"><b>text &amp; more</b><![CDATA[raw]]><c/></a>`
	p := NewStreamParser(&drips{s: src, n: 3}, ParseOptions{})
	var kinds []EventKind
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EventStart, EventStart, EventText, EventEnd, EventText, EventStart, EventEnd, EventEnd}
	if len(kinds) != len(want) {
		t.Fatalf("got %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

// drips returns at most n bytes per Read.
type drips struct {
	s string
	n int
}

func (d *drips) Read(p []byte) (int, error) {
	if len(d.s) == 0 {
		return 0, io.EOF
	}
	n := d.n
	if n > len(d.s) {
		n = len(d.s)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, d.s[:n])
	d.s = d.s[n:]
	return n, nil
}
