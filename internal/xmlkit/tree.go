package xmlkit

import (
	"fmt"
	"io"
	"strings"
)

// Node is one node of the logical document tree (paper §2.2): an ordered
// tree whose inner nodes carry element labels and whose leaves may carry
// text. Attributes are kept on the element; the physical layer decides
// how to materialize them.
type Node struct {
	Name     string  // element name; empty for text nodes
	Text     string  // character data (text nodes only)
	Attrs    []Attr  // attributes (element nodes only)
	Children []*Node // child nodes in document order (element nodes only)
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// NewElement builds an element node.
func NewElement(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// NewText builds a text node.
func NewText(text string) *Node { return &Node{Text: text} }

// Append adds children and returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// SetAttr adds or replaces an attribute and returns n for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute, if present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// CountNodes returns the number of nodes in the subtree, counting n, all
// descendants, and one node per attribute (matching the paper's "tree
// representations contain about 320000 nodes" accounting where attributes
// are nodes too).
func (n *Node) CountNodes() int {
	total := 1 + len(n.Attrs)
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// TextContent concatenates all descendant text in document order.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.IsText() {
		b.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// Equal reports deep structural equality of two subtrees.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Document is a parsed XML document.
type Document struct {
	Root        *Node
	DoctypeName string
	// DoctypeRaw is the full DOCTYPE body (name plus internal subset),
	// for consumers that parse content models (package schema).
	DoctypeRaw string
	// DTDElements lists element names declared in the DOCTYPE internal
	// subset, in declaration order — the node alphabet Σ_DTD (§2.2).
	DTDElements []string
}

// ParseOptions control tree construction.
type ParseOptions struct {
	// KeepWhitespace retains text nodes consisting solely of whitespace.
	// The default drops them, matching the paper's node accounting.
	KeepWhitespace bool
}

// Parse reads an XML document from r into a tree.
func Parse(r io.Reader, opts ParseOptions) (*Document, error) {
	tz, err := NewTokenizer(r)
	if err != nil {
		return nil, err
	}
	return parseTokens(tz, opts)
}

// ParseString parses a document held in a string.
func ParseString(src string, opts ParseOptions) (*Document, error) {
	return parseTokens(NewTokenizerString(src), opts)
}

func parseTokens(tz *Tokenizer, opts ParseOptions) (*Document, error) {
	doc := &Document{}
	var stack []*Node
	push := func(n *Node) error {
		if len(stack) == 0 {
			if doc.Root != nil {
				return fmt.Errorf("xmlkit: multiple root elements (%q and %q)", doc.Root.Name, n.Name)
			}
			if n.IsText() {
				return fmt.Errorf("xmlkit: text %q outside the root element", truncate(n.Text, 20))
			}
			doc.Root = n
		} else {
			top := stack[len(stack)-1]
			top.Children = append(top.Children, n)
		}
		return nil
	}
	for {
		tok, err := tz.Next()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case TokenEOF:
			if len(stack) > 0 {
				return nil, fmt.Errorf("xmlkit: unclosed element <%s>", stack[len(stack)-1].Name)
			}
			if doc.Root == nil {
				return nil, fmt.Errorf("xmlkit: document has no root element")
			}
			return doc, nil
		case TokenStartTag:
			n := &Node{Name: tok.Name, Attrs: tok.Attrs}
			if len(stack) == 0 {
				if err := push(n); err != nil {
					return nil, err
				}
				stack = append(stack, n)
			} else {
				stack[len(stack)-1].Children = append(stack[len(stack)-1].Children, n)
				stack = append(stack, n)
			}
		case TokenEmptyTag:
			if err := push(&Node{Name: tok.Name, Attrs: tok.Attrs}); err != nil {
				return nil, err
			}
		case TokenEndTag:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlkit: unexpected </%s>", tok.Name)
			}
			top := stack[len(stack)-1]
			if top.Name != tok.Name {
				return nil, fmt.Errorf("xmlkit: </%s> closes <%s>", tok.Name, top.Name)
			}
			stack = stack[:len(stack)-1]
		case TokenText:
			if !opts.KeepWhitespace && strings.TrimSpace(tok.Text) == "" {
				continue
			}
			if len(stack) == 0 {
				if strings.TrimSpace(tok.Text) == "" {
					continue // whitespace between prolog and root is fine
				}
				return nil, fmt.Errorf("xmlkit: text %q outside the root element", truncate(tok.Text, 20))
			}
			if err := push(NewText(tok.Text)); err != nil {
				return nil, err
			}
		case TokenDoctype:
			doc.DoctypeName = tok.Name
			doc.DoctypeRaw = tok.Text
			doc.DTDElements = parseDTDElements(tok.Text)
		case TokenComment, TokenPI:
			// Not represented in the logical tree.
		}
	}
}

// parseDTDElements extracts element names from a DOCTYPE internal subset.
// It recognizes <!ELEMENT name ...> declarations; everything else in the
// subset is skipped. This is the "DTD-lite" the repository needs: "for
// our purposes, the DTD is just a way of specifying the node alphabet"
// (paper §2.2).
func parseDTDElements(subset string) []string {
	var names []string
	seen := map[string]bool{}
	for {
		i := strings.Index(subset, "<!ELEMENT")
		if i < 0 {
			return names
		}
		subset = subset[i+len("<!ELEMENT"):]
		j := 0
		for j < len(subset) && isSpace(subset[j]) {
			j++
		}
		k := j
		for k < len(subset) && isNameByte(subset[k]) {
			k++
		}
		if name := subset[j:k]; validName(name) && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
		subset = subset[k:]
	}
}
