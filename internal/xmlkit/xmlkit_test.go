package xmlkit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const speech = `<SPEECH>
<SPEAKER>OTHELLO</SPEAKER>
<LINE>Let me see your eyes;</LINE>
<LINE>Look in my face.</LINE>
</SPEECH>`

func TestTokenizerSpeech(t *testing.T) {
	tz := NewTokenizerString(speech)
	var kinds []TokenKind
	var names []string
	for {
		tok, err := tz.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokenEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		names = append(names, tok.Name)
	}
	want := []TokenKind{
		TokenStartTag, TokenText, TokenStartTag, TokenText, TokenEndTag,
		TokenText, TokenStartTag, TokenText, TokenEndTag, TokenText,
		TokenStartTag, TokenText, TokenEndTag, TokenText, TokenEndTag,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v (%q), want %v", i, kinds[i], names[i], want[i])
		}
	}
}

func TestParseSpeechTree(t *testing.T) {
	doc, err := ParseString(speech, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root
	if root.Name != "SPEECH" || len(root.Children) != 3 {
		t.Fatalf("root = %s with %d children", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "SPEAKER" {
		t.Fatalf("first child = %q", root.Children[0].Name)
	}
	if got := root.Children[0].TextContent(); got != "OTHELLO" {
		t.Fatalf("speaker text = %q", got)
	}
	if got := root.Children[2].TextContent(); got != "Look in my face." {
		t.Fatalf("line 2 text = %q", got)
	}
	// The paper's figure 2 tree: 7 logical nodes (SPEECH, SPEAKER, text,
	// LINE, text, LINE, text).
	if got := root.CountNodes(); got != 7 {
		t.Fatalf("CountNodes = %d, want 7", got)
	}
}

func TestAttributesAndEmptyTags(t *testing.T) {
	doc, err := ParseString(`<PLAY id="othello" year='1604'><EMPTY a="1"/><ACT/></PLAY>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root
	if v, ok := root.Attr("id"); !ok || v != "othello" {
		t.Fatalf("id = %q, %v", v, ok)
	}
	if v, ok := root.Attr("year"); !ok || v != "1604" {
		t.Fatalf("year = %q, %v", v, ok)
	}
	if _, ok := root.Attr("missing"); ok {
		t.Fatal("found missing attribute")
	}
	if len(root.Children) != 2 || root.Children[0].Name != "EMPTY" || root.Children[1].Name != "ACT" {
		t.Fatalf("children wrong: %+v", root.Children)
	}
	if v, _ := root.Children[0].Attr("a"); v != "1" {
		t.Fatal("empty-tag attribute lost")
	}
}

func TestEntities(t *testing.T) {
	doc, err := ParseString(`<a b="&lt;x&gt;">Tom &amp; Jerry &#65;&#x42; &apos;q&quot;</a>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("b"); v != "<x>" {
		t.Fatalf("attr = %q", v)
	}
	if got := doc.Root.TextContent(); got != `Tom & Jerry AB 'q"` {
		t.Fatalf("text = %q", got)
	}
}

func TestBadEntity(t *testing.T) {
	if _, err := ParseString(`<a>fish &chips;</a>`, ParseOptions{}); err == nil {
		t.Fatal("undefined entity accepted")
	}
	if _, err := ParseString(`<a>AT&T</a>`, ParseOptions{}); err == nil {
		t.Fatal("bare ampersand accepted")
	}
}

func TestCDataAndComments(t *testing.T) {
	doc, err := ParseString(`<a><!-- ignore <b> --><![CDATA[<raw> & text]]></a>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.TextContent(); got != "<raw> & text" {
		t.Fatalf("text = %q", got)
	}
	if len(doc.Root.Children) != 1 {
		t.Fatalf("comment produced a node: %d children", len(doc.Root.Children))
	}
}

func TestDoctypeAndDTDElements(t *testing.T) {
	src := `<?xml version="1.0"?>
<!DOCTYPE PLAY [
  <!ELEMENT PLAY (TITLE, ACT+)>
  <!ELEMENT TITLE (#PCDATA)>
  <!ELEMENT ACT (SCENE+)>
  <!ATTLIST ACT n CDATA #IMPLIED>
  <!ELEMENT SCENE (SPEECH+)>
]>
<PLAY><TITLE>x</TITLE><ACT><SCENE><SPEECH/></SCENE></ACT></PLAY>`
	doc, err := ParseString(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.DoctypeName != "PLAY" {
		t.Fatalf("doctype = %q", doc.DoctypeName)
	}
	want := []string{"PLAY", "TITLE", "ACT", "SCENE"}
	if len(doc.DTDElements) != len(want) {
		t.Fatalf("DTDElements = %v", doc.DTDElements)
	}
	for i, w := range want {
		if doc.DTDElements[i] != w {
			t.Fatalf("DTDElements[%d] = %q, want %q", i, doc.DTDElements[i], w)
		}
	}
}

func TestMalformedDocuments(t *testing.T) {
	bad := []string{
		``,
		`plain text`,
		`<a>`,
		`<a></b>`,
		`<a></a><b></b>`,
		`<a><b></a></b>`,
		`<1tag/>`,
		`<a attr></a>`,
		`<a attr=novalue></a>`,
		`<a attr="unterminated></a>`,
		`<a><!-- unterminated`,
		`<a><![CDATA[ unterminated</a>`,
		`<!DOCTYPE unterminated [ <a/>`,
	}
	for _, src := range bad {
		if _, err := ParseString(src, ParseOptions{}); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>x</b>\n</a>"
	doc, _ := ParseString(src, ParseOptions{})
	if len(doc.Root.Children) != 1 {
		t.Fatalf("default: %d children, want 1 (whitespace dropped)", len(doc.Root.Children))
	}
	doc2, _ := ParseString(src, ParseOptions{KeepWhitespace: true})
	if len(doc2.Root.Children) != 3 {
		t.Fatalf("KeepWhitespace: %d children, want 3", len(doc2.Root.Children))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a b="1" c="two">text</a>`,
		`<a>one<b>two</b>three</a>`,
		`<SPEECH><SPEAKER>OTHELLO</SPEAKER><LINE>Let me see your eyes;</LINE></SPEECH>`,
		`<a>5 &lt; 6 &amp; 7 &gt; 2</a>`,
		`<a q="&quot;x&quot;"/>`,
	}
	for _, src := range srcs {
		doc, err := ParseString(src, ParseOptions{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		out := SerializeString(doc.Root)
		doc2, err := ParseString(out, ParseOptions{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("re-parse of %q: %v", out, err)
		}
		if !Equal(doc.Root, doc2.Root) {
			t.Fatalf("round trip changed tree: %q -> %q", src, out)
		}
	}
}

// randomTree builds a random tree for property testing.
func randomTree(rng *rand.Rand, depth int) *Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		return NewText(randomText(rng))
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	n := NewElement(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		n.SetAttr("k", randomText(rng))
	}
	for i := rng.Intn(4); i > 0; i-- {
		n.Append(randomTree(rng, depth-1))
	}
	return n
}

func randomText(rng *rand.Rand) string {
	chars := `abc <>&"' 	xyz;#`
	n := 1 + rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(chars[rng.Intn(len(chars))])
	}
	return b.String()
}

// TestSerializeParsePropertyRoundTrip: any tree survives
// serialize→parse, including hostile characters needing escapes.
func TestSerializeParsePropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		tree := randomTree(rng, 4)
		if tree.IsText() {
			tree = NewElement("root", tree)
		}
		// Coalesce adjacent text children: the parser merges them, which
		// is the one legitimate difference. Easiest check: serialize both
		// and compare strings after one round trip.
		out := SerializeString(tree)
		doc, err := ParseString(out, ParseOptions{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("tree %d: parse back: %v\n%s", i, err, out)
		}
		out2 := SerializeString(doc.Root)
		if out != out2 {
			t.Fatalf("tree %d: unstable round trip:\n%s\n%s", i, out, out2)
		}
	}
}

func TestEscapeProperties(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		dec, err := DecodeEntities(EscapeText(s))
		return err == nil && dec == s
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s string) bool {
		dec, err := DecodeEntities(EscapeAttr(s))
		return err == nil && dec == s
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCountNodesWithAttrs(t *testing.T) {
	doc, _ := ParseString(`<a x="1" y="2"><b/>text</a>`, ParseOptions{})
	// a + 2 attrs + b + text = 5
	if got := doc.Root.CountNodes(); got != 5 {
		t.Fatalf("CountNodes = %d, want 5", got)
	}
}

func TestPIAndXMLDecl(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0" encoding="utf-8"?><?target data?><a/>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "a" {
		t.Fatalf("root = %q", doc.Root.Name)
	}
}

func TestTextContentNested(t *testing.T) {
	doc, _ := ParseString(`<s><sp>OTH</sp><l>Let me <i>see</i> you</l></s>`, ParseOptions{})
	if got := doc.Root.TextContent(); got != "OTHLet me see you" {
		t.Fatalf("TextContent = %q", got)
	}
}
