package buffer

// Sequential read-ahead. Scans that walk pages in near-sequential RID
// order (the navigating-scan evaluator, ExportXML, recovery redo, the
// integrity sweep) announce their next-N pages; a bounded number of
// background batches load them — from tier-2 or the device — so misses
// overlap with compute, and on the simulated disk a run of prefetched
// pages costs one seek plus sequential transfers instead of a seek per
// page.
//
// Prefetched frames are installed unpinned with the reference bit
// clear, so a speculative page that is never touched is the clock's
// first victim — read-ahead can delay but never displace the
// twice-touched working set. Loads route through the pool's ioretry
// policy; errors abort the batch silently (the foreground read that
// actually needs the page will surface them).

import (
	"context"
	"sync"
	"time"

	"natix/internal/pagedev"
	"natix/internal/telemetry"
)

const (
	// maxPrefetchInflight bounds concurrent background batches.
	maxPrefetchInflight = 2
	// maxPrefetchBatch bounds pages per batch; a batch is additionally
	// clamped to half the pool so read-ahead cannot flush the pool.
	maxPrefetchBatch = 64
)

// prefetchPages recycles page-number slices for the batch API.
var prefetchPages = sync.Pool{New: func() any {
	b := make([]pagedev.PageNo, 0, maxPrefetchBatch)
	return &b
}}

// Prefetch schedules asynchronous loads of the given pages. It returns
// immediately; pages already resident are skipped, at most
// maxPrefetchInflight batches run concurrently (excess requests are
// dropped — prefetch is a hint), and the batch stops early when ctx is
// cancelled. A nil ctx means context.Background().
func (p *Pool) Prefetch(ctx context.Context, pages []pagedev.PageNo) {
	if len(pages) == 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	want := 0
	for _, pn := range pages {
		if !p.Resident(pn) {
			want++
		}
	}
	if want == 0 {
		return
	}
	bp := prefetchPages.Get().(*[]pagedev.PageNo)
	batch := (*bp)[:0]
	for _, pn := range pages {
		if len(batch) == cap(batch) {
			break
		}
		batch = append(batch, pn)
	}
	*bp = batch
	if !p.startPrefetch() {
		prefetchPages.Put(bp)
		return
	}
	go func() {
		defer p.endPrefetch()
		for _, pn := range *bp {
			if ctx.Err() != nil {
				break
			}
			if !p.prefetchOne(pn) {
				break
			}
		}
		prefetchPages.Put(bp)
	}()
}

// PrefetchRange is the allocation-free form of Prefetch for sequential
// announcements: it schedules pages [start, start+n), clamped to the
// device size and the batch bound. The fully-resident case — every
// warm iteration — returns without spawning anything, which is what
// keeps warm query cursors at zero allocations.
//
//natix:noalloc
func (p *Pool) PrefetchRange(ctx context.Context, start pagedev.PageNo, n int) {
	if n < 1 {
		return
	}
	if n > maxPrefetchBatch {
		n = maxPrefetchBatch
	}
	if half := p.capacity / 2; n > half {
		n = half
		if n < 1 {
			return
		}
	}
	if last := p.dev.NumPages(); start >= last {
		return
	} else if pagedev.PageNo(n) > last-start {
		n = int(last - start)
	}
	absent := false
	for i := 0; i < n; i++ {
		if !p.Resident(start + pagedev.PageNo(i)) {
			absent = true
			break
		}
	}
	if !absent {
		return
	}
	if !p.startPrefetch() {
		return
	}
	go p.prefetchRangeWorker(ctx, start, n)
}

func (p *Pool) prefetchRangeWorker(ctx context.Context, start pagedev.PageNo, n int) {
	defer p.endPrefetch()
	for i := 0; i < n; i++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		if !p.prefetchOne(start + pagedev.PageNo(i)) {
			return
		}
	}
}

// startPrefetch claims a background-batch slot; false means the bound
// is reached and the request is dropped.
//
//natix:noalloc
func (p *Pool) startPrefetch() bool {
	for {
		n := p.prefetchInflight.Load()
		if n >= maxPrefetchInflight {
			return false
		}
		if p.prefetchInflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (p *Pool) endPrefetch() { p.prefetchInflight.Add(-1) }

// DrainPrefetch blocks until no background prefetch batch is running.
// Benchmark resets call it so a "cold" measurement is not warmed by a
// straggler batch from the previous phase.
func (p *Pool) DrainPrefetch() {
	for p.prefetchInflight.Load() > 0 {
		// Prefetch batches hold no locks across iterations and finish in
		// bounded time; a short sleep loop is simpler than plumbing a
		// WaitGroup through the spawn race.
		telemetry.Sleep(20 * time.Microsecond)
	}
}

// prefetchOne loads page pn into an unpinned frame unless it is already
// resident. It returns false when the batch should stop: the pool is
// out of evictable frames or the device errored.
func (p *Pool) prefetchOne(pn pagedev.PageNo) bool {
	sh := p.shardOf(pn)
	sh.mu.RLock()
	_, ok := sh.frames[pn]
	sh.mu.RUnlock()
	if ok {
		return true
	}
	// Reserve a frame slot against the capacity, like a foreground miss.
	for {
		n := p.size.Load()
		if n >= int64(p.capacity) {
			if err := p.evictOne(); err != nil {
				return false
			}
			continue
		}
		if p.size.CompareAndSwap(n, n+1) {
			break
		}
	}
	sh.mu.Lock()
	if _, ok := sh.frames[pn]; ok {
		sh.mu.Unlock()
		p.size.Add(-1)
		return true
	}
	f := &Frame{pool: p, page: pn, data: make([]byte, p.dev.PageSize())}
	if err := p.loadInto(f); err != nil {
		sh.mu.Unlock()
		p.size.Add(-1)
		return false
	}
	f.prefetched.Store(true)
	sh.frames[pn] = f
	f.ringIdx = len(sh.ring)
	sh.ring = append(sh.ring, f)
	sh.mu.Unlock()
	p.prefetchIssued.Inc()
	return true
}
