package buffer

import (
	"errors"
	"testing"
	"time"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

func newPool(t *testing.T, pageSize, frames, pages int) (*Pool, *pagedev.Mem) {
	t.Helper()
	dev, err := pagedev.NewMem(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Grow(pagedev.PageNo(pages)); err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p, dev
}

// format stamps a valid slotted page into the frame so checksum logic has
// a typed page to work with.
func format(f *Frame, payload byte) {
	s := pageformat.FormatSlotted(f.Data())
	s.Insert([]byte{payload})
	f.MarkDirty()
}

func TestGetNewAndReadBack(t *testing.T) {
	p, _ := newPool(t, 1024, 4, 8)
	f, err := p.GetNew(3)
	if err != nil {
		t.Fatal(err)
	}
	format(f, 0x42)
	f.Release()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	g, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	s, err := pageformat.AsSlotted(g.Data())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.Cell(0)
	if err != nil || cell[0] != 0x42 {
		t.Fatalf("cell = %v, %v", cell, err)
	}
}

func TestHitAvoidsPhysicalRead(t *testing.T) {
	p, _ := newPool(t, 1024, 4, 8)
	f, _ := p.GetNew(0)
	format(f, 1)
	f.Release()
	p.FlushAll()
	p.ResetStats()

	for i := 0; i < 5; i++ {
		g, err := p.Get(0)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	st := p.Stats()
	if st.LogicalReads != 5 {
		t.Fatalf("LogicalReads = %d, want 5", st.LogicalReads)
	}
	if st.Hits != 5 {
		t.Fatalf("Hits = %d, want 5 (page was already cached)", st.Hits)
	}
	if st.PhysReads != 0 {
		t.Fatalf("PhysReads = %d, want 0", st.PhysReads)
	}
}

func TestEvictionWritesBackDirtyLRU(t *testing.T) {
	p, dev := newPool(t, 1024, 2, 8)
	// Fill both frames with dirty pages.
	for pn := pagedev.PageNo(0); pn < 2; pn++ {
		f, _ := p.GetNew(pn)
		format(f, byte(pn))
		f.Release()
	}
	p.ResetStats()
	// Getting a third page must evict page 0 (LRU) and write it back.
	f, err := p.GetNew(2)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	st := p.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.PhysWrites != 1 {
		t.Fatalf("PhysWrites = %d, want 1", st.PhysWrites)
	}
	// The written page is intact on the device (checksummed).
	buf := make([]byte, 1024)
	if err := dev.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := pageformat.VerifyChecksum(buf); err != nil {
		t.Fatalf("evicted page checksum: %v", err)
	}
	if p.Cached() != 2 {
		t.Fatalf("Cached = %d, want 2", p.Cached())
	}
}

func TestLRUOrder(t *testing.T) {
	p, _ := newPool(t, 1024, 2, 8)
	a, _ := p.GetNew(0)
	format(a, 0)
	a.Release()
	b, _ := p.GetNew(1)
	format(b, 1)
	b.Release()
	// Touch page 0 so page 1 becomes LRU.
	if err := p.Touch(0); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	c, _ := p.GetNew(2) // must evict page 1
	c.Release()
	// Page 0 should still be cached: re-get is a hit.
	g, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	st := p.Stats()
	if st.PhysReads != 0 {
		t.Fatalf("page 0 was evicted (PhysReads = %d), want page 1 evicted", st.PhysReads)
	}
}

func TestAllPinnedFails(t *testing.T) {
	p, _ := newPool(t, 1024, 2, 8)
	a, _ := p.GetNew(0)
	b, _ := p.GetNew(1)
	if _, err := p.GetNew(2); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	a.Release()
	if _, err := p.GetNew(2); err != nil {
		t.Fatalf("after releasing one frame: %v", err)
	}
	b.Release()
}

func TestPinCounting(t *testing.T) {
	p, _ := newPool(t, 1024, 2, 8)
	f1, _ := p.GetNew(0)
	f2, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("same page produced two frames")
	}
	f1.Release()
	// Still pinned once: Clear must refuse.
	if err := p.Clear(); !errors.Is(err, ErrPinned) {
		t.Fatalf("Clear with pinned frame: %v, want ErrPinned", err)
	}
	f2.Release()
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p, _ := newPool(t, 1024, 2, 8)
	f, _ := p.GetNew(0)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestClearFlushesAndDrops(t *testing.T) {
	p, dev := newPool(t, 1024, 4, 8)
	f, _ := p.GetNew(5)
	format(f, 7)
	f.Release()
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	if p.Cached() != 0 {
		t.Fatalf("Cached = %d after Clear", p.Cached())
	}
	// Data reached the device.
	buf := make([]byte, 1024)
	if err := dev.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	s, err := pageformat.AsSlotted(buf)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.Cell(0)
	if err != nil || cell[0] != 7 {
		t.Fatalf("cell after clear = %v, %v", cell, err)
	}
	// Next Get is a physical read.
	p.ResetStats()
	g, err := p.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if st := p.Stats(); st.PhysReads != 1 {
		t.Fatalf("PhysReads after Clear = %d, want 1", st.PhysReads)
	}
}

func TestChecksumVerificationDetectsCorruption(t *testing.T) {
	p, dev := newPool(t, 1024, 2, 8)
	f, _ := p.GetNew(1)
	format(f, 9)
	f.Release()
	p.Clear()

	// Corrupt the page behind the pool's back.
	buf := make([]byte, 1024)
	dev.Read(1, buf)
	buf[200] ^= 0xFF
	dev.Write(1, buf)

	if _, err := p.Get(1); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Get on corrupted page: %v, want ErrCorrupted", err)
	}
	// With verification off it loads.
	p.SetVerifyChecksums(false)
	g, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestNewSized(t *testing.T) {
	dev, _ := pagedev.NewMem(2048)
	p, err := NewSized(dev, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 1024 {
		t.Fatalf("Capacity = %d, want 1024 (2MB / 2K)", p.Capacity())
	}
	// Degenerate size still yields one frame.
	p2, err := NewSized(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", p2.Capacity())
	}
	if _, err := New(dev, 0); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("New(dev, 0): %v", err)
	}
}

func TestManyPagesChurn(t *testing.T) {
	const pages = 64
	p, _ := newPool(t, 1024, 8, pages)
	// Write all pages through an 8-frame pool, then read them all back.
	for pn := pagedev.PageNo(0); pn < pages; pn++ {
		f, err := p.GetNew(pn)
		if err != nil {
			t.Fatal(err)
		}
		format(f, byte(pn))
		f.Release()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for pn := pagedev.PageNo(0); pn < pages; pn++ {
		f, err := p.Get(pn)
		if err != nil {
			t.Fatalf("Get(%d): %v", pn, err)
		}
		s, err := pageformat.AsSlotted(f.Data())
		if err != nil {
			t.Fatalf("page %d: %v", pn, err)
		}
		cell, err := s.Cell(0)
		if err != nil || cell[0] != byte(pn) {
			t.Fatalf("page %d cell = %v, %v", pn, cell, err)
		}
		f.Release()
	}
}

func TestFlushAllElevatorOrder(t *testing.T) {
	// Dirty pages in a scrambled order; the flush must hit the device in
	// ascending page order so the simulated disk sees an elevator pass.
	mem, _ := pagedev.NewMem(1024)
	sim := pagedev.NewSimDisk(mem, pagedev.DCAS34330W)
	p, err := New(sim, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Grow(32); err != nil {
		t.Fatal(err)
	}
	for _, pn := range []pagedev.PageNo{17, 3, 29, 11, 23, 5} {
		f, err := p.GetNew(pn)
		if err != nil {
			t.Fatal(err)
		}
		format(f, byte(pn))
		f.Release()
	}
	sim.ResetStats()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Writes != 6 {
		t.Fatalf("writes = %d, want 6", st.Writes)
	}
	// An ascending pass over 6 pages in 32 must be far cheaper than 6
	// average-seek accesses (~14ms each on the modeled drive).
	if st.Elapsed > 60*time.Millisecond {
		t.Fatalf("elevator flush cost %v, expected well under 60ms", st.Elapsed)
	}
}
