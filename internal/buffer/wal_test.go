package buffer

import (
	"bytes"
	"testing"

	"natix/internal/pagedev"
	"natix/internal/wal"
)

func TestDiffRanges(t *testing.T) {
	old := make([]byte, 256)
	new := make([]byte, 256)
	if got := diffRanges(old, new); got != nil {
		t.Fatalf("identical pages diff to %v", got)
	}
	// Two distant runs stay separate; two close runs merge.
	new[10] = 1
	new[12] = 2
	new[200] = 3
	got := diffRanges(old, new)
	if len(got) != 2 {
		t.Fatalf("got %d ranges, want 2: %+v", len(got), got)
	}
	if got[0].Off != 10 || len(got[0].Before) != 3 {
		t.Fatalf("first range %+v, want off 10 len 3", got[0])
	}
	if got[1].Off != 200 || len(got[1].Before) != 1 {
		t.Fatalf("second range %+v", got[1])
	}
	// Applying After onto old reproduces new; Before onto new restores old.
	redo := append([]byte(nil), old...)
	undo := append([]byte(nil), new...)
	for _, r := range got {
		copy(redo[r.Off:], r.After)
		copy(undo[r.Off:], r.Before)
	}
	if !bytes.Equal(redo, new) || !bytes.Equal(undo, old) {
		t.Fatal("ranges do not round-trip")
	}
}

func TestDiffRangesCollapse(t *testing.T) {
	old := make([]byte, 4096)
	new := make([]byte, 4096)
	for i := 0; i < 4096; i += 40 {
		new[i] = byte(i)
	}
	got := diffRanges(old, new)
	if len(got) > maxRanges {
		t.Fatalf("%d ranges, want collapse at %d", len(got), maxRanges)
	}
	redo := append([]byte(nil), old...)
	for _, r := range got {
		copy(redo[r.Off:], r.After)
	}
	if !bytes.Equal(redo, new) {
		t.Fatal("collapsed ranges do not reproduce the page")
	}
}

func TestEndUpdateLogsAndStamps(t *testing.T) {
	dev, _ := pagedev.NewMem(512)
	pool, err := New(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := wal.NewMemStorage()
	w, err := wal.OpenWriter(st, wal.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	pool.AttachWAL(w)
	if _, err := w.Begin("test", 0); err != nil {
		t.Fatal(err)
	}

	dev.Grow(1)
	f, err := pool.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Latch()
	u := f.BeginUpdate()
	f.Data()[100] = 0xAA
	if err := f.EndUpdate(u); err != nil {
		t.Fatal(err)
	}
	lsn1 := f.pageLSN.Load()
	if lsn1 == 0 {
		t.Fatal("fresh page update did not stamp an LSN")
	}

	// Second update on the same (no longer fresh) frame.
	u = f.BeginUpdate()
	f.Data()[101] = 0xBB
	if err := f.EndUpdate(u); err != nil {
		t.Fatal(err)
	}
	if f.pageLSN.Load() <= lsn1 {
		t.Fatal("page LSN must advance")
	}

	// A no-op mutation logs nothing.
	before := w.End()
	u = f.BeginUpdate()
	if err := f.EndUpdate(u); err != nil {
		t.Fatal(err)
	}
	if w.End() != before {
		t.Fatal("no-op update appended a record")
	}
	f.Unlatch()
	f.Release()
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// The record stream: begin, image (fresh first write), update, commit.
	var types []string
	_, _, err = wal.Scan(st, func(r wal.Record) error {
		types = append(types, wal.TypeName(r.Type))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"begin", "image", "update", "commit"}
	if len(types) != len(want) {
		t.Fatalf("records %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("records %v, want %v", types, want)
		}
	}
}

func TestWriteBackWaitsForLog(t *testing.T) {
	// A dirty logged frame evicted under memory pressure must push the
	// log out first: after the eviction, the log storage contains the
	// frame's records even though no commit happened.
	dev, _ := pagedev.NewMem(512)
	pool, _ := New(dev, 1) // single frame: second Get evicts the first
	st := wal.NewMemStorage()
	w, _ := wal.OpenWriter(st, wal.Options{PageSize: 512})
	pool.AttachWAL(w)
	w.Begin("test", 0)

	dev.Grow(2)
	f, _ := pool.GetNew(0)
	f.Latch()
	u := f.BeginUpdate()
	f.Data()[50] = 0x77
	if err := f.EndUpdate(u); err != nil {
		t.Fatal(err)
	}
	f.Unlatch()
	f.Release()

	logged, _ := st.Size()
	if logged > 32 {
		t.Fatalf("log flushed before any write-back: %d bytes", logged)
	}
	g, err := pool.GetNew(1) // evicts frame 0, which is dirty
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	logged, _ = st.Size()
	if logged <= 32 {
		t.Fatal("write-back did not flush the log first (WAL rule)")
	}
	w.Commit()
}
