// Package buffer implements the NATIX buffer manager: a fixed-capacity
// pool of page frames over a pagedev.Device with pin counting, LRU
// replacement and write-back of dirty pages.
//
// The paper's experiments use a 2 MB buffer that is cleared at the start
// of each measured operation (§4.2); Clear provides exactly that. The pool
// tracks logical and physical I/O counts so the benchmark harness can
// report both, and it verifies/refreshes per-page checksums at the
// physical I/O boundary.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

// Errors returned by the pool.
var (
	ErrPoolFull  = errors.New("buffer: all frames pinned")
	ErrPinned    = errors.New("buffer: page still pinned")
	ErrNoFrames  = errors.New("buffer: capacity must be at least one frame")
	ErrReleased  = errors.New("buffer: frame already released")
	ErrCorrupted = errors.New("buffer: page failed checksum verification")
)

// Stats counts buffer activity since the last ResetStats.
type Stats struct {
	LogicalReads int64 // Get/GetNew/Touch calls
	Hits         int64 // logical reads served from the pool
	PhysReads    int64 // pages read from the device
	PhysWrites   int64 // pages written to the device
	Evictions    int64 // frames evicted to make room
}

// Pool is a buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	dev      pagedev.Device
	capacity int
	frames   map[pagedev.PageNo]*Frame
	lru      *list.List // unpinned frames, front = least recently used
	stats    Stats
	verify   bool
}

// Frame is a pinned page image. Callers must Release every frame they
// obtain; Data is valid only while the frame is pinned.
type Frame struct {
	pool  *Pool
	page  pagedev.PageNo
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element // non-nil while unpinned and on the LRU list
}

// New creates a pool of numFrames frames over dev.
func New(dev pagedev.Device, numFrames int) (*Pool, error) {
	if numFrames < 1 {
		return nil, ErrNoFrames
	}
	return &Pool{
		dev:      dev,
		capacity: numFrames,
		frames:   make(map[pagedev.PageNo]*Frame, numFrames),
		lru:      list.New(),
		verify:   true,
	}, nil
}

// NewSized creates a pool whose total frame memory is approximately
// bufBytes (at least one frame), matching the paper's "2 MB buffer".
func NewSized(dev pagedev.Device, bufBytes int) (*Pool, error) {
	n := bufBytes / dev.PageSize()
	if n < 1 {
		n = 1
	}
	return New(dev, n)
}

// SetVerifyChecksums toggles checksum verification on physical reads.
func (p *Pool) SetVerifyChecksums(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.verify = v
}

// Capacity returns the number of frames in the pool.
func (p *Pool) Capacity() int { return p.capacity }

// Device returns the underlying page device.
func (p *Pool) Device() pagedev.Device { return p.dev }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Get pins the frame for page pn, reading it from the device on a miss.
func (p *Pool) Get(pn pagedev.PageNo) (*Frame, error) {
	return p.get(pn, true)
}

// GetNew pins a frame for a freshly allocated page without reading the
// device. The frame contents are zeroed; the caller is expected to format
// and dirty the page.
func (p *Pool) GetNew(pn pagedev.PageNo) (*Frame, error) {
	return p.get(pn, false)
}

func (p *Pool) get(pn pagedev.PageNo, read bool) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.LogicalReads++
	if f, ok := p.frames[pn]; ok {
		p.stats.Hits++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	if len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{pool: p, page: pn, data: make([]byte, p.dev.PageSize()), pins: 1}
	if read {
		if err := p.dev.Read(pn, f.data); err != nil {
			return nil, err
		}
		p.stats.PhysReads++
		if p.verify {
			if err := pageformat.VerifyChecksum(f.data); err != nil {
				return nil, fmt.Errorf("%w: page %d: %v", ErrCorrupted, pn, err)
			}
		}
	}
	p.frames[pn] = f
	return f, nil
}

// Touch registers a logical access to a page without keeping it pinned.
// Upper-level caches call this so their hits still exercise the buffer
// (and pay physical I/O if the page was evicted).
func (p *Pool) Touch(pn pagedev.PageNo) error {
	f, err := p.Get(pn)
	if err != nil {
		return err
	}
	f.Release()
	return nil
}

// evictLocked removes the least recently used unpinned frame, writing it
// back if dirty. Callers hold p.mu.
func (p *Pool) evictLocked() error {
	e := p.lru.Front()
	if e == nil {
		return ErrPoolFull
	}
	f := e.Value.(*Frame)
	if f.dirty {
		if err := p.writeBackLocked(f); err != nil {
			return err
		}
	}
	p.lru.Remove(e)
	delete(p.frames, f.page)
	p.stats.Evictions++
	return nil
}

func (p *Pool) writeBackLocked(f *Frame) error {
	if pageformat.TypeOf(f.data) != pageformat.TypeInvalid {
		pageformat.UpdateChecksum(f.data)
	}
	if err := p.dev.Write(f.page, f.data); err != nil {
		return err
	}
	p.stats.PhysWrites++
	f.dirty = false
	return nil
}

// FlushAll writes every dirty frame back to the device and syncs it.
// Frames stay cached and pins are unaffected. Dirty pages are written in
// ascending page order (elevator order), as any real write-back cache
// would, which matters to the simulated disk's seek accounting.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushAllLocked()
}

func (p *Pool) flushAllLocked() error {
	dirty := make([]*Frame, 0, len(p.frames))
	for _, f := range p.frames {
		if f.dirty {
			dirty = append(dirty, f)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].page < dirty[j].page })
	for _, f := range dirty {
		if err := p.writeBackLocked(f); err != nil {
			return err
		}
	}
	return p.dev.Sync()
}

// Clear flushes all dirty frames and then empties the pool. It fails with
// ErrPinned if any frame is still pinned. The paper clears the buffer at
// the start of each measured operation.
func (p *Pool) Clear() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for pn, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("%w: page %d (%d pins)", ErrPinned, pn, f.pins)
		}
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	for pn, f := range p.frames {
		if f.elem != nil {
			p.lru.Remove(f.elem)
		}
		delete(p.frames, pn)
	}
	return nil
}

// Cached returns the number of frames currently held (pinned or not).
func (p *Pool) Cached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Page returns the page number this frame images.
func (f *Frame) Page() pagedev.PageNo { return f.page }

// Data returns the page image. Mutations must be followed by MarkDirty.
// The slice is valid only while the frame is pinned.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the frame differs from the on-device page.
func (f *Frame) MarkDirty() {
	f.pool.mu.Lock()
	defer f.pool.mu.Unlock()
	f.dirty = true
}

// Release unpins the frame. The frame becomes eligible for eviction once
// its pin count reaches zero. Releasing an unpinned frame panics: it
// indicates a pin-accounting bug in the caller.
func (f *Frame) Release() {
	f.pool.mu.Lock()
	defer f.pool.mu.Unlock()
	if f.pins <= 0 {
		panic(ErrReleased)
	}
	f.pins--
	if f.pins == 0 {
		f.elem = f.pool.lru.PushBack(f)
	}
}
