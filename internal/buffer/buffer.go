// Package buffer implements the NATIX buffer manager: a fixed-capacity
// pool of page frames over a pagedev.Device with pin counting,
// second-chance (clock) replacement and write-back of dirty pages.
//
// The paper's experiments use a 2 MB buffer that is cleared at the start
// of each measured operation (§4.2); Clear provides exactly that. The pool
// tracks logical and physical I/O counts so the benchmark harness can
// report both, and it verifies/refreshes per-page checksums at the
// physical I/O boundary.
//
// # Concurrency
//
// The pool is safe for concurrent use and is built so a buffer hit never
// takes a pool-wide lock: the page table is sharded (per-shard RWMutex),
// pin counts and the dirty/reference bits are per-frame atomics, and
// replacement is an approximate-LRU clock sweep that only runs on
// misses, serialized by a narrow eviction lock. The reference bit is set
// on hits, not on first load, so a page touched twice survives a page
// streamed through once — the property the LRU tests pin down.
//
// Frames additionally carry a latch (an RWMutex over the page image):
// callers that read page bytes hold the shared latch, callers that
// mutate them hold the exclusive latch. Pinning keeps a frame resident;
// latching keeps its bytes consistent. The two are separate so many
// readers of one page can proceed in parallel while a writer of an
// unrelated page mutates its own frames.
//
// # Write-ahead logging
//
// With a log attached (AttachWAL), the pool enforces the WAL rule: a
// dirty frame is never written back — by eviction, FlushAll or Clear —
// until the log is durable through the frame's page LSN. Mutators
// bracket page changes with BeginUpdate/EndUpdate: BeginUpdate
// snapshots the page, EndUpdate diffs the snapshot against the mutated
// image and appends the changed byte ranges (with before and after
// bytes) to the log, stamping the record's LSN into the page header.
// The first change to a page after a checkpoint logs the full
// before-image alongside the ranges, so restart recovery can rebuild
// the page even if a later write-back tears it. Freshly allocated
// pages log a single full after-image instead (LogImage, used by the
// bulk loader's one-write-per-page path, and by EndUpdate for frames
// obtained with GetNew).
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"natix/internal/ioretry"
	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/telemetry"
	"natix/internal/wal"
)

// Errors returned by the pool.
var (
	ErrPoolFull  = errors.New("buffer: all frames pinned")
	ErrPinned    = errors.New("buffer: page still pinned")
	ErrNoFrames  = errors.New("buffer: capacity must be at least one frame")
	ErrReleased  = errors.New("buffer: frame already released")
	ErrCorrupted = errors.New("buffer: page failed checksum verification")
)

// Stats counts buffer activity since the last ResetStats.
type Stats struct {
	LogicalReads int64 // Get/GetNew/Touch calls
	Hits         int64 // logical reads served from the pool
	PhysReads    int64 // pages read from the device
	PhysWrites   int64 // pages written to the device
	Evictions    int64 // frames evicted to make room
	LatchWaits   int64 // latch acquisitions that had to block

	Tier2Hits          int64 // misses served by decompressing a tier-2 entry
	Tier2Misses        int64 // tier-2 lookups that fell through to the device
	PrefetchIssued     int64 // pages loaded by background read-ahead
	PrefetchUsed       int64 // prefetched pages later hit by a foreground read
	PrefetchWasted     int64 // prefetched pages evicted untouched
	CoalescedWriteRuns int64 // multi-page vectored writes issued by flushes
}

// numShards is the page-table shard count. Pages are numbered densely,
// so a simple modulo spreads consecutive pages across shards.
const numShards = 16

// shard is one partition of the page table. ring holds the shard's
// frames in clock order for the second-chance sweep; hand is the sweep
// position within ring.
type shard struct {
	mu     sync.RWMutex
	frames map[pagedev.PageNo]*Frame
	ring   []*Frame
	hand   int
}

// Pool is a buffer pool. All methods are safe for concurrent use.
type Pool struct {
	dev      pagedev.Device
	capacity int
	shards   [numShards]shard
	size     atomic.Int64 // frames resident (never exceeds capacity)
	verify   atomic.Bool

	// wal, when attached, receives a record for every page mutation
	// and gates write-back (the WAL rule). walEpoch increments at each
	// checkpoint; a frame whose logEpoch lags logs a full before-image
	// on its next update. snapPool recycles BeginUpdate snapshots.
	wal      *wal.Writer
	walEpoch atomic.Uint64
	snapPool sync.Pool

	// evictMu serializes clock sweeps; handShard is the shard the next
	// sweep starts at, persisting the clock position across evictions.
	evictMu   sync.Mutex
	handShard int

	// retry absorbs transient device errors at the two physical I/O
	// sites (page load, write-back): a momentary EIO costs a counter
	// tick and a short backoff instead of failing the operation.
	retry ioretry.Retryer

	// t2 is the optional compressed victim cache (tier-2, see
	// tier2.go); nil until EnableCompressedCache.
	t2 *tier2

	// prefetchInflight counts running background read-ahead batches
	// (bounded by maxPrefetchInflight, see prefetch.go).
	prefetchInflight atomic.Int32

	// Hit-path counters are sharded: every Get on every goroutine
	// bumps them, so a single cache line would be the pool's hottest
	// contention point. The rest increment only around physical I/O.
	logicalReads telemetry.ShardedCounter
	hits         telemetry.ShardedCounter
	physReads    telemetry.Counter
	physWrites   telemetry.Counter
	evictions    telemetry.Counter
	latchWaits   telemetry.Counter

	// Memory-hierarchy counters; all off the tier-1 hit path except
	// prefetchUsed, which costs one relaxed atomic load per hit.
	tier2Hits      telemetry.Counter
	tier2Misses    telemetry.Counter
	tier2Admits    telemetry.Counter
	tier2Evictions telemetry.Counter
	tier2Corrupt   telemetry.Counter
	prefetchIssued telemetry.Counter
	prefetchUsed   telemetry.Counter
	prefetchWasted telemetry.Counter
	coalescedRuns  telemetry.Counter
}

// Frame is a pinned page image. Callers must Release every frame they
// obtain; Data is valid only while the frame is pinned. Concurrent users
// must additionally hold the frame latch around Data access: shared
// (RLatch) to read the bytes, exclusive (Latch) to mutate them.
type Frame struct {
	pool    *Pool
	page    pagedev.PageNo
	data    []byte
	pins    atomic.Int32
	ref     atomic.Bool // second-chance reference bit, set on hits
	dirty   atomic.Bool
	latch   sync.RWMutex
	ringIdx int // position in its shard's ring; under shard.mu

	// pageLSN is the LSN of the last log record covering this page;
	// write-back waits for the log to be durable through it. fresh
	// marks a page allocated via GetNew whose first logged change must
	// be a full image; logEpoch is the checkpoint epoch of the last
	// log record (fresh and logEpoch are touched only under the
	// exclusive latch).
	pageLSN  atomic.Uint64
	fresh    bool
	logEpoch uint64

	// prefetched marks a frame loaded by background read-ahead that no
	// foreground read has touched yet; the first hit clears it (counted
	// as used), eviction with it still set counts as wasted.
	prefetched atomic.Bool
}

// New creates a pool of numFrames frames over dev.
func New(dev pagedev.Device, numFrames int) (*Pool, error) {
	if numFrames < 1 {
		return nil, ErrNoFrames
	}
	p := &Pool{dev: dev, capacity: numFrames}
	for i := range p.shards {
		p.shards[i].frames = make(map[pagedev.PageNo]*Frame)
	}
	p.verify.Store(true)
	return p, nil
}

// NewSized creates a pool whose total frame memory is approximately
// bufBytes (at least one frame), matching the paper's "2 MB buffer".
func NewSized(dev pagedev.Device, bufBytes int) (*Pool, error) {
	n := bufBytes / dev.PageSize()
	if n < 1 {
		n = 1
	}
	return New(dev, n)
}

// SetVerifyChecksums toggles checksum verification on physical reads.
func (p *Pool) SetVerifyChecksums(v bool) { p.verify.Store(v) }

// AttachWAL connects a write-ahead log. Must be called before any
// mutation traffic; from then on every EndUpdate/LogImage appends a
// log record and write-back enforces the WAL rule.
func (p *Pool) AttachWAL(w *wal.Writer) {
	p.wal = w
	// Epochs start at 1: frames begin at logEpoch 0, so every page's
	// first logged change — including pages loaded from disk before
	// any checkpoint — carries its full before-image.
	p.walEpoch.Store(1)
	p.snapPool.New = func() any { return make([]byte, p.dev.PageSize()) }
}

// WAL returns the attached log writer (nil when logging is off).
func (p *Pool) WAL() *wal.Writer { return p.wal }

// AdvanceWALEpoch starts a new checkpoint epoch: the next logged
// change to any frame carries a full before-image. Called by the
// checkpoint after all dirty pages are durable.
func (p *Pool) AdvanceWALEpoch() { p.walEpoch.Add(1) }

// Capacity returns the number of frames in the pool.
func (p *Pool) Capacity() int { return p.capacity }

// Device returns the underlying page device.
func (p *Pool) Device() pagedev.Device { return p.dev }

// shardOf returns the shard holding page pn.
func (p *Pool) shardOf(pn pagedev.PageNo) *shard {
	return &p.shards[uint64(pn)%numShards]
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		LogicalReads: p.logicalReads.Load(),
		Hits:         p.hits.Load(),
		PhysReads:    p.physReads.Load(),
		PhysWrites:   p.physWrites.Load(),
		Evictions:    p.evictions.Load(),
		LatchWaits:   p.latchWaits.Load(),

		Tier2Hits:          p.tier2Hits.Load(),
		Tier2Misses:        p.tier2Misses.Load(),
		PrefetchIssued:     p.prefetchIssued.Load(),
		PrefetchUsed:       p.prefetchUsed.Load(),
		PrefetchWasted:     p.prefetchWasted.Load(),
		CoalescedWriteRuns: p.coalescedRuns.Load(),
	}
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.logicalReads.Store(0)
	p.hits.Store(0)
	p.physReads.Store(0)
	p.physWrites.Store(0)
	p.evictions.Store(0)
	p.latchWaits.Store(0)
	p.tier2Hits.Store(0)
	p.tier2Misses.Store(0)
	p.tier2Admits.Store(0)
	p.tier2Evictions.Store(0)
	p.tier2Corrupt.Store(0)
	p.prefetchIssued.Store(0)
	p.prefetchUsed.Store(0)
	p.prefetchWasted.Store(0)
	p.coalescedRuns.Store(0)
}

// AttachTelemetry registers the pool's counters with a metrics
// registry. The counters are the pool's own — registration installs
// read-only views, so the hot path never changes.
func (p *Pool) AttachTelemetry(reg *telemetry.Registry) {
	reg.Func("buffer.logical_reads", p.logicalReads.Load)
	reg.Func("buffer.hits", p.hits.Load)
	reg.Func("buffer.misses", func() int64 { return p.logicalReads.Load() - p.hits.Load() })
	reg.Func("buffer.phys_reads", p.physReads.Load)
	reg.Func("buffer.phys_writes", p.physWrites.Load)
	reg.Func("buffer.evictions", p.evictions.Load)
	reg.Func("buffer.latch_waits", p.latchWaits.Load)
	reg.Func("buffer.resident_frames", func() int64 { return p.size.Load() })
	reg.Func("buffer.io_retries", p.retry.Retries)
	reg.Func("buffer.tier2_hits", p.tier2Hits.Load)
	reg.Func("buffer.tier2_misses", p.tier2Misses.Load)
	reg.Func("buffer.tier2_admitted", p.tier2Admits.Load)
	reg.Func("buffer.tier2_evictions", p.tier2Evictions.Load)
	reg.Func("buffer.tier2_corrupt", p.tier2Corrupt.Load)
	reg.Func("buffer.tier2_bytes", func() int64 {
		if p.t2 == nil {
			return 0
		}
		return p.t2.bytes()
	})
	reg.Func("buffer.tier2_pages", func() int64 {
		if p.t2 == nil {
			return 0
		}
		return p.t2.pages()
	})
	reg.Func("buffer.prefetch_issued", p.prefetchIssued.Load)
	reg.Func("buffer.prefetch_used", p.prefetchUsed.Load)
	reg.Func("buffer.prefetch_wasted", p.prefetchWasted.Load)
	reg.Func("buffer.coalesced_write_runs", p.coalescedRuns.Load)
}

// IORetries returns the number of transient device errors the pool has
// absorbed by retrying (each costed one backoff, none failed a caller).
func (p *Pool) IORetries() int64 { return p.retry.Retries() }

// Get pins the frame for page pn, reading it from the device on a miss.
func (p *Pool) Get(pn pagedev.PageNo) (*Frame, error) {
	return p.get(pn, true)
}

// GetNew pins a frame for a freshly allocated page without reading the
// device. The frame contents are zeroed; the caller is expected to format
// and dirty the page.
func (p *Pool) GetNew(pn pagedev.PageNo) (*Frame, error) {
	return p.get(pn, false)
}

func (p *Pool) get(pn pagedev.PageNo, read bool) (*Frame, error) {
	p.logicalReads.Add(1)
	sh := p.shardOf(pn)

	// Hit path: shared shard lock, atomic pin. No pool-wide lock.
	sh.mu.RLock()
	if f, ok := sh.frames[pn]; ok {
		f.pins.Add(1)
		f.ref.Store(true)
		sh.mu.RUnlock()
		p.hits.Add(1)
		f.notePrefetchHit()
		return f, nil
	}
	sh.mu.RUnlock()

	// Miss: reserve a frame slot against the capacity, evicting as
	// needed, then load under the shard's exclusive lock. Holding the
	// shard lock across the device read stalls same-shard hits for the
	// duration of one I/O — accepted: it keeps load failures trivially
	// consistent (no half-loaded frame is ever visible), misses are
	// about to pay the I/O anyway, and the other 15 shards stay hot.
	for {
		n := p.size.Load()
		if n >= int64(p.capacity) {
			if err := p.evictOne(); err != nil {
				return nil, err
			}
			continue
		}
		if p.size.CompareAndSwap(n, n+1) {
			break
		}
	}

	sh.mu.Lock()
	if f, ok := sh.frames[pn]; ok {
		// Raced with another loader of the same page: use theirs.
		f.pins.Add(1)
		f.ref.Store(true)
		sh.mu.Unlock()
		p.size.Add(-1)
		p.hits.Add(1)
		f.notePrefetchHit()
		return f, nil
	}
	f := &Frame{pool: p, page: pn, data: make([]byte, p.dev.PageSize()), fresh: !read}
	f.pins.Store(1)
	if read {
		if err := p.loadInto(f); err != nil {
			sh.mu.Unlock()
			p.size.Add(-1)
			return nil, err
		}
	} else if p.t2 != nil {
		// The caller is re-formatting the page from scratch; a cached
		// image of its previous life must never resurface.
		p.t2.drop(pn)
	}
	sh.frames[pn] = f
	f.ringIdx = len(sh.ring)
	sh.ring = append(sh.ring, f)
	sh.mu.Unlock()
	return f, nil
}

// loadInto fills f.data for page f.page, serving from the compressed
// victim cache when it holds the page and falling back to a physical
// read. Either way the image is checksum-verified (when verification
// is on) before the caller may see it: tier-2 is not trusted — a bit
// flipped while the page sat compressed is detected here and the load
// falls back to the device copy, so corruption is never served.
func (p *Pool) loadInto(f *Frame) error {
	pn := f.page
	if p.t2 != nil {
		switch p.t2.lookup(pn, f.data) {
		case t2Hit:
			if !p.verify.Load() {
				p.tier2Hits.Inc()
				return nil
			}
			if err := pageformat.VerifyChecksum(f.data); err == nil {
				p.tier2Hits.Inc()
				return nil
			}
			p.tier2Corrupt.Inc()
		case t2Corrupt:
			p.tier2Corrupt.Inc()
		default:
			p.tier2Misses.Inc()
		}
	}
	if err := p.retry.Do(func() error { return p.dev.Read(pn, f.data) }); err != nil {
		return err
	}
	p.physReads.Add(1)
	if p.verify.Load() {
		if err := pageformat.VerifyChecksum(f.data); err != nil {
			return fmt.Errorf("%w: page %d: %v", ErrCorrupted, pn, err)
		}
	}
	return nil
}

// notePrefetchHit counts the first foreground hit on a prefetched
// frame. The common case (not prefetched) is one atomic load.
func (f *Frame) notePrefetchHit() {
	if f.prefetched.Load() && f.prefetched.CompareAndSwap(true, false) {
		f.pool.prefetchUsed.Inc()
	}
}

// Touch registers a logical access to a page without keeping it pinned.
// Upper-level caches call this so their hits still exercise the buffer
// (and pay physical I/O if the page was evicted).
func (p *Pool) Touch(pn pagedev.PageNo) error {
	f, err := p.Get(pn)
	if err != nil {
		return err
	}
	f.Release()
	return nil
}

// evictOne removes one unpinned frame, writing it back if dirty. The
// clock sweep visits shards round-robin from the persisted hand
// position; within a shard it advances that shard's hand, clearing
// reference bits of unpinned frames it passes and evicting the first
// unpinned frame whose bit is already clear. Two full cycles without a
// victim mean every frame is pinned.
func (p *Pool) evictOne() error {
	p.evictMu.Lock()
	defer p.evictMu.Unlock()
	if p.size.Load() < int64(p.capacity) {
		// Another eviction (or a failed load) made room meanwhile.
		return nil
	}
	// First pass prefers victims whose write-back needs no log sync
	// (clean frames, or dirty ones the log already covers): evicting a
	// freshly-logged page forces an fsync under the WAL rule, and during
	// a bulk load the pool is full of older, already-durable pages that
	// cost nothing to drop.
	var durableLSN wal.LSN
	if p.wal != nil {
		durableLSN = p.wal.SyncedLSN()
	}
	if p.wal != nil {
		for i := 0; i < numShards; i++ {
			sh := &p.shards[p.handShard]
			evicted, err := p.sweepShard(sh, durableLSN)
			if err != nil {
				return err
			}
			if evicted {
				return nil
			}
			p.handShard = (p.handShard + 1) % numShards
		}
	}
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i < numShards; i++ {
			sh := &p.shards[p.handShard]
			evicted, err := p.sweepShard(sh, 0)
			if err != nil {
				return err
			}
			if evicted {
				return nil
			}
			p.handShard = (p.handShard + 1) % numShards
		}
	}
	return ErrPoolFull
}

// sweepShard advances the shard's clock hand once (see
// sweepShardLocked) and, when a frame was evicted, admits its image to
// the compressed victim cache. Admission runs after the shard lock is
// released — the frame is off the page table with zero pins, so its
// image is exclusively ours and the compression cost never stalls
// same-shard hits. Caller holds evictMu.
func (p *Pool) sweepShard(sh *shard, durableLSN wal.LSN) (bool, error) {
	victim, admissible, err := p.sweepShardLocked(sh, durableLSN)
	if victim == nil || err != nil {
		return false, err
	}
	if p.t2 != nil && admissible {
		p.t2.admit(p, victim.page, victim.data)
	}
	return true, nil
}

// sweepShardLocked advances the shard's clock hand over its ring once,
// evicting the first second-chance victim it finds and returning it. A
// non-zero durableLSN makes the pass selective: dirty frames the log
// does not yet cover are passed over (their reference bits untouched),
// so a cheaper victim can be found before paying for a log sync.
// admissible reports whether the victim's image matches the device copy
// and may therefore enter tier-2: true for anything written back and
// for clean frames loaded from the device, false for a fresh (GetNew)
// frame that was never dirtied — its bytes never reached the device and
// caching them would resurrect content the device does not hold. Caller
// holds evictMu.
func (p *Pool) sweepShardLocked(sh *shard, durableLSN wal.LSN) (victim *Frame, admissible bool, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.ring)
	for i := 0; i < n; i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		f := sh.ring[sh.hand]
		if f.pins.Load() > 0 {
			sh.hand++
			continue
		}
		if durableLSN > 0 && f.dirty.Load() && wal.LSN(f.pageLSN.Load()) > durableLSN {
			sh.hand++
			continue
		}
		if f.ref.CompareAndSwap(true, false) {
			sh.hand++
			continue
		}
		// Victim: write back if dirty, then drop. No pins and the shard
		// lock is held, so no caller can hold the frame's latch or pin
		// it concurrently.
		wasDirty := f.dirty.Load()
		if wasDirty {
			if err := p.writeBack(f); err != nil {
				return nil, false, err
			}
		}
		if f.prefetched.Load() {
			p.prefetchWasted.Inc()
		}
		delete(sh.frames, f.page)
		last := len(sh.ring) - 1
		sh.ring[f.ringIdx] = sh.ring[last]
		sh.ring[f.ringIdx].ringIdx = f.ringIdx
		sh.ring = sh.ring[:last]
		if sh.hand > last {
			sh.hand = 0
		}
		p.size.Add(-1)
		p.evictions.Add(1)
		return f, wasDirty || !f.fresh, nil
	}
	return nil, false, nil
}

// writeBack flushes one frame's bytes to the device. The caller must
// guarantee exclusive access to the frame data (shard lock with zero
// pins, or the frame's exclusive latch): refreshing the checksum
// mutates the page image. With a log attached, the write waits for the
// log to be durable through the frame's page LSN — the WAL rule.
func (p *Pool) writeBack(f *Frame) error {
	if p.wal != nil {
		if lsn := f.pageLSN.Load(); lsn > 0 {
			if err := p.wal.FlushTo(wal.LSN(lsn)); err != nil {
				return err
			}
		}
	}
	if pageformat.TypeOf(f.data) != pageformat.TypeInvalid {
		pageformat.UpdateChecksum(f.data)
	}
	if err := p.retry.Do(func() error { return p.dev.Write(f.page, f.data) }); err != nil {
		return err
	}
	p.physWrites.Add(1)
	f.dirty.Store(false)
	return nil
}

// FlushAll writes every dirty frame back to the device and syncs it.
// Frames stay cached and pins are unaffected. Dirty pages are written in
// ascending page order (elevator order), as any real write-back cache
// would, which matters to the simulated disk's seek accounting. Each
// frame is written under its exclusive latch, so a flush concurrent
// with page mutations sees page-atomic states.
func (p *Pool) FlushAll() error {
	// One log sync up front satisfies the WAL rule for every frame
	// below, instead of per-frame syncs in page order.
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil {
			return err
		}
	}
	dirty := p.pinDirty()
	err := p.flushPinned(dirty)
	if err != nil {
		return err
	}
	return p.dev.Sync()
}

// pinDirty collects and pins every currently-dirty frame, sorted by
// page number.
func (p *Pool) pinDirty() []*Frame {
	var dirty []*Frame
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for _, f := range sh.frames {
			if f.dirty.Load() {
				f.pins.Add(1)
				dirty = append(dirty, f)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].page < dirty[j].page })
	return dirty
}

// maxCoalesce caps the pages merged into one vectored write. It bounds
// the run copy buffer and how long a flush holds multiple frame latches
// at once.
const maxCoalesce = 32

// flushPinned writes back the given pinned frames (sorted by page
// number) and unpins them all, returning the first write error. Runs
// of adjacent dirty pages are merged into single vectored writes: a
// checkpoint of a freshly loaded document flushes hundreds of
// consecutive pages, and one pagedev.WriteRange per run replaces one
// syscall (and one simulated seek) per page.
func (p *Pool) flushPinned(frames []*Frame) error {
	var (
		firstErr error
		buf      []byte
	)
	ps := p.dev.PageSize()
	for i := 0; i < len(frames); {
		j := i + 1
		for j < len(frames) && j-i < maxCoalesce && frames[j].page == frames[j-1].page+1 {
			j++
		}
		run := frames[i:j]
		i = j
		if firstErr != nil {
			for _, f := range run {
				f.Release()
			}
			continue
		}
		if len(run) == 1 {
			f := run[0]
			f.latch.Lock()
			if f.dirty.Load() {
				if err := p.writeBack(f); err != nil {
					firstErr = err
				}
			}
			f.latch.Unlock()
			f.Release()
			continue
		}
		if buf == nil {
			buf = make([]byte, maxCoalesce*ps)
		}
		// Latch the whole run (frames arrive in ascending page order, so
		// the acquisition order is deterministic) so the vectored write
		// captures a page-atomic state of every frame in it.
		for _, f := range run {
			f.latch.Lock()
		}
		if err := p.writeBackRun(run, buf); err != nil {
			firstErr = err
		}
		for k := len(run) - 1; k >= 0; k-- {
			run[k].latch.Unlock()
		}
		for _, f := range run {
			f.Release()
		}
	}
	return firstErr
}

// writeBackRun flushes a run of frames imaging adjacent pages with one
// vectored device write. The caller must guarantee exclusive access to
// every frame's data (latches held, or all shard locks with zero
// pins): checksum refresh mutates the page images. The WAL rule is
// honored for the run as a whole with one FlushTo through the highest
// page LSN in it.
func (p *Pool) writeBackRun(run []*Frame, buf []byte) error {
	if p.wal != nil {
		var maxLSN uint64
		for _, f := range run {
			if lsn := f.pageLSN.Load(); lsn > maxLSN {
				maxLSN = lsn
			}
		}
		if maxLSN > 0 {
			if err := p.wal.FlushTo(wal.LSN(maxLSN)); err != nil {
				return err
			}
		}
	}
	ps := p.dev.PageSize()
	for k, f := range run {
		if pageformat.TypeOf(f.data) != pageformat.TypeInvalid {
			pageformat.UpdateChecksum(f.data)
		}
		copy(buf[k*ps:(k+1)*ps], f.data)
	}
	start := run[0].page
	n := len(run) * ps
	if err := p.retry.Do(func() error { return pagedev.WriteRange(p.dev, start, buf[:n]) }); err != nil {
		return err
	}
	p.physWrites.Add(int64(len(run)))
	p.coalescedRuns.Inc()
	for _, f := range run {
		f.dirty.Store(false)
	}
	return nil
}

// lockAll takes every shard lock (in index order; Clear is the only
// multi-shard locker, so the order only matters for consistency).
func (p *Pool) lockAll() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
}

func (p *Pool) unlockAll() {
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
}

// Clear flushes all dirty frames and then empties the pool. It fails with
// ErrPinned if any frame is still pinned. The paper clears the buffer at
// the start of each measured operation.
func (p *Pool) Clear() error {
	// Wait out background read-ahead first: a straggler batch finishing
	// after the wipe would leave the "cold" pool partially warm.
	p.DrainPrefetch()
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil {
			return err
		}
	}
	p.lockAll()
	defer p.unlockAll()
	var dirty []*Frame
	for i := range p.shards {
		for pn, f := range p.shards[i].frames {
			if n := f.pins.Load(); n > 0 {
				return fmt.Errorf("%w: page %d (%d pins)", ErrPinned, pn, n)
			}
			if f.dirty.Load() {
				dirty = append(dirty, f)
			}
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].page < dirty[j].page })
	var buf []byte
	ps := p.dev.PageSize()
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && j-i < maxCoalesce && dirty[j].page == dirty[j-1].page+1 {
			j++
		}
		run := dirty[i:j]
		i = j
		if len(run) == 1 {
			if err := p.writeBack(run[0]); err != nil {
				return err
			}
			continue
		}
		if buf == nil {
			buf = make([]byte, maxCoalesce*ps)
		}
		// All shard locks are held and every frame is unpinned, so the
		// run frames are exclusively ours without latching.
		if err := p.writeBackRun(run, buf); err != nil {
			return err
		}
	}
	if err := p.dev.Sync(); err != nil {
		return err
	}
	if p.t2 != nil {
		// The paper clears the buffer to make measurements cold; that
		// must empty both tiers of the hierarchy.
		p.t2.reset()
	}
	var removed int64
	for i := range p.shards {
		sh := &p.shards[i]
		removed += int64(len(sh.frames))
		sh.frames = make(map[pagedev.PageNo]*Frame)
		sh.ring = nil
		sh.hand = 0
	}
	// Subtract what was dropped rather than zeroing: a concurrent miss
	// may have reserved a slot in size and be waiting on a shard lock,
	// and that reservation must survive the clear.
	p.size.Add(-removed)
	return nil
}

// Cached returns the number of frames currently held (pinned or not).
func (p *Pool) Cached() int { return int(p.size.Load()) }

// Resident reports whether page pn currently has a frame in the pool.
// The integrity scrubber skips resident pages: their frame is the
// authoritative copy and the device bytes may be legitimately stale.
func (p *Pool) Resident(pn pagedev.PageNo) bool {
	sh := p.shardOf(pn)
	sh.mu.RLock()
	_, ok := sh.frames[pn]
	sh.mu.RUnlock()
	return ok
}

// Restore installs img as the content of page pn, bypassing the frame
// path: the checksum is refreshed on a private copy and the page is
// written straight to the device. It is the repair primitive — the
// scrubber calls it with a WAL-reconstructed image after the device
// copy failed verification. Restoring a resident page is refused: a
// frame in the pool means the page is live and its bytes authoritative,
// and a scrubber honoring Resident never gets here.
func (p *Pool) Restore(pn pagedev.PageNo, img []byte) error {
	if len(img) != p.dev.PageSize() {
		return fmt.Errorf("buffer: restore page %d: image size %d, want %d", pn, len(img), p.dev.PageSize())
	}
	if p.Resident(pn) {
		return fmt.Errorf("buffer: restore page %d: page is resident", pn)
	}
	if p.t2 != nil {
		// The device copy is being rewritten; a compressed image of the
		// (possibly corrupt) previous content must not resurface.
		p.t2.drop(pn)
	}
	buf := make([]byte, len(img))
	copy(buf, img)
	if pageformat.TypeOf(buf) != pageformat.TypeInvalid {
		pageformat.UpdateChecksum(buf)
	}
	if err := p.retry.Do(func() error { return p.dev.Write(pn, buf) }); err != nil {
		return err
	}
	p.physWrites.Add(1)
	return p.dev.Sync()
}

// Page returns the page number this frame images.
func (f *Frame) Page() pagedev.PageNo { return f.page }

// Data returns the page image. Mutations must be followed by MarkDirty.
// The slice is valid only while the frame is pinned; concurrent users
// must hold the frame latch (shared to read, exclusive to mutate).
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the frame differs from the on-device page.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// RLatch acquires the frame latch shared, for reading the page bytes.
// A blocked acquisition (a writer holds or awaits the latch) counts as
// a latch wait; the try-first fast path keeps the uncontended case at
// one atomic.
func (f *Frame) RLatch() {
	if f.latch.TryRLock() {
		return
	}
	f.pool.latchWaits.Inc()
	f.latch.RLock()
}

// RUnlatch releases a shared latch.
func (f *Frame) RUnlatch() { f.latch.RUnlock() }

// Latch acquires the frame latch exclusively, for mutating the page
// bytes. Blocked acquisitions count as latch waits.
func (f *Frame) Latch() {
	if f.latch.TryLock() {
		return
	}
	f.pool.latchWaits.Inc()
	f.latch.Lock()
}

// Unlatch releases an exclusive latch.
func (f *Frame) Unlatch() { f.latch.Unlock() }

// Release unpins the frame. The frame becomes eligible for eviction once
// its pin count reaches zero. Releasing an unpinned frame panics: it
// indicates a pin-accounting bug in the caller.
func (f *Frame) Release() {
	if f.pins.Add(-1) < 0 {
		panic(ErrReleased)
	}
}

// Update is the token BeginUpdate hands out and EndUpdate consumes. It
// carries the pre-mutation snapshot the log diff runs against.
type Update struct {
	snap []byte
}

// BeginUpdate prepares a logged mutation of the frame's page. The
// caller must hold the exclusive latch, mutate Data(), and finish with
// EndUpdate — which logs the change and marks the frame dirty (the
// MarkDirty call disappears into it). Without an attached log the pair
// degenerates to a plain MarkDirty.
func (f *Frame) BeginUpdate() Update {
	p := f.pool
	if p.wal == nil || f.fresh {
		// Fresh pages log a full image in EndUpdate: no snapshot needed.
		return Update{}
	}
	snap := p.snapPool.Get().([]byte)
	copy(snap, f.data)
	return Update{snap: snap}
}

// EndUpdate closes a BeginUpdate bracket: it diffs the page against
// the snapshot, appends the matching log record (full image for fresh
// pages, before-image + ranges on the first post-checkpoint change,
// plain ranges otherwise), stamps the record's LSN into the page
// header, and marks the frame dirty. A mutation that turned out to be
// a no-op logs nothing and leaves the frame clean.
func (f *Frame) EndUpdate(u Update) error {
	p := f.pool
	if p.wal == nil {
		f.MarkDirty()
		return nil
	}
	if f.fresh {
		return f.logImage()
	}
	defer p.snapPool.Put(u.snap)
	ranges := diffRanges(u.snap, f.data)
	if len(ranges) == 0 {
		return nil
	}
	epoch := p.walEpoch.Load()
	var (
		lsn wal.LSN
		err error
	)
	if f.logEpoch != epoch {
		lsn, err = p.wal.AppendFirstUpdate(f.page, u.snap, ranges)
	} else {
		lsn, err = p.wal.AppendUpdate(f.page, ranges)
	}
	if err != nil {
		return err
	}
	f.stampLocked(lsn, epoch)
	return nil
}

// CancelUpdate abandons a BeginUpdate bracket without logging, for
// callers whose mutation turned out not to happen (e.g. an insert the
// page refused). The page must be byte-identical to the snapshot.
func (f *Frame) CancelUpdate(u Update) {
	if u.snap != nil {
		f.pool.snapPool.Put(u.snap)
	}
}

// LogImage logs the frame's full current contents as a fresh-page
// image record and marks it dirty. Only valid for pages the running
// operation allocated (restart undo deallocates them): the bulk
// loader's batch writer uses it to log each packed page exactly once.
func (f *Frame) LogImage() error {
	if f.pool.wal == nil {
		f.MarkDirty()
		return nil
	}
	return f.logImage()
}

func (f *Frame) logImage() error {
	p := f.pool
	lsn, err := p.wal.AppendImage(f.page, f.data)
	if err != nil {
		return err
	}
	f.stampLocked(lsn, p.walEpoch.Load())
	return nil
}

// stampLocked records a logged change: page-header LSN, frame LSN,
// epoch, dirty. Caller holds the exclusive latch.
func (f *Frame) stampLocked(lsn wal.LSN, epoch uint64) {
	f.fresh = false
	f.logEpoch = epoch
	pageformat.SetPageLSN(f.data, uint64(lsn))
	f.pageLSN.Store(uint64(lsn))
	f.MarkDirty()
}

// diff tuning: runs of differing bytes closer than mergeGap coalesce
// into one range (each range costs 4 directory bytes plus double its
// length); more than maxRanges runs collapse into a single span.
const (
	mergeGap  = 16
	maxRanges = 64
)

// diffRanges computes the changed byte spans between two page images.
// The returned ranges alias both slices; they must be consumed (the
// log serializes them) before either buffer is reused.
func diffRanges(old, new []byte) []wal.Range {
	var out []wal.Range
	n := len(old)
	for i := 0; i < n; {
		if old[i] == new[i] {
			i++
			continue
		}
		start := i
		end := i + 1
		for j := i + 1; j < n && j-end < mergeGap; j++ {
			if old[j] != new[j] {
				end = j + 1
			}
		}
		out = append(out, wal.Range{Off: start, Before: old[start:end], After: new[start:end]})
		i = end + mergeGap
		if i > n {
			i = n
		}
	}
	if len(out) > maxRanges {
		lo := out[0].Off
		hi := out[len(out)-1].Off + len(out[len(out)-1].Before)
		out = []wal.Range{{Off: lo, Before: old[lo:hi], After: new[lo:hi]}}
	}
	return out
}

// ShrinkTo deallocates every page at or above n: resident frames are
// dropped (they must be unpinned), a shrink record is logged, and the
// device is truncated. Operation rollback calls it to return the
// device to its pre-operation size. All shard locks are held across
// the check-then-drop so a pinned frame fails the call before any
// frame (with possibly newer dirty bytes) has been discarded.
func (p *Pool) ShrinkTo(n pagedev.PageNo) error {
	// Settle background read-ahead before dropping frames: a batch
	// loading soon-to-be-truncated pages would race the shrink.
	p.DrainPrefetch()
	p.lockAll()
	for i := range p.shards {
		for pn, f := range p.shards[i].frames {
			if pn < n {
				continue
			}
			if c := f.pins.Load(); c > 0 {
				p.unlockAll()
				return fmt.Errorf("%w: page %d (%d pins)", ErrPinned, pn, c)
			}
		}
	}
	for i := range p.shards {
		sh := &p.shards[i]
		for pn, f := range sh.frames {
			if pn < n {
				continue
			}
			delete(sh.frames, pn)
			last := len(sh.ring) - 1
			sh.ring[f.ringIdx] = sh.ring[last]
			sh.ring[f.ringIdx].ringIdx = f.ringIdx
			sh.ring = sh.ring[:last]
			if sh.hand > last {
				sh.hand = 0
			}
			p.size.Add(-1)
		}
	}
	p.unlockAll()
	if p.t2 != nil {
		p.t2.dropFrom(n)
	}
	if p.wal != nil {
		if _, err := p.wal.AppendShrink(uint64(n)); err != nil {
			return err
		}
	}
	return p.dev.Shrink(n)
}
