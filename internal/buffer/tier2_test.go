package buffer

import (
	"testing"

	"natix/internal/compress"
	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/wal"
)

func newTierPool(t *testing.T, pageSize, frames, pages int) (*Pool, *pagedev.Mem) {
	t.Helper()
	p, dev := newPool(t, pageSize, frames, pages)
	p.EnableCompressedCache(1<<20, compress.NewFlate(compress.DefaultLevel))
	return p, dev
}

func TestTier2ServesEvictedPage(t *testing.T) {
	// Single-frame pool: every Get evicts the previous page. The dirty
	// victim is written back and admitted to tier-2; re-getting it must
	// hit the tier, not the device.
	p, _ := newTierPool(t, 1024, 1, 8)
	f, _ := p.GetNew(0)
	format(f, 0x5A)
	f.Release()
	g, err := p.GetNew(1) // evicts page 0 (dirty write-back, admissible)
	if err != nil {
		t.Fatal(err)
	}
	format(g, 0x5B)
	g.Release()
	p.ResetStats()

	h, err := p.Get(0) // evicts page 1, then loads page 0 from tier-2
	if err != nil {
		t.Fatal(err)
	}
	s, err := pageformat.AsSlotted(h.Data())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.Cell(0)
	if err != nil || cell[0] != 0x5A {
		t.Fatalf("cell = %v, %v", cell, err)
	}
	h.Release()
	st := p.Stats()
	if st.Tier2Hits != 1 {
		t.Fatalf("Tier2Hits = %d, want 1", st.Tier2Hits)
	}
	if st.PhysReads != 0 {
		t.Fatalf("PhysReads = %d, want 0 (served from tier-2)", st.PhysReads)
	}
}

func TestTier2FreshNeverWrittenPageNotAdmitted(t *testing.T) {
	// A GetNew frame that was never dirtied holds bytes the device does
	// not: evicting it must not seed tier-2 with phantom content.
	p, dev := newTierPool(t, 1024, 1, 8)
	// Put real content on device page 0 behind the pool's back.
	img := make([]byte, 1024)
	s := pageformat.FormatSlotted(img)
	s.Insert([]byte{0x77})
	pageformat.UpdateChecksum(img)
	if err := dev.Write(0, img); err != nil {
		t.Fatal(err)
	}

	f, err := p.GetNew(0) // fresh frame: zeroes, never dirtied
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	g, err := p.Get(1) // evicts the fresh frame
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if p.t2.contains(0) {
		t.Fatal("fresh never-dirtied frame was admitted to tier-2")
	}
	// The device copy is what a re-get must see.
	h, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := pageformat.AsSlotted(h.Data())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := sl.Cell(0)
	if err != nil || cell[0] != 0x77 {
		t.Fatalf("cell = %v, %v (want the device copy)", cell, err)
	}
	h.Release()
}

func TestTier2CorruptEntryNeverServed(t *testing.T) {
	// A bit flipped while the image sat in tier-2 must be detected (the
	// CRC-after-decompress re-verification) and the load must fall back
	// to the device copy.
	p, _ := newTierPool(t, 1024, 1, 8)
	f, _ := p.GetNew(0)
	format(f, 0x33)
	f.Release()
	g, _ := p.GetNew(1) // evicts + admits page 0
	format(g, 0x34)
	g.Release()

	p.t2.mu.Lock()
	e := p.t2.entries[0]
	if e == nil {
		p.t2.mu.Unlock()
		t.Fatal("page 0 not admitted")
	}
	e.data[len(e.data)/2] ^= 0xFF
	p.t2.mu.Unlock()

	p.ResetStats()
	h, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pageformat.AsSlotted(h.Data())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.Cell(0)
	if err != nil || cell[0] != 0x33 {
		t.Fatalf("cell = %v, %v (want the device copy)", cell, err)
	}
	h.Release()
	st := p.Stats()
	if st.Tier2Hits != 0 {
		t.Fatalf("Tier2Hits = %d, want 0 (corrupt entry must not count as a hit)", st.Tier2Hits)
	}
	if st.PhysReads != 1 {
		t.Fatalf("PhysReads = %d, want 1 (fallback to device)", st.PhysReads)
	}
}

func TestTier2Invalidation(t *testing.T) {
	p, _ := newTierPool(t, 1024, 1, 16)
	admit := func(pn pagedev.PageNo) {
		t.Helper()
		f, err := p.GetNew(pn)
		if err != nil {
			t.Fatal(err)
		}
		format(f, byte(pn))
		f.Release()
		// Evict it by pulling another page through the single frame.
		g, err := p.GetNew(pn + 8)
		if err != nil {
			t.Fatal(err)
		}
		format(g, 0xEE)
		g.Release()
		if !p.t2.contains(pn) {
			t.Fatalf("page %d not admitted", pn)
		}
	}

	// Restore (scrubber repair) rewrites the device copy: the cached
	// image is stale and must drop.
	admit(1)
	img := make([]byte, 1024)
	s := pageformat.FormatSlotted(img)
	s.Insert([]byte{0x11})
	pageformat.UpdateChecksum(img)
	if err := p.Restore(1, img); err != nil {
		t.Fatal(err)
	}
	if p.t2.contains(1) {
		t.Fatal("Restore left a stale tier-2 entry")
	}

	// GetNew reallocates the page: cached old content must drop.
	admit(2)
	f, err := p.GetNew(2)
	if err != nil {
		t.Fatal(err)
	}
	format(f, 0x22)
	f.Release()
	if p.t2.contains(2) {
		t.Fatal("GetNew left a stale tier-2 entry")
	}

	// Clear resets the whole tier (cold measurements start cold).
	admit(3)
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	if p.t2.pages() != 0 || p.t2.bytes() != 0 {
		t.Fatalf("Clear left %d entries / %d bytes in tier-2", p.t2.pages(), p.t2.bytes())
	}

	// ShrinkTo truncates the device: entries past the boundary drop.
	// (Last: the device stays shrunk.)
	admit(5)
	if err := p.ShrinkTo(4); err != nil {
		t.Fatal(err)
	}
	if p.t2.contains(5) {
		t.Fatal("ShrinkTo left a tier-2 entry past the truncation point")
	}
}

func TestTier2ByteBudgetEvictsLRU(t *testing.T) {
	// Full pages of PRNG noise do not deflate, so each entry is kept raw
	// at a full page: a two-page budget holds exactly two entries and the
	// third admission evicts the least recently admitted.
	p, _ := newPool(t, 1024, 1, 16)
	const budget = 2*1024 + 64
	tier := newTier2(budget, compress.NewFlate(compress.DefaultLevel))
	page := func(seed uint32) []byte {
		b := make([]byte, 1024)
		x := seed*2654435761 + 2166136261
		for i := range b {
			x = x*1664525 + 1013904223
			b[i] = byte(x >> 24)
		}
		return b
	}
	for pn := pagedev.PageNo(0); pn < 3; pn++ {
		tier.admit(p, pn, page(uint32(pn)))
	}
	if tier.contains(0) {
		t.Fatal("budget should have evicted the oldest entry (page 0)")
	}
	if !tier.contains(1) || !tier.contains(2) {
		t.Fatal("newest entries must survive the budget sweep")
	}
	if tier.bytes() > budget {
		t.Fatalf("tier-2 over budget: %d bytes", tier.bytes())
	}
}

func TestPrefetchRangeLoadsAndCounts(t *testing.T) {
	p, _ := newPool(t, 1024, 8, 16)
	for pn := pagedev.PageNo(0); pn < 8; pn++ {
		f, _ := p.GetNew(pn)
		format(f, byte(pn))
		f.Release()
	}
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	p.PrefetchRange(nil, 0, 4)
	p.DrainPrefetch()
	st := p.Stats()
	if st.PrefetchIssued != 4 {
		t.Fatalf("PrefetchIssued = %d, want 4", st.PrefetchIssued)
	}
	if st.PhysReads != 4 {
		t.Fatalf("PhysReads = %d, want 4", st.PhysReads)
	}
	// Foreground gets on prefetched pages are hits and count as used.
	for pn := pagedev.PageNo(0); pn < 2; pn++ {
		f, err := p.Get(pn)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	st = p.Stats()
	if st.Hits != 2 {
		t.Fatalf("Hits = %d, want 2", st.Hits)
	}
	if st.PrefetchUsed != 2 {
		t.Fatalf("PrefetchUsed = %d, want 2", st.PrefetchUsed)
	}
	// A fully resident range is a no-op (and must not block).
	p.PrefetchRange(nil, 0, 4)
	p.DrainPrefetch()
	if got := p.Stats().PrefetchIssued; got != 4 {
		t.Fatalf("PrefetchIssued after resident range = %d, want 4", got)
	}
}

func TestPrefetchUntouchedPagesAreFirstVictims(t *testing.T) {
	// Prefetched frames install with the reference bit clear: under
	// pressure the clock reclaims them before any touched frame, and
	// counts them wasted.
	p, _ := newPool(t, 1024, 8, 16)
	for pn := pagedev.PageNo(0); pn < 12; pn++ {
		f, _ := p.GetNew(pn)
		format(f, byte(pn))
		f.Release()
	}
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	p.PrefetchRange(nil, 0, 4)
	p.DrainPrefetch()
	if got := p.Stats().PrefetchIssued; got != 4 {
		t.Fatalf("PrefetchIssued = %d, want 4", got)
	}
	// Touch pages 0 and 1 (sets their reference bits, counts them used).
	for pn := pagedev.PageNo(0); pn < 2; pn++ {
		f, err := p.Get(pn)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	// Fill the pool with four more pages and re-Get each so their
	// reference bits are set (a miss-install leaves the bit clear until
	// the first repeat access).
	for pn := pagedev.PageNo(4); pn < 8; pn++ {
		for i := 0; i < 2; i++ {
			f, err := p.Get(pn)
			if err != nil {
				t.Fatal(err)
			}
			f.Release()
		}
	}
	// Two more pages force two evictions: the untouched prefetched
	// frames (2, 3) must go first. The new frames stay pinned so they
	// cannot themselves be chosen before the sweep finds both.
	f8, err := p.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := p.Get(9)
	if err != nil {
		t.Fatal(err)
	}
	f8.Release()
	f9.Release()
	st := p.Stats()
	if st.PrefetchWasted != 2 {
		t.Fatalf("PrefetchWasted = %d, want 2", st.PrefetchWasted)
	}
	if st.PrefetchUsed != 2 {
		t.Fatalf("PrefetchUsed = %d, want 2", st.PrefetchUsed)
	}
	for _, pn := range []pagedev.PageNo{0, 1, 4, 5, 6, 7} {
		if !p.Resident(pn) {
			t.Fatalf("touched page %d was evicted before untouched prefetched ones", pn)
		}
	}
	if p.Resident(2) || p.Resident(3) {
		t.Fatal("untouched prefetched pages should have been the first victims")
	}
}

func TestPrefetchBatchAPI(t *testing.T) {
	p, _ := newPool(t, 1024, 8, 16)
	for pn := pagedev.PageNo(0); pn < 8; pn++ {
		f, _ := p.GetNew(pn)
		format(f, byte(pn))
		f.Release()
	}
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	p.Prefetch(nil, []pagedev.PageNo{7, 3, 5})
	p.DrainPrefetch()
	if got := p.Stats().PrefetchIssued; got != 3 {
		t.Fatalf("PrefetchIssued = %d, want 3", got)
	}
	for _, pn := range []pagedev.PageNo{3, 5, 7} {
		if !p.Resident(pn) {
			t.Fatalf("page %d not resident after Prefetch", pn)
		}
	}
}

// rangeCountingDev wraps Mem and counts vectored vs single-page writes.
type rangeCountingDev struct {
	*pagedev.Mem
	rangeWrites  int
	rangePages   int
	singleWrites int
}

func (d *rangeCountingDev) Write(p pagedev.PageNo, buf []byte) error {
	d.singleWrites++
	return d.Mem.Write(p, buf)
}

func (d *rangeCountingDev) WriteRange(p pagedev.PageNo, buf []byte) error {
	d.rangeWrites++
	d.rangePages += len(buf) / d.PageSize()
	return d.Mem.WriteRange(p, buf)
}

func TestFlushAllCoalescesAdjacentPages(t *testing.T) {
	mem, err := pagedev.NewMem(1024)
	if err != nil {
		t.Fatal(err)
	}
	dev := &rangeCountingDev{Mem: mem}
	p, err := New(dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Grow(32); err != nil {
		t.Fatal(err)
	}
	// Two adjacent runs (0..5, 10..12) and one isolated page (20),
	// dirtied out of order.
	dirty := []pagedev.PageNo{10, 3, 20, 0, 5, 11, 1, 4, 12, 2}
	for _, pn := range dirty {
		f, err := p.GetNew(pn)
		if err != nil {
			t.Fatal(err)
		}
		format(f, byte(pn))
		f.Release()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if dev.rangeWrites != 2 {
		t.Fatalf("rangeWrites = %d, want 2 (runs 0..5 and 10..12)", dev.rangeWrites)
	}
	if dev.rangePages != 9 {
		t.Fatalf("rangePages = %d, want 9", dev.rangePages)
	}
	if dev.singleWrites != 1 {
		t.Fatalf("singleWrites = %d, want 1 (page 20)", dev.singleWrites)
	}
	if st := p.Stats(); st.CoalescedWriteRuns != 2 {
		t.Fatalf("CoalescedWriteRuns = %d, want 2", st.CoalescedWriteRuns)
	}
	if st := p.Stats(); st.PhysWrites != 10 {
		t.Fatalf("PhysWrites = %d, want 10", st.PhysWrites)
	}
	// Every flushed page must verify on the device.
	buf := make([]byte, 1024)
	for _, pn := range dirty {
		if err := mem.Read(pn, buf); err != nil {
			t.Fatal(err)
		}
		if err := pageformat.VerifyChecksum(buf); err != nil {
			t.Fatalf("page %d after coalesced flush: %v", pn, err)
		}
		s, err := pageformat.AsSlotted(buf)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := s.Cell(0)
		if err != nil || cell[0] != byte(pn) {
			t.Fatalf("page %d cell = %v, %v", pn, cell, err)
		}
	}
}

func TestSelectiveEvictionWithTier2UnderWAL(t *testing.T) {
	// PR 7's selective clock pass skips dirty frames whose log records
	// are not yet durable. With tier-2 attached, the clean frames it
	// prefers must be admitted, and — after a mid-load sync makes the
	// dirty frames' LSNs durable — dirty victims must write back and be
	// admitted too, never bypassing the WAL rule.
	dev, _ := pagedev.NewMem(1024)
	pool, err := New(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool.EnableCompressedCache(1<<20, compress.NewFlate(compress.DefaultLevel))
	st := wal.NewMemStorage()
	w, err := wal.OpenWriter(st, wal.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pool.AttachWAL(w)
	if _, err := w.Begin("test", 0); err != nil {
		t.Fatal(err)
	}
	dev.Grow(16)

	// Two clean frames (written back and reloaded) and two dirty logged
	// frames whose records are not yet synced.
	mutate := func(pn pagedev.PageNo) {
		t.Helper()
		f, err := pool.GetNew(pn)
		if err != nil {
			t.Fatal(err)
		}
		f.Latch()
		u := f.BeginUpdate()
		s := pageformat.FormatSlotted(f.Data())
		s.Insert([]byte{byte(pn)})
		if err := f.EndUpdate(u); err != nil {
			t.Fatal(err)
		}
		f.Unlatch()
		f.Release()
	}
	mutate(0)
	mutate(1)
	if err := pool.FlushAll(); err != nil { // pages 0,1 now clean, device-backed
		t.Fatal(err)
	}
	mutate(2)
	mutate(3)
	if w.SyncedLSN() >= w.End() {
		t.Fatal("test premise: pages 2,3 must have unsynced log records")
	}

	// Under pressure the selective first pass must pick clean victims
	// (0 or 1), not force a log sync for 2 or 3.
	synced := w.SyncedLSN()
	f, err := pool.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if w.SyncedLSN() != synced {
		t.Fatal("eviction forced a log sync despite clean victims being available")
	}
	if !pool.t2.contains(0) && !pool.t2.contains(1) {
		t.Fatal("clean victim was not admitted to tier-2")
	}
	if pool.t2.contains(2) || pool.t2.contains(3) {
		t.Fatal("dirty unsynced frame must not be in tier-2")
	}

	// Mid-load sync: the dirty frames become evictable; their write-back
	// (WAL rule already satisfied) admits them as well.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	for pn := pagedev.PageNo(9); pn < 12; pn++ {
		g, err := pool.Get(pn)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	if !pool.t2.contains(2) && !pool.t2.contains(3) {
		t.Fatal("synced dirty victims were not admitted to tier-2 after write-back")
	}
	// Tier-2 reloads of the logged pages carry the right content.
	g, err := pool.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pageformat.AsSlotted(g.Data())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.Cell(0)
	if err != nil || cell[0] != 2 {
		t.Fatalf("cell = %v, %v", cell, err)
	}
	g.Release()
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}
