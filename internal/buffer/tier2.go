package buffer

// Tier-2 of the pool's memory hierarchy: a compressed victim cache.
// When the clock evicts a frame, its (clean, just-written-back) page
// image is compressed and kept in tier-2 instead of vanishing; a later
// miss on that page decompresses it back into a frame in microseconds
// instead of paying a physical read. Page images that do not deflate
// are kept raw — whichever form is smaller wins.
//
// Trust model: tier-2 is a cache of bytes that were checksum-valid when
// admitted, but it is NOT trusted on the way out. Every image leaving
// tier-2 is re-verified against its page checksum (when verification is
// on) exactly like a physical read, so a bit flipped while a page sat
// compressed in memory is detected and the pool falls back to the
// device copy — corruption is never served. The integrity scrubber's
// model is unchanged: only resident tier-1 frames are authoritative;
// tier-2 entries are dropped whenever the device copy is repaired
// (Restore), truncated (ShrinkTo) or the pool is reset (Clear).

import (
	"sync"

	"natix/internal/compress"
	"natix/internal/pagedev"
)

// Outcomes of a tier-2 lookup.
const (
	t2Miss = iota
	t2Hit
	t2Corrupt
)

// rawCodec decodes entries the admission path stored uncompressed.
var rawCodec compress.Raw

// t2entry is one cached page image, linked into the LRU list.
type t2entry struct {
	page       pagedev.PageNo
	data       []byte // compressed (or raw) image
	raw        bool   // data is the uncompressed page
	prev, next *t2entry
}

// tier2 is the compressed victim cache. All methods are safe for
// concurrent use; the mutex is held only for map/list bookkeeping —
// compression and decompression run outside it.
type tier2 struct {
	codec   compress.Codec
	scratch sync.Pool // *[]byte compression scratch

	mu         sync.Mutex
	capBytes   int64
	usedBytes  int64
	entries    map[pagedev.PageNo]*t2entry
	head, tail *t2entry // LRU: head = most recently admitted/renewed
}

func newTier2(capBytes int64, codec compress.Codec) *tier2 {
	t := &tier2{
		codec:    codec,
		capBytes: capBytes,
		entries:  make(map[pagedev.PageNo]*t2entry),
	}
	t.scratch.New = func() any {
		b := make([]byte, 0, 4096)
		return &b
	}
	return t
}

// EnableCompressedCache attaches a tier-2 compressed victim cache of
// approximately capBytes to the pool, using codec for page images that
// compress (images that do not are kept raw). Must be called before
// traffic; capBytes < 1 or a nil codec leaves the cache disabled.
func (p *Pool) EnableCompressedCache(capBytes int64, codec compress.Codec) {
	if capBytes < 1 || codec == nil {
		return
	}
	p.t2 = newTier2(capBytes, codec)
}

// CompressedCacheEnabled reports whether a tier-2 cache is attached.
func (p *Pool) CompressedCacheEnabled() bool { return p.t2 != nil }

// admit stores a copy of the evicted page image src, compressed if that
// is smaller, evicting least-recently-admitted entries over budget. The
// caller owns src exclusively (the frame is already off the page table).
func (t *tier2) admit(p *Pool, pn pagedev.PageNo, src []byte) {
	sb := t.scratch.Get().(*[]byte)
	enc, err := t.codec.Compress(*sb, src)
	if enc != nil {
		*sb = enc[:0] // keep the (possibly grown) buffer for reuse
	}
	raw := err != nil || len(enc) >= len(src)
	if raw {
		enc = src
	}
	if int64(len(enc)) > t.capBytes {
		t.scratch.Put(sb)
		return
	}
	data := make([]byte, len(enc))
	copy(data, enc)
	t.scratch.Put(sb)

	e := &t2entry{page: pn, data: data, raw: raw}
	var evicted int64
	t.mu.Lock()
	if old := t.entries[pn]; old != nil {
		t.unlinkLocked(old)
	}
	t.entries[pn] = e
	t.pushFrontLocked(e)
	t.usedBytes += int64(len(data))
	for t.usedBytes > t.capBytes && t.tail != nil && t.tail != e {
		victim := t.tail
		t.unlinkLocked(victim)
		delete(t.entries, victim.page)
		evicted++
	}
	t.mu.Unlock()
	p.tier2Admits.Inc()
	p.tier2Evictions.Add(evicted)
}

// lookup removes the entry for pn (the frame being loaded becomes the
// authoritative copy) and decodes it into dst. It returns t2Miss when
// the page is not cached, t2Hit on success, and t2Corrupt when the
// stored bytes fail to decode — the caller falls back to the device.
// The page-checksum re-verification happens in the caller, which knows
// whether verification is enabled.
//
//natix:noalloc
func (t *tier2) lookup(pn pagedev.PageNo, dst []byte) int {
	t.mu.Lock()
	e := t.entries[pn]
	if e == nil {
		t.mu.Unlock()
		return t2Miss
	}
	t.unlinkLocked(e)
	delete(t.entries, pn)
	t.mu.Unlock()
	var err error
	if e.raw {
		err = rawCodec.Decompress(dst, e.data)
	} else {
		err = t.codec.Decompress(dst, e.data)
	}
	if err != nil {
		return t2Corrupt
	}
	return t2Hit
}

// contains reports whether pn has a tier-2 entry.
func (t *tier2) contains(pn pagedev.PageNo) bool {
	t.mu.Lock()
	_, ok := t.entries[pn]
	t.mu.Unlock()
	return ok
}

// drop discards the entry for pn, if any. Called when the device copy
// is rewritten behind the cache's back (Restore) or the page becomes
// freshly allocated (GetNew).
func (t *tier2) drop(pn pagedev.PageNo) {
	t.mu.Lock()
	if e := t.entries[pn]; e != nil {
		t.unlinkLocked(e)
		delete(t.entries, pn)
	}
	t.mu.Unlock()
}

// dropFrom discards every entry for pages >= n (device truncation).
func (t *tier2) dropFrom(n pagedev.PageNo) {
	t.mu.Lock()
	for pn, e := range t.entries {
		if pn >= n {
			t.unlinkLocked(e)
			delete(t.entries, pn)
		}
	}
	t.mu.Unlock()
}

// reset empties the cache (pool Clear: measurements start cold).
func (t *tier2) reset() {
	t.mu.Lock()
	t.entries = make(map[pagedev.PageNo]*t2entry)
	t.head, t.tail = nil, nil
	t.usedBytes = 0
	t.mu.Unlock()
}

// bytes returns the cache's current compressed payload size.
func (t *tier2) bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usedBytes
}

// pages returns the number of cached entries.
func (t *tier2) pages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.entries))
}

// unlinkLocked removes e from the LRU list and the byte accounting
// (but not the map). Caller holds t.mu.
func (t *tier2) unlinkLocked(e *t2entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
	t.usedBytes -= int64(len(e.data))
}

// pushFrontLocked links e at the head of the LRU list. Caller holds
// t.mu.
func (t *tier2) pushFrontLocked(e *t2entry) {
	e.next = t.head
	e.prev = nil
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}
