package pagedev

// Fault injection for crash-recovery testing. A CrashClock is a shared
// budget of write operations: every write against a faulted component
// (page device writes here, log writes via the wal test harness) ticks
// the clock, and when the budget is exhausted the "machine" crashes —
// every subsequent operation on every component sharing the clock fails
// with ErrInjected. A recovery test walks the budget from 1 upward, so
// an operation is interrupted at every write it ever issues.
//
// The tick that exhausts the budget can optionally be a torn write: the
// first half of the page reaches the device, the rest does not — the
// failure mode page checksums and the log's full-page-image records
// exist to survive.

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is returned by every operation after an injected crash.
var ErrInjected = errors.New("pagedev: injected crash")

// ErrTransient is a transient device error: the operation failed but
// retrying it may succeed (a flaky cable, a momentary EIO). The Fault
// wrapper injects it; the ioretry helper classifies it as retryable.
var ErrTransient = errors.New("pagedev: transient I/O error")

// ErrNoSpace reports a device that cannot grow — the page-device
// equivalent of ENOSPC. Unlike ErrTransient it is not retryable on the
// spot: the operation must fail (and roll back) until space returns.
var ErrNoSpace = errors.New("pagedev: no space left on device")

// CrashClock is a shared write budget. The zero value never crashes
// until SetBudget arms it.
type CrashClock struct {
	mu      sync.Mutex
	armed   bool
	budget  int64 // write ticks remaining before the crash
	crashed bool
	torn    bool // the crashing write is half-applied
}

// SetBudget arms the clock: the n-th write from now crashes. When torn
// is set, the crashing write half-applies before failing. n <= 0
// crashes on the next write.
func (c *CrashClock) SetBudget(n int64, torn bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = true
	c.budget = n
	c.crashed = false
	c.torn = torn
}

// Disarm stops injecting: subsequent operations pass through.
func (c *CrashClock) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = false
	c.crashed = false
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashClock) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Tick consumes one write tick. It reports how the write must behave:
// proceed (false, false), fail without touching the device
// (crash=true), or half-apply then fail (crash=true, torn=true).
func (c *CrashClock) Tick() (crash, torn bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return false, false
	}
	if c.crashed {
		return true, false
	}
	c.budget--
	if c.budget <= 0 {
		c.crashed = true
		return true, c.torn
	}
	return false, false
}

// Check reports whether the clock has crashed (for non-write operations,
// which fail after the crash but never consume budget).
func (c *CrashClock) Check() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed && c.crashed
}

// Fault wraps a Device with a CrashClock: writes tick the clock, and
// once it crashes every operation fails with ErrInjected. Reads and
// metadata operations do not consume budget but fail after the crash,
// matching a process that is simply gone.
//
// Beyond the crash clock, a Fault injects three further failure modes,
// all deterministic so test runs replay identically:
//
//   - transient errors: InjectReadErrors/InjectWriteErrors arm a
//     fail-N-then-succeed episode on one page, and SeedTransient arms a
//     seeded pseudo-random sprinkling of such episodes across all I/O;
//   - silent corruption: FlipBit flips one bit of a page on the inner
//     device, bypassing the clock — the damage page checksums and the
//     integrity scrubber exist to catch;
//   - exhaustion: FailGrow makes the next N Grow calls fail with
//     ErrNoSpace, the mid-operation ENOSPC the WAL must roll back.
type Fault struct {
	inner Device
	clock *CrashClock

	mu        sync.Mutex
	readErrs  map[PageNo]int // remaining transient failures per page
	writeErrs map[PageNo]int
	growErrs  int    // remaining Grow calls that fail with ErrNoSpace
	rng       uint64 // xorshift state; 0 = seeded injection off
	every     uint64 // ~1-in-every I/O starts an episode
	episodeN  int    // failures per seeded episode
}

// NewFault wraps dev with fault injection driven by clock.
func NewFault(dev Device, clock *CrashClock) *Fault {
	return &Fault{inner: dev, clock: clock}
}

// InjectReadErrors arms page p to fail its next n reads with
// ErrTransient, then succeed again.
func (f *Fault) InjectReadErrors(p PageNo, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.readErrs == nil {
		f.readErrs = make(map[PageNo]int)
	}
	f.readErrs[p] = n
}

// InjectWriteErrors arms page p to fail its next n writes with
// ErrTransient, then succeed again.
func (f *Fault) InjectWriteErrors(p PageNo, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeErrs == nil {
		f.writeErrs = make(map[PageNo]int)
	}
	f.writeErrs[p] = n
}

// SeedTransient arms deterministic pseudo-random transient errors:
// roughly one in every I/O operations begins an episode in which that
// page fails failN times (reads and writes alike) before succeeding.
// seed 0 or every 0 disarms. The same seed always selects the same
// operations, so a failing run replays exactly.
func (f *Fault) SeedTransient(seed uint64, every uint64, failN int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = seed
	f.every = every
	f.episodeN = failN
}

// FailGrow makes the next n calls to Grow fail with ErrNoSpace.
func (f *Fault) FailGrow(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.growErrs = n
}

// FlipBit flips one bit of page p on the inner device, bypassing the
// crash clock and the transient model: silent corruption, as a decaying
// platter or a buggy controller would produce it.
func (f *Fault) FlipBit(p PageNo, bit int) error {
	buf := make([]byte, f.inner.PageSize())
	if err := f.inner.Read(p, buf); err != nil {
		return err
	}
	buf[bit/8] ^= 1 << (bit % 8)
	return f.inner.Write(p, buf)
}

// transientFor consumes one transient-failure token for (p, write) and
// reports whether the operation must fail.
func (f *Fault) transientFor(p PageNo, write bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.readErrs
	if write {
		m = f.writeErrs
	}
	if n, ok := m[p]; ok && n > 0 {
		m[p] = n - 1
		return true
	}
	if f.rng != 0 && f.every != 0 {
		// xorshift64: cheap, deterministic, good enough to scatter
		// episodes across a run.
		f.rng ^= f.rng << 13
		f.rng ^= f.rng >> 7
		f.rng ^= f.rng << 17
		if f.rng%f.every == 0 {
			// Start an episode: this operation and the next episodeN-1
			// touches of the same page fail.
			if write {
				if f.writeErrs == nil {
					f.writeErrs = make(map[PageNo]int)
				}
				f.writeErrs[p] = f.episodeN - 1
			} else {
				if f.readErrs == nil {
					f.readErrs = make(map[PageNo]int)
				}
				f.readErrs[p] = f.episodeN - 1
			}
			return true
		}
	}
	return false
}

// PageSize implements Device.
func (f *Fault) PageSize() int { return f.inner.PageSize() }

// NumPages implements Device.
func (f *Fault) NumPages() PageNo { return f.inner.NumPages() }

// Read implements Device.
func (f *Fault) Read(p PageNo, buf []byte) error {
	if f.clock.Check() {
		return ErrInjected
	}
	if f.transientFor(p, false) {
		return fmt.Errorf("%w: read page %d", ErrTransient, p)
	}
	return f.inner.Read(p, buf)
}

// Write implements Device. It consumes one clock tick; the crashing
// tick either drops the write or, in torn mode, applies only the first
// half of the page.
func (f *Fault) Write(p PageNo, buf []byte) error {
	if f.transientFor(p, true) {
		return fmt.Errorf("%w: write page %d", ErrTransient, p)
	}
	crash, torn := f.clock.Tick()
	if !crash {
		return f.inner.Write(p, buf)
	}
	if torn {
		half := make([]byte, len(buf))
		if err := f.inner.Read(p, half); err == nil {
			copy(half[:len(buf)/2], buf[:len(buf)/2])
			_ = f.inner.Write(p, half)
		}
	}
	return ErrInjected
}

// Grow implements Device.
func (f *Fault) Grow(n PageNo) error {
	if f.clock.Check() {
		return ErrInjected
	}
	f.mu.Lock()
	if f.growErrs > 0 {
		f.growErrs--
		f.mu.Unlock()
		return fmt.Errorf("%w: grow to %d pages", ErrNoSpace, n)
	}
	f.mu.Unlock()
	return f.inner.Grow(n)
}

// Shrink implements Device.
func (f *Fault) Shrink(n PageNo) error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Shrink(n)
}

// Sync implements Device. Syncs fail after the crash but do not consume
// budget: the interesting crash points are the writes themselves.
func (f *Fault) Sync() error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Sync()
}

// Close implements Device. The underlying device stays open: the test
// harness reads the surviving bytes out of it after the "crash".
func (f *Fault) Close() error { return nil }
