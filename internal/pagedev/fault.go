package pagedev

// Fault injection for crash-recovery testing. A CrashClock is a shared
// budget of write operations: every write against a faulted component
// (page device writes here, log writes via the wal test harness) ticks
// the clock, and when the budget is exhausted the "machine" crashes —
// every subsequent operation on every component sharing the clock fails
// with ErrInjected. A recovery test walks the budget from 1 upward, so
// an operation is interrupted at every write it ever issues.
//
// The tick that exhausts the budget can optionally be a torn write: the
// first half of the page reaches the device, the rest does not — the
// failure mode page checksums and the log's full-page-image records
// exist to survive.

import (
	"errors"
	"sync"
)

// ErrInjected is returned by every operation after an injected crash.
var ErrInjected = errors.New("pagedev: injected crash")

// CrashClock is a shared write budget. The zero value never crashes
// until SetBudget arms it.
type CrashClock struct {
	mu      sync.Mutex
	armed   bool
	budget  int64 // write ticks remaining before the crash
	crashed bool
	torn    bool // the crashing write is half-applied
}

// SetBudget arms the clock: the n-th write from now crashes. When torn
// is set, the crashing write half-applies before failing. n <= 0
// crashes on the next write.
func (c *CrashClock) SetBudget(n int64, torn bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = true
	c.budget = n
	c.crashed = false
	c.torn = torn
}

// Disarm stops injecting: subsequent operations pass through.
func (c *CrashClock) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = false
	c.crashed = false
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashClock) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Tick consumes one write tick. It reports how the write must behave:
// proceed (false, false), fail without touching the device
// (crash=true), or half-apply then fail (crash=true, torn=true).
func (c *CrashClock) Tick() (crash, torn bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return false, false
	}
	if c.crashed {
		return true, false
	}
	c.budget--
	if c.budget <= 0 {
		c.crashed = true
		return true, c.torn
	}
	return false, false
}

// Check reports whether the clock has crashed (for non-write operations,
// which fail after the crash but never consume budget).
func (c *CrashClock) Check() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed && c.crashed
}

// Fault wraps a Device with a CrashClock: writes tick the clock, and
// once it crashes every operation fails with ErrInjected. Reads and
// metadata operations do not consume budget but fail after the crash,
// matching a process that is simply gone.
type Fault struct {
	inner Device
	clock *CrashClock
}

// NewFault wraps dev with fault injection driven by clock.
func NewFault(dev Device, clock *CrashClock) *Fault {
	return &Fault{inner: dev, clock: clock}
}

// PageSize implements Device.
func (f *Fault) PageSize() int { return f.inner.PageSize() }

// NumPages implements Device.
func (f *Fault) NumPages() PageNo { return f.inner.NumPages() }

// Read implements Device.
func (f *Fault) Read(p PageNo, buf []byte) error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Read(p, buf)
}

// Write implements Device. It consumes one clock tick; the crashing
// tick either drops the write or, in torn mode, applies only the first
// half of the page.
func (f *Fault) Write(p PageNo, buf []byte) error {
	crash, torn := f.clock.Tick()
	if !crash {
		return f.inner.Write(p, buf)
	}
	if torn {
		half := make([]byte, len(buf))
		if err := f.inner.Read(p, half); err == nil {
			copy(half[:len(buf)/2], buf[:len(buf)/2])
			_ = f.inner.Write(p, half)
		}
	}
	return ErrInjected
}

// Grow implements Device.
func (f *Fault) Grow(n PageNo) error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Grow(n)
}

// Shrink implements Device.
func (f *Fault) Shrink(n PageNo) error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Shrink(n)
}

// Sync implements Device. Syncs fail after the crash but do not consume
// budget: the interesting crash points are the writes themselves.
func (f *Fault) Sync() error {
	if f.clock.Check() {
		return ErrInjected
	}
	return f.inner.Sync()
}

// Close implements Device. The underlying device stays open: the test
// harness reads the surviving bytes out of it after the "crash".
func (f *Fault) Close() error { return nil }
