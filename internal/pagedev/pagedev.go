// Package pagedev provides page-granularity block devices for the NATIX
// storage manager.
//
// Three implementations are provided:
//
//   - Mem: an in-memory device, used for tests and as the backing store of
//     the simulated disk.
//   - File: a file-backed device using positional reads and writes.
//   - SimDisk: a wrapper that replays every page access through a
//     seek/rotation/transfer cost model of a late-1990s SCSI disk. The
//     paper's measurements (Pentium-II 333, IBM DCAS-34330W, no OS
//     buffering) are I/O bound; the simulated clock reproduces their shape
//     on modern hardware where a page cache would otherwise hide locality.
//
// A device stores fixed-size pages addressed by a PageNo. Page numbers are
// dense: Grow extends the device, and reads of never-written pages return
// zero bytes.
package pagedev

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageNo identifies a page within a device. On disk, page numbers are
// stored in 48 bits (see the 8-byte RID encoding in package records).
type PageNo uint64

// MaxPageNo is the largest addressable page (48-bit page numbers).
const MaxPageNo PageNo = 1<<48 - 1

// Common device errors.
var (
	ErrOutOfRange = errors.New("pagedev: page number out of range")
	ErrClosed     = errors.New("pagedev: device is closed")
	ErrBadSize    = errors.New("pagedev: buffer size does not match page size")
)

// MinPageSize and MaxPageSize bound the supported page sizes. The paper
// evaluates pages between 2K and 32K; 32K is also the NATIX maximum
// ("Pages can be as large as 32K").
const (
	MinPageSize = 512
	MaxPageSize = 32 * 1024
)

// ValidPageSize reports whether s is a supported page size: a power of two
// in [MinPageSize, MaxPageSize].
func ValidPageSize(s int) bool {
	return s >= MinPageSize && s <= MaxPageSize && s&(s-1) == 0
}

// Device is a fixed-page-size block device.
type Device interface {
	// PageSize returns the size of every page in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() PageNo
	// Read fills buf (which must be exactly PageSize bytes) with page p.
	Read(p PageNo, buf []byte) error
	// Write stores buf (exactly PageSize bytes) as page p. The page must
	// already be allocated via Grow.
	Write(p PageNo, buf []byte) error
	// Grow ensures the device holds at least n pages.
	Grow(n PageNo) error
	// Shrink truncates the device to at most n pages, discarding the
	// tail. Restart recovery and operation rollback use it to deallocate
	// pages an aborted operation grew the device by.
	Shrink(n PageNo) error
	// Sync flushes device buffers to stable storage where applicable.
	Sync() error
	// Close releases the device. Further operations fail with ErrClosed.
	Close() error
}

// Mem is an in-memory Device. It is safe for concurrent use.
type Mem struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	closed   bool
}

// NewMem returns an empty in-memory device with the given page size.
func NewMem(pageSize int) (*Mem, error) {
	if !ValidPageSize(pageSize) {
		return nil, fmt.Errorf("pagedev: invalid page size %d", pageSize)
	}
	return &Mem{pageSize: pageSize}, nil
}

// PageSize implements Device.
func (m *Mem) PageSize() int { return m.pageSize }

// NumPages implements Device.
func (m *Mem) NumPages() PageNo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return PageNo(len(m.pages))
}

// Read implements Device.
func (m *Mem) Read(p PageNo, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(buf) != m.pageSize {
		return ErrBadSize
	}
	if p >= PageNo(len(m.pages)) {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, len(m.pages))
	}
	if m.pages[p] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, m.pages[p])
	return nil
}

// Write implements Device.
func (m *Mem) Write(p PageNo, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(buf) != m.pageSize {
		return ErrBadSize
	}
	if p >= PageNo(len(m.pages)) {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, p, len(m.pages))
	}
	if m.pages[p] == nil {
		m.pages[p] = make([]byte, m.pageSize)
	}
	copy(m.pages[p], buf)
	return nil
}

// Grow implements Device.
func (m *Mem) Grow(n PageNo) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if n > MaxPageNo {
		return ErrOutOfRange
	}
	for PageNo(len(m.pages)) < n {
		m.pages = append(m.pages, nil) // lazily materialized on first write
	}
	return nil
}

// Shrink implements Device.
func (m *Mem) Shrink(n PageNo) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if PageNo(len(m.pages)) > n {
		m.pages = m.pages[:n]
	}
	return nil
}

// Sync implements Device. It is a no-op for the in-memory device.
func (m *Mem) Sync() error { return nil }

// Close implements Device.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// File is a Device backed by an operating-system file. Pages map linearly
// onto the file: page p occupies bytes [p*PageSize, (p+1)*PageSize).
type File struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages PageNo
	closed   bool
}

// OpenFile opens (or creates) the file at path as a page device. If the
// file is non-empty its length must be a multiple of pageSize.
func OpenFile(path string, pageSize int) (*File, error) {
	if !ValidPageSize(pageSize) {
		return nil, fmt.Errorf("pagedev: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagedev: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagedev: stat %s: %w", path, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pagedev: %s: size %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	return &File{f: f, pageSize: pageSize, numPages: PageNo(st.Size() / int64(pageSize))}, nil
}

// PageSize implements Device.
func (d *File) PageSize() int { return d.pageSize }

// NumPages implements Device.
func (d *File) NumPages() PageNo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// Read implements Device.
func (d *File) Read(p PageNo, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadSize
	}
	if p >= d.numPages {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, d.numPages)
	}
	_, err := d.f.ReadAt(buf, int64(p)*int64(d.pageSize))
	if err != nil {
		return fmt.Errorf("pagedev: read page %d: %w", p, err)
	}
	return nil
}

// Write implements Device.
func (d *File) Write(p PageNo, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadSize
	}
	if p >= d.numPages {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, p, d.numPages)
	}
	if _, err := d.f.WriteAt(buf, int64(p)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("pagedev: write page %d: %w", p, err)
	}
	return nil
}

// Grow implements Device.
func (d *File) Grow(n PageNo) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if n > MaxPageNo {
		return ErrOutOfRange
	}
	if n <= d.numPages {
		return nil
	}
	if err := d.f.Truncate(int64(n) * int64(d.pageSize)); err != nil {
		return fmt.Errorf("pagedev: grow to %d pages: %w", n, err)
	}
	d.numPages = n
	return nil
}

// Shrink implements Device.
func (d *File) Shrink(n PageNo) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if n >= d.numPages {
		return nil
	}
	if err := d.f.Truncate(int64(n) * int64(d.pageSize)); err != nil {
		return fmt.Errorf("pagedev: shrink to %d pages: %w", n, err)
	}
	d.numPages = n
	return nil
}

// Sync implements Device.
func (d *File) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close implements Device.
func (d *File) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
