package pagedev

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestValidPageSize(t *testing.T) {
	valid := []int{512, 1024, 2048, 4096, 8192, 16384, 32768}
	for _, s := range valid {
		if !ValidPageSize(s) {
			t.Errorf("ValidPageSize(%d) = false, want true", s)
		}
	}
	invalid := []int{0, -1, 256, 1000, 3000, 48 * 1024, 64 * 1024, 2047}
	for _, s := range invalid {
		if ValidPageSize(s) {
			t.Errorf("ValidPageSize(%d) = true, want false", s)
		}
	}
}

// deviceContract exercises the Device interface invariants shared by all
// implementations.
func deviceContract(t *testing.T, dev Device) {
	t.Helper()
	ps := dev.PageSize()
	if dev.NumPages() != 0 {
		t.Fatalf("new device has %d pages, want 0", dev.NumPages())
	}
	buf := make([]byte, ps)

	// Reads and writes beyond the end fail.
	if err := dev.Read(0, buf); err == nil {
		t.Fatal("Read(0) on empty device succeeded, want error")
	}
	if err := dev.Write(0, buf); err == nil {
		t.Fatal("Write(0) on empty device succeeded, want error")
	}

	// Wrong-size buffers fail.
	if err := dev.Grow(3); err != nil {
		t.Fatalf("Grow(3): %v", err)
	}
	if err := dev.Read(0, make([]byte, ps-1)); err == nil {
		t.Fatal("Read with short buffer succeeded, want error")
	}
	if err := dev.Write(0, make([]byte, ps+1)); err == nil {
		t.Fatal("Write with long buffer succeeded, want error")
	}

	// Fresh pages read as zeroes.
	for i := range buf {
		buf[i] = 0xff
	}
	if err := dev.Read(1, buf); err != nil {
		t.Fatalf("Read(1): %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %#x, want 0", i, b)
		}
	}

	// Round trip.
	want := make([]byte, ps)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := dev.Write(2, want); err != nil {
		t.Fatalf("Write(2): %v", err)
	}
	got := make([]byte, ps)
	if err := dev.Read(2, got); err != nil {
		t.Fatalf("Read(2): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Read(2) returned different bytes than written")
	}

	// Grow is monotone and idempotent.
	if err := dev.Grow(2); err != nil {
		t.Fatalf("Grow(2) (shrink attempt): %v", err)
	}
	if n := dev.NumPages(); n != 3 {
		t.Fatalf("NumPages after Grow(2) = %d, want 3 (no shrink)", n)
	}
	if err := dev.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := dev.Read(0, buf); err == nil {
		t.Fatal("Read after Close succeeded, want error")
	}
}

func TestMemContract(t *testing.T) {
	dev, err := NewMem(2048)
	if err != nil {
		t.Fatal(err)
	}
	deviceContract(t, dev)
}

func TestFileContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.natix")
	dev, err := OpenFile(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	deviceContract(t, dev)
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.natix")
	dev, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Grow(4); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 1024)
	if err := dev.Write(3, want); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	if dev2.NumPages() != 4 {
		t.Fatalf("reopened device has %d pages, want 4", dev2.NumPages())
	}
	got := make([]byte, 1024)
	if err := dev2.Read(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data did not survive reopen")
	}
}

func TestFileRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.natix")
	dev, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Grow(2); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	// Reopening with a page size that does not divide the file length fails.
	if _, err := OpenFile(path, 32768); err == nil {
		t.Fatal("OpenFile with mismatched page size succeeded, want error")
	}
}

func TestNewMemRejectsBadPageSize(t *testing.T) {
	if _, err := NewMem(1000); err == nil {
		t.Fatal("NewMem(1000) succeeded, want error")
	}
}

func TestSimDiskSequentialCheaperThanRandom(t *testing.T) {
	const ps = 4096
	mem, _ := NewMem(ps)
	sim := NewSimDisk(mem, DCAS34330W)
	if err := sim.Grow(1024); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)

	// Sequential scan of 512 pages.
	for p := PageNo(0); p < 512; p++ {
		if err := sim.Read(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	seq := sim.Stats().Elapsed
	sim.ResetStats()

	// The same number of reads, strided far apart.
	for i := 0; i < 512; i++ {
		p := PageNo((i * 977) % 1024)
		if err := sim.Read(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	rnd := sim.Stats().Elapsed

	if seq >= rnd {
		t.Fatalf("sequential scan (%v) not cheaper than random scan (%v)", seq, rnd)
	}
	if rnd < 5*seq {
		t.Fatalf("random/sequential ratio %v/%v too small for a seek-bound disk", rnd, seq)
	}
}

func TestSimDiskCountsReadsAndWrites(t *testing.T) {
	mem, _ := NewMem(2048)
	sim := NewSimDisk(mem, DCAS34330W)
	if err := sim.Grow(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	for i := 0; i < 5; i++ {
		if err := sim.Write(PageNo(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := sim.Read(PageNo(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	st := sim.Stats()
	if st.Writes != 5 || st.Reads != 3 {
		t.Fatalf("stats = %d writes, %d reads; want 5, 3", st.Writes, st.Reads)
	}
	if st.Elapsed <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	sim.ResetStats()
	if st = sim.Stats(); st.Reads != 0 || st.Writes != 0 || st.Elapsed != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}

func TestSimDiskPropagatesErrors(t *testing.T) {
	mem, _ := NewMem(2048)
	sim := NewSimDisk(mem, DCAS34330W)
	buf := make([]byte, 2048)
	if err := sim.Read(0, buf); err == nil {
		t.Fatal("Read past end succeeded, want error")
	}
	if got := sim.Stats().Reads; got != 0 {
		t.Fatalf("failed read was charged: %d reads", got)
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	m := DCAS34330W
	if err := quick.Check(func(a, b uint16) bool {
		da, db := int64(a), int64(b)
		if da > db {
			da, db = db, da
		}
		return m.seekTime(da, 1<<16) <= m.seekTime(db, 1<<16)
	}, nil); err != nil {
		t.Error(err)
	}
	if m.seekTime(0, 100) != 0 {
		t.Error("zero-distance seek should be free")
	}
	if m.seekTime(50, 100) < m.TrackToTrackSeek {
		t.Error("seek faster than track-to-track time")
	}
	if m.seekTime(100, 100) > m.MaxSeek {
		t.Error("seek slower than full stroke")
	}
}

func TestMemZeroFillAfterGrow(t *testing.T) {
	// Property: any page allocated by Grow but never written reads as zero.
	mem, _ := NewMem(512)
	if err := quick.Check(func(n uint8) bool {
		p := PageNo(n)
		if err := mem.Grow(p + 1); err != nil {
			return false
		}
		buf := bytes.Repeat([]byte{0xEE}, 512)
		if err := mem.Read(p, buf); err != nil {
			return false
		}
		for _, b := range buf {
			if b != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
