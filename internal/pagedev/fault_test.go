package pagedev

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultCrashAfterBudget(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = 0xAB
	}
	clock.SetBudget(2, false)
	if err := dev.Write(0, buf); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := dev.Write(1, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should crash, got %v", err)
	}
	// Everything fails after the crash.
	if err := dev.Write(2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := dev.Read(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync: %v", err)
	}
	// The crashing write never reached the device.
	got := make([]byte, 512)
	if err := mem.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("crashed write reached the device")
	}
}

func TestFaultTornWrite(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(1); err != nil {
		t.Fatal(err)
	}
	old := make([]byte, 512)
	for i := range old {
		old[i] = 0x11
	}
	if err := mem.Write(0, old); err != nil {
		t.Fatal(err)
	}
	clock.SetBudget(1, true)
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = 0x22
	}
	if err := dev.Write(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write should report crash, got %v", err)
	}
	got := make([]byte, 512)
	if err := mem.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:256], buf[:256]) {
		t.Fatal("torn write: first half should be new bytes")
	}
	if !bytes.Equal(got[256:], old[256:]) {
		t.Fatal("torn write: second half should be old bytes")
	}
}

func TestFaultTransientEpisodes(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)

	// fail-2-then-succeed on reads of page 1.
	dev.InjectReadErrors(1, 2)
	for i := 0; i < 2; i++ {
		if err := dev.Read(1, buf); !errors.Is(err, ErrTransient) {
			t.Fatalf("read %d: want ErrTransient, got %v", i, err)
		}
	}
	if err := dev.Read(1, buf); err != nil {
		t.Fatalf("read after episode: %v", err)
	}
	// Other pages were never affected.
	if err := dev.Read(0, buf); err != nil {
		t.Fatalf("read page 0: %v", err)
	}

	// fail-1-then-succeed on writes of page 2; must not tick the crash
	// clock while failing.
	clock.SetBudget(100, false)
	dev.InjectWriteErrors(2, 1)
	if err := dev.Write(2, buf); !errors.Is(err, ErrTransient) {
		t.Fatalf("write: want ErrTransient, got %v", err)
	}
	if err := dev.Write(2, buf); err != nil {
		t.Fatalf("write after episode: %v", err)
	}
	clock.Disarm()
}

func TestFaultSeededTransientDeterministic(t *testing.T) {
	run := func() []int {
		mem, _ := NewMem(512)
		var clock CrashClock
		dev := NewFault(mem, &clock)
		if err := dev.Grow(8); err != nil {
			t.Fatal(err)
		}
		dev.SeedTransient(42, 16, 2)
		buf := make([]byte, 512)
		var failed []int
		for i := 0; i < 400; i++ {
			p := PageNo(i % 8)
			var err error
			if i%2 == 0 {
				err = dev.Read(p, buf)
			} else {
				err = dev.Write(p, buf)
			}
			if errors.Is(err, ErrTransient) {
				failed = append(failed, i)
			} else if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded injection produced no failures in 400 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d failures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at failure %d: op %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFaultFlipBit(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	buf[10] = 0x0F
	if err := dev.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlipBit(0, 10*8+2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[10] != 0x0B {
		t.Fatalf("byte 10 = %#x after flipping bit 2, want 0x0b", got[10])
	}
}

func TestFaultFailGrow(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(2); err != nil {
		t.Fatal(err)
	}
	dev.FailGrow(2)
	for i := 0; i < 2; i++ {
		if err := dev.Grow(4); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("grow %d: want ErrNoSpace, got %v", i, err)
		}
	}
	if n := dev.NumPages(); n != 2 {
		t.Fatalf("NumPages = %d after failed grows, want 2", n)
	}
	if err := dev.Grow(4); err != nil {
		t.Fatalf("grow after space returns: %v", err)
	}
	if n := dev.NumPages(); n != 4 {
		t.Fatalf("NumPages = %d, want 4", n)
	}
}

func TestShrink(t *testing.T) {
	mem, _ := NewMem(512)
	if err := mem.Grow(8); err != nil {
		t.Fatal(err)
	}
	if err := mem.Shrink(3); err != nil {
		t.Fatal(err)
	}
	if n := mem.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d after shrink, want 3", n)
	}
	// Shrink past the end is a no-op.
	if err := mem.Shrink(10); err != nil {
		t.Fatal(err)
	}
	if n := mem.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d, want 3", n)
	}
}
