package pagedev

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultCrashAfterBudget(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = 0xAB
	}
	clock.SetBudget(2, false)
	if err := dev.Write(0, buf); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := dev.Write(1, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should crash, got %v", err)
	}
	// Everything fails after the crash.
	if err := dev.Write(2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := dev.Read(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync: %v", err)
	}
	// The crashing write never reached the device.
	got := make([]byte, 512)
	if err := mem.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("crashed write reached the device")
	}
}

func TestFaultTornWrite(t *testing.T) {
	mem, _ := NewMem(512)
	var clock CrashClock
	dev := NewFault(mem, &clock)
	if err := dev.Grow(1); err != nil {
		t.Fatal(err)
	}
	old := make([]byte, 512)
	for i := range old {
		old[i] = 0x11
	}
	if err := mem.Write(0, old); err != nil {
		t.Fatal(err)
	}
	clock.SetBudget(1, true)
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = 0x22
	}
	if err := dev.Write(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write should report crash, got %v", err)
	}
	got := make([]byte, 512)
	if err := mem.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:256], buf[:256]) {
		t.Fatal("torn write: first half should be new bytes")
	}
	if !bytes.Equal(got[256:], old[256:]) {
		t.Fatal("torn write: second half should be old bytes")
	}
}

func TestShrink(t *testing.T) {
	mem, _ := NewMem(512)
	if err := mem.Grow(8); err != nil {
		t.Fatal(err)
	}
	if err := mem.Shrink(3); err != nil {
		t.Fatal(err)
	}
	if n := mem.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d after shrink, want 3", n)
	}
	// Shrink past the end is a no-op.
	if err := mem.Shrink(10); err != nil {
		t.Fatal(err)
	}
	if n := mem.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d, want 3", n)
	}
}
