package pagedev

// Vectored page I/O: a run of adjacent pages moved in one device
// operation. The buffer pool's coalesced write-back sorts dirty frames
// by page number and pushes each adjacent run through WriteRange (one
// syscall instead of one per page on a File device, one sequential
// transfer instead of per-page seeks on the simulated disk), and the
// integrity scrubber's sweep pulls its verification batches through
// ReadRange the same way.

import "fmt"

// RangeWriter is implemented by devices that can store a run of
// adjacent pages in one operation.
type RangeWriter interface {
	// WriteRange stores buf (a multiple of PageSize bytes) as pages
	// p, p+1, ... All pages must already be allocated via Grow.
	WriteRange(p PageNo, buf []byte) error
}

// RangeReader is implemented by devices that can fetch a run of
// adjacent pages in one operation.
type RangeReader interface {
	// ReadRange fills buf (a multiple of PageSize bytes) with pages
	// p, p+1, ...
	ReadRange(p PageNo, buf []byte) error
}

// WriteRange stores buf as the run of pages starting at p, using the
// device's vectored path when it has one and falling back to per-page
// writes otherwise. len(buf) must be a non-zero multiple of the page
// size.
func WriteRange(dev Device, p PageNo, buf []byte) error {
	ps := dev.PageSize()
	if len(buf) == 0 || len(buf)%ps != 0 {
		return ErrBadSize
	}
	if rw, ok := dev.(RangeWriter); ok {
		return rw.WriteRange(p, buf)
	}
	for off := 0; off < len(buf); off += ps {
		if err := dev.Write(p, buf[off:off+ps]); err != nil {
			return err
		}
		p++
	}
	return nil
}

// ReadRange fills buf with the run of pages starting at p, using the
// device's vectored path when it has one and falling back to per-page
// reads otherwise. len(buf) must be a non-zero multiple of the page
// size.
func ReadRange(dev Device, p PageNo, buf []byte) error {
	ps := dev.PageSize()
	if len(buf) == 0 || len(buf)%ps != 0 {
		return ErrBadSize
	}
	if rr, ok := dev.(RangeReader); ok {
		return rr.ReadRange(p, buf)
	}
	for off := 0; off < len(buf); off += ps {
		if err := dev.Read(p, buf[off:off+ps]); err != nil {
			return err
		}
		p++
	}
	return nil
}

// WriteRange implements RangeWriter: the whole run is copied under one
// lock acquisition.
func (m *Mem) WriteRange(p PageNo, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(buf) == 0 || len(buf)%m.pageSize != 0 {
		return ErrBadSize
	}
	n := PageNo(len(buf) / m.pageSize)
	if p+n > PageNo(len(m.pages)) {
		return fmt.Errorf("%w: write pages [%d,%d) of %d", ErrOutOfRange, p, p+n, len(m.pages))
	}
	for i := PageNo(0); i < n; i++ {
		if m.pages[p+i] == nil {
			m.pages[p+i] = make([]byte, m.pageSize)
		}
		copy(m.pages[p+i], buf[int(i)*m.pageSize:])
	}
	return nil
}

// ReadRange implements RangeReader: the whole run is copied under one
// lock acquisition.
func (m *Mem) ReadRange(p PageNo, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(buf) == 0 || len(buf)%m.pageSize != 0 {
		return ErrBadSize
	}
	n := PageNo(len(buf) / m.pageSize)
	if p+n > PageNo(len(m.pages)) {
		return fmt.Errorf("%w: read pages [%d,%d) of %d", ErrOutOfRange, p, p+n, len(m.pages))
	}
	for i := PageNo(0); i < n; i++ {
		dst := buf[int(i)*m.pageSize : int(i+1)*m.pageSize]
		if m.pages[p+i] == nil {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		copy(dst, m.pages[p+i])
	}
	return nil
}

// WriteRange implements RangeWriter: the run is one positional write,
// the syscall saving that motivates coalesced write-back.
func (d *File) WriteRange(p PageNo, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) == 0 || len(buf)%d.pageSize != 0 {
		return ErrBadSize
	}
	n := PageNo(len(buf) / int(d.pageSize))
	if p+n > d.numPages {
		return fmt.Errorf("%w: write pages [%d,%d) of %d", ErrOutOfRange, p, p+n, d.numPages)
	}
	if _, err := d.f.WriteAt(buf, int64(p)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("pagedev: write pages [%d,%d): %w", p, p+n, err)
	}
	return nil
}

// ReadRange implements RangeReader: the run is one positional read.
func (d *File) ReadRange(p PageNo, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) == 0 || len(buf)%d.pageSize != 0 {
		return ErrBadSize
	}
	n := PageNo(len(buf) / int(d.pageSize))
	if p+n > d.numPages {
		return fmt.Errorf("%w: read pages [%d,%d) of %d", ErrOutOfRange, p, p+n, d.numPages)
	}
	if _, err := d.f.ReadAt(buf, int64(p)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("pagedev: read pages [%d,%d): %w", p, p+n, err)
	}
	return nil
}

// WriteRange implements RangeWriter. The inner device moves the run in
// one operation; the cost model charges the first page a seek and every
// following page a sequential continuation, which is exactly what the
// per-page charge sequence produces.
func (s *SimDisk) WriteRange(p PageNo, buf []byte) error {
	if err := WriteRange(s.inner, p, buf); err != nil {
		return err
	}
	n := PageNo(len(buf) / s.inner.PageSize())
	for i := PageNo(0); i < n; i++ {
		s.charge(p+i, true)
	}
	return nil
}

// ReadRange implements RangeReader, charging like WriteRange.
func (s *SimDisk) ReadRange(p PageNo, buf []byte) error {
	if err := ReadRange(s.inner, p, buf); err != nil {
		return err
	}
	n := PageNo(len(buf) / s.inner.PageSize())
	for i := PageNo(0); i < n; i++ {
		s.charge(p+i, false)
	}
	return nil
}

// WriteRange implements RangeWriter by issuing per-page writes through
// the fault layer: every page of the run must tick the crash clock and
// consult the transient model individually, so a vectored write crashes
// (or tears) at exactly the same granularity a page-at-a-time flush
// would.
func (f *Fault) WriteRange(p PageNo, buf []byte) error {
	ps := f.inner.PageSize()
	if len(buf) == 0 || len(buf)%ps != 0 {
		return ErrBadSize
	}
	for off := 0; off < len(buf); off += ps {
		if err := f.Write(p, buf[off:off+ps]); err != nil {
			return err
		}
		p++
	}
	return nil
}

// ReadRange implements RangeReader by issuing per-page reads through
// the fault layer, preserving per-page transient-error injection.
func (f *Fault) ReadRange(p PageNo, buf []byte) error {
	ps := f.inner.PageSize()
	if len(buf) == 0 || len(buf)%ps != 0 {
		return ErrBadSize
	}
	for off := 0; off < len(buf); off += ps {
		if err := f.Read(p, buf[off:off+ps]); err != nil {
			return err
		}
		p++
	}
	return nil
}
