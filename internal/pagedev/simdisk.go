package pagedev

import (
	"math"
	"sync"
	"time"
)

// DiskModel parameterizes the simulated disk cost model. The zero value is
// not useful; start from DCAS34330W (the drive used in the paper) or
// NewDiskModel.
type DiskModel struct {
	// TrackToTrackSeek is the time to move the head to an adjacent track.
	TrackToTrackSeek time.Duration
	// AvgSeek is the average (one-third stroke) seek time.
	AvgSeek time.Duration
	// MaxSeek is the full-stroke seek time.
	MaxSeek time.Duration
	// RPM is the spindle speed; rotational latency on a random access
	// averages half a revolution.
	RPM int
	// TransferRate is the sustained media transfer rate in bytes/second.
	TransferRate int64
	// BytesPerCylinder approximates how many bytes pass under the head
	// per cylinder; accesses within the same cylinder need no seek.
	BytesPerCylinder int64
}

// DCAS34330W models the IBM DCAS-34330W Ultrastar drive used for the
// paper's measurements: a 4.3 GB, 5400 rpm SCSI disk of the late 1990s.
// Catalogue values: 8.5 ms average seek, 1.5 ms track-to-track, 18 ms full
// stroke, roughly 12 MB/s sustained media rate.
var DCAS34330W = DiskModel{
	TrackToTrackSeek: 1500 * time.Microsecond,
	AvgSeek:          8500 * time.Microsecond,
	MaxSeek:          18 * time.Millisecond,
	RPM:              5400,
	TransferRate:     12 << 20,
	BytesPerCylinder: 256 << 10,
}

// rotation returns the duration of one full spindle revolution.
func (m DiskModel) rotation() time.Duration {
	if m.RPM <= 0 {
		return 0
	}
	return time.Duration(int64(time.Minute) / int64(m.RPM))
}

// seekTime models a head move across dist cylinders out of total. A
// square-root profile interpolates between track-to-track and full-stroke
// times, the standard first-order seek model.
func (m DiskModel) seekTime(dist, total int64) time.Duration {
	if dist <= 0 {
		return 0
	}
	if total < 1 {
		total = 1
	}
	frac := math.Sqrt(float64(dist) / float64(total))
	if frac > 1 {
		frac = 1
	}
	span := float64(m.MaxSeek - m.TrackToTrackSeek)
	return m.TrackToTrackSeek + time.Duration(frac*span)
}

// transferTime returns the media transfer time for n bytes.
func (m DiskModel) transferTime(n int) time.Duration {
	if m.TransferRate <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / m.TransferRate)
}

// SimStats accumulates the activity observed by a SimDisk.
type SimStats struct {
	Reads       int64         // page reads issued
	Writes      int64         // page writes issued
	SeqAccesses int64         // accesses that continued the previous transfer
	Elapsed     time.Duration // total simulated time
}

// SimDisk wraps an inner Device and charges every access against a
// DiskModel, accumulating simulated elapsed time. A sequential access
// (the page immediately following the previous access) costs transfer time
// only; an access within the current cylinder costs rotational latency; any
// other access additionally pays a distance-dependent seek.
type SimDisk struct {
	inner Device
	model DiskModel

	mu      sync.Mutex
	nextSeq PageNo // page that would continue the current transfer
	haveSeq bool
	stats   SimStats
}

// NewSimDisk wraps inner with the given cost model.
func NewSimDisk(inner Device, model DiskModel) *SimDisk {
	return &SimDisk{inner: inner, model: model}
}

// Stats returns a snapshot of the accumulated simulation statistics.
func (s *SimDisk) Stats() SimStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the accumulated statistics and forgets head position.
func (s *SimDisk) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = SimStats{}
	s.haveSeq = false
}

// charge accounts for one access to page p.
func (s *SimDisk) charge(p PageNo, write bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := int64(s.inner.PageSize())
	var cost time.Duration
	switch {
	case s.haveSeq && p == s.nextSeq:
		// Sequential continuation: media transfer only.
		cost = s.model.transferTime(int(ps))
		s.stats.SeqAccesses++
	default:
		pagesPerCyl := s.model.BytesPerCylinder / ps
		if pagesPerCyl < 1 {
			pagesPerCyl = 1
		}
		curCyl := int64(s.nextSeq) / pagesPerCyl
		newCyl := int64(p) / pagesPerCyl
		dist := newCyl - curCyl
		if dist < 0 {
			dist = -dist
		}
		totalCyl := int64(s.inner.NumPages())/pagesPerCyl + 1
		if s.haveSeq && dist > 0 {
			cost += s.model.seekTime(dist, totalCyl)
		} else if !s.haveSeq {
			cost += s.model.AvgSeek
		}
		cost += s.model.rotation() / 2 // average rotational latency
		cost += s.model.transferTime(int(ps))
	}
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	s.stats.Elapsed += cost
	s.nextSeq = p + 1
	s.haveSeq = true
}

// PageSize implements Device.
func (s *SimDisk) PageSize() int { return s.inner.PageSize() }

// NumPages implements Device.
func (s *SimDisk) NumPages() PageNo { return s.inner.NumPages() }

// Read implements Device, charging simulated time.
func (s *SimDisk) Read(p PageNo, buf []byte) error {
	if err := s.inner.Read(p, buf); err != nil {
		return err
	}
	s.charge(p, false)
	return nil
}

// Write implements Device, charging simulated time.
func (s *SimDisk) Write(p PageNo, buf []byte) error {
	if err := s.inner.Write(p, buf); err != nil {
		return err
	}
	s.charge(p, true)
	return nil
}

// Grow implements Device. Growth itself is free; the cost is charged when
// the new pages are accessed.
func (s *SimDisk) Grow(n PageNo) error { return s.inner.Grow(n) }

// Shrink implements Device. Like Grow it is free: truncation is a
// metadata operation.
func (s *SimDisk) Shrink(n PageNo) error { return s.inner.Shrink(n) }

// Sync implements Device.
func (s *SimDisk) Sync() error { return s.inner.Sync() }

// Close implements Device.
func (s *SimDisk) Close() error { return s.inner.Close() }
