package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// textPage builds a page-sized buffer of repetitive XML-ish text, the
// shape the victim cache sees for document content pages.
func textPage(n int) []byte {
	var b strings.Builder
	for b.Len() < n {
		b.WriteString("<LINE>But soft, what light through yonder window breaks</LINE>")
	}
	return []byte(b.String()[:n])
}

func TestFlateRoundTrip(t *testing.T) {
	f := NewFlate(DefaultLevel)
	src := textPage(8192)
	enc, err := f.Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if len(enc) >= len(src) {
		t.Fatalf("text page did not compress: %d -> %d", len(src), len(enc))
	}
	dst := make([]byte, len(src))
	if err := f.Decompress(dst, enc); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("round trip mismatch")
	}
}

func TestFlateRejectsTruncatedAndTrailing(t *testing.T) {
	f := NewFlate(DefaultLevel)
	src := textPage(4096)
	enc, err := f.Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	dst := make([]byte, len(src))
	if err := f.Decompress(dst, enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if err := f.Decompress(dst[:len(dst)-1], enc); err == nil {
		t.Fatal("stream with trailing data decoded without error")
	}
}

func TestFlateScratchReuse(t *testing.T) {
	f := NewFlate(DefaultLevel)
	src := textPage(4096)
	// The returned encoding must reuse the caller's scratch when it is
	// large enough, so the admission path can recycle one buffer.
	scratch := make([]byte, 0, 8192)
	enc, err := f.Compress(scratch, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if cap(enc) > 0 && len(enc) <= cap(scratch) && &enc[:1][0] != &scratch[:1][0] {
		t.Error("compress did not reuse caller scratch")
	}
}

func TestRawCodec(t *testing.T) {
	var r Raw
	src := []byte{1, 2, 3, 4}
	enc, err := r.Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if !bytes.Equal(enc, src) {
		t.Fatal("raw compress changed bytes")
	}
	dst := make([]byte, len(src))
	if err := r.Decompress(dst, enc); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("raw round trip mismatch")
	}
	if err := r.Decompress(dst, enc[:2]); err == nil {
		t.Fatal("raw length mismatch not detected")
	}
}

func TestIncompressiblePageGrows(t *testing.T) {
	// Random bytes inflate under deflate framing; the victim cache
	// relies on comparing lengths and keeping the raw form.
	f := NewFlate(DefaultLevel)
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 8192)
	rng.Read(src)
	enc, err := f.Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if len(enc) < len(src) {
		t.Skipf("random page unexpectedly compressed: %d -> %d", len(src), len(enc))
	}
}

func TestFlateConcurrent(t *testing.T) {
	f := NewFlate(DefaultLevel)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			src := textPage(4096)
			dst := make([]byte, len(src))
			var scratch []byte
			for i := 0; i < 50; i++ {
				// Perturb the page so encodings differ across iterations.
				src[rng.Intn(len(src))] = byte(rng.Intn(256))
				enc, err := f.Compress(scratch, src)
				if err != nil {
					t.Errorf("compress: %v", err)
					return
				}
				scratch = enc[:0]
				if err := f.Decompress(dst, enc); err != nil {
					t.Errorf("decompress: %v", err)
					return
				}
				if !bytes.Equal(dst, src) {
					t.Error("round trip mismatch")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestFlateDecompressSteadyStateAllocs(t *testing.T) {
	f := NewFlate(DefaultLevel)
	src := textPage(8192)
	enc, err := f.Compress(nil, src)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	dst := make([]byte, len(src))
	// Warm the pools.
	for i := 0; i < 4; i++ {
		if err := f.Decompress(dst, enc); err != nil {
			t.Fatalf("decompress: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.Decompress(dst, enc); err != nil {
			t.Fatalf("decompress: %v", err)
		}
	})
	if allocs > 0 {
		t.Errorf("Decompress allocated %.1f times per run, want 0", allocs)
	}
}
