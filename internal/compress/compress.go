// Package compress provides the page codecs behind the buffer pool's
// compressed victim cache (tier-2). The paper stores text-heavy XML
// whose page bodies deflate extremely well; keeping evicted pages in
// compressed form lets a working set several times the frame budget
// stay in memory, turning ~10 ms simulated disk reads into ~µs
// decompressions.
//
// Only the standard library is used: Flate wraps compress/flate with
// pooled encoder and decoder state so the steady-state paths allocate
// nothing, and Raw is the identity codec the cache falls back to for
// pages that do not compress (a page of random blob bytes can inflate
// under deflate framing; the cache keeps whichever form is smaller).
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"sync"
)

// ErrBadData reports compressed bytes that do not decode to exactly the
// expected length: truncated, trailing garbage, or a length mismatch.
var ErrBadData = errors.New("compress: malformed compressed data")

// Codec encodes and decodes fixed-size page images.
type Codec interface {
	// Name identifies the codec (for stats and debugging).
	Name() string
	// Compress appends the encoded form of src to dst[:0] and returns
	// the resulting slice. The returned slice may alias dst's backing
	// array or a freshly grown one, like append.
	Compress(dst, src []byte) ([]byte, error)
	// Decompress decodes enc into dst, which must be exactly the
	// original length. Every byte of dst is overwritten on success.
	Decompress(dst, enc []byte) error
}

// Raw is the identity codec: Compress copies, Decompress copies back.
// The victim cache stores a page raw when deflate fails to shrink it.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Compress implements Codec.
func (Raw) Compress(dst, src []byte) ([]byte, error) {
	return append(dst[:0], src...), nil
}

// Decompress implements Codec.
//
//natix:noalloc
func (Raw) Decompress(dst, enc []byte) error {
	if len(enc) != len(dst) {
		return ErrBadData
	}
	copy(dst, enc)
	return nil
}

// DefaultLevel is the deflate level used by the engine: BestSpeed keeps
// the eviction path cheap, and page-sized XML text still shrinks by
// 3-5x at this level.
const DefaultLevel = flate.BestSpeed

// Flate is a deflate Codec with pooled encoder and decoder state. It is
// safe for concurrent use; the zero value is not usable, construct with
// NewFlate.
type Flate struct {
	enc sync.Pool // *flateEnc
	dec sync.Pool // *flateDec
}

// flateEnc is one pooled encoder: a flate.Writer permanently bound to
// its slice sink.
type flateEnc struct {
	w    *flate.Writer
	sink sliceSink
}

// sliceSink adapts an append-into-slice destination to io.Writer.
type sliceSink struct{ b []byte }

func (s *sliceSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// flateDec is one pooled decoder: an inflater resettable onto new input
// via flate.Resetter, plus the one-byte scratch used to verify the
// stream ends where the page does.
type flateDec struct {
	br  bytes.Reader
	r   io.ReadCloser
	one [1]byte
}

// NewFlate returns a deflate codec at the given compression level
// (flate.BestSpeed .. flate.BestCompression).
func NewFlate(level int) *Flate {
	f := &Flate{}
	f.enc.New = func() any {
		e := &flateEnc{}
		// The writer is rebound to the sink by Reset on every use; the
		// constructor error only fires for invalid levels.
		w, err := flate.NewWriter(&e.sink, level)
		if err != nil {
			w, _ = flate.NewWriter(&e.sink, DefaultLevel)
		}
		e.w = w
		return e
	}
	f.dec.New = func() any {
		d := &flateDec{}
		d.r = flate.NewReader(&d.br)
		return d
	}
	return f
}

// Name implements Codec.
func (f *Flate) Name() string { return "flate" }

// Compress implements Codec.
func (f *Flate) Compress(dst, src []byte) ([]byte, error) {
	e := f.enc.Get().(*flateEnc)
	e.sink.b = dst[:0]
	e.w.Reset(&e.sink)
	if _, err := e.w.Write(src); err != nil {
		f.enc.Put(e)
		return nil, err
	}
	if err := e.w.Close(); err != nil {
		f.enc.Put(e)
		return nil, err
	}
	out := e.sink.b
	e.sink.b = nil // do not retain the caller's buffer in the pool
	f.enc.Put(e)
	return out, nil
}

// Decompress implements Codec. The steady state allocates nothing: the
// inflater, its window and the input reader all come from the pool.
//
//natix:noalloc
func (f *Flate) Decompress(dst, enc []byte) error {
	d := f.dec.Get().(*flateDec)
	d.br.Reset(enc)
	if err := d.r.(flate.Resetter).Reset(&d.br, nil); err != nil {
		f.dec.Put(d)
		return err
	}
	if _, err := io.ReadFull(d.r, dst); err != nil {
		f.dec.Put(d)
		return ErrBadData
	}
	// The stream must end exactly at the page boundary; trailing data
	// means the encoded bytes do not belong to this page image.
	if n, err := d.r.Read(d.one[:]); n != 0 || err != io.EOF {
		f.dec.Put(d)
		return ErrBadData
	}
	f.dec.Put(d)
	return nil
}
