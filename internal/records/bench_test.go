package records

import (
	"bytes"
	"testing"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/segment"
)

func benchManager(b *testing.B) *Manager {
	b.Helper()
	dev, err := pagedev.NewMem(8192)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := buffer.New(dev, 512)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		b.Fatal(err)
	}
	return New(seg)
}

func BenchmarkInsertRead(b *testing.B) {
	m := benchManager(b)
	data := bytes.Repeat([]byte{9}, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid, err := m.Insert(data, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Read(rid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateInPlace(b *testing.B) {
	m := benchManager(b)
	rid, err := m.Insert(bytes.Repeat([]byte{1}, 256), 0)
	if err != nil {
		b.Fatal(err)
	}
	a := bytes.Repeat([]byte{2}, 256)
	c := bytes.Repeat([]byte{3}, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := a
		if i%2 == 1 {
			body = c
		}
		if err := m.Update(rid, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadForwarded(b *testing.B) {
	m := benchManager(b)
	// Build a forwarded record: fill its page, then grow it.
	rid, err := m.Insert(bytes.Repeat([]byte{1}, 4000), 0)
	if err != nil {
		b.Fatal(err)
	}
	for {
		r, err := m.Insert(bytes.Repeat([]byte{2}, 1024), rid.Page)
		if err != nil {
			b.Fatal(err)
		}
		if r.Page != rid.Page {
			m.Delete(r)
			break
		}
	}
	if err := m.Update(rid, bytes.Repeat([]byte{3}, 7000)); err != nil {
		b.Fatal(err)
	}
	if p, _ := m.PageOf(rid); p == rid.Page {
		b.Skip("record did not move")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(rid); err != nil {
			b.Fatal(err)
		}
	}
}
