package records

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/segment"
)

func newManager(t *testing.T, pageSize int) *Manager {
	t.Helper()
	dev, err := pagedev.NewMem(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 128)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return New(seg)
}

func TestRIDEncodeDecode(t *testing.T) {
	if err := quick.Check(func(page uint32, hi uint16, slot uint16) bool {
		r := RID{Page: pagedev.PageNo(uint64(page) | uint64(hi)<<32), Slot: slot}
		var b [RIDSize]byte
		r.Put(b[:])
		return DecodeRID(b[:]) == r
	}, nil); err != nil {
		t.Error(err)
	}
	if !NilRID.IsNil() {
		t.Error("NilRID.IsNil() = false")
	}
	if (RID{Page: 1}).IsNil() {
		t.Error("non-nil RID reported nil")
	}
}

func TestInsertReadDelete(t *testing.T) {
	m := newManager(t, 1024)
	want := []byte("hello, natix record!")
	rid, err := m.Insert(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read = %q, want %q", got, want)
	}
	n, err := m.Size(rid)
	if err != nil || n != len(want) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := m.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(rid); err == nil {
		t.Fatal("Read after Delete succeeded")
	}
}

func TestSizeLimits(t *testing.T) {
	m := newManager(t, 1024)
	if _, err := m.Insert([]byte("tiny"), 0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("undersized insert: %v, want ErrTooSmall", err)
	}
	if _, err := m.Insert(make([]byte, m.MaxRecordSize()+1), 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized insert: %v, want ErrTooLarge", err)
	}
	// Exactly max fits.
	rid, err := m.Insert(make([]byte, m.MaxRecordSize()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(rid); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 100), 0)
	want := bytes.Repeat([]byte{2}, 120)
	if err := m.Update(rid, want); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(rid)
	if !bytes.Equal(got, want) {
		t.Fatal("update lost data")
	}
	// The record did not move.
	p, err := m.PageOf(rid)
	if err != nil || p != rid.Page {
		t.Fatalf("PageOf = %d, %v; want %d", p, err, rid.Page)
	}
}

func TestUpdateMovesWithForwarding(t *testing.T) {
	m := newManager(t, 1024)
	// Fill a page so the record has no room to grow in place.
	rid, err := m.Insert(bytes.Repeat([]byte{1}, 300), 0)
	if err != nil {
		t.Fatal(err)
	}
	var fillers []RID
	for {
		r, err := m.Insert(bytes.Repeat([]byte{9}, 100), rid.Page)
		if err != nil {
			t.Fatal(err)
		}
		if r.Page != rid.Page {
			// Page is full enough; drop the stray record.
			if err := m.Delete(r); err != nil {
				t.Fatal(err)
			}
			break
		}
		fillers = append(fillers, r)
	}
	// Grow the record beyond the page's remaining space.
	want := bytes.Repeat([]byte{3}, 600)
	if err := m.Update(rid, want); err != nil {
		t.Fatal(err)
	}
	// The RID is still valid and returns the new body.
	got, err := m.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("moved record corrupted")
	}
	// It physically lives elsewhere now.
	p, err := m.PageOf(rid)
	if err != nil {
		t.Fatal(err)
	}
	if p == rid.Page {
		t.Fatal("record did not move")
	}
	// Fillers are unharmed.
	for _, r := range fillers {
		got, err := m.Read(r)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{9}, 100)) {
			t.Fatalf("filler %s corrupted: %v", r, err)
		}
	}
	// A second move keeps the chain at one hop: update again to a size
	// that cannot return to the (still full) home page.
	want2 := bytes.Repeat([]byte{4}, 700)
	if err := m.Update(rid, want2); err != nil {
		t.Fatal(err)
	}
	got, err = m.Read(rid)
	if err != nil || !bytes.Equal(got, want2) {
		t.Fatalf("twice-moved record corrupted: %v", err)
	}
	// Shrinking updates happen wherever the body lives now.
	want3 := bytes.Repeat([]byte{5}, 50)
	if err := m.Update(rid, want3); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Read(rid)
	if !bytes.Equal(got, want3) {
		t.Fatal("shrunk record corrupted")
	}
}

func TestDeleteForwardedRecordFreesBoth(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 900), 0)
	// Force a move by growing close to capacity on a now-fuller page.
	if _, err := m.Insert(bytes.Repeat([]byte{2}, 80), rid.Page); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(rid, bytes.Repeat([]byte{3}, 950)); err != nil {
		t.Fatal(err)
	}
	p, _ := m.PageOf(rid)
	if p == rid.Page {
		t.Skip("record unexpectedly fit in place; layout changed")
	}
	if err := m.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(rid); err == nil {
		t.Fatal("Read after Delete of forwarded record succeeded")
	}
}

func TestPatch(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert([]byte("0123456789"), 0)
	if err := m.Patch(rid, 3, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(rid)
	if string(got) != "012XYZ6789" {
		t.Fatalf("after patch: %q", got)
	}
	if err := m.Patch(rid, 8, []byte("LONG")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("out-of-range patch: %v", err)
	}
	if err := m.Patch(rid, -1, []byte("a")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("negative-offset patch: %v", err)
	}
}

func TestProximityHint(t *testing.T) {
	m := newManager(t, 2048)
	a, err := m.Insert(bytes.Repeat([]byte{1}, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Insert(bytes.Repeat([]byte{2}, 100), a.Page)
	if err != nil {
		t.Fatal(err)
	}
	if b.Page != a.Page {
		t.Fatalf("hinted insert went to page %d, want %d", b.Page, a.Page)
	}
}

func TestManyRecordsAcrossPages(t *testing.T) {
	m := newManager(t, 1024)
	type rec struct {
		rid  RID
		data []byte
	}
	rng := rand.New(rand.NewSource(7))
	var recs []rec
	for i := 0; i < 200; i++ {
		n := 8 + rng.Intn(400)
		data := make([]byte, n)
		rng.Read(data)
		rid, err := m.Insert(data, 0)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		recs = append(recs, rec{rid, append([]byte(nil), data...)})
	}
	// Random updates and deletes.
	for i := 0; i < 300; i++ {
		j := rng.Intn(len(recs))
		switch rng.Intn(3) {
		case 0:
			n := 8 + rng.Intn(600)
			data := make([]byte, n)
			rng.Read(data)
			if err := m.Update(recs[j].rid, data); err != nil {
				t.Fatalf("update %s: %v", recs[j].rid, err)
			}
			recs[j].data = append([]byte(nil), data...)
		case 1:
			if err := m.Delete(recs[j].rid); err != nil {
				t.Fatalf("delete %s: %v", recs[j].rid, err)
			}
			recs[j] = recs[len(recs)-1]
			recs = recs[:len(recs)-1]
			if len(recs) == 0 {
				t.Fatal("deleted everything early")
			}
		default:
			got, err := m.Read(recs[j].rid)
			if err != nil || !bytes.Equal(got, recs[j].data) {
				t.Fatalf("read %s: %v", recs[j].rid, err)
			}
		}
	}
	// Final verification of all survivors.
	for _, r := range recs {
		got, err := m.Read(r.rid)
		if err != nil {
			t.Fatalf("final read %s: %v", r.rid, err)
		}
		if !bytes.Equal(got, r.data) {
			t.Fatalf("final read %s: corrupted", r.rid)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev, _ := pagedev.NewMem(1024)
	pool, _ := buffer.New(dev, 16)
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	m := New(seg)
	want := bytes.Repeat([]byte{0x5A}, 333)
	rid, err := m.Insert(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Clear(); err != nil { // flush + drop: simulates restart
		t.Fatal(err)
	}

	pool2, _ := buffer.New(dev, 16)
	seg2, err := segment.Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(seg2)
	got, err := m2.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("record did not survive reopen")
	}
}

func TestPageFreeBytes(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 200), 0)
	free, err := m.PageFreeBytes(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	if free <= 0 || free >= 1024 {
		t.Fatalf("PageFreeBytes = %d", free)
	}
	before := free
	if _, err := m.Insert(bytes.Repeat([]byte{1}, 100), rid.Page); err != nil {
		t.Fatal(err)
	}
	after, _ := m.PageFreeBytes(rid.Page)
	if after >= before {
		t.Fatalf("free did not drop: %d -> %d", before, after)
	}
}

func TestReadErrors(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 50), 0)
	// Nonexistent slot on an existing page.
	if _, err := m.Read(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Fatal("read of bogus slot succeeded")
	}
	// Nonexistent page.
	if _, err := m.Read(RID{Page: 9999, Slot: 0}); err == nil {
		t.Fatal("read of bogus page succeeded")
	}
	// Size and PageOf propagate the same errors.
	if _, err := m.Size(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Fatal("Size of bogus slot succeeded")
	}
	if _, err := m.PageOf(RID{Page: 9999, Slot: 0}); err == nil {
		t.Fatal("PageOf of bogus page succeeded")
	}
	if err := m.Delete(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Fatal("Delete of bogus slot succeeded")
	}
	if err := m.Update(RID{Page: rid.Page, Slot: 99}, bytes.Repeat([]byte{2}, 50)); err == nil {
		t.Fatal("Update of bogus slot succeeded")
	}
}

func TestUpdateSizeLimits(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 50), 0)
	if err := m.Update(rid, []byte("xx")); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("undersized update: %v", err)
	}
	if err := m.Update(rid, make([]byte, m.MaxRecordSize()+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized update: %v", err)
	}
	// Record untouched by failed updates.
	got, _ := m.Read(rid)
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, 50)) {
		t.Fatal("failed update clobbered record")
	}
}

func TestTouchForwarded(t *testing.T) {
	m := newManager(t, 1024)
	rid, _ := m.Insert(bytes.Repeat([]byte{1}, 900), 0)
	if _, err := m.Insert(bytes.Repeat([]byte{2}, 80), rid.Page); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(rid, bytes.Repeat([]byte{3}, 950)); err != nil {
		t.Fatal(err)
	}
	if err := m.Touch(rid); err != nil {
		t.Fatalf("Touch on forwarded record: %v", err)
	}
}
