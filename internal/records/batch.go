package records

// BatchWriter is the bulk-load record sink: it packs record bodies onto
// freshly allocated pages one page at a time, so buffer-pool traffic is
// one pin/latch (plus one free-space-inventory update) per page instead
// of one FindSpace + pin + update per record, and page numbers advance
// sequentially so a loaded document sits contiguously on disk.
//
// Bodies are buffered in memory until their page is full and RIDs are
// handed out eagerly: the writer owns the whole page, so slot numbers
// are known in advance. That lets the bulk builder embed proxies to
// child records before a single byte has reached the page — and lets
// Patch fix a buffered record (a parent-RID backpointer) for free,
// without touching the buffer pool at all.
//
// Page materialization is its own pipeline stage: full pages are handed
// to a flusher goroutine over a small bounded queue, so page copies,
// log appends and inventory updates overlap with the packing of the
// next page. The handoff protocol keeps Patch correct at every moment:
// a submitted page's bodies stay in a pending table (guarded by mu)
// until the flusher — holding the page's exclusive frame latch — copies
// them out under the same mutex. A racing Patch therefore either lands
// in the pending body before the copy, or misses the table and falls
// through to Manager.Patch, which blocks on the frame latch until the
// page image (and its single log record) is complete. Either way the
// patch is never lost and the log stays one image per bulk page.
//
// Insert/Patch/Flush/Discard must be driven by a single mutator (the
// writer shares the segment allocator); the flusher goroutine is the
// writer's own second stage, not a second mutator.

import (
	"fmt"
	"runtime"
	"sync"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/telemetry"
)

// BatchStats counts batch-writer activity.
type BatchStats struct {
	Records int64 // record bodies written
	Pages   int64 // pages materialized
	Bytes   int64 // body bytes written
	WriteNS int64 // busy time of the page-flusher stage
}

// flusherQueueLen bounds the flusher stage's page queue: enough to keep
// the flusher busy, small enough that a stalled device back-pressures
// the packer instead of buffering the whole document.
const flusherQueueLen = 8

// flushInline short-circuits the flusher stage on single-CPU machines:
// with no parallelism to win, queueing pages only widens the window in
// which allocated-but-unmaterialized pages sit in the buffer pool, where
// an eviction flushes a half-built page (and, under WAL, forces a log
// sync). Tests toggle it to pin either path.
var flushInline = runtime.GOMAXPROCS(0) == 1

// BatchWriter packs records onto sequential pages. Create with
// Manager.NewBatchWriter.
type BatchWriter struct {
	m       *Manager
	budget  int // cell+slot bytes to pack per page (fill factor applied)
	recycle func([]byte)

	page   pagedev.PageNo // page the buffered bodies belong to (0 = none)
	bodies [][]byte       // buffered bodies, slot i = bodies[i]
	used   int            // bytes the buffered bodies will occupy

	jobs chan pagedev.PageNo // submitted pages, in allocation order
	done chan struct{}       // closed when the flusher goroutine exits

	mu       sync.Mutex
	pending  map[pagedev.PageNo][][]byte // submitted, not yet materialized
	written  []RID                       // materialized records, kept for Discard
	stats    BatchStats
	flushErr error // first flusher failure, sticky until Flush/Discard
}

// NewBatchWriter returns a batch writer that fills each page up to
// fill × capacity (clamped to [0.25, 1]; 0 means 0.9). The slack left
// by fill factors below 1 is registered in the free-space inventory, so
// later incremental inserts into the loaded document can grow records
// in place instead of splitting immediately.
func (m *Manager) NewBatchWriter(fill float64) *BatchWriter {
	if fill == 0 {
		fill = 0.9
	}
	if fill < 0.25 {
		fill = 0.25
	}
	if fill > 1 {
		fill = 1
	}
	capacity := m.MaxRecordSize() + pageformat.SlotOverhead
	return &BatchWriter{
		m:       m,
		budget:  int(fill * float64(capacity)),
		pending: make(map[pagedev.PageNo][][]byte),
	}
}

// SetRecycle registers a sink for consumed body buffers: once a body's
// bytes are on their page, it is handed back for reuse. The sink runs on
// the flusher goroutine and must be safe for that.
func (w *BatchWriter) SetRecycle(fn func([]byte)) { w.recycle = fn }

// Insert buffers one record body and returns the RID it will occupy.
// The writer takes ownership of data (Patch may modify it in place, and
// the body is recycled once materialized).
func (w *BatchWriter) Insert(data []byte) (RID, error) {
	if err := w.m.checkSize(len(data)); err != nil {
		return NilRID, err
	}
	need := len(data) + pageformat.SlotOverhead
	if w.page != 0 && w.used+need > w.budget && len(w.bodies) > 0 {
		if err := w.submit(); err != nil {
			return NilRID, err
		}
	}
	if w.page == 0 {
		p, err := w.m.seg.AllocDataPage()
		if err != nil {
			return NilRID, err
		}
		w.page = p
	}
	rid := RID{Page: w.page, Slot: uint16(len(w.bodies))}
	w.bodies = append(w.bodies, data)
	w.used += need
	return rid, nil
}

// Patch overwrites len(data) bytes of a record at the given offset. For
// records still buffered in the writer (current page or a page awaiting
// the flusher) it is a memory copy; for records already materialized it
// falls through to Manager.Patch.
func (w *BatchWriter) Patch(rid RID, off int, data []byte) error {
	if rid.Page == w.page && int(rid.Slot) < len(w.bodies) {
		return patchBody(w.bodies[rid.Slot], off, data)
	}
	w.mu.Lock()
	if bodies, ok := w.pending[rid.Page]; ok && int(rid.Slot) < len(bodies) {
		err := patchBody(bodies[rid.Slot], off, data)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return w.m.Patch(rid, off, data)
}

func patchBody(body []byte, off int, data []byte) error {
	if off < 0 || off+len(data) > len(body) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadOffset, off, off+len(data), len(body))
	}
	copy(body[off:], data)
	return nil
}

// submit hands the current page to the flusher stage and starts a fresh
// one, failing fast if the flusher already hit an error.
func (w *BatchWriter) submit() error {
	w.mu.Lock()
	if err := w.flushErr; err != nil {
		w.mu.Unlock()
		return err
	}
	w.pending[w.page] = w.bodies
	w.mu.Unlock()
	if flushInline {
		p := w.page
		w.page = 0
		w.bodies = make([][]byte, 0, cap(w.bodies))
		w.used = 0
		return w.runFlush(p)
	}
	if w.jobs == nil {
		w.jobs = make(chan pagedev.PageNo, flusherQueueLen)
		w.done = make(chan struct{})
		go w.flusher()
	}
	w.jobs <- w.page
	w.page = 0
	w.bodies = make([][]byte, 0, cap(w.bodies))
	w.used = 0
	return nil
}

// flusher drains the page queue, materializing each page in allocation
// order. After a failure it keeps draining (recording the first error)
// so the packer never blocks on a full queue.
func (w *BatchWriter) flusher() {
	defer close(w.done)
	for p := range w.jobs {
		if err := w.runFlush(p); err != nil {
			w.mu.Lock()
			if w.flushErr == nil {
				w.flushErr = err
			}
			w.mu.Unlock()
		}
	}
}

// runFlush materializes one page, charging its wall time to the flusher
// stage.
func (w *BatchWriter) runFlush(p pagedev.PageNo) error {
	start := telemetry.Now()
	err := w.flushPage(p)
	w.mu.Lock()
	w.stats.WriteNS += int64(telemetry.Since(start))
	w.mu.Unlock()
	return err
}

// flushPage writes one submitted page's bodies onto the page under a
// single pin/latch and registers its remaining free space.
func (w *BatchWriter) flushPage(p pagedev.PageNo) error {
	f, err := w.m.seg.Pool().Get(p)
	if err != nil {
		w.mu.Lock()
		delete(w.pending, p)
		w.mu.Unlock()
		return err
	}
	f.Latch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		w.mu.Lock()
		delete(w.pending, p)
		w.mu.Unlock()
		f.Unlatch()
		f.Release()
		return err
	}
	// Copy the bodies out under mu while holding the frame latch: Patch
	// callers either still see the pending entry (and patch the body
	// before this copy) or miss it and serialize behind the latch.
	w.mu.Lock()
	bodies := w.pending[p]
	var copyErr error
	for i, body := range bodies {
		slot, ok := sl.Insert(body)
		if !ok || slot != i {
			copyErr = fmt.Errorf("records: batch page %d: slot %d/%v, want %d (page not empty?)", p, slot, ok, i)
			break
		}
	}
	delete(w.pending, p)
	w.mu.Unlock()
	if copyErr != nil {
		f.Unlatch()
		f.Release()
		return copyErr
	}
	free := sl.FreeBytes()
	// One page-image log record covers the whole packed page (the page
	// was freshly allocated by this writer), preserving the bulk path's
	// one-write-per-page property on the log as well.
	err = f.LogImage()
	f.Unlatch()
	f.Release()
	if err != nil {
		return err
	}
	if err := w.m.seg.NotifyFree(p, free); err != nil {
		return err
	}
	w.mu.Lock()
	for i := range bodies {
		w.written = append(w.written, RID{Page: p, Slot: uint16(i)})
		w.stats.Bytes += int64(len(bodies[i]))
	}
	w.stats.Records += int64(len(bodies))
	w.stats.Pages++
	w.mu.Unlock()
	if w.recycle != nil {
		for _, body := range bodies {
			w.recycle(body)
		}
	}
	return nil
}

// join stops the flusher stage and waits for queued pages to finish.
func (w *BatchWriter) join() {
	if w.jobs == nil {
		return
	}
	close(w.jobs)
	<-w.done
	w.jobs = nil
	w.done = nil
}

// Flush materializes any partially filled page and drains the flusher
// stage. Call once when the bulk load is complete; the writer can keep
// inserting afterwards (a new page and flusher start).
func (w *BatchWriter) Flush() error {
	if w.page != 0 && len(w.bodies) > 0 {
		if err := w.submit(); err != nil {
			w.join()
			return err
		}
	}
	w.page = 0
	w.join()
	w.mu.Lock()
	err := w.flushErr
	w.flushErr = nil
	w.mu.Unlock()
	return err
}

// Discard aborts the batch: buffered and queued bodies are dropped
// (their pages were never referenced, and stay registered as empty or
// untouched in the inventory) and every record this writer materialized
// is deleted. Used to roll back a failed bulk load.
func (w *BatchWriter) Discard() error {
	w.join()
	w.page = 0
	w.bodies = nil
	w.used = 0
	w.mu.Lock()
	written := w.written
	w.written = nil
	w.pending = make(map[pagedev.PageNo][][]byte)
	w.flushErr = nil
	w.mu.Unlock()
	var firstErr error
	for _, rid := range written {
		if err := w.m.Delete(rid); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns the writer's activity counters. Call after Flush (or
// between operations) for a settled view.
func (w *BatchWriter) Stats() BatchStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
