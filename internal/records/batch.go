package records

// BatchWriter is the bulk-load record sink: it packs record bodies onto
// freshly allocated pages one page at a time, so buffer-pool traffic is
// one pin/latch (plus one free-space-inventory update) per page instead
// of one FindSpace + pin + update per record, and page numbers advance
// sequentially so a loaded document sits contiguously on disk.
//
// Bodies are buffered in memory until their page is full and RIDs are
// handed out eagerly: the writer owns the whole page, so slot numbers
// are known in advance. That lets the bulk builder embed proxies to
// child records before a single byte has reached the page — and lets
// Patch fix a buffered record (a parent-RID backpointer) for free,
// without touching the buffer pool at all.
//
// A BatchWriter must be driven by a single mutator (it shares the
// segment allocator) and must be finished with Flush (or Discard).

import (
	"fmt"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

// BatchStats counts batch-writer activity.
type BatchStats struct {
	Records int64 // record bodies written
	Pages   int64 // pages materialized
	Bytes   int64 // body bytes written
}

// BatchWriter packs records onto sequential pages. Create with
// Manager.NewBatchWriter.
type BatchWriter struct {
	m      *Manager
	budget int // cell+slot bytes to pack per page (fill factor applied)

	page   pagedev.PageNo // page the buffered bodies belong to (0 = none)
	bodies [][]byte       // buffered bodies, slot i = bodies[i]
	used   int            // bytes the buffered bodies will occupy

	written []RID // materialized records, kept for Discard
	stats   BatchStats
}

// NewBatchWriter returns a batch writer that fills each page up to
// fill × capacity (clamped to [0.25, 1]; 0 means 0.9). The slack left
// by fill factors below 1 is registered in the free-space inventory, so
// later incremental inserts into the loaded document can grow records
// in place instead of splitting immediately.
func (m *Manager) NewBatchWriter(fill float64) *BatchWriter {
	if fill == 0 {
		fill = 0.9
	}
	if fill < 0.25 {
		fill = 0.25
	}
	if fill > 1 {
		fill = 1
	}
	capacity := m.MaxRecordSize() + pageformat.SlotOverhead
	return &BatchWriter{m: m, budget: int(fill * float64(capacity))}
}

// Insert buffers one record body and returns the RID it will occupy.
// The writer takes ownership of data (Patch may modify it in place).
func (w *BatchWriter) Insert(data []byte) (RID, error) {
	if err := w.m.checkSize(len(data)); err != nil {
		return NilRID, err
	}
	need := len(data) + pageformat.SlotOverhead
	if w.page != 0 && w.used+need > w.budget && len(w.bodies) > 0 {
		if err := w.materialize(); err != nil {
			return NilRID, err
		}
	}
	if w.page == 0 {
		p, err := w.m.seg.AllocDataPage()
		if err != nil {
			return NilRID, err
		}
		w.page = p
	}
	rid := RID{Page: w.page, Slot: uint16(len(w.bodies))}
	w.bodies = append(w.bodies, data)
	w.used += need
	return rid, nil
}

// Patch overwrites len(data) bytes of a record at the given offset. For
// records still buffered in the writer it is a memory copy; for records
// already materialized it falls through to Manager.Patch.
func (w *BatchWriter) Patch(rid RID, off int, data []byte) error {
	if rid.Page == w.page && int(rid.Slot) < len(w.bodies) {
		body := w.bodies[rid.Slot]
		if off < 0 || off+len(data) > len(body) {
			return fmt.Errorf("%w: [%d,%d) of %d", ErrBadOffset, off, off+len(data), len(body))
		}
		copy(body[off:], data)
		return nil
	}
	return w.m.Patch(rid, off, data)
}

// materialize writes the buffered bodies onto their page under a single
// pin/latch and registers the page's remaining free space.
func (w *BatchWriter) materialize() error {
	if w.page == 0 || len(w.bodies) == 0 {
		w.page = 0
		return nil
	}
	f, err := w.m.seg.Pool().Get(w.page)
	if err != nil {
		return err
	}
	f.Latch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		f.Unlatch()
		f.Release()
		return err
	}
	for i, body := range w.bodies {
		slot, ok := sl.Insert(body)
		if !ok || slot != i {
			f.Unlatch()
			f.Release()
			return fmt.Errorf("records: batch page %d: slot %d/%v, want %d (page not empty?)", w.page, slot, ok, i)
		}
	}
	free := sl.FreeBytes()
	// One page-image log record covers the whole packed page (the page
	// was freshly allocated by this writer), preserving the bulk path's
	// one-write-per-page property on the log as well.
	err = f.LogImage()
	f.Unlatch()
	f.Release()
	if err != nil {
		return err
	}
	if err := w.m.seg.NotifyFree(w.page, free); err != nil {
		return err
	}
	for i := range w.bodies {
		w.written = append(w.written, RID{Page: w.page, Slot: uint16(i)})
		w.stats.Bytes += int64(len(w.bodies[i]))
	}
	w.stats.Records += int64(len(w.bodies))
	w.stats.Pages++
	w.page = 0
	w.bodies = w.bodies[:0]
	w.used = 0
	return nil
}

// Flush materializes any partially filled page. Call once when the bulk
// load is complete; the writer can keep inserting afterwards (a new
// page starts).
func (w *BatchWriter) Flush() error { return w.materialize() }

// Discard aborts the batch: buffered bodies are dropped (their page was
// never written, and stays registered as empty in the inventory) and
// every record this writer materialized is deleted. Used to roll back a
// failed bulk load.
func (w *BatchWriter) Discard() error {
	w.page = 0
	w.bodies = nil
	w.used = 0
	var firstErr error
	for _, rid := range w.written {
		if err := w.m.Delete(rid); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	w.written = nil
	return firstErr
}

// Stats returns the writer's activity counters.
func (w *BatchWriter) Stats() BatchStats { return w.stats }
