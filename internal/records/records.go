// Package records implements the NATIX physical record manager. Records
// are byte strings up to one page in size, identified by a stable RID =
// (pageid, slot) pair (paper §2.1).
//
// Records keep their RID for life: when an update outgrows its page the
// record body moves to another page and the home slot becomes a
// forwarding stub holding the new location, so references held by upper
// layers (proxies, parent pointers, catalog entries) never need rewriting
// just because a record moved. Forwarding chains are at most one hop —
// re-moving a forwarded record patches the original stub.
//
// Allocation takes a proximity hint so callers can "store parent with
// children and sibling nodes on the same page if possible" (§4.2).
package records

import (
	"encoding/binary"
	"errors"
	"fmt"

	"natix/internal/pagedev"
	"natix/internal/pageformat"
	"natix/internal/segment"
)

// RIDSize is the on-disk size of an encoded RID: 48-bit page number plus
// 16-bit slot ("Standalone objects contain their parent record as RID
// (8 bytes)", paper App. A).
const RIDSize = 8

// RID identifies a record: a (pageid, slot) pair.
type RID struct {
	Page pagedev.PageNo
	Slot uint16
}

// NilRID is the zero RID. Page 0 holds the segment header, so no record
// ever lives there and the zero value safely means "no record".
var NilRID = RID{}

// IsNil reports whether r is the nil RID.
func (r RID) IsNil() bool { return r == NilRID }

// String formats the RID as page:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Encode appends the 8-byte encoding of r to dst.
func (r RID) Encode(dst []byte) []byte {
	var b [RIDSize]byte
	r.Put(b[:])
	return append(dst, b[:]...)
}

// Put writes the 8-byte encoding of r into b.
func (r RID) Put(b []byte) {
	_ = b[7]
	v := uint64(r.Page)
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	binary.LittleEndian.PutUint16(b[6:], r.Slot)
}

// DecodeRID reads an 8-byte RID from b.
func DecodeRID(b []byte) RID {
	_ = b[7]
	page := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
	return RID{Page: pagedev.PageNo(page), Slot: binary.LittleEndian.Uint16(b[6:])}
}

// Errors.
var (
	ErrNotFound  = errors.New("records: no such record")
	ErrTooLarge  = errors.New("records: record exceeds page capacity")
	ErrTooSmall  = errors.New("records: record smaller than minimum")
	ErrCorrupt   = errors.New("records: forwarding chain corrupt")
	ErrBadOffset = errors.New("records: patch range outside record")
)

// MinRecordSize is the smallest storable record. Records must be able to
// shrink in place to a forwarding stub, so they are at least RIDSize.
const MinRecordSize = RIDSize

// Manager provides record CRUD over a segment. Read operations (Read,
// Size, Touch, PageOf, PageFreeBytes) are safe for any number of
// concurrent callers and may run concurrently with one mutator: every
// page access holds the frame latch (shared for reads, exclusive for
// mutations), so a mutator rewriting one page never exposes torn bytes
// to readers of a neighboring record on the same page. Mutating
// operations themselves must be serialized by the caller (package
// docstore holds a single writer lock).
type Manager struct {
	seg *segment.Segment
}

// New creates a record manager over seg.
func New(seg *segment.Segment) *Manager { return &Manager{seg: seg} }

// Segment returns the underlying segment.
func (m *Manager) Segment() *segment.Segment { return m.seg }

// MaxRecordSize returns the net page capacity: the largest record that
// fits on one page. Exceeding it is what forces a tree split (§3.2.2).
func (m *Manager) MaxRecordSize() int { return m.seg.MaxRecordSize() }

// checkSize validates a record body size.
func (m *Manager) checkSize(n int) error {
	if n < MinRecordSize {
		return fmt.Errorf("%w: %d bytes (min %d)", ErrTooSmall, n, MinRecordSize)
	}
	if n > m.MaxRecordSize() {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, m.MaxRecordSize())
	}
	return nil
}

// Insert stores data as a new record, preferring pages near the hint
// page (0 = no preference), and returns its RID.
func (m *Manager) Insert(data []byte, near pagedev.PageNo) (RID, error) {
	if err := m.checkSize(len(data)); err != nil {
		return NilRID, err
	}
	// Retry a few times: the free-space inventory is conservative but a
	// page may still refuse a cell when its directory needs a new slot.
	needNear := near
	for attempt := 0; attempt < 4; attempt++ {
		p, err := m.seg.FindSpace(len(data)+pageformat.SlotOverhead, needNear)
		if err != nil {
			return NilRID, err
		}
		f, err := m.seg.Pool().Get(p)
		if err != nil {
			return NilRID, err
		}
		f.Latch()
		sl, err := pageformat.AsSlotted(f.Data())
		if err != nil {
			f.Unlatch()
			f.Release()
			return NilRID, err
		}
		u := f.BeginUpdate()
		slot, ok := sl.Insert(data)
		free := sl.FreeBytes()
		if ok {
			err = f.EndUpdate(u)
		} else {
			f.CancelUpdate(u)
		}
		f.Unlatch()
		f.Release()
		if err != nil {
			return NilRID, err
		}
		if err := m.seg.NotifyFree(p, free); err != nil {
			return NilRID, err
		}
		if ok {
			return RID{Page: p, Slot: uint16(slot)}, nil
		}
		needNear = 0 // hint page failed; let the inventory pick elsewhere
	}
	return NilRID, fmt.Errorf("records: could not place %d-byte record", len(data))
}

// resolve follows at most one forwarding hop and returns the physical
// location of the record body. home==loc when the record is not forwarded.
func (m *Manager) resolve(rid RID) (loc RID, forwarded bool, err error) {
	f, err := m.seg.Pool().Get(rid.Page)
	if err != nil {
		return NilRID, false, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return NilRID, false, err
	}
	fl, err := sl.Flag(int(rid.Slot))
	if err != nil {
		return NilRID, false, fmt.Errorf("%w: %s: %v", ErrNotFound, rid, err)
	}
	if !fl {
		return rid, false, nil
	}
	cell, err := sl.Cell(int(rid.Slot))
	if err != nil {
		return NilRID, false, err
	}
	if len(cell) != RIDSize {
		return NilRID, false, fmt.Errorf("%w: stub at %s has %d bytes", ErrCorrupt, rid, len(cell))
	}
	return DecodeRID(cell), true, nil
}

// Read returns a copy of the record body.
func (m *Manager) Read(rid RID) ([]byte, error) {
	loc, fwd, err := m.resolve(rid)
	if err != nil {
		return nil, err
	}
	f, err := m.seg.Pool().Get(loc.Page)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return nil, err
	}
	if fwd {
		if fl, err := sl.Flag(int(loc.Slot)); err != nil || fl {
			return nil, fmt.Errorf("%w: %s forwards to %s which is %v/%v", ErrCorrupt, rid, loc, fl, err)
		}
	}
	cell, err := sl.Cell(int(loc.Slot))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFound, rid, err)
	}
	return append([]byte(nil), cell...), nil
}

// VerifyRID checks that rid resolves to a readable record body —
// forwarding stub intact, target slot live, cell bounds valid — without
// copying the body out. The integrity scrubber uses it to confirm that
// catalog and index entries still point at live records.
func (m *Manager) VerifyRID(rid RID) error {
	_, err := m.Size(rid)
	return err
}

// Size returns the record body length in bytes.
func (m *Manager) Size(rid RID) (int, error) {
	loc, _, err := m.resolve(rid)
	if err != nil {
		return 0, err
	}
	f, err := m.seg.Pool().Get(loc.Page)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return 0, err
	}
	cell, err := sl.Cell(int(loc.Slot))
	if err != nil {
		return 0, err
	}
	return len(cell), nil
}

// PageOf returns the page physically holding the record body, for use as
// an allocation proximity hint.
func (m *Manager) PageOf(rid RID) (pagedev.PageNo, error) {
	loc, _, err := m.resolve(rid)
	if err != nil {
		return 0, err
	}
	return loc.Page, nil
}

// Touch registers a logical access to the record's page(s) without
// reading the body. Upper-level caches use it so cache hits still flow
// through the buffer manager.
func (m *Manager) Touch(rid RID) error {
	loc, fwd, err := m.resolve(rid)
	if err != nil {
		return err
	}
	if fwd {
		return m.seg.Pool().Touch(loc.Page)
	}
	return nil
}

// Update replaces the record body. The RID stays valid: if the new body
// does not fit on its current page the body moves and the home slot
// becomes (or re-targets) a forwarding stub. "If there is not enough
// space on the page, try to move r" (paper §3.2, step 2).
func (m *Manager) Update(rid RID, data []byte) error {
	if err := m.checkSize(len(data)); err != nil {
		return err
	}
	loc, fwd, err := m.resolve(rid)
	if err != nil {
		return err
	}
	// Try in place at the current body location.
	f, err := m.seg.Pool().Get(loc.Page)
	if err != nil {
		return err
	}
	f.Latch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		f.Unlatch()
		f.Release()
		return err
	}
	u := f.BeginUpdate()
	if sl.Update(int(loc.Slot), data) {
		free := sl.FreeBytes()
		err := f.EndUpdate(u)
		f.Unlatch()
		f.Release()
		if err != nil {
			return err
		}
		return m.seg.NotifyFree(loc.Page, free)
	}
	f.CancelUpdate(u)
	f.Unlatch()
	f.Release()

	// Move: place the new body elsewhere, then point the home slot at it.
	newLoc, err := m.insertBody(data, loc.Page)
	if err != nil {
		return err
	}
	if fwd {
		// Home already holds a stub: delete the old body, retarget stub.
		if err := m.deleteCell(loc); err != nil {
			return err
		}
		return m.patchStub(rid, newLoc)
	}
	// Shrink the home cell into a stub in place (records are always at
	// least RIDSize bytes, so this cannot fail for lack of space).
	f, err = m.seg.Pool().Get(rid.Page)
	if err != nil {
		return err
	}
	f.Latch()
	sl, err = pageformat.AsSlotted(f.Data())
	if err != nil {
		f.Unlatch()
		f.Release()
		return err
	}
	u = f.BeginUpdate()
	var stub [RIDSize]byte
	newLoc.Put(stub[:])
	if !sl.Update(int(rid.Slot), stub[:]) {
		f.CancelUpdate(u)
		f.Unlatch()
		f.Release()
		return fmt.Errorf("records: cannot install forwarding stub at %s", rid)
	}
	if err := sl.SetFlag(int(rid.Slot), true); err != nil {
		// The stub bytes are already in place: log them even on this
		// (unreachable) path so the log never lags the page.
		_ = f.EndUpdate(u)
		f.Unlatch()
		f.Release()
		return err
	}
	free := sl.FreeBytes()
	err = f.EndUpdate(u)
	f.Unlatch()
	f.Release()
	if err != nil {
		return err
	}
	return m.seg.NotifyFree(rid.Page, free)
}

// insertBody places a record body on some page (near a hint), without
// touching forwarding state. Used by Update when relocating.
func (m *Manager) insertBody(data []byte, near pagedev.PageNo) (RID, error) {
	// Never place the body on the near page itself — Update already
	// failed there — so clear the hint if it matches.
	rid, err := m.Insert(data, near)
	if err != nil {
		return NilRID, err
	}
	return rid, nil
}

// patchStub rewrites the stub at home to point at newLoc.
func (m *Manager) patchStub(home, newLoc RID) error {
	f, err := m.seg.Pool().Get(home.Page)
	if err != nil {
		return err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return err
	}
	cell, err := sl.Cell(int(home.Slot))
	if err != nil {
		return err
	}
	if len(cell) != RIDSize {
		return fmt.Errorf("%w: stub at %s has %d bytes", ErrCorrupt, home, len(cell))
	}
	u := f.BeginUpdate()
	newLoc.Put(cell)
	return f.EndUpdate(u)
}

// deleteCell removes one physical cell and updates the inventory.
func (m *Manager) deleteCell(loc RID) error {
	f, err := m.seg.Pool().Get(loc.Page)
	if err != nil {
		return err
	}
	f.Latch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		f.Unlatch()
		f.Release()
		return err
	}
	u := f.BeginUpdate()
	if err := sl.Delete(int(loc.Slot)); err != nil {
		f.CancelUpdate(u)
		f.Unlatch()
		f.Release()
		return err
	}
	free := sl.FreeBytes()
	err = f.EndUpdate(u)
	f.Unlatch()
	f.Release()
	if err != nil {
		return err
	}
	return m.seg.NotifyFree(loc.Page, free)
}

// Delete removes the record, including its forwarding stub if any.
func (m *Manager) Delete(rid RID) error {
	loc, fwd, err := m.resolve(rid)
	if err != nil {
		return err
	}
	if err := m.deleteCell(loc); err != nil {
		return err
	}
	if fwd {
		return m.deleteCell(rid)
	}
	return nil
}

// Patch overwrites len(data) bytes of the record body in place at the
// given offset. The record length is unchanged. Used for cheap parent-
// pointer fixups after splits.
func (m *Manager) Patch(rid RID, off int, data []byte) error {
	loc, _, err := m.resolve(rid)
	if err != nil {
		return err
	}
	f, err := m.seg.Pool().Get(loc.Page)
	if err != nil {
		return err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return err
	}
	cell, err := sl.Cell(int(loc.Slot))
	if err != nil {
		return err
	}
	if off < 0 || off+len(data) > len(cell) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadOffset, off, off+len(data), len(cell))
	}
	u := f.BeginUpdate()
	copy(cell[off:], data)
	return f.EndUpdate(u)
}

// PageFreeBytes returns the exact free byte count of a data page. The
// tree manager compares candidate insertion pages with it ("wherever
// there is more free space", §3.3).
func (m *Manager) PageFreeBytes(p pagedev.PageNo) (int, error) {
	f, err := m.seg.Pool().Get(p)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	sl, err := pageformat.AsSlotted(f.Data())
	if err != nil {
		return 0, err
	}
	return sl.FreeBytes(), nil
}
