package records

import (
	"bytes"
	"fmt"
	"testing"
)

func TestBatchWriterRoundTrip(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.9)
	var rids []RID
	var want [][]byte
	for i := 0; i < 50; i++ {
		body := bytes.Repeat([]byte{byte(i)}, 40+i*3)
		rid, err := w.Insert(body)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want = append(want, body)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := m.Read(rid)
		if err != nil {
			t.Fatalf("record %d (%s): %v", i, rid, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d: body mismatch", i)
		}
	}
	st := w.Stats()
	if st.Records != 50 {
		t.Fatalf("Records = %d, want 50", st.Records)
	}
	if st.Pages < 2 {
		t.Fatalf("Pages = %d, want several (bodies exceed one page)", st.Pages)
	}
	// Pages must be packed densely: far fewer pages than records.
	if st.Pages >= st.Records {
		t.Fatalf("no packing: %d pages for %d records", st.Pages, st.Records)
	}
}

func TestBatchWriterSequentialPages(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(1.0)
	var pages []uint64
	for i := 0; i < 60; i++ {
		rid, err := w.Insert(bytes.Repeat([]byte{1}, 100))
		if err != nil {
			t.Fatal(err)
		}
		if len(pages) == 0 || uint64(rid.Page) != pages[len(pages)-1] {
			pages = append(pages, uint64(rid.Page))
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatalf("pages not sequential: %v", pages)
		}
	}
}

func TestBatchWriterFillFactorLeavesSlack(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.5)
	var first RID
	for i := 0; i < 20; i++ {
		rid, err := w.Insert(bytes.Repeat([]byte{2}, 100))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rid
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	free, err := m.PageFreeBytes(first.Page)
	if err != nil {
		t.Fatal(err)
	}
	if free < m.MaxRecordSize()/4 {
		t.Fatalf("fill 0.5 left only %d free bytes on page %d", free, first.Page)
	}
	// The slack must be discoverable: a normal insert near that page can
	// use it.
	rid, err := m.Insert(bytes.Repeat([]byte{3}, 100), first.Page)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != first.Page {
		t.Fatalf("slack not reused: insert went to page %d, not %d", rid.Page, first.Page)
	}
}

func TestBatchWriterPatch(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.9)
	// Patch a buffered record.
	bufRID, err := w.Insert([]byte("aaaaaaaaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Patch(bufRID, 2, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	// Force materialization, then patch an on-disk record.
	for i := 0; i < 30; i++ {
		if _, err := w.Insert(bytes.Repeat([]byte{9}, 120)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Patch(bufRID, 4, []byte("ZW")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(bufRID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaXYZWaaaa" {
		t.Fatalf("patched body = %q", got)
	}
	// Out-of-range patch on a buffered record must fail.
	w2 := m.NewBatchWriter(0.9)
	rid, err := w2.Insert([]byte("12345678"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Patch(rid, 6, []byte("toolong")); err == nil {
		t.Fatal("out-of-range patch succeeded")
	}
}

func TestBatchWriterDiscard(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.9)
	var rids []RID
	for i := 0; i < 40; i++ {
		rid, err := w.Insert(bytes.Repeat([]byte{byte(i)}, 90))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := w.Discard(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		if _, err := m.Read(rid); err == nil {
			t.Fatalf("record %s survived Discard", rid)
		}
	}
	// The abandoned pages must be reusable by ordinary inserts.
	if _, err := m.Insert(bytes.Repeat([]byte{7}, 200), 0); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWriterOversizeRecordAlone(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.5)
	// A record bigger than the fill budget but within page capacity must
	// still be stored (alone on its page).
	big := bytes.Repeat([]byte{5}, m.MaxRecordSize())
	rid, err := w.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert([]byte("next-record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("oversize body mismatch")
	}
	if _, err := w.Insert(bytes.Repeat([]byte{6}, m.MaxRecordSize()+1)); err == nil {
		t.Fatal("accepted record above page capacity")
	}
}

func TestBatchWriterManyPagesStats(t *testing.T) {
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.9)
	n := 0
	for p := 0; p < 10; p++ {
		for i := 0; i < 8; i++ {
			if _, err := w.Insert([]byte(fmt.Sprintf("record-%03d-%03d", p, i))); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != int64(n) {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	if st.Pages == 0 || st.Bytes == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// forceAsyncFlusher pins the flusher-goroutine path on: a single-CPU
// machine defaults to inline flushing, and the handoff protocol under
// test lives in the concurrent code.
func forceAsyncFlusher(t *testing.T) {
	t.Helper()
	old := flushInline
	flushInline = false
	t.Cleanup(func() { flushInline = old })
}

// TestBatchWriterAsyncFlusher drives the two-stage writer with the
// flusher goroutine pinned on: bodies round-trip, patches race the
// materialization without being lost, and Discard unwinds everything
// the flusher already wrote.
func TestBatchWriterAsyncFlusher(t *testing.T) {
	forceAsyncFlusher(t)
	m := newManager(t, 1024)
	w := m.NewBatchWriter(0.9)
	var rids []RID
	var want [][]byte
	for i := 0; i < 200; i++ {
		body := bytes.Repeat([]byte{byte(i)}, 40+i%37)
		rid, err := w.Insert(body)
		if err != nil {
			t.Fatal(err)
		}
		// Patch a body from a few pages back while the flusher may
		// still (or may not) have it in the pending table.
		if i >= 20 && i%5 == 0 {
			prev := rids[i-20]
			patch := []byte{0xAA, 0xBB}
			if err := w.Patch(prev, 0, patch); err != nil {
				t.Fatal(err)
			}
			copy(want[i-20], patch)
		}
		rids = append(rids, rid)
		want = append(want, body)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := m.Read(rid)
		if err != nil {
			t.Fatalf("record %d (%s): %v", i, rid, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d: body mismatch after async flush", i)
		}
	}
	if st := w.Stats(); st.Records != 200 {
		t.Fatalf("Records = %d, want 200", st.Records)
	}

	// A second writer, discarded mid-load: every record its flusher
	// already materialized must be gone, the first writer's untouched.
	w2 := m.NewBatchWriter(0.9)
	var second []RID
	for i := 0; i < 120; i++ {
		rid, err := w2.Insert(bytes.Repeat([]byte{0xEE}, 60))
		if err != nil {
			t.Fatal(err)
		}
		second = append(second, rid)
	}
	if err := w2.Discard(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range second {
		if _, err := m.Read(rid); err == nil {
			t.Fatalf("discarded record %s still readable", rid)
		}
	}
	for i, rid := range rids {
		got, err := m.Read(rid)
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("first batch damaged by discard: record %d err=%v", i, err)
		}
	}
}
