package pathindex

// Single-pass index construction. Build re-walks the stored tree after
// an import — a second full traversal of everything the loader just
// wrote. StreamBuilder instead rides along with the bulk loader: the
// loader reports each logical node as it parses it (Enter/Literal/Exit,
// which fixes pre-order sequence numbers, subtree sizes and summary
// paths) and each emitted record as it is stored (OnRecord, which fixes
// the physical half of every posting: record RID and facade index). The
// stored tree is never read back.
//
// Per-node state lives only between a node's Enter and the emission of
// the record that holds it — bounded by the loader's open frames, not
// by the document.

import (
	"fmt"
	"math"
	"sort"

	"natix/internal/dict"
	"natix/internal/noderep"
	"natix/internal/records"
)

// streamMeta is the logical half of one element's posting.
type streamMeta struct {
	seq  uint32
	size uint32
	path PathID
}

// StreamBuilder accumulates one document's index during a bulk load.
// Drive it strictly in document order; it is not safe for concurrent
// use.
type StreamBuilder struct {
	idx     *Index
	seq     uint32
	stack   []PathID
	meta    map[*noderep.Node]streamMeta
	openSeq []uint32 // seq per still-open element, parallel to stack

	// One-entry InternPath memo: document order visits runs of same-label
	// siblings (rows, lines, items), which all share one summary path.
	lastParent PathID
	lastLabel  dict.LabelID
	lastPath   PathID
	lastOK     bool
}

// NewStreamBuilder returns an empty builder.
func NewStreamBuilder() *StreamBuilder {
	return &StreamBuilder{
		idx:  NewIndex(),
		meta: make(map[*noderep.Node]streamMeta),
	}
}

// Enter records an element (or attribute aggregate) opening. n is the
// physical node the loader built for it; it identifies the element
// until the record holding it is emitted.
func (b *StreamBuilder) Enter(n *noderep.Node) {
	parent := NilPath
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
	} else {
		b.idx.root = n.Label
	}
	path := b.lastPath
	if !b.lastOK || parent != b.lastParent || n.Label != b.lastLabel {
		path = b.idx.InternPath(parent, n.Label)
		b.lastParent, b.lastLabel, b.lastPath, b.lastOK = parent, n.Label, path, true
	}
	b.idx.paths[path].Count++
	b.openSeq = append(b.openSeq, b.seq)
	b.seq++
	b.stack = append(b.stack, path)
}

// Literal records a text leaf: literals occupy a sequence number (so
// subtree sizes define containment) but get no posting.
func (b *StreamBuilder) Literal() {
	b.seq++
}

// Exit records an element closing; its subtree size is now known.
func (b *StreamBuilder) Exit(n *noderep.Node) error {
	if len(b.openSeq) == 0 {
		return fmt.Errorf("pathindex: Exit of unentered node")
	}
	seq := b.openSeq[len(b.openSeq)-1]
	b.openSeq = b.openSeq[:len(b.openSeq)-1]
	path := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.meta[n] = streamMeta{seq: seq, size: b.seq - seq - 1, path: path}
	return nil
}

// OnRecord is the bulk builder's record sink: walking the emitted
// record's facade enumeration (the same walk core.FacadeIndexer does)
// yields each element's facade index, completing its posting. Consumed
// metadata is released.
func (b *StreamBuilder) OnRecord(rid records.RID, root *noderep.Node) error {
	local := 0
	var firstErr error
	root.Walk(func(n *noderep.Node) bool {
		facade := n.Kind == noderep.KindLiteral ||
			(n.Kind == noderep.KindAggregate && !n.Scaffold)
		if !facade {
			return true
		}
		if n.Kind == noderep.KindAggregate {
			m, ok := b.meta[n]
			if !ok {
				firstErr = fmt.Errorf("pathindex: record %s holds an unregistered element", rid)
				return false
			}
			if local > math.MaxUint16 {
				firstErr = fmt.Errorf("pathindex: facade index %d exceeds uint16 in record %s", local, rid)
				return false
			}
			b.idx.postings[n.Label] = append(b.idx.postings[n.Label], Posting{
				Seq: m.seq, Size: m.size, RID: rid, Local: uint16(local), Path: m.path,
			})
			delete(b.meta, n)
		}
		local++
		return true
	})
	return firstErr
}

// Finish seals the index. Postings were appended in record-emission
// order (bottom-up), so each label's list is re-sorted into document
// order here.
func (b *StreamBuilder) Finish() (*Index, error) {
	if len(b.stack) != 0 || len(b.openSeq) != 0 {
		return nil, fmt.Errorf("pathindex: %d elements still open", len(b.openSeq))
	}
	if len(b.meta) != 0 {
		return nil, fmt.Errorf("pathindex: %d elements never reached a record", len(b.meta))
	}
	b.idx.nodes = b.seq
	for label := range b.idx.postings {
		list := b.idx.postings[label]
		sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
	}
	return b.idx, nil
}
