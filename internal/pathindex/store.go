package pathindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"natix/internal/blobstore"
	"natix/internal/dict"
	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
)

// Store persists one summary blob per document plus one postings blob
// per element label, with a catalog blob mapping document names to
// summary RIDs; the catalog RID lives in the segment header's
// RootPathIndex slot. All storage goes through the blob manager — and
// therefore the record manager and buffer pool — so index I/O is
// accounted like data I/O.
//
// Reads are lazy: opening a document's index loads only the summary;
// each label's postings are read on first probe. A query therefore
// pays for the posting lists of the labels its steps name, not for the
// whole index.
//
// Decoded handles are cached per document (bounded; arbitrary eviction
// beyond maxCached). The cache only saves blob reads and decoding; it
// is coherent because the Store is the only writer and every Put/Drop
// updates it. Measurement harnesses that clear the buffer pool between
// operations should call InvalidateCache too, so index I/O is charged
// to the operation like every other page access.
//
// Reads (Get, Has, Names, lazy posting loads) are safe for any number
// of concurrent callers; Put and Drop must be serialized by the caller
// (package docstore's writer lock) but may run concurrently with
// readers of other documents.
type Store struct {
	blobs *blobstore.Store
	seg   *segment.Segment

	mu        sync.RWMutex           // guards entries and cache
	catalogID records.RID            // touched only by the (serialized) writer
	entries   map[string]records.RID // document name -> summary blob RID
	cache     map[string]*Handle
}

// maxCached bounds the decoded-handle cache.
const maxCached = 64

// Open attaches to the path-index store of a segment. A segment that
// has no path-index catalog yet (a fresh store, or one created before
// indexing existed) yields an empty store; the catalog is first
// persisted when an index is stored, so read-only use never writes.
func Open(rm *records.Manager) (*Store, error) {
	s := &Store{
		blobs:   blobstore.New(rm),
		seg:     rm.Segment(),
		entries: make(map[string]records.RID),
		cache:   make(map[string]*Handle),
	}
	raw, err := s.seg.RootRID(segment.RootPathIndex)
	if err != nil {
		return nil, err
	}
	if raw == 0 {
		return s, nil
	}
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	s.catalogID = records.DecodeRID(enc[:])
	body, err := s.blobs.Read(s.catalogID)
	if err != nil {
		return nil, fmt.Errorf("pathindex: load catalog: %w", err)
	}
	if err := s.decodeCatalog(body); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload discards the in-memory catalog and handle cache and re-reads
// the catalog from the segment. The document store calls it after a
// log-driven rollback restored pages under the in-memory state.
// Mutator context (the rollback holds the store-wide writer lock).
func (s *Store) Reload() error {
	raw, err := s.seg.RootRID(segment.RootPathIndex)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]records.RID)
	s.cache = make(map[string]*Handle)
	s.catalogID = records.RID{}
	if raw == 0 {
		return nil
	}
	var enc [records.RIDSize]byte
	binary.LittleEndian.PutUint64(enc[:], raw)
	s.catalogID = records.DecodeRID(enc[:])
	body, err := s.blobs.Read(s.catalogID)
	if err != nil {
		return fmt.Errorf("pathindex: reload catalog: %w", err)
	}
	return s.decodeCatalog(body)
}

func (s *Store) encodeCatalog() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := s.namesLocked()
	out := make([]byte, 0, 8)
	out = append(out, catalogMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
	var rid [records.RIDSize]byte
	for _, n := range names {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(n)))
		out = append(out, n...)
		s.entries[n].Put(rid[:])
		out = append(out, rid[:]...)
	}
	return out
}

func (s *Store) decodeCatalog(b []byte) error {
	if len(b) < 8 || string(b[:4]) != catalogMagic {
		return fmt.Errorf("%w: bad catalog magic", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	pos := 8
	for i := 0; i < count; i++ {
		if pos+2 > len(b) {
			return fmt.Errorf("%w: truncated catalog entry %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+n+records.RIDSize > len(b) {
			return fmt.Errorf("%w: truncated catalog entry %d", ErrCorrupt, i)
		}
		name := string(b[pos : pos+n])
		pos += n
		s.entries[name] = records.DecodeRID(b[pos : pos+records.RIDSize])
		pos += records.RIDSize
	}
	return nil
}

func (s *Store) saveCatalog() error {
	body := s.encodeCatalog()
	var (
		id  records.RID
		err error
	)
	if s.catalogID.IsNil() {
		id, err = s.blobs.Write(body, 0)
	} else {
		id, err = s.blobs.Overwrite(s.catalogID, body)
	}
	if err != nil {
		return err
	}
	s.catalogID = id
	var enc [records.RIDSize]byte
	id.Put(enc[:])
	return s.seg.SetRootRID(segment.RootPathIndex, binary.LittleEndian.Uint64(enc[:]))
}

// Names lists the indexed documents in name order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.namesLocked()
}

// namesLocked lists the indexed documents in name order. Caller holds
// s.mu (shared or exclusive).
func (s *Store) namesLocked() []string {
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether name has a stored index.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[name]
	return ok
}

// Put stores (or replaces) the index for name: one postings blob per
// label, chained near each other, then the summary blob. The new index
// is written and registered before the old one's blobs are freed, so a
// mid-Put failure leaves the previous index intact and live rather
// than a catalog pointing at freed blobs.
func (s *Store) Put(name string, idx *Index) error {
	oldRIDs, err := s.blobRIDs(name)
	if err != nil {
		return err
	}
	dir := make(map[dict.LabelID]dirEntry, len(idx.postings))
	written := make([]records.RID, 0, len(idx.postings)+1)
	// A failed write frees whatever this Put already allocated so the
	// segment does not accumulate unreferenced blobs.
	rollback := func(cause error) error {
		for _, rid := range written {
			if err := s.blobs.Delete(rid); err != nil {
				return fmt.Errorf("%w (rollback failed: %v)", cause, err)
			}
		}
		return cause
	}
	var near pagedev.PageNo
	for _, label := range idx.PostingLabels() {
		list := idx.Postings(label)
		id, err := s.blobs.Write(encodePostings(list), near)
		if err != nil {
			return rollback(fmt.Errorf("pathindex: store %q postings: %w", name, err))
		}
		written = append(written, id)
		dir[label] = dirEntry{count: uint32(len(list)), rid: id}
		near = id.Page
	}
	id, err := s.blobs.Write(encodeSummary(idx, dir), near)
	if err != nil {
		return rollback(fmt.Errorf("pathindex: store %q summary: %w", name, err))
	}
	s.mu.Lock()
	s.entries[name] = id
	s.cacheAddLocked(name, &Handle{
		store:    s,
		sum:      &summary{paths: idx.paths, root: idx.root, nodes: idx.nodes, dir: dir},
		postings: idx.postings,
	})
	s.mu.Unlock()
	if err := s.saveCatalog(); err != nil {
		return err
	}
	for _, rid := range oldRIDs {
		if err := s.blobs.Delete(rid); err != nil {
			return err
		}
	}
	return nil
}

// Get returns a handle on the index of name, loading and caching its
// summary on first use. It returns (nil, nil) when the document has no
// index. Concurrent first loads of the same document may both read the
// summary; one decoded handle wins the cache and both callers get a
// valid view.
func (s *Store) Get(name string) (*Handle, error) {
	s.mu.RLock()
	if h, ok := s.cache[name]; ok {
		s.mu.RUnlock()
		return h, nil
	}
	id, ok := s.entries[name]
	s.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	body, err := s.blobs.Read(id)
	if err != nil {
		return nil, fmt.Errorf("pathindex: load %q: %w", name, err)
	}
	sum, err := decodeSummary(body)
	if err != nil {
		return nil, fmt.Errorf("pathindex: %q: %w", name, err)
	}
	h := &Handle{store: s, sum: sum, postings: make(map[dict.LabelID][]Posting)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.cache[name]; ok {
		return cached, nil
	}
	s.cacheAddLocked(name, h)
	return h, nil
}

// Drop removes the index for name, if any. The catalog entry goes
// first: a failure after that can only leak blobs, never leave the
// catalog pointing at freed ones.
func (s *Store) Drop(name string) error {
	if !s.Has(name) {
		return nil
	}
	rids, err := s.blobRIDs(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.entries, name)
	delete(s.cache, name)
	s.mu.Unlock()
	if err := s.saveCatalog(); err != nil {
		return err
	}
	for _, rid := range rids {
		if err := s.blobs.Delete(rid); err != nil {
			return err
		}
	}
	return nil
}

// blobRIDs lists every blob of name's stored index (posting lists and
// summary); nil when name has no index. An undecodable summary must
// not wedge the document forever (Drop backs Delete, Convert and the
// reindex repair path), so its posting blobs — unenumerable without
// the directory — are leaked and only the summary itself is freed.
func (s *Store) blobRIDs(name string) ([]records.RID, error) {
	s.mu.RLock()
	id, ok := s.entries[name]
	s.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	h, err := s.Get(name)
	if errors.Is(err, ErrCorrupt) {
		return []records.RID{id}, nil
	}
	if err != nil {
		return nil, err
	}
	rids := make([]records.RID, 0, len(h.sum.dir)+1)
	for _, e := range h.sum.dir {
		rids = append(rids, e.rid)
	}
	return append(rids, id), nil
}

// BlobRIDs lists every blob of name's stored index (posting lists and
// summary); nil when name has no index. The integrity scrubber uses it
// to attribute index pages to their document and to verify postings
// still point at live blobs.
func (s *Store) BlobRIDs(name string) ([]records.RID, error) {
	return s.blobRIDs(name)
}

// BlobSize returns the total serialized size of name's index in bytes
// (summary plus all posting blobs).
func (s *Store) BlobSize(name string) (int64, error) {
	s.mu.RLock()
	id, ok := s.entries[name]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("pathindex: no index for %q", name)
	}
	total, err := s.blobs.Size(id)
	if err != nil {
		return 0, err
	}
	h, err := s.Get(name)
	if err != nil {
		return 0, err
	}
	for _, e := range h.sum.dir {
		n, err := s.blobs.Size(e.rid)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// cacheAddLocked caches a decoded handle, evicting an arbitrary entry
// at the bound. Caller holds s.mu exclusively.
func (s *Store) cacheAddLocked(name string, h *Handle) {
	if _, ok := s.cache[name]; !ok && len(s.cache) >= maxCached {
		for evict := range s.cache {
			delete(s.cache, evict)
			break
		}
	}
	s.cache[name] = h
}

// InvalidateCache drops all decoded handles, forcing the next access
// to re-read summary and postings through the buffer pool.
func (s *Store) InvalidateCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.cache)
}

// Handle is a lazily loaded view of one document's index: the summary
// is resident, posting lists are read (and then kept) on first probe.
// Handles are shared between concurrent queries of the same document;
// the lazy loads are guarded by a per-handle lock. The summary itself
// is immutable once decoded.
type Handle struct {
	store *Store
	sum   *summary

	mu       sync.RWMutex // guards postings
	postings map[dict.LabelID][]Posting
}

// Path returns the summary node for id.
func (h *Handle) Path(id PathID) PathNode { return h.sum.paths[id] }

// NumPaths returns the number of distinct label paths.
func (h *Handle) NumPaths() int { return len(h.sum.paths) - 1 }

// NumNodes returns the total number of logical nodes in the document.
func (h *Handle) NumNodes() int { return int(h.sum.nodes) }

// RootLabel returns the label of the document root element.
func (h *Handle) RootLabel() dict.LabelID { return h.sum.root }

// PostingLabels returns the labels with a posting list, sorted. It
// reads only the resident directory.
func (h *Handle) PostingLabels() []dict.LabelID { return h.sum.labels() }

// PostingCount returns the number of postings of label without loading
// them.
func (h *Handle) PostingCount(label dict.LabelID) int {
	return int(h.sum.dir[label].count)
}

// PostingSize returns the serialized size in bytes of label's posting
// blob without loading it (0 when the label does not occur). Together
// with PostingCount this prices a query's posting reads before running
// it.
func (h *Handle) PostingSize(label dict.LabelID) (int64, error) {
	e, ok := h.sum.dir[label]
	if !ok {
		return 0, nil
	}
	return h.store.blobs.Size(e.rid)
}

// Postings returns the document-order posting list for label (nil when
// the label does not occur), loading it on first use. The slice is
// shared; callers must not modify it. Concurrent first probes of the
// same label may both read the blob; the first decoded list wins and
// is returned to everyone.
func (h *Handle) Postings(label dict.LabelID) ([]Posting, error) {
	h.mu.RLock()
	list, ok := h.postings[label]
	h.mu.RUnlock()
	if ok {
		return list, nil
	}
	e, ok := h.sum.dir[label]
	if !ok {
		return nil, nil
	}
	body, err := h.store.blobs.Read(e.rid)
	if err != nil {
		return nil, fmt.Errorf("pathindex: load postings of label %d: %w", label, err)
	}
	list, err = decodePostings(body, h.NumPaths())
	if err != nil {
		return nil, err
	}
	if len(list) != int(e.count) {
		return nil, fmt.Errorf("%w: label %d has %d postings, directory says %d",
			ErrCorrupt, label, len(list), e.count)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if cached, ok := h.postings[label]; ok {
		return cached, nil
	}
	h.postings[label] = list
	return list, nil
}

// Root returns the root posting (the element with sequence number 0).
func (h *Handle) Root() (Posting, bool, error) {
	list, err := h.Postings(h.sum.root)
	if err != nil {
		return Posting{}, false, err
	}
	if len(list) == 0 || list[0].Seq != 0 {
		return Posting{}, false, nil
	}
	return list[0], true, nil
}
