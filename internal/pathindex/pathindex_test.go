package pathindex_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"natix/internal/buffer"
	"natix/internal/core"
	"natix/internal/dict"
	"natix/internal/docstore"
	"natix/internal/pagedev"
	"natix/internal/pathindex"
	"natix/internal/records"
	"natix/internal/segment"
)

const play = `<PLAY>
<TITLE>The Tragedy of Indexing</TITLE>
<ACT><TITLE>Act I</TITLE>
<SCENE><TITLE>Scene I.1</TITLE>
<SPEECH><SPEAKER>ALPHA</SPEAKER><LINE>first line of one one</LINE><LINE>second line</LINE></SPEECH>
<SPEECH><SPEAKER>BETA</SPEAKER><LINE>beta speaks</LINE></SPEECH>
</SCENE>
<SCENE><TITLE>Scene I.2</TITLE>
<SPEECH><SPEAKER>GAMMA</SPEAKER><LINE>gamma opens scene two</LINE></SPEECH>
</SCENE>
</ACT>
<ACT><TITLE>Act II</TITLE>
<SCENE><TITLE>Scene II.1</TITLE>
<SPEECH><SPEAKER>DELTA</SPEAKER><LINE>delta in act two</LINE></SPEECH>
<SPEECH><SPEAKER>EPSILON</SPEAKER><LINE>epsilon follows</LINE></SPEECH>
</SCENE>
</ACT>
</PLAY>`

// env bundles the storage stack the index operates on.
type env struct {
	dev   pagedev.Device
	pool  *buffer.Pool
	rm    *records.Manager
	dict  *dict.Dict
	store *docstore.Store
}

func newEnv(t *testing.T, path string, pageSize int) *env {
	t.Helper()
	var (
		dev pagedev.Device
		err error
	)
	existing := false
	if path == "" {
		dev, err = pagedev.NewMem(pageSize)
	} else {
		if fi, serr := os.Stat(path); serr == nil && fi.Size() > 0 {
			existing = true
		}
		dev, err = pagedev.OpenFile(path, pageSize)
	}
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 512)
	if err != nil {
		t.Fatal(err)
	}
	var seg *segment.Segment
	if existing {
		seg, err = segment.Open(pool)
	} else {
		seg, err = segment.Create(pool)
	}
	if err != nil {
		t.Fatal(err)
	}
	rm := records.New(seg)
	var d *dict.Dict
	if existing {
		d, err = dict.Open(rm)
	} else {
		d, err = dict.Create(rm)
	}
	if err != nil {
		t.Fatal(err)
	}
	trees := core.New(rm, core.Config{})
	var s *docstore.Store
	if existing {
		s, err = docstore.Open(trees, d)
	} else {
		s, err = docstore.Create(trees, d)
	}
	if err != nil {
		t.Fatal(err)
	}
	return &env{dev: dev, pool: pool, rm: rm, dict: d, store: s}
}

// close flushes and releases the env so the file can be reopened.
func (e *env) close(t *testing.T) {
	t.Helper()
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.dev.Close(); err != nil {
		t.Fatal(err)
	}
}

func (e *env) importPlay(t *testing.T, name string) records.RID {
	t.Helper()
	info, err := e.store.ImportXML(name, strings.NewReader(play))
	if err != nil {
		t.Fatal(err)
	}
	return info.Root
}

func (e *env) label(t *testing.T, name string) dict.LabelID {
	t.Helper()
	id, ok := e.dict.Lookup(name)
	if !ok {
		t.Fatalf("label %q not in dictionary", name)
	}
	return id
}

// TestBuildSummaryAndPostings checks the path summary and posting lists
// of a small document, at a page size that forces record splits so
// postings cross scaffold records.
func TestBuildSummaryAndPostings(t *testing.T) {
	e := newEnv(t, "", 512)
	root := e.importPlay(t, "p")
	idx, err := pathindex.Build(e.store.Trees(), root)
	if err != nil {
		t.Fatal(err)
	}

	// Summary counts per distinct label path.
	wantCounts := map[string]uint32{
		"/PLAY":                          1,
		"/PLAY/TITLE":                    1,
		"/PLAY/ACT":                      2,
		"/PLAY/ACT/TITLE":                2,
		"/PLAY/ACT/SCENE":                3,
		"/PLAY/ACT/SCENE/TITLE":          3,
		"/PLAY/ACT/SCENE/SPEECH":         5,
		"/PLAY/ACT/SCENE/SPEECH/SPEAKER": 5,
		"/PLAY/ACT/SCENE/SPEECH/LINE":    6,
	}
	got := make(map[string]uint32)
	for id := pathindex.PathID(1); int(id) <= idx.NumPaths(); id++ {
		var parts []string
		for p := id; p != pathindex.NilPath; p = idx.Path(p).Parent {
			name, err := e.dict.Name(idx.Path(p).Label)
			if err != nil {
				t.Fatal(err)
			}
			parts = append([]string{name}, parts...)
		}
		got["/"+strings.Join(parts, "/")] = idx.Path(id).Count
	}
	if !reflect.DeepEqual(got, wantCounts) {
		t.Fatalf("summary = %v, want %v", got, wantCounts)
	}

	// Posting lists: document order, correct sizes, resolvable.
	speakers := idx.Postings(e.label(t, "SPEAKER"))
	if len(speakers) != 5 {
		t.Fatalf("SPEAKER postings = %d, want 5", len(speakers))
	}
	for i, p := range speakers {
		if i > 0 && p.Seq <= speakers[i-1].Seq {
			t.Fatalf("postings out of order at %d: %+v", i, speakers)
		}
		if p.Size != 1 { // each SPEAKER holds exactly one text literal
			t.Fatalf("SPEAKER size = %d, want 1", p.Size)
		}
		ref, err := e.store.Trees().RefByFacadeIndex(p.RID, int(p.Local))
		if err != nil {
			t.Fatal(err)
		}
		if ref.Label() != e.label(t, "SPEAKER") {
			t.Fatalf("posting %d resolved to label %d", i, ref.Label())
		}
	}

	// Containment: every SPEAKER lies in some SPEECH, each SPEECH in a
	// SCENE that contains it.
	speeches := idx.Postings(e.label(t, "SPEECH"))
	for _, sp := range speakers {
		found := false
		for _, speech := range speeches {
			if speech.Contains(sp) {
				found = true
			}
		}
		if !found {
			t.Fatalf("speaker %+v not contained in any speech", sp)
		}
	}
	if root, ok := idx.Root(); !ok || root.Seq != 0 || int(root.Size) != idx.NumNodes()-1 {
		t.Fatalf("root posting = %+v ok=%v nodes=%d", root, ok, idx.NumNodes())
	}
}

// TestPutGetRoundTrip stores an index and reloads it from disk in a
// fresh session, checking the reloaded form is equivalent to the built
// one (summary, directory, and lazily loaded postings).
func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "px.natix")
	e := newEnv(t, path, 512)
	root := e.importPlay(t, "p")
	idx, err := pathindex.Build(e.store.Trees(), root)
	if err != nil {
		t.Fatal(err)
	}
	px, err := pathindex.Open(e.rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Put("p", idx); err != nil {
		t.Fatal(err)
	}
	e.close(t)

	e2 := newEnv(t, path, 512)
	defer e2.close(t)
	px2, err := pathindex.Open(e2.rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := px2.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("index missing after reopen")
	}
	if got.NumNodes() != idx.NumNodes() || got.NumPaths() != idx.NumPaths() ||
		got.RootLabel() != idx.RootLabel() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d",
			got.NumNodes(), got.NumPaths(), got.RootLabel(),
			idx.NumNodes(), idx.NumPaths(), idx.RootLabel())
	}
	for id := pathindex.PathID(1); int(id) <= idx.NumPaths(); id++ {
		if got.Path(id) != idx.Path(id) {
			t.Fatalf("path %d: %+v vs %+v", id, got.Path(id), idx.Path(id))
		}
	}
	if !reflect.DeepEqual(got.PostingLabels(), idx.PostingLabels()) {
		t.Fatalf("labels: %v vs %v", got.PostingLabels(), idx.PostingLabels())
	}
	for _, l := range idx.PostingLabels() {
		list, err := got.Postings(l)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(list, idx.Postings(l)) {
			t.Fatalf("postings of %d differ", l)
		}
		if got.PostingCount(l) != len(list) {
			t.Fatalf("directory count of %d = %d, want %d", l, got.PostingCount(l), len(list))
		}
	}
	if r, ok, err := got.Root(); err != nil || !ok || r.Seq != 0 {
		t.Fatalf("Root() = %+v, %v, %v", r, ok, err)
	}
}

// TestStorePersistence stores indexes, drops one, and reopens the file
// to check the catalog and blobs survive.
func TestStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "px.natix")

	e := newEnv(t, path, 512)
	rootA := e.importPlay(t, "a")
	rootB := e.importPlay(t, "b")
	px, err := pathindex.Open(e.rm)
	if err != nil {
		t.Fatal(err)
	}
	idxA, err := pathindex.Build(e.store.Trees(), rootA)
	if err != nil {
		t.Fatal(err)
	}
	idxB, err := pathindex.Build(e.store.Trees(), rootB)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Put("a", idxA); err != nil {
		t.Fatal(err)
	}
	if err := px.Put("b", idxB); err != nil {
		t.Fatal(err)
	}
	if err := px.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if px.Has("b") {
		t.Fatal("b still present after drop")
	}
	wantSpeakers := len(idxA.Postings(e.label(t, "SPEAKER")))
	e.close(t)

	// Reopen from disk.
	e2 := newEnv(t, path, 512)
	defer e2.close(t)
	px2, err := pathindex.Open(e2.rm)
	if err != nil {
		t.Fatal(err)
	}
	if got := px2.Names(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("names = %v", got)
	}
	idx, err := px2.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if idx == nil {
		t.Fatal("index a missing after reopen")
	}
	speakers, err := idx.Postings(e2.label(t, "SPEAKER"))
	if err != nil {
		t.Fatal(err)
	}
	if len(speakers) != wantSpeakers {
		t.Fatalf("SPEAKER postings after reopen = %d, want %d", len(speakers), wantSpeakers)
	}
	if got, err := px2.Get("b"); err != nil || got != nil {
		t.Fatalf("Get(b) = %v, %v; want nil, nil", got, err)
	}
	if _, err := px2.BlobSize("a"); err != nil {
		t.Fatal(err)
	}
}
