package pathindex

import (
	"reflect"
	"testing"

	"natix/internal/dict"
	"natix/internal/records"
)

// sampleIndex builds a two-path index by hand: <A><B/></A>-shaped.
func sampleIndex() (*Index, map[dict.LabelID]dirEntry) {
	x := NewIndex()
	pA := x.InternPath(NilPath, 5)
	pB := x.InternPath(pA, 6)
	x.root = 5
	x.nodes = 2
	x.paths[pA].Count = 1
	x.paths[pB].Count = 1
	x.postings[5] = []Posting{{Seq: 0, Size: 1, RID: records.RID{Page: 3}, Local: 0, Path: pA}}
	x.postings[6] = []Posting{{Seq: 1, Size: 0, RID: records.RID{Page: 3}, Local: 1, Path: pB}}
	dir := map[dict.LabelID]dirEntry{
		5: {count: 1, rid: records.RID{Page: 7, Slot: 1}},
		6: {count: 1, rid: records.RID{Page: 7, Slot: 2}},
	}
	return x, dir
}

func TestSummaryCodecRoundTrip(t *testing.T) {
	x, dir := sampleIndex()
	sum, err := decodeSummary(encodeSummary(x, dir))
	if err != nil {
		t.Fatal(err)
	}
	if sum.root != x.root || sum.nodes != x.nodes || !reflect.DeepEqual(sum.paths, x.paths) {
		t.Fatalf("summary = %+v, want paths %+v root %d nodes %d", sum, x.paths, x.root, x.nodes)
	}
	if !reflect.DeepEqual(sum.dir, dir) {
		t.Fatalf("directory = %+v, want %+v", sum.dir, dir)
	}
}

func TestPostingsCodecRoundTrip(t *testing.T) {
	x, _ := sampleIndex()
	for label, want := range x.postings {
		got, err := decodePostings(encodePostings(want), x.NumPaths())
		if err != nil {
			t.Fatalf("label %d: %v", label, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("label %d: %+v, want %+v", label, got, want)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	x, dir := sampleIndex()
	sumBlob := encodeSummary(x, dir)
	postBlob := encodePostings(x.postings[6])

	if _, err := decodeSummary([]byte("junk")); err == nil {
		t.Error("decodeSummary accepted junk")
	}
	if _, err := decodeSummary(sumBlob[:17]); err == nil {
		t.Error("decodeSummary accepted a truncated blob")
	}
	if _, err := decodePostings([]byte("junk"), 2); err == nil {
		t.Error("decodePostings accepted junk")
	}
	if _, err := decodePostings(postBlob[:9], 2); err == nil {
		t.Error("decodePostings accepted a truncated blob")
	}
	// A posting whose path id exceeds the summary must be rejected, not
	// left to panic the evaluator later.
	if _, err := decodePostings(postBlob, 1); err == nil {
		t.Error("decodePostings accepted an out-of-range path id")
	}
	bad := encodePostings([]Posting{{Seq: 0, Path: NilPath}})
	if _, err := decodePostings(bad, 2); err == nil {
		t.Error("decodePostings accepted a nil path id")
	}
}
