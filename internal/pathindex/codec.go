package pathindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"natix/internal/dict"
	"natix/internal/records"
)

// On-disk layout. Each document's index is a *summary blob* plus one
// *postings blob per element label*, so a query only reads the posting
// lists of the labels its steps name — the summary and a handful of
// small blobs instead of one monolithic index.
//
//	summary blob ("NXPS"): version u16, root label u16, nodes u32,
//	    numPaths u32, numPaths × (parent u32, label u16, depth u16, count u32),
//	    numLabels u32, numLabels × (label u16, postings u32, blob RID 8)
//	postings blob ("NXPP"): count u32,
//	    count × (seq u32, size u32, rid 8, local u16, path u32)
//	catalog blob ("NXPC"): count u32, count × (len u16, name, summary RID 8)
const (
	summaryMagic  = "NXPS"
	postingsMagic = "NXPP"
	catalogMagic  = "NXPC"
	indexVersion  = 2

	pathNodeSize = 12
	dirEntrySize = 14
	postingSize  = 22
)

// ErrCorrupt reports an undecodable index blob.
var ErrCorrupt = errors.New("pathindex: corrupt index")

// dirEntry locates one label's posting list.
type dirEntry struct {
	count uint32
	rid   records.RID
}

// summary is the decoded form of a summary blob.
type summary struct {
	paths []PathNode // paths[0] unused; PathID indexes
	root  dict.LabelID
	nodes uint32
	dir   map[dict.LabelID]dirEntry
}

func encodeSummary(x *Index, dir map[dict.LabelID]dirEntry) []byte {
	labels := x.PostingLabels()
	out := make([]byte, 0, 16+x.NumPaths()*pathNodeSize+4+len(labels)*dirEntrySize)
	out = append(out, summaryMagic...)
	out = binary.LittleEndian.AppendUint16(out, indexVersion)
	out = binary.LittleEndian.AppendUint16(out, uint16(x.root))
	out = binary.LittleEndian.AppendUint32(out, x.nodes)
	out = binary.LittleEndian.AppendUint32(out, uint32(x.NumPaths()))
	for _, pn := range x.paths[1:] {
		out = binary.LittleEndian.AppendUint32(out, uint32(pn.Parent))
		out = binary.LittleEndian.AppendUint16(out, uint16(pn.Label))
		out = binary.LittleEndian.AppendUint16(out, pn.Depth)
		out = binary.LittleEndian.AppendUint32(out, pn.Count)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(labels)))
	var rid [records.RIDSize]byte
	for _, l := range labels {
		e := dir[l]
		out = binary.LittleEndian.AppendUint16(out, uint16(l))
		out = binary.LittleEndian.AppendUint32(out, e.count)
		e.rid.Put(rid[:])
		out = append(out, rid[:]...)
	}
	return out
}

func decodeSummary(b []byte) (*summary, error) {
	if len(b) < 16 || string(b[:4]) != summaryMagic {
		return nil, fmt.Errorf("%w: bad summary magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != indexVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, v)
	}
	s := &summary{
		paths: make([]PathNode, 1),
		root:  dict.LabelID(binary.LittleEndian.Uint16(b[6:])),
		nodes: binary.LittleEndian.Uint32(b[8:]),
		dir:   make(map[dict.LabelID]dirEntry),
	}
	numPaths := int(binary.LittleEndian.Uint32(b[12:]))
	pos := 16
	if pos+numPaths*pathNodeSize > len(b) {
		return nil, fmt.Errorf("%w: truncated summary", ErrCorrupt)
	}
	for i := 0; i < numPaths; i++ {
		pn := PathNode{
			Parent: PathID(binary.LittleEndian.Uint32(b[pos:])),
			Label:  dict.LabelID(binary.LittleEndian.Uint16(b[pos+4:])),
			Depth:  binary.LittleEndian.Uint16(b[pos+6:]),
			Count:  binary.LittleEndian.Uint32(b[pos+8:]),
		}
		if int(pn.Parent) >= len(s.paths) {
			return nil, fmt.Errorf("%w: summary parent %d out of order", ErrCorrupt, pn.Parent)
		}
		s.paths = append(s.paths, pn)
		pos += pathNodeSize
	}
	if pos+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated directory", ErrCorrupt)
	}
	numLabels := int(binary.LittleEndian.Uint32(b[pos:]))
	pos += 4
	if pos+numLabels*dirEntrySize > len(b) {
		return nil, fmt.Errorf("%w: truncated directory", ErrCorrupt)
	}
	for i := 0; i < numLabels; i++ {
		label := dict.LabelID(binary.LittleEndian.Uint16(b[pos:]))
		s.dir[label] = dirEntry{
			count: binary.LittleEndian.Uint32(b[pos+2:]),
			rid:   records.DecodeRID(b[pos+6 : pos+14]),
		}
		pos += dirEntrySize
	}
	return s, nil
}

// labels returns the directory's labels in sorted order.
func (s *summary) labels() []dict.LabelID {
	out := make([]dict.LabelID, 0, len(s.dir))
	for l := range s.dir {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func encodePostings(list []Posting) []byte {
	out := make([]byte, 0, 8+len(list)*postingSize)
	out = append(out, postingsMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(list)))
	var rid [records.RIDSize]byte
	for _, p := range list {
		out = binary.LittleEndian.AppendUint32(out, p.Seq)
		out = binary.LittleEndian.AppendUint32(out, p.Size)
		p.RID.Put(rid[:])
		out = append(out, rid[:]...)
		out = binary.LittleEndian.AppendUint16(out, p.Local)
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Path))
	}
	return out
}

// decodePostings decodes a postings blob, validating path references
// against the summary's path count.
func decodePostings(b []byte, numPaths int) ([]Posting, error) {
	if len(b) < 8 || string(b[:4]) != postingsMagic {
		return nil, fmt.Errorf("%w: bad postings magic", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	pos := 8
	if pos+count*postingSize > len(b) {
		return nil, fmt.Errorf("%w: truncated postings", ErrCorrupt)
	}
	list := make([]Posting, count)
	for j := range list {
		list[j] = Posting{
			Seq:   binary.LittleEndian.Uint32(b[pos:]),
			Size:  binary.LittleEndian.Uint32(b[pos+4:]),
			RID:   records.DecodeRID(b[pos+8 : pos+16]),
			Local: binary.LittleEndian.Uint16(b[pos+16:]),
			Path:  PathID(binary.LittleEndian.Uint32(b[pos+18:])),
		}
		if list[j].Path == NilPath || int(list[j].Path) > numPaths {
			return nil, fmt.Errorf("%w: posting path %d of %d", ErrCorrupt, list[j].Path, numPaths)
		}
		pos += postingSize
	}
	return list, nil
}
