// Package pathindex is a persistent structural index over tree-mode
// documents: for each document it keeps
//
//  1. a path summary — the trie of distinct root-to-node label paths
//     with per-path occurrence counts (Arion et al., "Path Summaries and
//     Path Partitioning in Modern XML Databases"), and
//  2. postings — for every element label, the document-order list of
//     logical node addresses carrying that label, each annotated with
//     its pre-order sequence number, subtree size and summary path.
//
// Together these answer the descendant steps (//NAME) of the query
// engine by probing the postings of NAME and filtering by containment
// and summary ancestry, instead of walking every record of the document.
//
// The index is derived data: it is rebuilt from the stored tree (drop +
// rebuild on delete/convert) and persisted as blobs through the record
// manager, so index pages flow through the buffer pool — and its I/O is
// accounted — like everything else.
package pathindex

import (
	"sort"

	"natix/internal/dict"
	"natix/internal/records"
)

// PathID identifies one node of the path summary. IDs are dense and
// start at 1; 0 is "no path" (the parent of the root path).
type PathID uint32

// NilPath is the parent of the root summary node.
const NilPath PathID = 0

// PathNode is one node of the path summary trie: a distinct label path
// from the document root.
type PathNode struct {
	Parent PathID       // summary parent; NilPath for the root path
	Label  dict.LabelID // last label of the path
	Depth  uint16       // number of labels on the path (root = 1)
	Count  uint32       // logical nodes with exactly this path
}

// Posting is one indexed element occurrence: a persistable logical node
// address plus the ordering information the evaluator filters on.
type Posting struct {
	Seq   uint32      // pre-order sequence number over all logical nodes
	Size  uint32      // logical nodes in the subtree below (descendants)
	RID   records.RID // record holding the node
	Local uint16      // facade index within that record (core.FacadeIndexer)
	Path  PathID      // summary path of the node
}

// Contains reports whether other lies in the subtree below p.
func (p Posting) Contains(other Posting) bool {
	return other.Seq > p.Seq && other.Seq <= p.Seq+p.Size
}

// Index is the in-memory form of one document's structural index.
type Index struct {
	paths    []PathNode // paths[0] is an unused sentinel; PathID indexes
	postings map[dict.LabelID][]Posting
	byPath   map[pathKey]PathID // trie edges, for interning during builds
	root     dict.LabelID       // label of the document root
	nodes    uint32             // total logical nodes (the seq space)
}

type pathKey struct {
	parent PathID
	label  dict.LabelID
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		paths:    make([]PathNode, 1),
		postings: make(map[dict.LabelID][]Posting),
		byPath:   make(map[pathKey]PathID),
	}
}

// InternPath returns the summary node for the path extending parent by
// label, adding it (with count 0) if it does not exist yet.
func (x *Index) InternPath(parent PathID, label dict.LabelID) PathID {
	k := pathKey{parent, label}
	if id, ok := x.byPath[k]; ok {
		return id
	}
	depth := uint16(1)
	if parent != NilPath {
		depth = x.paths[parent].Depth + 1
	}
	id := PathID(len(x.paths))
	x.paths = append(x.paths, PathNode{Parent: parent, Label: label, Depth: depth})
	x.byPath[k] = id
	return id
}

// Path returns the summary node for id.
func (x *Index) Path(id PathID) PathNode { return x.paths[id] }

// NumPaths returns the number of distinct label paths.
func (x *Index) NumPaths() int { return len(x.paths) - 1 }

// NumNodes returns the total number of logical nodes in the document.
func (x *Index) NumNodes() int { return int(x.nodes) }

// RootLabel returns the label of the document root element.
func (x *Index) RootLabel() dict.LabelID { return x.root }

// Root returns the root posting (the element with sequence number 0).
func (x *Index) Root() (Posting, bool) {
	for _, p := range x.postings[x.root] {
		if p.Seq == 0 {
			return p, true
		}
	}
	return Posting{}, false
}

// Postings returns the document-order posting list for label (nil when
// the label does not occur). The slice is shared; callers must not
// modify it.
func (x *Index) Postings(label dict.LabelID) []Posting { return x.postings[label] }

// PostingLabels returns the labels with a posting list, sorted.
func (x *Index) PostingLabels() []dict.LabelID {
	out := make([]dict.LabelID, 0, len(x.postings))
	for l := range x.postings {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Within returns the sub-slice of list contained in the subtree below
// ctx. Lists are sorted by Seq, so the range is found by binary search.
func Within(list []Posting, ctx Posting) []Posting {
	lo := sort.Search(len(list), func(i int) bool { return list[i].Seq > ctx.Seq })
	hi := sort.Search(len(list), func(i int) bool { return list[i].Seq > ctx.Seq+ctx.Size })
	return list[lo:hi]
}
