package pathindex

import (
	"errors"
	"testing"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/records"
	"natix/internal/segment"
)

func newRM(t *testing.T) *records.Manager {
	t.Helper()
	dev, err := pagedev.NewMem(512)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return records.New(seg)
}

// TestCorruptSummaryDoesNotWedge checks that a damaged summary blob
// still lets Drop (and therefore document Delete/Convert/reindex)
// clear the index, leaking rather than wedging.
func TestCorruptSummaryDoesNotWedge(t *testing.T) {
	rm := newRM(t)
	s, err := Open(rm)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sampleIndex()
	if err := s.Put("d", x); err != nil {
		t.Fatal(err)
	}

	// Flip the version field of the stored summary in place.
	id := s.entries["d"]
	body, err := s.blobs.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	body[4] ^= 0xFF
	newID, err := s.blobs.Overwrite(id, body)
	if err != nil {
		t.Fatal(err)
	}
	s.entries["d"] = newID
	s.InvalidateCache()

	if _, err := s.Get("d"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt summary = %v, want ErrCorrupt", err)
	}
	if err := s.Drop("d"); err != nil {
		t.Fatalf("Drop on corrupt summary failed: %v", err)
	}
	if s.Has("d") {
		t.Fatal("entry survived Drop")
	}
	// A fresh Put under the same name must succeed (the repair path).
	if err := s.Put("d", x); err != nil {
		t.Fatalf("Put after corrupt Drop failed: %v", err)
	}
	h, err := s.Get("d")
	if err != nil || h == nil {
		t.Fatalf("Get after repair = %v, %v", h, err)
	}
}
