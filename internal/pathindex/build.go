package pathindex

import (
	"fmt"
	"math"

	"natix/internal/core"
	"natix/internal/records"
)

// Build constructs the index for the tree rooted at root by one logical
// pre-order walk. Sequence numbers are assigned to every logical node
// (elements and text literals alike) so subtree sizes define containment,
// but only elements — non-literal facade nodes, including the "@name"
// attribute aggregates — get postings and summary paths.
//
// The resulting postings address nodes by (record RID, facade index);
// they stay valid until the document is mutated, at which point the
// index must be rebuilt.
func Build(trees *core.Store, root records.RID) (*Index, error) {
	b := &builder{trees: trees, idx: NewIndex(), fidx: core.NewFacadeIndexer()}
	rootRef, err := trees.OpenTree(root).Root()
	if err != nil {
		return nil, err
	}
	if rootRef.IsLiteral() {
		return nil, fmt.Errorf("pathindex: root of %s is a literal", root)
	}
	b.idx.root = rootRef.Label()
	if err := b.walk(rootRef, b.idx.InternPath(NilPath, rootRef.Label())); err != nil {
		return nil, err
	}
	b.idx.nodes = b.seq
	return b.idx, nil
}

type builder struct {
	trees *core.Store
	idx   *Index
	fidx  *core.FacadeIndexer // one facade walk per record, not per node
	seq   uint32              // next pre-order sequence number
}

// walk indexes the element at ref (whose summary path is path) and
// recurses over its logical children.
func (b *builder) walk(ref core.NodeRef, path PathID) error {
	seq := b.seq
	b.seq++
	local, err := b.fidx.Index(ref)
	if err != nil {
		return err
	}
	// Records are page-bounded (≤32K), so a facade index cannot reach
	// 64K through any valid store; guard against wrapping anyway.
	if local > math.MaxUint16 {
		return fmt.Errorf("pathindex: facade index %d exceeds uint16 in record %s", local, ref.RID())
	}
	label := ref.Label()
	b.idx.paths[path].Count++
	b.idx.postings[label] = append(b.idx.postings[label], Posting{
		Seq: seq, RID: ref.RID(), Local: uint16(local), Path: path,
	})
	slot := len(b.idx.postings[label]) - 1

	kids, err := b.trees.Children(ref)
	if err != nil {
		return err
	}
	for _, k := range kids {
		if k.IsLiteral() {
			b.seq++
			continue
		}
		if err := b.walk(k, b.idx.InternPath(path, k.Label())); err != nil {
			return err
		}
	}
	// The subtree size is known only now; the posting list may have been
	// reallocated by deeper appends, so index through the map again.
	b.idx.postings[label][slot].Size = b.seq - seq - 1
	return nil
}
