// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the module's own
// driver (internal/analysis).
//
// Expectations are trailing comments on the line the diagnostic is
// reported at:
//
//	u := f.BeginUpdate() // want "re-begun"
//	s.Mutate(...)        // want "acquired while" "re-acquired"
//
// Each quoted string is a regular expression. Every reported
// diagnostic must match at least one expectation on its line, and
// every expectation must match at least one diagnostic; fixtures are
// therefore exact both ways — positive cases prove the analyzer fires,
// clean declarations prove it stays quiet.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"natix/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies a to the fixture package in dir (registered under
// importPath) and reports any mismatch between diagnostics and // want
// expectations as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving %s: %v", dir, err)
	}
	findings, _, err := analysis.AnalyzeDir(abs, importPath, a)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}
	wants := parseWants(t, abs)

	for _, d := range findings {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants scans the fixture's non-test Go files for // want
// comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range wantArgRE.FindAllString(m[1], -1) {
				pattern, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re, raw: pattern})
			}
		}
	}
	return wants
}
