package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Result is one driver run: active findings plus the suppressed ones
// (kept so callers can report suppression counts — suppressions are
// visible, not silent).
type Result struct {
	Findings   []Diagnostic
	Suppressed []Diagnostic
}

// SuppressedByAnalyzer summarizes the suppressed findings per analyzer.
func (r *Result) SuppressedByAnalyzer() map[string]int {
	m := make(map[string]int)
	for _, d := range r.Suppressed {
		m[d.Analyzer]++
	}
	return m
}

// Run loads the packages matched by patterns (relative to the module
// containing dir) and applies the analyzers. Analyzers run over every
// loaded module package in dependency order — so cross-package facts
// are always complete — but only diagnostics for the matched packages
// are reported.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	targets, err := resolvePatterns(loader, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	for _, path := range targets {
		if _, err := loader.Load(path); err != nil {
			return nil, err
		}
	}
	// The engine set is derived from the root package's import graph;
	// load it even when the patterns don't cover it.
	if _, ok := loader.dirFor(loader.ModulePath); ok {
		if _, err := loader.Load(loader.ModulePath); err != nil {
			return nil, err
		}
	}

	engine := engineSet(loader)
	facts := NewFactStore()
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}

	res := &Result{}
	for _, path := range topoOrder(loader) {
		pkg := loader.pkgs[path]
		supp, badIgnores := collectSuppressions(loader.Fset, pkg.Files)
		var diags []Diagnostic
		for _, a := range analyzers {
			ds, err := runAnalyzer(a, loader, pkg, engine[path], facts)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, path, err)
			}
			diags = append(diags, ds...)
		}
		if !targetSet[path] {
			continue
		}
		active, suppressed := supp.apply(diags)
		res.Findings = append(res.Findings, active...)
		res.Findings = append(res.Findings, badIgnores...)
		res.Suppressed = append(res.Suppressed, suppressed...)
	}
	sortDiagnostics(res.Findings)
	sortDiagnostics(res.Suppressed)
	return res, nil
}

// runAnalyzer applies one analyzer to one loaded package and returns
// its raw (unsuppressed) diagnostics. Shared by the driver and the
// analysistest fixture runner.
func runAnalyzer(a *Analyzer, l *Loader, pkg *Package, engine bool, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       l.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		PkgPath:    pkg.Path,
		ModulePath: l.ModulePath,
		Engine:     engine,
		Facts:      facts,
		diags:      &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// engineSet computes the clock-disciplined packages: module-internal
// packages reachable from the root package's imports, excluding
// internal/telemetry (which implements the sanctioned clock). Derived
// mechanically so new engine packages are covered without touching a
// hardcoded list, while tooling packages (benchkit, this one) that the
// engine never imports stay exempt.
func engineSet(l *Loader) map[string]bool {
	reachable := make(map[string]bool)
	var visit func(path string)
	visit = func(path string) {
		if reachable[path] {
			return
		}
		reachable[path] = true
		pkg, ok := l.pkgs[path]
		if !ok {
			return
		}
		for _, imp := range pkg.Imports {
			if l.isModulePath(imp) {
				visit(imp)
			}
		}
	}
	visit(l.ModulePath)

	internal := l.ModulePath + "/internal/"
	telemetry := l.ModulePath + "/internal/telemetry"
	set := make(map[string]bool)
	for path := range reachable {
		if strings.HasPrefix(path, internal) && path != telemetry {
			set[path] = true
		}
	}
	return set
}

// topoOrder returns every loaded module package in dependency order
// (imports before importers), ties broken by path for determinism.
func topoOrder(l *Loader) []string {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		if pkg, ok := l.pkgs[path]; ok {
			for _, imp := range pkg.Imports {
				if l.isModulePath(imp) {
					visit(imp)
				}
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// resolvePatterns expands package patterns relative to the module root.
// Supported forms: "./..." (the whole module), "dir/..." (a subtree),
// and plain directories ("./internal/wal", "internal/wal", ".").
func resolvePatterns(l *Loader, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			root := l.ModuleDir
			if base != "" && base != "." {
				root = filepath.Join(l.ModuleDir, filepath.FromSlash(base))
			}
			if err := walkPackages(l, root, add); err != nil {
				return nil, err
			}
			continue
		}
		dir := l.ModuleDir
		if pat != "." {
			dir = filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		}
		path, ok := importPathFor(l, dir)
		if !ok {
			return nil, fmt.Errorf("%s is outside module %s", pat, l.ModulePath)
		}
		add(path)
	}
	sort.Strings(out)
	return out, nil
}

// walkPackages calls add for every directory under root that contains
// buildable Go files, skipping testdata, vendor, and hidden trees.
func walkPackages(l *Loader, root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		if imp, ok := importPathFor(l, path); ok {
			add(imp)
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || isTestFile(name) {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true
	}
	return false
}

func importPathFor(l *Loader, dir string) (string, bool) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}
