package analysis

import (
	"go/ast"
	"strings"
)

// Sentinelerr keeps the public error surface navigable: callers match
// failures with errors.Is against the facade's root sentinels
// (ErrDocNotFound, ErrBadQuery, ErrClosed, ErrCorrupted, ...), so every
// error constructed inside the facade package must wrap a sentinel with
// %w rather than mint an ad-hoc error. Two patterns are flagged, in the
// module root package only:
//
//   - errors.New inside a function body (package-level var declarations
//     are exactly how root sentinels are born, and stay allowed);
//   - fmt.Errorf whose literal format string has no %w verb.
//
// Engine packages keep their own package-local sentinels; the facade
// re-exports or wraps those, which is what this analyzer pins down.
var Sentinelerr = &Analyzer{
	Name: "sentinelerr",
	Doc: "check that facade errors wrap a root sentinel with %w " +
		"instead of minting ad-hoc errors",
	Run: runSentinelerr,
}

func runSentinelerr(pass *Pass) error {
	if pass.PkgPath != pass.ModulePath {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() + "." + fn.Name() {
				case "errors.New":
					pass.Reportf(call.Pos(), "ad-hoc errors.New on the public surface: wrap a root sentinel with fmt.Errorf(\"...: %%w\", Err...) so callers can errors.Is it")
				case "fmt.Errorf":
					if len(call.Args) == 0 {
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok {
						return true // dynamic format: cannot tell
					}
					if !strings.Contains(lit.Value, "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w on the public surface: wrap a root sentinel so callers can errors.Is it")
					}
				}
				return true
			})
		}
	}
	return nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Walbracket, Lockorder, Telemetryclock, Noalloc, Sentinelerr}
}
