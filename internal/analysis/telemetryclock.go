package analysis

import (
	"go/ast"
	"go/types"
)

// Telemetryclock replaces scripts/vet-telemetry-clock.sh: engine
// packages must read the clock through internal/telemetry (Now/Since),
// never time directly, so the simulated clock used by latency tests and
// the slow-op logger stays authoritative. The analyzer goes beyond the
// old grep in two ways: the package set is derived from the module (the
// internal packages reachable from the root package's import graph)
// instead of hardcoded, and timer construction (time.NewTimer/NewTicker/
// After/Tick/AfterFunc) is caught alongside time.Now/time.Since. Test
// files stay exempt — the driver never loads them. Using time.Time or
// time.Duration as types remains fine; only clock reads are flagged.
var Telemetryclock = &Analyzer{
	Name: "telemetryclock",
	Doc: "check that engine packages read the clock through " +
		"internal/telemetry instead of package time",
	Run: runTelemetryclock,
}

// bannedTimeFuncs are the package time functions that read or schedule
// against the real clock.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"Sleep":     true,
}

func runTelemetryclock(pass *Pass) error {
	if !pass.Engine {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s in engine package %s: use telemetry.Now/telemetry.Since so the instrumented clock stays authoritative",
					fn.Name(), pass.PkgPath)
			}
			return true
		})
	}
	return nil
}
