package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks module packages from source. Module-internal
// import paths are resolved against the module directory and loaded
// recursively (so every analyzer sees one consistent types.Package per
// import path, with full syntax for the whole module); everything else
// — the standard library — is delegated to the compiler's source
// importer. The loader is lazy and memoizing: each package is parsed
// and checked at most once per Loader.
type Loader struct {
	Fset *token.FileSet
	// ModuleDir is the absolute directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod ("natix").
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// A Package is one loaded, type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports (all of them, stdlib
	// included), for topological ordering and engine-set derivation.
	Imports []string
}

// NewLoader finds the enclosing module of dir and returns a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  modDir,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the first go.mod and returns its
// directory and declared module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load returns the module package with the given import path, loading
// it (and, recursively, its module-internal imports) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("%s is not a package of module %s", path, l.ModulePath)
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the non-test Go files of dir,
// registering the result under importPath. Used directly by the fixture
// runner to load testdata packages under synthetic import paths.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w (and %d more)", importPath, typeErrs[0], len(typeErrs)-1)
	}

	pkg := &Package{
		Path:    importPath,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: imports,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load through
// the Loader (one shared types.Package per path module-wide), all
// others through the compiler's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.isModulePath(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	rest, ok := strings.CutPrefix(path, l.ModulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
}

// parseDir parses the buildable non-test Go files of dir with comments
// (the suppression and annotation grammars live in comments).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || isTestFile(name) {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
