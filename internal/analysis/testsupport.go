package analysis

import "strings"

// AnalyzeDir loads the single package in dir under importPath, runs one
// analyzer over it, and applies //natix:vet-ignore suppressions.
// This is the entry point for the analysistest fixture runner: the
// import path is the fixture's knob for path-sensitive analyzers
// (sentinelerr fires only on the module root package; telemetryclock
// only on engine packages, approximated here as module-internal paths
// outside internal/telemetry — the real driver derives the set from the
// root package's import graph).
func AnalyzeDir(dir, importPath string, a *Analyzer) (findings, suppressed []Diagnostic, err error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		return nil, nil, err
	}
	engine := strings.HasPrefix(importPath, loader.ModulePath+"/internal/") &&
		importPath != loader.ModulePath+"/internal/telemetry"
	diags, err := runAnalyzer(a, loader, pkg, engine, NewFactStore())
	if err != nil {
		return nil, nil, err
	}
	supp, badIgnores := collectSuppressions(loader.Fset, pkg.Files)
	findings, suppressed = supp.apply(diags)
	findings = append(findings, badIgnores...)
	sortDiagnostics(findings)
	sortDiagnostics(suppressed)
	return findings, suppressed, nil
}
