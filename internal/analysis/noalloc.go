package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// noallocMarker annotates a function whose steady-state path must not
// allocate (the PR 7 discipline, guarded dynamically by
// TestQueryZeroAlloc). Grammar: a `//natix:noalloc` line in the
// function's doc comment. The analyzer then flags AST constructs that
// defeat the discipline; deliberate cold-path allocations (corrupt-
// input errors, arena growth) carry //natix:vet-ignore suppressions.
const noallocMarker = "natix:noalloc"

// Noalloc enforces the zero-allocation discipline on annotated warm-
// path functions: no closures, no map/slice literals or makes, no
// append to a function-local slice (appending into a caller-owned or
// pooled buffer is fine), no fmt/errors.New calls, and no interface
// conversions of non-pointer values (boxing allocates; pointers don't).
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc: "flag allocating constructs in functions annotated " +
		"//natix:noalloc (the PR 7 warm-path discipline)",
	Run: runNoalloc,
}

func runNoalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocMarker(fd.Doc) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func hasNoallocMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == noallocMarker || strings.HasPrefix(text, noallocMarker+" ") {
			return true
		}
	}
	return false
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	c := &naChecker{pass: pass, owned: make(map[types.Object]bool)}
	// Parameters and the receiver are caller-owned: appending into
	// them (ChildrenAppend's buf) reuses caller capacity by contract.
	if fd.Recv != nil {
		c.addOwned(fd.Recv.List)
	}
	c.addOwned(fd.Type.Params.List)
	if fd.Type.Results != nil {
		c.addOwned(fd.Type.Results.List)
	}
	c.sig, _ = pass.Info.Defs[fd.Name].Type().(*types.Signature)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //natix:noalloc function: a captured-variable closure allocates")
			return false // the closure flag covers its body
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.ReturnStmt:
			c.returnStmt(n)
		case *ast.AssignStmt:
			c.assign(n)
		}
		return true
	})
}

type naChecker struct {
	pass  *Pass
	owned map[types.Object]bool
	sig   *types.Signature
}

func (c *naChecker) addOwned(fields []*ast.Field) {
	for _, f := range fields {
		for _, name := range f.Names {
			if obj := c.pass.Info.Defs[name]; obj != nil {
				c.owned[obj] = true
			}
		}
	}
}

func (c *naChecker) compositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal in //natix:noalloc function allocates")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal in //natix:noalloc function allocates")
	}
}

func (c *naChecker) call(call *ast.CallExpr) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if obj := c.pass.Info.Uses[id]; obj != nil && obj.Pkg() == nil {
				c.pass.Reportf(call.Pos(), "make in //natix:noalloc function allocates")
			}
			return
		case "append":
			if obj := c.pass.Info.Uses[id]; obj != nil && obj.Pkg() == nil {
				c.checkAppend(call)
			}
			return
		}
	}
	// Banned packages: fmt anywhere, errors.New (errors.Is/As are
	// allocation-free and allowed).
	if fn := calleeFunc(c.pass.Info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			c.pass.Reportf(call.Pos(), "fmt.%s in //natix:noalloc function allocates (boxing and formatting)", fn.Name())
		case "errors":
			if fn.Name() == "New" {
				c.pass.Reportf(call.Pos(), "errors.New in //natix:noalloc function allocates")
			}
		}
	}
	// Interface conversions at the call boundary.
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // type conversion, not a call
	}
	sig, ok := types.Unalias(tv.Type).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkIfaceConv(pt, arg)
	}
}

// checkAppend flags appends whose base slice is a function-local
// variable: growth lands on the heap with no pooled or caller-owned
// backing. Appending into parameters, the receiver, struct fields, or
// dereferenced pointers is the sanctioned pattern.
func (c *naChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := objectOf(c.pass.Info, id)
	if obj == nil || c.owned[obj] {
		return
	}
	if _, isVar := obj.(*types.Var); isVar {
		c.pass.Reportf(call.Pos(), "append to function-local slice %q in //natix:noalloc function may allocate; append into a caller-owned or pooled buffer", id.Name)
	}
}

func (c *naChecker) returnStmt(ret *ast.ReturnStmt) {
	if c.sig == nil || len(ret.Results) != c.sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		c.checkIfaceConv(c.sig.Results().At(i).Type(), r)
	}
}

func (c *naChecker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		tv, ok := c.pass.Info.Types[lhs]
		if !ok || tv.Type == nil {
			continue
		}
		c.checkIfaceConv(tv.Type, s.Rhs[i])
	}
}

// checkIfaceConv flags storing a non-pointer concrete value into an
// interface: the value is boxed on the heap. Pointer-shaped values
// (pointers, maps, channels, funcs) box without allocating.
func (c *naChecker) checkIfaceConv(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(types.Unalias(dst)) {
		return
	}
	tv, ok := c.pass.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	st := types.Unalias(tv.Type)
	if types.IsInterface(st) {
		return
	}
	switch u := st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0 {
			return
		}
	}
	c.pass.Reportf(src.Pos(), "interface conversion of non-pointer %s in //natix:noalloc function allocates", tv.Type.String())
}
