// Package analysis is a self-contained static-analysis framework for
// the natix module, mirroring the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) on the standard library's go/ast,
// go/parser, go/types, and go/importer only. The module carries no
// external dependencies, so the x/tools driver stack is reimplemented
// here: a module-aware loader (loader.go), a package-ordered driver with
// cross-package facts (driver.go), //natix:vet-ignore suppression
// (suppress.go), and an analysistest-style fixture runner
// (analysistest/). The analyzers themselves — walbracket, lockorder,
// telemetryclock, noalloc, sentinelerr — each enforce one engine
// invariant; see DESIGN.md "Static analysis".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one invariant check. Run is invoked once per
// package, in import-graph topological order, so facts exported for a
// package's dependencies are always visible when the package itself is
// analyzed.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers filters,
	// and JSON output. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by natix-vet -list.
	Doc string
	// Run analyzes one package. Diagnostics are reported through
	// pass.Reportf; the error return is reserved for analyzer failures
	// (not findings).
	Run func(*Pass) error
}

// A Pass is the interface between the driver and one Analyzer.Run call:
// one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files. Test files are exempt
	// from every invariant by construction: the driver never loads
	// them.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// PkgPath is the import path ("natix/internal/buffer").
	PkgPath string
	// ModulePath is the module root import path ("natix").
	ModulePath string
	// Engine reports whether this package belongs to the
	// clock-disciplined engine set: module-internal packages reachable
	// from the root package's import graph, excluding
	// internal/telemetry itself. Derived by the driver from the module,
	// not hardcoded.
	Engine bool
	// Facts carries cross-package analyzer state (per-function lock
	// summaries, for lockorder). Packages are processed in dependency
	// order, so facts for imported packages are complete by the time a
	// dependent package runs.
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is set by the driver when a //natix:vet-ignore comment
	// covers the diagnostic's line; SuppressReason carries the
	// annotation's mandatory reason text.
	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A FactStore holds cross-package facts keyed by (package path, key).
// Safe for concurrent reads after the writing package has been
// processed; the driver serializes writes by processing packages one at
// a time.
type FactStore struct {
	mu sync.RWMutex
	m  map[string]map[string]any
}

func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]any)}
}

// Set records a fact for pkgPath under key.
func (fs *FactStore) Set(pkgPath, key string, v any) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pkg := fs.m[pkgPath]
	if pkg == nil {
		pkg = make(map[string]any)
		fs.m[pkgPath] = pkg
	}
	pkg[key] = v
}

// Get retrieves a fact recorded by Set.
func (fs *FactStore) Get(pkgPath, key string) (any, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	v, ok := fs.m[pkgPath][key]
	return v, ok
}

// sortDiagnostics orders findings by file, line, column, analyzer — the
// stable presentation order for both text and JSON output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// isTestFile reports whether a file name is a Go test file.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
