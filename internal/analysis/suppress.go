package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// vetIgnoreMarker is the suppression annotation. Grammar:
//
//	//natix:vet-ignore <reason>
//
// The reason is mandatory. The annotation suppresses diagnostics on its
// own line (trailing form) and on the line immediately below
// (standalone form). The driver counts suppressed findings per analyzer
// and reports the totals, so suppressions stay visible.
const vetIgnoreMarker = "natix:vet-ignore"

// suppressions maps filename → covered line → reason for one package.
type suppressions struct {
	m map[string]map[int]string
}

// collectSuppressions scans a package's comments for vet-ignore
// annotations. Annotations with an empty reason do not suppress
// anything; they are returned as diagnostics in their own right.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (*suppressions, []Diagnostic) {
	s := &suppressions{m: make(map[string]map[int]string)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, vetIgnoreMarker)
				if !ok {
					continue
				}
				reason := strings.TrimSpace(rest)
				pos := fset.Position(c.Slash)
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "vet-ignore",
						Message:  "//natix:vet-ignore requires a reason",
					})
					continue
				}
				lines := s.m[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					s.m[pos.Filename] = lines
				}
				lines[pos.Line] = reason
				if _, taken := lines[pos.Line+1]; !taken {
					lines[pos.Line+1] = reason
				}
			}
		}
	}
	return s, bad
}

// apply partitions diags into active findings and suppressed ones,
// stamping the suppression reason on the latter.
func (s *suppressions) apply(diags []Diagnostic) (active, suppressed []Diagnostic) {
	for _, d := range diags {
		if reason, ok := s.m[d.Pos.Filename][d.Pos.Line]; ok {
			d.Suppressed = true
			d.SuppressReason = reason
			suppressed = append(suppressed, d)
			continue
		}
		active = append(active, d)
	}
	return active, suppressed
}
