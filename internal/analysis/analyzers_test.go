package analysis_test

import (
	"testing"

	"natix/internal/analysis"
	"natix/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package: the want comments are
// the positive cases, the clean declarations the negative ones.

func TestWalbracket(t *testing.T) {
	analysistest.Run(t, analysis.Walbracket,
		"testdata/src/walbracket/a", "natix/vetfixture/walbracket")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysis.Lockorder,
		"testdata/src/lockorder/a", "natix/vetfixture/lockorder")
}

func TestTelemetryclockEngine(t *testing.T) {
	analysistest.Run(t, analysis.Telemetryclock,
		"testdata/src/telemetryclock/engine", "natix/internal/enginefixture")
}

// TestTelemetryclockOutsideEngine proves behavior parity with the old
// shell script's exemptions: the same clock reads are fine outside the
// engine package set.
func TestTelemetryclockOutsideEngine(t *testing.T) {
	analysistest.Run(t, analysis.Telemetryclock,
		"testdata/src/telemetryclock/outside", "natix/benchfixture")
}

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysis.Noalloc,
		"testdata/src/noalloc/a", "natix/vetfixture/noalloc")
}

func TestSentinelerr(t *testing.T) {
	analysistest.Run(t, analysis.Sentinelerr,
		"testdata/src/sentinelerr/a", "natix")
}

// TestSentinelerrOffRoot checks the analyzer is scoped to the module
// root: the same source under an internal path reports nothing.
func TestSentinelerrOffRoot(t *testing.T) {
	findings, _, err := analysis.AnalyzeDir(
		"testdata/src/sentinelerr/a", "natix/internal/notfacade", analysis.Sentinelerr)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("sentinelerr fired off the module root: %v", findings)
	}
}

// TestNoallocSuppression pins the vet-ignore pipeline: the suppressed
// make in the fixture lands in the suppressed list with its reason,
// not in the findings.
func TestNoallocSuppression(t *testing.T) {
	findings, suppressed, err := analysis.AnalyzeDir(
		"testdata/src/noalloc/a", "natix/vetfixture/noalloc", analysis.Noalloc)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range findings {
		if d.Suppressed {
			t.Errorf("suppressed diagnostic in findings: %s", d)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly 1", suppressed)
	}
	if got := suppressed[0].SuppressReason; got != "cold path sizing" {
		t.Errorf("suppression reason = %q, want %q", got, "cold path sizing")
	}
}
