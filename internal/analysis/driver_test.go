package analysis

import (
	"strings"
	"testing"
)

// TestEngineSetDerivation pins the telemetryclock package set to the
// module's actual import graph: everything the old shell script
// hardcoded must be covered, the telemetry package itself and the
// tooling packages the engine never imports must not be.
func TestEngineSetDerivation(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(l.ModulePath); err != nil {
		t.Fatal(err)
	}
	set := engineSet(l)

	// The packages the retired scripts/vet-telemetry-clock.sh checked.
	script := []string{
		"internal/buffer", "internal/wal", "internal/core",
		"internal/docstore", "internal/records", "internal/pathindex",
		"internal/segment", "internal/blobstore",
	}
	for _, p := range script {
		if !set[l.ModulePath+"/"+p] {
			t.Errorf("engine set is missing %s (the shell script covered it)", p)
		}
	}
	for path := range set {
		if path == l.ModulePath+"/internal/telemetry" {
			t.Error("engine set must exclude internal/telemetry (it implements the clock)")
		}
		if strings.Contains(path, "internal/analysis") || strings.Contains(path, "internal/benchkit") {
			t.Errorf("engine set includes tooling package %s, which the root package never imports", path)
		}
	}
}

func TestResolvePatterns(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	all, err := resolvePatterns(l, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		l.ModulePath: true, // the facade
		l.ModulePath + "/internal/buffer":   true,
		l.ModulePath + "/internal/analysis": true,
		l.ModulePath + "/cmd/natix-vet":     true,
	}
	got := make(map[string]bool, len(all))
	for _, p := range all {
		got[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("pattern expansion leaked a testdata package: %s", p)
		}
	}
	for p := range want {
		if !got[p] {
			t.Errorf("./... did not match %s (got %d packages)", p, len(all))
		}
	}

	one, err := resolvePatterns(l, []string{"./internal/wal"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != l.ModulePath+"/internal/wal" {
		t.Errorf("./internal/wal resolved to %v", one)
	}
}

// TestVetIgnoreRequiresReason: a bare //natix:vet-ignore is itself a
// finding, not a working suppression.
func TestVetIgnoreRequiresReason(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/suppress/bare", "natix/vetfixture/bare")
	if err != nil {
		t.Fatal(err)
	}
	_, bad := collectSuppressions(l.Fset, pkg.Files)
	if len(bad) != 1 {
		t.Fatalf("bare vet-ignore diagnostics = %v, want exactly 1", bad)
	}
	if !strings.Contains(bad[0].Message, "requires a reason") {
		t.Errorf("unexpected message: %s", bad[0].Message)
	}
}
