// Fixture for sentinelerr, loaded under the module root import path:
// the facade may declare package-level sentinels and wrap them with
// %w, but never mint ad-hoc errors inside function bodies.
package natix

import (
	"errors"
	"fmt"
)

// ErrRoot is how root sentinels are declared: package-level errors.New
// stays allowed.
var ErrRoot = errors.New("natix: root failure")

func adHoc() error {
	return errors.New("natix: oops") // want "ad-hoc errors.New"
}

func unwrapped(n int) error {
	return fmt.Errorf("natix: bad page %d", n) // want "without %w"
}

func wrapped(n int) error {
	return fmt.Errorf("natix: bad page %d: %w", n, ErrRoot)
}

func passthrough(err error) error {
	return fmt.Errorf("natix: open: %w", err)
}
