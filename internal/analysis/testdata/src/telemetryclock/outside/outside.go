// Fixture for telemetryclock, loaded under a non-engine import path:
// packages outside the engine set (the bench harness, cmd/ tooling)
// may read the real clock freely.
package outside

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func nap() {
	time.Sleep(time.Millisecond)
}
