// Fixture for telemetryclock, loaded under an engine import path
// (natix/internal/...): direct clock reads are flagged; using
// time.Time and time.Duration as types is fine.
package engine

import "time"

const tick = 50 * time.Millisecond

type span struct {
	start time.Time
	d     time.Duration
}

func (s *span) age() time.Duration {
	return time.Since(s.start) // want "time.Since"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func timer() *time.Timer {
	return time.NewTimer(tick) // want "time.NewTimer"
}

func nap() {
	time.Sleep(tick) // want "time.Sleep"
}

// typesOnly uses time purely for types and arithmetic: allowed.
func typesOnly(d time.Duration) time.Duration {
	return d + tick
}
