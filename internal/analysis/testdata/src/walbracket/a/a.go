// Fixture for the walbracket analyzer: positive cases carry want
// expectations, the clean brackets prove the analyzer stays quiet on
// the idiomatic shapes used across internal/records and
// internal/segment.
package a

import (
	"errors"

	"natix/internal/buffer"
)

var errBad = errors.New("bad")

func cond() bool { return false }

// goodBranch is the canonical bracket: EndUpdate on success,
// CancelUpdate on the failure path.
func goodBranch(f *buffer.Frame) error {
	u := f.BeginUpdate()
	if cond() {
		f.CancelUpdate(u)
		return errBad
	}
	return f.EndUpdate(u)
}

// goodIfElse closes on both arms before the common exit.
func goodIfElse(f *buffer.Frame) error {
	u := f.BeginUpdate()
	var err error
	if cond() {
		err = f.EndUpdate(u)
	} else {
		f.CancelUpdate(u)
	}
	return err
}

// goodDefer: a deferred close covers every exit.
func goodDefer(f *buffer.Frame) error {
	u := f.BeginUpdate()
	defer f.CancelUpdate(u)
	if cond() {
		return errBad
	}
	return nil
}

// goodReuse re-begins a closed token, the records.Update stub-path
// shape.
func goodReuse(f *buffer.Frame) error {
	u := f.BeginUpdate()
	f.CancelUpdate(u)
	u = f.BeginUpdate()
	return f.EndUpdate(u)
}

// goodLoop opens and closes within each iteration.
func goodLoop(f *buffer.Frame) error {
	for i := 0; i < 3; i++ {
		u := f.BeginUpdate()
		if cond() {
			f.CancelUpdate(u)
			continue
		}
		if err := f.EndUpdate(u); err != nil {
			return err
		}
	}
	return nil
}

func leakOnError(f *buffer.Frame) error {
	u := f.BeginUpdate()
	if cond() {
		return errBad // want "still open at this return"
	}
	return f.EndUpdate(u)
}

func leakAtEnd(f *buffer.Frame) {
	u := f.BeginUpdate()
	if cond() {
		f.CancelUpdate(u)
		return
	}
} // want "still open at the end of the function"

func leakOnPanic(f *buffer.Frame) error {
	u := f.BeginUpdate()
	if cond() {
		panic("boom") // want "still open at this panic"
	}
	return f.EndUpdate(u)
}

func doubleClose(f *buffer.Frame) {
	u := f.BeginUpdate()
	_ = f.EndUpdate(u)
	f.CancelUpdate(u) // want "closed twice"
}

func discarded(f *buffer.Frame) {
	_ = f.BeginUpdate() // want "discarded"
}

func unassigned(f *buffer.Frame) {
	f.BeginUpdate() // want "must be assigned"
}

func rebegun(f *buffer.Frame) {
	u := f.BeginUpdate()
	u = f.BeginUpdate() // want "re-begun while still open"
	f.CancelUpdate(u)
}

func loopLeak(f *buffer.Frame) {
	for i := 0; i < 3; i++ {
		u := f.BeginUpdate() // want "begun in a loop body"
		if cond() {
			f.CancelUpdate(u)
			continue
		}
	}
}
