// Fixture: a vet-ignore with no reason must be reported, not honored.
package bare

//natix:vet-ignore
func shrug() {}
