// Fixture for the lockorder analyzer. The tracked levels reachable
// from outside their packages are the document lock and writer mutex
// (through the Store.View/Mutate wrappers) and the frame latch
// (Latch/Unlatch), which is enough to exercise inversion detection,
// single-instance re-acquisition, summary propagation through local
// helpers, and the goroutine and defer special cases.
package a

import (
	"natix/internal/buffer"
	"natix/internal/docstore"
)

// goodOrder takes the document lock (via the View wrapper) before
// latching a frame inside the callback: levels 2 then 5.
func goodOrder(s *docstore.Store, f *buffer.Frame) {
	_ = s.View("doc", func() error {
		f.Latch()
		f.Unlatch()
		return nil
	})
}

// goodSequential releases the latch before the next acquisition, so
// the two never nest.
func goodSequential(s *docstore.Store, f *buffer.Frame) {
	f.Latch()
	f.Unlatch()
	_ = s.Mutate("doc", func() error { return nil })
}

// goodMultiLatch: frame latches are multi-instance; holding two at
// once is the legitimate page-split pattern.
func goodMultiLatch(f, g *buffer.Frame) {
	f.Latch()
	g.Latch()
	g.Unlatch()
	f.Unlatch()
}

// goodGoroutine: the spawner holds a latch, but the goroutine starts
// with an empty held set, so its Mutate is in order.
func goodGoroutine(s *docstore.Store, f *buffer.Frame) {
	f.Latch()
	done := make(chan struct{})
	go func() {
		_ = s.Mutate("doc", func() error { return nil })
		close(done)
	}()
	<-done
	f.Unlatch()
}

func invertedView(s *docstore.Store, f *buffer.Frame) {
	f.Latch()
	_ = s.View("doc", func() error { return nil }) // want "acquired while frame latch"
	f.Unlatch()
}

func nestedMutate(s *docstore.Store) {
	_ = s.Mutate("a", func() error {
		return s.Mutate("b", func() error { return nil }) // want "acquired while writer mutex" "re-acquired while already held"
	})
}

func mutateHelper(s *docstore.Store) {
	_ = s.Mutate("doc", func() error { return nil })
}

// invertedViaHelper: the helper's summary ({document lock, wmu})
// propagates to the call site, where a latch is already held.
func invertedViaHelper(s *docstore.Store, f *buffer.Frame) {
	f.Latch()
	mutateHelper(s) // want "call to mutateHelper acquires"
	f.Unlatch()
}

// deferHeld: a deferred unlock does not release early, so the Mutate
// below still inverts against the held latch.
func deferHeld(s *docstore.Store, f *buffer.Frame) {
	f.Latch()
	defer f.Unlatch()
	_ = s.View("doc", func() error { return nil }) // want "acquired while frame latch"
}
