// Fixture for the noalloc analyzer: constructs that defeat the PR 7
// zero-allocation discipline inside //natix:noalloc functions, and the
// sanctioned patterns that must stay quiet.
package a

import (
	"errors"
	"fmt"
)

func sink(v any) {}

// hot is the sanctioned warm-path shape: append into the caller-owned
// buffer, no allocating constructs.
//
//natix:noalloc
func hot(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

type pooled struct {
	scratch []int
}

// hotField appends into a pooled struct field: allowed.
//
//natix:noalloc
func (p *pooled) hotField(n int) {
	p.scratch = append(p.scratch, n)
}

//natix:noalloc
func badLiterals(n int) int {
	s := []int{1, 2}         // want "slice literal"
	m := map[int]int{n: n}   // want "map literal"
	b := make([]byte, n)     // want "make"
	return len(s) + len(m) + len(b)
}

//natix:noalloc
func badAppend(n int) int {
	var locals []int
	locals = append(locals, n) // want "append to function-local slice"
	return len(locals)
}

//natix:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want "closure"
}

//natix:noalloc
func badBoxing(n int) {
	sink(n) // want "interface conversion of non-pointer"
}

// goodBoxing passes a pointer: boxing a pointer does not allocate.
//
//natix:noalloc
func goodBoxing(p *pooled) {
	sink(p)
}

//natix:noalloc
func badFmt() error {
	return fmt.Errorf("boom") // want "fmt.Errorf"
}

//natix:noalloc
func badErrorsNew() error {
	return errors.New("boom") // want "errors.New"
}

// suppressed shows the vet-ignore escape hatch for deliberate
// cold-path allocations; the driver reports it in the suppression
// count instead of failing.
//
//natix:noalloc
func suppressed(n int) []int {
	out := make([]int, n) //natix:vet-ignore cold path sizing
	return out
}

// unannotated functions allocate freely.
func cold(n int) []int {
	return make([]int, n)
}
