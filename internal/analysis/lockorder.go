package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder enforces the documented lock hierarchy:
//
//	1. DB.mu            lifecycle RWMutex (facade)
//	2. document lock    per-document RWMutex from Store.lockFor
//	3. Store.wmu        store-wide writer mutex
//	4. Segment.allocMu  allocator mutex (serializes device growth)
//	5. Frame latch      per-frame latch (Latch/RLatch or Frame.latch)
//
// A function may acquire a level only while holding strictly lower
// levels. The analyzer computes a per-function summary of the levels
// the function (transitively) acquires — iterated to a fixpoint within
// the package, exported as facts across packages — and flags any
// acquisition or call that inverts the hierarchy, plus re-acquisition
// of a held single-instance level (1, 3, 4; document locks and frame
// latches are multi-instance: ImportXMLBatch legitimately takes many
// document locks in sorted order). Wrapper helpers (Store.View/Mutate/
// runOp, DB.view/viewE) are modeled: a function literal passed to
// Mutate is analyzed as holding the document lock and wmu. Goroutine
// bodies start with an empty held set; deferred unlocks do not release
// early.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "check lock/latch acquisitions against the engine lock " +
		"hierarchy (DB.mu → document lock → wmu → allocMu → frame latch)",
	Run: runLockorder,
}

// Hierarchy levels. Zero means "not a tracked lock".
const (
	lvlLifecycle = 1 // natix.DB.mu
	lvlDocument  = 2 // docstore per-document lock
	lvlWriter    = 3 // docstore.Store.wmu
	lvlAlloc     = 4 // segment.Segment.allocMu
	lvlLatch     = 5 // buffer.Frame latch
)

var lvlName = map[int]string{
	lvlLifecycle: "DB.mu (level 1)",
	lvlDocument:  "document lock (level 2)",
	lvlWriter:    "writer mutex wmu (level 3)",
	lvlAlloc:     "segment allocMu (level 4)",
	lvlLatch:     "frame latch (level 5)",
}

// singleInstance marks levels with exactly one lock object, where
// re-acquisition is a self-deadlock rather than a legitimate
// multi-lock protocol.
var singleInstance = map[int]bool{lvlLifecycle: true, lvlWriter: true, lvlAlloc: true}

const lockFactPrefix = "lockorder:"

func runLockorder(pass *Pass) error {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	local := make(map[string][]int)
	// Fixpoint over the package's call graph: summaries only grow, so
	// iteration count is bounded by functions × levels.
	for range len(fns) + 2 {
		changed := false
		for _, fd := range fns {
			full := declFullName(pass, fd)
			if full == "" {
				continue
			}
			sum := lockAnalyzeFunc(pass, fd, local, false)
			if !equalIntSlice(local[full], sum) {
				local[full] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range fns {
		lockAnalyzeFunc(pass, fd, local, true)
	}
	for full, levels := range local {
		pass.Facts.Set(pass.PkgPath, lockFactPrefix+full, levels)
	}
	return nil
}

func declFullName(pass *Pass, fd *ast.FuncDecl) string {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return obj.FullName()
}

func equalIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lockAnalyzeFunc(pass *Pass, fd *ast.FuncDecl, local map[string][]int, report bool) []int {
	w := &loWalker{
		pass:     pass,
		local:    local,
		report:   report,
		collect:  true,
		acquires: make(map[int]bool),
		docVars:  make(map[types.Object]bool),
	}
	w.stmt(fd.Body)
	levels := make([]int, 0, len(w.acquires))
	for l := range w.acquires {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	return levels
}

type loWalker struct {
	pass   *Pass
	local  map[string][]int
	report bool
	// collect folds acquisitions into the summary; false inside
	// goroutine and deferred bodies, whose acquisitions happen outside
	// the caller's lock scope.
	collect bool
	// ignoreReleases is set inside deferred bodies: their unlocks run
	// at function exit, not at the defer statement.
	ignoreReleases bool

	held     []int
	heldPos  []token.Pos
	acquires map[int]bool
	docVars  map[types.Object]bool
}

func (w *loWalker) maxHeld() (int, token.Pos) {
	m, pos := 0, token.NoPos
	for i, l := range w.held {
		if l >= m {
			m, pos = l, w.heldPos[i]
		}
	}
	return m, pos
}

func (w *loWalker) holds(l int) bool {
	for _, h := range w.held {
		if h == l {
			return true
		}
	}
	return false
}

func (w *loWalker) acquire(l int, pos token.Pos) {
	if w.report {
		if m, mpos := w.maxHeld(); m > l {
			w.pass.Reportf(pos, "%s acquired while %s is held (acquired at %s); the lock hierarchy requires lower levels first",
				lvlName[l], lvlName[m], w.pass.Fset.Position(mpos))
		} else if singleInstance[l] && w.holds(l) {
			w.pass.Reportf(pos, "%s re-acquired while already held: self-deadlock", lvlName[l])
		}
	}
	w.held = append(w.held, l)
	w.heldPos = append(w.heldPos, pos)
	if w.collect {
		w.acquires[l] = true
	}
}

func (w *loWalker) release(l int) {
	if w.ignoreReleases {
		return
	}
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == l {
			w.held = append(w.held[:i], w.held[i+1:]...)
			w.heldPos = append(w.heldPos[:i], w.heldPos[i+1:]...)
			return
		}
	}
}

// checkSummary applies a callee's acquisition summary at a call site.
func (w *loWalker) checkSummary(levels []int, pos token.Pos, what string) {
	for _, l := range levels {
		if w.report {
			if m, mpos := w.maxHeld(); m > l {
				w.pass.Reportf(pos, "call to %s acquires %s while %s is held (acquired at %s)",
					what, lvlName[l], lvlName[m], w.pass.Fset.Position(mpos))
			} else if singleInstance[l] && w.holds(l) {
				w.pass.Reportf(pos, "call to %s re-acquires %s, which is already held: self-deadlock", what, lvlName[l])
			}
		}
		if w.collect {
			w.acquires[l] = true
		}
	}
}

func (w *loWalker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.trackDocVars(vs.Names, vs.Values)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.CommClause:
		w.stmt(s.Comm)
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.DeferStmt:
		w.deferCall(s.Call)
	case *ast.GoStmt:
		w.goCall(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// assign tracks `l := s.lockFor(name)` so later l.Lock() classifies as
// a document lock, then scans normally.
func (w *loWalker) assign(s *ast.AssignStmt) {
	if w.trackDocVars(identList(s.Lhs), s.Rhs) {
		return
	}
	for _, r := range s.Rhs {
		w.expr(r)
	}
	for _, l := range s.Lhs {
		w.expr(l)
	}
}

func identList(exprs []ast.Expr) []*ast.Ident {
	ids := make([]*ast.Ident, 0, len(exprs))
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		ids = append(ids, id)
	}
	return ids
}

func (w *loWalker) trackDocVars(names []*ast.Ident, values []ast.Expr) bool {
	if len(names) != 1 || len(values) != 1 {
		return false
	}
	call, ok := values[0].(*ast.CallExpr)
	if !ok || !w.isLockForCall(call) {
		return false
	}
	if obj := objectOf(w.pass.Info, names[0]); obj != nil {
		w.docVars[obj] = true
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	return true
}

func (w *loWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return w.call(n)
		case *ast.FuncLit:
			// A stray literal (assigned to a variable, returned):
			// analyze against the current held set — in this codebase
			// such closures run in the scope that defines them — but
			// keep its acquisitions out of the enclosing summary.
			w.walkNested(n.Body, w.held, w.heldPos, false, false)
			return false
		}
		return true
	})
}

// call classifies one call expression. Returns whether ast.Inspect
// should descend into it.
func (w *loWalker) call(call *ast.CallExpr) bool {
	// Immediately-invoked literal: inline code.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a)
		}
		w.walkInline(lit.Body)
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if l, isAcquire, ok := w.classifyLockOp(sel); ok {
			if isAcquire {
				w.acquire(l, call.Pos())
			} else {
				w.release(l)
			}
			for _, a := range call.Args {
				w.expr(a)
			}
			return false
		}
	}
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return true
	}
	if implied, ok := w.wrapperLevels(fn); ok {
		var lit *ast.FuncLit
		for _, a := range call.Args {
			if fl, isLit := a.(*ast.FuncLit); isLit {
				lit = fl
			} else {
				w.expr(a)
			}
		}
		for _, l := range implied {
			w.acquire(l, call.Pos())
		}
		if lit != nil {
			w.walkInline(lit.Body)
		}
		for _, l := range implied {
			w.release(l)
		}
		return false
	}
	if sum := w.summaryOf(fn); len(sum) > 0 {
		w.checkSummary(sum, call.Pos(), fn.Name())
	}
	return true
}

// walkInline runs a nested body in the current context: same held
// stack, same summary.
func (w *loWalker) walkInline(body *ast.BlockStmt) {
	w.stmt(body)
}

// walkNested analyzes a nested body with its own context.
func (w *loWalker) walkNested(body *ast.BlockStmt, held []int, heldPos []token.Pos, collect, ignoreReleases bool) {
	nw := &loWalker{
		pass:           w.pass,
		local:          w.local,
		report:         w.report,
		collect:        collect,
		ignoreReleases: ignoreReleases,
		held:           append([]int(nil), held...),
		heldPos:        append([]token.Pos(nil), heldPos...),
		acquires:       w.acquires,
		docVars:        w.docVars,
	}
	nw.stmt(body)
}

func (w *loWalker) goCall(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// A goroutine starts with nothing held, whatever the spawner
		// holds; its acquisitions are not the spawner's.
		w.walkNested(lit.Body, nil, nil, false, false)
	}
}

func (w *loWalker) deferCall(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isAcquire, ok := w.classifyLockOp(sel); ok && !isAcquire {
			// defer mu.Unlock(): held until function exit.
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// A deferred body runs at exit with the current locks still
		// held; its own unlocks must not release them here.
		w.walkNested(lit.Body, w.held, w.heldPos, false, true)
	}
}

// classifyLockOp recognizes Lock/RLock/TryLock/TryRLock and
// Unlock/RUnlock on tracked lock objects, plus Latch/RLatch and
// Unlatch/RUnlatch on buffer.Frame.
func (w *loWalker) classifyLockOp(sel *ast.SelectorExpr) (level int, isAcquire, ok bool) {
	switch sel.Sel.Name {
	case "Latch", "RLatch":
		if isNamed(w.pass.Info, sel.X, "internal/buffer", "Frame") {
			return lvlLatch, true, true
		}
	case "Unlatch", "RUnlatch":
		if isNamed(w.pass.Info, sel.X, "internal/buffer", "Frame") {
			return lvlLatch, false, true
		}
	case "Lock", "RLock", "TryLock", "TryRLock":
		if l, ok := w.lockLevel(sel.X); ok {
			return l, true, true
		}
	case "Unlock", "RUnlock":
		if l, ok := w.lockLevel(sel.X); ok {
			return l, false, true
		}
	}
	return 0, false, false
}

// lockLevel maps the receiver of a mutex method to a hierarchy level.
func (w *loWalker) lockLevel(x ast.Expr) (int, bool) {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		field := x.Sel.Name
		switch {
		case field == "mu" && isNamedPath(w.pass.Info, x.X, w.pass.ModulePath, "DB"):
			return lvlLifecycle, true
		case field == "wmu" && isNamed(w.pass.Info, x.X, "internal/docstore", "Store"):
			return lvlWriter, true
		case field == "allocMu" && isNamed(w.pass.Info, x.X, "internal/segment", "Segment"):
			return lvlAlloc, true
		case field == "latch" && isNamed(w.pass.Info, x.X, "internal/buffer", "Frame"):
			return lvlLatch, true
		}
	case *ast.Ident:
		if obj := objectOf(w.pass.Info, x); obj != nil && w.docVars[obj] {
			return lvlDocument, true
		}
	case *ast.CallExpr:
		if w.isLockForCall(x) {
			return lvlDocument, true
		}
	}
	return 0, false
}

func (w *loWalker) isLockForCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "lockFor" {
		return false
	}
	fn := calleeFunc(w.pass.Info, call)
	return fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/docstore")
}

// wrapperLevels models the helpers that run a callback under locks.
func (w *loWalker) wrapperLevels(fn *types.Func) ([]int, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil, false
	}
	path := pkg.Path()
	if strings.HasSuffix(path, "internal/docstore") {
		switch fn.Name() {
		case "View":
			return []int{lvlDocument}, true
		case "Mutate":
			return []int{lvlDocument, lvlWriter}, true
		case "runOp":
			return nil, true // logging bracket, no tracked locks
		}
	}
	if path == w.pass.ModulePath {
		switch fn.Name() {
		case "view", "viewE":
			return []int{lvlLifecycle}, true
		}
	}
	return nil, false
}

func (w *loWalker) summaryOf(fn *types.Func) []int {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	full := fn.FullName()
	if pkg.Path() == w.pass.PkgPath {
		return w.local[full]
	}
	if v, ok := w.pass.Facts.Get(pkg.Path(), lockFactPrefix+full); ok {
		levels, _ := v.([]int)
		return levels
	}
	return nil
}

// calleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for function values and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isNamed reports whether e's type (through pointers) is the named
// type typeName declared in a package whose path ends with pathSuffix.
func isNamed(info *types.Info, e ast.Expr, pathSuffix, typeName string) bool {
	name, path, ok := namedTypeOf(info, e)
	return ok && name == typeName && strings.HasSuffix(path, pathSuffix)
}

// isNamedPath is isNamed with an exact package-path match (for the
// module root package, where a suffix match would be too loose).
func isNamedPath(info *types.Info, e ast.Expr, pkgPath, typeName string) bool {
	name, path, ok := namedTypeOf(info, e)
	return ok && name == typeName && path == pkgPath
}

func namedTypeOf(info *types.Info, e ast.Expr) (name, pkgPath string, ok bool) {
	tv, found := info.Types[e]
	if !found || tv.Type == nil {
		return "", "", false
	}
	t := types.Unalias(tv.Type)
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(p.Elem())
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Name(), obj.Pkg().Path(), true
}
