package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Walbracket enforces the PR 5 WAL bracket rule: every
// buffer.Frame.BeginUpdate() must be consumed by exactly one
// EndUpdate/CancelUpdate on every path out of the enclosing function —
// early returns and panics included — and never closed twice. The
// check is a small flow-sensitive interpretation of the function body
// (the same shape as the stock lostcancel analyzer): each local holding
// an Update token is tracked through open → closed, branches are
// explored separately and merged, and any path that can leave the
// function with an open token is reported. A token that escapes the
// local frame (stored in a struct, captured mutably, passed to another
// function) stops being tracked rather than guessed at.
var Walbracket = &Analyzer{
	Name: "walbracket",
	Doc: "check that every Frame.BeginUpdate is closed by exactly one " +
		"EndUpdate or CancelUpdate on every path out of the function",
	Run: runWalbracket,
}

func runWalbracket(pass *Pass) error {
	w := &wbChecker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				// Function literals are checked as functions in their
				// own right; the enclosing function's walk treats any
				// captured token as escaped.
				w.checkFunc(fn.Body)
			}
			return true
		})
	}
	return nil
}

type wbState int

const (
	wbOpen wbState = iota
	wbClosed
	wbEscaped // no longer tracked; assume the code knows what it's doing
)

type wbInfo struct {
	state wbState
	begin token.Pos
}

type wbEnv struct {
	vars       map[types.Object]*wbInfo
	terminated bool
}

func (e *wbEnv) clone() *wbEnv {
	out := &wbEnv{vars: make(map[types.Object]*wbInfo, len(e.vars)), terminated: e.terminated}
	for obj, info := range e.vars {
		cp := *info
		out.vars[obj] = &cp
	}
	return out
}

// mergeEnvs joins two branch outcomes. A terminated branch contributes
// nothing to the fallthrough state; diverging states degrade to
// escaped so a genuinely-closed-on-one-side token is not re-reported
// on the other.
func mergeEnvs(a, b *wbEnv) *wbEnv {
	if a.terminated && b.terminated {
		return a
	}
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := &wbEnv{vars: make(map[types.Object]*wbInfo)}
	for obj, ia := range a.vars {
		cp := *ia
		if ib, ok := b.vars[obj]; ok && ib.state != ia.state {
			cp.state = wbEscaped
		}
		out.vars[obj] = &cp
	}
	for obj, ib := range b.vars {
		if _, ok := a.vars[obj]; !ok {
			cp := *ib
			out.vars[obj] = &cp
		}
	}
	return out
}

type wbChecker struct {
	pass *Pass
}

func (w *wbChecker) checkFunc(body *ast.BlockStmt) {
	env := &wbEnv{vars: make(map[types.Object]*wbInfo)}
	w.stmt(body, env)
	w.checkExit(env, body.Rbrace, "the end of the function")
}

// checkExit reports tokens still open when control leaves the function
// at pos.
func (w *wbChecker) checkExit(env *wbEnv, pos token.Pos, what string) {
	if env.terminated {
		return
	}
	for obj, info := range env.vars {
		if info.state == wbOpen {
			w.pass.Reportf(pos, "WAL update %q (BeginUpdate at %s) is still open at %s; close it with EndUpdate or CancelUpdate on every path",
				obj.Name(), w.shortPos(info.begin), what)
			info.state = wbEscaped // report each leak once
		}
	}
}

func (w *wbChecker) shortPos(pos token.Pos) string {
	p := w.pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (w *wbChecker) stmt(s ast.Stmt, env *wbEnv) {
	if s == nil || env.terminated {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if env.terminated {
				break
			}
			w.stmt(st, env)
		}
	case *ast.ExprStmt:
		w.expr(s.X, env)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			w.checkExit(env, s.Pos(), "this panic")
			env.terminated = true
		}
	case *ast.AssignStmt:
		w.assign(s, env)
	case *ast.DeclStmt:
		w.declStmt(s, env)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, env)
		}
		w.checkExit(env, s.Pos(), "this return")
		env.terminated = true
	case *ast.IfStmt:
		w.stmt(s.Init, env)
		w.expr(s.Cond, env)
		thenEnv := env.clone()
		w.stmt(s.Body, thenEnv)
		elseEnv := env.clone()
		w.stmt(s.Else, elseEnv)
		*env = *mergeEnvs(thenEnv, elseEnv)
	case *ast.ForStmt:
		w.stmt(s.Init, env)
		w.expr(s.Cond, env)
		w.loopBody(s.Body, s.Post, env)
	case *ast.RangeStmt:
		w.expr(s.X, env)
		w.loopBody(s.Body, nil, env)
	case *ast.SwitchStmt:
		w.stmt(s.Init, env)
		w.expr(s.Tag, env)
		w.caseBranches(s.Body, env)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, env)
		w.caseBranches(s.Body, env)
	case *ast.SelectStmt:
		w.selectBranches(s.Body, env)
	case *ast.DeferStmt:
		w.deferStmt(s, env)
	case *ast.GoStmt:
		w.expr(s.Call, env)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear model; stop tracking
		// anything open rather than reporting a false leak.
		for _, info := range env.vars {
			if info.state == wbOpen {
				info.state = wbEscaped
			}
		}
		env.terminated = true
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, env)
	case *ast.SendStmt:
		w.expr(s.Chan, env)
		w.expr(s.Value, env)
	case *ast.IncDecStmt:
		w.expr(s.X, env)
	}
}

// loopBody analyzes a loop body against a clone of the environment. A
// token opened inside the body must be closed by the end of the body
// (otherwise the next iteration re-begins over an open token); tokens
// from outside whose state the body changes degrade to escaped, since
// the loop may run zero or many times.
func (w *wbChecker) loopBody(body *ast.BlockStmt, post ast.Stmt, env *wbEnv) {
	be := env.clone()
	be.terminated = false
	w.stmt(body, be)
	if post != nil && !be.terminated {
		w.stmt(post, be)
	}
	if !be.terminated {
		for obj, info := range be.vars {
			pre := env.vars[obj]
			if info.state == wbOpen && (pre == nil || pre.state != wbOpen) {
				w.pass.Reportf(info.begin, "WAL update %q begun in a loop body is still open at the end of the body", obj.Name())
				info.state = wbEscaped
			}
		}
	}
	for obj, pre := range env.vars {
		if be.terminated {
			break
		}
		if info, ok := be.vars[obj]; ok && info.state != pre.state {
			pre.state = wbEscaped
		}
	}
}

// caseBranches analyzes each case clause of a switch against its own
// clone and merges the outcomes; without a default clause, the
// fallthrough state (no case matched) joins the merge.
func (w *wbChecker) caseBranches(body *ast.BlockStmt, env *wbEnv) {
	var outs []*wbEnv
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, env)
		}
		ce := env.clone()
		for _, st := range cc.Body {
			if ce.terminated {
				break
			}
			w.stmt(st, ce)
		}
		outs = append(outs, ce)
	}
	if !hasDefault {
		outs = append(outs, env.clone())
	}
	w.mergeInto(env, outs)
}

func (w *wbChecker) selectBranches(body *ast.BlockStmt, env *wbEnv) {
	var outs []*wbEnv
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		ce := env.clone()
		if cc.Comm != nil {
			w.stmt(cc.Comm, ce)
		}
		for _, st := range cc.Body {
			if ce.terminated {
				break
			}
			w.stmt(st, ce)
		}
		outs = append(outs, ce)
	}
	if len(outs) == 0 {
		return
	}
	w.mergeInto(env, outs)
}

func (w *wbChecker) mergeInto(env *wbEnv, outs []*wbEnv) {
	if len(outs) == 0 {
		return
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = mergeEnvs(merged, o)
	}
	*env = *merged
}

// assign handles `u := f.BeginUpdate()` (start tracking), re-begins
// over an open token, and overwrites of a tracked variable.
func (w *wbChecker) assign(s *ast.AssignStmt, env *wbEnv) {
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && w.isFrameCall(call, "BeginUpdate") {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				w.expr(sel.X, env)
			}
			if len(s.Lhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						w.pass.Reportf(s.Pos(), "result of BeginUpdate is discarded; the token must be closed with EndUpdate or CancelUpdate")
						return
					}
					if obj := w.objOf(id); obj != nil {
						if info := env.vars[obj]; info != nil && info.state == wbOpen {
							w.pass.Reportf(s.Pos(), "WAL update %q re-begun while still open (BeginUpdate at %s)", id.Name, w.shortPos(info.begin))
						}
						env.vars[obj] = &wbInfo{state: wbOpen, begin: s.Pos()}
						return
					}
				}
			}
			// Stored into something we cannot track (field, tuple,
			// index): the token escapes the local frame.
			for _, l := range s.Lhs {
				w.expr(l, env)
			}
			return
		}
	}
	for _, r := range s.Rhs {
		w.expr(r, env)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := w.objOf(id); obj != nil {
				if info := env.vars[obj]; info != nil {
					if info.state == wbOpen {
						w.pass.Reportf(s.Pos(), "WAL update %q overwritten while still open (BeginUpdate at %s)", id.Name, w.shortPos(info.begin))
					}
					info.state = wbEscaped
				}
				continue
			}
		}
		w.expr(l, env)
	}
}

func (w *wbChecker) declStmt(s *ast.DeclStmt, env *wbEnv) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) == 1 && len(vs.Values) == 1 {
			if call, ok := vs.Values[0].(*ast.CallExpr); ok && w.isFrameCall(call, "BeginUpdate") {
				if obj := w.objOf(vs.Names[0]); obj != nil {
					env.vars[obj] = &wbInfo{state: wbOpen, begin: vs.Pos()}
					continue
				}
			}
		}
		for _, v := range vs.Values {
			w.expr(v, env)
		}
	}
}

// deferStmt gives `defer f.EndUpdate(u)` — directly or via a literal —
// closed-on-all-exits semantics.
func (w *wbChecker) deferStmt(s *ast.DeferStmt, env *wbEnv) {
	if name, arg := w.closeCall(s.Call); name != "" && arg != nil {
		if obj := w.objOf(arg); obj != nil {
			if info := env.vars[obj]; info != nil {
				info.state = wbClosed
				return
			}
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		closes, uses := w.litEffects(lit)
		for obj := range closes {
			if info := env.vars[obj]; info != nil {
				info.state = wbClosed
			}
		}
		for obj := range uses {
			if closes[obj] {
				continue
			}
			if info := env.vars[obj]; info != nil && info.state == wbOpen {
				info.state = wbEscaped
			}
		}
		for _, a := range s.Call.Args {
			w.expr(a, env)
		}
		return
	}
	w.expr(s.Call, env)
}

// litEffects summarizes a function literal from the outside: which
// tracked objects it closes, and which it otherwise references.
func (w *wbChecker) litEffects(lit *ast.FuncLit) (closes, uses map[types.Object]bool) {
	closes = make(map[types.Object]bool)
	uses = make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, arg := w.closeCall(call); name != "" && arg != nil {
				if obj := w.objOf(arg); obj != nil {
					closes[obj] = true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if obj := w.objOf(id); obj != nil {
							uses[obj] = true
						}
					}
				}
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.objOf(id); obj != nil {
				uses[obj] = true
			}
		}
		return true
	})
	return closes, uses
}

// expr scans an expression for close calls, stray BeginUpdate calls,
// and uses that make a tracked token escape.
func (w *wbChecker) expr(e ast.Expr, env *wbEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, arg := w.closeCall(n); name != "" && arg != nil {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					w.expr(sel.X, env)
				}
				if obj := w.objOf(arg); obj != nil {
					if info := env.vars[obj]; info != nil {
						switch info.state {
						case wbClosed:
							w.pass.Reportf(n.Pos(), "WAL update %q closed twice (%s after an earlier EndUpdate/CancelUpdate)", arg.Name, name)
						case wbOpen:
							info.state = wbClosed
						}
					}
				}
				return false
			}
			if w.isFrameCall(n, "BeginUpdate") {
				w.pass.Reportf(n.Pos(), "result of BeginUpdate must be assigned to a local variable so the bracket can be verified")
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					w.expr(sel.X, env)
				}
				return false
			}
		case *ast.FuncLit:
			// A literal that captures an open token makes it escape;
			// the literal's own body is analyzed separately.
			_, uses := w.litEffects(n)
			for obj := range uses {
				if info := env.vars[obj]; info != nil && info.state == wbOpen {
					info.state = wbEscaped
				}
			}
			return false
		case *ast.Ident:
			if obj := w.objOf(n); obj != nil {
				if info := env.vars[obj]; info != nil && info.state == wbOpen {
					info.state = wbEscaped
				}
			}
		}
		return true
	})
}

// closeCall recognizes f.EndUpdate(u) / f.CancelUpdate(u) on a
// buffer.Frame with a plain identifier argument.
func (w *wbChecker) closeCall(call *ast.CallExpr) (string, *ast.Ident) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	if name != "EndUpdate" && name != "CancelUpdate" {
		return "", nil
	}
	if !w.isFrameMethod(sel) || len(call.Args) != 1 {
		return "", nil
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return name, nil
	}
	return name, arg
}

func (w *wbChecker) isFrameCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return w.isFrameMethod(sel)
}

// isFrameMethod reports whether sel selects a method on
// natix/internal/buffer.Frame (directly or through a pointer).
func (w *wbChecker) isFrameMethod(sel *ast.SelectorExpr) bool {
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Frame" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/buffer")
}

func (w *wbChecker) objOf(id *ast.Ident) types.Object {
	if o := w.pass.Info.Uses[id]; o != nil {
		return o
	}
	return w.pass.Info.Defs[id]
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
