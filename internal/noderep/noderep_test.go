package noderep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"natix/internal/dict"
	"natix/internal/pagedev"
	"natix/internal/records"
)

// Labels used in tests (arbitrary user ids).
const (
	lSpeech  = dict.LabelID(10)
	lSpeaker = dict.LabelID(11)
	lLine    = dict.LabelID(12)
)

// figure2 builds the paper's example: a SPEECH with SPEAKER and two LINEs.
func figure2() *Node {
	speech := NewAggregate(lSpeech)
	speaker := NewAggregate(lSpeaker)
	speaker.AppendChild(NewTextLiteral("OTHELLO"))
	line1 := NewAggregate(lLine)
	line1.AppendChild(NewTextLiteral("Let me see your eyes;"))
	line2 := NewAggregate(lLine)
	line2.AppendChild(NewTextLiteral("Look in my face."))
	speech.AppendChild(speaker)
	speech.AppendChild(line1)
	speech.AppendChild(line2)
	return speech
}

func TestFigure15Sizes(t *testing.T) {
	// Appendix A, figure 15: embedded headers are 6 bytes, standalone
	// headers 10 bytes. Check the arithmetic on the paper's own example.
	speech := figure2()
	// Each LINE aggregate: 6-byte header + text-literal child
	// (6 + len(text)).
	line1 := speech.Children[1]
	if got, want := line1.TotalSize(), 6+6+len("Let me see your eyes;"); got != want {
		t.Fatalf("LINE size = %d, want %d", got, want)
	}
	rec := &Record{Root: speech}
	// Record: header(4) + type table (5 types: SPEECH agg, SPEAKER agg,
	// LINE agg, #text literal — 4 entries) + standalone(10) + content.
	order := collectTypes(speech)
	if len(order) != 4 {
		t.Fatalf("type table has %d entries, want 4", len(order))
	}
	wantSize := 4 + 4*4 + 10 + speech.ContentSize()
	if got := EncodedSize(rec); got != wantSize {
		t.Fatalf("EncodedSize = %d, want %d", got, wantSize)
	}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != wantSize {
		t.Fatalf("len(Encode) = %d, EncodedSize = %d", len(buf), wantSize)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := &Record{
		ParentRID: records.RID{Page: 77, Slot: 3},
		Root:      figure2(),
	}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ParentRID != rec.ParentRID {
		t.Fatalf("ParentRID = %v, want %v", got.ParentRID, rec.ParentRID)
	}
	if !Equal(got.Root, rec.Root) {
		t.Fatal("tree changed in round trip")
	}
	// Parent links are rebuilt on decode.
	for _, c := range got.Root.Children {
		if c.Parent != got.Root {
			t.Fatal("decoded child missing parent link")
		}
	}
}

func TestProxyAndScaffoldRoundTrip(t *testing.T) {
	// A partition record: scaffolding aggregate root holding a facade
	// subtree and a proxy (like r2 in figure 3).
	root := NewScaffoldAggregate()
	f := NewAggregate(lLine)
	f.AppendChild(NewTextLiteral("text"))
	root.AppendChild(f)
	root.AppendChild(NewProxy(records.RID{Page: 123456, Slot: 9}))
	rec := &Record{ParentRID: records.RID{Page: 1, Slot: 0}, Root: root}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Root.Scaffold {
		t.Fatal("scaffold flag lost")
	}
	p := got.Root.Children[1]
	if p.Kind != KindProxy || p.Target != (records.RID{Page: 123456, Slot: 9}) {
		t.Fatalf("proxy = %+v", p)
	}
}

func TestEmptyAggregateRecord(t *testing.T) {
	rec := &Record{Root: NewAggregate(lSpeech)}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Root.Children) != 0 || got.Root.Label != lSpeech {
		t.Fatalf("decoded %+v", got.Root)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	lit := NewTextLiteral("x")
	lit.Children = []*Node{NewTextLiteral("y")}
	if err := lit.Validate(); err == nil {
		t.Error("literal with children validated")
	}
	px := NewProxy(records.RID{Page: 1})
	px.Payload = []byte{1}
	if err := px.Validate(); err == nil {
		t.Error("proxy with payload validated")
	}
	nilp := NewProxy(records.NilRID)
	if err := nilp.Validate(); err == nil {
		t.Error("proxy with nil target validated")
	}
	// Embedded scaffolding aggregate violates the invariant.
	root := NewAggregate(lSpeech)
	root.AppendChild(NewScaffoldAggregate())
	if err := root.Validate(); err == nil {
		t.Error("embedded scaffold validated")
	}
	// As a root it is fine.
	if err := NewScaffoldAggregate().Validate(); err != nil {
		t.Errorf("root scaffold rejected: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := &Record{Root: figure2()}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must never panic. Most fail outright; a cut that lands
	// exactly on a child boundary is indistinguishable (the record has no
	// redundant length field — standalone objects take their size from
	// the slot, App. A), but even then the result must validate.
	for n := 0; n < len(buf); n++ {
		got, err := Decode(buf[:n])
		if err == nil {
			if vErr := got.Root.Validate(); vErr != nil {
				t.Fatalf("truncation to %d decoded to invalid tree: %v", n, vErr)
			}
		}
	}
	// Bad version.
	bad := append([]byte(nil), buf...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// Corrupt a parent offset.
	bad = append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF // inside last literal payload: still decodes
	if _, err := Decode(bad); err != nil {
		t.Fatalf("payload change should still decode: %v", err)
	}
}

func TestChildManipulation(t *testing.T) {
	n := NewAggregate(lSpeech)
	a := NewTextLiteral("a")
	b := NewTextLiteral("b")
	c := NewTextLiteral("c")
	n.AppendChild(a)
	n.AppendChild(c)
	n.InsertChild(1, b)
	if n.ChildIndex(b) != 1 || n.ChildIndex(c) != 2 {
		t.Fatalf("indexes wrong: %d %d", n.ChildIndex(b), n.ChildIndex(c))
	}
	got := n.RemoveChild(0)
	if got != a || len(n.Children) != 2 || n.Children[0] != b {
		t.Fatal("RemoveChild wrong")
	}
	if a.Parent != nil {
		t.Fatal("removed child keeps parent")
	}
	if n.ChildIndex(a) != -1 {
		t.Fatal("removed child still found")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := figure2()
	cl := orig.Clone()
	if !Equal(orig, cl) {
		t.Fatal("clone differs")
	}
	cl.Children[0].Children[0].Payload[0] = 'X'
	if Equal(orig, cl) {
		t.Fatal("clone shares payload storage")
	}
}

func TestTypedLiterals(t *testing.T) {
	cases := []int64{0, 1, -1, 127, -128, 128, 32767, -32768, 1 << 20, math.MaxInt64, math.MinInt64}
	wantTypes := []LitType{LitInt8, LitInt8, LitInt8, LitInt8, LitInt8, LitInt16, LitInt16, LitInt16, LitInt32, LitInt64, LitInt64}
	for i, v := range cases {
		n := NewIntLiteral(lLine, v)
		if n.LitType != wantTypes[i] {
			t.Errorf("NewIntLiteral(%d) type = %d, want %d", v, n.LitType, wantTypes[i])
		}
		got, err := n.IntValue()
		if err != nil || got != v {
			t.Errorf("IntValue(%d) = %d, %v", v, got, err)
		}
	}
	f := NewFloatLiteral(lLine, 3.25)
	if got, err := f.FloatValue(); err != nil || got != 3.25 {
		t.Errorf("FloatValue = %v, %v", got, err)
	}
	u := NewURILiteral(lLine, "http://example.com/x")
	if got, err := u.StringValue(); err != nil || got != "http://example.com/x" {
		t.Errorf("URI StringValue = %q, %v", got, err)
	}
	blob := records.RID{Page: 5, Slot: 2}
	l := NewLongStringLiteral(lLine, blob)
	if got, err := l.BlobID(); err != nil || got != blob {
		t.Errorf("BlobID = %v, %v", got, err)
	}
	// Wrong-type accessors fail.
	if _, err := f.IntValue(); err == nil {
		t.Error("IntValue on float succeeded")
	}
	if _, err := u.FloatValue(); err == nil {
		t.Error("FloatValue on URI succeeded")
	}
	if _, err := NewIntLiteral(lLine, 1).StringValue(); err == nil {
		t.Error("StringValue on int succeeded")
	}
}

func TestIntLiteralRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		got, err := NewIntLiteral(lLine, v).IntValue()
		return err == nil && got == v
	}, nil); err != nil {
		t.Error(err)
	}
}

// randomPhysTree builds a random, valid physical subtree.
func randomPhysTree(rng *rand.Rand, depth int, root bool) *Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			b := make([]byte, rng.Intn(40))
			rng.Read(b)
			return NewLiteral(dict.Text, LitString, b)
		case 1:
			return NewIntLiteral(dict.LabelID(3+rng.Intn(5)), rng.Int63()-rng.Int63())
		default:
			return NewProxy(records.RID{Page: pagedev.PageNo(1 + rng.Uint64()%1000), Slot: uint16(rng.Intn(100))})
		}
	}
	n := NewAggregate(dict.LabelID(3 + rng.Intn(8)))
	for i := rng.Intn(5); i > 0; i-- {
		n.AppendChild(randomPhysTree(rng, depth-1, false))
	}
	return n
}

// TestRecordRoundTripProperty: random physical trees survive
// encode→decode bit-exactly, and EncodedSize always equals len(Encode).
func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		root := randomPhysTree(rng, 5, true)
		if root.Kind != KindAggregate {
			agg := NewAggregate(dict.LabelID(3))
			agg.AppendChild(root)
			root = agg
		}
		rec := &Record{
			ParentRID: records.RID{Page: pagedev.PageNo(rng.Uint64() % (1 << 40)), Slot: uint16(rng.Intn(1 << 16))},
			Root:      root,
		}
		buf, err := Encode(rec)
		if err != nil {
			t.Fatalf("tree %d: encode: %v", i, err)
		}
		if len(buf) != EncodedSize(rec) {
			t.Fatalf("tree %d: EncodedSize %d != len %d", i, EncodedSize(rec), len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("tree %d: decode: %v", i, err)
		}
		if got.ParentRID != rec.ParentRID || !Equal(got.Root, rec.Root) {
			t.Fatalf("tree %d: round trip changed record", i)
		}
		// Re-encode must be byte-identical (canonical form).
		buf2, err := Encode(got)
		if err != nil {
			t.Fatalf("tree %d: re-encode: %v", i, err)
		}
		if string(buf) != string(buf2) {
			t.Fatalf("tree %d: encoding not canonical", i)
		}
	}
}

func TestParentRIDOffset(t *testing.T) {
	rec := &Record{ParentRID: records.RID{Page: 42, Slot: 7}, Root: figure2()}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	order := collectTypes(rec.Root)
	off := ParentRIDOffset(len(order))
	got := records.DecodeRID(buf[off : off+records.RIDSize])
	if got != rec.ParentRID {
		t.Fatalf("RID at ParentRIDOffset = %v, want %v", got, rec.ParentRID)
	}
}

func TestCountAndWalk(t *testing.T) {
	tree := figure2()
	if got := tree.CountNodes(); got != 7 {
		t.Fatalf("CountNodes = %d, want 7", got)
	}
	var seen int
	tree.Walk(func(n *Node) bool {
		seen++
		return true
	})
	if seen != 7 {
		t.Fatalf("Walk visited %d", seen)
	}
	// Early stop.
	seen = 0
	tree.Walk(func(n *Node) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early-stopped walk visited %d", seen)
	}
}
