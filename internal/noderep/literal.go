package noderep

import (
	"encoding/binary"
	"fmt"
	"math"

	"natix/internal/dict"
	"natix/internal/records"
)

// Typed literal helpers. Appendix A: "Literals are typed, currently
// either string literals, 8/16/32/64-bit integer literals, float, or URI
// (Uniform Resource Identifier) literals."

// NewIntLiteral builds the smallest integer literal that can hold v.
func NewIntLiteral(label dict.LabelID, v int64) *Node {
	switch {
	case v >= math.MinInt8 && v <= math.MaxInt8:
		return NewLiteral(label, LitInt8, []byte{byte(int8(v))})
	case v >= math.MinInt16 && v <= math.MaxInt16:
		b := make([]byte, 2)
		binary.LittleEndian.PutUint16(b, uint16(int16(v)))
		return NewLiteral(label, LitInt16, b)
	case v >= math.MinInt32 && v <= math.MaxInt32:
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(int32(v)))
		return NewLiteral(label, LitInt32, b)
	default:
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return NewLiteral(label, LitInt64, b)
	}
}

// NewFloatLiteral builds a 64-bit float literal.
func NewFloatLiteral(label dict.LabelID, v float64) *Node {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return NewLiteral(label, LitFloat64, b)
}

// NewURILiteral builds a URI literal.
func NewURILiteral(label dict.LabelID, uri string) *Node {
	return NewLiteral(label, LitURI, []byte(uri))
}

// NewLongStringLiteral builds an overflow literal referencing a blob.
func NewLongStringLiteral(label dict.LabelID, blob records.RID) *Node {
	payload := make([]byte, records.RIDSize)
	blob.Put(payload)
	return NewLiteral(label, LitLongString, payload)
}

// IntValue decodes an integer literal.
func (n *Node) IntValue() (int64, error) {
	if n.Kind != KindLiteral {
		return 0, fmt.Errorf("%w: IntValue on %s", ErrBadNode, n.Kind)
	}
	switch n.LitType {
	case LitInt8:
		if len(n.Payload) != 1 {
			return 0, fmt.Errorf("%w: int8 payload %d bytes", ErrBadNode, len(n.Payload))
		}
		return int64(int8(n.Payload[0])), nil
	case LitInt16:
		if len(n.Payload) != 2 {
			return 0, fmt.Errorf("%w: int16 payload %d bytes", ErrBadNode, len(n.Payload))
		}
		return int64(int16(binary.LittleEndian.Uint16(n.Payload))), nil
	case LitInt32:
		if len(n.Payload) != 4 {
			return 0, fmt.Errorf("%w: int32 payload %d bytes", ErrBadNode, len(n.Payload))
		}
		return int64(int32(binary.LittleEndian.Uint32(n.Payload))), nil
	case LitInt64:
		if len(n.Payload) != 8 {
			return 0, fmt.Errorf("%w: int64 payload %d bytes", ErrBadNode, len(n.Payload))
		}
		return int64(binary.LittleEndian.Uint64(n.Payload)), nil
	default:
		return 0, fmt.Errorf("%w: IntValue on literal type %d", ErrBadNode, n.LitType)
	}
}

// FloatValue decodes a float literal.
func (n *Node) FloatValue() (float64, error) {
	if n.Kind != KindLiteral || n.LitType != LitFloat64 {
		return 0, fmt.Errorf("%w: FloatValue on kind %s type %d", ErrBadNode, n.Kind, n.LitType)
	}
	if len(n.Payload) != 8 {
		return 0, fmt.Errorf("%w: float payload %d bytes", ErrBadNode, len(n.Payload))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(n.Payload)), nil
}

// StringValue decodes a string or URI literal.
func (n *Node) StringValue() (string, error) {
	if n.Kind != KindLiteral {
		return "", fmt.Errorf("%w: StringValue on %s", ErrBadNode, n.Kind)
	}
	switch n.LitType {
	case LitString, LitURI:
		return string(n.Payload), nil
	default:
		return "", fmt.Errorf("%w: StringValue on literal type %d", ErrBadNode, n.LitType)
	}
}

// BlobID decodes the blob reference of an overflow literal.
func (n *Node) BlobID() (records.RID, error) {
	if n.Kind != KindLiteral || n.LitType != LitLongString {
		return records.NilRID, fmt.Errorf("%w: BlobID on kind %s type %d", ErrBadNode, n.Kind, n.LitType)
	}
	if len(n.Payload) != records.RIDSize {
		return records.NilRID, fmt.Errorf("%w: overflow payload %d bytes", ErrBadNode, len(n.Payload))
	}
	return records.DecodeRID(n.Payload), nil
}
