// Package noderep defines the physical node model of NATIX (paper §2.3)
// and the binary record format of Appendix A.
//
// Physical nodes are classified three ways:
//
//   - by content: aggregate (inner) nodes, literal (leaf) nodes, and
//     proxy nodes pointing to other records (§2.3.1);
//   - by representation: the standalone object is the root of a record's
//     subtree, every other node is embedded (§2.3.2);
//   - by purpose: facade objects represent logical nodes, scaffolding
//     objects (proxies and helper aggregates) exist only to represent
//     large trees (§2.3.3).
//
// One record stores exactly one subtree. Its byte layout is:
//
//	record   := version(1) flags(1) ttCount(2) ttEntry*  standalone
//	ttEntry  := kindFlags(1) label(2) litType(1)
//	standalone := typeIdx(2) parentRID(8) content
//	embedded := typeIdx(2) contentSize(2) parentOff(2) content
//	content  := children* | literalPayload | targetRID(8)
//
// Embedded headers are 6 bytes and standalone headers 10 bytes, exactly
// the header costs reported in Appendix A. Parent pointers of embedded
// nodes are 2-byte offsets from the start of the record, which keeps the
// byte representation location-independent. The node type table lives in
// the record rather than on the page (a documented deviation, DESIGN.md
// §4.3) so records stay self-contained when the record manager moves them.
package noderep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"natix/internal/dict"
	"natix/internal/records"
)

// Kind is the content classification of a physical node (§2.3.1).
type Kind uint8

// Node kinds.
const (
	KindInvalid   Kind = 0
	KindAggregate Kind = 1 // inner node containing its children
	KindLiteral   Kind = 2 // leaf node with an uninterpreted byte payload
	KindProxy     Kind = 3 // reference to the record holding a subtree
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindAggregate:
		return "aggregate"
	case KindLiteral:
		return "literal"
	case KindProxy:
		return "proxy"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// LitType is the interpretation of a literal payload. "Literals are
// typed, currently either string literals, 8/16/32/64-bit integer
// literals, float, or URI literals" (App. A).
type LitType uint8

// Literal types.
const (
	LitString LitType = iota
	LitInt8
	LitInt16
	LitInt32
	LitInt64
	LitFloat64
	LitURI
	// LitLongString marks an overflow literal whose payload is the 8-byte
	// id of a blobstore chain. Literals larger than a page cannot live
	// inside a record; this is the repository's long-field escape hatch.
	LitLongString
)

// Header sizes from Appendix A.
const (
	EmbeddedHeaderSize   = 6  // typeIdx(2) + size(2) + parentOff(2)
	StandaloneHeaderSize = 10 // typeIdx(2) + parentRID(8)

	recHeaderSize = 4 // version(1) + flags(1) + ttCount(2)
	ttEntrySize   = 4 // kindFlags(1) + label(2) + litType(1)

	formatVersion = 1

	kindMask     = 0x03
	scaffoldFlag = 0x04
)

// Errors.
var (
	ErrCorruptRecord = errors.New("noderep: corrupt record")
	ErrTooLarge      = errors.New("noderep: node content exceeds 16-bit size field")
	ErrBadNode       = errors.New("noderep: malformed node")
)

// Node is an in-memory physical node. The zero value is not valid; use
// the constructors.
type Node struct {
	Kind     Kind
	Label    dict.LabelID
	Scaffold bool        // scaffolding object (vs. facade), §2.3.3
	LitType  LitType     // literals only
	Payload  []byte      // literals only
	Target   records.RID // proxies only
	Children []*Node     // aggregates only
	Parent   *Node       // in-memory backlink; nil for the record root
}

// NewAggregate builds a facade aggregate node for a logical element.
func NewAggregate(label dict.LabelID) *Node {
	return &Node{Kind: KindAggregate, Label: label}
}

// NewScaffoldAggregate builds a helper aggregate used to group the
// children of a partition record (the h1/h2 nodes of paper figure 3).
func NewScaffoldAggregate() *Node {
	return &Node{Kind: KindAggregate, Label: dict.Scaffold, Scaffold: true}
}

// NewTextLiteral builds a facade literal holding character data.
func NewTextLiteral(text string) *Node {
	return &Node{Kind: KindLiteral, Label: dict.Text, LitType: LitString, Payload: []byte(text)}
}

// NewLiteral builds a typed facade literal with the given label.
func NewLiteral(label dict.LabelID, t LitType, payload []byte) *Node {
	return &Node{Kind: KindLiteral, Label: label, LitType: t, Payload: payload}
}

// NewProxy builds a scaffolding proxy pointing at target.
func NewProxy(target records.RID) *Node {
	return &Node{Kind: KindProxy, Label: dict.Scaffold, Scaffold: true, Target: target}
}

// AppendChild adds c as the last child of n and sets its parent link.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// InsertChild inserts c at index i among n's children.
func (n *Node) InsertChild(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("noderep: InsertChild index %d of %d", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild removes and returns the child at index i.
func (n *Node) RemoveChild(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// ChildIndex returns the position of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, x := range n.Children {
		if x == c {
			return i
		}
	}
	return -1
}

// ContentSize returns the serialized size of the node's content,
// excluding its own header.
func (n *Node) ContentSize() int {
	switch n.Kind {
	case KindLiteral:
		return len(n.Payload)
	case KindProxy:
		return records.RIDSize
	case KindAggregate:
		total := 0
		for _, c := range n.Children {
			total += EmbeddedHeaderSize + c.ContentSize()
		}
		return total
	default:
		return 0
	}
}

// TotalSize returns the serialized size of the node as an embedded
// object: header plus content.
func (n *Node) TotalSize() int { return EmbeddedHeaderSize + n.ContentSize() }

// CountNodes returns the number of physical nodes in the subtree.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Walk visits the subtree in pre-order, stopping if fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the subtree (parent links rebuilt).
func (n *Node) Clone() *Node {
	c := &Node{
		Kind: n.Kind, Label: n.Label, Scaffold: n.Scaffold,
		LitType: n.LitType, Target: n.Target,
	}
	if n.Payload != nil {
		c.Payload = append([]byte(nil), n.Payload...)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// Equal reports deep equality of two subtrees (ignoring parent links).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label || a.Scaffold != b.Scaffold {
		return false
	}
	switch a.Kind {
	case KindLiteral:
		if a.LitType != b.LitType || string(a.Payload) != string(b.Payload) {
			return false
		}
	case KindProxy:
		if a.Target != b.Target {
			return false
		}
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness of a subtree.
func (n *Node) Validate() error {
	return n.validate(true)
}

func (n *Node) validate(isRoot bool) error {
	switch n.Kind {
	case KindAggregate:
		if len(n.Payload) != 0 {
			return fmt.Errorf("%w: aggregate with payload", ErrBadNode)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("%w: child with stale parent link", ErrBadNode)
			}
			if err := c.validate(false); err != nil {
				return err
			}
		}
	case KindLiteral:
		if len(n.Children) != 0 {
			return fmt.Errorf("%w: literal with children", ErrBadNode)
		}
	case KindProxy:
		if len(n.Children) != 0 || len(n.Payload) != 0 {
			return fmt.Errorf("%w: proxy with children or payload", ErrBadNode)
		}
		if n.Target.IsNil() {
			return fmt.Errorf("%w: proxy with nil target", ErrBadNode)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrBadNode, n.Kind)
	}
	// Scaffolding aggregates only ever stand alone as record roots; the
	// split algorithm's special cases guarantee it (§3.2.2).
	if n.Kind == KindAggregate && n.Scaffold && !isRoot {
		return fmt.Errorf("%w: embedded scaffolding aggregate", ErrBadNode)
	}
	return nil
}

// Record is the in-memory form of one physical record: a subtree plus the
// RID of the record containing its proxy (nil for the tree's root record).
type Record struct {
	ParentRID records.RID
	Root      *Node
}

// ParentRIDOffset is the byte offset of the standalone parent RID within
// an encoded record, given its type-table entry count. Exposed so the
// tree manager can patch parent pointers in place without re-encoding.
func ParentRIDOffset(ttCount int) int {
	return recHeaderSize + ttEntrySize*ttCount + 2
}

// RecordParentRIDOffset returns the parent-RID byte offset for the
// encoded form of rec.
func RecordParentRIDOffset(rec *Record) int {
	return ParentRIDOffset(len(collectTypes(rec.Root)))
}

// typeKey identifies one node type table entry.
type typeKey struct {
	kindFlags byte
	label     dict.LabelID
	litType   LitType
}

func nodeTypeKey(n *Node) typeKey {
	kf := byte(n.Kind) & kindMask
	if n.Scaffold {
		kf |= scaffoldFlag
	}
	lt := LitType(0)
	if n.Kind == KindLiteral {
		lt = n.LitType
	}
	return typeKey{kindFlags: kf, label: n.Label, litType: lt}
}

// typeIndex returns the position of k in order, or -1. Type tables are
// small (a handful of distinct types per record), so a linear scan over
// the 4-byte keys beats hashing — the encoder and the bulk builder's
// TypeSet both sit on import's hottest path.
func typeIndex(order []typeKey, k typeKey) int {
	for i, t := range order {
		if t == k {
			return i
		}
	}
	return -1
}

// collectTypes walks the subtree assigning type-table indexes.
func collectTypes(root *Node) []typeKey {
	var order []typeKey
	root.Walk(func(n *Node) bool {
		if k := nodeTypeKey(n); typeIndex(order, k) < 0 {
			order = append(order, k)
		}
		return true
	})
	return order
}

// EncodedSize returns the exact on-disk size of the record. The tree
// manager compares it against the net page capacity to decide splits.
func EncodedSize(rec *Record) int {
	order := collectTypes(rec.Root)
	return recHeaderSize + ttEntrySize*len(order) + StandaloneHeaderSize + rec.Root.ContentSize()
}

// RecordOverhead returns the fixed cost of a record with ttCount node
// type table entries: record header, type table and standalone header.
// Record size = RecordOverhead(types) + root content size. The bulk
// builder uses it to account record sizes incrementally instead of
// re-walking subtrees.
func RecordOverhead(ttCount int) int {
	return recHeaderSize + ttEntrySize*ttCount + StandaloneHeaderSize
}

// TypeSet incrementally tracks the distinct node types of a prospective
// record, so its type-table size is known without re-walking already
// accounted subtrees. Types keep the index they were assigned on first
// insertion, so a set accumulated during a bulk build doubles as the
// record's type table at encode time (EncodeWith).
type TypeSet struct {
	order []typeKey
}

// NewTypeSet returns an empty type set.
func NewTypeSet() *TypeSet {
	return &TypeSet{order: make([]typeKey, 0, 8)}
}

func (ts *TypeSet) add(k typeKey) {
	if typeIndex(ts.order, k) < 0 {
		ts.order = append(ts.order, k)
	}
}

// AddNode records the type of n alone.
func (ts *TypeSet) AddNode(n *Node) {
	ts.add(nodeTypeKey(n))
}

// AddSubtree records the types of every node in the subtree under n.
func (ts *TypeSet) AddSubtree(n *Node) {
	n.Walk(func(x *Node) bool {
		ts.add(nodeTypeKey(x))
		return true
	})
}

// Merge adds every type of other.
func (ts *TypeSet) Merge(other *TypeSet) {
	for _, k := range other.order {
		ts.add(k)
	}
}

// Len returns the number of distinct types.
func (ts *TypeSet) Len() int { return len(ts.order) }

// TruncateTo rolls the set back to its first n types, undoing every
// addition made after Len() was n. The bulk builder uses it to un-merge
// a child that turned out not to fit the record being sized.
func (ts *TypeSet) TruncateTo(n int) {
	ts.order = ts.order[:n]
}

// Reset empties the set for reuse.
func (ts *TypeSet) Reset() {
	ts.order = ts.order[:0]
}

// Encode serializes the record.
func Encode(rec *Record) ([]byte, error) {
	if rec.Root == nil {
		return nil, fmt.Errorf("%w: nil root", ErrBadNode)
	}
	if err := rec.Root.Validate(); err != nil {
		return nil, err
	}
	order := collectTypes(rec.Root)
	size := recHeaderSize + ttEntrySize*len(order) + StandaloneHeaderSize + rec.Root.ContentSize()
	return encodeInto(nil, rec, size, order)
}

// EncodeWith serializes the record into dst (grown when too small) using
// a precomputed type set and content size, skipping the validation and
// type/size-collection walks Encode performs. It is the bulk loader's
// fast path: the builder accounts both incrementally, and its trees are
// well-formed by construction. ts must cover exactly the types in the
// subtree and content must equal rec.Root.ContentSize(); a mismatch is
// reported as an encode error, not silently miswritten.
func EncodeWith(dst []byte, rec *Record, ts *TypeSet, content int) ([]byte, error) {
	if rec.Root == nil {
		return nil, fmt.Errorf("%w: nil root", ErrBadNode)
	}
	size := RecordOverhead(ts.Len()) + content
	return encodeInto(dst, rec, size, ts.order)
}

// encodeInto writes the record image of the given total size into dst
// (reused when large enough) with the given type table.
func encodeInto(dst []byte, rec *Record, size int, order []typeKey) ([]byte, error) {
	if len(order) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d node types", ErrTooLarge, len(order))
	}
	var buf []byte
	if cap(dst) >= size {
		buf = dst[:size]
	} else {
		buf = make([]byte, size)
	}
	buf[0] = formatVersion
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(order)))
	pos := recHeaderSize
	for _, k := range order {
		buf[pos] = k.kindFlags
		binary.LittleEndian.PutUint16(buf[pos+1:], uint16(k.label))
		buf[pos+3] = byte(k.litType)
		pos += ttEntrySize
	}
	// Standalone header.
	rootOff := pos
	binary.LittleEndian.PutUint16(buf[pos:], uint16(typeIndex(order, nodeTypeKey(rec.Root))))
	rec.ParentRID.Put(buf[pos+2:])
	pos += StandaloneHeaderSize
	// Root content.
	end, err := encodeContent(buf, pos, rec.Root, rootOff, order)
	if err != nil {
		return nil, err
	}
	if end != size {
		return nil, fmt.Errorf("noderep: encode size mismatch: wrote %d of %d", end, size)
	}
	return buf, nil
}

// encodeContent writes the content of n starting at pos; hdrOff is the
// offset of n's own header (used as the children's parent offset).
// Embedded content sizes are backpatched after each child is written, so
// encoding never re-walks subtrees to size them.
func encodeContent(buf []byte, pos int, n *Node, hdrOff int, order []typeKey) (int, error) {
	switch n.Kind {
	case KindLiteral:
		if pos+len(n.Payload) > len(buf) {
			return 0, fmt.Errorf("%w: literal overruns record", ErrTooLarge)
		}
		copy(buf[pos:], n.Payload)
		return pos + len(n.Payload), nil
	case KindProxy:
		if pos+records.RIDSize > len(buf) {
			return 0, fmt.Errorf("%w: proxy overruns record", ErrTooLarge)
		}
		n.Target.Put(buf[pos:])
		return pos + records.RIDSize, nil
	case KindAggregate:
		if hdrOff > math.MaxUint16 {
			return 0, fmt.Errorf("%w: parent offset %d", ErrTooLarge, hdrOff)
		}
		for _, c := range n.Children {
			cHdr := pos
			if pos+EmbeddedHeaderSize > len(buf) {
				return 0, fmt.Errorf("%w: embedded header overruns record", ErrTooLarge)
			}
			binary.LittleEndian.PutUint16(buf[pos:], uint16(typeIndex(order, nodeTypeKey(c))))
			binary.LittleEndian.PutUint16(buf[pos+4:], uint16(hdrOff))
			pos += EmbeddedHeaderSize
			var err error
			pos, err = encodeContent(buf, pos, c, cHdr, order)
			if err != nil {
				return 0, err
			}
			cs := pos - cHdr - EmbeddedHeaderSize
			if cs > math.MaxUint16 {
				return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, cs)
			}
			binary.LittleEndian.PutUint16(buf[cHdr+2:], uint16(cs))
		}
		return pos, nil
	default:
		return 0, fmt.Errorf("%w: kind %d", ErrBadNode, n.Kind)
	}
}

// Decode parses a record image back into a node tree, validating sizes,
// type indexes and parent offsets.
//
// The returned tree is arena-backed: a structural pre-pass sizes three
// shared allocations (the Node array, the child-pointer backing and the
// literal payload bytes) and every node is carved out of them, so a
// record decodes in a handful of allocations instead of several per
// node. Child slices and payloads are capacity-clamped to their carved
// region, so post-decode mutation (AppendChild, payload growth) causes a
// plain reallocation rather than clobbering a sibling's backing.
//
//natix:noalloc
func Decode(buf []byte) (*Record, error) {
	if len(buf) < recHeaderSize+StandaloneHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptRecord, len(buf)) //natix:vet-ignore cold corrupt-input path
	}
	if buf[0] != formatVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorruptRecord, buf[0]) //natix:vet-ignore cold corrupt-input path
	}
	ttCount := int(binary.LittleEndian.Uint16(buf[2:]))
	pos := recHeaderSize
	if pos+ttEntrySize*ttCount+StandaloneHeaderSize > len(buf) {
		return nil, fmt.Errorf("%w: truncated type table", ErrCorruptRecord) //natix:vet-ignore cold corrupt-input path
	}
	types := make([]typeKey, ttCount) //natix:vet-ignore type table, part of the record's allocation budget
	for i := range types {
		types[i] = typeKey{
			kindFlags: buf[pos],
			label:     dict.LabelID(binary.LittleEndian.Uint16(buf[pos+1:])),
			litType:   LitType(buf[pos+3]),
		}
		pos += ttEntrySize
	}
	rootOff := pos
	rootIdx := int(binary.LittleEndian.Uint16(buf[pos:]))
	if rootIdx >= ttCount {
		return nil, fmt.Errorf("%w: root type index %d of %d", ErrCorruptRecord, rootIdx, ttCount) //natix:vet-ignore cold corrupt-input path
	}
	parentRID := records.DecodeRID(buf[pos+2 : pos+10])
	pos += StandaloneHeaderSize
	nNodes, nPayload, err := countContent(buf, pos, len(buf), types[rootIdx].kindFlags, types)
	if err != nil {
		return nil, err
	}
	a := &decodeArena{
		nodes:   make([]Node, 0, nNodes+1), //natix:vet-ignore arena backing, part of the record's allocation budget
		kids:    make([]*Node, 0, nNodes),  //natix:vet-ignore arena backing, part of the record's allocation budget
		payload: make([]byte, 0, nPayload), //natix:vet-ignore arena backing, part of the record's allocation budget
	}
	root, err := a.newNode(types[rootIdx])
	if err != nil {
		return nil, err
	}
	if err := a.decodeContent(buf, pos, len(buf), root, rootOff, types); err != nil {
		return nil, err
	}
	return &Record{ParentRID: parentRID, Root: root}, nil
}

// countContent is Decode's sizing pre-pass: it hops the embedded headers
// of the content of a node with kind flags kf in buf[pos:end), counting
// descendant nodes and literal payload bytes (including a literal's own
// content). Structural errors surface here, before any allocation.
func countContent(buf []byte, pos, end int, kf byte, types []typeKey) (nodes, payload int, err error) {
	switch Kind(kf & kindMask) {
	case KindLiteral:
		return 0, end - pos, nil
	case KindProxy:
		return 0, 0, nil
	case KindAggregate:
		for pos < end {
			if pos+EmbeddedHeaderSize > end {
				return 0, 0, fmt.Errorf("%w: truncated embedded header", ErrCorruptRecord)
			}
			ti := int(binary.LittleEndian.Uint16(buf[pos:]))
			cs := int(binary.LittleEndian.Uint16(buf[pos+2:]))
			if ti >= len(types) {
				return 0, 0, fmt.Errorf("%w: type index %d of %d", ErrCorruptRecord, ti, len(types))
			}
			pos += EmbeddedHeaderSize
			if pos+cs > end {
				return 0, 0, fmt.Errorf("%w: child content overruns parent", ErrCorruptRecord)
			}
			cn, cp, err := countContent(buf, pos, pos+cs, types[ti].kindFlags, types)
			if err != nil {
				return 0, 0, err
			}
			nodes += 1 + cn
			payload += cp
			pos += cs
		}
		return nodes, payload, nil
	default:
		return 0, 0, fmt.Errorf("%w: node kind %d", ErrCorruptRecord, Kind(kf&kindMask))
	}
}

// decodeArena holds one record's shared decode allocations.
type decodeArena struct {
	nodes   []Node
	kids    []*Node
	payload []byte
}

// newNode carves one node out of the arena (falling back to a fresh
// allocation if the pre-pass undercounted, which only a logic bug could
// cause).
//
//natix:noalloc
func (a *decodeArena) newNode(t typeKey) (*Node, error) {
	k := Kind(t.kindFlags & kindMask)
	switch k {
	case KindAggregate, KindLiteral, KindProxy:
	default:
		return nil, fmt.Errorf("%w: node kind %d", ErrCorruptRecord, k) //natix:vet-ignore cold corrupt-input path
	}
	n := &Node{}
	if len(a.nodes) < cap(a.nodes) {
		a.nodes = a.nodes[:len(a.nodes)+1]
		n = &a.nodes[len(a.nodes)-1]
	}
	n.Kind = k
	n.Label = t.label
	n.Scaffold = t.kindFlags&scaffoldFlag != 0
	n.LitType = t.litType
	return n, nil
}

// takeKids carves an empty, capacity-clamped child slice for n children.
func (a *decodeArena) takeKids(n int) []*Node {
	base := len(a.kids)
	if base+n > cap(a.kids) {
		return make([]*Node, 0, n)
	}
	a.kids = a.kids[:base+n]
	return a.kids[base:base : base+n]
}

// takePayload copies b into the payload arena, capacity-clamped.
func (a *decodeArena) takePayload(b []byte) []byte {
	base := len(a.payload)
	if base+len(b) > cap(a.payload) {
		return append([]byte(nil), b...)
	}
	a.payload = a.payload[:base+len(b)]
	p := a.payload[base : base+len(b) : base+len(b)]
	copy(p, b)
	return p
}

// decodeContent fills n from buf[pos:end]; hdrOff is the offset of n's
// header, which children must cite as their parent offset.
func (a *decodeArena) decodeContent(buf []byte, pos, end int, n *Node, hdrOff int, types []typeKey) error {
	switch n.Kind {
	case KindLiteral:
		n.Payload = a.takePayload(buf[pos:end])
		return nil
	case KindProxy:
		if end-pos != records.RIDSize {
			return fmt.Errorf("%w: proxy content %d bytes", ErrCorruptRecord, end-pos)
		}
		n.Target = records.DecodeRID(buf[pos:end])
		if n.Target.IsNil() {
			return fmt.Errorf("%w: proxy with nil target", ErrCorruptRecord)
		}
		return nil
	case KindAggregate:
		// First sweep: count this level's children by hopping the
		// embedded headers, so their pointer slice is carved contiguously
		// before the recursion below carves deeper levels.
		count := 0
		for p := pos; p < end; count++ {
			if p+EmbeddedHeaderSize > end {
				return fmt.Errorf("%w: truncated embedded header", ErrCorruptRecord)
			}
			cs := int(binary.LittleEndian.Uint16(buf[p+2:]))
			p += EmbeddedHeaderSize
			if p+cs > end {
				return fmt.Errorf("%w: child content overruns parent", ErrCorruptRecord)
			}
			p += cs
		}
		n.Children = a.takeKids(count)
		for pos < end {
			ti := int(binary.LittleEndian.Uint16(buf[pos:]))
			cs := int(binary.LittleEndian.Uint16(buf[pos+2:]))
			po := int(binary.LittleEndian.Uint16(buf[pos+4:]))
			if ti >= len(types) {
				return fmt.Errorf("%w: type index %d of %d", ErrCorruptRecord, ti, len(types))
			}
			if po != hdrOff {
				return fmt.Errorf("%w: parent offset %d, want %d", ErrCorruptRecord, po, hdrOff)
			}
			cHdr := pos
			pos += EmbeddedHeaderSize
			c, err := a.newNode(types[ti])
			if err != nil {
				return err
			}
			if err := a.decodeContent(buf, pos, pos+cs, c, cHdr, types); err != nil {
				return err
			}
			n.AppendChild(c)
			pos += cs
		}
		return nil
	default:
		return fmt.Errorf("%w: kind %d", ErrCorruptRecord, n.Kind)
	}
}
