package noderep

import (
	"fmt"
	"testing"

	"natix/internal/dict"
)

// benchTree builds a SPEECH-like subtree of roughly n text leaves.
func benchTree(n int) *Node {
	root := NewAggregate(dict.LabelID(3))
	for i := 0; i < n; i++ {
		line := NewAggregate(dict.LabelID(4))
		line.AppendChild(NewTextLiteral(fmt.Sprintf("line %04d with typical verse length padding", i)))
		root.AppendChild(line)
	}
	return root
}

func BenchmarkEncode(b *testing.B) {
	rec := &Record{Root: benchTree(50)}
	size := EncodedSize(rec)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rec := &Record{Root: benchTree(50)}
	buf, err := Encode(rec)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodedSize(b *testing.B) {
	rec := &Record{Root: benchTree(50)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EncodedSize(rec) == 0 {
			b.Fatal("zero size")
		}
	}
}

func BenchmarkContentSize(b *testing.B) {
	tree := benchTree(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tree.ContentSize() == 0 {
			b.Fatal("zero size")
		}
	}
}
