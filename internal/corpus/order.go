package corpus

import "natix/internal/xmlkit"

// InsertOp describes the insertion of one logical node: make it child
// number Index of the node at ParentPath. Ops are designed so that when
// they are applied in sequence, every referenced path already exists and
// no existing node's path changes (children always arrive left of no
// sibling that is already present).
type InsertOp struct {
	ParentPath []int
	Index      int
	IsText     bool
	Name       string // element name (IsText == false)
	Text       string // character data (IsText == true)
}

// node paths: the corpus tree is static, so each node's final path is
// its insertion path.

// PreOrderOps linearizes the document in pre-order: the paper's
// "bulkload" / append workload ("First, in pre-order, to represent a
// 'bulkload' of or consecutive appends to a textual representation",
// §4.3). The root element itself is not part of the op list; callers
// create it when they create the tree.
func PreOrderOps(root *xmlkit.Node) []InsertOp {
	var ops []InsertOp
	var walk func(n *xmlkit.Node, path []int)
	walk = func(n *xmlkit.Node, path []int) {
		for i, c := range n.Children {
			ops = append(ops, makeOp(c, path, i))
			if !c.IsText() {
				walk(c, append(path, i))
			}
		}
	}
	walk(root, nil)
	return ops
}

// BinaryBFSOps linearizes the document by breadth-first search over its
// binary-tree representation (first child = left child, next sibling =
// right child, Knuth §2.3.2), the paper's "incremental update" workload:
// "resulting in an incremental update pattern where inserts occur
// distributed over the whole document" (§4.3).
func BinaryBFSOps(root *xmlkit.Node) []InsertOp {
	type item struct {
		n    *xmlkit.Node
		path []int
	}
	var ops []InsertOp
	// Seed the queue with the root's first child; BFS then follows
	// left-child (first child) and right-child (next sibling) edges.
	if len(root.Children) == 0 {
		return nil
	}
	queue := []item{{n: root.Children[0], path: []int{0}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		parentPath := it.path[:len(it.path)-1]
		idx := it.path[len(it.path)-1]
		ops = append(ops, makeOp(it.n, parentPath, idx))
		// Left binary child: first child.
		if !it.n.IsText() && len(it.n.Children) > 0 {
			queue = append(queue, item{n: it.n.Children[0], path: appendPath(it.path, 0)})
		}
		// Right binary child: next sibling.
		parent := locate(root, parentPath)
		if idx+1 < len(parent.Children) {
			sib := parent.Children[idx+1]
			sp := appendPath(parentPath, idx+1)
			queue = append(queue, item{n: sib, path: sp})
		}
	}
	return ops
}

func appendPath(p []int, i int) []int {
	out := make([]int, len(p)+1)
	copy(out, p)
	out[len(p)] = i
	return out
}

func locate(root *xmlkit.Node, path []int) *xmlkit.Node {
	cur := root
	for _, i := range path {
		cur = cur.Children[i]
	}
	return cur
}

func makeOp(n *xmlkit.Node, parentPath []int, idx int) InsertOp {
	op := InsertOp{
		ParentPath: append([]int(nil), parentPath...),
		Index:      idx,
	}
	if n.IsText() {
		op.IsText = true
		op.Text = n.Text
	} else {
		op.Name = n.Name
	}
	return op
}
