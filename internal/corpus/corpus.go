// Package corpus generates the experimental document collection. The
// paper evaluates NATIX on Jon Bosak's XML markup of Shakespeare's plays
// (§4.1): ≈8 MB of XML whose tree representations hold ≈320 000 nodes
// across 37 plays. That exact corpus is not bundled here, so this
// package synthesizes a deterministic stand-in with the same DTD
// (PLAY/TITLE/PERSONAE/ACT/SCENE/SPEECH/SPEAKER/LINE/STAGEDIR), the same
// document count and node count, and comparable depth, fan-out and
// text-length distributions. The storage manager sees only tree shape
// and byte sizes, both of which are matched (DESIGN.md §4.2); real play
// files can be substituted through the same APIs.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"natix/internal/xmlkit"
)

// Element names of the play DTD (the node alphabet Σ_DTD).
const (
	ElemPlay     = "PLAY"
	ElemTitle    = "TITLE"
	ElemPersonae = "PERSONAE"
	ElemPersona  = "PERSONA"
	ElemAct      = "ACT"
	ElemScene    = "SCENE"
	ElemSpeech   = "SPEECH"
	ElemSpeaker  = "SPEAKER"
	ElemLine     = "LINE"
	ElemStageDir = "STAGEDIR"
)

// ElementNames lists the DTD alphabet in a stable order.
var ElementNames = []string{
	ElemPlay, ElemTitle, ElemPersonae, ElemPersona, ElemAct,
	ElemScene, ElemSpeech, ElemSpeaker, ElemLine, ElemStageDir,
}

// Spec parameterizes corpus generation. All ranges are inclusive.
type Spec struct {
	Plays          int
	Seed           int64
	ActsPerPlay    int
	ScenesMin      int
	ScenesMax      int
	SpeechesMin    int
	SpeechesMax    int
	LinesMin       int
	LinesMax       int
	WordsMin       int
	WordsMax       int
	StageDirEvery  int // one stage direction per this many speeches
	PersonaePerDoc int
}

// DefaultSpec reproduces the paper's scale: 37 plays, ≈320k logical
// nodes, ≈8 MB of XML text.
func DefaultSpec() Spec {
	return Spec{
		Plays:          37,
		Seed:           1999, // the year of the tech report
		ActsPerPlay:    5,
		ScenesMin:      3,
		ScenesMax:      6,
		SpeechesMin:    20,
		SpeechesMax:    48,
		LinesMin:       1,
		LinesMax:       7,
		WordsMin:       4,
		WordsMax:       13,
		StageDirEvery:  8,
		PersonaePerDoc: 20,
	}
}

// SmallSpec is a reduced corpus for unit tests and `go test -bench`.
func SmallSpec(plays int) Spec {
	s := DefaultSpec()
	s.Plays = plays
	s.ScenesMin, s.ScenesMax = 2, 3
	s.SpeechesMin, s.SpeechesMax = 4, 8
	s.ActsPerPlay = 3
	return s
}

var words = strings.Fields(`
	thou thy thee hath doth love death night day sweet fair good lord
	lady king queen crown sword blood heart eyes face hand tongue soul
	heaven earth stars moon sun light dark shadow dream sleep wake
	honour grace mercy treason friend enemy battle peace war noble
	villain fool jest wit sorrow joy tears laughter fortune fate time
	world stage players exit enter alas prithee wherefore hither anon
	forsooth marry nay yea verily methinks perchance haply withal
`)

var speakerNames = []string{
	"HAMLET", "OPHELIA", "CLAUDIUS", "GERTRUDE", "HORATIO", "LAERTES",
	"POLONIUS", "OTHELLO", "IAGO", "DESDEMONA", "CASSIO", "EMILIA",
	"MACBETH", "LADY MACBETH", "BANQUO", "MACDUFF", "DUNCAN", "LEAR",
	"CORDELIA", "GONERIL", "REGAN", "EDMUND", "EDGAR", "KENT",
	"ROMEO", "JULIET", "MERCUTIO", "TYBALT", "NURSE", "FRIAR LAURENCE",
	"PROSPERO", "ARIEL", "CALIBAN", "MIRANDA", "PUCK", "OBERON",
	"TITANIA", "BOTTOM", "SHYLOCK", "PORTIA",
}

// gen wraps the deterministic random stream.
type gen struct {
	rng *rand.Rand
}

func (g *gen) intIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

func (g *gen) sentence(nWords int) string {
	var b strings.Builder
	for i := 0; i < nWords; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[g.rng.Intn(len(words))])
	}
	return b.String()
}

// GeneratePlay builds play number i (0-based) of the corpus. Generation
// is deterministic: the same spec and index always yield the same tree.
func GeneratePlay(spec Spec, i int) *xmlkit.Node {
	g := &gen{rng: rand.New(rand.NewSource(spec.Seed + int64(i)*7919))}
	play := xmlkit.NewElement(ElemPlay)
	play.Append(el(ElemTitle, fmt.Sprintf("The Tragedy of Play %d, %s", i+1, g.sentence(3))))

	personae := xmlkit.NewElement(ElemPersonae)
	personae.Append(el(ElemTitle, "Dramatis Personae"))
	for p := 0; p < spec.PersonaePerDoc; p++ {
		name := speakerNames[(p+i)%len(speakerNames)]
		personae.Append(el(ElemPersona, name+", "+g.sentence(3)))
	}
	play.Append(personae)

	for a := 0; a < spec.ActsPerPlay; a++ {
		act := xmlkit.NewElement(ElemAct)
		act.Append(el(ElemTitle, fmt.Sprintf("ACT %d", a+1)))
		scenes := g.intIn(spec.ScenesMin, spec.ScenesMax)
		for sc := 0; sc < scenes; sc++ {
			scene := xmlkit.NewElement(ElemScene)
			scene.Append(el(ElemTitle, fmt.Sprintf("SCENE %d. %s.", sc+1, g.sentence(4))))
			scene.Append(el(ElemStageDir, "Enter "+speakerNames[g.rng.Intn(len(speakerNames))]))
			speeches := g.intIn(spec.SpeechesMin, spec.SpeechesMax)
			for sp := 0; sp < speeches; sp++ {
				speech := xmlkit.NewElement(ElemSpeech)
				speech.Append(el(ElemSpeaker, speakerNames[g.rng.Intn(len(speakerNames))]))
				lines := g.intIn(spec.LinesMin, spec.LinesMax)
				for l := 0; l < lines; l++ {
					speech.Append(el(ElemLine, g.sentence(g.intIn(spec.WordsMin, spec.WordsMax))))
				}
				scene.Append(speech)
				if spec.StageDirEvery > 0 && (sp+1)%spec.StageDirEvery == 0 {
					scene.Append(el(ElemStageDir, "Exit "+speakerNames[g.rng.Intn(len(speakerNames))]))
				}
			}
			act.Append(scene)
		}
		play.Append(act)
	}
	return play
}

// el builds <name>text</name>.
func el(name, text string) *xmlkit.Node {
	n := xmlkit.NewElement(name)
	n.Append(xmlkit.NewText(text))
	return n
}

// Generate builds the full corpus.
func Generate(spec Spec) []*xmlkit.Node {
	out := make([]*xmlkit.Node, spec.Plays)
	for i := range out {
		out[i] = GeneratePlay(spec, i)
	}
	return out
}

// Stats summarizes a generated corpus.
type Stats struct {
	Documents int
	Nodes     int   // logical tree nodes
	TextBytes int64 // serialized XML bytes
}

// Measure computes corpus statistics.
func Measure(docs []*xmlkit.Node) Stats {
	st := Stats{Documents: len(docs)}
	for _, d := range docs {
		st.Nodes += d.CountNodes()
		st.TextBytes += int64(len(xmlkit.SerializeString(d)))
	}
	return st
}
