package corpus

import (
	"testing"

	"natix/internal/xmlkit"
)

func TestDeterminism(t *testing.T) {
	spec := SmallSpec(2)
	a := GeneratePlay(spec, 0)
	b := GeneratePlay(spec, 0)
	if !xmlkit.Equal(a, b) {
		t.Fatal("generation is not deterministic")
	}
	c := GeneratePlay(spec, 1)
	if xmlkit.Equal(a, c) {
		t.Fatal("different plays are identical")
	}
}

func TestDefaultSpecMatchesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus generation")
	}
	docs := Generate(DefaultSpec())
	st := Measure(docs)
	if st.Documents != 37 {
		t.Fatalf("documents = %d, want 37", st.Documents)
	}
	// Paper: "about 8 MB", "about 320000 nodes". Stay within ±25%.
	if st.Nodes < 240_000 || st.Nodes > 400_000 {
		t.Fatalf("nodes = %d, want ≈320k", st.Nodes)
	}
	if st.TextBytes < 6<<20 || st.TextBytes > 10<<20 {
		t.Fatalf("text bytes = %d, want ≈8MB", st.TextBytes)
	}
}

func TestStructureIsWellFormedXML(t *testing.T) {
	play := GeneratePlay(SmallSpec(1), 0)
	text := xmlkit.SerializeString(play)
	doc, err := xmlkit.ParseString(text, xmlkit.ParseOptions{})
	if err != nil {
		t.Fatalf("generated play does not parse: %v", err)
	}
	if !xmlkit.Equal(play, doc.Root) {
		t.Fatal("serialize/parse changed the play")
	}
	if play.Name != ElemPlay {
		t.Fatalf("root = %q", play.Name)
	}
	// Acts and scenes exist with the query targets the paper uses.
	acts := 0
	for _, c := range play.Children {
		if c.Name == ElemAct {
			acts++
		}
	}
	if acts != SmallSpec(1).ActsPerPlay {
		t.Fatalf("acts = %d", acts)
	}
}

func TestPreOrderOpsRebuildDocument(t *testing.T) {
	play := GeneratePlay(SmallSpec(1), 0)
	ops := PreOrderOps(play)
	rebuilt := xmlkit.NewElement(play.Name)
	applyOps(t, rebuilt, ops)
	if !xmlkit.Equal(play, rebuilt) {
		t.Fatal("pre-order ops do not rebuild the document")
	}
	// Pre-order property: every op's parent path is a prefix chain that
	// was itself inserted earlier; indexes are appends.
	seen := map[string]int{}
	key := func(p []int) string {
		s := ""
		for _, i := range p {
			s += string(rune(i)) + "/"
		}
		return s
	}
	for i, op := range ops {
		if op.Index != seen[key(op.ParentPath)] {
			t.Fatalf("op %d: index %d, want %d (append-only)", i, op.Index, seen[key(op.ParentPath)])
		}
		seen[key(op.ParentPath)]++
	}
}

func TestBinaryBFSOpsRebuildDocument(t *testing.T) {
	play := GeneratePlay(SmallSpec(1), 0)
	ops := BinaryBFSOps(play)
	rebuilt := xmlkit.NewElement(play.Name)
	applyOps(t, rebuilt, ops)
	if !xmlkit.Equal(play, rebuilt) {
		t.Fatal("binary-BFS ops do not rebuild the document")
	}
	// Same op multiset as pre-order, different order.
	pre := PreOrderOps(play)
	if len(pre) != len(ops) {
		t.Fatalf("op counts differ: %d vs %d", len(pre), len(ops))
	}
	same := true
	for i := range ops {
		if ops[i].Name != pre[i].Name || ops[i].Text != pre[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Fatal("BFS order identical to pre-order; expected interleaving")
	}
}

// applyOps replays insert ops against an in-memory tree, verifying the
// "paths already exist, indexes are valid" contract.
func applyOps(t *testing.T, root *xmlkit.Node, ops []InsertOp) {
	t.Helper()
	for i, op := range ops {
		cur := root
		for _, idx := range op.ParentPath {
			if idx >= len(cur.Children) {
				t.Fatalf("op %d: parent path %v does not exist yet", i, op.ParentPath)
			}
			cur = cur.Children[idx]
		}
		if op.Index > len(cur.Children) {
			t.Fatalf("op %d: index %d of %d children", i, op.Index, len(cur.Children))
		}
		var n *xmlkit.Node
		if op.IsText {
			n = xmlkit.NewText(op.Text)
		} else {
			n = xmlkit.NewElement(op.Name)
		}
		cur.Children = append(cur.Children, nil)
		copy(cur.Children[op.Index+1:], cur.Children[op.Index:])
		cur.Children[op.Index] = n
	}
}

func TestMeasure(t *testing.T) {
	docs := Generate(SmallSpec(2))
	st := Measure(docs)
	if st.Documents != 2 || st.Nodes == 0 || st.TextBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
