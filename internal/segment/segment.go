// Package segment manages a linear collection of equal-sized pages on a
// device ("a memory space divided into segments, which are a linear
// collection of equal-sized pages", paper §2.1) together with a free-space
// inventory (FSI).
//
// Layout: page 0 is the segment header (format version, page size, and a
// small table of root pointers used by upper layers for the catalog and
// dictionary). FSI pages are interleaved at fixed intervals: each FSI page
// holds one byte of encoded free space for each of the K pages that follow
// it, so the record manager can find a page with enough room for a record
// without touching data pages. All remaining pages are slotted record
// pages, formatted on allocation.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"natix/internal/buffer"
	"natix/internal/pagedev"
	"natix/internal/pageformat"
)

// NumRoots is the number of 8-byte root pointers stored in the header.
type rootSlot = int

// Root pointer slots reserved in the segment header.
const (
	RootCatalog   = 0 // document catalog (package docstore)
	RootDict      = 1 // label dictionary (package dict)
	RootPathIndex = 2 // path-index catalog (package pathindex)
	RootSpare3    = 3
	NumRoots      = 4
)

// Header page layout (after the 16-byte common header).
const (
	offVersion  = 16
	offPageSize = 20
	offRoots    = 24

	// formatVersion 2: the common page header grew an LSN field for
	// write-ahead logging (version 1 had an 8-byte common header).
	formatVersion = 2
)

// maxScanGroups bounds how many free-space-inventory groups FindSpace
// examines per allocation, and lookBehindPages is how far behind the
// hint page the scan starts.
const (
	maxScanGroups   = 4
	lookBehindPages = 32
)

// Errors.
var (
	ErrBadHeader   = errors.New("segment: invalid segment header")
	ErrBadPageSize = errors.New("segment: page size mismatch")
	ErrNotDataPage = errors.New("segment: not a data page")
)

// Segment provides page allocation and free-space lookup over a buffer
// pool. Read-side methods (RootRID, FreeHint, TotalBytes, NumPages) are
// safe for concurrent callers; page access holds frame latches. The
// allocation path (FindSpace, NotifyFree, SetRootRID) must be driven by
// a single mutator at a time — package docstore's writer lock provides
// that.
type Segment struct {
	pool     *buffer.Pool
	pageSize int
	fsiCap   int // pages covered per FSI page

	// allocMu serializes device growth: parallel bulk-import shards each
	// drive their own batch writer, so AllocDataPage must be safe across
	// them even though the rest of the allocation path stays single-
	// mutator. (NotifyFree is already serialized by the FSI page's frame
	// latch.)
	allocMu sync.Mutex
}

// fsiCapacity returns how many page entries fit on one FSI page.
func fsiCapacity(pageSize int) int {
	return pageSize - pageformat.CommonHeaderSize
}

// encScale returns the byte granularity of one FSI unit for a page size.
func encScale(pageSize int) int {
	return (pageSize + 254) / 255
}

// maxFree is the free-byte count of a completely empty slotted page.
func maxFree(pageSize int) int {
	return pageformat.MaxCellSize(pageSize) + pageformat.SlotOverhead
}

// encodeFree conservatively encodes freeBytes into a single byte
// (rounding down, so the decoded value never overstates free space).
// The value 255 is reserved for "entirely empty": without it, rounding
// would make empty pages look a few bytes too small for max-size records
// and they could never be reused.
func encodeFree(freeBytes, pageSize int) byte {
	if freeBytes >= maxFree(pageSize) {
		return 255
	}
	v := freeBytes / encScale(pageSize)
	if v > 254 {
		v = 254
	}
	if v < 0 {
		v = 0
	}
	return byte(v)
}

// decodeFree returns the lower bound on free bytes for an encoded entry.
func decodeFree(enc byte, pageSize int) int {
	if enc == 255 {
		return maxFree(pageSize)
	}
	return int(enc) * encScale(pageSize)
}

// Create formats a fresh segment (header page) over the pool's device.
// The device must be empty.
func Create(pool *buffer.Pool) (*Segment, error) {
	dev := pool.Device()
	if dev.NumPages() != 0 {
		return nil, errors.New("segment: Create on non-empty device")
	}
	if err := dev.Grow(1); err != nil {
		return nil, err
	}
	f, err := pool.GetNew(0)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	u := f.BeginUpdate()
	b := f.Data()
	pageformat.InitCommon(b, pageformat.TypeHeader)
	binary.LittleEndian.PutUint32(b[offVersion:], formatVersion)
	binary.LittleEndian.PutUint32(b[offPageSize:], uint32(dev.PageSize()))
	for i := 0; i < NumRoots; i++ {
		binary.LittleEndian.PutUint64(b[offRoots+8*i:], 0)
	}
	if err := f.EndUpdate(u); err != nil {
		return nil, err
	}
	return &Segment{pool: pool, pageSize: dev.PageSize(), fsiCap: fsiCapacity(dev.PageSize())}, nil
}

// Open attaches to an existing segment, validating its header.
func Open(pool *buffer.Pool) (*Segment, error) {
	dev := pool.Device()
	if dev.NumPages() == 0 {
		return nil, fmt.Errorf("%w: empty device", ErrBadHeader)
	}
	f, err := pool.Get(0)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	b := f.Data()
	if pageformat.TypeOf(b) != pageformat.TypeHeader {
		return nil, ErrBadHeader
	}
	if v := binary.LittleEndian.Uint32(b[offVersion:]); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d", ErrBadHeader, v)
	}
	if ps := int(binary.LittleEndian.Uint32(b[offPageSize:])); ps != dev.PageSize() {
		return nil, fmt.Errorf("%w: segment %d, device %d", ErrBadPageSize, ps, dev.PageSize())
	}
	return &Segment{pool: pool, pageSize: dev.PageSize(), fsiCap: fsiCapacity(dev.PageSize())}, nil
}

// PageSize returns the segment's page size.
func (s *Segment) PageSize() int { return s.pageSize }

// Pool returns the buffer pool the segment operates on.
func (s *Segment) Pool() *buffer.Pool { return s.pool }

// MaxRecordSize returns the largest record storable on one page — the
// "net page capacity" that triggers record splits in the tree manager.
func (s *Segment) MaxRecordSize() int { return pageformat.MaxCellSize(s.pageSize) }

// RootRID returns the raw 8-byte root pointer in the given header slot.
func (s *Segment) RootRID(slot rootSlot) (uint64, error) {
	if slot < 0 || slot >= NumRoots {
		return 0, fmt.Errorf("segment: root slot %d out of range", slot)
	}
	f, err := s.pool.Get(0)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	return binary.LittleEndian.Uint64(f.Data()[offRoots+8*slot:]), nil
}

// SetRootRID stores a raw 8-byte root pointer in the given header slot.
func (s *Segment) SetRootRID(slot rootSlot, v uint64) error {
	if slot < 0 || slot >= NumRoots {
		return fmt.Errorf("segment: root slot %d out of range", slot)
	}
	f, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	u := f.BeginUpdate()
	binary.LittleEndian.PutUint64(f.Data()[offRoots+8*slot:], v)
	return f.EndUpdate(u)
}

// IsFSIPage reports whether p is a free-space-inventory page.
func (s *Segment) IsFSIPage(p pagedev.PageNo) bool {
	if p == 0 {
		return false
	}
	return (uint64(p)-1)%uint64(s.fsiCap+1) == 0
}

// IsDataPage reports whether p is a record page.
func (s *Segment) IsDataPage(p pagedev.PageNo) bool {
	return p != 0 && !s.IsFSIPage(p)
}

// fsiLocation returns the FSI page covering data page p and the entry
// index of p within it.
func (s *Segment) fsiLocation(p pagedev.PageNo) (fsiPage pagedev.PageNo, entry int, err error) {
	if !s.IsDataPage(p) {
		return 0, 0, fmt.Errorf("%w: page %d", ErrNotDataPage, p)
	}
	group := (uint64(p) - 1) / uint64(s.fsiCap+1)
	fsiPage = pagedev.PageNo(1 + group*uint64(s.fsiCap+1))
	entry = int(uint64(p) - uint64(fsiPage) - 1)
	return fsiPage, entry, nil
}

// NotifyFree records the current free-byte count of data page p in the
// inventory. The record manager calls this after every page mutation.
func (s *Segment) NotifyFree(p pagedev.PageNo, freeBytes int) error {
	fsiPage, entry, err := s.fsiLocation(p)
	if err != nil {
		return err
	}
	f, err := s.pool.Get(fsiPage)
	if err != nil {
		return err
	}
	defer f.Release()
	f.Latch()
	defer f.Unlatch()
	enc := encodeFree(freeBytes, s.pageSize)
	b := f.Data()
	if b[pageformat.CommonHeaderSize+entry] == enc {
		return nil
	}
	u := f.BeginUpdate()
	b[pageformat.CommonHeaderSize+entry] = enc
	return f.EndUpdate(u)
}

// FreeHint returns the inventory's lower bound on free bytes for page p.
func (s *Segment) FreeHint(p pagedev.PageNo) (int, error) {
	fsiPage, entry, err := s.fsiLocation(p)
	if err != nil {
		return 0, err
	}
	f, err := s.pool.Get(fsiPage)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	return decodeFree(f.Data()[pageformat.CommonHeaderSize+entry], s.pageSize), nil
}

// FindSpace returns a data page with at least need free bytes, preferring
// pages close to near ("store parent with children and sibling nodes on
// the same page if possible", §4.2). If no existing page qualifies, a new
// page is allocated and formatted. need must not exceed MaxRecordSize.
func (s *Segment) FindSpace(need int, near pagedev.PageNo) (pagedev.PageNo, error) {
	// A fresh page offers MaxRecordSize bytes of cell space plus one
	// directory slot; anything beyond that can never be satisfied.
	if need > s.MaxRecordSize()+pageformat.SlotOverhead {
		return 0, fmt.Errorf("segment: need %d exceeds page capacity %d", need, s.MaxRecordSize()+pageformat.SlotOverhead)
	}
	numPages := s.pool.Device().NumPages()

	// 1. The near page itself.
	if near != 0 && s.IsDataPage(near) && near < numPages {
		if free, err := s.FreeHint(near); err == nil && free >= need {
			return near, nil
		}
	}

	// 2. Scan the inventory forward from just behind the hint page.
	// Scanning whole groups from their start would back-fill distant
	// holes and scatter logically adjacent records across the disk;
	// starting at the hint (with a small look-behind) keeps allocation
	// marching forward so related records stay physically close ("store
	// parent with children and sibling nodes on the same page if
	// possible", §4.2), at the cost of leaving old distant holes to
	// deletions that carry their own nearby hints.
	groups := s.numGroups(numPages)
	startGroup := uint64(0)
	fromEntry := 0
	if near != 0 && near < numPages && s.IsDataPage(near) {
		startGroup = (uint64(near) - 1) / uint64(s.fsiCap+1)
		groupFSI := pagedev.PageNo(1 + startGroup*uint64(s.fsiCap+1))
		fromEntry = int(uint64(near)-uint64(groupFSI)-1) - lookBehindPages
		if fromEntry < 0 {
			fromEntry = 0
		}
	}
	hi := startGroup + maxScanGroups
	if hi > groups {
		hi = groups
	}
	for g := startGroup; g < hi; g++ {
		p, ok, err := s.scanGroup(g, need, numPages, fromEntry)
		if err != nil {
			return 0, err
		}
		if ok {
			return p, nil
		}
		fromEntry = 0 // later groups scan from their beginning
	}

	// 3. Allocate a fresh page.
	return s.allocPage()
}

// numGroups returns how many FSI groups exist for the current size.
func (s *Segment) numGroups(numPages pagedev.PageNo) uint64 {
	if numPages <= 1 {
		return 0
	}
	return (uint64(numPages) - 2 + uint64(s.fsiCap+1)) / uint64(s.fsiCap+1)
}

// scanGroup looks for a page with enough space within one FSI group,
// starting at the given entry index.
func (s *Segment) scanGroup(group uint64, need int, numPages pagedev.PageNo, fromEntry int) (pagedev.PageNo, bool, error) {
	fsiPage := pagedev.PageNo(1 + group*uint64(s.fsiCap+1))
	if fsiPage >= numPages {
		return 0, false, nil
	}
	f, err := s.pool.Get(fsiPage)
	if err != nil {
		return 0, false, err
	}
	defer f.Release()
	f.RLatch()
	defer f.RUnlatch()
	b := f.Data()
	for i := fromEntry; i < s.fsiCap; i++ {
		p := fsiPage + 1 + pagedev.PageNo(i)
		if p >= numPages {
			break
		}
		if decodeFree(b[pageformat.CommonHeaderSize+i], s.pageSize) >= need {
			return p, true, nil
		}
	}
	return 0, false, nil
}

// allocPage grows the device by one data page (creating a new FSI page
// first when crossing a group boundary), formats it as a slotted page and
// registers its free space.
func (s *Segment) allocPage() (pagedev.PageNo, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	dev := s.pool.Device()
	for {
		p := dev.NumPages()
		if err := dev.Grow(p + 1); err != nil {
			return 0, err
		}
		if s.IsFSIPage(p) {
			f, err := s.pool.GetNew(p)
			if err != nil {
				return 0, err
			}
			f.Latch()
			u := f.BeginUpdate()
			pageformat.InitCommon(f.Data(), pageformat.TypeFSI)
			err = f.EndUpdate(u)
			f.Unlatch()
			f.Release()
			if err != nil {
				return 0, err
			}
			continue // the page after the FSI page is the data page
		}
		f, err := s.pool.GetNew(p)
		if err != nil {
			return 0, err
		}
		f.Latch()
		// Formatting a fresh data page is deliberately not logged: the
		// page's first real content (a record insert, or the batch
		// writer's packed image) logs a full image that covers the
		// formatting, so bulk-loaded pages cost one log record, not
		// two. If a crash intervenes, the page is unreferenced and
		// recovery's undo truncates it away with the rest of the
		// operation's allocations.
		sl := pageformat.FormatSlotted(f.Data())
		free := sl.FreeBytes()
		f.MarkDirty()
		f.Unlatch()
		f.Release()
		if err := s.NotifyFree(p, free); err != nil {
			return 0, err
		}
		return p, nil
	}
}

// AllocDataPage grows the segment by one freshly formatted, empty data
// page and returns its number. Callers that pack records sequentially
// (the bulk loader's batch writer) use it to get pages whose slot
// numbering they fully control; everyone else goes through FindSpace.
// Like the rest of the allocation path it must be driven by a single
// mutator at a time.
func (s *Segment) AllocDataPage() (pagedev.PageNo, error) {
	return s.allocPage()
}

// TotalBytes returns the total on-disk size of the segment in bytes —
// the paper's Figure 14 space metric.
func (s *Segment) TotalBytes() int64 {
	return int64(s.pool.Device().NumPages()) * int64(s.pageSize)
}

// NumPages returns the total number of pages (header + FSI + data).
func (s *Segment) NumPages() pagedev.PageNo {
	return s.pool.Device().NumPages()
}

// ForEachDataPage calls fn for every allocated data page, stopping on the
// first error.
func (s *Segment) ForEachDataPage(fn func(p pagedev.PageNo) error) error {
	n := s.pool.Device().NumPages()
	for p := pagedev.PageNo(1); p < n; p++ {
		if !s.IsDataPage(p) {
			continue
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// FSIPageFor returns the inventory page covering data page p.
func (s *Segment) FSIPageFor(p pagedev.PageNo) (pagedev.PageNo, error) {
	fsiPage, _, err := s.fsiLocation(p)
	return fsiPage, err
}

// RebuildFSIPage reconstructs one free-space-inventory page from the
// ground truth: the slot directories of the data pages it covers. The
// integrity scrubber calls it when an FSI page fails verification and
// the log holds no image of it — unlike record pages, inventory pages
// are fully derivable, so "unrepairable" never applies to them. Pages
// that cannot be read (corrupt themselves, or never yet written) are
// recorded as having no free space, which fences them from allocation
// without affecting existing records.
//
// The rebuilt page is installed through the pool's restore path —
// straight to the device, no log record: the content is derived state,
// and a crash before the write simply leaves the page for the next
// scrub. The page must not be resident; the single-mutator rule for
// the allocation path applies.
func (s *Segment) RebuildFSIPage(fsiPage pagedev.PageNo) error {
	if !s.IsFSIPage(fsiPage) {
		return fmt.Errorf("segment: page %d is not an FSI page", fsiPage)
	}
	buf := make([]byte, s.pageSize)
	pageformat.InitCommon(buf, pageformat.TypeFSI)
	numPages := s.pool.Device().NumPages()
	for i := 0; i < s.fsiCap; i++ {
		p := fsiPage + 1 + pagedev.PageNo(i)
		if p >= numPages {
			break
		}
		free := 0
		if f, err := s.pool.Get(p); err == nil {
			f.RLatch()
			if sl, err := pageformat.AsSlotted(f.Data()); err == nil {
				free = sl.FreeBytes()
			}
			f.RUnlatch()
			f.Release()
		}
		buf[pageformat.CommonHeaderSize+i] = encodeFree(free, s.pageSize)
	}
	return s.pool.Restore(fsiPage, buf)
}
